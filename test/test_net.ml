(* Tests for the unreliable-network subsystem: the transport's own
   reliability machinery (in-order delivery, dedup, retransmission,
   partitions, budget exhaustion), its integration with the kernel's
   duplicate filter and the engine's recovery path, and the 2PC
   prepare timeout with presumed-abort. *)

open Ft_vm.Asm
module Policy = Ft_net.Policy
module Transport = Ft_net.Transport

(* --- transport unit tests ----------------------------------------------- *)

let latency = 120_000
let jitter = 60_000

(* A transport delivering into a per-destination list, newest last. *)
let make_transport ?policy ?max_retries ?rto_max_ns ~nprocs ~seed () =
  let log = Array.make nprocs [] in
  let deliver ~at:_ ~src:_ ~dst v = log.(dst) <- v :: log.(dst) in
  let t =
    Transport.create ?policy ?max_retries ?rto_max_ns ~seed ~nprocs
      ~latency_ns:latency ~jitter_ns:jitter ~deliver ()
  in
  (t, fun dst -> List.rev log.(dst))

(* Advance simulated time event by event until the queue drains.  The
   retry budget bounds the queue, so this always terminates. *)
let rec drain t =
  match Transport.next_event t with
  | Some at ->
      Transport.pump t ~now:at;
      drain t
  | None -> ()

let test_reliable_in_order () =
  let t, got = make_transport ~nprocs:2 ~seed:7 () in
  for i = 0 to 9 do
    Transport.send t ~now:(i * 1_000) ~src:0 ~dst:1 i
  done;
  drain t;
  Alcotest.(check (list int)) "in order, exactly once"
    (List.init 10 Fun.id) (got 1);
  let s = Transport.stats t in
  Alcotest.(check int) "no retransmissions on a clean link" 0
    s.Transport.retransmits;
  Alcotest.(check int) "nothing in flight" 0 (Transport.in_flight t)

let test_reorder_still_in_order () =
  (* Every frame reordered on the wire; the reassembly buffer must hide
     it — the kernel's per-sender msg_seq filter depends on FIFO. *)
  let policy _ _ = Policy.make ~reorder:0.9 ~reorder_ns:500_000 () in
  let t, got = make_transport ~policy ~nprocs:2 ~seed:11 () in
  for i = 0 to 19 do
    Transport.send t ~now:(i * 2_000) ~src:0 ~dst:1 i
  done;
  drain t;
  Alcotest.(check (list int)) "reordered wire, ordered delivery"
    (List.init 20 Fun.id) (got 1)

let test_duplicates_deduped () =
  let policy _ _ = Policy.make ~duplicate:1.0 () in
  let t, got = make_transport ~policy ~nprocs:2 ~seed:3 () in
  for i = 0 to 9 do
    Transport.send t ~now:(i * 1_000) ~src:0 ~dst:1 (100 + i)
  done;
  drain t;
  Alcotest.(check (list int)) "each payload delivered once"
    (List.init 10 (fun i -> 100 + i))
    (got 1);
  Alcotest.(check bool) "wire duplicates were seen and discarded" true
    ((Transport.stats t).Transport.dup_frames > 0)

let test_loss_recovered_by_retransmission () =
  let policy _ _ = Policy.make ~drop:0.5 () in
  let t, got = make_transport ~policy ~nprocs:2 ~seed:5 () in
  for i = 0 to 19 do
    Transport.send t ~now:(i * 1_000) ~src:0 ~dst:1 i
  done;
  drain t;
  Alcotest.(check (list int)) "50% loss, all delivered in order"
    (List.init 20 Fun.id) (got 1);
  let s = Transport.stats t in
  Alcotest.(check bool) "losses happened" true (s.Transport.dropped > 0);
  Alcotest.(check bool) "retransmissions recovered them" true
    (s.Transport.retransmits > 0);
  Alcotest.(check int) "no link gave up" 0 s.Transport.gave_up

let test_partition_heals () =
  let policy _ _ =
    Policy.make
      ~partitions:[ Policy.partition ~from_ns:0 ~until_ns:5_000_000 () ]
      ()
  in
  let t, got = make_transport ~policy ~nprocs:2 ~seed:9 () in
  Transport.send t ~now:1_000 ~src:0 ~dst:1 42;
  Alcotest.(check bool) "unreachable during the window" false
    (Transport.reachable t ~src:0 ~dst:1 ~now:1_000);
  drain t;
  Alcotest.(check (list int)) "delivered after the heal" [ 42 ] (got 1);
  Alcotest.(check bool) "reachable after the heal" true
    (Transport.reachable t ~src:0 ~dst:1 ~now:6_000_000);
  Alcotest.(check int) "no link gave up" 0 (Transport.stats t).Transport.gave_up

let test_permanent_partition_exhausts_budget () =
  let policy _ _ =
    Policy.make
      ~partitions:[ Policy.partition ~from_ns:0 ~until_ns:max_int () ]
      ()
  in
  let t, got = make_transport ~policy ~max_retries:6 ~nprocs:2 ~seed:13 () in
  Transport.send t ~now:0 ~src:0 ~dst:1 7;
  drain t;
  Alcotest.(check (list int)) "nothing delivered" [] (got 1);
  Alcotest.(check bool) "link latched failed" true
    (Transport.link_failed t ~src:0 ~dst:1);
  Alcotest.(check bool) "any_failed sees it" true (Transport.any_failed t);
  Alcotest.(check int) "frame abandoned" 1 (Transport.stats t).Transport.gave_up

let test_asymmetric_ack_loss () =
  (* Data 0->1 flows clean; every ack (1->0) is lost.  Retransmissions
     keep arriving, the receiver dedups every one of them, and delivery
     stays exactly-once even though the sender eventually gives up. *)
  let policy src _dst =
    if src = 1 then Policy.make ~drop:1.0 () else Policy.reliable
  in
  let t, got = make_transport ~policy ~max_retries:5 ~nprocs:2 ~seed:21 () in
  Transport.send t ~now:0 ~src:0 ~dst:1 99;
  drain t;
  Alcotest.(check (list int)) "delivered exactly once" [ 99 ] (got 1);
  let s = Transport.stats t in
  Alcotest.(check int) "every retransmission deduped" s.Transport.retransmits
    s.Transport.dup_frames;
  Alcotest.(check bool) "sender gave up without an ack" true
    (s.Transport.gave_up > 0)

(* --- dependency vectors over a stormy wire ------------------------------- *)

(* The message-logging protocols piggyback a dependency vector on every
   application message.  The vector rides the same unreliable wire as
   the value it annotates, so the transport must hand both to the
   receiver exactly once, in order, with the vector intact — and the
   [measure] hook must account for the piggyback bytes on every wire
   attempt, retransmissions included. *)
let dv_piggyback_roundtrip_prop =
  QCheck.Test.make ~name:"dv piggyback survives loss, duplication, reorder"
    ~count:40
    QCheck.(triple (1 -- 30) (0 -- 1000) (0 -- 2))
    (fun (n, seed, storm_ix) ->
      let nprocs = 4 in
      let src = 0 and dst = 1 in
      let policy _ _ =
        match storm_ix with
        | 0 -> Policy.reliable
        | 1 -> Policy.make ~drop:0.3 ~duplicate:0.2 ()
        | _ ->
            Policy.make ~drop:0.2 ~duplicate:0.1 ~reorder:0.5
              ~reorder_ns:400_000 ()
      in
      (* 8 bytes of value + 8 per vector component, like a real frame *)
      let measure (_, dv) = 8 + (8 * Ft_core.Vclock.size dv) in
      let delivered = ref [] in
      let deliver ~at:_ ~src:_ ~dst:_ pair = delivered := pair :: !delivered in
      let t =
        Transport.create ~policy ~measure ~seed ~nprocs ~latency_ns:latency
          ~jitter_ns:jitter ~deliver ()
      in
      let vc = Ft_core.Vclock.create nprocs in
      for i = 0 to n - 1 do
        Ft_core.Vclock.tick vc src;
        Transport.send t ~now:(i * 1_000) ~src ~dst
          (i, Ft_core.Vclock.copy vc)
      done;
      drain t;
      let got = List.rev !delivered in
      let receiver = Ft_core.Vclock.create nprocs in
      List.iter (fun (_, dv) -> Ft_core.Vclock.merge_into ~into:receiver dv)
        got;
      let s = Transport.stats t in
      let per_msg = 8 + (8 * nprocs) in
      List.map fst got = List.init n Fun.id
      && List.for_all
           (fun (i, dv) -> Ft_core.Vclock.get dv src = i + 1)
           got
      && Ft_core.Vclock.get receiver src = n
      && s.Transport.payload_bytes = n * per_msg
      && s.Transport.wire_bytes >= s.Transport.payload_bytes
      && (s.Transport.retransmits = 0
          || s.Transport.wire_bytes > s.Transport.payload_bytes))

(* --- engine integration -------------------------------------------------- *)

let pingpong_programs ~rounds =
  let client =
    program
      [
        func "main" []
          [
            Let ("i", Int 0);
            Let ("v", Int 0);
            Let ("src", Int 0);
            While
              ( Var "i" <: Int rounds,
                [
                  Send_msg (Int 1, Var "i");
                  Recv_msg ("v", "src");
                  Output (Var "v");
                  Set ("i", Var "i" +: Int 1);
                ] );
          ];
      ]
  in
  let server =
    program
      [
        func "main" []
          [
            Let ("i", Int 0);
            Let ("v", Int 0);
            Let ("src", Int 0);
            While
              ( Var "i" <: Int rounds,
                [
                  Recv_msg ("v", "src");
                  Send_msg (Var "src", Var "v" *: Int 10);
                  Set ("i", Var "i" +: Int 1);
                ] );
          ];
      ]
  in
  [| Ft_vm.Asm.compile client; Ft_vm.Asm.compile server |]

let pingpong_reference rounds = List.init rounds (fun i -> i * 10)

let run_pingpong ?(cfg = Ft_runtime.Engine.default_config) ?policy
    ?(net_seed = 1) ~rounds () =
  let kernel = Ft_os.Kernel.create ~nprocs:2 () in
  (match policy with
  | Some p -> ignore (Ft_os.Kernel.attach_net ~policy:p ~seed:net_seed kernel)
  | None -> ());
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:(pingpong_programs ~rounds) ()
  in
  r

let test_clean_transport_matches_reference () =
  let r = run_pingpong ~policy:Policy.reliable ~rounds:5 () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check (list int)) "same output as the reliable kernel path"
    (pingpong_reference 5) r.Ft_runtime.Engine.visible

let storm = Policy.make ~drop:0.2 ~duplicate:0.05 ~reorder:0.1 ()

let test_storm_all_protocols () =
  (* 20% loss + 5% duplication + 10% reordering: every protocol must
     still complete with exactly the reference output — retransmission
     and reassembly hide the wire entirely when nobody crashes. *)
  List.iter
    (fun spec ->
      let cfg =
        { Ft_runtime.Engine.default_config with protocol = spec }
      in
      let r = run_pingpong ~cfg ~policy:storm ~rounds:5 () in
      Alcotest.(check bool)
        (spec.Ft_core.Protocol.spec_name ^ " completes")
        true
        (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
      Alcotest.(check (list int))
        (spec.Ft_core.Protocol.spec_name ^ " output")
        (pingpong_reference 5) r.Ft_runtime.Engine.visible)
    Ft_core.Protocols.figure8_extended

let test_storm_with_kill_consistent () =
  (* Loss and a stop failure together: rollback redelivery duplicates
     meet retransmission duplicates, and the output must still be
     consistent modulo duplicates. *)
  let cfg =
    { Ft_runtime.Engine.default_config with kills = [ (1_000_000, 1) ] }
  in
  let r = run_pingpong ~cfg ~policy:storm ~rounds:6 () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent modulo duplicates" true
    (Ft_core.Consistency.is_consistent
       ~reference:(pingpong_reference 6)
       ~observed:r.Ft_runtime.Engine.visible);
  Alcotest.(check bool) "Save-work upheld" true
    (Ft_core.Save_work.holds r.Ft_runtime.Engine.trace)

let test_permanent_partition_degrades () =
  (* The link never heals: instead of wedging in Block_recv forever, the
     retry budget runs out and the run ends Net_unreachable. *)
  let policy =
    Policy.make
      ~partitions:[ Policy.partition ~from_ns:0 ~until_ns:max_int () ]
      ()
  in
  let r = run_pingpong ~policy ~rounds:3 () in
  Alcotest.(check bool) "degraded, not wedged" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Net_unreachable)

(* Three processes for the 2PC tests: the usual ping-pong pair plus a
   bystander that sleeps through the run — live, so every global commit
   must include it, but off the data path, so a partition between it and
   the coordinator exercises exactly the prepare timeout. *)
let threeproc_programs ~rounds =
  let pp = pingpong_programs ~rounds in
  let bystander =
    program [ func "main" [] [ Sleep (Int 50_000) ] ]
  in
  [| pp.(0); pp.(1); Ft_vm.Asm.compile bystander |]

let run_threeproc ?(cfg = Ft_runtime.Engine.default_config) ~policy ~rounds ()
    =
  let kernel = Ft_os.Kernel.create ~nprocs:3 () in
  ignore (Ft_os.Kernel.attach_net ~policy ~seed:1 kernel);
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:(threeproc_programs ~rounds) ()
  in
  r

let test_2pc_rides_out_healing_partition () =
  (* The bystander is unreachable when the first visible triggers a
     global commit; the coordinator presumes abort, backs off, and the
     healed partition lets a later round commit.  Nothing wedges and the
     output is exact. *)
  let policy =
    Policy.make
      ~partitions:
        [
          Policy.partition ~src:0 ~dst:2 ~from_ns:0 ~until_ns:2_000_000 ();
        ]
      ()
  in
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cpv_2pc }
  in
  let r = run_threeproc ~cfg ~policy ~rounds:3 () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check (list int)) "exact output" (pingpong_reference 3)
    r.Ft_runtime.Engine.visible;
  Alcotest.(check bool) "at least one round presumed aborted" true
    (r.Ft_runtime.Engine.aborted_rounds > 0);
  (* No crashes in this run, so nothing can be orphaned by the aborted
     rounds.  (Whole-trace Save-work is raced by the server halting
     before the client's final round — a property of 2PC with halted
     participants on the reliable path too, not of the timeout.) *)
  Alcotest.(check (list int)) "no orphans" []
    (Ft_core.Save_work.orphans r.Ft_runtime.Engine.trace)

let test_2pc_permanent_partition_gives_up () =
  let policy =
    Policy.make
      ~partitions:
        [ Policy.partition ~src:0 ~dst:2 ~from_ns:0 ~until_ns:max_int () ]
      ()
  in
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cpv_2pc }
  in
  let r = run_threeproc ~cfg ~policy ~rounds:3 () in
  Alcotest.(check bool) "degraded to Net_unreachable" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Net_unreachable);
  Alcotest.(check bool) "rounds were aborted before giving up" true
    (r.Ft_runtime.Engine.aborted_rounds
    > Ft_runtime.Engine.default_config.Ft_runtime.Engine.twopc_max_retries)

(* --- the duplicate-filter audit (satellite regression) ------------------- *)

(* A message that is BOTH retransmitted (the sender's rollback replays
   the send through the transport, minting a fresh wire sequence for the
   same msg_seq) AND redelivered after receiver rollback (the recovery
   buffer requeues it) must be consumed exactly once.  This is the
   layering the whole stack leans on: wire-level duplicates die in the
   transport's reassembly buffer, replay duplicates die in the kernel's
   per-sender msg_seq filter, and rollback redelivery bypasses both by
   requeuing the original message with its original msg_seq. *)
let test_retransmit_plus_redelivery_consumed_once () =
  let kernel = Ft_os.Kernel.create ~nprocs:2 () in
  let tr =
    Ft_os.Kernel.attach_net
      ~policy:(Policy.make ~duplicate:1.0 ())
      ~seed:5 kernel
  in
  let recv ~now =
    match
      Ft_os.Kernel.service kernel ~pid:1 ~now ~a0:0 ~a1:0
        Ft_vm.Syscall.Try_recv
    with
    | Ft_os.Kernel.Served s -> Option.value ~default:(-1) s.Ft_os.Kernel.r0
    | _ -> Alcotest.fail "Try_recv blocked or panicked"
  in
  let send ~now =
    match
      Ft_os.Kernel.service kernel ~pid:0 ~now ~a0:1 ~a1:77 Ft_vm.Syscall.Send
    with
    | Ft_os.Kernel.Served _ -> ()
    | _ -> Alcotest.fail "Send failed"
  in
  (* sender snapshot before the send, receiver snapshot before consuming *)
  let sender_pre = Ft_os.Kernel.snapshot_kstate kernel 0 in
  let receiver_pre = Ft_os.Kernel.snapshot_kstate kernel 1 in
  send ~now:0;
  drain tr;
  (* wire duplication happened below the kernel *)
  Alcotest.(check bool) "wire duplicated the frame" true
    ((Transport.stats tr).Transport.dup_frames > 0);
  Alcotest.(check int) "first consume" 77 (recv ~now:1_000_000);
  (* receiver rolls back: the consumed message is requeued *)
  Ft_os.Kernel.restore_kstate kernel 1 receiver_pre;
  Ft_os.Kernel.requeue_uncommitted kernel 1;
  (* sender rolls back too and replays its send: same msg_seq, fresh
     wire sequence — a retransmission-shaped duplicate *)
  Ft_os.Kernel.restore_kstate kernel 0 sender_pre;
  send ~now:2_000_000;
  drain tr;
  Alcotest.(check int) "redelivered original consumed once" 77
    (recv ~now:3_000_000);
  Alcotest.(check int) "replayed duplicate filtered" (-1)
    (recv ~now:3_000_001);
  Alcotest.(check int) "still nothing" (-1) (recv ~now:3_000_002)

let () =
  Alcotest.run "ft_net"
    [
      ( "transport",
        [
          Alcotest.test_case "reliable in order" `Quick test_reliable_in_order;
          Alcotest.test_case "reorder hidden by reassembly" `Quick
            test_reorder_still_in_order;
          Alcotest.test_case "duplicates deduped" `Quick
            test_duplicates_deduped;
          Alcotest.test_case "loss recovered" `Quick
            test_loss_recovered_by_retransmission;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "permanent partition exhausts budget" `Quick
            test_permanent_partition_exhausts_budget;
          Alcotest.test_case "asymmetric ack loss" `Quick
            test_asymmetric_ack_loss;
          QCheck_alcotest.to_alcotest dv_piggyback_roundtrip_prop;
        ] );
      ( "engine",
        [
          Alcotest.test_case "clean transport matches reference" `Quick
            test_clean_transport_matches_reference;
          Alcotest.test_case "storm, all protocols" `Quick
            test_storm_all_protocols;
          Alcotest.test_case "storm with kill consistent" `Quick
            test_storm_with_kill_consistent;
          Alcotest.test_case "permanent partition degrades" `Quick
            test_permanent_partition_degrades;
          Alcotest.test_case "2pc rides out healing partition" `Quick
            test_2pc_rides_out_healing_partition;
          Alcotest.test_case "2pc permanent partition gives up" `Quick
            test_2pc_permanent_partition_gives_up;
        ] );
      ( "dup filter",
        [
          Alcotest.test_case "retransmit + redelivery consumed once" `Quick
            test_retransmit_plus_redelivery_consumed_once;
        ] );
    ]
