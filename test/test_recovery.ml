(* Tests for the escalating-recovery subsystem: the policy ladder, the
   quarantine circuit breaker, the fault classifier, and the scheduler
   machinery the ladder rides on — crash-bar escalation, deep rollback,
   and the sequenced egress channel (exactly-once visible output under
   policy-driven recovery). *)

open Ft_vm.Asm
module Policy = Ft_recovery.Policy
module Quarantine = Ft_recovery.Quarantine
module Classifier = Ft_recovery.Classifier
module Engine = Ft_runtime.Engine

(* --- policy ladder --------------------------------------------------------- *)

let test_policy_ladder_shape () =
  let check_ladder name pol expected =
    List.iteri
      (fun i want ->
        let got = Policy.decide pol ~attempt:(i + 1) in
        Alcotest.(check bool)
          (Printf.sprintf "%s attempt %d" name (i + 1))
          true (got = want))
      expected
  in
  check_ladder "generic" Policy.generic
    [ Policy.Replay; Policy.Replay; Policy.Give_up ];
  check_ladder "deep" Policy.deep
    [
      Policy.Replay; Policy.Replay; Policy.Deep_rollback 2;
      Policy.Deep_rollback 2; Policy.Give_up;
    ];
  check_ladder "full" Policy.full
    [
      Policy.Replay; Policy.Replay; Policy.Deep_rollback 2;
      Policy.Deep_rollback 2; Policy.Perturbed_replay { salt = 1 };
      Policy.Perturbed_replay { salt = 2 }; Policy.Perturbed_replay { salt = 3 };
      Policy.Give_up;
    ]

let test_policy_names_and_budgets () =
  List.iter
    (fun n ->
      match Policy.by_name n with
      | None -> Alcotest.fail ("by_name " ^ n)
      | Some pol -> Alcotest.(check string) ("name " ^ n) n (Policy.name pol))
    [ "generic"; "deep"; "full" ];
  Alcotest.(check bool) "unknown ladder" true (Policy.by_name "l33t" = None);
  Alcotest.(check int) "generic budget" 2 (Policy.max_attempts Policy.generic);
  Alcotest.(check int) "deep budget" 4 (Policy.max_attempts Policy.deep);
  Alcotest.(check int) "full budget" 7 (Policy.max_attempts Policy.full);
  Alcotest.(check int) "give-up rung" 3 (Policy.rung Policy.Give_up)

(* --- quarantine breaker ---------------------------------------------------- *)

let qp =
  {
    Quarantine.window_ns = 100;
    threshold = 2;
    backoff_ns = 50;
    backoff_mult = 2.0;
    max_trips = 2;
  }

let test_quarantine_trips_and_parks () =
  let b = Quarantine.create qp in
  Alcotest.(check bool) "first crash below threshold" true
    (Quarantine.note_crash b ~now_ns:0 = `Ok);
  (match Quarantine.note_crash b ~now_ns:10 with
  | `Park_until t ->
      Alcotest.(check int) "parked for backoff_ns" 60 t;
      Alcotest.(check bool) "open until deadline" false
        (Quarantine.probe b ~now_ns:59);
      Alcotest.(check bool) "half-open at deadline" true
        (Quarantine.probe b ~now_ns:60);
      Alcotest.(check bool) "half-open state" true
        (Quarantine.state b = Quarantine.Half_open)
  | _ -> Alcotest.fail "second crash in window should trip");
  Alcotest.(check int) "one trip" 1 (Quarantine.trips b)

let test_quarantine_latches () =
  let b = Quarantine.create qp in
  ignore (Quarantine.note_crash b ~now_ns:0);
  ignore (Quarantine.note_crash b ~now_ns:10);
  (* trip 1 *)
  Alcotest.(check bool) "probe opens half-open" true
    (Quarantine.probe b ~now_ns:1_000);
  (* a failed probe re-trips with a doubled park (trip 2 of 2) *)
  (match Quarantine.note_crash b ~now_ns:1_001 with
  | `Park_until t ->
      Alcotest.(check int) "second park doubled" (1_001 + 100) t
  | _ -> Alcotest.fail "failed probe should re-park");
  Alcotest.(check bool) "probe reopens once more" true
    (Quarantine.probe b ~now_ns:2_000);
  (* trip 3 exceeds max_trips = 2: latch open for good *)
  Alcotest.(check bool) "third trip latches" true
    (Quarantine.note_crash b ~now_ns:2_001 = `Latched);
  Alcotest.(check bool) "latched forever" false
    (Quarantine.probe b ~now_ns:1_000_000_000_000);
  Alcotest.(check bool) "crashes while latched stay latched" true
    (Quarantine.note_crash b ~now_ns:2_002 = `Latched)

let test_quarantine_progress_resets () =
  let b = Quarantine.create qp in
  ignore (Quarantine.note_crash b ~now_ns:0);
  ignore (Quarantine.note_crash b ~now_ns:10);
  Quarantine.note_progress b;
  Alcotest.(check bool) "closed after progress" true
    (Quarantine.state b = Quarantine.Closed);
  Alcotest.(check int) "trips cleared" 0 (Quarantine.trips b);
  Alcotest.(check bool) "window cleared too" true
    (Quarantine.note_crash b ~now_ns:11 = `Ok)

let test_quarantine_window_slides () =
  let b = Quarantine.create qp in
  ignore (Quarantine.note_crash b ~now_ns:0);
  (* 200ns later: the first crash is out of the 100ns window *)
  Alcotest.(check bool) "stale crash aged out" true
    (Quarantine.note_crash b ~now_ns:200 = `Ok)

(* --- classifier ------------------------------------------------------------ *)

let test_classifier_verdicts () =
  let mk () = Classifier.create () in
  let c = mk () in
  Alcotest.(check bool) "benign" true (Classifier.classify c = Classifier.Benign);
  let c = mk () in
  Classifier.note_crash c ~salt:0 ~icount:100;
  Classifier.note_crash c ~salt:0 ~icount:100;
  Alcotest.(check bool) "same-icount pair" true (Classifier.same_icount_pair c);
  Alcotest.(check bool) "bohrbug" true
    (Classifier.classify c = Classifier.Bohrbug);
  let c = mk () in
  Classifier.note_crash c ~salt:0 ~icount:100;
  Classifier.note_progress c ~rung:0;
  Alcotest.(check bool) "transient" true
    (Classifier.classify c = Classifier.Transient);
  let c = mk () in
  Classifier.note_crash c ~salt:0 ~icount:100;
  Classifier.note_crash c ~salt:0 ~icount:250;
  Classifier.note_progress c ~rung:0;
  Alcotest.(check bool) "wandering crashes + rescue = heisenbug" true
    (Classifier.classify c = Classifier.Heisenbug);
  let c = mk () in
  Classifier.note_crash c ~salt:0 ~icount:100;
  Classifier.note_crash c ~salt:0 ~icount:100;
  Classifier.note_progress c ~rung:2;
  Alcotest.(check bool) "L2 rescue = heisenbug even with a pair" true
    (Classifier.classify c = Classifier.Heisenbug);
  let c = mk () in
  Classifier.note_crash c ~salt:0 ~icount:100;
  Classifier.note_crash c ~salt:1 ~icount:100;
  Alcotest.(check bool) "cross-salt crashes are no pair" false
    (Classifier.same_icount_pair c);
  Alcotest.(check bool) "sticky" true
    (Classifier.classify c = Classifier.Sticky)

(* --- the ladder on a real engine ------------------------------------------- *)

(* The canonical echo workload from test_runtime, with a deterministic
   Bohrbug planted after the last output: the program's Halt becomes a
   wild jump, so the run crashes at the very end — past every commit —
   and every replay, at any rung, re-executes the crash at the same
   icount. *)
let echo_program =
  program
    [
      func "main" []
        [
          Let ("c", Int 0);
          Let ("quit", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("c", Input);
                If
                  ( Var "c" <: Int 0,
                    [ Set ("quit", Int 1) ],
                    [ Output (Var "c" *: Int 2) ] );
              ] );
        ];
    ]

let tokens = [ 3; 1; 4; 1; 5; 9; 2; 6 ]
let expected_output = List.map (fun x -> x * 2) tokens

let make_kernel () =
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:1_000_000 tokens);
  kernel

let bohr_code () =
  let code = Ft_vm.Asm.compile echo_program in
  Array.iteri
    (fun i ins -> if ins = Ft_vm.Instr.Halt then code.(i) <- Ft_vm.Instr.Jmp (-1))
    code;
  code

let run_bohr ?policy () =
  let cfg = { Engine.default_config with policy } in
  let kernel = make_kernel () in
  let _, r = Engine.execute ~cfg ~kernel ~programs:[| bohr_code () |] () in
  r

(* Every rung of every ladder meets the same deterministic crash; the
   ladder burns exactly its budget, the classifier calls it a Bohrbug,
   and — the Consistency half of the tentpole claim — the released
   output stream is EXACTLY the fault-free stream: deep rollback
   re-emits old outputs and the sequenced egress absorbs every one. *)
let test_ladder_bohrbug_escalation () =
  List.iter
    (fun (name, pol, crashes, deep, perturbed, peak) ->
      let r = run_bohr ~policy:pol () in
      let check msg = Alcotest.(check int) (name ^ " " ^ msg) in
      Alcotest.(check bool) (name ^ " gave up") true
        (r.Engine.outcome = Engine.Recovery_failed);
      check "crashes" crashes r.Engine.crashes;
      check "deep rollbacks" deep r.Engine.deep_rollbacks;
      check "perturbed replays" perturbed r.Engine.perturbed_replays;
      check "ladder peak" peak r.Engine.ladder_peaks.(0);
      check "replay mismatches" 0 r.Engine.replay_mismatches;
      Alcotest.(check (list int)) (name ^ " exactly-once output")
        expected_output r.Engine.visible;
      Alcotest.(check bool) (name ^ " classified bohrbug") true
        (r.Engine.fault_classes.(0) = Classifier.Bohrbug))
    [
      ("generic", Policy.generic, 3, 0, 0, 0);
      ("deep", Policy.deep, 5, 2, 0, 1);
      ("full", Policy.full, 8, 2, 3, 2);
    ]

(* The crash bar: commits made during replay BELOW the highest crash
   icount must not reset the attempt counter.  The echo program commits
   on every re-emitted output during replay; without the bar those
   commits would re-arm rung L0 forever and the generic ladder would
   spin to the instruction budget instead of giving up after its two
   replays. *)
let test_crash_bar_prevents_l0_loop () =
  let r = run_bohr ~policy:Policy.generic () in
  Alcotest.(check bool) "gave up (did not spin)" true
    (r.Engine.outcome = Engine.Recovery_failed);
  Alcotest.(check int) "exactly the L0 budget" 3 r.Engine.crashes

(* Legacy guard: the same Bohrbug on the policy-free path keeps the
   engine's historical behavior — duplicates in the visible stream are
   tolerated (no egress dedup without a policy), and the run still ends
   in Recovery_failed. *)
let test_legacy_path_unchanged () =
  let r = run_bohr () in
  Alcotest.(check bool) "legacy gave up" true
    (r.Engine.outcome = Engine.Recovery_failed);
  Alcotest.(check bool) "legacy output consistent" true
    (Ft_core.Consistency.is_consistent ~reference:expected_output
       ~observed:r.Engine.visible);
  Alcotest.(check int) "mismatch counter dormant" 0 r.Engine.replay_mismatches

(* Sequenced egress under plain stop failures: a policy run with kills
   must release each output exactly once — not merely a consistent
   stream with tolerated duplicates, the exact fault-free stream. *)
let test_egress_exactly_once_under_kills () =
  let cfg =
    {
      Engine.default_config with
      policy = Some Policy.generic;
      kills = [ (2_100_000, 0); (5_300_000, 0) ];
    }
  in
  let kernel = make_kernel () in
  let _, r =
    Engine.execute ~cfg ~kernel
      ~programs:[| Ft_vm.Asm.compile echo_program |] ()
  in
  Alcotest.(check bool) "completed" true (r.Engine.outcome = Engine.Completed);
  Alcotest.(check (list int)) "exactly the reference stream" expected_output
    r.Engine.visible;
  Alcotest.(check int) "no replay mismatches" 0 r.Engine.replay_mismatches

(* --- classifier properties on the real runtime (qcheck) -------------------- *)

let echo_horizon =
  lazy
    (let kernel = make_kernel () in
     let _, r =
       Engine.execute ~cfg:Engine.default_config ~kernel
         ~programs:[| Ft_vm.Asm.compile echo_program |] ()
     in
     r.Engine.wall_instructions)

let run_recurring ~policy ~seed ft =
  let horizon = Lazy.force echo_horizon in
  let code = Ft_vm.Asm.compile echo_program in
  let cfg =
    {
      Engine.default_config with
      policy = Some policy;
      suppress_faults_on_recovery = false;
      max_instructions = (40 * horizon) + 200_000;
    }
  in
  let kernel = make_kernel () in
  let engine = Engine.create ~cfg ~kernel ~programs:[| code |] () in
  match
    Ft_faults.App_injector.arm_recurring engine ~pid:0 ~seed ft ~code ~horizon
  with
  | None -> None
  | Some _ -> Some (Engine.run engine)

(* A recurring code mutation is the paper's propagating fault: identical-
   environment replays crash at the same icount, so whenever the run
   crashed at least twice the classifier must read the same-icount
   signature and say Bohrbug. *)
let prop_code_mutation_is_bohrbug =
  QCheck.Test.make ~name:"recurring code mutation classifies bohrbug"
    ~count:25
    QCheck.(pair (0 -- 10_000) (oneofl Ft_faults.Fault_type.[
      Destination_reg; Initialization; Delete_branch; Delete_instruction;
      Off_by_one ]))
    (fun (seed, ft) ->
      match run_recurring ~policy:Policy.generic ~seed ft with
      | None -> true
      | Some r ->
          if r.Engine.crashes >= 2 then
            r.Engine.fault_classes.(0) = Classifier.Bohrbug
          else true)

(* Recurring bit flips under the full ladder: the whole observation —
   outcome, outputs, rungs used, verdict — is a pure function of the
   seed (identical runs twice over), and when only a perturbed replay
   got the run through, the verdict is Heisenbug. *)
let prop_bit_flip_classification_deterministic =
  QCheck.Test.make
    ~name:"recurring bit flip classifies deterministically under perturbation"
    ~count:25
    QCheck.(pair (0 -- 10_000)
              (oneofl Ft_faults.Fault_type.[ Stack_bit_flip; Heap_bit_flip ]))
    (fun (seed, ft) ->
      match
        ( run_recurring ~policy:Policy.full ~seed ft,
          run_recurring ~policy:Policy.full ~seed ft )
      with
      | None, None -> true
      | Some r, Some r' ->
          r.Engine.outcome = r'.Engine.outcome
          && r.Engine.visible = r'.Engine.visible
          && r.Engine.crashes = r'.Engine.crashes
          && r.Engine.fault_classes.(0) = r'.Engine.fault_classes.(0)
          && (not
                (r.Engine.outcome = Engine.Completed
                && r.Engine.crashes > 0
                && r.Engine.perturbed_replays > 0
                && r.Engine.ladder_peaks.(0) = 2)
             || r.Engine.fault_classes.(0) = Classifier.Heisenbug)
      | _ -> false)

let tests =
  [
    Alcotest.test_case "policy ladder shape" `Quick test_policy_ladder_shape;
    Alcotest.test_case "policy names and budgets" `Quick
      test_policy_names_and_budgets;
    Alcotest.test_case "quarantine trips and parks" `Quick
      test_quarantine_trips_and_parks;
    Alcotest.test_case "quarantine latches" `Quick test_quarantine_latches;
    Alcotest.test_case "quarantine progress resets" `Quick
      test_quarantine_progress_resets;
    Alcotest.test_case "quarantine window slides" `Quick
      test_quarantine_window_slides;
    Alcotest.test_case "classifier verdicts" `Quick test_classifier_verdicts;
    Alcotest.test_case "ladder bohrbug escalation" `Quick
      test_ladder_bohrbug_escalation;
    Alcotest.test_case "crash bar prevents L0 loop" `Quick
      test_crash_bar_prevents_l0_loop;
    Alcotest.test_case "legacy path unchanged" `Quick test_legacy_path_unchanged;
    Alcotest.test_case "egress exactly-once under kills" `Quick
      test_egress_exactly_once_under_kills;
    QCheck_alcotest.to_alcotest prop_code_mutation_is_bohrbug;
    QCheck_alcotest.to_alcotest prop_bit_flip_classification_deterministic;
  ]

let () = Alcotest.run "ft_recovery" [ ("recovery", tests) ]
