(* Tests for the experiment runner: the pool runs every job exactly
   once and keeps input order, failures are contained, the JSONL store
   round-trips and resumes, and parallel sweeps render the paper's
   tables byte-identically to serial ones. *)

let mk_temp_dir () =
  let base = Filename.temp_file "ft_exp_test" "" in
  Sys.remove base;
  Unix.mkdir base 0o755;
  base

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* --- pool ----------------------------------------------------------------- *)

let test_pool_runs_each_job_once () =
  let n = 24 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  let jobs =
    List.init n (fun i ->
        Ft_exp.Job.make ~key:(Printf.sprintf "job/%d" i) ~seed:i (fun () ->
            Atomic.incr counts.(i);
            Ft_exp.Jstore.Int (i * i)))
  in
  let results = Ft_exp.Pool.run ~workers:4 jobs in
  Alcotest.(check int) "all results" n (List.length results);
  List.iteri
    (fun i (j, outcome, _) ->
      Alcotest.(check string)
        "input order preserved"
        (Printf.sprintf "job/%d" i)
        j.Ft_exp.Job.key;
      match outcome with
      | Ft_exp.Pool.Done (Ft_exp.Jstore.Int v) ->
          Alcotest.(check int) "job value" (i * i) v
      | _ -> Alcotest.fail "job did not complete")
    results;
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "job %d ran exactly once" i)
        1 (Atomic.get c))
    counts

let test_pool_contains_failures () =
  let jobs =
    List.init 8 (fun i ->
        Ft_exp.Job.make ~key:(Printf.sprintf "job/%d" i) ~seed:i (fun () ->
            if i = 3 then failwith "injected job failure";
            Ft_exp.Jstore.Int i))
  in
  let results = Ft_exp.Pool.run ~workers:4 ~retries:1 jobs in
  List.iteri
    (fun i (_, outcome, _) ->
      match (i, outcome) with
      | 3, Ft_exp.Pool.Failed { error; attempts } ->
          Alcotest.(check int) "retried before failing" 2 attempts;
          Alcotest.(check bool) "error preserved" true
            (String.length error > 0)
      | 3, Ft_exp.Pool.Done _ -> Alcotest.fail "raising job reported Done"
      | _, Ft_exp.Pool.Done (Ft_exp.Jstore.Int v) ->
          Alcotest.(check int) "other jobs unpoisoned" i v
      | _, _ -> Alcotest.fail "healthy job failed")
    results

let test_pool_survives_raising_progress_callback () =
  (* A monitoring callback that itself raises must not kill worker
     domains (it runs inside their bookkeeping, under the pool mutex):
     every job still completes and the sweep returns. *)
  let calls = Atomic.make 0 in
  let jobs =
    List.init 12 (fun i ->
        Ft_exp.Job.make ~key:(Printf.sprintf "job/%d" i) ~seed:i (fun () ->
            if i mod 5 = 2 then failwith "injected";
            Ft_exp.Jstore.Int i))
  in
  let on_progress _ =
    Atomic.incr calls;
    failwith "progress callback bug"
  in
  let results = Ft_exp.Pool.run ~workers:4 ~retries:0 ~on_progress jobs in
  Alcotest.(check int) "all slots filled" 12 (List.length results);
  Alcotest.(check bool) "callback was exercised" true (Atomic.get calls > 0);
  List.iteri
    (fun i (_, outcome, _) ->
      match outcome with
      | Ft_exp.Pool.Done (Ft_exp.Jstore.Int v) ->
          Alcotest.(check int) "value intact" i v
      | Ft_exp.Pool.Done _ -> Alcotest.fail "wrong payload"
      | Ft_exp.Pool.Failed _ ->
          Alcotest.(check int) "only injected jobs fail" 2 (i mod 5))
    results

let test_pool_surfaces_failed_count () =
  (* The failed counter rides every progress snapshot, so a sweep's
     monitor can report "3 cells failed" without scanning results. *)
  let last = Atomic.make (-1) in
  let jobs =
    List.init 10 (fun i ->
        Ft_exp.Job.make ~key:(Printf.sprintf "job/%d" i) ~seed:i (fun () ->
            if i < 3 then failwith "injected";
            Ft_exp.Jstore.Int i))
  in
  let on_progress (p : Ft_exp.Pool.progress) =
    if p.Ft_exp.Pool.finished = p.Ft_exp.Pool.total then
      Atomic.set last p.Ft_exp.Pool.failed
  in
  let results = Ft_exp.Pool.run ~workers:3 ~retries:0 ~on_progress jobs in
  let failed =
    List.length
      (List.filter
         (fun (_, o, _) ->
           match o with Ft_exp.Pool.Failed _ -> true | _ -> false)
         results)
  in
  Alcotest.(check int) "three jobs failed" 3 failed;
  Alcotest.(check int) "final snapshot agrees" 3 (Atomic.get last)

let test_pool_retry_recovers () =
  (* fails on the first attempt, succeeds on the retry *)
  let tries = Atomic.make 0 in
  let jobs =
    [
      Ft_exp.Job.make ~key:"flaky" ~seed:0 (fun () ->
          if Atomic.fetch_and_add tries 1 = 0 then failwith "first attempt";
          Ft_exp.Jstore.Bool true);
    ]
  in
  match Ft_exp.Pool.run ~workers:1 ~retries:1 jobs with
  | [ (_, Ft_exp.Pool.Done (Ft_exp.Jstore.Bool true), _) ] -> ()
  | _ -> Alcotest.fail "retry did not recover the job"

let test_pool_timeout () =
  let jobs =
    [
      Ft_exp.Job.make ~key:"slow" ~seed:0 (fun () ->
          Unix.sleepf 0.08;
          Ft_exp.Jstore.Int 1);
      Ft_exp.Job.make ~key:"fast" ~seed:1 (fun () -> Ft_exp.Jstore.Int 2);
    ]
  in
  match Ft_exp.Pool.run ~workers:1 ~timeout_s:0.02 ~retries:0 jobs with
  | [ (_, Ft_exp.Pool.Failed { error; _ }, _); (_, Ft_exp.Pool.Done _, _) ]
    ->
      Alcotest.(check bool) "timeout named in error" true
        (String.length error >= 7 && String.sub error 0 7 = "timeout")
  | _ -> Alcotest.fail "slow job not timed out / fast job affected"

let test_pool_timeout_per_attempt () =
  (* The first attempt fails fast; the retry succeeds but takes most of
     the limit.  Measured cumulatively the two attempts overrun the
     timeout — the clock must restart for each attempt, so the job is
     [Done], not a spurious timeout failure. *)
  let tries = Atomic.make 0 in
  let jobs =
    [
      Ft_exp.Job.make ~key:"flaky-slow" ~seed:0 (fun () ->
          if Atomic.fetch_and_add tries 1 = 0 then begin
            Unix.sleepf 0.06;
            failwith "first attempt"
          end;
          Unix.sleepf 0.06;
          Ft_exp.Jstore.Bool true);
    ]
  in
  match Ft_exp.Pool.run ~workers:1 ~timeout_s:0.1 ~retries:1 jobs with
  | [ (_, Ft_exp.Pool.Done (Ft_exp.Jstore.Bool true), _) ] -> ()
  | [ (_, Ft_exp.Pool.Failed { error; _ }, _) ] ->
      Alcotest.failf "within-limit retry misreported: %s" error
  | _ -> Alcotest.fail "unexpected pool result shape"

(* --- jstore --------------------------------------------------------------- *)

let value_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let leaf =
            oneof
              [
                return Ft_exp.Jstore.Null;
                map (fun b -> Ft_exp.Jstore.Bool b) bool;
                map (fun i -> Ft_exp.Jstore.Int i) int;
                map
                  (fun f -> Ft_exp.Jstore.Float f)
                  (oneof [ float; return 0.; return (-1.5e300); return 1e-7 ]);
                map (fun s -> Ft_exp.Jstore.String s) string;
              ]
          in
          if n <= 0 then leaf
          else
            oneof
              [
                leaf;
                map
                  (fun vs -> Ft_exp.Jstore.List vs)
                  (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun kvs -> Ft_exp.Jstore.Obj kvs)
                  (list_size (int_bound 4)
                     (pair string (self (n / 2))));
              ])
        n)

let rec value_eq a b =
  match (a, b) with
  | Ft_exp.Jstore.Float x, Ft_exp.Jstore.Float y ->
      (Float.is_nan x && Float.is_nan y) || x = y
  | Ft_exp.Jstore.List xs, Ft_exp.Jstore.List ys ->
      List.length xs = List.length ys && List.for_all2 value_eq xs ys
  | Ft_exp.Jstore.Obj xs, Ft_exp.Jstore.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && value_eq v1 v2)
           xs ys
  | _ -> a = b

let prop_jstore_roundtrip =
  QCheck.Test.make ~count:500 ~name:"jstore round-trips"
    (QCheck.make value_gen) (fun v ->
      match Ft_exp.Jstore.of_string (Ft_exp.Jstore.to_string v) with
      | Ok v' -> value_eq v v'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let test_jstore_rejects_garbage () =
  List.iter
    (fun s ->
      match Ft_exp.Jstore.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* --- store ---------------------------------------------------------------- *)

let sample_record i =
  {
    Ft_exp.Store.key = Printf.sprintf "sweep/job/%d" i;
    seed = 100 + i;
    status =
      (if i mod 3 = 0 then Ft_exp.Store.Failed "injected: boom" else Ft_exp.Store.Completed);
    value = Ft_exp.Jstore.Obj [ ("n", Ft_exp.Jstore.Int i) ];
    duration_s = float_of_int i *. 0.5;
  }

let test_store_roundtrip () =
  let dir = mk_temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Ft_exp.Store.load ~dir ~sweep:"t" () in
      let records = List.init 10 sample_record in
      List.iter (Ft_exp.Store.add store) records;
      Ft_exp.Store.close store;
      let reloaded = Ft_exp.Store.load ~dir ~sweep:"t" () in
      Alcotest.(check int) "all rows reloaded" 10
        (Ft_exp.Store.size reloaded);
      List.iter
        (fun (r : Ft_exp.Store.record) ->
          match
            Ft_exp.Store.find reloaded ~key:r.Ft_exp.Store.key
              ~seed:r.Ft_exp.Store.seed
          with
          | None -> Alcotest.fail ("missing " ^ r.Ft_exp.Store.key)
          | Some r' ->
              Alcotest.(check bool) "status survives" true
                (r.Ft_exp.Store.status = r'.Ft_exp.Store.status);
              Alcotest.(check bool) "value survives" true
                (value_eq r.Ft_exp.Store.value r'.Ft_exp.Store.value))
        records)

let test_store_skips_torn_line () =
  let dir = mk_temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Ft_exp.Store.load ~dir ~sweep:"t" () in
      Ft_exp.Store.add store (sample_record 1);
      Ft_exp.Store.close store;
      (* simulate a crash mid-append *)
      let oc =
        open_out_gen [ Open_wronly; Open_append ] 0o644
          (Ft_exp.Store.path store)
      in
      output_string oc "{\"key\":\"sweep/job/2\",\"se";
      close_out oc;
      let reloaded = Ft_exp.Store.load ~dir ~sweep:"t" () in
      Alcotest.(check int) "torn line ignored" 1 (Ft_exp.Store.size reloaded))

(* --- sweeps --------------------------------------------------------------- *)

let counting_jobs counter n =
  List.init n (fun i ->
      Ft_exp.Job.make ~key:(Printf.sprintf "job/%d" i) ~seed:i (fun () ->
          Atomic.incr counter;
          Ft_exp.Jstore.Int i))

let test_sweep_resume_skips_completed () =
  let dir = mk_temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let counter = Atomic.make 0 in
      let cold =
        Ft_exp.Exp.run_sweep ~workers:2 ~out_dir:dir ~quiet:true ~name:"s"
          (counting_jobs counter 12)
      in
      Alcotest.(check int) "cold: all ran" 12 cold.Ft_exp.Exp.ran;
      Alcotest.(check int) "cold: none skipped" 0 cold.Ft_exp.Exp.skipped;
      Alcotest.(check int) "cold: thunks called" 12 (Atomic.get counter);
      let warm =
        Ft_exp.Exp.run_sweep ~workers:2 ~out_dir:dir ~quiet:true ~name:"s"
          (counting_jobs counter 12)
      in
      Alcotest.(check int) "warm: none ran" 0 warm.Ft_exp.Exp.ran;
      Alcotest.(check int) "warm: all skipped" 12 warm.Ft_exp.Exp.skipped;
      Alcotest.(check int) "warm: no thunks called" 12 (Atomic.get counter);
      Alcotest.(check int) "warm: full records" 12
        (List.length warm.Ft_exp.Exp.records);
      (* --fresh ignores the cache and recomputes *)
      let fresh =
        Ft_exp.Exp.run_sweep ~workers:2 ~out_dir:dir ~quiet:true ~fresh:true
          ~name:"s" (counting_jobs counter 12)
      in
      Alcotest.(check int) "fresh: all ran" 12 fresh.Ft_exp.Exp.ran;
      Alcotest.(check int) "fresh: thunks called again" 24
        (Atomic.get counter))

let test_sweep_failed_rows_recorded () =
  let dir = mk_temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let jobs =
        List.init 5 (fun i ->
            Ft_exp.Job.make ~key:(Printf.sprintf "job/%d" i) ~seed:i
              (fun () ->
                if i = 2 then failwith "injected";
                Ft_exp.Jstore.Int i))
      in
      let sr =
        Ft_exp.Exp.run_sweep ~workers:2 ~retries:0 ~out_dir:dir ~quiet:true
          ~name:"f" jobs
      in
      Alcotest.(check int) "one failed row" 1 sr.Ft_exp.Exp.failed;
      let lookup = Ft_exp.Exp.lookup sr in
      Alcotest.(check bool) "failed job invisible to lookup" true
        (lookup "job/2" = None);
      Alcotest.(check bool) "healthy job visible" true
        (lookup "job/1" = Some (Ft_exp.Jstore.Int 1)))

(* --- determinism regression: parallel == serial --------------------------- *)

(* The acceptance bar for the whole refactor: the rendered tables are
   byte-identical at -j 1 and -j 4.  Small campaigns keep the test
   quick; determinism does not depend on campaign size because every
   trial seed derives from the campaign's identity. *)

let table1_rendered workers =
  let jobs =
    Ft_harness.Table1.jobs ~target_crashes:2 ~max_attempts:20
      ~app:Ft_harness.Table1.Postgres ()
  in
  let lookup = Ft_exp.Exp.eval_lookup ~workers jobs in
  Ft_harness.Table1.render ~app:Ft_harness.Table1.Postgres
    (Ft_harness.Table1.of_records ~target_crashes:2 ~max_attempts:20
       ~app:Ft_harness.Table1.Postgres lookup)

let test_table1_parallel_equals_serial () =
  Alcotest.(check string)
    "table1 -j1 == -j4" (table1_rendered 1) (table1_rendered 4)

let table2_rendered workers =
  let jobs =
    Ft_harness.Table2.jobs ~target_crashes:2 ~max_attempts:10
      ~app:Ft_harness.Table1.Postgres ()
  in
  let lookup = Ft_exp.Exp.eval_lookup ~workers jobs in
  Ft_harness.Table2.render ~app:Ft_harness.Table1.Postgres
    (Ft_harness.Table2.of_records ~target_crashes:2 ~max_attempts:10
       ~app:Ft_harness.Table1.Postgres lookup)

let test_table2_parallel_equals_serial () =
  Alcotest.(check string)
    "table2 -j1 == -j4" (table2_rendered 1) (table2_rendered 4)

let figure8_rendered workers =
  let jobs = Ft_harness.Figure8.jobs ~scale:0.05 Ft_harness.Figure8.Nvi in
  let lookup = Ft_exp.Exp.eval_lookup ~workers jobs in
  Ft_harness.Figure8.render
    (Ft_harness.Figure8.of_records ~scale:0.05 Ft_harness.Figure8.Nvi lookup)

let test_figure8_parallel_equals_serial () =
  Alcotest.(check string)
    "figure8 -j1 == -j4" (figure8_rendered 1) (figure8_rendered 4)

(* measure (the inline path used by tests and `ft run`) agrees with the
   job/records path used by sweeps *)
let test_measure_matches_records_path () =
  let app = Ft_harness.Figure8.Nvi in
  let via_measure = Ft_harness.Figure8.measure ~scale:0.05 app in
  let via_records =
    Ft_harness.Figure8.of_records ~scale:0.05 app
      (Ft_exp.Exp.eval_lookup ~workers:2
         (Ft_harness.Figure8.jobs ~scale:0.05 app))
  in
  Alcotest.(check string)
    "same rendering"
    (Ft_harness.Figure8.render via_measure)
    (Ft_harness.Figure8.render via_records)

(* --- exact nearest-rank percentiles -------------------------------------- *)

let test_percentile_tiny_samples () =
  Alcotest.(check int) "n=1 p50" 42 (Ft_exp.Metrics.p50 [| 42 |]);
  Alcotest.(check int) "n=1 p999" 42 (Ft_exp.Metrics.p999 [| 42 |]);
  let two = [| 20; 10 |] in
  Alcotest.(check int) "n=2 p50 lands on the first element" 10
    (Ft_exp.Metrics.p50 two);
  Alcotest.(check int) "n=2 p99 lands on the second" 20
    (Ft_exp.Metrics.p99 two);
  Alcotest.(check int) "q=1 is the max" 20 (Ft_exp.Metrics.percentile two 1.0);
  Alcotest.(check int) "input array untouched" 20 two.(0)

let test_percentile_ties () =
  let a = [| 5; 1; 5; 5; 9 |] in
  Alcotest.(check int) "p50 under ties" 5 (Ft_exp.Metrics.p50 a);
  (* rank ceil(0.8 * 5) = 4 is still inside the tied run *)
  Alcotest.(check int) "p80 under ties" 5 (Ft_exp.Metrics.percentile a 0.8);
  (* rank ceil(0.9 * 5) = 5 steps past it *)
  Alcotest.(check int) "p90 past the ties" 9 (Ft_exp.Metrics.percentile a 0.9);
  Alcotest.(check int) "p99 top" 9 (Ft_exp.Metrics.p99 a)

let test_percentile_rejects () =
  Alcotest.check_raises "empty sample"
    (Invalid_argument "Metrics.percentile: empty sample") (fun () ->
      ignore (Ft_exp.Metrics.p50 [||]));
  Alcotest.check_raises "q = 0"
    (Invalid_argument "Metrics.percentile: q outside (0, 1]") (fun () ->
      ignore (Ft_exp.Metrics.percentile [| 1 |] 0.));
  Alcotest.check_raises "q > 1"
    (Invalid_argument "Metrics.percentile: q outside (0, 1]") (fun () ->
      ignore (Ft_exp.Metrics.percentile [| 1 |] 1.5))

(* The histogram path (what sharded campaigns merge) must agree with
   expanding every cell and taking the plain percentile. *)
let prop_percentile_counts_matches_expansion =
  QCheck.Test.make ~name:"histogram percentile == expanded percentile"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 8) (pair (0 -- 100) (0 -- 3)))
        (1 -- 1000))
    (fun (cells, qm) ->
      let q = float_of_int qm /. 1000. in
      let total = List.fold_left (fun a (_, c) -> a + c) 0 cells in
      QCheck.assume (total > 0);
      let expanded =
        Array.of_list
          (List.concat_map (fun (v, c) -> List.init c (fun _ -> v)) cells)
      in
      Ft_exp.Metrics.percentile_counts (Array.of_list cells) q
      = Ft_exp.Metrics.percentile expanded q)

let tests =
  [
    Alcotest.test_case "pool runs each job once" `Quick
      test_pool_runs_each_job_once;
    Alcotest.test_case "percentile tiny samples" `Quick
      test_percentile_tiny_samples;
    Alcotest.test_case "percentile ties" `Quick test_percentile_ties;
    Alcotest.test_case "percentile rejects bad input" `Quick
      test_percentile_rejects;
    QCheck_alcotest.to_alcotest prop_percentile_counts_matches_expansion;
    Alcotest.test_case "pool contains failures" `Quick
      test_pool_contains_failures;
    Alcotest.test_case "pool survives raising progress callback" `Quick
      test_pool_survives_raising_progress_callback;
    Alcotest.test_case "pool surfaces failed count" `Quick
      test_pool_surfaces_failed_count;
    Alcotest.test_case "pool retry recovers" `Quick test_pool_retry_recovers;
    Alcotest.test_case "pool timeout" `Quick test_pool_timeout;
    Alcotest.test_case "pool timeout is per attempt" `Quick
      test_pool_timeout_per_attempt;
    QCheck_alcotest.to_alcotest prop_jstore_roundtrip;
    Alcotest.test_case "jstore rejects garbage" `Quick
      test_jstore_rejects_garbage;
    Alcotest.test_case "store round-trip" `Quick test_store_roundtrip;
    Alcotest.test_case "store skips torn line" `Quick
      test_store_skips_torn_line;
    Alcotest.test_case "sweep resume skips completed" `Quick
      test_sweep_resume_skips_completed;
    Alcotest.test_case "sweep records failures" `Quick
      test_sweep_failed_rows_recorded;
    Alcotest.test_case "table1 parallel == serial" `Slow
      test_table1_parallel_equals_serial;
    Alcotest.test_case "table2 parallel == serial" `Slow
      test_table2_parallel_equals_serial;
    Alcotest.test_case "figure8 parallel == serial" `Slow
      test_figure8_parallel_equals_serial;
    Alcotest.test_case "measure matches records path" `Slow
      test_measure_matches_records_path;
  ]

let () = Alcotest.run "ft_exp" [ ("exp", tests) ]
