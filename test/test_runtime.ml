(* Tests for the execution engine: event classification, protocol-driven
   commits, stop-failure recovery, checkpoint/restore fidelity, and the
   consistency of recovered visible output. *)

open Ft_vm.Asm

(* An interactive echo program: read tokens until -1, double each, emit. *)
let echo_program =
  program
    [
      func "main" []
        [
          Let ("c", Int 0);
          Let ("quit", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("c", Input);
                If
                  ( Var "c" <: Int 0,
                    [ Set ("quit", Int 1) ],
                    [ Output (Var "c" *: Int 2) ] );
              ] );
        ];
    ]

let tokens = [ 3; 1; 4; 1; 5; 9; 2; 6 ]

let make_kernel () =
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:1_000_000 tokens);
  kernel

let run_echo ?(cfg = Ft_runtime.Engine.default_config) () =
  let code = Ft_vm.Asm.compile echo_program in
  let kernel = make_kernel () in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:[| code |] () in
  r

let expected_output = List.map (fun x -> x * 2) tokens

let test_plain_run () =
  let r = run_echo () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check (list int)) "output" expected_output
    r.Ft_runtime.Engine.visible

let test_cpvs_commit_counts () =
  (* CPVS commits before every visible: one commit per echoed token. *)
  let r = run_echo () in
  Alcotest.(check int) "one commit per visible" (List.length tokens)
    r.Ft_runtime.Engine.commit_counts.(0)

let test_cand_commit_counts () =
  (* CAND commits after every ND event: one per Read_input (9 reads
     including the -1 that ends the session). *)
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cand }
  in
  let r = run_echo ~cfg () in
  Alcotest.(check int) "one commit per input" (List.length tokens + 1)
    r.Ft_runtime.Engine.commit_counts.(0)

let test_cand_log_commits_nothing () =
  (* All of echo's ND events are loggable user input: CAND-LOG logs them
     all and never commits. *)
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cand_log }
  in
  let r = run_echo ~cfg () in
  Alcotest.(check int) "no commits" 0 r.Ft_runtime.Engine.commit_counts.(0);
  Alcotest.(check int) "everything logged" (List.length tokens + 1)
    r.Ft_runtime.Engine.logged_counts.(0)

let test_cbndvs_between () =
  (* CBNDVS commits before a visible only when ND happened since the last
     commit: input precedes every visible, so it matches CPVS here. *)
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cbndvs }
  in
  let r = run_echo ~cfg () in
  Alcotest.(check int) "one commit per visible" (List.length tokens)
    r.Ft_runtime.Engine.commit_counts.(0)

let test_save_work_holds () =
  let r = run_echo () in
  Alcotest.(check bool) "Save-work upheld by CPVS" true
    (Ft_core.Save_work.holds r.Ft_runtime.Engine.trace)

let test_stop_failure_recovery () =
  (* Kill the process mid-session; with CPVS + auto-recovery the final
     output must be consistent with the failure-free run. *)
  let cfg =
    { Ft_runtime.Engine.default_config with
      kills = [ (3_500_000, 0) ] }
  in
  let r = run_echo ~cfg () in
  Alcotest.(check bool) "completed after recovery" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check int) "one crash" 1 r.Ft_runtime.Engine.crashes;
  Alcotest.(check bool) "consistent recovery" true
    (Ft_core.Consistency.is_consistent ~reference:expected_output
       ~observed:r.Ft_runtime.Engine.visible)

let test_stop_failure_all_protocols () =
  (* Every Save-work protocol must yield consistent recovery from a stop
     failure (the Save-work theorem, end to end). *)
  List.iter
    (fun spec ->
      let cfg =
        { Ft_runtime.Engine.default_config with
          protocol = spec;
          kills = [ (2_100_000, 0); (5_300_000, 0) ] }
      in
      let r = run_echo ~cfg () in
      Alcotest.(check bool)
        (spec.Ft_core.Protocol.spec_name ^ " completes")
        true
        (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
      Alcotest.(check bool)
        (spec.Ft_core.Protocol.spec_name ^ " consistent")
        true
        (Ft_core.Consistency.is_consistent ~reference:expected_output
           ~observed:r.Ft_runtime.Engine.visible))
    Ft_core.Protocols.figure8

let test_commit_all_overhead_exceeds_cbndvs () =
  (* More commits must cost more simulated time. *)
  let run spec =
    let cfg = { Ft_runtime.Engine.default_config with protocol = spec } in
    (run_echo ~cfg ()).Ft_runtime.Engine.sim_time_ns
  in
  let t_all = run Ft_core.Protocols.commit_all in
  let t_log = run Ft_core.Protocols.cand_log in
  Alcotest.(check bool) "commit-all slower than cand-log" true
    (t_all >= t_log)

let test_disk_medium_slower () =
  let run medium =
    let cfg = { Ft_runtime.Engine.default_config with medium } in
    (run_echo ~cfg ()).Ft_runtime.Engine.sim_time_ns
  in
  let t_mem = run Ft_runtime.Checkpointer.Reliable_memory in
  let t_disk =
    run (Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default)
  in
  Alcotest.(check bool) "disk commits cost more" true (t_disk > t_mem)

(* Two-process ping-pong over the network. *)
let pingpong_programs ~rounds =
  let client =
    program
      [
        func "main" []
          [
            Let ("i", Int 0);
            Let ("v", Int 0);
            Let ("src", Int 0);
            While
              ( Var "i" <: Int rounds,
                [
                  Send_msg (Int 1, Var "i");
                  Recv_msg ("v", "src");
                  Output (Var "v");
                  Set ("i", Var "i" +: Int 1);
                ] );
          ];
      ]
  in
  let server =
    program
      [
        func "main" []
          [
            Let ("i", Int 0);
            Let ("v", Int 0);
            Let ("src", Int 0);
            While
              ( Var "i" <: Int rounds,
                [
                  Recv_msg ("v", "src");
                  Send_msg (Var "src", Var "v" *: Int 10);
                  Set ("i", Var "i" +: Int 1);
                ] );
          ];
      ]
  in
  [| Ft_vm.Asm.compile client; Ft_vm.Asm.compile server |]

let run_pingpong ?(cfg = Ft_runtime.Engine.default_config) ~rounds () =
  let kernel = Ft_os.Kernel.create ~nprocs:2 () in
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:(pingpong_programs ~rounds) ()
  in
  r

let pingpong_reference rounds = List.init rounds (fun i -> i * 10)

let test_pingpong () =
  let r = run_pingpong ~rounds:5 () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check (list int)) "echoed" (pingpong_reference 5)
    r.Ft_runtime.Engine.visible

let test_pingpong_server_killed () =
  (* Kill the server mid-run: CPVS committed before each send, so the
     client is never an orphan and the run completes consistently. *)
  let cfg =
    { Ft_runtime.Engine.default_config with kills = [ (1_000_000, 1) ] }
  in
  let r = run_pingpong ~cfg ~rounds:6 () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent" true
    (Ft_core.Consistency.is_consistent
       ~reference:(pingpong_reference 6)
       ~observed:r.Ft_runtime.Engine.visible)

let test_pingpong_2pc () =
  (* CPV-2PC: commits only at the client's visible events, globally. *)
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cpv_2pc }
  in
  let r = run_pingpong ~cfg ~rounds:4 () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check int) "client commits at visibles" 4
    r.Ft_runtime.Engine.commit_counts.(0);
  (* The server may halt before the client's final visible, in which case
     the last 2PC round correctly leaves it out. *)
  Alcotest.(check bool) "server dragged along by 2PC" true
    (r.Ft_runtime.Engine.commit_counts.(1) >= 3)

let test_pingpong_2pc_with_kill () =
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cbndv_2pc;
      kills = [ (900_000, 1) ] }
  in
  let r = run_pingpong ~cfg ~rounds:6 () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent" true
    (Ft_core.Consistency.is_consistent
       ~reference:(pingpong_reference 6)
       ~observed:r.Ft_runtime.Engine.visible)

let test_signal_delivery () =
  (* A timer signal increments a heap counter; the program loops on input
     long enough for several deliveries. *)
  let prog =
    program
      [
        func ~is_handler:true "on_signal" []
          [ Set_heap (Int 0, Deref (Int 0) +: Int 1) ];
        func "main" []
          [
            Expr (Call ("install", []));
            Let ("c", Int 0);
            While (Var "c" >=: Int 0, [ Set ("c", Input) ]);
            Output (Deref (Int 0));
          ];
        func "install" [] [ Sigaction "on_signal" ];
      ]
  in
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:10_000_000
       [ 1; 2; 3; 4; 5 ]);
  Ft_os.Kernel.set_timer_signal kernel 0 ~period_ns:20_000_000
    ~first_at:5_000_000;
  let _, r =
    Ft_runtime.Engine.execute ~kernel
      ~programs:[| Ft_vm.Asm.compile prog |] ()
  in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  (match r.Ft_runtime.Engine.visible with
  | [ n ] -> Alcotest.(check bool) "some signals delivered" true (n >= 2)
  | _ -> Alcotest.fail "expected exactly one visible event");
  Alcotest.(check bool) "signals recorded as ND" true
    (r.Ft_runtime.Engine.nd_counts.(0) > 5)

(* --- engine edge cases ---------------------------------------------------- *)

let test_deadline_outcome () =
  (* an endless real-time loop stopped by the simulated deadline *)
  let prog =
    Ft_vm.Asm.(
      program
        [
          func "main" []
            [
              Let ("t", Int 0);
              While (Int 1, [ Set ("t", Time); Sleep (Int 1_000) ]);
            ];
        ])
  in
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  let cfg =
    { Ft_runtime.Engine.default_config with
      deadline_ns = Some 50_000_000 }
  in
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:[| Ft_vm.Asm.compile prog |] ()
  in
  Alcotest.(check bool) "deadline reached" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Deadline);
  Alcotest.(check bool) "stopped near the deadline" true
    (r.Ft_runtime.Engine.sim_time_ns >= 50_000_000)

let test_deadlock_detected () =
  (* two processes both waiting to receive: nobody ever sends *)
  let waiter =
    Ft_vm.Asm.(
      program
        [
          func "main" []
            [ Let ("v", Int 0); Let ("s", Int 0); Recv_msg ("v", "s") ];
        ])
  in
  let code = Ft_vm.Asm.compile waiter in
  let kernel = Ft_os.Kernel.create ~nprocs:2 () in
  let _, r = Ft_runtime.Engine.execute ~kernel ~programs:[| code; code |] () in
  Alcotest.(check bool) "deadlock detected" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Deadlocked)

let test_instruction_budget_outcome () =
  let spin =
    Ft_vm.Asm.(
      program
        [ func "main" [] [ While (Int 1, [ Set_heap (Int 0, Int 1) ]) ] ])
  in
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  let cfg =
    { Ft_runtime.Engine.default_config with max_instructions = 100_000 }
  in
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:[| Ft_vm.Asm.compile spin |] ()
  in
  Alcotest.(check bool) "budget tripped" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Instruction_budget)

let test_kernel_panic_recovers_all () =
  (* a pure stop-failure kernel fault against the echo program *)
  let code = Ft_vm.Asm.compile echo_program in
  let kernel = make_kernel () in
  Ft_os.Kernel.set_os_fault kernel
    {
      Ft_os.Kernel.panic_at = 2_500_000;
      touches = (fun _ -> false);
      corrupt_bit = 0;
      poke_probability = 0.;
      propagated = false;
    };
  let _, r = Ft_runtime.Engine.execute ~kernel ~programs:[| code |] () in
  Alcotest.(check bool) "panic counted as a crash" true
    (r.Ft_runtime.Engine.crashes >= 1);
  Alcotest.(check bool) "completed after reboot" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent output" true
    (Ft_core.Consistency.is_consistent ~reference:expected_output
       ~observed:r.Ft_runtime.Engine.visible);
  (* the reboot pause is charged to simulated time *)
  Alcotest.(check bool) "reboot delay charged" true
    (r.Ft_runtime.Engine.sim_time_ns
    > Ft_runtime.Engine.default_config.Ft_runtime.Engine.reboot_delay_ns)

let test_recovery_cap_gives_up () =
  (* a program that deterministically crashes right after committing:
     recovery must eventually stop retrying *)
  let prog =
    Ft_vm.Asm.(
      program
        [
          func "main" []
            [
              Output (Int 1);          (* CPVS commits before this *)
              Set_heap (Int 999_999_999, Int 1);  (* wild store: crash *)
            ];
        ])
  in
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  let cfg =
    { Ft_runtime.Engine.default_config with max_recovery_attempts = 2 }
  in
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:[| Ft_vm.Asm.compile prog |] ()
  in
  Alcotest.(check bool) "gave up" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Recovery_failed);
  Alcotest.(check int) "two recovery attempts" 2
    r.Ft_runtime.Engine.recoveries

let test_recoveries_reset_on_progress () =
  (* Three separate kills, a budget of two attempts: each recovery is
     followed by real progress (CPVS commits past the restore point), so
     the attempt counter must reset and the run complete.  Before the
     reset existed, the third kill tripped the cap even though every
     failure was transient. *)
  let cfg =
    { Ft_runtime.Engine.default_config with
      max_recovery_attempts = 2;
      (* a short reboot, so each kill lands during live execution with
         committed progress in between rather than piling up while the
         clock sits inside the first 30 s reboot *)
      reboot_delay_ns = 1_000;
      (* spaced wider than one replay cycle (1 ms think-time per input),
         so a fresh commit lands between consecutive kills *)
      kills = [ (2_100_000, 0); (4_600_000, 0); (7_100_000, 0) ] }
  in
  let r = run_echo ~cfg () in
  Alcotest.(check int) "three crashes" 3 r.Ft_runtime.Engine.crashes;
  Alcotest.(check bool) "completed: transient failures never hit the cap"
    true (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent" true
    (Ft_core.Consistency.is_consistent ~reference:expected_output
       ~observed:r.Ft_runtime.Engine.visible)

(* --- nested failures: crashing the recovery path itself ------------------ *)

let test_nested_restore_kill_completes () =
  (* A scheduled kill, then the recovering process is killed again on
     its first entry into restore: recovery must be idempotent — retry
     the restore and still finish consistently. *)
  let cfg =
    { Ft_runtime.Engine.default_config with
      kills = [ (3_500_000, 0) ];
      recovery_kills = [ (Ft_runtime.Scheduler.Mid_restore, 1) ] }
  in
  let r = run_echo ~cfg () in
  Alcotest.(check int) "nested crash fired" 1
    r.Ft_runtime.Engine.nested_crashes;
  Alcotest.(check bool) "restore crash counted" true
    (r.Ft_runtime.Engine.recovery_crashes >= 1);
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent" true
    (Ft_core.Consistency.is_consistent ~reference:expected_output
       ~observed:r.Ft_runtime.Engine.visible)

let test_nested_cascade_resumes () =
  (* Optimistic logging orphans the client when the server's volatile
     determinants die with it; killing the cascade's victim again
     mid-walk must resume the persisted worklist, not restart it. *)
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.optimistic;
      kills = [ (900_000, 1) ];
      recovery_kills = [ (Ft_runtime.Scheduler.Mid_cascade, 1) ] }
  in
  let r = run_pingpong ~cfg ~rounds:6 () in
  Alcotest.(check int) "nested crash fired" 1
    r.Ft_runtime.Engine.nested_crashes;
  Alcotest.(check bool) "cascade resumed from persisted progress" true
    (r.Ft_runtime.Engine.cascade_resumes >= 1);
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent" true
    (Ft_core.Consistency.is_consistent
       ~reference:(pingpong_reference 6)
       ~observed:r.Ft_runtime.Engine.visible)

let test_breaker_counts_nested_crashes () =
  (* The quarantine breaker's sliding window must see recovery-time
     crashes like any other: one scheduled kill plus two nested restore
     crashes reach the default threshold of three; the same kill alone
     must not trip it. *)
  let base recovery_kills =
    { Ft_runtime.Engine.default_config with
      quarantine = Some Ft_recovery.Quarantine.default_params;
      kills = [ (3_500_000, 0) ];
      recovery_kills }
  in
  let quiet = run_echo ~cfg:(base []) () in
  Alcotest.(check int) "one plain crash never trips" 0
    quiet.Ft_runtime.Engine.quarantine_trips;
  let loud =
    run_echo
      ~cfg:
        (base
           [
             (Ft_runtime.Scheduler.Mid_restore, 1);
             (Ft_runtime.Scheduler.Mid_restore, 2);
           ])
      ()
  in
  Alcotest.(check int) "both nested crashes fired" 2
    loud.Ft_runtime.Engine.nested_crashes;
  Alcotest.(check bool) "nested crashes tripped the breaker" true
    (loud.Ft_runtime.Engine.quarantine_trips >= 1);
  Alcotest.(check bool) "parked, probed, completed" true
    (loud.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent" true
    (Ft_core.Consistency.is_consistent ~reference:expected_output
       ~observed:loud.Ft_runtime.Engine.visible)

let test_det_cap_forces_flush () =
  (* Echo under causal logging records a determinant per input and,
     uncapped, never commits — the log grows with the session.  A hard
     cap must degrade to forced flush-to-checkpoint, keeping the high
     water at the cap boundary without changing the output. *)
  let run det_cap =
    let cfg =
      { Ft_runtime.Engine.default_config with
        protocol = Ft_core.Protocols.causal_log;
        det_cap }
    in
    run_echo ~cfg ()
  in
  let free = run 0 in
  Alcotest.(check int) "uncapped never flushes" 0
    free.Ft_runtime.Engine.det_forced_flushes;
  Alcotest.(check bool) "uncapped log outgrows the cap" true
    (free.Ft_runtime.Engine.det_high_water > 4);
  let capped = run 4 in
  Alcotest.(check bool) "cap hit forces flushes" true
    (capped.Ft_runtime.Engine.det_forced_flushes >= 1);
  Alcotest.(check bool) "high water pinned at the cap boundary" true
    (capped.Ft_runtime.Engine.det_high_water <= 5);
  Alcotest.(check bool) "completed" true
    (capped.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check (list int)) "output unchanged" expected_output
    capped.Ft_runtime.Engine.visible

(* The engine's own vista/region, for commit/restore fault injection. *)
let engine_vista eng =
  Ft_runtime.Checkpointer.vista (Ft_runtime.Engine.checkpointer eng) ~pid:0

let engine_region eng = Ft_stablemem.Vista.region (engine_vista eng)

(* Probe run: the write index (counted from after checkpoint zero) of
   the write that completes the first protocol commit — the [count := 0]
   store into the log-area header.  Crashing a couple of words earlier
   lands inside that commit with its undo records fully published, so
   the subsequent rollback is guaranteed to write (and can itself be
   crash-injected). *)
let first_commit_end_index =
  lazy
    (let code = Ft_vm.Asm.compile echo_program in
     let kernel = make_kernel () in
     let eng = Ft_runtime.Engine.create ~kernel ~programs:[| code |] () in
     let hdr_off = Ft_stablemem.Vista.data_words (engine_vista eng) in
     let n = ref 0 and boundary = ref (-1) in
     Ft_stablemem.Rio.set_on_write (engine_region eng)
       (Some
          (fun off v ->
            incr n;
            if !boundary < 0 && off = hdr_off && v = 0 then boundary := !n));
     ignore (Ft_runtime.Engine.run eng);
     Alcotest.(check bool) "probe saw a commit" true (!boundary > 0);
     !boundary)

let test_commit_crash_recovers () =
  (* Crash the first protocol commit two words short of its commit point
     (one-shot): the torn transaction rolls back, the process replays,
     and the re-executed commit goes through. *)
  let code = Ft_vm.Asm.compile echo_program in
  let kernel = make_kernel () in
  let eng = Ft_runtime.Engine.create ~kernel ~programs:[| code |] () in
  let inj = Ft_faults.Mem_injector.attach (engine_region eng) in
  Ft_faults.Mem_injector.arm_crash inj
    ~after:(Lazy.force first_commit_end_index - 2);
  let r = Ft_runtime.Engine.run eng in
  Alcotest.(check int) "one crash" 1 r.Ft_runtime.Engine.crashes;
  Alcotest.(check int) "restore itself never crashed" 0
    r.Ft_runtime.Engine.recovery_crashes;
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent" true
    (Ft_core.Consistency.is_consistent ~reference:expected_output
       ~observed:r.Ft_runtime.Engine.visible)

let test_restore_crash_retries_then_succeeds () =
  (* Crash near the end of the first commit (undo records published),
     then the first word of the rollback replay too: the engine must
     charge a reboot, retry the restore from the same checkpoint, and
     finish the run. *)
  let crash_at = Lazy.force first_commit_end_index - 1 in
  let code = Ft_vm.Asm.compile echo_program in
  let kernel = make_kernel () in
  let eng = Ft_runtime.Engine.create ~kernel ~programs:[| code |] () in
  let region = engine_region eng in
  let n = ref 0 and phase = ref 0 in
  Ft_stablemem.Rio.set_on_write region
    (Some
       (fun _ _ ->
         incr n;
         if !phase = 0 && !n = crash_at then begin
           phase := 1;
           raise (Ft_stablemem.Rio.Crash_point !n)
         end
         else if !phase = 1 then begin
           phase := 2;
           raise (Ft_stablemem.Rio.Crash_point !n)
         end));
  let r = Ft_runtime.Engine.run eng in
  Alcotest.(check int) "one process crash" 1 r.Ft_runtime.Engine.crashes;
  Alcotest.(check int) "one restore crash" 1
    r.Ft_runtime.Engine.recovery_crashes;
  Alcotest.(check bool) "completed despite the restore crash" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "consistent" true
    (Ft_core.Consistency.is_consistent ~reference:expected_output
       ~observed:r.Ft_runtime.Engine.visible)

let test_restore_crash_sticky_gives_up () =
  (* A sticky injector keeps crashing every restore attempt: the engine
     must degrade to Recovery_failed after max_recovery_attempts tries
     instead of looping forever. *)
  let code = Ft_vm.Asm.compile echo_program in
  let kernel = make_kernel () in
  let eng = Ft_runtime.Engine.create ~kernel ~programs:[| code |] () in
  let inj = Ft_faults.Mem_injector.attach (engine_region eng) in
  Ft_faults.Mem_injector.arm_crash ~sticky:true inj
    ~after:(Lazy.force first_commit_end_index - 2);
  let r = Ft_runtime.Engine.run eng in
  Alcotest.(check bool) "gave up" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Recovery_failed);
  Alcotest.(check int) "every restore attempt crashed"
    Ft_runtime.Engine.default_config.Ft_runtime.Engine.max_recovery_attempts
    r.Ft_runtime.Engine.recovery_crashes

(* With nothing dirty since the previous checkpoint, a commit must not
   append any page record: only the commits-counter bump and the log
   discard touch the region — far less than one page of words. *)
let test_zero_dirty_commit_no_page_records () =
  let kernel = Ft_os.Kernel.create ~seed:1 ~nprocs:1 () in
  let machine =
    Ft_vm.Machine.create ~stack_size:64 ~heap_size:1024 ~page_size:64
      [| Ft_vm.Instr.Halt |]
  in
  let ckpt =
    Ft_runtime.Checkpointer.create ~page_size:64
      ~medium:Ft_runtime.Checkpointer.Reliable_memory ~nprocs:1
      ~heap_words:1024 ~stack_words:64 ()
  in
  let commit () =
    ignore
      (Ft_runtime.Checkpointer.commit ckpt ~pid:0 ~machine
         ~kstate:(Ft_os.Kernel.snapshot_kstate kernel 0))
  in
  (* checkpoint zero, then dirty and flush a page so the log has seen
     real records before the interesting commit *)
  commit ();
  Ft_vm.Memory.write (Ft_vm.Machine.heap machine) 130 77;
  commit ();
  let region =
    Ft_stablemem.Vista.region (Ft_runtime.Checkpointer.vista ckpt ~pid:0)
  in
  let before = Ft_stablemem.Rio.words_written region in
  commit ();
  let delta = Ft_stablemem.Rio.words_written region - before in
  Alcotest.(check bool)
    (Printf.sprintf "idle commit persisted %d words (< one page)" delta)
    true
    (delta < 64)

(* Deep rollback (rung L1): the archive keeps the last [history]
   committed generations; [rollback ~back] reinstates the one [back]
   commits ago — heap words, the generation's out_seq cursor — and a
   too-deep request is refused rather than clamped. *)
let test_checkpointer_deep_rollback () =
  let kernel = Ft_os.Kernel.create ~seed:1 ~nprocs:1 () in
  let machine =
    Ft_vm.Machine.create ~stack_size:64 ~heap_size:1024 ~page_size:64
      [| Ft_vm.Instr.Halt |]
  in
  let ckpt =
    Ft_runtime.Checkpointer.create ~page_size:64 ~history:4
      ~medium:Ft_runtime.Checkpointer.Reliable_memory ~nprocs:1
      ~heap_words:1024 ~stack_words:64 ()
  in
  let commit ~out_seq =
    ignore
      (Ft_runtime.Checkpointer.commit ~out_seq ckpt ~pid:0 ~machine
         ~kstate:(Ft_os.Kernel.snapshot_kstate kernel 0))
  in
  let heap = Ft_vm.Machine.heap machine in
  commit ~out_seq:0;
  Ft_vm.Memory.write heap 130 77;
  commit ~out_seq:3;
  Ft_vm.Memory.write heap 130 99;
  commit ~out_seq:5;
  Alcotest.(check int) "three generations archived" 3
    (Ft_runtime.Checkpointer.history_depth ckpt ~pid:0);
  (* clobber live state: rollback must reinstate the archived image *)
  Ft_vm.Memory.write heap 130 1234;
  (match Ft_runtime.Checkpointer.rollback ckpt ~pid:0 ~machine ~back:1 with
  | None -> Alcotest.fail "rollback 1 refused"
  | Some (_, _, out_seq) ->
      Alcotest.(check int) "middle generation's egress cursor" 3 out_seq;
      Alcotest.(check int) "middle generation's heap word" 77
        (Ft_vm.Memory.read heap 130));
  (* the reinstated generation was re-committed as the newest: a plain
     restore now lands on it, not on the abandoned one *)
  Ft_vm.Memory.write heap 130 4321;
  (match Ft_runtime.Checkpointer.restore ckpt ~pid:0 ~machine with
  | _ ->
      Alcotest.(check int) "restore sees the rolled-back image" 77
        (Ft_vm.Memory.read heap 130));
  Alcotest.(check bool) "too-deep rollback refused" true
    (Ft_runtime.Checkpointer.rollback ckpt ~pid:0 ~machine ~back:40 = None)

(* --- multi-tenant scheduler ----------------------------------------------- *)

(* A scheduler hosting several tenants must hand every tenant exactly
   the result its own private engine would produce — outcome, outputs,
   clocks, instruction counts, trace, everything.  Heterogeneous mix:
   an echo tenant with two kills, a two-process pingpong with the
   server killed, and a clean echo on a different kernel seed. *)
let tenant_makers spec =
  let mk_echo ~seed ~kills () =
    let kernel = Ft_os.Kernel.create ~seed ~nprocs:1 () in
    Ft_os.Kernel.set_input kernel 0
      (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:1_000_000 tokens);
    ( { Ft_runtime.Engine.default_config with protocol = spec; kills },
      kernel,
      [| Ft_vm.Asm.compile echo_program |] )
  in
  let mk_pingpong ~kills () =
    let kernel = Ft_os.Kernel.create ~seed:7 ~nprocs:2 () in
    ( { Ft_runtime.Engine.default_config with protocol = spec; kills },
      kernel,
      pingpong_programs ~rounds:5 )
  in
  [|
    (fun () -> mk_echo ~seed:1 ~kills:[ (2_100_000, 0); (5_300_000, 0) ] ());
    (fun () -> mk_pingpong ~kills:[ (1_000_000, 1) ] ());
    (fun () -> mk_echo ~seed:2 ~kills:[] ());
  |]

let check_same_result ~msg r r' =
  let open Ft_runtime.Engine in
  let name field = Printf.sprintf "%s %s" msg field in
  Alcotest.(check bool) (name "outcome") true (r.outcome = r'.outcome);
  Alcotest.(check (list int)) (name "visible") r'.visible r.visible;
  Alcotest.(check int) (name "sim time") r'.sim_time_ns r.sim_time_ns;
  Alcotest.(check int) (name "instructions") r'.wall_instructions
    r.wall_instructions;
  Alcotest.(check (array int)) (name "commits") r'.commit_counts
    r.commit_counts;
  Alcotest.(check (array int)) (name "nd events") r'.nd_counts r.nd_counts;
  Alcotest.(check int) (name "crashes") r'.crashes r.crashes;
  Alcotest.(check int) (name "recoveries") r'.recoveries r.recoveries;
  Alcotest.(check bool) (name "visible times") true
    (r.visible_times = r'.visible_times);
  Alcotest.(check bool) (name "crash times") true
    (r.crash_times = r'.crash_times);
  Alcotest.(check bool) (name "trace") true
    (Ft_core.Trace.events r.trace = Ft_core.Trace.events r'.trace)

let test_scheduler_matches_private_engines () =
  List.iter
    (fun spec ->
      let mks = tenant_makers spec in
      let sched =
        Ft_runtime.Scheduler.create
          ~tenants:(Array.map (fun mk -> mk ()) mks)
          ()
      in
      let rs = Ft_runtime.Scheduler.run sched in
      Array.iteri
        (fun i mk ->
          let cfg, kernel, programs = mk () in
          let _, r' =
            Ft_runtime.Engine.execute ~cfg ~kernel ~programs ()
          in
          check_same_result
            ~msg:
              (Printf.sprintf "%s tenant %d"
                 spec.Ft_core.Protocol.spec_name i)
            rs.(i) r')
        mks)
    Ft_core.Protocols.figure8

(* Two pingpong tenants on ONE shared transport with disjoint global pid
   ranges and a lossy link policy: retransmission must carry both to
   completion, the outputs must stay consistent, and a kill in tenant 0
   must not touch tenant 1. *)
let test_scheduler_shared_transport () =
  let wnprocs = 2 and n = 2 in
  let kernels =
    Array.init n (fun i -> Ft_os.Kernel.create ~seed:(50 + i) ~nprocs:wnprocs ())
  in
  let tr =
    Ft_net.Transport.create
      ~policy:(fun _ _ -> Ft_net.Policy.make ~drop:0.2 ())
      ~seed:99 ~nprocs:(n * wnprocs) ~latency_ns:20_000 ~jitter_ns:5_000
      ~deliver:(fun ~at ~src:_ ~dst m ->
        Ft_os.Kernel.deliver_net kernels.(dst / wnprocs) ~at
          ~dst:(dst mod wnprocs) m)
      ()
  in
  Array.iteri (fun i k -> Ft_os.Kernel.set_net k ~base:(i * wnprocs) tr) kernels;
  let cfg kills = { Ft_runtime.Engine.default_config with kills } in
  let sched =
    Ft_runtime.Scheduler.create
      ~tenants:
        [|
          (cfg [ (1_000_000, 1) ], kernels.(0), pingpong_programs ~rounds:5);
          (cfg [], kernels.(1), pingpong_programs ~rounds:5);
        |]
      ()
  in
  let rs = Ft_runtime.Scheduler.run sched in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d completed" i)
        true
        (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d consistent" i)
        true
        (Ft_core.Consistency.is_consistent
           ~reference:(pingpong_reference 5)
           ~observed:r.Ft_runtime.Engine.visible))
    rs;
  Alcotest.(check int) "kill landed in tenant 0" 1
    rs.(0).Ft_runtime.Engine.crashes;
  Alcotest.(check int) "tenant 1 untouched by the kill" 0
    rs.(1).Ft_runtime.Engine.crashes

let tests =
  [
    Alcotest.test_case "plain run" `Quick test_plain_run;
    Alcotest.test_case "scheduler == private engines (all protocols)" `Quick
      test_scheduler_matches_private_engines;
    Alcotest.test_case "scheduler shared transport" `Quick
      test_scheduler_shared_transport;
    Alcotest.test_case "recoveries reset on progress" `Quick
      test_recoveries_reset_on_progress;
    Alcotest.test_case "commit crash recovers" `Quick
      test_commit_crash_recovers;
    Alcotest.test_case "restore crash retries" `Quick
      test_restore_crash_retries_then_succeeds;
    Alcotest.test_case "restore crash sticky gives up" `Quick
      test_restore_crash_sticky_gives_up;
    Alcotest.test_case "nested restore kill completes" `Quick
      test_nested_restore_kill_completes;
    Alcotest.test_case "nested cascade resumes" `Quick
      test_nested_cascade_resumes;
    Alcotest.test_case "breaker counts nested crashes" `Quick
      test_breaker_counts_nested_crashes;
    Alcotest.test_case "det cap forces flush" `Quick
      test_det_cap_forces_flush;
    Alcotest.test_case "deadline outcome" `Quick test_deadline_outcome;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "instruction budget" `Quick
      test_instruction_budget_outcome;
    Alcotest.test_case "kernel panic recovers" `Quick
      test_kernel_panic_recovers_all;
    Alcotest.test_case "recovery cap gives up" `Quick
      test_recovery_cap_gives_up;
    Alcotest.test_case "cpvs commit counts" `Quick test_cpvs_commit_counts;
    Alcotest.test_case "cand commit counts" `Quick test_cand_commit_counts;
    Alcotest.test_case "cand-log never commits" `Quick
      test_cand_log_commits_nothing;
    Alcotest.test_case "cbndvs commit counts" `Quick test_cbndvs_between;
    Alcotest.test_case "save-work holds" `Quick test_save_work_holds;
    Alcotest.test_case "stop failure recovery" `Quick
      test_stop_failure_recovery;
    Alcotest.test_case "stop failure x all protocols" `Quick
      test_stop_failure_all_protocols;
    Alcotest.test_case "commit cost ordering" `Quick
      test_commit_all_overhead_exceeds_cbndvs;
    Alcotest.test_case "disk commits slower" `Quick test_disk_medium_slower;
    Alcotest.test_case "zero-dirty commit appends no page records" `Quick
      test_zero_dirty_commit_no_page_records;
    Alcotest.test_case "checkpointer deep rollback" `Quick
      test_checkpointer_deep_rollback;
    Alcotest.test_case "pingpong" `Quick test_pingpong;
    Alcotest.test_case "pingpong server killed" `Quick
      test_pingpong_server_killed;
    Alcotest.test_case "pingpong 2pc" `Quick test_pingpong_2pc;
    Alcotest.test_case "pingpong 2pc with kill" `Quick
      test_pingpong_2pc_with_kill;
    Alcotest.test_case "signal delivery" `Quick test_signal_delivery;
  ]

let () = Alcotest.run "ft_runtime" [ ("engine", tests) ]
