(* Unit tests for the theory library: vector clocks, happens-before,
   the Save-work checker, the dangerous-paths coloring (including the
   paper's Figure 6 cases), the Lose-work analyses, consistent-recovery
   equivalence, and the protocol space. *)

open Ft_core

(* --- vector clocks ------------------------------------------------------ *)

let test_vclock_basics () =
  let a = Vclock.create 3 and b = Vclock.create 3 in
  Vclock.tick a 0;
  Alcotest.(check bool) "a > 0" true (Vclock.lt b a);
  Vclock.tick b 1;
  Alcotest.(check bool) "concurrent not lt" false (Vclock.lt a b);
  Alcotest.(check bool) "concurrent not gt" false (Vclock.lt b a);
  Vclock.merge_into ~into:b a;
  Alcotest.(check bool) "after merge a <= b" true (Vclock.leq a b)

let test_vclock_size_mismatch () =
  let a = Vclock.create 3 and b = Vclock.create 2 in
  (match Vclock.merge_into ~into:a b with
  | () -> Alcotest.fail "narrow merge must not succeed"
  | exception Vclock.Size_mismatch { expected; got } ->
      Alcotest.(check int) "expected width" 3 expected;
      Alcotest.(check int) "got width" 2 got);
  (match Vclock.merge_into ~into:b a with
  | () -> Alcotest.fail "wide merge must not succeed"
  | exception Vclock.Size_mismatch { expected; got } ->
      Alcotest.(check int) "expected width" 2 expected;
      Alcotest.(check int) "got width" 3 got);
  (* same width still merges, and the error left [a] untouched *)
  Vclock.merge_into ~into:a (Vclock.create 3);
  Alcotest.(check bool) "a unchanged" true (Vclock.equal a (Vclock.create 3))

let test_happens_before_chain () =
  let t = Trace.create ~nprocs:2 in
  let e1 = Trace.record t ~pid:0 (Event.Nd Event.Transient) in
  let s = Trace.record t ~pid:0 (Event.Send { dest = 1; tag = 1 }) in
  let r = Trace.record t ~pid:1 (Event.Receive { src = 0; tag = 1 }) in
  let v = Trace.record t ~pid:1 (Event.Visible 7) in
  Alcotest.(check bool) "e1 hb s" true (Trace.happens_before e1 s);
  Alcotest.(check bool) "s hb r" true (Trace.happens_before s r);
  Alcotest.(check bool) "e1 hb v (transitively, across the message)" true
    (Trace.happens_before e1 v);
  Alcotest.(check bool) "v not hb e1" false (Trace.happens_before v e1)

let test_concurrent_events () =
  let t = Trace.create ~nprocs:2 in
  let a = Trace.record t ~pid:0 (Event.Nd Event.Transient) in
  let b = Trace.record t ~pid:1 (Event.Nd Event.Transient) in
  Alcotest.(check bool) "independent procs concurrent" false
    (Trace.happens_before a b || Trace.happens_before b a)

(* --- Save-work ----------------------------------------------------------- *)

let test_save_work_violation_detected () =
  (* ND then visible with no commit: the coin-flip example of Fig. 1. *)
  let t = Trace.create ~nprocs:1 in
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:0 (Event.Visible 1));
  Alcotest.(check bool) "violated" false (Save_work.holds t);
  Alcotest.(check int) "one violation" 1
    (List.length (Save_work.visible_violations t))

let test_save_work_commit_cures () =
  let t = Trace.create ~nprocs:1 in
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:0 Event.Commit);
  ignore (Trace.record t ~pid:0 (Event.Visible 1));
  Alcotest.(check bool) "upheld" true (Save_work.holds t)

let test_save_work_logged_nd_exempt () =
  let t = Trace.create ~nprocs:1 in
  ignore (Trace.record t ~pid:0 ~logged:true (Event.Nd Event.Fixed));
  ignore (Trace.record t ~pid:0 (Event.Visible 1));
  Alcotest.(check bool) "logging renders the event deterministic" true
    (Save_work.holds t)

let test_save_work_commit_after_visible_insufficient () =
  let t = Trace.create ~nprocs:1 in
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:0 (Event.Visible 1));
  ignore (Trace.record t ~pid:0 Event.Commit);
  Alcotest.(check bool) "commit must happen-before the visible" false
    (Save_work.holds t)

let test_save_work_orphan_figure2 () =
  (* Figure 2: B executes ND, sends to A, A commits -> A is an orphan
     candidate; Save-work-orphan is violated. *)
  let t = Trace.create ~nprocs:2 in
  ignore (Trace.record t ~pid:1 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:1 (Event.Send { dest = 0; tag = 9 }));
  ignore (Trace.record t ~pid:0 (Event.Receive { src = 1; tag = 9 }));
  ignore (Trace.record t ~pid:0 Event.Commit);
  Alcotest.(check bool) "orphan violation present" true
    (Save_work.orphan_violations t <> []);
  (* now B crashes without committing: A is an orphan *)
  ignore (Trace.record t ~pid:1 Event.Crash);
  Alcotest.(check (list int)) "A is an orphan" [ 0 ] (Save_work.orphans t)

let test_save_work_orphan_cured_by_sender_commit () =
  let t = Trace.create ~nprocs:2 in
  ignore (Trace.record t ~pid:1 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:1 Event.Commit);
  ignore (Trace.record t ~pid:1 (Event.Send { dest = 0; tag = 9 }));
  ignore (Trace.record t ~pid:0 (Event.Receive { src = 1; tag = 9 }));
  ignore (Trace.record t ~pid:0 Event.Commit);
  Alcotest.(check bool) "sender committed first: no orphan" true
    (Save_work.holds t);
  ignore (Trace.record t ~pid:1 Event.Crash);
  Alcotest.(check (list int)) "no orphans" [] (Save_work.orphans t)

(* --- dangerous paths (Figure 6) ------------------------------------------ *)

(* Case A: a deterministic straight line into a crash: every edge is
   dangerous; committing anywhere prevents recovery. *)
let test_figure6_case_a () =
  let g =
    State_graph.make ~nstates:4
      ~edges:[ (0, 1, State_graph.Det); (1, 2, State_graph.Det);
               (2, 3, State_graph.Det) ]
      ~crash_states:[ 3 ] ()
  in
  let d = Dangerous_paths.dangerous_edges g in
  Alcotest.(check (list bool)) "all colored" [ true; true; true ]
    (Array.to_list d);
  let doomed = Dangerous_paths.doomed_states g in
  Alcotest.(check bool) "initial state doomed" true doomed.(0)

(* Case B: a transient ND event with one result avoiding the crash:
   committing before it is safe. *)
let test_figure6_case_b () =
  let g =
    State_graph.make ~nstates:5
      ~edges:
        [ (0, 1, State_graph.Det);          (* edge 0: into the choice *)
          (1, 2, State_graph.Transient_nd); (* edge 1: crash branch *)
          (1, 3, State_graph.Transient_nd); (* edge 2: safe branch *)
          (2, 4, State_graph.Det) ]         (* edge 3: crash event *)
      ~crash_states:[ 4 ] ()
  in
  let d = Dangerous_paths.dangerous_edges g in
  Alcotest.(check bool) "crash edge colored" true d.(3);
  Alcotest.(check bool) "crash-bound ND colored" true d.(1);
  Alcotest.(check bool) "safe ND not colored" false d.(2);
  Alcotest.(check bool) "pre-choice edge not colored" false d.(0);
  let doomed = Dangerous_paths.doomed_states g in
  Alcotest.(check bool) "safe to commit before the transient ND" false
    doomed.(1)

(* Case C: the same choice but fixed ND: we cannot rely on the fixed event
   taking the safe result, so committing before it is unsafe. *)
let test_figure6_case_c () =
  let g =
    State_graph.make ~nstates:5
      ~edges:
        [ (0, 1, State_graph.Det);
          (1, 2, State_graph.Fixed_nd);
          (1, 3, State_graph.Fixed_nd);
          (2, 4, State_graph.Det) ]
      ~crash_states:[ 4 ] ()
  in
  let d = Dangerous_paths.dangerous_edges g in
  Alcotest.(check bool) "crash-bound fixed ND colored" true d.(1);
  Alcotest.(check bool) "pre-choice edge colored (fixed rule)" true d.(0);
  let doomed = Dangerous_paths.doomed_states g in
  Alcotest.(check bool) "unsafe to commit before the fixed ND" true
    doomed.(1)

(* Cross-check the coloring against a brute-force reading on a diamond. *)
let test_dangerous_nontrivial_graph () =
  (* 0 -det-> 1; 1 -trans-> 2 (safe loop back to 1 terminal ok?) ... use:
     0 -> 1 det; 1 -> 2 transient; 1 -> 3 transient; 2 -> 4 det (crash);
     3 -> 5 det (terminal ok); plus 3 -> 6 fixed; 6 crash. *)
  let g =
    State_graph.make ~nstates:7
      ~edges:
        [ (0, 1, State_graph.Det);        (* 0 *)
          (1, 2, State_graph.Transient_nd); (* 1 *)
          (1, 3, State_graph.Transient_nd); (* 2 *)
          (2, 4, State_graph.Det);        (* 3: crash *)
          (3, 5, State_graph.Det);        (* 4: success *)
          (3, 6, State_graph.Fixed_nd) ]  (* 5: crash via fixed nd *)
      ~crash_states:[ 4; 6 ] ()
  in
  let d = Dangerous_paths.dangerous_edges g in
  Alcotest.(check bool) "edge to state 2 colored" true d.(1);
  (* state 3's fixed-ND crash colors edge 2 by the fixed rule, even
     though the success edge exists *)
  Alcotest.(check bool) "edge to state 3 colored via fixed rule" true d.(2);
  Alcotest.(check bool) "success edge itself not colored" false d.(4);
  (* both transient branches out of state 1 are colored (one reaches the
     crash, the other has a colored fixed-ND exit), so the "all colored"
     rule propagates the color to edge 0 as well *)
  Alcotest.(check bool) "edge 0 colored (all branches dangerous)" true d.(0)

(* Receive classification for the multi-process algorithm (§2.5). *)
let test_receive_classification () =
  let t = Trace.create ~nprocs:2 in
  (* sender: commit, then transient ND, then send -> receive is transient *)
  ignore (Trace.record t ~pid:0 Event.Commit);
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:0 (Event.Send { dest = 1; tag = 1 }));
  let r1 = Trace.record t ~pid:1 (Event.Receive { src = 0; tag = 1 }) in
  Alcotest.(check bool) "transient receive" true
    (Dangerous_paths.receive_class_of_trace t r1 = Event.Transient);
  (* sender: ND, commit, send -> the message is deterministically
     regenerated; receive is fixed *)
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:0 Event.Commit);
  ignore (Trace.record t ~pid:0 (Event.Send { dest = 1; tag = 2 }));
  let r2 = Trace.record t ~pid:1 (Event.Receive { src = 0; tag = 2 }) in
  Alcotest.(check bool) "fixed receive" true
    (Dangerous_paths.receive_class_of_trace t r2 = Event.Fixed)

(* Multi-Process Dangerous Paths Algorithm end to end (§2.5): the same
   state machine is dangerous or safe depending on the snapshot of the
   sender's commits. *)
let test_multi_process_dangerous_paths () =
  (* P's machine: state 1 has two receive outcomes — one into a crash,
     one safe (the Figure 6B/6C shape, with receives standing in for
     the non-determinism).  Whether committing at state 1 is safe
     depends on the receive's effective class, which depends on the
     snapshot of the sender's commits. *)
  let g =
    State_graph.make ~nstates:5
      ~edges:
        [ (0, 1, State_graph.Det);          (* edge 0 *)
          (1, 2, State_graph.Receive_nd 0); (* edge 1: crash branch *)
          (1, 3, State_graph.Receive_nd 0); (* edge 2: safe branch *)
          (2, 4, State_graph.Det) ]         (* edge 3: crash event *)
      ~crash_states:[ 4 ] ()
  in
  let make_trace ~sender_committed_before_send =
    let t = Trace.create ~nprocs:2 in
    if not sender_committed_before_send then begin
      ignore (Trace.record t ~pid:0 Event.Commit);
      ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient))
    end
    else begin
      ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
      ignore (Trace.record t ~pid:0 Event.Commit)
    end;
    ignore (Trace.record t ~pid:0 (Event.Send { dest = 1; tag = 5 }));
    let recv = Trace.record t ~pid:1 (Event.Receive { src = 0; tag = 5 }) in
    (t, recv)
  in
  (* transient case: the sender has uncommitted transient ND before the
     send, so during recovery the message may differ *)
  let t1, r1 = make_trace ~sender_committed_before_send:false in
  let d1 =
    Dangerous_paths.multi_process_dangerous_edges g ~trace:t1
      ~recv_event_of_edge:(fun _ -> Some r1)
  in
  Alcotest.(check bool) "crash-bound receive colored" true d1.(1);
  Alcotest.(check bool)
    "transient receives: the pre-choice edge stays safe" false d1.(0);
  (* fixed case: the sender committed before sending, so it will
     deterministically regenerate the same message *)
  let t2, r2 = make_trace ~sender_committed_before_send:true in
  let d2 =
    Dangerous_paths.multi_process_dangerous_edges g ~trace:t2
      ~recv_event_of_edge:(fun _ -> Some r2)
  in
  Alcotest.(check bool)
    "fixed receives: the whole path becomes dangerous" true d2.(0)

let test_safe_to_commit_api () =
  let g =
    State_graph.make ~nstates:3
      ~edges:[ (0, 1, State_graph.Transient_nd); (1, 2, State_graph.Det) ]
      ~crash_states:[ 2 ] ()
  in
  (* state 0: its only exit is a transient ND... whose every outcome
     crashes, so it is doomed; build a safe variant with an escape *)
  Alcotest.(check bool) "no escape: unsafe" false
    (Lose_work.safe_to_commit g ~state:0);
  let g2 =
    State_graph.make ~nstates:4
      ~edges:
        [ (0, 1, State_graph.Transient_nd); (0, 3, State_graph.Transient_nd);
          (1, 2, State_graph.Det) ]
      ~crash_states:[ 2 ] ()
  in
  Alcotest.(check bool) "transient escape exists: safe" true
    (Lose_work.safe_to_commit g2 ~state:0)

(* --- Lose-work ------------------------------------------------------------ *)

let test_lose_work_figure9 () =
  (* transient ND, fault activation (internal), visible, crash: the
     dangerous path spans from after the ND event to the crash; CPVS's
     commit before the visible violates Lose-work. *)
  let t = Trace.create ~nprocs:1 in
  let nd = Trace.record t ~pid:0 (Event.Nd Event.Transient) in
  let act = Trace.record t ~pid:0 Event.Internal in
  ignore (Trace.record t ~pid:0 Event.Commit);
  ignore (Trace.record t ~pid:0 (Event.Visible 5));
  let crash = Trace.record t ~pid:0 Event.Crash in
  let a = Lose_work.analyze t ~crash in
  Alcotest.(check bool) "not a Bohrbug" false a.Lose_work.bohrbug;
  Alcotest.(check int) "dangerous from just after the ND"
    (nd.Event.index + 1) a.Lose_work.dangerous_from;
  Alcotest.(check bool) "violated" true a.Lose_work.violated;
  Alcotest.(check bool) "table-1 criterion" true
    (Lose_work.committed_after_activation t ~activation:act ~crash);
  Alcotest.(check bool) "save-work/lose-work conflict" true
    (Lose_work.conflict t ~crash)

let test_lose_work_commit_before_nd_safe () =
  let t = Trace.create ~nprocs:1 in
  ignore (Trace.record t ~pid:0 Event.Commit);
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:0 Event.Internal);
  let crash = Trace.record t ~pid:0 Event.Crash in
  let a = Lose_work.analyze t ~crash in
  Alcotest.(check bool) "commit before the ND is safe" false
    a.Lose_work.violated

let test_lose_work_bohrbug () =
  (* No transient ND before the crash: the dangerous path reaches the
     initial (always committed) state. *)
  let t = Trace.create ~nprocs:1 in
  ignore (Trace.record t ~pid:0 Event.Internal);
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Fixed));
  let crash = Trace.record t ~pid:0 Event.Crash in
  let a = Lose_work.analyze t ~crash in
  Alcotest.(check bool) "Bohrbug" true a.Lose_work.bohrbug;
  Alcotest.(check bool) "inherently violated" true a.Lose_work.violated

(* --- consistency ----------------------------------------------------------- *)

let test_consistency_exact () =
  Alcotest.(check bool) "identical sequences" true
    (Consistency.is_consistent ~reference:[ 1; 2; 3 ] ~observed:[ 1; 2; 3 ])

let test_consistency_duplicates_ok () =
  (* a rollback may repeat already-output events *)
  Alcotest.(check bool) "duplicates tolerated" true
    (Consistency.is_consistent ~reference:[ 1; 2; 3 ]
       ~observed:[ 1; 2; 2; 3 ]);
  Alcotest.(check bool) "repeat of older output tolerated" true
    (Consistency.is_consistent ~reference:[ 1; 2; 3 ]
       ~observed:[ 1; 2; 1; 2; 3 ])

let test_consistency_wrong_value () =
  (match
     Consistency.check ~reference:[ 1; 2; 3 ] ~observed:[ 1; 9; 3 ]
   with
  | Consistency.Extra { position = 1; value = 9 } -> ()
  | v -> Alcotest.failf "unexpected verdict %a" Consistency.pp_verdict v);
  Alcotest.(check bool) "flagged" false
    (Consistency.is_consistent ~reference:[ 1; 2; 3 ] ~observed:[ 1; 9; 3 ])

let test_consistency_truncation () =
  match Consistency.check ~reference:[ 1; 2; 3 ] ~observed:[ 1 ] with
  | Consistency.Truncated { missing = 2 } -> ()
  | v -> Alcotest.failf "unexpected verdict %a" Consistency.pp_verdict v

(* --- protocol space -------------------------------------------------------- *)

let test_protocol_space_axis_rule () =
  (* §2.6: every horizontal-axis protocol prevents surviving propagation
     failures; none of the visible-effort protocols do. *)
  List.iter
    (fun name ->
      let p =
        List.find
          (fun q -> q.Protocol_space.name = name)
          Protocol_space.all
      in
      Alcotest.(check bool) (name ^ " on axis") true
        (Protocol_space.prevents_propagation_recovery p))
    [ "CAND"; "CAND-LOG"; "SBL"; "Targon/32"; "Hypervisor" ];
  List.iter
    (fun name ->
      let p =
        List.find (fun q -> q.Protocol_space.name = name) Protocol_space.all
      in
      Alcotest.(check bool) (name ^ " off axis") false
        (Protocol_space.prevents_propagation_recovery p))
    [ "CPVS"; "CBNDVS"; "CPV-2PC"; "Manetho"; "Coord-ckpt" ]

let test_protocol_space_executable_links () =
  (* Manetho and Optimistic logging are no longer literature-only: their
     points carry the name of the executable spec, which must exist and
     sit at the same coordinates (same declared effort on both axes). *)
  let linked =
    List.filter
      (fun p -> p.Protocol_space.executable <> None)
      Protocol_space.literature
  in
  Alcotest.(check (list string))
    "exactly the message-logging pair is linked"
    [ "OPTIMISTIC"; "CAUSAL-LOG" ]
    (List.filter_map (fun p -> p.Protocol_space.executable) linked);
  List.iter
    (fun p ->
      match p.Protocol_space.executable with
      | None -> ()
      | Some name -> (
          match Protocols.by_name name with
          | None -> Alcotest.failf "%s links to unknown spec %s"
                      p.Protocol_space.name name
          | Some spec ->
              Alcotest.(check (float 1e-9))
                (p.Protocol_space.name ^ " nd effort agrees")
                p.Protocol_space.nd_effort spec.Protocol.nd_effort;
              Alcotest.(check (float 1e-9))
                (p.Protocol_space.name ^ " visible effort agrees")
                p.Protocol_space.visible_effort spec.Protocol.visible_effort))
    Protocol_space.literature;
  (* and both linked specs are part of the executed extended panel *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " executed") true
        (List.exists
           (fun p -> p.Protocol_space.name = name)
           Protocol_space.executed))
    [ "CAUSAL-LOG"; "OPTIMISTIC" ]

(* Hand-built message-logging traces: the exact commit shapes the
   dependent-commit protocol emits, judged by the Save-work oracle. *)

let test_orphan_trace_dependent_round_upholds () =
  (* p0 draws unlogged ND and sends; p1's state is tainted by p0's draw.
     Before p1's visible, a dependent-commit round covers both: p0
     commits the round and acks (Send/Receive edge), then p1 commits the
     same round.  Save-work holds. *)
  let t = Trace.create ~nprocs:2 in
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:0 (Event.Send { dest = 1; tag = 0 }));
  ignore (Trace.record t ~pid:1 ~logged:true (Event.Receive { src = 0; tag = 0 }));
  ignore (Trace.record t ~pid:0 (Event.Commit_round 0));
  ignore (Trace.record t ~pid:0 (Event.Send { dest = 1; tag = -1 }));
  ignore (Trace.record t ~pid:1 ~logged:true (Event.Receive { src = 0; tag = -1 }));
  ignore (Trace.record t ~pid:1 (Event.Commit_round 0));
  ignore (Trace.record t ~pid:1 (Event.Visible 7));
  Alcotest.(check bool) "dependent round covers the taint" true
    (Save_work.holds t)

let test_orphan_trace_blind_commit_violates () =
  (* Same taint, but p1 commits alone — exactly what an orphan looks
     like: its commit does not cover p0's unlogged draw, so a crash of
     p0 after the visible loses non-determinism the output depends on. *)
  let t = Trace.create ~nprocs:2 in
  ignore (Trace.record t ~pid:0 (Event.Nd Event.Transient));
  ignore (Trace.record t ~pid:0 (Event.Send { dest = 1; tag = 0 }));
  ignore (Trace.record t ~pid:1 ~logged:true (Event.Receive { src = 0; tag = 0 }));
  ignore (Trace.record t ~pid:1 Event.Commit);
  ignore (Trace.record t ~pid:1 (Event.Visible 7));
  Alcotest.(check bool) "blind local commit leaves an orphan" false
    (Save_work.holds t);
  Alcotest.(check bool) "at least one visible violation" true
    (Save_work.visible_violations t <> [])

let test_orphan_trace_logged_determinant_exempt () =
  (* Causal logging's other half: if the determinant is logged at the
     receive and the ND itself is logged, no commit is needed at all. *)
  let t = Trace.create ~nprocs:2 in
  ignore (Trace.record t ~pid:0 ~logged:true (Event.Nd Event.Fixed));
  ignore (Trace.record t ~pid:0 (Event.Send { dest = 1; tag = 0 }));
  ignore (Trace.record t ~pid:1 ~logged:true (Event.Receive { src = 0; tag = 0 }));
  ignore (Trace.record t ~pid:1 (Event.Visible 7));
  Alcotest.(check bool) "logged determinants need no commit" true
    (Save_work.holds t)

let test_state_graph_dot () =
  let g =
    State_graph.make ~nstates:3
      ~edges:[ (0, 1, State_graph.Transient_nd); (1, 2, State_graph.Det) ]
      ~crash_states:[ 2 ] ()
  in
  let dot = State_graph.to_dot ~dangerous:(Dangerous_paths.dangerous_edges g) g in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length dot
      && (String.sub dot i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph");
  Alcotest.(check bool) "crash state filled" true (contains "fillcolor=black");
  Alcotest.(check bool) "dangerous edge red" true (contains "color=red");
  Alcotest.(check bool) "nd label" true (contains "ND")

let test_protocols_by_name () =
  Alcotest.(check bool) "lookup cand" true
    (Protocols.by_name "cand" <> None);
  Alcotest.(check bool) "lookup cpv-2pc" true
    (Protocols.by_name "CPV-2PC" <> None);
  Alcotest.(check bool) "unknown" true (Protocols.by_name "nope" = None)

(* --- qcheck properties ------------------------------------------------------ *)

let gen_kind =
  QCheck.Gen.(
    frequency
      [
        (3, return Event.Internal);
        (3, return (Event.Nd Event.Transient));
        (2, return (Event.Nd Event.Fixed));
        (3, map (fun v -> Event.Visible v) (int_bound 100));
        (3, return Event.Commit);
      ])

let arb_trace =
  QCheck.make
    QCheck.Gen.(
      list_size (int_bound 40) gen_kind
      >>= fun kinds ->
      return
        (let t = Trace.create ~nprocs:1 in
         List.iter (fun k -> ignore (Trace.record t ~pid:0 k)) kinds;
         t))
    ~print:(fun t -> Format.asprintf "%a" Trace.pp t)

(* Committing after every event always upholds Save-work. *)
let prop_commit_all_upholds =
  QCheck.Test.make ~name:"commit-after-everything upholds save-work"
    ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_bound 30) gen_kind)
       ~print:(fun ks ->
         String.concat ";" (List.map Event.kind_to_string ks)))
    (fun kinds ->
      let t = Trace.create ~nprocs:1 in
      List.iter
        (fun k ->
          ignore (Trace.record t ~pid:0 k);
          ignore (Trace.record t ~pid:0 Event.Commit))
        kinds;
      Save_work.holds t)

(* The checker is monotone: adding a commit never introduces a violation. *)
let prop_violations_subset_of_nd =
  QCheck.Test.make ~name:"every violation names an unlogged nd event"
    ~count:200 arb_trace (fun t ->
      List.for_all
        (fun v -> Event.is_nd v.Save_work.nd)
        (Save_work.violations t))

(* Happens-before is a strict partial order on any recorded trace. *)
let prop_hb_irreflexive_transitive =
  QCheck.Test.make ~name:"happens-before is a strict order" ~count:100
    arb_trace (fun t ->
      let evs = Array.of_list (Trace.events t) in
      let n = Array.length evs in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Trace.happens_before evs.(i) evs.(i) then ok := false
      done;
      (* same-process events are totally ordered by index *)
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if not (Trace.happens_before evs.(i) evs.(j)) then ok := false
        done
      done;
      !ok)

(* A consistent observation is still consistent after duplicating any
   already-seen prefix element. *)
let prop_consistency_duplicate_closure =
  QCheck.Test.make ~name:"duplicating seen output preserves consistency"
    ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_bound 10) (0 -- 20))
              (0 -- 10))
    (fun (reference, k) ->
      QCheck.assume (reference <> []);
      let observed =
        (* duplicate the element at position k mod len, in place *)
        let arr = Array.of_list reference in
        let i = k mod Array.length arr in
        Array.to_list (Array.sub arr 0 (i + 1))
        @ [ arr.(i) ]
        @ Array.to_list (Array.sub arr (i + 1) (Array.length arr - i - 1))
      in
      Consistency.is_consistent ~reference ~observed)

(* Dangerous-path coloring: a colored edge always has a path of colored
   edges leading to a crash state (soundness on random DAG-ish graphs). *)
let prop_dangerous_reaches_crash =
  let gen =
    QCheck.Gen.(
      int_range 3 10 >>= fun nstates ->
      list_size (int_bound 20)
        (triple (int_bound (nstates - 1)) (int_bound (nstates - 1))
           (int_bound 2))
      >>= fun raw ->
      int_bound (nstates - 1) >>= fun crash ->
      let edges =
        List.map
          (fun (s, d, k) ->
            ( s,
              d,
              match k with
              | 0 -> State_graph.Det
              | 1 -> State_graph.Transient_nd
              | _ -> State_graph.Fixed_nd ))
          raw
      in
      return (State_graph.make ~nstates ~edges ~crash_states:[ crash ] ()))
  in
  QCheck.Test.make ~name:"colored edges reach a crash through colored edges"
    ~count:200
    (QCheck.make gen ~print:(fun g ->
         Printf.sprintf "graph with %d states" g.State_graph.nstates))
    (fun g ->
      let colored = Dangerous_paths.dangerous_edges g in
      let nedges = State_graph.nedges g in
      (* BFS over colored edges from each colored edge's destination *)
      let reaches_crash from_state =
        let seen = Array.make g.State_graph.nstates false in
        let rec go s =
          if State_graph.is_crash_state g s then true
          else if seen.(s) then false
          else begin
            seen.(s) <- true;
            List.exists
              (fun e ->
                colored.(e.State_graph.id) && go e.State_graph.dst)
              (State_graph.out_edges g s)
          end
        in
        go from_state
      in
      let ok = ref true in
      for i = 0 to nedges - 1 do
        if colored.(i) then begin
          let e = State_graph.edge g i in
          if
            (not (State_graph.is_crash_state g e.State_graph.dst))
            && not (reaches_crash e.State_graph.dst)
          then ok := false
        end
      done;
      !ok)

(* ---- hand-computed coloring: fixed vs transient ND (paper §2.5) ----

   The user-input machine: a deterministic prologue, a fixed-ND input
   branch, then a timing-dependent branch on the input=A side where one
   arm crashes.

        0 --det--> 1 --fixed(A)--> 2 --nd--> 4 --det--> [6]   (crash)
                   |               `--nd--> 5 --det--> 7      (ok)
                   `--fixed(B)--> 3 --det--> 7                (ok)

   When the inner branch is transient, danger stays local: a retry can
   take the safe arm, so only the edge into the all-exits-crash state 4
   is colored.  When the inner branch is fixed, the redraw repeats the
   crash arm, so danger propagates backwards through every fixed edge
   all the way to the initial state. *)

let input_machine inner =
  State_graph.make ~nstates:8
    ~edges:
      [
        (0, 1, State_graph.Det);
        (* e0 *)
        (1, 2, State_graph.Fixed_nd);
        (* e1: input = A *)
        (1, 3, State_graph.Fixed_nd);
        (* e2: input = B *)
        (2, 4, inner);
        (* e3: crash-bound arm *)
        (2, 5, inner);
        (* e4: safe arm *)
        (4, 6, State_graph.Det);
        (* e5: the crash event *)
        (3, 7, State_graph.Det);
        (* e6 *)
        (5, 7, State_graph.Det);
        (* e7 *)
      ]
    ~crash_states:[ 6 ] ()

let check_coloring g ~edges ~states =
  let colored = Dangerous_paths.dangerous_edges g in
  Array.iteri
    (fun i want ->
      Alcotest.(check bool) (Printf.sprintf "edge %d" i) want colored.(i))
    edges;
  let doomed = Dangerous_paths.doomed_states g in
  Array.iteri
    (fun s want ->
      Alcotest.(check bool) (Printf.sprintf "state %d" s) want doomed.(s))
    states

let test_coloring_transient_inner () =
  check_coloring
    (input_machine State_graph.Transient_nd)
    ~edges:[| false; false; false; true; false; true; false; false |]
    ~states:[| false; false; false; false; true; false; true; false |]

let test_coloring_fixed_inner () =
  check_coloring
    (input_machine State_graph.Fixed_nd)
    ~edges:[| true; true; false; true; false; true; false; false |]
    ~states:[| true; true; true; false; true; false; true; false |]

let test_coloring_receive_classification () =
  (* same machine with the inner branch a receive: its danger footprint
     is exactly the transient machine's or the fixed machine's,
     depending on how the multi-process rule classifies the receive *)
  let g = input_machine (State_graph.Receive_nd 1) in
  check_coloring g (* default: receives treated as transient *)
    ~edges:[| false; false; false; true; false; true; false; false |]
    ~states:[| false; false; false; false; true; false; true; false |];
  let fixed _ = Event.Fixed in
  let colored = Dangerous_paths.dangerous_edges ~receive_class:fixed g in
  Alcotest.(check (list bool))
    "fixed-classified receive == fixed machine"
    (Array.to_list
       (Dangerous_paths.dangerous_edges
          (input_machine State_graph.Fixed_nd)))
    (Array.to_list colored);
  let doomed = Dangerous_paths.doomed_states ~receive_class:fixed g in
  Alcotest.(check (list bool))
    "doomed states likewise"
    (Array.to_list
       (Dangerous_paths.doomed_states (input_machine State_graph.Fixed_nd)))
    (Array.to_list doomed)

(* ---- Vclock laws (qcheck) ---- *)

let clock_of_list l =
  let t = Vclock.create (List.length l) in
  List.iteri
    (fun i n ->
      for _ = 1 to n do
        Vclock.tick t i
      done)
    l;
  t

let arb_vclock =
  QCheck.make
    ~print:(fun c -> Vclock.to_string c)
    QCheck.Gen.(map clock_of_list (list_repeat 3 (int_bound 5)))

let prop_vclock_antisymmetric =
  QCheck.Test.make ~name:"vclock leq antisymmetric, lt asymmetric" ~count:500
    QCheck.(pair arb_vclock arb_vclock)
    (fun (a, b) ->
      (if Vclock.leq a b && Vclock.leq b a then Vclock.equal a b else true)
      && if Vclock.lt a b then not (Vclock.lt b a) else true)

let prop_vclock_merge_lub =
  QCheck.Test.make ~name:"vclock merge is the least upper bound" ~count:500
    QCheck.(triple arb_vclock arb_vclock arb_vclock)
    (fun (a, b, c) ->
      let m = Vclock.copy a in
      Vclock.merge_into ~into:m b;
      Vclock.leq a m && Vclock.leq b m
      (* least: m is below exactly the common upper bounds *)
      && Vclock.leq m c = (Vclock.leq a c && Vclock.leq b c))

let prop_vclock_concurrency_symmetric =
  QCheck.Test.make ~name:"vclock concurrency is symmetric" ~count:500
    QCheck.(pair arb_vclock arb_vclock)
    (fun (a, b) ->
      let conc x y =
        (not (Vclock.lt x y)) && (not (Vclock.lt y x)) && not (Vclock.equal x y)
      in
      conc a b = conc b a)

(* ---- Consistency.check soundness (qcheck) ---- *)

(* an observation built only by replaying already-emitted values stays
   Consistent; exercised above by prop_consistency_duplicate_closure.
   Here: the two failure verdicts trigger exactly when they should. *)

let prop_consistency_extra_sound =
  QCheck.Test.make ~name:"foreign value convicts as Extra at its position"
    ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 12) (0 -- 20)) (0 -- 20))
    (fun (reference, k) ->
      let fresh = List.fold_left max 0 reference + 1 in
      let i = k mod (List.length reference + 1) in
      let observed =
        List.filteri (fun j _ -> j < i) reference
        @ [ fresh ]
        @ List.filteri (fun j _ -> j >= i) reference
      in
      match Consistency.check ~reference ~observed with
      | Consistency.Extra { position; value } -> position = i && value = fresh
      | _ -> false)

let prop_consistency_truncated_sound =
  QCheck.Test.make ~name:"dropped tail convicts as Truncated with its size"
    ~count:200
    QCheck.(pair (1 -- 12) (1 -- 12))
    (fun (n, k) ->
      let k = ((k - 1) mod n) + 1 in
      (* distinct values: the greedy scan cannot confuse a prefix
         element for a duplicate *)
      let reference = List.init n (fun i -> (i * 7) + 3) in
      let observed = List.filteri (fun j _ -> j < n - k) reference in
      match Consistency.check ~reference ~observed with
      | Consistency.Truncated { missing } -> missing = k
      | _ -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_commit_all_upholds;
      prop_violations_subset_of_nd;
      prop_hb_irreflexive_transitive;
      prop_consistency_duplicate_closure;
      prop_dangerous_reaches_crash;
      prop_vclock_antisymmetric;
      prop_vclock_merge_lub;
      prop_vclock_concurrency_symmetric;
      prop_consistency_extra_sound;
      prop_consistency_truncated_sound;
    ]

let tests =
  [
    Alcotest.test_case "vclock basics" `Quick test_vclock_basics;
    Alcotest.test_case "vclock size mismatch" `Quick
      test_vclock_size_mismatch;
    Alcotest.test_case "happens-before chain" `Quick
      test_happens_before_chain;
    Alcotest.test_case "concurrent events" `Quick test_concurrent_events;
    Alcotest.test_case "save-work violation" `Quick
      test_save_work_violation_detected;
    Alcotest.test_case "commit cures" `Quick test_save_work_commit_cures;
    Alcotest.test_case "logged nd exempt" `Quick
      test_save_work_logged_nd_exempt;
    Alcotest.test_case "late commit insufficient" `Quick
      test_save_work_commit_after_visible_insufficient;
    Alcotest.test_case "orphan (figure 2)" `Quick
      test_save_work_orphan_figure2;
    Alcotest.test_case "orphan cured" `Quick
      test_save_work_orphan_cured_by_sender_commit;
    Alcotest.test_case "figure 6 case A" `Quick test_figure6_case_a;
    Alcotest.test_case "figure 6 case B" `Quick test_figure6_case_b;
    Alcotest.test_case "figure 6 case C" `Quick test_figure6_case_c;
    Alcotest.test_case "nontrivial graph" `Quick
      test_dangerous_nontrivial_graph;
    Alcotest.test_case "receive classification" `Quick
      test_receive_classification;
    Alcotest.test_case "multi-process dangerous paths" `Quick
      test_multi_process_dangerous_paths;
    Alcotest.test_case "safe_to_commit" `Quick test_safe_to_commit_api;
    Alcotest.test_case "lose-work (figure 9)" `Quick test_lose_work_figure9;
    Alcotest.test_case "commit before nd safe" `Quick
      test_lose_work_commit_before_nd_safe;
    Alcotest.test_case "bohrbug" `Quick test_lose_work_bohrbug;
    Alcotest.test_case "consistency exact" `Quick test_consistency_exact;
    Alcotest.test_case "consistency duplicates" `Quick
      test_consistency_duplicates_ok;
    Alcotest.test_case "consistency wrong value" `Quick
      test_consistency_wrong_value;
    Alcotest.test_case "consistency truncation" `Quick
      test_consistency_truncation;
    Alcotest.test_case "protocol space axis rule" `Quick
      test_protocol_space_axis_rule;
    Alcotest.test_case "protocols by name" `Quick test_protocols_by_name;
    Alcotest.test_case "protocol space executable links" `Quick
      test_protocol_space_executable_links;
    Alcotest.test_case "orphan trace: dependent round upholds" `Quick
      test_orphan_trace_dependent_round_upholds;
    Alcotest.test_case "orphan trace: blind commit violates" `Quick
      test_orphan_trace_blind_commit_violates;
    Alcotest.test_case "orphan trace: logged determinant exempt" `Quick
      test_orphan_trace_logged_determinant_exempt;
    Alcotest.test_case "state graph dot export" `Quick test_state_graph_dot;
    Alcotest.test_case "coloring: transient inner branch" `Quick
      test_coloring_transient_inner;
    Alcotest.test_case "coloring: fixed inner branch" `Quick
      test_coloring_fixed_inner;
    Alcotest.test_case "coloring: receive classification" `Quick
      test_coloring_receive_classification;
  ]

let () =
  Alcotest.run "ft_core"
    [ ("theory", tests); ("properties", qcheck_tests) ]
