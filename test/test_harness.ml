(* Tests for the experiment harness: Figure 8 measurements respect the
   paper's orderings, the Table 1/2 campaigns produce sane rows, the
   composed analyses match the paper's arithmetic, and the report
   renderer is well-formed. *)

let find name cells =
  List.find (fun c -> c.Ft_harness.Figure8.protocol = name) cells

let test_figure8_nvi_shape () =
  let r = Ft_harness.Figure8.measure ~scale:0.15 Ft_harness.Figure8.Nvi in
  let cells = r.Ft_harness.Figure8.cells in
  let cand = find "CAND" cells
  and cand_log = find "CAND-LOG" cells
  and cpvs = find "CPVS" cells in
  (* nvi: nearly all ND is loggable input, so CAND-LOG commits almost
     never while CAND commits per keystroke *)
  Alcotest.(check bool) "cand >> cand-log" true
    (cand.Ft_harness.Figure8.checkpoints
    > 10 * max 1 cand_log.Ft_harness.Figure8.checkpoints);
  Alcotest.(check bool) "cpvs ~ cand" true
    (abs (cpvs.Ft_harness.Figure8.checkpoints
          - cand.Ft_harness.Figure8.checkpoints)
    < cand.Ft_harness.Figure8.checkpoints / 2);
  (* reliable-memory commits are nearly free next to 100 ms think time *)
  Alcotest.(check bool) "DC overhead small" true
    (cand.Ft_harness.Figure8.dc_overhead < 5.);
  Alcotest.(check bool) "disk costs more" true
    (cand.Ft_harness.Figure8.dcdisk_overhead
    > cand.Ft_harness.Figure8.dc_overhead)

let test_figure8_treadmarks_shape () =
  let r =
    Ft_harness.Figure8.measure ~scale:0.2 Ft_harness.Figure8.Treadmarks
  in
  let cells = r.Ft_harness.Figure8.cells in
  let cand = find "CAND" cells
  and cpvs = find "CPVS" cells
  and cpv2 = find "CPV-2PC" cells in
  Alcotest.(check bool) "cand > cpvs" true
    (cand.Ft_harness.Figure8.checkpoints > cpvs.Ft_harness.Figure8.checkpoints);
  Alcotest.(check bool) "2pc is the big win" true
    (cpv2.Ft_harness.Figure8.checkpoints * 10
    < cpvs.Ft_harness.Figure8.checkpoints);
  Alcotest.(check bool) "2pc lowest overhead" true
    (cpv2.Ft_harness.Figure8.dc_overhead
    <= cpvs.Ft_harness.Figure8.dc_overhead)

let test_figure8_xpilot_full_speed () =
  let r = Ft_harness.Figure8.measure ~scale:0.1 Ft_harness.Figure8.Xpilot in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Ft_harness.Figure8.protocol ^ " full speed on DC")
        true
        (c.Ft_harness.Figure8.dc_fps > 13.))
    r.Ft_harness.Figure8.cells

let test_table1_mini_campaign () =
  let row =
    Ft_harness.Table1.campaign ~target_crashes:4 ~max_attempts:120
      ~app:Ft_harness.Table1.Postgres Ft_faults.Fault_type.Stack_bit_flip
  in
  Alcotest.(check bool) "collected crashes" true
    (row.Ft_harness.Table1.crashes > 0);
  Alcotest.(check bool) "violations <= crashes" true
    (row.Ft_harness.Table1.violations <= row.Ft_harness.Table1.crashes)

let test_table2_mini_campaign () =
  let rows =
    Ft_harness.Table2.run ~target_crashes:3 ~max_attempts:30
      ~app:Ft_harness.Table1.Postgres ()
  in
  Alcotest.(check int) "one row per fault type"
    (List.length Ft_faults.Fault_type.all)
    (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "failed <= crashes" true
        (r.Ft_harness.Table2.failed_recoveries <= r.Ft_harness.Table2.crashes))
    rows

let test_analysis_arithmetic () =
  (* the paper's numbers: 35% violations, 15% Heisenbugs -> ~90% conflict *)
  let c =
    Ft_harness.Analysis.conflict ~heisenbug_fraction:0.15
      ~violation_rate:0.35 ()
  in
  Alcotest.(check bool) "~90% conflict" true
    (c.Ft_harness.Analysis.conflict_fraction > 0.89
    && c.Ft_harness.Analysis.conflict_fraction < 0.92);
  (* the paper's §4.2 inference: 15% failures / 37% violations ~ 41% *)
  let p =
    Ft_harness.Analysis.inferred_propagation ~os_failure_rate:0.15
      ~violation_rate:0.37
  in
  Alcotest.(check bool) "~41% propagation" true (p > 0.40 && p < 0.42)

let test_report_renderer () =
  let s =
    Ft_harness.Report.table
      ~headers:[ "a"; "bbbb"; "c" ]
      ~rows:[ [ "x"; "1"; "2" ]; [ "longer"; "33"; "444" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has header, rule, rows" true
    (List.length lines >= 4);
  (* all non-empty lines align to the same width or less *)
  Alcotest.(check bool) "contains all cells" true
    (List.for_all
       (fun cell ->
         List.exists
           (fun line ->
             let re = cell in
             let rec contains i =
               i + String.length re <= String.length line
               && (String.sub line i (String.length re) = re
                  || contains (i + 1))
             in
             String.length line >= String.length re && contains 0)
           lines)
       [ "longer"; "444"; "bbbb" ])

let test_protocol_space_render () =
  let s = Ft_core.Protocol_space.render Ft_core.Protocol_space.all in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " plotted") true
        (let rec contains i =
           i + String.length name <= String.length s
           && (String.sub s i (String.length name) = name || contains (i + 1))
         in
         contains 0))
    [ "CAND"; "CPVS"; "Hypervisor"; "Manetho" ]

(* --- crash-point torture -------------------------------------------------- *)

(* Small enough to explore every crash point in-test. *)
let small_scenario =
  { Ft_harness.Torture.default_scenario with
    heap_words = 256;
    dirty_pages = 2;
    stack_depth = 8 }

let test_torture_all_points_clean () =
  let rep =
    Ft_harness.Torture.run ~quiet:true ~points:Ft_harness.Torture.All
      small_scenario
  in
  Alcotest.(check bool) "commit has crash points" true
    (rep.Ft_harness.Torture.total_writes > 0);
  Alcotest.(check int) "every point explored"
    rep.Ft_harness.Torture.requested rep.Ft_harness.Torture.explored;
  Alcotest.(check int) "no violations" 0
    (List.length rep.Ft_harness.Torture.violations);
  (* only the no-crash endpoint commits; every interception rolls back *)
  Alcotest.(check int) "exactly one committed endpoint" 1
    rep.Ft_harness.Torture.committed;
  Alcotest.(check int) "the rest rolled back"
    (rep.Ft_harness.Torture.explored - 1)
    rep.Ft_harness.Torture.rolled_back

let test_torture_catches_defect () =
  (* Publishing the record header before its body makes a mid-record
     crash replay garbage before-images: the checker must see hybrids. *)
  let rep =
    Ft_harness.Torture.run ~quiet:true
      ~defect:Ft_stablemem.Vista.Publish_header_first
      ~points:Ft_harness.Torture.All small_scenario
  in
  Alcotest.(check bool) "defect caught" true
    (List.length rep.Ft_harness.Torture.violations > 0)

let test_torture_sample_reproducible () =
  let run () =
    Ft_harness.Torture.run ~quiet:true
      ~points:(Ft_harness.Torture.Sample 12) small_scenario
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same explored" a.Ft_harness.Torture.explored
    b.Ft_harness.Torture.explored;
  Alcotest.(check int) "sample of the requested size" 12
    a.Ft_harness.Torture.requested;
  Alcotest.(check int) "clean sample" 0
    (List.length a.Ft_harness.Torture.violations)

(* --- fleet serving campaign ----------------------------------------------- *)

(* A tiny fleet, kills on, all oracles armed: the campaign must come
   back clean with every request acknowledged exactly once. *)
let tiny_serve_params =
  { Ft_harness.Serve.smoke_params with
    procs = 6;
    requests = 600;
    shard_size = 2;
    seed = 3 }

let test_serve_tiny_fleet_clean () =
  let report = Ft_harness.Serve.run ~quiet:true tiny_serve_params in
  Alcotest.(check bool) "oracles clean" true (Ft_harness.Serve.clean report);
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.Ft_harness.Serve.s_protocol ^ " all acked")
        s.Ft_harness.Serve.s_requests s.Ft_harness.Serve.s_acked;
      Alcotest.(check bool)
        (s.Ft_harness.Serve.s_protocol ^ " goodput positive")
        true
        (s.Ft_harness.Serve.s_goodput > 0.);
      Alcotest.(check bool)
        (s.Ft_harness.Serve.s_protocol ^ " percentiles ordered")
        true
        (s.Ft_harness.Serve.s_p50_ns <= s.Ft_harness.Serve.s_p99_ns
        && s.Ft_harness.Serve.s_p99_ns <= s.Ft_harness.Serve.s_p999_ns))
    report.Ft_harness.Serve.summaries

(* Shards are pure jobs: the sharded campaign renders byte-identically
   under -j1 and -j4. *)
let serve_rendered workers =
  let jobs = Ft_harness.Serve.jobs tiny_serve_params in
  let lookup = Ft_exp.Exp.eval_lookup ~workers jobs in
  Ft_harness.Serve.render
    (Ft_harness.Serve.of_records tiny_serve_params lookup)

let test_serve_parallel_equals_serial () =
  Alcotest.(check string)
    "serve -j1 == -j4" (serve_rendered 1) (serve_rendered 4)

(* Byte-identical pinning of the paper outputs: any change to simulated
   (charged) costs, protocol decisions, workload generation or RNG
   derivation shows up here as a diff against the committed golden
   rendering.  Pure wall-clock optimisations must keep these green. *)
(* Resolves from the dune test sandbox (cwd = test/) and from a repo-root
   `dune exec test/test_harness.exe` alike. *)
let read_golden name =
  let path =
    List.find Sys.file_exists
      [ Filename.concat "golden" name; Filename.concat "test/golden" name ]
  in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_figure8_golden () =
  let actual =
    String.concat ""
      (List.map
         (fun app ->
           Ft_harness.Figure8.render
             (Ft_harness.Figure8.measure ~scale:0.25 ~seed:42 app))
         Ft_harness.Figure8.all_apps)
  in
  Alcotest.(check string)
    "figure 8 rendering is byte-identical (scale 0.25, seed 42)"
    (read_golden "figure8_scale025.golden")
    actual

let test_figure8_classic_golden () =
  (* The original 7-protocol panels must stay byte-identical even though
     the default protocol space now includes the message-logging pair:
     [~classic:true] reproduces exactly the pre-extension bytes. *)
  let actual =
    String.concat ""
      (List.map
         (fun app ->
           Ft_harness.Figure8.render
             (Ft_harness.Figure8.measure ~classic:true ~scale:0.25 ~seed:42
                app))
         Ft_harness.Figure8.all_apps)
  in
  Alcotest.(check string)
    "classic 7-protocol rendering is byte-identical (scale 0.25, seed 42)"
    (read_golden "figure8_scale025_classic.golden")
    actual

let test_table1_golden () =
  let actual =
    Ft_harness.Table1.render ~app:Ft_harness.Table1.Nvi
      (Ft_harness.Table1.run ~target_crashes:3 ~app:Ft_harness.Table1.Nvi ())
  in
  Alcotest.(check string)
    "table 1 rendering is byte-identical (nvi, 3 crashes per fault)"
    (read_golden "table1_nvi_crashes3.golden")
    actual

(* --- quarantine in the fleet (ladder rung L3) ------------------------------ *)

(* One tenant carries a deterministic Bohrbug (wild jump): generic
   recovery can never get it through, so the crash-loop breaker must
   park it — while every healthy tenant's requests are still served and
   the oracles stay clean. *)
let test_serve_quarantines_poisoned_tenant () =
  let params =
    { Ft_harness.Serve.smoke_params with
      procs = 4;
      requests = 400;
      shard_size = 4;
      crash_rate = 0.;
      seed = 5;
      poison = 1 }
  in
  let report = Ft_harness.Serve.run ~quiet:true params in
  Alcotest.(check bool) "oracles clean" true (Ft_harness.Serve.clean report);
  List.iter
    (fun s ->
      let name = s.Ft_harness.Serve.s_protocol in
      Alcotest.(check bool) (name ^ " looper quarantined") true
        (s.Ft_harness.Serve.s_quarantined >= 1);
      Alcotest.(check bool) (name ^ " breaker tripped") true
        (s.Ft_harness.Serve.s_crash_loop_events >= 1);
      (* healthy tenants (3 of 4) keep serving: at least their share *)
      Alcotest.(check bool) (name ^ " healthy tenants acked") true
        (s.Ft_harness.Serve.s_acked >= 300))
    report.Ft_harness.Serve.summaries

(* --- rescue campaign ------------------------------------------------------- *)

(* A micro rescue sweep: paired fault draws per ladder (the cell seed
   excludes the ladder, so "generic" and "full" meet identical fault
   samples), zero machinery violations, and the renderer mentions the
   verdict. *)
let test_rescue_tiny_campaign () =
  let spec =
    {
      Ft_harness.Rescue.apps = [ Ft_harness.Rescue.Nvi ];
      protocols = [ Ft_core.Protocols.cpvs ];
      ladder_names = [ "generic"; "full" ];
      fault_types =
        [ Ft_faults.Fault_type.Stack_bit_flip; Ft_faults.Fault_type.Delete_branch ];
      target_crashes = 2;
      max_attempts = 20;
      seed0 = 7000;
    }
  in
  let report = Ft_harness.Rescue.run ~quiet:true spec in
  Alcotest.(check bool) "campaign clean" true (Ft_harness.Rescue.clean report);
  Alcotest.(check int) "all cells ran" 4
    (List.length report.Ft_harness.Rescue.rows);
  (* paired sampling: per fault type, both ladders saw the same trials
     and the same crashed-run count *)
  List.iter
    (fun ft ->
      let cells =
        List.filter
          (fun r -> r.Ft_harness.Rescue.fault_type = ft)
          report.Ft_harness.Rescue.rows
      in
      match cells with
      | [ a; b ] ->
          Alcotest.(check int) "paired trials" a.Ft_harness.Rescue.trials
            b.Ft_harness.Rescue.trials;
          Alcotest.(check int) "paired crashes" a.Ft_harness.Rescue.crashes
            b.Ft_harness.Rescue.crashes
      | _ -> Alcotest.fail "expected one cell per ladder")
    spec.Ft_harness.Rescue.fault_types;
  let rendered = Ft_harness.Rescue.render report in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render shows the verdict" true
    (contains rendered "Consistency clean")

let tests =
  [
    Alcotest.test_case "figure8 nvi shape" `Slow test_figure8_nvi_shape;
    Alcotest.test_case "figure8 treadmarks shape" `Slow
      test_figure8_treadmarks_shape;
    Alcotest.test_case "figure8 xpilot full speed" `Slow
      test_figure8_xpilot_full_speed;
    Alcotest.test_case "table1 mini campaign" `Slow test_table1_mini_campaign;
    Alcotest.test_case "table2 mini campaign" `Slow test_table2_mini_campaign;
    Alcotest.test_case "analysis arithmetic" `Quick test_analysis_arithmetic;
    Alcotest.test_case "report renderer" `Quick test_report_renderer;
    Alcotest.test_case "protocol space render" `Quick
      test_protocol_space_render;
    Alcotest.test_case "torture all points clean" `Slow
      test_torture_all_points_clean;
    Alcotest.test_case "torture catches ordering defect" `Slow
      test_torture_catches_defect;
    Alcotest.test_case "torture sample reproducible" `Quick
      test_torture_sample_reproducible;
    Alcotest.test_case "serve tiny fleet clean" `Slow
      test_serve_tiny_fleet_clean;
    Alcotest.test_case "serve parallel == serial" `Slow
      test_serve_parallel_equals_serial;
    Alcotest.test_case "figure8 golden rendering" `Quick test_figure8_golden;
    Alcotest.test_case "figure8 classic golden rendering" `Quick
      test_figure8_classic_golden;
    Alcotest.test_case "table1 golden rendering" `Quick test_table1_golden;
    Alcotest.test_case "serve quarantines poisoned tenant" `Slow
      test_serve_quarantines_poisoned_tenant;
    Alcotest.test_case "rescue tiny campaign" `Slow test_rescue_tiny_campaign;
  ]

let () = Alcotest.run "ft_harness" [ ("harness", tests) ]
