(* Tests for the kernel model: input scripting and think time, event
   classification, the network (ordering, duplicate filtering, recovery
   buffer), files, signals, and OS fault mechanics. *)

let mk ?(nprocs = 2) () = Ft_os.Kernel.create ~nprocs ()

let serve ?(now = 0) ?(a0 = 0) ?(a1 = 0) k pid sys =
  match Ft_os.Kernel.service k ~pid ~now ~a0 ~a1 sys with
  | Ft_os.Kernel.Served s -> s
  | Ft_os.Kernel.Block_recv -> Alcotest.fail "unexpected block"
  | Ft_os.Kernel.Panic -> Alcotest.fail "unexpected panic"

let test_input_script_and_think_time () =
  let k = mk () in
  Ft_os.Kernel.set_input k 0
    (Ft_os.Kernel.scripted_input ~start:5000 ~interval_ns:100 [ 10; 20 ]);
  let s1 = serve k 0 Ft_vm.Syscall.Read_input in
  Alcotest.(check (option int)) "first token" (Some 10) s1.Ft_os.Kernel.r0;
  Alcotest.(check (option int)) "first gap from start" (Some 5000)
    s1.Ft_os.Kernel.new_time;
  let s2 = serve ~now:5000 k 0 Ft_vm.Syscall.Read_input in
  Alcotest.(check (option int)) "second token" (Some 20) s2.Ft_os.Kernel.r0;
  Alcotest.(check (option int)) "think time after response" (Some 5100)
    s2.Ft_os.Kernel.new_time;
  let s3 = serve k 0 Ft_vm.Syscall.Read_input in
  Alcotest.(check (option int)) "exhausted" (Some (-1)) s3.Ft_os.Kernel.r0

let test_absolute_input_open_loop () =
  (* Open-loop arrivals: each token is ready at its own absolute time.
     An early reader waits for the arrival; a late reader drains the
     backlog at [now] — the missed schedule shows up as latency, never
     as schedule slip. *)
  let k = mk ~nprocs:1 () in
  Ft_os.Kernel.set_input_absolute k 0
    (Ft_os.Kernel.open_loop_input ~start:100 ~interval_ns:1_000 [ 7; 8; 9 ]);
  let s1 = serve ~now:0 k 0 Ft_vm.Syscall.Read_input in
  Alcotest.(check (option int)) "first token" (Some 7) s1.Ft_os.Kernel.r0;
  Alcotest.(check (option int)) "early reader waits for arrival" (Some 100)
    s1.Ft_os.Kernel.new_time;
  (* tokens due at 1100 and 2100, both read at now = 5000 *)
  let s2 = serve ~now:5_000 k 0 Ft_vm.Syscall.Read_input in
  Alcotest.(check (option int)) "second token" (Some 8) s2.Ft_os.Kernel.r0;
  Alcotest.(check (option int)) "backlog served at now" (Some 5_000)
    s2.Ft_os.Kernel.new_time;
  let s3 = serve ~now:5_000 k 0 Ft_vm.Syscall.Read_input in
  Alcotest.(check (option int)) "third token" (Some 9) s3.Ft_os.Kernel.r0;
  Alcotest.(check (option int)) "no think-time shift" (Some 5_000)
    s3.Ft_os.Kernel.new_time;
  let s4 = serve ~now:5_000 k 0 Ft_vm.Syscall.Read_input in
  Alcotest.(check (option int)) "exhausted" (Some (-1)) s4.Ft_os.Kernel.r0

let test_event_classification () =
  let k = mk () in
  let time_ev = (serve k 0 Ft_vm.Syscall.Gettimeofday).Ft_os.Kernel.ev in
  (match time_ev with
  | Ft_os.Kernel.Ev_nd (Ft_core.Event.Transient, false) -> ()
  | _ -> Alcotest.fail "gettimeofday must be transient unloggable ND");
  Ft_os.Kernel.set_input k 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:0 [ 1 ]);
  (match (serve k 0 Ft_vm.Syscall.Read_input).Ft_os.Kernel.ev with
  | Ft_os.Kernel.Ev_nd (Ft_core.Event.Fixed, true) -> ()
  | _ -> Alcotest.fail "input must be fixed loggable ND");
  match (serve ~a0:77 k 0 Ft_vm.Syscall.Write_output).Ft_os.Kernel.ev with
  | Ft_os.Kernel.Ev_visible 77 -> ()
  | _ -> Alcotest.fail "write_output must be visible"

let test_send_recv_roundtrip () =
  let k = mk () in
  let s = serve ~a0:1 ~a1:123 k 0 Ft_vm.Syscall.Send in
  (match s.Ft_os.Kernel.ev with
  | Ft_os.Kernel.Ev_send { dest = 1; _ } -> ()
  | _ -> Alcotest.fail "send event");
  let r = serve k 1 Ft_vm.Syscall.Recv in
  Alcotest.(check (option int)) "payload" (Some 123) r.Ft_os.Kernel.r0;
  Alcotest.(check (option int)) "sender" (Some 0) r.Ft_os.Kernel.r1;
  match Ft_os.Kernel.service k ~pid:1 ~now:0 ~a0:0 ~a1:0 Ft_vm.Syscall.Recv with
  | Ft_os.Kernel.Block_recv -> ()
  | _ -> Alcotest.fail "empty mailbox must block"

let test_duplicate_filtering () =
  (* A rolled-back sender re-sends with the same sequence number; the
     receiver's filter drops it (redoable sends, §2.1). *)
  let k = mk () in
  let snap = Ft_os.Kernel.snapshot_kstate k 0 in
  ignore (serve ~a0:1 ~a1:5 k 0 Ft_vm.Syscall.Send);
  ignore (serve k 1 Ft_vm.Syscall.Recv);
  Ft_os.Kernel.note_commit k 1;
  (* sender rolls back before the send and re-executes it *)
  Ft_os.Kernel.restore_kstate k 0 snap;
  ignore (serve ~a0:1 ~a1:5 k 0 Ft_vm.Syscall.Send);
  match Ft_os.Kernel.service k ~pid:1 ~now:0 ~a0:0 ~a1:0 Ft_vm.Syscall.Recv with
  | Ft_os.Kernel.Block_recv -> () (* duplicate silently dropped *)
  | Ft_os.Kernel.Served s ->
      Alcotest.failf "duplicate delivered: %d" (Option.get s.Ft_os.Kernel.r0)
  | Ft_os.Kernel.Panic -> Alcotest.fail "panic"

let test_recovery_buffer_redelivery () =
  (* Messages consumed since the receiver's last commit are requeued on
     rollback, in order. *)
  let k = mk () in
  ignore (serve ~a0:1 ~a1:100 k 0 Ft_vm.Syscall.Send);
  ignore (serve ~a0:1 ~a1:200 k 0 Ft_vm.Syscall.Send);
  let receiver_snap = Ft_os.Kernel.snapshot_kstate k 1 in
  ignore (serve k 1 Ft_vm.Syscall.Recv);
  ignore (serve k 1 Ft_vm.Syscall.Recv);
  (* receiver crashes and rolls back without having committed *)
  Ft_os.Kernel.restore_kstate k 1 receiver_snap;
  Ft_os.Kernel.requeue_uncommitted k 1;
  let a = serve k 1 Ft_vm.Syscall.Recv in
  let b = serve k 1 Ft_vm.Syscall.Recv in
  Alcotest.(check (option int)) "first redelivered" (Some 100)
    a.Ft_os.Kernel.r0;
  Alcotest.(check (option int)) "second redelivered" (Some 200)
    b.Ft_os.Kernel.r0

let test_files_and_disk_full () =
  let k = Ft_os.Kernel.create ~nprocs:1 ~fs_capacity:2 () in
  let fd =
    Option.get (serve ~a0:9 k 0 Ft_vm.Syscall.Open_file).Ft_os.Kernel.r0
  in
  Alcotest.(check bool) "fd valid" true (fd >= 0);
  let w1 = serve ~a0:fd ~a1:11 k 0 Ft_vm.Syscall.Write_file in
  Alcotest.(check (option int)) "write ok" (Some 1) w1.Ft_os.Kernel.r0;
  ignore (serve ~a0:fd ~a1:22 k 0 Ft_vm.Syscall.Write_file);
  let w3 = serve ~a0:fd ~a1:33 k 0 Ft_vm.Syscall.Write_file in
  Alcotest.(check (option int)) "disk full" (Some (-1)) w3.Ft_os.Kernel.r0;
  (match w3.Ft_os.Kernel.ev with
  | Ft_os.Kernel.Ev_nd (Ft_core.Event.Fixed, false) -> ()
  | _ -> Alcotest.fail "disk-full is a fixed ND event");
  Alcotest.(check int) "file contents" 2 (Ft_os.Kernel.file_length k 0 9);
  Alcotest.(check (option int)) "word readable" (Some 22)
    (Ft_os.Kernel.file_word k 0 9 1)

let test_open_file_table_full () =
  let k = Ft_os.Kernel.create ~nprocs:1 ~max_open_files:1 () in
  ignore (serve ~a0:1 k 0 Ft_vm.Syscall.Open_file);
  let s = serve ~a0:2 k 0 Ft_vm.Syscall.Open_file in
  Alcotest.(check (option int)) "table full" (Some (-1)) s.Ft_os.Kernel.r0;
  match s.Ft_os.Kernel.ev with
  | Ft_os.Kernel.Ev_nd (Ft_core.Event.Fixed, false) -> ()
  | _ -> Alcotest.fail "table-full is a fixed ND event"

let test_timer_signals () =
  let k = mk () in
  Ft_os.Kernel.set_timer_signal k 0 ~period_ns:100 ~first_at:50;
  Alcotest.(check bool) "not yet" false (Ft_os.Kernel.poll_signal k 0 ~now:49);
  Alcotest.(check bool) "fires" true (Ft_os.Kernel.poll_signal k 0 ~now:60);
  Alcotest.(check bool) "consumed" false
    (Ft_os.Kernel.poll_signal k 0 ~now:60);
  Alcotest.(check bool) "next period" true
    (Ft_os.Kernel.poll_signal k 0 ~now:160)

let test_os_fault_corruption_and_panic () =
  let k = mk () in
  Ft_os.Kernel.set_os_fault k
    {
      Ft_os.Kernel.panic_at = 5_000;
      touches = (fun s -> s = Ft_vm.Syscall.Gettimeofday);
      corrupt_bit = 4;
      poke_probability = 0.;
      propagated = false;
    };
  let s1 = serve ~now:1_000 k 0 Ft_vm.Syscall.Gettimeofday in
  (* gettimeofday returns now/1000 = 1, corrupted to 1 xor 16 *)
  Alcotest.(check (option int)) "bit flipped" (Some (1 lxor 16))
    s1.Ft_os.Kernel.r0;
  (match Ft_os.Kernel.os_fault k with
  | Some f -> Alcotest.(check bool) "propagated" true f.Ft_os.Kernel.propagated
  | None -> Alcotest.fail "fault gone");
  (match Ft_os.Kernel.service k ~pid:0 ~now:6_000 ~a0:0 ~a1:0
           Ft_vm.Syscall.Random with
  | Ft_os.Kernel.Panic -> ()
  | _ -> Alcotest.fail "expected panic after the deadline");
  Alcotest.(check bool) "panicked" true (Ft_os.Kernel.panicked k);
  Ft_os.Kernel.clear_os_fault k;
  Alcotest.(check bool) "cleared" false (Ft_os.Kernel.panicked k)

let test_kstate_snapshot_roundtrip () =
  let k = mk () in
  Ft_os.Kernel.set_input k 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:10 [ 1; 2; 3 ]);
  let snap = Ft_os.Kernel.snapshot_kstate k 0 in
  ignore (serve k 0 Ft_vm.Syscall.Read_input);
  ignore (serve k 0 Ft_vm.Syscall.Read_input);
  Ft_os.Kernel.restore_kstate k 0 snap;
  let s = serve k 0 Ft_vm.Syscall.Read_input in
  Alcotest.(check (option int)) "input position rolled back" (Some 1)
    s.Ft_os.Kernel.r0

let test_det_log_cap_and_flush () =
  let k = mk () in
  Alcotest.(check int) "uncapped by default" 0 (Ft_os.Kernel.det_cap k);
  Ft_os.Kernel.set_det_cap k 3;
  Alcotest.(check int) "cap readable" 3 (Ft_os.Kernel.det_cap k);
  for _ = 1 to 3 do
    Alcotest.(check bool) "under cap" false (Ft_os.Kernel.det_append k 0)
  done;
  Alcotest.(check bool) "over cap signals flush" true
    (Ft_os.Kernel.det_append k 1);
  Alcotest.(check int) "live counts both owners" 4 (Ft_os.Kernel.det_live k);
  Alcotest.(check int) "high water tracks peak" 4
    (Ft_os.Kernel.det_high_water k);
  Alcotest.(check int) "no flushes recorded yet" 0
    (Ft_os.Kernel.det_forced_flushes k);
  Ft_os.Kernel.note_forced_flush k;
  Alcotest.(check int) "flush counted" 1 (Ft_os.Kernel.det_forced_flushes k);
  Ft_os.Kernel.set_det_cap k 0;
  Alcotest.(check bool) "cap 0 disables the signal" false
    (Ft_os.Kernel.det_append k 0)

let test_det_log_commit_retire_drop () =
  let k = mk () in
  for _ = 1 to 3 do
    ignore (Ft_os.Kernel.det_append k 0)
  done;
  Alcotest.(check int) "three live for owner" 3 (Ft_os.Kernel.det_live_of k 0);
  (* Retiring before any commit is a no-op: the watermark is derived
     from committed state only. *)
  Ft_os.Kernel.det_retire k 0;
  Alcotest.(check int) "nothing retirable uncommitted" 3
    (Ft_os.Kernel.det_live_of k 0);
  Ft_os.Kernel.det_note_commit k 0;
  ignore (Ft_os.Kernel.det_append k 0);
  ignore (Ft_os.Kernel.det_append k 0);
  (* Rollback discards only the dead (post-commit) lineage. *)
  Ft_os.Kernel.det_drop_uncommitted k 0;
  Alcotest.(check int) "uncommitted tail dropped" 3
    (Ft_os.Kernel.det_live_of k 0);
  Alcotest.(check int) "peak included the dead tail" 5
    (Ft_os.Kernel.det_high_water k);
  Ft_os.Kernel.det_retire k 0;
  Alcotest.(check int) "committed prefix retired" 0
    (Ft_os.Kernel.det_live_of k 0);
  Alcotest.(check int) "fleet live drained" 0 (Ft_os.Kernel.det_live k);
  (* Re-entrancy: a second retirement pass must not move the watermark
     or drive the live count negative. *)
  Ft_os.Kernel.det_retire k 0;
  Alcotest.(check int) "watermark monotone" 0 (Ft_os.Kernel.det_live k)

let tests =
  [
    Alcotest.test_case "input script" `Quick test_input_script_and_think_time;
    Alcotest.test_case "absolute input open loop" `Quick
      test_absolute_input_open_loop;
    Alcotest.test_case "event classification" `Quick
      test_event_classification;
    Alcotest.test_case "send/recv roundtrip" `Quick test_send_recv_roundtrip;
    Alcotest.test_case "duplicate filtering" `Quick test_duplicate_filtering;
    Alcotest.test_case "recovery buffer" `Quick
      test_recovery_buffer_redelivery;
    Alcotest.test_case "files and disk full" `Quick test_files_and_disk_full;
    Alcotest.test_case "open file table full" `Quick
      test_open_file_table_full;
    Alcotest.test_case "timer signals" `Quick test_timer_signals;
    Alcotest.test_case "os fault mechanics" `Quick
      test_os_fault_corruption_and_panic;
    Alcotest.test_case "kstate snapshot" `Quick
      test_kstate_snapshot_roundtrip;
    Alcotest.test_case "det log cap and flush" `Quick
      test_det_log_cap_and_flush;
    Alcotest.test_case "det log commit/retire/drop" `Quick
      test_det_log_commit_retire_drop;
  ]

let () = Alcotest.run "ft_os" [ ("kernel", tests) ]
