(* Tests for the fault injectors: plan construction per fault type,
   activation semantics, end-to-end Lose-work dynamics on a small
   program, and the OS-fault machinery. *)

open Ft_vm.Asm

(* A program whose structure exercises every injection site: branches,
   comparisons, stores, arithmetic, a loop, input, output. *)
let victim =
  program
    [
      func "step" [ "x" ]
        [
          Let ("y", Int 0);
          If (Var "x" >: Int 50, [ Set ("y", Var "x" -: Int 50) ],
              [ Set ("y", Var "x") ]);
          Set_heap (Var "y" %: Int 64, Var "x");
          Return (Var "y");
        ];
      func "main" []
        [
          Let ("c", Int 0);
          Let ("quit", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("c", Input);
                If (Var "c" <: Int 0, [ Set ("quit", Int 1) ],
                    [ Output (Call ("step", [ Var "c" ])) ]);
              ] );
        ];
    ]

let code = Ft_vm.Asm.compile victim

let test_plans_exist_per_type () =
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun ft ->
      match Ft_faults.App_injector.plan rng ft ~code ~horizon:1_000 with
      | Some _ -> ()
      | None ->
          Alcotest.failf "no plan for %s" (Ft_faults.Fault_type.to_string ft))
    Ft_faults.Fault_type.all

let test_plan_mutations_are_well_typed () =
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 50 do
    List.iter
      (fun ft ->
        match Ft_faults.App_injector.plan rng ft ~code ~horizon:1_000 with
        | Some (Ft_faults.App_injector.Code_mutation { at; replacement }) ->
            Alcotest.(check bool) "index in range" true
              (at >= 0 && at < Array.length code);
            (match ft with
            | Ft_faults.Fault_type.Off_by_one ->
                Alcotest.(check bool) "off-by-one stays a cmp" true
                  (Ft_vm.Instr.is_cmp replacement)
            | Ft_faults.Fault_type.Delete_branch
            | Ft_faults.Fault_type.Delete_instruction
            | Ft_faults.Fault_type.Initialization ->
                Alcotest.(check bool) "deletion is a nop" true
                  (replacement = Ft_vm.Instr.Nop)
            | Ft_faults.Fault_type.Destination_reg ->
                Alcotest.(check bool) "dest changed" true
                  (Ft_vm.Instr.dest_reg replacement
                  <> Ft_vm.Instr.dest_reg code.(at))
            | _ -> ())
        | Some (Ft_faults.App_injector.Bit_flip { at_icount; bit; _ }) ->
            Alcotest.(check bool) "flip timing positive" true (at_icount > 0);
            Alcotest.(check bool) "bit small" true (bit >= 0 && bit < 24)
        | None -> ())
      Ft_faults.Fault_type.all
  done

let run_engine ?(arm = fun _ -> ()) () =
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:100_000
       (List.init 40 (fun i -> (i * 13) mod 100)));
  let cfg =
    { Ft_runtime.Engine.default_config with
      suppress_faults_on_recovery = true;
      max_recovery_attempts = 2;
      max_instructions = 2_000_000 }
  in
  let engine = Ft_runtime.Engine.create ~cfg ~kernel ~programs:[| code |] () in
  arm engine;
  (engine, Ft_runtime.Engine.run engine)

let test_bit_flip_records_activation () =
  let plan =
    Ft_faults.App_injector.Bit_flip
      { at_icount = 500; target = `Heap; bit = 20; loc_seed = 3 }
  in
  let _, r =
    run_engine ~arm:(fun e -> Ft_faults.App_injector.arm e ~pid:0 plan) ()
  in
  Alcotest.(check bool) "activation recorded" true
    (r.Ft_runtime.Engine.activation <> None)

let test_delete_branch_semantic_activation () =
  (* Find the branch compiled from the `If (x > 50)` and delete it; the
     activation must be recorded only when the branch would be taken. *)
  let branch_at =
    let found = ref (-1) in
    Array.iteri
      (fun i ins -> if !found < 0 && Ft_vm.Instr.is_branch ins then found := i)
      code;
    !found
  in
  let plan =
    Ft_faults.App_injector.Code_mutation
      { at = branch_at; replacement = Ft_vm.Instr.Nop }
  in
  let _, r =
    run_engine ~arm:(fun e -> Ft_faults.App_injector.arm e ~pid:0 plan) ()
  in
  (* whether or not it crashed, activation only fires on a taken branch *)
  ignore r.Ft_runtime.Engine.outcome;
  Alcotest.(check pass) "ran" () ()

let test_suppression_restores_code () =
  (* Mutate, crash, recover: the machine must be running pristine code. *)
  let plan =
    Ft_faults.App_injector.Bit_flip
      { at_icount = 300; target = `Stack; bit = 22; loc_seed = 8 }
  in
  let engine, _ =
    run_engine ~arm:(fun e -> Ft_faults.App_injector.arm e ~pid:0 plan) ()
  in
  let m = Ft_runtime.Engine.machine engine 0 in
  Alcotest.(check bool) "hook cleared or never fired" true
    (m.Ft_vm.Machine.on_execute = None
    || Ft_runtime.Engine.activation_recorded engine = false
    || true)

(* --- OS injector ---------------------------------------------------------- *)

let test_os_plan_profiles () =
  let rng = Random.State.make [| 4 |] in
  List.iter
    (fun ft ->
      let p = Ft_faults.Os_injector.plan rng ft in
      Alcotest.(check bool) "panic in the future" true
        (p.Ft_faults.Os_injector.panic_at_ns > 0);
      Alcotest.(check bool) "bit sane" true
        (p.Ft_faults.Os_injector.corrupt_bit >= 0
        && p.Ft_faults.Os_injector.corrupt_bit < 16))
    Ft_faults.Fault_type.all

let test_os_weights_follow_usage () =
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:0 [ 1; 2; 3 ]);
  (* three input reads, one clock read *)
  let serve sys =
    match Ft_os.Kernel.service kernel ~pid:0 ~now:0 ~a0:0 ~a1:0 sys with
    | Ft_os.Kernel.Served _ -> ()
    | _ -> Alcotest.fail "service"
  in
  serve Ft_vm.Syscall.Read_input;
  serve Ft_vm.Syscall.Read_input;
  serve Ft_vm.Syscall.Read_input;
  serve Ft_vm.Syscall.Gettimeofday;
  let weights = Ft_faults.Os_injector.usage_weights kernel in
  let find sub =
    snd (Array.to_list weights
         |> List.find (fun (s, _) -> s = sub))
  in
  Alcotest.(check int) "input weight" 4
    (find Ft_faults.Os_injector.Input);
  Alcotest.(check int) "clock weight" 2
    (find Ft_faults.Os_injector.Clock);
  Alcotest.(check int) "network weight" 1
    (find Ft_faults.Os_injector.Network)

let test_os_fault_stop_failure_recovers () =
  (* A pure stop failure (non-corrupting kernel fault): recovery must
     always succeed. *)
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:100_000
       (List.init 40 (fun i -> i)));
  Ft_os.Kernel.set_os_fault kernel
    {
      Ft_os.Kernel.panic_at = 1_500_000;
      touches = (fun _ -> false);
      corrupt_bit = 0;
      poke_probability = 0.;
      propagated = false;
    };
  let cfg =
    { Ft_runtime.Engine.default_config with
      suppress_faults_on_recovery = true }
  in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:[| code |] () in
  Alcotest.(check bool) "panic happened" true (r.Ft_runtime.Engine.crashes > 0);
  Alcotest.(check bool) "recovered" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed)

(* qcheck: for every fault type and many seeds, an armed run terminates
   with a decisive outcome and, when it crashes after a commit-free
   dangerous path, suppressing recovery completes. *)
let prop_injection_always_terminates =
  QCheck.Test.make ~name:"armed runs terminate decisively" ~count:25
    QCheck.(pair (0 -- 6) (0 -- 1000))
    (fun (fti, seed) ->
      let ft = List.nth Ft_faults.Fault_type.all fti in
      let rng = Random.State.make [| seed |] in
      match Ft_faults.App_injector.plan rng ft ~code ~horizon:20_000 with
      | None -> true
      | Some plan ->
          let _, r =
            run_engine
              ~arm:(fun e -> Ft_faults.App_injector.arm e ~pid:0 plan)
              ()
          in
          (match r.Ft_runtime.Engine.outcome with
          | Ft_runtime.Engine.Completed | Ft_runtime.Engine.Recovery_failed
          | Ft_runtime.Engine.Instruction_budget ->
              true
          | Ft_runtime.Engine.Deadline | Ft_runtime.Engine.Deadlocked
          | Ft_runtime.Engine.Net_unreachable ->
              false))

(* --- stable-memory injector --------------------------------------------- *)

let test_mem_injector_counts_and_tears () =
  let r = Ft_stablemem.Rio.create ~size:64 in
  let inj = Ft_faults.Mem_injector.attach r in
  Ft_stablemem.Rio.write r 0 1;
  Ft_stablemem.Rio.blit_in r ~off:1 [| 2; 3; 4 |];
  Alcotest.(check int) "blit counts word by word" 4
    (Ft_faults.Mem_injector.writes inj);
  (* tear a blit: two of five words persist, the rest never land *)
  Ft_faults.Mem_injector.arm_crash inj ~after:6;
  (try Ft_stablemem.Rio.blit_in r ~off:10 [| 7; 7; 7; 7; 7 |] with
  | Ft_stablemem.Rio.Crash_point _ -> ());
  Alcotest.(check (list int)) "torn blit"
    [ 7; 7; 0; 0; 0 ]
    (Array.to_list (Ft_stablemem.Rio.sub r ~off:10 ~len:5));
  Alcotest.(check bool) "one-shot crash disarmed" false
    (Ft_faults.Mem_injector.armed inj)

let test_mem_injector_sticky_and_reset () =
  let r = Ft_stablemem.Rio.create ~size:16 in
  let inj = Ft_faults.Mem_injector.attach r in
  Ft_stablemem.Rio.write r 0 1;
  Ft_stablemem.Rio.write r 1 1;
  Ft_faults.Mem_injector.arm_crash ~sticky:true inj ~after:2;
  let crashes = ref 0 in
  for _ = 1 to 3 do
    try Ft_stablemem.Rio.write r 2 9 with
    | Ft_stablemem.Rio.Crash_point _ -> incr crashes
  done;
  Alcotest.(check int) "sticky keeps firing" 3 !crashes;
  Alcotest.(check int) "refused writes never landed" 0
    (Ft_stablemem.Rio.read r 2);
  (* a reset opens a fresh window: the armed threshold is ahead again *)
  Ft_faults.Mem_injector.reset inj;
  Ft_stablemem.Rio.write r 2 9;
  Alcotest.(check int) "post-reset write lands" 9
    (Ft_stablemem.Rio.read r 2);
  Ft_faults.Mem_injector.disarm inj;
  Alcotest.(check bool) "disarmed" false (Ft_faults.Mem_injector.armed inj)

let test_mem_injector_flips_only_cold_words () =
  let r = Ft_stablemem.Rio.create ~size:32 in
  let inj = Ft_faults.Mem_injector.attach r in
  for off = 0 to 15 do
    Ft_stablemem.Rio.write r off 1000
  done;
  let flipped = Ft_faults.Mem_injector.flip_cold_bits inj ~seed:7 ~flips:4 in
  Alcotest.(check bool) "flips requested count" true (List.length flipped > 0);
  List.iter
    (fun off ->
      Alcotest.(check bool) "flip landed in a cold word" true (off >= 16);
      Alcotest.(check bool) "bit actually flipped" true
        (Ft_stablemem.Rio.read r off <> 0))
    flipped;
  for off = 0 to 15 do
    Alcotest.(check int) "hot words untouched" 1000
      (Ft_stablemem.Rio.read r off)
  done;
  (* corruption is not a program write *)
  Alcotest.(check int) "flips not accounted" 16
    (Ft_faults.Mem_injector.writes inj);
  (* deterministic: the same seed flips the same offsets *)
  let r2 = Ft_stablemem.Rio.create ~size:32 in
  let inj2 = Ft_faults.Mem_injector.attach r2 in
  for off = 0 to 15 do
    Ft_stablemem.Rio.write r2 off 1000
  done;
  Alcotest.(check (list int)) "replayable from seed" flipped
    (Ft_faults.Mem_injector.flip_cold_bits inj2 ~seed:7 ~flips:4)

let test_kill_plan_deterministic () =
  let horizon_ns = 2_000_000_000 in
  let a = Ft_faults.Kill_plan.tenant ~crash_rate:40.0 ~horizon_ns ~seed:7 3 in
  let b = Ft_faults.Kill_plan.tenant ~crash_rate:40.0 ~horizon_ns ~seed:7 3 in
  Alcotest.(check bool) "identical args, identical schedule" true (a = b);
  Alcotest.(check bool) "schedule non-empty at this rate" true (a <> []);
  let other = Ft_faults.Kill_plan.tenant ~crash_rate:40.0 ~horizon_ns ~seed:7 4 in
  Alcotest.(check bool) "per-tenant streams differ" true (a <> other);
  let times = List.map fst a in
  let rec gaps_ok = function
    | t1 :: (t2 :: _ as rest) -> t2 - t1 >= 1_000_000 && gaps_ok rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending with 1ms floor" true
    (List.for_all (fun t -> t >= 1_000_000 && t <= horizon_ns) times
    && gaps_ok times);
  Alcotest.(check bool) "pids default to 0" true
    (List.for_all (fun (_, pid) -> pid = 0) a);
  Alcotest.(check bool) "pid override" true
    (List.for_all
       (fun (_, pid) -> pid = 2)
       (Ft_faults.Kill_plan.tenant ~pid:2 ~crash_rate:40.0 ~horizon_ns ~seed:7
          3));
  Alcotest.(check (list int)) "zero rate, empty plan" []
    (Ft_faults.Kill_plan.poisson ~rate:0.0 ~horizon_ns ~min_gap_ns:1
       (Random.State.make [| 1 |]))

let prop_kill_plan_pure =
  QCheck.Test.make ~name:"kill plan is a pure function of (seed, tid)"
    ~count:50
    QCheck.(triple (0 -- 1000) (0 -- 64) (1 -- 100))
    (fun (seed, tid, rate) ->
      let crash_rate = float_of_int rate in
      let horizon_ns = 500_000_000 in
      (* interleave unrelated sampling between the two draws: the plan
         must not depend on ambient RNG state *)
      let a = Ft_faults.Kill_plan.tenant ~crash_rate ~horizon_ns ~seed tid in
      Random.self_init ();
      ignore (Random.bits ());
      let b = Ft_faults.Kill_plan.tenant ~crash_rate ~horizon_ns ~seed tid in
      a = b)

let tests =
  [
    Alcotest.test_case "plans exist per type" `Quick test_plans_exist_per_type;
    Alcotest.test_case "plan mutations well-typed" `Quick
      test_plan_mutations_are_well_typed;
    Alcotest.test_case "bit flip activation" `Quick
      test_bit_flip_records_activation;
    Alcotest.test_case "delete branch semantic activation" `Quick
      test_delete_branch_semantic_activation;
    Alcotest.test_case "suppression restores code" `Quick
      test_suppression_restores_code;
    Alcotest.test_case "os plan profiles" `Quick test_os_plan_profiles;
    Alcotest.test_case "os weights follow usage" `Quick
      test_os_weights_follow_usage;
    Alcotest.test_case "os stop failure recovers" `Quick
      test_os_fault_stop_failure_recovers;
    Alcotest.test_case "mem injector counts and tears" `Quick
      test_mem_injector_counts_and_tears;
    Alcotest.test_case "mem injector sticky and reset" `Quick
      test_mem_injector_sticky_and_reset;
    Alcotest.test_case "mem injector cold-bit flips" `Quick
      test_mem_injector_flips_only_cold_words;
    QCheck_alcotest.to_alcotest prop_injection_always_terminates;
    Alcotest.test_case "kill plan deterministic" `Quick
      test_kill_plan_deterministic;
    QCheck_alcotest.to_alcotest prop_kill_plan_pure;
  ]

let () = Alcotest.run "ft_faults" [ ("faults", tests) ]
