(* Property and feature tests that cut across libraries:

   - protocol conformance: every executable protocol upholds Save-work
     on random abstract multi-process event streams (Ft_core.Conformance);
   - end-to-end: random stop-failure schedules x protocols keep recovery
     consistent on a real workload;
   - the §2.6 mitigations: resource expansion turning fixed ND transient,
     and checkpoint exclusion of recomputable state. *)

open Ft_core

(* --- conformance over random scripts ------------------------------------- *)

let gen_step nprocs =
  QCheck.Gen.(
    int_bound (nprocs - 1) >>= fun pid ->
    frequency
      [
        (3, return (Event.Internal, false));
        (2, return (Event.Nd Event.Transient, false));
        (2, return (Event.Nd Event.Fixed, true));   (* user input *)
        (1, return (Event.Nd Event.Fixed, false));  (* disk full *)
        (3, map (fun v -> (Event.Visible v, false)) (int_bound 50));
        (2, map (fun d -> (Event.Send { dest = d; tag = -1 }, false))
              (int_bound (nprocs - 1)));
        (2, return (Event.Receive { src = -1; tag = -1 }, true));
      ]
    >>= fun (kind, loggable) ->
    return (Conformance.step ~pid { Protocol.kind; loggable }))

let arb_script nprocs =
  QCheck.make
    QCheck.Gen.(list_size (int_bound 60) (gen_step nprocs))
    ~print:(fun steps ->
      String.concat ";"
        (List.map
           (fun s ->
             Printf.sprintf "p%d:%s" s.Conformance.pid
               (Event.kind_to_string s.Conformance.info.Protocol.kind))
           steps))

let conformance_prop spec =
  QCheck.Test.make
    ~name:(spec.Protocol.spec_name ^ " upholds save-work on random streams")
    ~count:150 (arb_script 3)
    (fun script -> Conformance.upholds_save_work spec ~nprocs:3 script)

let conformance_tests =
  List.map conformance_prop
    (Protocols.commit_all :: Protocols.sender_based_logging
     :: Protocols.manetho :: Protocols.coordinated_checkpointing
     :: Protocols.figure8_extended)

(* NO-COMMIT must violate Save-work whenever unlogged ND precedes a
   visible event. *)
let no_commit_violates =
  QCheck.Test.make ~name:"no-commit violates on nd-then-visible" ~count:50
    QCheck.unit
    (fun () ->
      let script =
        [
          Conformance.step ~pid:0
            { Protocol.kind = Event.Nd Event.Transient; loggable = false };
          Conformance.step ~pid:0
            { Protocol.kind = Event.Visible 1; loggable = false };
        ]
      in
      not (Conformance.upholds_save_work Protocols.no_commit ~nprocs:1 script))

(* --- end-to-end: random kill schedules ----------------------------------- *)

open Ft_vm.Asm

let counter_program =
  program
    [
      func "main" []
        [
          Let ("c", Int 0);
          Let ("sum", Int 0);
          Let ("quit", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("c", Input);
                If
                  ( Var "c" <: Int 0,
                    [ Set ("quit", Int 1) ],
                    [
                      Set ("sum", (Var "sum" +: Var "c") %: Int 9973);
                      Set_heap (Var "c" %: Int 512, Var "sum");
                      Output (Var "sum");
                    ] );
              ] );
        ];
    ]

let counter_tokens = List.init 25 (fun i -> (i * 7) mod 90)

let run_counter ~protocol ~kills =
  let code = Ft_vm.Asm.compile counter_program in
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:500_000
       counter_tokens);
  let cfg = { Ft_runtime.Engine.default_config with protocol; kills } in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:[| code |] () in
  r

let counter_reference =
  lazy (run_counter ~protocol:Protocols.no_commit ~kills:[])
        (* no commits, no kills: the pristine output *)

let stop_failure_prop =
  QCheck.Test.make
    ~name:"random kill schedules recover consistently (all protocols)"
    ~count:60
    QCheck.(pair (0 -- 4) (list_of_size (QCheck.Gen.int_bound 2) (1 -- 12)))
    (fun (pi, kill_ms) ->
      let protocol =
        List.nth
          Protocols.[ cand; cand_log; cpvs; cbndvs; cbndvs_log ]
          pi
      in
      let kills = List.map (fun ms -> (ms * 1_000_000, 0)) kill_ms in
      let r = run_counter ~protocol ~kills in
      r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed
      && Consistency.is_consistent
           ~reference:(Lazy.force counter_reference).Ft_runtime.Engine.visible
           ~observed:r.Ft_runtime.Engine.visible)

(* --- multi-tenant scheduler == private engines ---------------------------- *)

(* Random fleets: any mix of protocols and kill schedules packed into one
   scheduler must give each tenant byte-identical results to a private
   engine — the tentpole refactor's correctness contract. *)
let scheduler_tenant ~protocol ~kills ~seed () =
  let code = Ft_vm.Asm.compile counter_program in
  let kernel = Ft_os.Kernel.create ~seed ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:500_000 counter_tokens);
  ({ Ft_runtime.Engine.default_config with protocol; kills }, kernel, [| code |])

let scheduler_matches_engines_prop =
  QCheck.Test.make
    ~name:"multi-tenant scheduler == one private engine per tenant"
    ~count:40
    QCheck.(
      list_of_size
        (Gen.int_range 1 3)
        (pair (0 -- 8) (list_of_size (Gen.int_bound 2) (1 -- 12))))
    (fun tenants ->
      let mk i (pi, kill_ms) =
        scheduler_tenant
          ~protocol:(List.nth Protocols.figure8_extended pi)
          ~kills:(List.map (fun ms -> (ms * 1_000_000, 0)) kill_ms)
          ~seed:(1 + i) ()
      in
      let sched =
        Ft_runtime.Scheduler.create
          ~tenants:(Array.of_list (List.mapi mk tenants))
          ()
      in
      let rs = Ft_runtime.Scheduler.run sched in
      List.for_all
        (fun i ->
          let cfg, kernel, programs = mk i (List.nth tenants i) in
          let _, r' =
            Ft_runtime.Engine.execute ~cfg ~kernel ~programs ()
          in
          let open Ft_runtime.Engine in
          let r = rs.(i) in
          r.outcome = r'.outcome && r.visible = r'.visible
          && r.sim_time_ns = r'.sim_time_ns
          && r.wall_instructions = r'.wall_instructions
          && r.commit_counts = r'.commit_counts
          && r.crashes = r'.crashes
          && r.recoveries = r'.recoveries
          && r.visible_times = r'.visible_times
          && r.crash_times = r'.crash_times)
        (List.init (List.length tenants) Fun.id))

(* --- consistency modulo duplicates (§2.3) -------------------------------- *)

(* Duplicate bursts are exactly what rollback re-emission produces, and
   the checker's one tolerated difference: interleaving repeats of
   already-seen values anywhere in the observed stream must never
   convict. *)
let consistency_dup_bursts_prop =
  QCheck.Test.make ~name:"duplicate bursts stay consistent" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 20) (0 -- 9)) (0 -- 1_000_000))
    (fun (reference, seed) ->
      QCheck.assume (reference <> []);
      let rng = Random.State.make [| seed; 0xc0 |] in
      let observed =
        List.concat
          (List.mapi
             (fun i v ->
               let seen = Array.of_list (List.filteri (fun j _ -> j <= i) reference) in
               let burst =
                 List.init (Random.State.int rng 4) (fun _ ->
                     seen.(Random.State.int rng (Array.length seen)))
               in
               v :: burst)
             reference)
      in
      Consistency.is_consistent ~reference ~observed)

(* A reordering of two distinct, first-occurrence values is NOT a
   duplicate: the early value is neither expected nor seen, and the
   checker must convict it as Extra at exactly that position. *)
let consistency_reorder_extra_prop =
  QCheck.Test.make ~name:"reordered distinct pair convicted extra" ~count:200
    QCheck.(pair (2 -- 30) (0 -- 28))
    (fun (n, i) ->
      QCheck.assume (i < n - 1);
      let reference = List.init n (fun k -> 10 + k) in
      let observed =
        List.mapi
          (fun k v ->
            if k = i then 10 + i + 1
            else if k = i + 1 then 10 + i
            else v)
          reference
      in
      match Consistency.check ~reference ~observed with
      | Consistency.Extra { position; value } ->
          position = i && value = 10 + i + 1
      | _ -> false)

(* --- §2.6: resource expansion -------------------------------------------- *)

(* Writes past the disk's capacity, crashing on the failure; with
   expand-resources-on-recovery the rerun finds a bigger disk and the
   fixed ND result changes. *)
let disk_filler =
  program
    [
      func "main" []
        [
          Let ("fd", Open_file (Int 3));
          Check (Var "fd" >=: Int 0);
          Let ("i", Int 0);
          While
            ( Var "i" <: Int 40,
              [
                Let ("ok", Write_file (Var "fd", Var "i"));
                Check (Var "ok" >: Int 0);  (* crash on disk-full *)
                Output (Var "i");
                Set ("i", Var "i" +: Int 1);
              ] );
          Close_file (Var "fd");
        ];
    ]

let run_disk_filler ~expand =
  let code = Ft_vm.Asm.compile disk_filler in
  let kernel = Ft_os.Kernel.create ~fs_capacity:25 ~nprocs:1 () in
  let cfg =
    { Ft_runtime.Engine.default_config with
      expand_resources_on_recovery = expand;
      max_recovery_attempts = 2;
      max_instructions = 10_000_000 }
  in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:[| code |] () in
  r

let test_resource_expansion () =
  let stuck = run_disk_filler ~expand:false in
  Alcotest.(check bool) "without expansion the crash repeats" true
    (stuck.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Recovery_failed);
  let saved = run_disk_filler ~expand:true in
  Alcotest.(check bool) "with expansion recovery completes" true
    (saved.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check int) "all forty records written" 40
    (List.length
       (List.sort_uniq compare saved.Ft_runtime.Engine.visible))

(* --- §2.6: checkpoint exclusion ------------------------------------------ *)

(* Pages >= 8 hold a scratch rendering fully rebuilt before use on every
   iteration; excluding them from checkpoints loses nothing. *)
let scratch_base = 8 * 64

let renderer =
  program
    [
      func "main" []
        [
          Let ("c", Int 0);
          Let ("acc", Int 0);
          Let ("quit", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("c", Input);
                If
                  ( Var "c" <: Int 0,
                    [ Set ("quit", Int 1) ],
                    [
                      (* rebuild the scratch area from the input *)
                      Let ("j", Int 0);
                      While
                        ( Var "j" <: Int 1024,
                          [
                            Set_heap (Int scratch_base +: Var "j",
                                      (Var "c" *: Int 31) +: Var "j");
                            Set ("j", Var "j" +: Int 1);
                          ] );
                      (* then read it back *)
                      Set ("acc",
                           (Var "acc" +: Deref (Int scratch_base +: (Var "c" %: Int 1024)))
                           %: Int 99_991);
                      Set_heap (Int 0, Var "acc");
                      Output (Var "acc");
                    ] );
              ] );
        ];
    ]

let run_renderer ~excluded ~kills ~medium =
  let code = Ft_vm.Asm.compile renderer in
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  Ft_os.Kernel.set_input kernel 0
    (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:1_000_000
       (List.init 30 (fun i -> (i * 11) mod 800)));
  let cfg =
    { Ft_runtime.Engine.default_config with
      kills;
      medium;
      excluded_pages = (if excluded then fun p -> p >= 8 else fun _ -> false) }
  in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:[| code |] () in
  r

let test_checkpoint_exclusion_consistent () =
  let mem = Ft_runtime.Checkpointer.Reliable_memory in
  let reference = run_renderer ~excluded:false ~kills:[] ~medium:mem in
  let r = run_renderer ~excluded:true ~kills:[ (12_000_000, 0) ] ~medium:mem in
  Alcotest.(check bool) "completes" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "recovery consistent despite excluded pages" true
    (Consistency.is_consistent
       ~reference:reference.Ft_runtime.Engine.visible
       ~observed:r.Ft_runtime.Engine.visible)

let test_checkpoint_exclusion_cheaper () =
  let disk = Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default in
  let full = run_renderer ~excluded:false ~kills:[] ~medium:disk in
  let slim = run_renderer ~excluded:true ~kills:[] ~medium:disk in
  Alcotest.(check bool)
    (Printf.sprintf "excluding scratch shrinks commits (%d vs %d ns)"
       slim.Ft_runtime.Engine.sim_time_ns full.Ft_runtime.Engine.sim_time_ns)
    true
    (slim.Ft_runtime.Engine.sim_time_ns < full.Ft_runtime.Engine.sim_time_ns)

(* --- the new protocols, end to end ---------------------------------------- *)

let test_sbl_logs_receives () =
  (* two-process ping-pong where the server's only ND is receives: SBL
     never commits it *)
  let client =
    program
      [
        func "main" []
          [
            Let ("i", Int 0);
            Let ("v", Int 0);
            Let ("s", Int 0);
            While
              ( Var "i" <: Int 5,
                [
                  Send_msg (Int 1, Var "i");
                  Recv_msg ("v", "s");
                  Output (Var "v");
                  Set ("i", Var "i" +: Int 1);
                ] );
          ];
      ]
  in
  let server =
    program
      [
        func "main" []
          [
            Let ("i", Int 0);
            Let ("v", Int 0);
            Let ("s", Int 0);
            While
              ( Var "i" <: Int 5,
                [
                  Recv_msg ("v", "s");
                  Send_msg (Var "s", Var "v" *: Int 3);
                  Set ("i", Var "i" +: Int 1);
                ] );
          ];
      ]
  in
  let kernel = Ft_os.Kernel.create ~nprocs:2 () in
  let cfg =
    { Ft_runtime.Engine.default_config with
      protocol = Protocols.sender_based_logging }
  in
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:[| Ft_vm.Asm.compile client; Ft_vm.Asm.compile server |] ()
  in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check int) "server commits nothing" 0
    r.Ft_runtime.Engine.commit_counts.(1);
  Alcotest.(check bool) "save-work still holds" true
    (Save_work.holds r.Ft_runtime.Engine.trace)

(* --- no orphan survives recovery (message logging, end to end) ------------ *)

(* Two processes whose visible output depends on the client's transient
   random draws through a full message round-trip: the exact shape that
   creates orphans.  After any stop-failure schedule, the logging
   protocols must leave a Save-work-clean trace and an output consistent
   with the failure-free run — i.e. every orphan was detected and rolled
   back with the crashed process. *)
let rand_pingpong_iters = 5

let rand_client =
  program
    [
      func "main" []
        [
          Let ("i", Int 0);
          Let ("r", Int 0);
          Let ("v", Int 0);
          Let ("s", Int 0);
          While
            ( Var "i" <: Int rand_pingpong_iters,
              [
                Set ("r", Rand %: Int 100);
                Send_msg (Int 1, Var "r");
                Recv_msg ("v", "s");
                (* encode the iteration so outputs are injective across
                   iterations even when two draws collide *)
                Output ((Var "v" *: Int 8) +: Var "i");
                Set ("i", Var "i" +: Int 1);
              ] );
        ];
    ]

let rand_server =
  program
    [
      func "main" []
        [
          Let ("i", Int 0);
          Let ("v", Int 0);
          Let ("s", Int 0);
          While
            ( Var "i" <: Int rand_pingpong_iters,
              [
                Recv_msg ("v", "s");
                Send_msg (Var "s", (Var "v" *: Int 3) +: Int 1);
                Set ("i", Var "i" +: Int 1);
              ] );
        ];
    ]

let run_rand_pingpong ~protocol ~kills =
  let kernel = Ft_os.Kernel.create ~seed:9 ~nprocs:2 () in
  let cfg = { Ft_runtime.Engine.default_config with protocol; kills } in
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:
        [| Ft_vm.Asm.compile rand_client; Ft_vm.Asm.compile rand_server |]
      ()
  in
  r

(* The failure-free runs are clean: Save-work holds on the recorded
   trace (the oracle's domain is crash-free traces — a killed run's
   trace keeps its dead rolled-back segments) and all outputs arrive. *)
let test_logging_pingpong_clean () =
  List.iter
    (fun protocol ->
      let r = run_rand_pingpong ~protocol ~kills:[] in
      Alcotest.(check bool)
        (protocol.Protocol.spec_name ^ " completes")
        true
        (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
      Alcotest.(check bool)
        (protocol.Protocol.spec_name ^ " save-work holds")
        true
        (Save_work.holds r.Ft_runtime.Engine.trace);
      Alcotest.(check int)
        (protocol.Protocol.spec_name ^ " all outputs")
        rand_pingpong_iters
        (List.length r.Ft_runtime.Engine.visible))
    Protocols.message_logging

(* §2.3 consistency against the space of legal failure-free runs, which
   for this application is: one fresh value per iteration in order, each
   decoding to a server reply [3r + 1] for some draw [r], with
   duplicates only ever repeating an already-emitted value (rollback
   re-emission).  Transient draws the crash legitimately un-commits may
   be redrawn — that is optimistic logging working as designed — so the
   observed stream need not match one particular reference run.  An
   orphaned server surviving with rolled-back client state would either
   wedge the run (no Completed) or emit a reply escaping the lineage. *)
let no_orphan_survives_prop =
  QCheck.Test.make
    ~name:"no orphan survives recovery (CAUSAL-LOG / OPTIMISTIC)" ~count:40
    QCheck.(
      triple bool (list_of_size (Gen.int_bound 2) (1 -- 12)) (0 -- 1))
    (fun (opt, kill_ms, victim) ->
      let protocol =
        if opt then Protocols.optimistic else Protocols.causal_log
      in
      let kills = List.map (fun ms -> (ms * 1_000_000, victim)) kill_ms in
      let r = run_rand_pingpong ~protocol ~kills in
      let seen = Hashtbl.create 8 in
      let fresh =
        List.filter
          (fun v ->
            if Hashtbl.mem seen v then false
            else begin
              Hashtbl.add seen v ();
              true
            end)
          r.Ft_runtime.Engine.visible
      in
      r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed
      && List.length fresh = rand_pingpong_iters
      && List.for_all (fun (idx, f) -> f mod 8 = idx) (List.mapi (fun i f -> (i, f)) fresh)
      && List.for_all (fun f -> f / 8 mod 3 = 1 && f / 8 >= 1 && f / 8 < 300) fresh)

(* --- scripted conformance replays (mc interchange format) ----------------- *)

(* The same taint chain the model checker's counterexamples print,
   replayed through Conformance: an unlogged draw crossing a message
   must pull the sender into a shared dependent round before the
   receiver's visible; a logged draw must not. *)
let logging_script_text =
  "p0 nd transient\n\
   p0 send 1\n\
   p1 recv\n\
   p1 internal\n\
   p1 visible 7\n\
   p0 nd fixed loggable\n\
   p0 send 1\n\
   p1 recv\n\
   p1 visible 9\n"

let test_logging_conformance_scripts () =
  match Conformance.steps_of_string logging_script_text with
  | Error e -> Alcotest.fail e
  | Ok script ->
      List.iter
        (fun spec ->
          Alcotest.(check bool)
            (spec.Protocol.spec_name ^ " upholds on the scripted taint chain")
            true
            (Conformance.upholds_save_work spec ~nprocs:2 script))
        Protocols.message_logging;
      let t = Conformance.run Protocols.causal_log ~nprocs:2 script in
      Alcotest.(check bool) "a dependent round was committed" true
        (List.exists
           (fun e ->
             match e.Event.kind with
             | Event.Commit_round _ -> true
             | _ -> false)
           (Trace.events t))

(* --- conformance harness regressions ------------------------------------- *)

(* A Receive with nothing pending must be skipped outright: no event
   recorded, no protocol reaction — the rest of the script replays as if
   the receive were never written. *)
let test_receive_nothing_pending_skipped () =
  let script =
    [
      Conformance.step ~pid:0
        { Protocol.kind = Event.Receive { src = -1; tag = -1 };
          loggable = true };
      Conformance.step ~pid:0
        { Protocol.kind = Event.Visible 5; loggable = false };
    ]
  in
  let t = Conformance.run Protocols.cpvs ~nprocs:2 script in
  let events = Trace.events t in
  Alcotest.(check bool) "no receive recorded" false
    (List.exists
       (fun e ->
         match e.Event.kind with Event.Receive _ -> true | _ -> false)
       events);
  Alcotest.(check bool) "visible still recorded" true
    (List.exists
       (fun e ->
         match e.Event.kind with Event.Visible _ -> true | _ -> false)
       events);
  Alcotest.(check bool) "save-work upheld" true
    (Conformance.upholds_save_work Protocols.cpvs ~nprocs:2 script)

(* upholds_save_work is exactly "violations is empty" — exercised on a
   protocol that does convict (NO-COMMIT), so agreement is nontrivial. *)
let violations_agree_prop spec =
  QCheck.Test.make
    ~name:(spec.Protocol.spec_name ^ ": upholds iff violations empty")
    ~count:150 (arb_script 3)
    (fun script ->
      Conformance.upholds_save_work spec ~nprocs:3 script
      = (Conformance.violations spec ~nprocs:3 script = []))

let tests =
  List.map QCheck_alcotest.to_alcotest
    (conformance_tests
    @ [ no_commit_violates; stop_failure_prop;
        scheduler_matches_engines_prop; consistency_dup_bursts_prop;
        consistency_reorder_extra_prop; no_orphan_survives_prop ]
    @ List.map violations_agree_prop
        [ Protocols.no_commit; Protocols.cpvs; Protocols.cand_log;
          Protocols.causal_log ])
  @ [
      Alcotest.test_case "logging conformance scripts" `Quick
        test_logging_conformance_scripts;
      Alcotest.test_case "logging ping-pong clean (no kills)" `Quick
        test_logging_pingpong_clean;
      Alcotest.test_case "receive with nothing pending skipped" `Quick
        test_receive_nothing_pending_skipped;
      Alcotest.test_case "resource expansion (2.6)" `Quick
        test_resource_expansion;
      Alcotest.test_case "checkpoint exclusion consistent (2.6)" `Quick
        test_checkpoint_exclusion_consistent;
      Alcotest.test_case "checkpoint exclusion cheaper (2.6)" `Quick
        test_checkpoint_exclusion_cheaper;
      Alcotest.test_case "sbl logs receives" `Quick test_sbl_logs_receives;
    ]

let () = Alcotest.run "ft_props" [ ("properties", tests) ]
