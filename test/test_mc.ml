(* The bounded model checker (Ft_mc): honest protocols exhaust the
   bound clean, every mutant dies with a shrunk replayable repro,
   memoization does not change verdicts, sweeps resume from a warm
   store, and the abstract checker's verdicts cross-check against the
   real runtime engine. *)

open Ft_core

let program ~depth = Ft_mc.Model.default_program ~nprocs:2 ~depth

(* --- honest protocols ----------------------------------------------------- *)

let test_honest_clean () =
  let program = program ~depth:5 in
  List.iter
    (fun spec ->
      let s =
        Ft_mc.Checker.check ~spec ~defect:Ft_mc.Model.Honest ~program ()
      in
      Alcotest.(check int)
        (spec.Protocol.spec_name ^ " violations")
        0
        (List.length s.Ft_mc.Checker.violations);
      Alcotest.(check bool)
        (spec.Protocol.spec_name ^ " explored something")
        true
        (s.Ft_mc.Checker.nodes > 10 && s.Ft_mc.Checker.runs > 30))
    Protocols.figure8_extended

let test_honest_default_bound () =
  (* the issue's default bound: 2 procs x 6 events, all crash points *)
  let program = program ~depth:6 in
  let s =
    Ft_mc.Checker.check ~spec:Protocols.cpvs ~defect:Ft_mc.Model.Honest
      ~program ()
  in
  Alcotest.(check int) "cpvs clean at 2x6" 0
    (List.length s.Ft_mc.Checker.violations);
  Alcotest.(check bool) "memoization pruned" true
    (s.Ft_mc.Checker.memo_hits > 0)

let test_logging_default_bound () =
  (* the acceptance bound for the message-logging pair: 2 procs x 6
     events, every schedule x crash point, all three oracles clean *)
  let program = program ~depth:6 in
  List.iter
    (fun spec ->
      let s =
        Ft_mc.Checker.check ~spec ~defect:Ft_mc.Model.Honest ~program ()
      in
      Alcotest.(check (list string))
        (spec.Protocol.spec_name ^ " clean at 2x6")
        []
        (List.map
           (fun (v : Ft_mc.Checker.violation) -> v.Ft_mc.Checker.v_detail)
           s.Ft_mc.Checker.violations);
      Alcotest.(check bool)
        (spec.Protocol.spec_name ^ " explored the bound")
        true
        (s.Ft_mc.Checker.nodes > 50 && s.Ft_mc.Checker.runs > 150))
    Protocols.message_logging

let test_model_deterministic () =
  let program = program ~depth:5 in
  let run () =
    Ft_mc.Model.run ~spec:Protocols.cand_log ~defect:Ft_mc.Model.Drop_log
      ~program ~prefix:[ 0; 0; 0; 1; 1 ]
      ~crash:(Ft_mc.Model.Stop 0)
  in
  let a = run () and b = run () in
  Alcotest.(check string) "state key" a.Ft_mc.Model.state_key
    b.Ft_mc.Model.state_key;
  Alcotest.(check (list int)) "observed" a.Ft_mc.Model.observed
    b.Ft_mc.Model.observed;
  Alcotest.(check (list int)) "reference" a.Ft_mc.Model.reference
    b.Ft_mc.Model.reference

(* --- the mutant suite ----------------------------------------------------- *)

let test_mutants_killed () =
  let default = program ~depth:6 in
  List.iter
    (fun m ->
      (* a mutant may bring its own program: some kills need a shape the
         default menus cannot express (the 3-process causal chain) *)
      let program =
        Option.value m.Ft_mc.Mutants.program ~default
      in
      let s =
        Ft_mc.Checker.check ~lose_work:false ~spec:m.Ft_mc.Mutants.spec
          ~defect:m.Ft_mc.Mutants.defect ~program ()
      in
      match s.Ft_mc.Checker.violations with
      | [] -> Alcotest.failf "mutant %s survived" m.Ft_mc.Mutants.mutant_name
      | v :: _ ->
          (* shrink, and verify the minimum still fails the same oracle *)
          let r =
            Ft_mc.Shrink.minimize ~lose_work:false ~spec:m.Ft_mc.Mutants.spec
              ~defect:m.Ft_mc.Mutants.defect ~program v
          in
          Alcotest.(check bool)
            (m.Ft_mc.Mutants.mutant_name ^ " shrunk no longer")
            true
            (List.length r.Ft_mc.Shrink.s_prefix
            <= List.length v.Ft_mc.Checker.v_prefix);
          let still =
            Ft_mc.Checker.check_one ~lose_work:false
              ~spec:m.Ft_mc.Mutants.spec ~defect:m.Ft_mc.Mutants.defect
              ~program:r.Ft_mc.Shrink.s_program
              ~prefix:r.Ft_mc.Shrink.s_prefix ~crash:r.Ft_mc.Shrink.s_crash ()
          in
          Alcotest.(check bool)
            (m.Ft_mc.Mutants.mutant_name ^ " shrunk still fails")
            true
            (List.exists
               (fun (x : Ft_mc.Checker.violation) ->
                 x.Ft_mc.Checker.v_oracle = r.Ft_mc.Shrink.s_oracle)
               still))
    Ft_mc.Mutants.all

let test_mutant_suite_shape () =
  (* the suite auto-extends: both logging-defect mutants are registered
     and target the executable message-logging specs, and the
     nested-failure pair rides with its own programs *)
  Alcotest.(check int) "ten mutants" 10 (List.length Ft_mc.Mutants.all);
  let m = Option.get (Ft_mc.Mutants.by_name "drop-dependency-vector") in
  Alcotest.(check string) "dv mutant hosts CAUSAL-LOG" "CAUSAL-LOG"
    m.Ft_mc.Mutants.spec.Protocol.spec_name;
  let m = Option.get (Ft_mc.Mutants.by_name "commit-without-orphan-kill") in
  Alcotest.(check string) "orphan mutant hosts OPTIMISTIC" "OPTIMISTIC"
    m.Ft_mc.Mutants.spec.Protocol.spec_name;
  let m = Option.get (Ft_mc.Mutants.by_name "resume-cascade-from-scratch") in
  Alcotest.(check string) "resume mutant hosts OPTIMISTIC" "OPTIMISTIC"
    m.Ft_mc.Mutants.spec.Protocol.spec_name;
  Alcotest.(check int) "resume mutant brings the 3-proc chain" 3
    (Array.length (Option.get m.Ft_mc.Mutants.program));
  let m = Option.get (Ft_mc.Mutants.by_name "gc-live-determinant") in
  Alcotest.(check string) "gc mutant hosts CAUSAL-LOG" "CAUSAL-LOG"
    m.Ft_mc.Mutants.spec.Protocol.spec_name;
  Alcotest.(check bool) "gc mutant brings its own program" true
    (m.Ft_mc.Mutants.program <> None)

let test_shrunk_script_replayable () =
  let program = program ~depth:6 in
  let m = Option.get (Ft_mc.Mutants.by_name "commit-after-visible") in
  let s =
    Ft_mc.Checker.check ~lose_work:false ~spec:m.Ft_mc.Mutants.spec
      ~defect:m.Ft_mc.Mutants.defect ~program ()
  in
  let v = List.hd s.Ft_mc.Checker.violations in
  let r =
    Ft_mc.Shrink.minimize ~lose_work:false ~spec:m.Ft_mc.Mutants.spec
      ~defect:m.Ft_mc.Mutants.defect ~program v
  in
  let script = Ft_mc.Shrink.to_script ~spec:m.Ft_mc.Mutants.spec r in
  match Conformance.steps_of_string script with
  | Error e -> Alcotest.failf "script does not parse: %s" e
  | Ok steps ->
      Alcotest.(check int) "one step per schedule slot"
        (List.length r.Ft_mc.Shrink.s_prefix)
        (List.length steps);
      (* this mutant dies on the crash-free prefix: replaying the script
         through the conformance harness must reproduce the Save-work
         violation *)
      Alcotest.(check bool) "replay reproduces the violation" false
        (Conformance.upholds_save_work m.Ft_mc.Mutants.spec ~nprocs:2 steps)

(* --- the drop-one-message fault -------------------------------------------- *)

let test_lose_transparent_under_honest () =
  (* after [0;0] p0 has executed (nd; send->1), so message (0,1,0) is in
     flight; losing it under an honest runtime is repaired by
     retransmission and the run is indistinguishable from the no-loss
     one — which is exactly why the seven honest protocols' verdicts are
     unchanged by the new fault variants *)
  let program = program ~depth:6 in
  let run crash =
    Ft_mc.Model.run ~spec:Protocols.cand ~defect:Ft_mc.Model.Honest ~program
      ~prefix:[ 0; 0 ] ~crash
  in
  let nc = run Ft_mc.Model.No_crash in
  Alcotest.(check (list (triple int int int)))
    "pending message enumerated"
    [ (0, 1, 0) ]
    nc.Ft_mc.Model.pending;
  let lost = run (Ft_mc.Model.Lose { src = 0; dst = 1; seq = 0 }) in
  Alcotest.(check (list int)) "observed unchanged" nc.Ft_mc.Model.observed
    lost.Ft_mc.Model.observed;
  Alcotest.(check (list string)) "check_one clean" []
    (List.map
       (fun (v : Ft_mc.Checker.violation) -> v.Ft_mc.Checker.v_detail)
       (Ft_mc.Checker.check_one ~spec:Protocols.cand
          ~defect:Ft_mc.Model.Honest ~program ~prefix:[ 0; 0 ]
          ~crash:(Ft_mc.Model.Lose { src = 0; dst = 1; seq = 0 }) ()))

let test_never_retransmit_dies_only_on_lose () =
  (* the never-retransmit runtime recovers from process crashes exactly
     like the honest one — only the drop-one-message fault variants can
     convict it, so every violation must carry a Lose fault *)
  let program = program ~depth:6 in
  let m = Option.get (Ft_mc.Mutants.by_name "never-retransmit") in
  let s =
    Ft_mc.Checker.check ~lose_work:false ~spec:m.Ft_mc.Mutants.spec
      ~defect:m.Ft_mc.Mutants.defect ~program ()
  in
  Alcotest.(check bool) "convicted" true (s.Ft_mc.Checker.violations <> []);
  List.iter
    (fun (v : Ft_mc.Checker.violation) ->
      match v.Ft_mc.Checker.v_crash with
      | Ft_mc.Model.Lose _ -> ()
      | c ->
          Alcotest.failf "convicted by %s, not a lost message"
            (Ft_mc.Checker.crash_to_string c))
    s.Ft_mc.Checker.violations

(* --- nested failures: the recovery path itself crashes -------------------- *)

(* A taints B, B taints C, and C's visible rides on B's uncommitted
   lineage: the shape whose transitive orphan only an honestly *resumed*
   cascade can catch.  Exhaustive at this reduced bound (3 procs, 8
   events): every interleaving, every crash — including both nested
   stages for every victim — stays clean under the honest logging
   pair. *)
let causal_chain3 : Ft_mc.Model.program =
  [|
    [| Ft_mc.Model.Nd (Event.Transient, false); Ft_mc.Model.Send 1;
       Ft_mc.Model.Visible |];
    [| Ft_mc.Model.Nd (Event.Transient, false); Ft_mc.Model.Send 2;
       Ft_mc.Model.Receive |];
    [| Ft_mc.Model.Receive; Ft_mc.Model.Visible |];
  |]

let test_causal_chain3_exhaustive () =
  List.iter
    (fun spec ->
      let s =
        Ft_mc.Checker.check ~spec ~defect:Ft_mc.Model.Honest
          ~program:causal_chain3 ()
      in
      Alcotest.(check (list string))
        (spec.Protocol.spec_name ^ " chain3 clean")
        []
        (List.map
           (fun (v : Ft_mc.Checker.violation) -> v.Ft_mc.Checker.v_detail)
           s.Ft_mc.Checker.violations);
      (* the nested enumeration really ran: each explored node spawns
         Stop, Nested/restore and Nested/cascade per victim, so the run
         count must dominate the node count by more than the Stop
         variants alone could *)
      Alcotest.(check bool)
        (spec.Protocol.spec_name ^ " nested variants enumerated")
        true
        (s.Ft_mc.Checker.runs > 6 * s.Ft_mc.Checker.nodes))
    Protocols.message_logging

(* --- memoization soundness ------------------------------------------------ *)

let test_prune_matches_no_prune () =
  let program = program ~depth:5 in
  (* honest: both verdicts clean, pruning only saves work *)
  let pruned =
    Ft_mc.Checker.check ~spec:Protocols.cand ~defect:Ft_mc.Model.Honest
      ~program ()
  in
  let full =
    Ft_mc.Checker.check ~no_prune:true ~spec:Protocols.cand
      ~defect:Ft_mc.Model.Honest ~program ()
  in
  Alcotest.(check int) "honest pruned clean" 0
    (List.length pruned.Ft_mc.Checker.violations);
  Alcotest.(check int) "honest full clean" 0
    (List.length full.Ft_mc.Checker.violations);
  Alcotest.(check bool) "pruning explored no more" true
    (pruned.Ft_mc.Checker.nodes <= full.Ft_mc.Checker.nodes);
  (* mutant: both convict, and every pruned violation also appears in
     the unpruned exploration (pruning may only drop duplicates) *)
  let m = Option.get (Ft_mc.Mutants.by_name "budget-never-reset") in
  let pv =
    (Ft_mc.Checker.check ~lose_work:false ~spec:m.Ft_mc.Mutants.spec
       ~defect:m.Ft_mc.Mutants.defect ~program ())
      .Ft_mc.Checker.violations
  in
  let fv =
    (Ft_mc.Checker.check ~no_prune:true ~lose_work:false
       ~spec:m.Ft_mc.Mutants.spec ~defect:m.Ft_mc.Mutants.defect ~program ())
      .Ft_mc.Checker.violations
  in
  Alcotest.(check bool) "mutant convicted both ways" true
    (pv <> [] && fv <> []);
  List.iter
    (fun (v : Ft_mc.Checker.violation) ->
      Alcotest.(check bool) "pruned violation exists unpruned" true
        (List.mem v fv))
    pv

(* --- serialization -------------------------------------------------------- *)

let test_crash_roundtrip () =
  List.iter
    (fun c ->
      match Ft_mc.Checker.crash_of_string (Ft_mc.Checker.crash_to_string c) with
      | Ok c' ->
          Alcotest.(check string) "crash" (Ft_mc.Checker.crash_to_string c)
            (Ft_mc.Checker.crash_to_string c')
      | Error e -> Alcotest.fail e)
    [
      Ft_mc.Model.No_crash;
      Ft_mc.Model.Stop 0;
      Ft_mc.Model.Stop 7;
      Ft_mc.Model.Mid_commit { landed = true };
      Ft_mc.Model.Mid_commit { landed = false };
      Ft_mc.Model.Lose { src = 1; dst = 0; seq = 3 };
      Ft_mc.Model.Nested { victim = 0; stage = Ft_mc.Model.NRestore };
      Ft_mc.Model.Nested { victim = 2; stage = Ft_mc.Model.NCascade };
    ];
  match Ft_mc.Checker.prefix_of_string "010221" with
  | Ok p -> Alcotest.(check (list int)) "prefix" [ 0; 1; 0; 2; 2; 1 ] p
  | Error e -> Alcotest.fail e

let test_script_roundtrip () =
  let program = program ~depth:6 in
  let prefix = [ 0; 0; 0; 1; 1; 1; 0; 1 ] in
  let steps = Ft_mc.Model.prefix_to_steps program prefix in
  match Conformance.steps_of_string (Conformance.steps_to_string steps) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok steps' ->
      Alcotest.(check int) "same length" (List.length steps)
        (List.length steps');
      List.iter2
        (fun (a : Conformance.step) (b : Conformance.step) ->
          Alcotest.(check bool)
            (Conformance.step_to_string a)
            true
            (a.Conformance.pid = b.Conformance.pid
            && a.Conformance.info = b.Conformance.info))
        steps steps'

(* --- Exp fan-out and resumability ----------------------------------------- *)

let test_sweep_resumes () =
  let program = program ~depth:4 in
  let jobs =
    Ft_mc.Checker.jobs
      ~specs:[ (Protocols.cand, Ft_mc.Model.Honest) ]
      ~program ()
  in
  let out_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftmc_test_%d" (Unix.getpid ()))
  in
  let cold =
    Ft_exp.Exp.run_sweep ~workers:1 ~quiet:true ~out_dir ~name:"mc" jobs
  in
  Alcotest.(check int) "cold sweep ran everything" (List.length jobs)
    cold.Ft_exp.Exp.ran;
  let warm =
    Ft_exp.Exp.run_sweep ~workers:1 ~quiet:true ~out_dir ~name:"mc" jobs
  in
  Alcotest.(check int) "warm sweep ran nothing" 0 warm.Ft_exp.Exp.ran;
  Alcotest.(check int) "warm sweep skipped everything" (List.length jobs)
    warm.Ft_exp.Exp.skipped;
  (* aggregated sharded stats must reach the same verdict as one DFS *)
  let lookup = Ft_exp.Exp.lookup warm in
  let total =
    List.fold_left
      (fun acc j ->
        match
          Option.bind (lookup j.Ft_exp.Job.key) Ft_mc.Checker.stats_of_value
        with
        | Some s -> Ft_mc.Checker.add_stats acc s
        | None -> Alcotest.fail ("missing job " ^ j.Ft_exp.Job.key))
      Ft_mc.Checker.zero_stats jobs
  in
  Alcotest.(check int) "sharded verdict clean" 0
    (List.length total.Ft_mc.Checker.violations);
  Alcotest.(check bool) "shards covered the space" true
    (total.Ft_mc.Checker.nodes > 10);
  (* clean up the store *)
  Array.iter
    (fun f -> Sys.remove (Filename.concat out_dir f))
    (Sys.readdir out_dir);
  Unix.rmdir out_dir

let test_mutant_jobs_distinct_keys () =
  (* a mutant may reuse an honest spec verbatim (drop-log-entry is
     honest CAND-LOG over a lossy logger): their sweep keys must not
     collide or a warm store would serve one the other's verdict *)
  let program = program ~depth:4 in
  let keys jobs = List.map (fun j -> j.Ft_exp.Job.key) jobs in
  let honest =
    keys
      (Ft_mc.Checker.jobs
         ~specs:[ (Protocols.cand_log, Ft_mc.Model.Honest) ]
         ~program ())
  in
  let mutant =
    keys
      (Ft_mc.Checker.jobs ~lose_work:false
         ~specs:[ (Protocols.cand_log, Ft_mc.Model.Drop_log) ]
         ~program ())
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("key " ^ k ^ " distinct") false
        (List.mem k honest))
    mutant

(* --- the engine cross-check ----------------------------------------------- *)

let test_engine_xcheck () =
  List.iter
    (fun name ->
      let spec = Option.get (Protocols.by_name name) in
      let s =
        Ft_mc.Engine_xcheck.check ~sched_depth:1 ~kill_decisions:5 ~spec ()
      in
      Alcotest.(check (list string)) (name ^ " failures") []
        s.Ft_mc.Engine_xcheck.x_failures;
      Alcotest.(check bool) (name ^ " injected kills") true
        (s.Ft_mc.Engine_xcheck.x_kills > 0))
    [ "CPVS"; "CAND-LOG"; "CPV-2PC"; "CAUSAL-LOG"; "OPTIMISTIC" ]

(* Client/server round-trips whose output encodes its own lineage: the
   client's transient draw taints the server, the server's reply shape
   ([3v+1]) and the iteration tag make any dead-lineage survivor visible
   in the published values. *)
let chain_iters = 5

let chain_client =
  let open Ft_vm.Asm in
  program
    [
      func "main" []
        [
          Let ("i", Int 0);
          Let ("r", Int 0);
          Let ("v", Int 0);
          Let ("s", Int 0);
          While
            ( Var "i" <: Int chain_iters,
              [
                Set ("r", Rand %: Int 100);
                Send_msg (Int 1, Var "r");
                Recv_msg ("v", "s");
                Output ((Var "v" *: Int 8) +: Var "i");
                Set ("i", Var "i" +: Int 1);
              ] );
        ];
    ]

let chain_server =
  let open Ft_vm.Asm in
  program
    [
      func "main" []
        [
          Let ("i", Int 0);
          Let ("v", Int 0);
          Let ("s", Int 0);
          While
            ( Var "i" <: Int chain_iters,
              [
                Recv_msg ("v", "s");
                Send_msg (Var "s", (Var "v" *: Int 3) +: Int 1);
                Set ("i", Var "i" +: Int 1);
              ] );
        ];
    ]

(* Run the pair under [spec] with a client kill at [kill_ms] and the
   given recovery-stage injections; assert completion and legal output
   (one fresh value per iteration, in order, each a genuine reply). *)
let run_chain_and_check ~tag ~spec ~seed ~kill_ms ~recovery_kills () =
  let kernel = Ft_os.Kernel.create ~seed ~nprocs:2 () in
  let cfg =
    {
      Ft_runtime.Engine.default_config with
      protocol = spec;
      kills = [ (kill_ms * 1_000_000, 0) ];
      recovery_kills;
    }
  in
  let _, r =
    Ft_runtime.Engine.execute ~cfg ~kernel
      ~programs:[| Ft_vm.Asm.compile chain_client;
                   Ft_vm.Asm.compile chain_server |]
      ()
  in
  Alcotest.(check bool) (tag ^ " completed") true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  (* legal output: one fresh value per iteration in order, each a
     server reply, duplicates only re-emissions *)
  let seen = Hashtbl.create 8 in
  let fresh =
    List.filter
      (fun v ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      r.Ft_runtime.Engine.visible
  in
  Alcotest.(check int) (tag ^ " fresh outputs") chain_iters
    (List.length fresh);
  List.iteri
    (fun idx f ->
      Alcotest.(check int)
        (Printf.sprintf "%s output %d iteration tag" tag idx)
        idx (f mod 8);
      Alcotest.(check int)
        (Printf.sprintf "%s output %d reply shape" tag idx)
        1
        (f / 8 mod 3))
    fresh;
  r

let test_engine_orphan_rollback () =
  (* The orphan cascade on the real runtime: the client's transient draw
     taints the server through a message round-trip; killing the client
     between its dependent commit and the next one leaves the server
     holding uncommitted remote non-determinism — recovery must roll the
     survivor back too, and the run still completes with legal output. *)
  List.iter
    (fun (spec, kill_ms) ->
      let r =
        run_chain_and_check ~tag:spec.Protocol.spec_name ~spec ~seed:9
          ~kill_ms ~recovery_kills:[] ()
      in
      Alcotest.(check bool)
        (spec.Protocol.spec_name ^ " rolled the surviving server back")
        true
        (r.Ft_runtime.Engine.orphan_rollbacks >= 1))
    (* each protocol orphans the server at a different crash point *)
    [ (Protocols.causal_log, 1); (Protocols.optimistic, 2) ]

let test_engine_recrash_mid_cascade =
  (* Property: a victim re-crashed mid-cascade leaves no surviving
     orphan.  The re-entered recovery resumes the persisted worklist, so
     whatever (seed, kill time, injection occurrence) the generator
     draws, the run completes and every published value still encodes a
     live lineage — a surviving orphan would break the reply shape or
     the iteration order. *)
  QCheck.Test.make ~name:"re-crashed cascade leaves no surviving orphan"
    ~count:30
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 1 9) (int_range 1 4) (int_range 1 2)))
    (fun (seed, kill_ms, occ) ->
      List.for_all
        (fun spec ->
          let r =
            run_chain_and_check
              ~tag:
                (Printf.sprintf "%s s%d k%d o%d" spec.Protocol.spec_name
                   seed kill_ms occ)
              ~spec ~seed ~kill_ms
              ~recovery_kills:
                [ (Ft_runtime.Scheduler.Mid_cascade, occ) ]
              ()
          in
          (* whether or not the occurrence was reached, the run is
             clean; when it was, the nested crash is accounted for *)
          r.Ft_runtime.Engine.nested_crashes >= 0)
        [ Protocols.causal_log; Protocols.optimistic ])

let test_engine_pick_override () =
  (* the override drives scheduling: forcing p1 first changes nothing
     semantically (p1 blocks on its receive) but must be honored when
     p1 is runnable; and the same run without kills stays Completed *)
  let programs = Ft_mc.Engine_xcheck.ping_pong ~rounds:2 in
  let kernel = Ft_os.Kernel.create ~seed:1 ~nprocs:2 () in
  let picked = ref [] in
  let cfg =
    {
      Ft_runtime.Engine.default_config with
      protocol = Protocols.cpvs;
      heap_words = 1_024;
      stack_words = 256;
      pick_override =
        Some
          (fun candidates ->
            picked := candidates :: !picked;
            Some (List.hd (List.rev candidates)));
    }
  in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs () in
  Alcotest.(check bool) "completed" true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  Alcotest.(check bool) "override consulted" true (List.length !picked > 4)

(* --- lose-work oracle internals ------------------------------------------- *)

let test_lose_work_oracle_on_honest_crashes () =
  (* every crashed honest execution must pass the dangerous-path oracle:
     exercised wholesale in test_honest_clean, pinned here on one run *)
  let program = program ~depth:5 in
  let vs =
    Ft_mc.Checker.check_one ~spec:Protocols.cand ~defect:Ft_mc.Model.Honest
      ~program ~prefix:[ 0; 0; 1; 1; 0 ] ~crash:(Ft_mc.Model.Stop 0) ()
  in
  Alcotest.(check (list string)) "no violations"
    []
    (List.map
       (fun (v : Ft_mc.Checker.violation) -> v.Ft_mc.Checker.v_detail)
       vs)

let () =
  Alcotest.run "ft_mc"
    [
      ( "checker",
        [
          Alcotest.test_case "honest protocols exhaust 2x5 clean" `Quick
            test_honest_clean;
          Alcotest.test_case "default bound 2x6" `Quick
            test_honest_default_bound;
          Alcotest.test_case "message logging clean at default bound" `Quick
            test_logging_default_bound;
          Alcotest.test_case "model runs deterministic" `Quick
            test_model_deterministic;
          Alcotest.test_case "lose-work oracle on honest crash" `Quick
            test_lose_work_oracle_on_honest_crashes;
          Alcotest.test_case "lost message transparent under honest runtime"
            `Quick test_lose_transparent_under_honest;
          Alcotest.test_case "never-retransmit dies only on lost messages"
            `Quick test_never_retransmit_dies_only_on_lose;
          Alcotest.test_case "prune matches no-prune" `Quick
            test_prune_matches_no_prune;
          Alcotest.test_case "3-proc causal chain exhaustive with nested"
            `Quick test_causal_chain3_exhaustive;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "every mutant killed, repro shrunk" `Quick
            test_mutants_killed;
          Alcotest.test_case "mutant suite shape" `Quick
            test_mutant_suite_shape;
          Alcotest.test_case "shrunk script replays" `Quick
            test_shrunk_script_replayable;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "crash/prefix round-trip" `Quick
            test_crash_roundtrip;
          Alcotest.test_case "conformance script round-trip" `Quick
            test_script_roundtrip;
          Alcotest.test_case "sweep resumes from warm store" `Quick
            test_sweep_resumes;
          Alcotest.test_case "mutant sweep keys distinct" `Quick
            test_mutant_jobs_distinct_keys;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cross-check on the real runtime" `Quick
            test_engine_xcheck;
          Alcotest.test_case "orphan rollback on the real runtime" `Quick
            test_engine_orphan_rollback;
          QCheck_alcotest.to_alcotest test_engine_recrash_mid_cascade;
          Alcotest.test_case "pick override honored" `Quick
            test_engine_pick_override;
        ] );
    ]
