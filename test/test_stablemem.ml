(* Tests for the Rio/Vista/Disk substrate: persistence accounting, the
   write hook, the persisted undo log (including crash-during-commit and
   recovery from region words alone), and the disk cost model. *)

open Ft_stablemem

let test_rio_basics () =
  let r = Rio.create ~size:64 in
  Rio.write r 3 42;
  Alcotest.(check int) "read back" 42 (Rio.read r 3);
  Rio.blit_in r ~off:10 [| 1; 2; 3 |];
  Alcotest.(check (list int)) "blit out" [ 1; 2; 3 ]
    (Array.to_list (Rio.sub r ~off:10 ~len:3));
  Alcotest.(check int) "write accounting" 4 (Rio.words_written r)

let test_rio_bounds () =
  let r = Rio.create ~size:8 in
  Alcotest.check_raises "oob write" (Invalid_argument "Rio.write: out of range")
    (fun () -> Rio.write r 8 1);
  Alcotest.check_raises "oob blit"
    (Invalid_argument "Rio.blit_in: out of range") (fun () ->
      Rio.blit_in r ~off:6 [| 1; 2; 3 |])

let test_rio_write_hook () =
  (* the hook sees every word, blits included, before it persists; a
     raising hook aborts the word and everything after it *)
  let r = Rio.create ~size:16 in
  let seen = ref [] in
  Rio.set_on_write r (Some (fun off v -> seen := (off, v) :: !seen));
  Rio.write r 0 7;
  Rio.blit_in r ~off:4 [| 1; 2 |];
  Alcotest.(check (list (pair int int)))
    "hook saw the word sequence"
    [ (0, 7); (4, 1); (5, 2) ]
    (List.rev !seen);
  Rio.set_on_write r
    (Some
       (fun _ _ -> raise (Rio.Crash_point (Rio.words_written r))));
  (try Rio.blit_in r ~off:8 [| 9; 9 |] with Rio.Crash_point _ -> ());
  Alcotest.(check int) "intercepted write never landed" 0 (Rio.read r 8);
  Rio.set_on_write r None;
  (* poke bypasses both the hook and the accounting *)
  let before = Rio.words_written r in
  Rio.poke r 8 5;
  Alcotest.(check int) "poke landed" 5 (Rio.read r 8);
  Alcotest.(check int) "poke not accounted" before (Rio.words_written r)

let test_vista_commit () =
  let r = Rio.create ~size:64 in
  let v = Vista.create r in
  Vista.begin_tx v;
  Vista.write_range v ~off:0 [| 7; 8; 9 |];
  Vista.commit v;
  Alcotest.(check (list int)) "committed" [ 7; 8; 9 ]
    (Array.to_list (Rio.sub r ~off:0 ~len:3));
  Alcotest.(check int) "one commit" 1 (Vista.commits v);
  Alcotest.(check int) "log discarded" 0 (Vista.log_words v)

let test_vista_abort_restores () =
  let r = Rio.create ~size:64 in
  let v = Vista.create r in
  Vista.begin_tx v;
  Vista.write_range v ~off:0 [| 1; 1; 1 |];
  Vista.commit v;
  Vista.begin_tx v;
  Vista.write_range v ~off:0 [| 2; 2; 2 |];
  Vista.write_word v ~off:1 99;
  Alcotest.(check int) "mid-tx visible" 99 (Rio.read r 1);
  Vista.abort v;
  Alcotest.(check (list int)) "before-images applied" [ 1; 1; 1 ]
    (Array.to_list (Rio.sub r ~off:0 ~len:3));
  Alcotest.(check int) "abort counted" 1 (Vista.aborts v)

let test_vista_crash_mid_commit () =
  (* a crash with an open transaction recovers to the previous state *)
  let r = Rio.create ~size:64 in
  let v = Vista.create r in
  Vista.begin_tx v;
  Vista.write_range v ~off:4 [| 5; 5 |];
  Vista.commit v;
  Vista.begin_tx v;
  Vista.write_range v ~off:4 [| 6; 6 |];
  (* crash here: recovery runs the undo log *)
  Vista.recover v;
  Alcotest.(check (list int)) "rolled back to last commit" [ 5; 5 ]
    (Array.to_list (Rio.sub r ~off:4 ~len:2));
  Alcotest.(check bool) "no open tx" false (Vista.in_tx v)

let test_vista_recovery_from_region_alone () =
  (* the undo log lives in the region: a FRESH Vista over the old region
     (a process that lost all heap state) recovers identically, and the
     persisted counters survive with it *)
  let r = Rio.create ~size:64 in
  let v = Vista.create r in
  Vista.begin_tx v;
  Vista.write_range v ~off:0 [| 3; 4; 5 |];
  Vista.commit v;
  Vista.begin_tx v;
  Vista.write_range v ~off:0 [| 8; 8; 8 |];
  (* crash: [v] and its heap state are gone; only [r]'s words remain *)
  let v2 = Vista.create r in
  Alcotest.(check int) "commit counter persisted" 1 (Vista.commits v2);
  Alcotest.(check bool) "torn tx visible in the log" true
    (Vista.undo_records v2 > 0);
  Vista.recover v2;
  Alcotest.(check (list int)) "recovered from words alone" [ 3; 4; 5 ]
    (Array.to_list (Rio.sub r ~off:0 ~len:3));
  Alcotest.(check int) "rollback counted as abort" 1 (Vista.aborts v2)

let test_vista_outside_data_area_rejected () =
  let r = Rio.create ~size:64 in
  let v = Vista.create r in
  (* default data area is half the region *)
  Alcotest.(check int) "default data area" 32 (Vista.data_words v);
  Vista.begin_tx v;
  Alcotest.check_raises "log area protected"
    (Invalid_argument "Vista.write_range: outside the data area")
    (fun () -> Vista.write_range v ~off:31 [| 1; 2 |])

let test_vista_nesting_rejected () =
  let v = Vista.create (Rio.create ~size:16) in
  Vista.begin_tx v;
  Alcotest.check_raises "no nesting"
    (Invalid_argument "Vista.begin_tx: transaction already open") (fun () ->
      Vista.begin_tx v)

let test_disk_costs () =
  let d = Disk.default in
  Alcotest.(check bool) "access dominates small writes" true
    (Disk.write_cost d ~words:1 < Disk.write_cost d ~words:100_000);
  Alcotest.(check int) "zero words still pays access" d.Disk.access_ns
    (Disk.write_cost d ~words:0);
  Alcotest.(check bool) "commit pays two accesses" true
    (Disk.commit_cost d ~words:0 = 2 * d.Disk.access_ns);
  Alcotest.(check bool) "fast disk is faster" true
    (Disk.write_cost Disk.fast ~words:100 < Disk.write_cost d ~words:100)

(* qcheck: any interleaving of committed and aborted transactions leaves
   the data area equal to replaying only the committed ones. *)
let prop_vista_atomicity =
  QCheck.Test.make ~name:"aborted transactions leave no trace" ~count:200
    QCheck.(
      list_of_size (QCheck.Gen.int_bound 20)
        (triple (0 -- 27) (0 -- 100) bool))
    (fun ops ->
      let r = Rio.create ~size:64 in
      let v = Vista.create r in
      let data = Vista.data_words v in
      let model = Array.make data 0 in
      List.iter
        (fun (off, value, commit) ->
          Vista.begin_tx v;
          Vista.write_range v ~off [| value; value + 1 |];
          if commit then begin
            Vista.commit v;
            model.(off) <- value;
            model.(off + 1) <- value + 1
          end
          else Vista.abort v)
        ops;
      Array.to_list (Rio.sub r ~off:0 ~len:data) = Array.to_list model)

(* qcheck: arbitrary transactional writes, then a crash after an
   arbitrary number of persisted word writes inside commit.  Recovery —
   through a fresh Vista, from region words alone — must restore exactly
   the last committed image, commits and aborts counters included. *)
let prop_crash_point_atomicity =
  QCheck.Test.make
    ~name:"any crash point inside commit recovers the committed image"
    ~count:300
    QCheck.(
      triple
        (list_of_size (QCheck.Gen.int_bound 6)
           (triple (0 -- 27) (1 -- 1000) bool))
        (list_of_size (QCheck.Gen.int_bound 6) (pair (0 -- 27) (1 -- 1000)))
        (0 -- 200))
    (fun (history, final_writes, crash_after) ->
      let r = Rio.create ~size:256 in
      let v = Vista.create ~data_words:32 r in
      let model = Array.make 32 0 in
      List.iter
        (fun (off, value, commit) ->
          Vista.begin_tx v;
          Vista.write_range v ~off [| value; value + 1 |];
          if commit then begin
            Vista.commit v;
            model.(off) <- value;
            model.(off + 1) <- value + 1
          end
          else Vista.abort v)
        history;
      let commits_before = Vista.commits v and aborts_before = Vista.aborts v in
      (* the final transaction, with a crash armed inside commit *)
      Vista.begin_tx v;
      List.iter
        (fun (off, value) -> Vista.write_range v ~off [| value; value |])
        final_writes;
      let writes = ref 0 in
      Rio.set_on_write r
        (Some
           (fun _ _ ->
             if !writes >= crash_after then raise (Rio.Crash_point !writes);
             incr writes));
      let crashed =
        match Vista.commit v with
        | () -> false
        | exception Rio.Crash_point _ -> true
      in
      Rio.set_on_write r None;
      let committed = Vista.commits v > commits_before in
      (* recovery is a pure function of region words *)
      let v2 = Vista.create ~data_words:32 r in
      let log_was_published = Vista.log_words v2 > 0 in
      Vista.recover v2;
      if committed && not crashed then
        (* commit point passed before the armed crash *)
        List.iter
          (fun (off, value) ->
            model.(off) <- value;
            model.(off + 1) <- value)
          final_writes;
      Array.to_list (Rio.sub r ~off:0 ~len:32) = Array.to_list model
      && Vista.commits v2 = commits_before + (if crashed then 0 else 1)
      && Vista.aborts v2
         = aborts_before + (if crashed && log_was_published then 1 else 0))

(* The unhooked blit fast path (one Array.blit) and the hooked
   word-by-word path must agree on accounting and contents. *)
let test_rio_fast_path_accounting () =
  let fast = Rio.create ~size:64 and hooked = Rio.create ~size:64 in
  let seen = ref 0 in
  Rio.set_on_write hooked (Some (fun _ _ -> incr seen));
  let src = Array.init 7 (fun i -> 100 + i) in
  Rio.blit_in fast ~off:3 src;
  Rio.blit_in hooked ~off:3 src;
  Rio.blit_sub_in fast ~off:20 src ~spos:2 ~len:4;
  Rio.blit_sub_in hooked ~off:20 src ~spos:2 ~len:4;
  Rio.copy_within fast ~src_off:3 ~dst_off:40 ~len:5;
  Rio.copy_within hooked ~src_off:3 ~dst_off:40 ~len:5;
  Alcotest.(check int) "words_written: fast path matches hooked path"
    (Rio.words_written hooked) (Rio.words_written fast);
  Alcotest.(check int) "hook saw every word" 16 !seen;
  Alcotest.(check bool) "identical contents" true
    (Rio.sub fast ~off:0 ~len:64 = Rio.sub hooked ~off:0 ~len:64)

(* qcheck: a diff-mode write is observationally equivalent to the
   whole-range write — same data image whether the transaction commits
   or aborts, for any overlap pattern between incoming and current
   words (small value range makes unchanged words common, so the run
   coalescing and the whole-range fallback both get exercised). *)
let prop_diff_mode_equivalence =
  QCheck.Test.make ~name:"diff-mode writes equal whole-range writes"
    ~count:300
    QCheck.(
      triple
        (list_of_size (Gen.int_bound 8) (pair (0 -- 30) (0 -- 3)))
        (list_of_size (Gen.int_bound 8)
           (triple (0 -- 24) (0 -- 3) (1 -- 8)))
        bool)
    (fun (base, tx_writes, commit) ->
      let mk () =
        let r = Rio.create ~size:256 in
        let v = Vista.create ~data_words:32 r in
        List.iter
          (fun (off, value) ->
            Vista.begin_tx v;
            Vista.write_range v ~off [| value |];
            Vista.commit v)
          base;
        (r, v)
      in
      let apply diff (r, v) =
        Vista.begin_tx v;
        List.iter
          (fun (off, value, len) ->
            Vista.write_range ~diff v ~off
              (Array.init len (fun i -> (value + i) mod 4)))
          tx_writes;
        if commit then Vista.commit v else Vista.abort v;
        Array.to_list (Rio.sub r ~off:0 ~len:32)
      in
      apply true (mk ()) = apply false (mk ()))

(* Torture a diff-mode commit at every persisted word write: recovery
   over a fresh Vista must restore exactly the previous committed image
   (or, past the commit point, the new one) — never a hybrid. *)
let test_diff_commit_crash_every_word () =
  let data = 64 in
  let base = Array.init data (fun i -> (i * 3) + 1) in
  (* sparse changes: exercises run coalescing, not the fallback *)
  let incoming =
    Array.init data (fun i -> if i mod 5 = 0 then 7_000 + i else base.(i))
  in
  let run_with_crash point =
    let r = Rio.create ~size:512 in
    let v = Vista.create ~data_words:data r in
    Vista.begin_tx v;
    Vista.write_range v ~off:0 base;
    Vista.commit v;
    let commits_pre = Vista.commits v in
    Vista.begin_tx v;
    let writes = ref 0 in
    Rio.set_on_write r
      (Some
         (fun _ _ ->
           if !writes >= point then raise (Rio.Crash_point !writes);
           incr writes));
    let crashed =
      match
        Vista.write_range ~diff:true v ~off:0 incoming;
        Vista.commit v
      with
      | () -> false
      | exception Rio.Crash_point _ -> true
    in
    Rio.set_on_write r None;
    if crashed then begin
      let v2 = Vista.create ~data_words:data r in
      Vista.recover v2;
      let img = Array.to_list (Rio.sub r ~off:0 ~len:data) in
      let rolled_back =
        img = Array.to_list base && Vista.commits v2 = commits_pre
      in
      let committed =
        img = Array.to_list incoming && Vista.commits v2 = commits_pre + 1
      in
      Alcotest.(check bool)
        (Printf.sprintf "crash point %d: pre or post image, never hybrid"
           point)
        true (rolled_back || committed)
    end;
    crashed
  in
  let point = ref 0 in
  while run_with_crash !point do
    incr point;
    if !point > 10_000 then Alcotest.fail "commit never completed"
  done;
  Alcotest.(check bool) "swept multiple crash points" true (!point > 10)

let tests =
  [
    Alcotest.test_case "rio basics" `Quick test_rio_basics;
    Alcotest.test_case "rio bounds" `Quick test_rio_bounds;
    Alcotest.test_case "rio write hook" `Quick test_rio_write_hook;
    Alcotest.test_case "vista commit" `Quick test_vista_commit;
    Alcotest.test_case "vista abort" `Quick test_vista_abort_restores;
    Alcotest.test_case "vista crash mid-commit" `Quick
      test_vista_crash_mid_commit;
    Alcotest.test_case "vista recovery from region alone" `Quick
      test_vista_recovery_from_region_alone;
    Alcotest.test_case "vista data-area bounds" `Quick
      test_vista_outside_data_area_rejected;
    Alcotest.test_case "vista nesting" `Quick test_vista_nesting_rejected;
    Alcotest.test_case "disk costs" `Quick test_disk_costs;
    Alcotest.test_case "rio fast-path accounting" `Quick
      test_rio_fast_path_accounting;
    Alcotest.test_case "diff commit crash at every word" `Quick
      test_diff_commit_crash_every_word;
    QCheck_alcotest.to_alcotest prop_vista_atomicity;
    QCheck_alcotest.to_alcotest prop_crash_point_atomicity;
    QCheck_alcotest.to_alcotest prop_diff_mode_equivalence;
  ]

let () = Alcotest.run "ft_stablemem" [ ("stablemem", tests) ]
