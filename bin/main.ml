(* ft — command-line driver for the failure-transparency experiments.

   Subcommands regenerate each table and figure of the paper's
   evaluation; `ft all` produces the complete report used to fill in
   EXPERIMENTS.md. *)

open Cmdliner

let print_space () =
  print_string (Ft_harness.Report.section "Figure 3: the protocol space");
  print_string (Ft_core.Protocol_space.render Ft_core.Protocol_space.all);
  print_newline ();
  print_endline
    "Protocols on the horizontal axis (visible-effort 0) prevent recovery";
  print_endline "from propagation failures (Lose-work, Section 2.6):";
  List.iter
    (fun p ->
      if Ft_core.Protocol_space.prevents_propagation_recovery p then
        Printf.printf "  - %s\n" p.Ft_core.Protocol_space.name)
    Ft_core.Protocol_space.all

(* Sweep plumbing: every table/figure subcommand lists its jobs, hands
   them to the experiment runner (parallel workers, resumable results
   store), and renders from the returned records.  Progress and the
   skipped-job count go to stderr, so stdout is byte-identical across
   [-j] settings and warm/cold stores. *)

type sweep_opts = { workers : int option; fresh : bool; out_dir : string }

(* A command that ran to completion but found violations: report on
   stderr and exit 1 — distinct from usage errors, which cmdliner
   reports itself and which exit 2 (see the eval match at the bottom). *)
let fail_run msg =
  Printf.eprintf "ft: %s\n%!" msg;
  `Ok 1

let sweep opts ~name jobs =
  Ft_exp.Exp.lookup
    (Ft_exp.Exp.run_sweep ?workers:opts.workers ~fresh:opts.fresh
       ~out_dir:opts.out_dir ~name jobs)

let run_figure8 apps scale seed opts =
  let jobs = List.concat_map (Ft_harness.Figure8.jobs ~scale ~seed) apps in
  let lookup = sweep opts ~name:"figure8" jobs in
  List.iter
    (fun app ->
      print_string
        (Ft_harness.Figure8.render
           (Ft_harness.Figure8.of_records ~scale ~seed app lookup)))
    apps;
  `Ok 0

let table1_app_of_string = function
  | "nvi" -> Ok Ft_harness.Table1.Nvi
  | "postgres" -> Ok Ft_harness.Table1.Postgres
  | s -> Error (Printf.sprintf "unknown app %S (nvi or postgres)" s)

let table1_rows crashes opts apps =
  let jobs =
    List.concat_map
      (fun app -> Ft_harness.Table1.jobs ~target_crashes:crashes ~app ())
      apps
  in
  let lookup = sweep opts ~name:"table1" jobs in
  List.map
    (fun app ->
      (app, Ft_harness.Table1.of_records ~target_crashes:crashes ~app lookup))
    apps

let table2_rows crashes opts apps =
  let jobs =
    List.concat_map
      (fun app -> Ft_harness.Table2.jobs ~target_crashes:crashes ~app ())
      apps
  in
  let lookup = sweep opts ~name:"table2" jobs in
  List.map
    (fun app ->
      (app, Ft_harness.Table2.of_records ~target_crashes:crashes ~app lookup))
    apps

let run_table1 apps crashes opts =
  List.iter
    (fun (app, rows) -> print_string (Ft_harness.Table1.render ~app rows))
    (table1_rows crashes opts apps);
  `Ok 0

let run_table2 apps crashes opts =
  List.iter
    (fun (app, rows) -> print_string (Ft_harness.Table2.render ~app rows))
    (table2_rows crashes opts apps);
  `Ok 0

let run_analysis crashes opts =
  let t1 =
    List.assoc Ft_harness.Table1.Nvi
      (table1_rows crashes opts [ Ft_harness.Table1.Nvi ])
  in
  let v = Ft_harness.Table1.average t1 /. 100. in
  print_string (Ft_harness.Table1.render ~app:Ft_harness.Table1.Nvi t1);
  print_string
    (Ft_harness.Analysis.render_conflict
       (Ft_harness.Analysis.conflict ~violation_rate:v ()));
  let t2 =
    List.assoc Ft_harness.Table1.Nvi
      (table2_rows crashes opts [ Ft_harness.Table1.Nvi ])
  in
  print_string (Ft_harness.Table2.render ~app:Ft_harness.Table1.Nvi t2);
  print_string
    (Ft_harness.Analysis.render_propagation ~app:"nvi"
       ~os_failure_rate:(Ft_harness.Table2.average t2 /. 100.)
       ~violation_rate:v);
  `Ok 0

let run_all scale crashes seed opts =
  print_space ();
  ignore (run_figure8 Ft_harness.Figure8.all_apps scale seed opts);
  let both = [ Ft_harness.Table1.Nvi; Ft_harness.Table1.Postgres ] in
  let t1s = table1_rows crashes opts both in
  List.iter
    (fun (app, rows) -> print_string (Ft_harness.Table1.render ~app rows))
    t1s;
  let t2s = table2_rows crashes opts both in
  List.iter
    (fun (app, rows) -> print_string (Ft_harness.Table2.render ~app rows))
    t2s;
  let v_nvi = Ft_harness.Table1.average (List.assoc Ft_harness.Table1.Nvi t1s) /. 100. in
  print_string
    (Ft_harness.Analysis.render_conflict
       (Ft_harness.Analysis.conflict ~violation_rate:v_nvi ()));
  List.iter
    (fun (app, rows) ->
      let v =
        Ft_harness.Table1.average (List.assoc app t1s) /. 100.
      in
      print_string
        (Ft_harness.Analysis.render_propagation
           ~app:(Ft_harness.Table1.app_name app)
           ~os_failure_rate:(Ft_harness.Table2.average rows /. 100.)
           ~violation_rate:v))
    t2s;
  `Ok 0

(* Crash-point torture: sweep an injected crash over every word write
   of a multi-page commit (or a seeded sample) and verify recovery.
   Exits non-zero on any atomicity violation — and when sweep jobs
   died without a verdict — so CI can gate on it. *)
let run_torture points_s seed defect opts =
  match
    match String.lowercase_ascii points_s with
    | "all" -> Ok Ft_harness.Torture.All
    | s when String.length s > 7 && String.sub s 0 7 = "sample:" -> (
        match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
        | Some n when n > 0 -> Ok (Ft_harness.Torture.Sample n)
        | _ -> Error ("bad sample count in " ^ points_s))
    | _ -> Error ("bad --points " ^ points_s ^ " (all or sample:N)")
  with
  | Error msg -> `Error (false, msg)
  | Ok points ->
      let sc = { Ft_harness.Torture.default_scenario with seed } in
      let defect =
        if defect then Some Ft_stablemem.Vista.Publish_header_first else None
      in
      let report =
        Ft_harness.Torture.run ?defect ?workers:opts.workers
          ~out_dir:opts.out_dir ~fresh:opts.fresh ~points sc
      in
      print_string (Ft_harness.Torture.render report);
      if
        report.Ft_harness.Torture.violations = []
        && report.Ft_harness.Torture.explored
           = report.Ft_harness.Torture.requested
      then `Ok 0
      else fail_run "torture found atomicity violations"

(* Netstorm: run the protocol space across an unreliable network and
   verify retransmission keeps every run complete and consistent.
   Exits non-zero on any violation, wedged run or missing job, so CI
   can gate on it. *)
let run_netstorm loss dup reorder partition apps scale seed opts =
  let points =
    if loss = None && dup = None && reorder = None && not partition then
      Ft_harness.Netstorm.default_points
    else
      [
        Ft_harness.Netstorm.custom_point ?loss ?dup ?reorder ~partition ();
      ]
  in
  let report =
    Ft_harness.Netstorm.run ?workers:opts.workers ~out_dir:opts.out_dir
      ~fresh:opts.fresh ~scale ~seed ~points ~apps ()
  in
  print_string (Ft_harness.Netstorm.render ~points ~apps report);
  if Ft_harness.Netstorm.clean report then `Ok 0
  else fail_run "netstorm found violations"

(* Serve: the fleet-scale campaign — many postgres tenants per
   multi-tenant scheduler, open-loop load, Poisson kills, SLO-grade
   reporting.  Exits non-zero on any oracle violation, zero goodput, or
   missing shard, so CI can gate on it. *)
let run_serve procs requests proto_names crash_rate recovery_crash_rate
    det_cap storm_name shard_size interval_ns poison smoke bench_out seed
    opts =
  let bad = ref [] in
  let protocols =
    match proto_names with
    | [] -> [ Ft_core.Protocols.cpvs ]
    | [ "all" ] -> Ft_core.Protocols.figure8
    | names ->
        List.filter_map
          (fun n ->
            match Ft_core.Protocols.by_name n with
            | Some s -> Some s
            | None ->
                bad := n :: !bad;
                None)
          names
  in
  let storm =
    match storm_name with
    | None -> Ok None
    | Some s -> (
        match
          List.find_opt
            (fun pt -> pt.Ft_harness.Netstorm.label = s)
            Ft_harness.Netstorm.default_points
        with
        | Some pt -> Ok (Some pt)
        | None -> Error s)
  in
  match (!bad, storm) with
  | n :: _, _ -> `Error (false, "unknown protocol " ^ n)
  | _, Error s -> `Error (false, "unknown storm tier " ^ s ^ " (calm, breeze, gale or storm)")
  | [], Ok storm ->
      let p =
        if smoke then
          {
            Ft_harness.Serve.smoke_params with
            seed;
            storm;
            poison;
            recovery_crash_rate;
          }
        else
          {
            Ft_harness.Serve.default_params with
            procs;
            requests;
            crash_rate;
            recovery_crash_rate;
            det_cap;
            storm;
            seed;
            shard_size;
            interval_ns;
            poison;
          }
      in
      let report =
        Ft_harness.Serve.run ?workers:opts.workers ~out_dir:opts.out_dir
          ~fresh:opts.fresh ~protocols p
      in
      print_string (Ft_harness.Serve.render report);
      Option.iter
        (fun path -> Ft_harness.Serve.merge_bench ~path report)
        bench_out;
      let goodput_ok =
        List.for_all
          (fun s -> s.Ft_harness.Serve.s_goodput > 0.)
          report.Ft_harness.Serve.summaries
      in
      if Ft_harness.Serve.clean report && goodput_ok then `Ok 0
      else fail_run "serve found violations or zero goodput"

(* Rescue: inject recurring application faults — the kind generic replay
   re-executes — and measure how much of the crashed-run mass each
   escalation rung (deep rollback, perturbed replay) reclaims.  Exits
   non-zero on any Consistency violation at any rung or a missing cell,
   so CI can gate on it. *)
let run_rescue app_names proto_names ladder_names crashes smoke bench_out
    seed opts =
  let bad = ref [] in
  let protocols =
    match proto_names with
    | [] -> Ft_harness.Rescue.default_spec.Ft_harness.Rescue.protocols
    | names ->
        List.filter_map
          (fun n ->
            match Ft_core.Protocols.by_name n with
            | Some s -> Some s
            | None ->
                bad := n :: !bad;
                None)
          names
  in
  let bad_ladder =
    List.find_opt
      (fun n -> Ft_recovery.Policy.by_name n = None)
      ladder_names
  in
  match (!bad, bad_ladder) with
  | n :: _, _ -> `Error (false, "unknown protocol " ^ n)
  | _, Some n ->
      `Error (false, "unknown ladder " ^ n ^ " (generic, deep or full)")
  | [], None ->
      let spec =
        if smoke then
          { Ft_harness.Rescue.smoke_spec with Ft_harness.Rescue.seed0 = seed }
        else
          {
            Ft_harness.Rescue.default_spec with
            Ft_harness.Rescue.apps = app_names;
            protocols;
            ladder_names =
              (if ladder_names = [] then Ft_harness.Rescue.ladders
               else ladder_names);
            target_crashes = crashes;
            seed0 = seed;
          }
      in
      let report =
        Ft_harness.Rescue.run ?workers:opts.workers ~out_dir:opts.out_dir
          ~fresh:opts.fresh spec
      in
      print_string (Ft_harness.Rescue.render report);
      Option.iter
        (fun path -> Ft_harness.Rescue.merge_bench ~path report)
        bench_out;
      if Ft_harness.Rescue.clean report then `Ok 0
      else fail_run "rescue found consistency violations or missing cells"

let run_ablation opts =
  let lookup = sweep opts ~name:"ablation" (Ft_harness.Ablation.jobs ()) in
  print_string (Ft_harness.Ablation.render_records lookup);
  `Ok 0

(* Bounded model checking: every schedule x every crash point of a
   small program, per protocol, plus the mutant suite that keeps the
   checker honest.  Exits non-zero on any honest-protocol violation, on
   any surviving mutant, and on sweep jobs that died without a verdict,
   so CI can gate on it. *)
let run_mc nprocs depth proto_names mutants no_prune engine_xcheck opts =
  let bad = ref [] in
  let specs =
    match proto_names with
    | [] -> Ft_core.Protocols.figure8_extended
    | names ->
        List.filter_map
          (fun n ->
            match Ft_core.Protocols.by_name n with
            | Some s -> Some s
            | None ->
                bad := n :: !bad;
                None)
          names
  in
  if !bad <> [] then
    `Error (false, "unknown protocol(s): " ^ String.concat ", " !bad)
  else begin
    let program = Ft_mc.Model.default_program ~nprocs ~depth in
    let honest_jobs =
      Ft_mc.Checker.jobs ~no_prune
        ~specs:(List.map (fun s -> (s, Ft_mc.Model.Honest)) specs)
        ~program ()
    in
    (* a mutant may bring its own program: some kills need a shape the
       default menus cannot express (the 3-process causal chain) *)
    let mutant_program m =
      match m.Ft_mc.Mutants.program with Some p -> p | None -> program
    in
    let mutant_jobs =
      if not mutants then []
      else
        List.concat_map
          (fun m ->
            Ft_mc.Checker.jobs ~no_prune ~lose_work:false
              ~specs:[ (m.Ft_mc.Mutants.spec, m.Ft_mc.Mutants.defect) ]
              ~program:(mutant_program m) ())
          Ft_mc.Mutants.all
    in
    let xcheck_jobs =
      if engine_xcheck then Ft_mc.Engine_xcheck.jobs ~specs () else []
    in
    let lookup =
      sweep opts ~name:"mc" (honest_jobs @ mutant_jobs @ xcheck_jobs)
    in
    let missing = ref 0 in
    let stats_of jobs =
      List.fold_left
        (fun acc j ->
          match Option.bind (lookup j.Ft_exp.Job.key)
                  Ft_mc.Checker.stats_of_value
          with
          | Some s -> Ft_mc.Checker.add_stats acc s
          | None ->
              incr missing;
              acc)
        Ft_mc.Checker.zero_stats jobs
    in
    Printf.printf "Model checker: %d procs x %d events, program %s\n" nprocs
      depth
      (String.sub (Ft_mc.Model.program_digest program) 0 12);
    Printf.printf "%-12s %8s %8s %8s %10s %6s\n" "protocol" "nodes" "runs"
      "memo" "steps" "viol";
    let honest_viol = ref 0 in
    List.iter
      (fun spec ->
        let jobs =
          Ft_mc.Checker.jobs ~no_prune
            ~specs:[ (spec, Ft_mc.Model.Honest) ]
            ~program ()
        in
        let s = stats_of jobs in
        let nviol = List.length s.Ft_mc.Checker.violations in
        honest_viol := !honest_viol + nviol;
        Printf.printf "%-12s %8d %8d %8d %10d %6d\n"
          spec.Ft_core.Protocol.spec_name s.Ft_mc.Checker.nodes
          s.Ft_mc.Checker.runs s.Ft_mc.Checker.memo_hits
          s.Ft_mc.Checker.steps nviol;
        List.iteri
          (fun i v ->
            if i < 3 then
              Printf.printf "    %s at sched=%s crash=%s: %s\n"
                (Ft_mc.Checker.oracle_to_string v.Ft_mc.Checker.v_oracle)
                (Ft_mc.Checker.prefix_to_string v.Ft_mc.Checker.v_prefix)
                (Ft_mc.Checker.crash_to_string v.Ft_mc.Checker.v_crash)
                v.Ft_mc.Checker.v_detail)
          s.Ft_mc.Checker.violations)
      specs;
    let surviving = ref [] in
    if mutants then begin
      print_newline ();
      print_endline "Mutant suite (every mutant must be killed):";
      List.iter
        (fun m ->
          let program = mutant_program m in
          let jobs =
            Ft_mc.Checker.jobs ~no_prune ~lose_work:false
              ~specs:[ (m.Ft_mc.Mutants.spec, m.Ft_mc.Mutants.defect) ]
              ~program ()
          in
          let s = stats_of jobs in
          match s.Ft_mc.Checker.violations with
          | [] ->
              surviving := m.Ft_mc.Mutants.mutant_name :: !surviving;
              Printf.printf "  %-22s SURVIVED (expected: %s)\n"
                m.Ft_mc.Mutants.mutant_name m.Ft_mc.Mutants.expected
          | v :: _ ->
              let r =
                Ft_mc.Shrink.minimize ~lose_work:false
                  ~spec:m.Ft_mc.Mutants.spec ~defect:m.Ft_mc.Mutants.defect
                  ~program v
              in
              Printf.printf
                "  %-22s killed by %s (%d violations); shrunk repro:\n"
                m.Ft_mc.Mutants.mutant_name
                (Ft_mc.Checker.oracle_to_string v.Ft_mc.Checker.v_oracle)
                (List.length s.Ft_mc.Checker.violations);
              String.split_on_char '\n'
                (Ft_mc.Shrink.to_script ~spec:m.Ft_mc.Mutants.spec r)
              |> List.iter (fun l -> Printf.printf "    | %s\n" l))
        Ft_mc.Mutants.all
    end;
    let xcheck_failures = ref 0 in
    if engine_xcheck then begin
      print_newline ();
      print_endline "Engine cross-check (real VM + kernel + checkpointer):";
      List.iter
        (fun j ->
          match Option.bind (lookup j.Ft_exp.Job.key)
                  Ft_mc.Engine_xcheck.stats_of_value
          with
          | Some s ->
              xcheck_failures :=
                !xcheck_failures + List.length s.Ft_mc.Engine_xcheck.x_failures;
              Printf.printf "  %-40s runs=%5d kills=%5d failures=%d\n"
                j.Ft_exp.Job.key s.Ft_mc.Engine_xcheck.x_runs
                s.Ft_mc.Engine_xcheck.x_kills
                (List.length s.Ft_mc.Engine_xcheck.x_failures);
              List.iteri
                (fun i f -> if i < 3 then Printf.printf "    %s\n" f)
                s.Ft_mc.Engine_xcheck.x_failures
          | None -> incr missing)
        xcheck_jobs
    end;
    if !honest_viol > 0 then
      fail_run "model checker found protocol violations"
    else if !surviving <> [] then
      fail_run ("surviving mutants: " ^ String.concat ", " !surviving)
    else if !xcheck_failures > 0 then
      fail_run "engine cross-check failures"
    else if !missing > 0 then
      fail_run "sweep jobs died without a verdict"
    else `Ok 0
  end

(* Run one application under one protocol and print the run's vitals. *)
let run_single app_name proto_name medium_name seed scale kills_ms =
  match
    ( Ft_harness.Figure8.app_of_name app_name,
      Ft_core.Protocols.by_name proto_name )
  with
  | None, _ -> `Error (false, "unknown app " ^ app_name)
  | _, None -> `Error (false, "unknown protocol " ^ proto_name)
  | Some app, Some protocol ->
      let medium =
        match String.lowercase_ascii medium_name with
        | "disk" -> Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default
        | _ -> Ft_runtime.Checkpointer.Reliable_memory
      in
      let w = Ft_harness.Figure8.workload ~scale app in
      let kills = List.map (fun ms -> (ms * 1_000_000, 0)) kills_ms in
      let cfg =
        Ft_apps.Workload.engine_config w
          { Ft_runtime.Engine.default_config with protocol; medium; kills }
      in
      let kernel = Ft_apps.Workload.kernel ~seed w in
      let _, r =
        Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
      in
      Printf.printf "app        : %s (%d process%s)\n" app_name w.nprocs
        (if w.nprocs = 1 then "" else "es");
      Printf.printf "protocol   : %s on %s\n" protocol.Ft_core.Protocol.spec_name
        (match medium with
        | Ft_runtime.Checkpointer.Reliable_memory -> "reliable memory"
        | Ft_runtime.Checkpointer.Disk _ -> "synchronous disk");
      Printf.printf "outcome    : %s\n"
        (match r.Ft_runtime.Engine.outcome with
        | Ft_runtime.Engine.Completed -> "completed"
        | Ft_runtime.Engine.Deadline -> "deadline"
        | Ft_runtime.Engine.Recovery_failed -> "recovery failed"
        | Ft_runtime.Engine.Deadlocked -> "deadlocked"
        | Ft_runtime.Engine.Instruction_budget -> "instruction budget"
        | Ft_runtime.Engine.Net_unreachable -> "network unreachable");
      Printf.printf "sim time   : %.3f s\n"
        (float_of_int r.Ft_runtime.Engine.sim_time_ns /. 1e9);
      Printf.printf "commits    : %s (total %d)\n"
        (String.concat "/"
           (Array.to_list
              (Array.map string_of_int r.Ft_runtime.Engine.commit_counts)))
        (Array.fold_left ( + ) 0 r.Ft_runtime.Engine.commit_counts);
      Printf.printf "nd events  : %d (%d logged)\n"
        (Array.fold_left ( + ) 0 r.Ft_runtime.Engine.nd_counts)
        (Array.fold_left ( + ) 0 r.Ft_runtime.Engine.logged_counts);
      Printf.printf "visible    : %d events\n"
        (List.length r.Ft_runtime.Engine.visible);
      Printf.printf "crashes    : %d (recoveries %d)\n"
        r.Ft_runtime.Engine.crashes r.Ft_runtime.Engine.recoveries;
      (* Whole-trace Save-work reads a killed logging run's dead
         rolled-back segments as uncovered ND (the oracle's domain is
         crash-free traces — the checker runs it on the crash-free
         prefix), so report it only where it is meaningful. *)
      Printf.printf "save-work  : %s\n"
        (if
           r.Ft_runtime.Engine.crashes > 0
           && protocol.Ft_core.Protocol.style <> Ft_core.Protocol.Coordinated
         then "n/a (killed logging run; oracle domain is crash-free traces)"
         else if Ft_core.Save_work.holds r.Ft_runtime.Engine.trace then
           "upheld"
         else "VIOLATED");
      if app = Ft_harness.Figure8.Xpilot then
        Printf.printf "frame rate : %.1f fps\n" (Ft_apps.Xpilot.fps r);
      `Ok 0

(* Disassemble a workload's compiled code (a development aid: the fault
   model operates at this level). *)
let run_disasm app_name pid =
  match Ft_harness.Figure8.app_of_name app_name with
  | None -> `Error (false, "unknown app " ^ app_name)
  | Some app ->
      let w = Ft_harness.Figure8.workload ~scale:0.05 app in
      if pid < 0 || pid >= Array.length w.Ft_apps.Workload.programs then
        `Error (false, "no such process")
      else begin
        print_endline (Ft_vm.Asm.disassemble w.Ft_apps.Workload.programs.(pid));
        `Ok 0
      end

(* --- cmdliner plumbing --------------------------------------------------- *)

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Workload scale (0,1].")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Kernel RNG seed.")

let crashes_arg =
  Arg.(value & opt int 50 & info [ "crashes" ]
         ~doc:"Target crash count per fault type.")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ]
           ~doc:"Worker domains for the sweep (0 = one per core).")

let fresh_arg =
  Arg.(value & flag
       & info [ "fresh" ]
           ~doc:"Ignore cached results and recompute every job.")

let out_arg =
  Arg.(value & opt string Ft_exp.Exp.default_out_dir
       & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory of the per-sweep results stores.")

let sweep_opts_term =
  let mk j fresh out_dir =
    { workers = (if j <= 0 then None else Some j); fresh; out_dir }
  in
  Term.(const mk $ jobs_arg $ fresh_arg $ out_arg)

let fig8_apps_arg =
  let conv_app =
    Arg.conv
      ( (fun s ->
          match Ft_harness.Figure8.app_of_name s with
          | Some a -> Ok a
          | None -> Error (`Msg ("unknown app " ^ s))),
        fun fmt a ->
          Format.pp_print_string fmt (Ft_harness.Figure8.app_name a) )
  in
  Arg.(value & opt_all conv_app Ft_harness.Figure8.all_apps
       & info [ "app" ] ~doc:"Application (repeatable).")

let t_apps_arg =
  let parse s = Result.map_error (fun m -> `Msg m) (table1_app_of_string s) in
  let print fmt a =
    Format.pp_print_string fmt (Ft_harness.Table1.app_name a)
  in
  Arg.(value & opt_all (Arg.conv (parse, print))
         [ Ft_harness.Table1.Nvi; Ft_harness.Table1.Postgres ]
       & info [ "app" ] ~doc:"Application: nvi or postgres (repeatable).")

let space_cmd =
  Cmd.v (Cmd.info "space" ~doc:"Print the Figure 3 protocol space.")
    Term.(const (fun () -> print_space (); `Ok 0) $ const () |> ret)

let figure8_cmd =
  Cmd.v (Cmd.info "figure8" ~doc:"Regenerate Figure 8 (a-d).")
    Term.(ret
            (const run_figure8 $ fig8_apps_arg $ scale_arg $ seed_arg
            $ sweep_opts_term))

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1.")
    Term.(ret (const run_table1 $ t_apps_arg $ crashes_arg $ sweep_opts_term))

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Regenerate Table 2.")
    Term.(ret (const run_table2 $ t_apps_arg $ crashes_arg $ sweep_opts_term))

let analysis_cmd =
  Cmd.v (Cmd.info "analysis" ~doc:"Run the Section 4 composed analysis.")
    Term.(ret (const run_analysis $ crashes_arg $ sweep_opts_term))

let torture_cmd =
  let points_arg =
    Arg.(value & opt string "all"
         & info [ "points" ] ~docv:"SPEC"
             ~doc:"Crash points to explore: $(b,all) or $(b,sample:N).")
  in
  let defect_arg =
    Arg.(value & flag
         & info [ "defect" ]
             ~doc:"Arm the publish-header-first write-ordering bug (the \
                   checker must then report violations).")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:"Crash a commit at every word write and verify recovery.")
    Term.(ret
            (const run_torture $ points_arg $ seed_arg $ defect_arg
            $ sweep_opts_term))

let netstorm_cmd =
  let rate name doc =
    Arg.(value & opt (some float) None & info [ name ] ~docv:"P" ~doc)
  in
  let loss_arg = rate "loss" "Per-frame drop probability." in
  let dup_arg = rate "dup" "Per-frame duplication probability." in
  let reorder_arg = rate "reorder" "Per-frame reorder probability." in
  let partition_arg =
    Arg.(value & flag
         & info [ "partition" ]
             ~doc:"Cut the 0<->1 link mid-run and heal it.")
  in
  let apps_arg =
    let conv_app =
      Arg.conv
        ( (fun s ->
            match Ft_harness.Figure8.app_of_name s with
            | Some a -> Ok a
            | None -> Error (`Msg ("unknown app " ^ s))),
          fun fmt a ->
            Format.pp_print_string fmt (Ft_harness.Figure8.app_name a) )
    in
    Arg.(value & opt_all conv_app Ft_harness.Netstorm.default_apps
         & info [ "app" ] ~doc:"Application (repeatable).")
  in
  let scale_arg =
    Arg.(value & opt float 0.25
         & info [ "scale" ] ~doc:"Workload scale (0,1].")
  in
  Cmd.v
    (Cmd.info "netstorm"
       ~doc:"Sweep the protocols across a lossy, reordering, partitioning \
             network.")
    Term.(ret
            (const run_netstorm $ loss_arg $ dup_arg $ reorder_arg
            $ partition_arg $ apps_arg $ scale_arg $ seed_arg
            $ sweep_opts_term))

let serve_cmd =
  let procs_arg =
    Arg.(value & opt int 100
         & info [ "procs" ] ~doc:"Tenant instances in the fleet.")
  in
  let requests_arg =
    Arg.(value & opt int 100_000
         & info [ "requests" ] ~doc:"Total queries, fleet-wide.")
  in
  let proto_arg =
    Arg.(value & opt_all string []
         & info [ "protocol" ]
             ~doc:"Protocol (repeatable; $(b,all) for the Figure 8 seven; \
                   the message-logging pair $(b,causal-log) and \
                   $(b,optimistic) resolve by name; default CPVS).")
  in
  let crash_arg =
    Arg.(value & opt float 0.5
         & info [ "crash-rate" ] ~docv:"R"
             ~doc:"Expected kills per tenant per simulated second.")
  in
  let recovery_crash_arg =
    Arg.(value & opt float 0.
         & info [ "recovery-crash-rate" ] ~docv:"R"
             ~doc:"Expected nested failures per tenant per campaign: \
                   crashes injected into the recovery path itself \
                   (mid-restore, mid-cascade, mid-commit-round).")
  in
  let det_cap_arg =
    Arg.(value & opt int 256
         & info [ "det-cap" ] ~docv:"N"
             ~doc:"Hard cap on live determinants per tenant (0 = \
                   uncapped): past it the kernel forces a flush instead \
                   of growing the log.  Ignored under $(b,--smoke).")
  in
  let storm_arg =
    Arg.(value & opt (some string) None
         & info [ "storm" ] ~docv:"TIER"
             ~doc:"Netstorm weather on the shard-shared transport: \
                   $(b,calm), $(b,breeze), $(b,gale) or $(b,storm).")
  in
  let shard_arg =
    Arg.(value & opt int 64
         & info [ "shard-size" ] ~doc:"Tenants per scheduler/job.")
  in
  let interval_arg =
    Arg.(value & opt int 1_000_000
         & info [ "interval-ns" ]
             ~doc:"Open-loop arrival interval per tenant, ns.")
  in
  let poison_arg =
    Arg.(value & opt int 0
         & info [ "poison" ] ~docv:"N"
             ~doc:"Crash-looping tenants: plant a deterministic Bohrbug in \
                   the first $(docv) tenants (every generic replay \
                   re-executes it) and arm the per-tenant quarantine \
                   circuit breaker fleet-wide.")
  in
  let smoke_arg =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Small fixed fleet for CI: asserts non-zero goodput and \
                   clean oracles.")
  in
  let bench_out_arg =
    Arg.(value & opt (some string) None
         & info [ "bench-out" ] ~docv:"FILE"
             ~doc:"Merge the per-protocol serve metrics into this flat \
                   BENCH_RESULTS.json.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the postgres workload across a fleet of tenants under \
             continuous fault injection and report latency percentiles, \
             goodput and MTTR.")
    Term.(ret
            (const run_serve $ procs_arg $ requests_arg $ proto_arg
            $ crash_arg $ recovery_crash_arg $ det_cap_arg $ storm_arg
            $ shard_arg $ interval_arg $ poison_arg $ smoke_arg
            $ bench_out_arg $ seed_arg $ sweep_opts_term))

let rescue_cmd =
  let apps_arg =
    let conv_app =
      Arg.conv
        ( (fun s ->
            match Ft_harness.Rescue.app_of_string s with
            | Some a -> Ok a
            | None -> Error (`Msg ("unknown app " ^ s))),
          fun fmt a ->
            Format.pp_print_string fmt (Ft_harness.Rescue.app_name a) )
    in
    Arg.(value & opt_all conv_app
           [ Ft_harness.Rescue.Nvi; Ft_harness.Rescue.Postgres ]
         & info [ "app" ] ~doc:"Application: nvi or postgres (repeatable).")
  in
  let proto_arg =
    Arg.(value & opt_all string []
         & info [ "protocol" ]
             ~doc:"Protocol (repeatable; default CPVS and CBNDVS).")
  in
  let ladder_arg =
    Arg.(value & opt_all string []
         & info [ "ladder" ]
             ~doc:"Recovery ladder: $(b,generic), $(b,deep) or $(b,full) \
                   (repeatable; default all three).")
  in
  let crashes_arg =
    Arg.(value & opt int 40
         & info [ "crashes" ]
             ~doc:"Target crashed runs per (app, fault, protocol, ladder) \
                   cell.")
  in
  let smoke_arg =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Small fixed campaign for CI: nvi, generic vs full, \
                   asserts zero Consistency violations at every rung.")
  in
  let bench_out_arg =
    Arg.(value & opt (some string) None
         & info [ "bench-out" ] ~docv:"FILE"
             ~doc:"Merge the rescue metrics into this flat \
                   BENCH_RESULTS.json.")
  in
  let rescue_seed_arg =
    Arg.(value & opt int 7_000
         & info [ "seed" ] ~doc:"Base seed for the per-cell trial streams.")
  in
  Cmd.v
    (Cmd.info "rescue"
       ~doc:"Measure how much of the unrecoverable app-fault mass each \
             escalation rung (deep rollback, perturbed replay) rescues.")
    Term.(ret
            (const run_rescue $ apps_arg $ proto_arg $ ladder_arg
            $ crashes_arg $ smoke_arg $ bench_out_arg $ rescue_seed_arg
            $ sweep_opts_term))

let ablation_cmd =
  Cmd.v (Cmd.info "ablation" ~doc:"Run the DESIGN.md ablations (2.6).")
    Term.(ret (const run_ablation $ sweep_opts_term))

let mc_cmd =
  let procs_arg =
    Arg.(value & opt int 2
         & info [ "procs" ] ~doc:"Number of model processes.")
  in
  let depth_arg =
    Arg.(value & opt int 6
         & info [ "depth" ] ~doc:"Events per process.")
  in
  let proto_arg =
    Arg.(value & opt_all string []
         & info [ "protocol" ]
             ~doc:"Protocol to check (repeatable; default: all of Figure 8).")
  in
  let mutants_arg =
    Arg.(value & flag
         & info [ "mutants" ]
             ~doc:"Also run the mutant suite; a surviving mutant fails the \
                   run.")
  in
  let no_prune_arg =
    Arg.(value & flag
         & info [ "no-prune" ] ~doc:"Disable state-hash memoization.")
  in
  let xcheck_arg =
    Arg.(value & flag
         & info [ "engine-xcheck" ]
             ~doc:"Cross-check schedules and crash points on the real \
                   runtime engine.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Model-check every schedule and crash point of a small program.")
    Term.(ret
            (const run_mc $ procs_arg $ depth_arg $ proto_arg $ mutants_arg
            $ no_prune_arg $ xcheck_arg $ sweep_opts_term))

let run_cmd =
  let app_arg =
    Arg.(value & opt string "nvi" & info [ "app" ] ~doc:"Application.")
  in
  let proto_arg =
    Arg.(value & opt string "CPVS" & info [ "protocol" ] ~doc:"Protocol.")
  in
  let medium_arg =
    Arg.(value & opt string "memory"
         & info [ "medium" ] ~doc:"memory or disk.")
  in
  let kills_arg =
    Arg.(value & opt_all int []
         & info [ "kill-at" ] ~doc:"Stop failure at this millisecond.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one application under one protocol.")
    Term.(ret (const run_single $ app_arg $ proto_arg $ medium_arg $ seed_arg
               $ scale_arg $ kills_arg))

let disasm_cmd =
  let app_arg =
    Arg.(value & opt string "nvi" & info [ "app" ] ~doc:"Application.")
  in
  let pid_arg =
    Arg.(value & opt int 0 & info [ "pid" ] ~doc:"Process index.")
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a workload's compiled code.")
    Term.(ret (const run_disasm $ app_arg $ pid_arg))

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure.")
    Term.(ret
            (const run_all $ scale_arg $ crashes_arg $ seed_arg
            $ sweep_opts_term))

(* One exit-code contract for every subcommand: a usage problem (unknown
   flag, unknown subcommand, bad argument value — cmdliner prints the
   subcommand's usage to stderr) exits 2; a command that ran and found
   violations prints the reason to stderr via [fail_run] and exits 1;
   clean runs, --help and --version exit 0.  Each term evaluates to its
   exit code, so violations are not routed through cmdliner's error
   machinery (which cannot be told apart from a parse error). *)
let () =
  let info =
    Cmd.info "ft" ~version:"1.0"
      ~doc:"Failure transparency and the limits of generic recovery"
  in
  let group =
    Cmd.group info
      [ space_cmd; figure8_cmd; table1_cmd; table2_cmd; analysis_cmd;
        ablation_cmd; torture_cmd; netstorm_cmd; mc_cmd; serve_cmd;
        rescue_cmd; run_cmd; disasm_cmd; all_cmd ]
  in
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> 0
    | Error `Exn -> Cmd.Exit.internal_error
    | Error (`Parse | `Term) -> 2)
