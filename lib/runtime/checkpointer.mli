(** Discount Checking: transparent full-process checkpoints (paper §3),
    incremental in the pages dirtied since the last commit, stored
    through Vista transactions in Rio reliable memory — or written as a
    synchronous redo log to disk (DC-disk).

    The whole committed image — heap, stack, machine metadata and
    serialized kernel state — lives in the per-process Rio region, as
    does Vista's undo log, so {!restore} is a pure function of the
    persisted words.  A crash at any single word write during {!commit}
    leaves a region that recovers to exactly the previous checkpoint. *)

type medium =
  | Reliable_memory  (** Rio: memory-speed commits *)
  | Disk of Ft_stablemem.Disk.t  (** DC-disk: synchronous redo log *)

type cost_model = {
  base_ns : int;  (** fixed per checkpoint: register copy, log reset *)
  page_trap_ns : int;  (** COW page-protection trap, per dirty page *)
  word_copy_ns : int;
  kstate_words : int;  (** accounted size of saved kernel state *)
}

val default_cost : cost_model

type t

val create :
  ?cost:cost_model ->
  ?excluded:(int -> bool) ->
  ?page_size:int ->
  ?history:int ->
  medium:medium ->
  nprocs:int ->
  heap_words:int ->
  stack_words:int ->
  unit ->
  t
(** [page_size] (default 64) must match the machines being checkpointed;
    it sizes the persisted undo log for the worst-case transaction
    (every page dirty).  [history] (default 0) keeps that many committed
    generations per process for {!rollback}; 0 disables the archive and
    leaves the commit hot path allocation-free. *)

val checkpoints : t -> pid:int -> int
(** Checkpoints taken, read from the persisted commits counter. *)

val has_checkpoint : t -> pid:int -> bool

val vista : t -> pid:int -> Ft_stablemem.Vista.t
(** The per-process Vista segment — the fault-injection surface: its
    region's write hook sees every persisted word of a {!commit}. *)

(** [excluded] marks heap pages of recomputable state the application
    chooses not to checkpoint (§2.6: "reducing the comprehensiveness of
    the state saved"); their contents are lost at recovery and must be
    rebuilt by the application. *)

val commit :
  ?out_seq:int -> t -> pid:int -> machine:Ft_vm.Machine.t ->
  kstate:Ft_os.Kernel.kstate_snapshot -> int
(** Take a checkpoint; returns the simulated cost in nanoseconds.
    [out_seq] (default 0) is the count of visible outputs the process
    has released so far; it rides along in the rollback archive so the
    sequenced egress channel can rewind its replay cursor with the
    generation it reinstates. *)

val log_cost : t -> words:int -> int
(** Pessimistic logging of an ND event's result: the record must be
    stable before the event's effects propagate — a synchronous disk
    access on DC-disk, a memory write on Rio. *)

val restore :
  t -> pid:int -> machine:Ft_vm.Machine.t ->
  Ft_os.Kernel.kstate_snapshot * int
(** Roll the machine back to the last checkpoint, purely from region
    words (running Vista recovery first, in case the crash interrupted a
    commit); returns the kernel state to reinstall and the simulated
    recovery cost. *)

val history_depth : t -> pid:int -> int
(** Archived generations currently available to {!rollback} (0 unless
    [create] was given [~history]). *)

val rollback :
  t -> pid:int -> machine:Ft_vm.Machine.t -> back:int ->
  (Ft_os.Kernel.kstate_snapshot * int * int) option
(** Deep rollback (escalation rung L1): abandon the last [back >= 1]
    committed generations and reinstate the one [back] commits ago,
    re-committing it in full into the Vista region as one transaction —
    a crash at any word of it still recovers consistently.  Returns
    [None] when the archive holds fewer than [back + 1] generations
    (caller should fall back to a plain {!restore}); otherwise the
    kernel state to reinstall, the simulated cost (a full restore plus
    a worst-case commit) and the reinstated generation's released
    visible-output count. *)
