(** The execution engine: runs VM processes on the kernel model under a
    recovery protocol, with Discount Checking commits, rollback and
    replay.  Schedules the runnable process with the smallest local
    clock (a conservative parallel simulation), consults the protocol at
    every event, records the {!Ft_core.Trace}, charges simulated time,
    and recovers crashed processes from their last checkpoint.

    Since the multi-tenant refactor this is a thin facade over a
    1-tenant {!Scheduler}; the types are equalities so the two APIs
    interoperate. *)

type config = Scheduler.config = {
  protocol : Ft_core.Protocol.spec;
  medium : Checkpointer.medium;
  cost : Checkpointer.cost_model;
  batch : int;  (** max instructions per scheduling slice *)
  deadline_ns : int option;  (** stop the run at this simulated time *)
  max_instructions : int;  (** safety net against runaway executions *)
  auto_recover : bool;
  suppress_faults_on_recovery : bool;
      (** the paper's end-to-end check (§4.1): restore pristine code and
          silence the injector when recovering *)
  max_recovery_attempts : int;
  reboot_delay_ns : int;  (** after a kernel panic *)
  recovery_retry_delay_ns : int;
      (** pacing between attempts when recovery itself crashes: a
          process restart, not a machine reboot *)
  kills : (int * int) list;  (** (time_ns, pid) stop failures to inject *)
  kill_at_decision : (int * int) list;
      (** (decision_index, pid) stop failures, applied just before the
          scheduler's Nth pick — lets the model-checker cross-check
          enumerate crash points deterministically *)
  pick_override : (int list -> int option) option;
      (** schedule replay hook: given the runnable pids (ascending),
          choose who runs next; [None] (the value or the result) falls
          back to the smallest-local-clock default *)
  twopc_timeout_ns : int;
      (** 2PC prepare/commit timeout: with an unreliable transport
          attached, an unreachable participant makes the coordinator
          presume abort and retry the round after the timeout (doubling
          per retry) *)
  twopc_max_retries : int;
      (** aborted-round retries before the coordinator gives up and the
          run degrades to [Net_unreachable] *)
  heap_words : int;
  stack_words : int;
  page_size : int;
  expand_resources_on_recovery : bool;
      (** §2.6: grow resource limits at reboot, turning fixed ND
          exhaustion results transient *)
  excluded_pages : int -> bool;
      (** §2.6: recomputable heap pages left out of checkpoints; lost at
          recovery *)
  policy : Ft_recovery.Policy.t option;
      (** escalation ladder driving recovery; [None] is the legacy
          generic-replay path *)
  quarantine : Ft_recovery.Quarantine.params option;
      (** crash-loop circuit breaker; [None] = off *)
  recovery_kills : (Scheduler.recovery_stage * int) list;
      (** injected nested failures: [(stage, n)] crashes the recovering
          process again at the [n]th entry into that recovery stage *)
  det_cap : int;
      (** hard cap on the live determinant count; past it the store
          degrades to a forced flush-to-checkpoint.  [0] = uncapped *)
}

val default_config : config

type outcome = Scheduler.outcome =
  | Completed  (** every process halted *)
  | Deadline
  | Recovery_failed  (** a process kept crashing past its last commit *)
  | Deadlocked
  | Instruction_budget
  | Net_unreachable
      (** the attached transport's retry budget ran out (a link gave up,
          or a 2PC round exhausted its presumed-abort retries): the run
          degrades instead of wedging in [Block_recv] *)

type result = Scheduler.result = {
  outcome : outcome;
  trace : Ft_core.Trace.t;
  visible : int list;  (** values output to the user, in order *)
  sim_time_ns : int;
  wall_instructions : int;
  commit_counts : int array;  (** protocol-triggered commits, per process *)
  nd_counts : int array;
  logged_counts : int array;
  visible_counts : int array;
  recoveries : int;
  crashes : int;
  recovery_crashes : int;
      (** crashes injected during restore itself; each costs a reboot
          delay and a retry from the same checkpoint *)
  activation : (int * int) option;  (** pid, trace index at activation *)
  first_crash : (int * int) option;
  commit_after_activation : bool;
      (** a commit landed between fault activation and the first crash:
          the Table-1 Lose-work violation criterion *)
  memory_pokes : int;  (** kernel-fault memory corruptions applied *)
  aborted_rounds : int;
      (** 2PC (and dependent-commit) rounds presumed aborted on a
          prepare/commit timeout *)
  orphan_rollbacks : int;
      (** message-logging protocols: survivors rolled back at recovery
          because their state depended on lost non-determinism *)
  visible_times : (int * int * int) list;
      (** (pid, value, local time ns) of each visible output, in order *)
  crash_times : (int * int) list;
      (** (pid, local time ns) of each crash, in order *)
  deep_rollbacks : int;  (** L1 recoveries *)
  perturbed_replays : int;  (** L2 recoveries *)
  ladder_peaks : int array;  (** per process: highest rung used *)
  fault_classes : Ft_recovery.Classifier.verdict array;
      (** per process, from observed replay behavior *)
  quarantine_trips : int;  (** cumulative breaker trips *)
  replay_mismatches : int;
      (** replayed visible outputs that disagreed with the value already
          released at that sequence position; must be 0 at every rung *)
  nested_crashes : int;
      (** injected crashes that landed during a recovery stage *)
  cascade_resumes : int;
      (** orphan cascades resumed from persisted progress after the
          victim re-crashed mid-cascade *)
  det_high_water : int;  (** peak live determinant count *)
  det_forced_flushes : int;
      (** determinant-cap hits that forced a flush-to-checkpoint *)
}

type t

val create :
  ?cfg:config -> kernel:Ft_os.Kernel.t -> programs:Ft_vm.Instr.t array array ->
  unit -> t
(** Builds the engine and takes checkpoint zero of every process ("the
    initial state of any application is always committed", §4). *)

val machine : t -> int -> Ft_vm.Machine.t
val kernel : t -> Ft_os.Kernel.t

val checkpointer : t -> Checkpointer.t
(** The engine's checkpointer — fault injectors reach the per-process
    Rio regions through it ({!Checkpointer.vista}). *)

val set_on_recover : t -> (int -> unit) -> unit
(** Called on each recovery when fault suppression is on; injectors use
    it to stand down. *)

val set_on_replay : t -> (int -> salt:int -> unit) -> unit
(** Called with [(pid, ~salt)] after every successful restore;
    recurring-fault injectors re-arm here, keyed by the environment
    salt. *)

val record_activation : t -> int -> unit
(** Fault injectors mark the moment the injected bug first changes the
    execution. *)

val activation_recorded : t -> bool

val run : t -> result

val execute :
  ?cfg:config -> kernel:Ft_os.Kernel.t -> programs:Ft_vm.Instr.t array array ->
  unit -> t * result
(** [create] then [run]. *)
