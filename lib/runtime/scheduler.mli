(** The multi-tenant scheduler core: the engine's event loop factored so
    one scheduler steps many independent application instances
    ("tenants") against a shared virtual clock.

    A tenant is everything one experiment used to own — VM processes,
    kernel, checkpointer, protocol instance, trace, fault bookkeeping,
    recovery budgets.  The scheduler repeatedly picks the live tenant
    furthest behind on the virtual clock (ties to the lowest tenant id)
    and runs one iteration of the legacy engine loop for it, so a
    1-tenant scheduler is step-identical to the old {!Engine} — which is
    now a facade over this module.

    Tenants may share one {!Ft_net.Transport}: give each kernel a
    disjoint global pid range with {!Ft_os.Kernel.set_net}[ ~base] and
    route the transport's [deliver] callback back through
    {!Ft_os.Kernel.deliver_net}.  Links never cross tenants, so the
    per-tenant network verdicts (pending frames, earliest event, dead
    links) come from the transport's range queries and match what a
    private transport would say. *)

type recovery_stage =
  | Mid_restore  (** the victim's own restore/replay of its checkpoint *)
  | Mid_cascade  (** the orphan-rollback cascade the crash triggered *)
  | Mid_round  (** coordinating a dependent-commit round *)
      (** The stateful stages of the recovery path itself, as injection
          sites for nested failures: a process may crash again while any
          of them is mid-flight.  Recovery is idempotent and re-enterable
          at every stage — restores retry from the same checkpoint,
          incarnation numbers and rollback progress persist so a
          re-crashed victim resumes (not restarts) the cascade, and a
          coordinator that dies mid-round is superseded without
          stranding participants. *)

type config = {
  protocol : Ft_core.Protocol.spec;
  medium : Checkpointer.medium;
  cost : Checkpointer.cost_model;
  batch : int;  (** max instructions per scheduling slice *)
  deadline_ns : int option;  (** stop the run at this simulated time *)
  max_instructions : int;  (** safety net against runaway executions *)
  auto_recover : bool;
  suppress_faults_on_recovery : bool;
      (** the paper's end-to-end check (§4.1): restore pristine code and
          silence the injector when recovering *)
  max_recovery_attempts : int;
  reboot_delay_ns : int;  (** after a kernel panic *)
  recovery_retry_delay_ns : int;
      (** pacing between attempts when recovery itself crashes: a
          process restart, not a machine reboot *)
  kills : (int * int) list;  (** (time_ns, pid) stop failures to inject *)
  kill_at_decision : (int * int) list;
      (** (decision_index, pid) stop failures, applied just before the
          scheduler's Nth pick — lets the model-checker cross-check
          enumerate crash points deterministically *)
  pick_override : (int list -> int option) option;
      (** schedule replay hook: given the runnable pids (ascending),
          choose who runs next; [None] (the value or the result) falls
          back to the smallest-local-clock default *)
  twopc_timeout_ns : int;
      (** 2PC prepare/commit timeout: with an unreliable transport
          attached, an unreachable participant makes the coordinator
          presume abort and retry the round after the timeout (doubling
          per retry) *)
  twopc_max_retries : int;
      (** aborted-round retries before the coordinator gives up and the
          run degrades to [Net_unreachable] *)
  heap_words : int;
  stack_words : int;
  page_size : int;
  expand_resources_on_recovery : bool;
      (** §2.6: grow resource limits at reboot, turning fixed ND
          exhaustion results transient *)
  excluded_pages : int -> bool;
      (** §2.6: recomputable heap pages left out of checkpoints; lost at
          recovery *)
  policy : Ft_recovery.Policy.t option;
      (** escalation ladder driving recovery (L0 generic replay, L1 deep
          rollback, L2 perturbed replay); [None] is the legacy
          generic-replay path, byte-identical to the old engine *)
  quarantine : Ft_recovery.Quarantine.params option;
      (** per-tenant crash-loop circuit breaker: [threshold] crashes
          within [window_ns] park the whole tenant until a half-open
          probe (exponential backoff); latching open gives it up as
          [Recovery_failed].  [None] = off *)
  recovery_kills : (recovery_stage * int) list;
      (** injected nested failures: [(stage, n)] crashes the recovering
          (or coordinating) process again at the tenant's [n]th entry
          into that recovery stage.  Crashes during recovery count
          toward the quarantine breaker's sliding window like any
          other crash *)
  det_cap : int;
      (** hard cap on the live determinant count (logging styles): past
          it the store degrades gracefully to a forced
          flush-to-checkpoint of the appending process instead of
          growing unbounded.  [0] = uncapped *)
}

val default_config : config

type outcome =
  | Completed  (** every process halted *)
  | Deadline
  | Recovery_failed  (** a process kept crashing past its last commit *)
  | Deadlocked
  | Instruction_budget
  | Net_unreachable
      (** the attached transport's retry budget ran out (a link gave up,
          or a 2PC round exhausted its presumed-abort retries): the run
          degrades instead of wedging in [Block_recv] *)

type result = {
  outcome : outcome;
  trace : Ft_core.Trace.t;
  visible : int list;  (** values output to the user, in order *)
  sim_time_ns : int;
  wall_instructions : int;
  commit_counts : int array;  (** protocol-triggered commits, per process *)
  nd_counts : int array;
  logged_counts : int array;
  visible_counts : int array;
  recoveries : int;
  crashes : int;
  recovery_crashes : int;
      (** crashes injected during restore itself; each costs a reboot
          delay and a retry from the same checkpoint *)
  activation : (int * int) option;  (** pid, trace index at activation *)
  first_crash : (int * int) option;
  commit_after_activation : bool;
      (** a commit landed between fault activation and the first crash:
          the Table-1 Lose-work violation criterion *)
  memory_pokes : int;  (** kernel-fault memory corruptions applied *)
  aborted_rounds : int;
      (** 2PC (and dependent-commit) rounds presumed aborted on a
          prepare/commit timeout *)
  orphan_rollbacks : int;
      (** message-logging protocols: survivors rolled back at recovery
          because their dependency vector dominated a crashed process's
          restored one — their state depended on lost non-determinism *)
  visible_times : (int * int * int) list;
      (** (pid, value, local time ns) of each visible output, in order —
          the serve harness turns these into per-request latencies *)
  crash_times : (int * int) list;
      (** (pid, local time ns) of each crash, in order — MTTR
          measurement *)
  deep_rollbacks : int;
      (** L1 recoveries that discarded committed generations (a
          controlled Save-work sacrifice, never a Consistency one) *)
  perturbed_replays : int;  (** L2 recoveries *)
  ladder_peaks : int array;
      (** per process: highest escalation rung used (0 = generic replay
          only, 1 = deep rollback, 2 = perturbed replay) *)
  fault_classes : Ft_recovery.Classifier.verdict array;
      (** per process, from observed replay behavior — [Benign] when it
          never crashed *)
  quarantine_trips : int;
      (** cumulative circuit-breaker trips across the run (crash-loop
          events; 0 without a [quarantine] config) *)
  replay_mismatches : int;
      (** sequenced-egress oracle: replayed visible outputs that
          disagreed with the value already released at that position —
          any nonzero count means recovery broke exactly-once output *)
  nested_crashes : int;
      (** injected crashes that landed during a recovery stage
          ([recovery_kills] entries that fired) *)
  cascade_resumes : int;
      (** orphan cascades resumed from persisted rollback progress after
          the victim re-crashed mid-cascade (resumed, never restarted) *)
  det_high_water : int;
      (** peak live determinant count across the run — the bounded-log
          claim's witness *)
  det_forced_flushes : int;
      (** determinant-cap hits that forced a flush-to-checkpoint *)
}

type t

val create :
  tenants:(config * Ft_os.Kernel.t * Ft_vm.Instr.t array array) array ->
  unit ->
  t
(** Builds every tenant and takes checkpoint zero of each of its
    processes ("the initial state of any application is always
    committed", §4).  Kernels must be sized for their program arrays;
    sharing a transport between kernels is the caller's wiring
    ({!Ft_os.Kernel.set_net}). *)

val tenant_count : t -> int

val steps : t -> int
(** Scheduling steps taken so far, across all tenants — one step is one
    iteration of the legacy engine loop (the bench hot-loop metric). *)

val machine : t -> tid:int -> pid:int -> Ft_vm.Machine.t
val kernel : t -> tid:int -> Ft_os.Kernel.t

val checkpointer : t -> tid:int -> Checkpointer.t
(** A tenant's checkpointer — fault injectors reach the per-process Rio
    regions through it ({!Checkpointer.vista}). *)

val set_on_recover : t -> tid:int -> (int -> unit) -> unit
(** Called on each of the tenant's recoveries when fault suppression is
    on; injectors use it to stand down. *)

val set_on_replay : t -> tid:int -> (int -> salt:int -> unit) -> unit
(** Called with [(pid, ~salt)] after every successful restore, whatever
    the rung; [salt] is the environment perturbation in effect (0 =
    unperturbed).  Recurring-fault injectors re-arm here, keyed by the
    salt, so a Heisenbug's manifestation moves when the environment
    does. *)

val record_activation : t -> tid:int -> int -> unit
(** Fault injectors mark the moment the injected bug first changes the
    execution. *)

val activation_recorded : t -> tid:int -> bool

val run : t -> result array
(** Drive every tenant to its verdict; [(run t).(tid)] is tenant
    [tid]'s result. *)
