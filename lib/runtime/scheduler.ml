(** The multi-tenant scheduler core: the event loop that used to live in
    {!Engine}, factored so one scheduler can step many independent
    application instances ("tenants") against a shared virtual clock.

    A tenant is everything one experiment used to own: its VM processes,
    kernel, checkpointer, protocol instance, trace, fault bookkeeping
    and recovery budgets.  The scheduler repeatedly picks the tenant
    whose next runnable process has the smallest local clock (ties break
    to the lowest tenant id) and runs exactly one iteration of the
    legacy engine loop for it — so a 1-tenant scheduler performs the
    byte-identical sequence of machine, kernel, checkpointer and RNG
    operations the old engine did, and {!Engine} is now a thin facade
    over it.

    Tenants may share one {!Ft_net.Transport}: each kernel is assigned a
    disjoint global pid range on it ({!Ft_os.Kernel.set_net} with
    [~base]), links never cross tenants, and the per-tenant network
    verdicts (pending frames, earliest event, exhausted retry budgets)
    are answered by the transport's range queries, so a tenant sharing a
    transport reaches the same conclusions it would on a private one. *)

type proc = {
  pid : int;
  machine : Ft_vm.Machine.t;
  pristine_code : Ft_vm.Instr.t array;
  mutable time : int;            (* local clock, ns *)
  mutable blocked : bool;        (* waiting for a message *)
  mutable halted : bool;
  mutable failed : bool;         (* unrecoverable *)
  mutable recoveries : int;      (* consecutive attempts from one point *)
  mutable recovered_at_icount : int;
      (* icount at the last restore; a commit strictly past it proves
         progress and resets the attempt counter *)
  mutable restore_base_icount : int;
      (* the restored snapshot's own icount, before any re-execution.
         Crash positions are classified relative to this base: replay
         re-executes the rewound commit Sys, shifting absolute icounts
         by one per restore under commit-before protocols, so only the
         offset from the restore base is replay-invariant *)
  mutable ladder_peak : int;     (* highest escalation rung used, 0..2 *)
  mutable last_rung : int;       (* rung of the most recent recovery *)
  mutable salt : int;            (* perturbation salt in effect, 0 = none *)
  mutable crash_bar : int;
      (* policy runs: highest icount at which this process has crashed.
         A recurring fault keeps biting at (or before) the bar however
         many commits land under it, so only a commit strictly past the
         bar counts as progress and resets the ladder — otherwise a
         fault whose recurrence outpaces nothing but the attempt counter
         would hold the ladder at rung L0 forever. *)
  mutable out_seq : int;
      (* policy runs: this lineage's visible-output cursor.  Rewinds
         with every restore/rollback; outputs below [emitted_n] are
         replays the sequenced egress channel absorbs. *)
  mutable committed_out_seq : int;  (* out_seq as of the newest commit *)
  mutable emitted_rev : int list;   (* released values, newest first *)
  mutable emitted_n : int;          (* = length emitted_rev *)
  classifier : Ft_recovery.Classifier.t;
  mutable commit_count : int;    (* protocol-triggered commits *)
  mutable nd_count : int;
  mutable logged_count : int;
  mutable visible_count : int;
  mutable first_visible_at : int;
  mutable last_visible_at : int;
}

(* The stateful stages of the recovery path itself, as injection sites
   for nested failures: a process may crash again while its own restore
   replays ([Mid_restore]), while the orphan-rollback cascade it
   triggered is mid-flight ([Mid_cascade]), or while coordinating a
   dependent-commit round ([Mid_round]). *)
type recovery_stage = Mid_restore | Mid_cascade | Mid_round

type config = {
  protocol : Ft_core.Protocol.spec;
  medium : Checkpointer.medium;
  cost : Checkpointer.cost_model;
  batch : int;                  (* max instructions per scheduling slice *)
  deadline_ns : int option;     (* stop the run at this simulated time *)
  max_instructions : int;       (* safety net against runaways *)
  auto_recover : bool;
  suppress_faults_on_recovery : bool;
  max_recovery_attempts : int;
  reboot_delay_ns : int;        (* after a kernel panic *)
  recovery_retry_delay_ns : int;
      (* pacing between attempts when recovery itself crashes: a
         process restart, not a machine reboot *)
  kills : (int * int) list;     (* (time_ns, pid) stop failures to inject *)
  kill_at_decision : (int * int) list;
      (* (decision_index, pid) stop failures: applied just before the
         scheduler's Nth pick, so crash points can be enumerated
         deterministically (model-checker cross-check) *)
  pick_override : (int list -> int option) option;
      (* given the runnable pids (ascending), choose who runs next;
         [None] falls back to the smallest-local-clock default *)
  twopc_timeout_ns : int;
      (* 2PC prepare/commit timeout: an unreachable participant makes
         the coordinator presume abort and retry the round later *)
  twopc_max_retries : int;
      (* aborted-round retries (doubling backoff) before the coordinator
         gives up and the run degrades to Net_unreachable *)
  heap_words : int;
  stack_words : int;
  page_size : int;
  expand_resources_on_recovery : bool;
      (* §2.6: grow resource limits at reboot, turning fixed ND
         exhaustion results transient *)
  excluded_pages : int -> bool;
      (* §2.6: recomputable heap pages left out of checkpoints *)
  policy : Ft_recovery.Policy.t option;
      (* escalation ladder driving recovery; [None] is the legacy
         generic-replay path, byte-identical to the old engine *)
  quarantine : Ft_recovery.Quarantine.params option;
      (* per-tenant crash-loop circuit breaker; [None] = off *)
  recovery_kills : (recovery_stage * int) list;
      (* injected nested failures: (stage, n) crashes the recovering
         (or coordinating) process again at the tenant's nth entry into
         that recovery stage *)
  det_cap : int;
      (* hard cap on the live determinant count (logging styles): past
         it the store degrades gracefully to a forced flush-to-checkpoint
         of the appending process instead of growing unbounded.
         0 = uncapped *)
}

let default_config =
  {
    protocol = Ft_core.Protocols.cpvs;
    medium = Checkpointer.Reliable_memory;
    cost = Checkpointer.default_cost;
    batch = 256;
    deadline_ns = None;
    max_instructions = 2_000_000_000;
    auto_recover = true;
    suppress_faults_on_recovery = false;
    max_recovery_attempts = 3;
    reboot_delay_ns = 30_000_000_000;
    recovery_retry_delay_ns = 10_000_000;
    kills = [];
    kill_at_decision = [];
    pick_override = None;
    twopc_timeout_ns = 2_000_000;
    twopc_max_retries = 8;
    heap_words = 65_536;
    stack_words = 4_096;
    page_size = 64;
    expand_resources_on_recovery = false;
    excluded_pages = (fun _ -> false);
    policy = None;
    quarantine = None;
    recovery_kills = [];
    det_cap = 0;
  }

type outcome =
  | Completed            (* every process halted *)
  | Deadline             (* simulated deadline reached *)
  | Recovery_failed      (* a process kept crashing past its last commit *)
  | Deadlocked           (* all processes blocked *)
  | Instruction_budget   (* safety net tripped *)
  | Net_unreachable      (* the transport's retry budget ran out: a link
                            (or a 2PC round) gave up instead of wedging *)

type result = {
  outcome : outcome;
  trace : Ft_core.Trace.t;
  visible : int list;                  (* values output, in order *)
  sim_time_ns : int;
  wall_instructions : int;
  commit_counts : int array;
  nd_counts : int array;
  logged_counts : int array;
  visible_counts : int array;
  recoveries : int;
  crashes : int;
  recovery_crashes : int;              (* crashes during restore itself *)
  activation : (int * int) option;     (* pid, trace index at activation *)
  first_crash : (int * int) option;    (* pid, trace index of crash event *)
  commit_after_activation : bool;
  memory_pokes : int;                  (* kernel-fault memory corruptions *)
  aborted_rounds : int;                (* 2PC rounds presumed aborted on a
                                          prepare/commit timeout *)
  orphan_rollbacks : int;              (* logging styles: survivors rolled
                                          back because their state depended
                                          on a victim's lost ND *)
  visible_times : (int * int * int) list;
      (* (pid, value, local time) of each visible output, in order —
         the serve harness turns these into per-request latencies *)
  crash_times : (int * int) list;      (* (pid, local time) of each crash,
                                          in order — MTTR measurement *)
  deep_rollbacks : int;                (* L1 recoveries that discarded
                                          committed generations *)
  perturbed_replays : int;             (* L2 recoveries *)
  ladder_peaks : int array;            (* per process: highest rung used *)
  fault_classes : Ft_recovery.Classifier.verdict array;
      (* per process, from observed replay behavior *)
  quarantine_trips : int;              (* cumulative breaker trips *)
  replay_mismatches : int;             (* replayed outputs that disagreed
                                          with already-released values:
                                          must be 0 at every rung *)
  nested_crashes : int;                (* injected crashes that landed
                                          during a recovery stage *)
  cascade_resumes : int;               (* orphan cascades resumed from
                                          persisted progress after the
                                          victim re-crashed mid-cascade *)
  det_high_water : int;                (* peak live determinant count *)
  det_forced_flushes : int;            (* determinant-cap hits that forced
                                          a flush-to-checkpoint *)
}

(* One application instance: the state the legacy engine called [t]. *)
type tenant = {
  tid : int;
  cfg : config;
  kernel : Ft_os.Kernel.t;
  procs : proc array;
  ckpt : Checkpointer.t;
  protocol : Ft_core.Protocol.t;
  trace : Ft_core.Trace.t;
  mutable visible_rev : (int * int * int) list;
  mutable crash_rev : (int * int) list;
  mutable instructions : int;
  mutable total_recoveries : int;
  mutable total_crashes : int;
  mutable recovery_crashes : int;
  mutable kills_pending : (int * int) list;
  mutable decision_kills : (int * int) list;
  mutable decisions : int;  (* scheduling decisions taken so far *)
  mutable activation : (int * int) option;
  mutable first_crash : (int * int) option;
  mutable commit_after_activation : bool;
  mutable on_recover : (int -> unit) option;
  mutable on_replay : (int -> salt:int -> unit) option;
      (* called after every restore with the environment salt in
         effect; recurring-fault injectors re-arm here *)
  mutable deep_rollbacks : int;
  mutable perturbed_replays : int;
  mutable replay_mismatches : int;
      (* replayed visible outputs that disagreed with the value already
         released at that sequence position: the machinery-consistency
         oracle for the escalation ladder, expected to stay 0 *)
  breaker : Ft_recovery.Quarantine.t option;
  mutable quarantine_trips : int;
  mutable outcome : outcome option;
  mutable memory_pokes : int;
  mutable ack_tag : int;  (* synthetic (negative) tags for 2PC acks *)
  mutable round : int;    (* coordinated-commit round counter *)
  mutable aborted_rounds : int;
  committed_dvs : Ft_core.Vclock.t array;
      (* logging styles: per process, the dependency vector as of its
         newest commit — what {!finish_restore} rolls the live vector
         back to, and the baseline orphan detection compares against *)
  stable_marks : int array array;
      (* stable_marks.(p).(q): how much of q's own non-determinism p has
         CONFIRMED durable through an acknowledged dependent-commit
         round.  Local knowledge only — never an omniscient read of q's
         commit state: an already-committed dependency is still
         contacted once, and that ack is the happens-before edge that
         puts its covering commit in the output's causal past. *)
  committed_stables : int array array;
      (* stable_marks as of each process's newest commit; restored with
         the process (the confirming ack may be un-received) *)
  mutable orphan_rollbacks : int;
      (* logging styles: survivors rolled back because their state
         causally depended on a crashed process's lost non-determinism *)
  mutable recovery_kills_pending : (recovery_stage * int) list;
  stage_counts : int array;       (* entries into each recovery stage *)
  mutable nested_crashes : int;   (* injected recovery-stage crashes *)
  mutable cascade_resumes : int;
  mutable cascade_progress : (int * int list) option;
      (* persisted rollback progress: (original victim, worklist of pids
         whose orphan fallout is not yet propagated).  Survives the
         victim's re-crash so a re-entered cascade RESUMES — it never
         restarts from scratch. *)
  mutable result : result option;  (* set once the tenant finishes *)
}

type t = {
  tenants : tenant array;
  mutable live : int;       (* tenants without a result yet *)
  mutable steps : int;      (* scheduling steps taken, all tenants *)
}

let make_tenant tid (cfg, kernel, programs) =
  let nprocs = Array.length programs in
  if nprocs <> Ft_os.Kernel.nprocs kernel then
    invalid_arg "Scheduler.create: kernel sized for a different nprocs";
  let procs =
    Array.mapi
      (fun pid code ->
        {
          pid;
          machine =
            Ft_vm.Machine.create ~stack_size:cfg.stack_words
              ~heap_size:cfg.heap_words ~page_size:cfg.page_size
              (Array.copy code);
          pristine_code = Array.copy code;
          time = 0;
          blocked = false;
          halted = false;
          failed = false;
          recoveries = 0;
          recovered_at_icount = 0;
          restore_base_icount = 0;
          ladder_peak = 0;
          last_rung = 0;
          salt = 0;
          crash_bar = -1;
          out_seq = 0;
          committed_out_seq = 0;
          emitted_rev = [];
          emitted_n = 0;
          classifier = Ft_recovery.Classifier.create ();
          commit_count = 0;
          nd_count = 0;
          logged_count = 0;
          visible_count = 0;
          first_visible_at = -1;
          last_visible_at = -1;
        })
      programs
  in
  (* Deep rollback (rung L1) needs archived generations: enough for
     every L1 attempt to go [l1_depth] further back, plus the current
     one.  Zero (the default) keeps the commit hot path archive-free. *)
  let history =
    match cfg.policy with
    | Some pol when pol.Ft_recovery.Policy.l1_attempts > 0 ->
        (pol.Ft_recovery.Policy.l1_depth * pol.Ft_recovery.Policy.l1_attempts)
        + 1
    | _ -> 0
  in
  let ckpt =
    Checkpointer.create ~cost:cfg.cost ~excluded:cfg.excluded_pages
      ~page_size:cfg.page_size ~history ~medium:cfg.medium ~nprocs
      ~heap_words:cfg.heap_words ~stack_words:cfg.stack_words ()
  in
  let tn =
    {
      tid;
      cfg;
      kernel;
      procs;
      ckpt;
      protocol = Ft_core.Protocol.instantiate cfg.protocol ~nprocs;
      trace = Ft_core.Trace.create ~nprocs;
      visible_rev = [];
      crash_rev = [];
      instructions = 0;
      total_recoveries = 0;
      total_crashes = 0;
      recovery_crashes = 0;
      kills_pending = List.sort compare cfg.kills;
      decision_kills = List.sort compare cfg.kill_at_decision;
      decisions = 0;
      activation = None;
      first_crash = None;
      commit_after_activation = false;
      on_recover = None;
      on_replay = None;
      deep_rollbacks = 0;
      perturbed_replays = 0;
      replay_mismatches = 0;
      breaker = Option.map Ft_recovery.Quarantine.create cfg.quarantine;
      quarantine_trips = 0;
      outcome = None;
      memory_pokes = 0;
      ack_tag = -1;
      round = 0;
      aborted_rounds = 0;
      committed_dvs =
        Array.init nprocs (fun _ -> Ft_core.Vclock.create nprocs);
      stable_marks = Array.make_matrix nprocs nprocs 0;
      committed_stables = Array.make_matrix nprocs nprocs 0;
      orphan_rollbacks = 0;
      recovery_kills_pending = cfg.recovery_kills;
      stage_counts = Array.make 3 0;
      nested_crashes = 0;
      cascade_resumes = 0;
      cascade_progress = None;
      result = None;
    }
  in
  (* Message-logging protocols track causality: turn on dependency-vector
     piggybacking (the zero vectors above match checkpoint zero). *)
  if cfg.protocol.Ft_core.Protocol.style <> Ft_core.Protocol.Coordinated then
    Ft_os.Kernel.enable_dependency_tracking kernel;
  Ft_os.Kernel.set_det_cap kernel cfg.det_cap;
  (* "The initial state of any application is always committed" (§4):
     take checkpoint zero for every process, outside protocol counts. *)
  Array.iter
    (fun p ->
      ignore
        (Checkpointer.commit ckpt ~pid:p.pid ~machine:p.machine
           ~kstate:(Ft_os.Kernel.snapshot_kstate kernel p.pid)))
    procs;
  tn

let create ~tenants () =
  if Array.length tenants = 0 then invalid_arg "Scheduler.create: no tenants";
  let tenants = Array.mapi make_tenant tenants in
  { tenants; live = Array.length tenants; steps = 0 }

let tenant_count t = Array.length t.tenants
let steps t = t.steps
let machine t ~tid ~pid = t.tenants.(tid).procs.(pid).machine
let kernel t ~tid = t.tenants.(tid).kernel
let checkpointer t ~tid = t.tenants.(tid).ckpt
let set_on_recover t ~tid f = t.tenants.(tid).on_recover <- Some f
let set_on_replay t ~tid f = t.tenants.(tid).on_replay <- Some f

(* Fault injectors mark the moment the injected bug first executes. *)
let record_activation t ~tid pid =
  let tn = t.tenants.(tid) in
  if tn.activation = None then
    tn.activation <- Some (pid, Ft_core.Trace.next_index tn.trace pid)

let activation_recorded t ~tid = t.tenants.(tid).activation <> None

let instr_ns tn = (Ft_os.Kernel.costs tn.kernel).Ft_os.Kernel.instr_ns

(* This tenant's slice of the (possibly shared) transport pid space. *)
let net_range tn =
  let lo = Ft_os.Kernel.net_base tn.kernel in
  (lo, lo + Ft_os.Kernel.nprocs tn.kernel)

(* --- crash and recovery -------------------------------------------------- *)

let record_crash tn (p : proc) =
  tn.total_crashes <- tn.total_crashes + 1;
  tn.crash_rev <- (p.pid, p.time) :: tn.crash_rev;
  let e = Ft_core.Trace.record tn.trace ~pid:p.pid Ft_core.Event.Crash in
  if tn.first_crash = None then
    tn.first_crash <- Some (p.pid, e.Ft_core.Event.index)

let give_up tn (p : proc) =
  p.failed <- true;
  if tn.outcome = None then tn.outcome <- Some Recovery_failed

let stage_index = function Mid_restore -> 0 | Mid_cascade -> 1 | Mid_round -> 2

(* Count one entry into [stage] and report whether an injected nested
   failure is due at this occurrence. *)
let recovery_crash_due tn stage =
  let i = stage_index stage in
  tn.stage_counts.(i) <- tn.stage_counts.(i) + 1;
  let n = tn.stage_counts.(i) in
  match
    List.partition
      (fun (s, occ) -> s = stage && occ = n)
      tn.recovery_kills_pending
  with
  | [], _ -> false
  | _, keep ->
      tn.recovery_kills_pending <- keep;
      true

(* A crash that lands during recovery itself is still a crash: count it,
   feed the crash-loop breaker's sliding window (recovery-time crashes
   trip the quarantine just like primary-execution ones), and pace the
   retry like a reboot.  [`Abandon] means the breaker latched. *)
let note_recovery_crash tn (p : proc) ~injected ~attempt =
  tn.recovery_crashes <- tn.recovery_crashes + 1;
  if injected then tn.nested_crashes <- tn.nested_crashes + 1;
  p.time <- p.time + (attempt * tn.cfg.recovery_retry_delay_ns);
  match tn.breaker with
  | None -> `Retry
  | Some b -> (
      ignore (Ft_recovery.Quarantine.probe b ~now_ns:p.time : bool);
      match Ft_recovery.Quarantine.note_crash b ~now_ns:p.time with
      | `Latched ->
          tn.quarantine_trips <- tn.quarantine_trips + 1;
          `Abandon
      | `Park_until until_ns ->
          tn.quarantine_trips <- tn.quarantine_trips + 1;
          p.time <- max p.time until_ns;
          `Retry
      | `Ok -> `Retry)

(* Prepare the process for a replay attempt: the paper's fault
   suppression and §2.6 resource expansion, shared by every rung. *)
let pre_replay tn (p : proc) =
  if tn.cfg.suppress_faults_on_recovery then begin
    (* The paper's end-to-end check suppresses the fault activation
       during recovery (§4.1): restore pristine code and tell the
       injector to stand down. *)
    Array.blit p.pristine_code 0 p.machine.Ft_vm.Machine.code 0
      (Array.length p.pristine_code);
    p.machine.Ft_vm.Machine.on_execute <- None;
    match tn.on_recover with Some f -> f p.pid | None -> ()
  end;
  if tn.cfg.expand_resources_on_recovery then
    Ft_os.Kernel.expand_resources tn.kernel

(* The restore itself runs on the same fallible machine and can be
   crashed by an injector mid-replay.  Vista recovery is idempotent,
   so retry from the same checkpoint — with a growing reboot delay —
   up to the attempt cap, then degrade to [Recovery_failed] instead
   of looping forever. *)
let restore_with_retry tn (p : proc) =
  let rec go attempt =
    let crashed ~injected =
      match note_recovery_crash tn p ~injected ~attempt with
      | `Abandon -> None
      | `Retry ->
          if attempt >= tn.cfg.max_recovery_attempts then None
          else go (attempt + 1)
    in
    (* Injected nested failure: the machine dies again before this
       restore attempt completes.  Vista recovery is idempotent, so the
       next attempt redoes it from the same checkpoint. *)
    if recovery_crash_due tn Mid_restore then crashed ~injected:true
    else
      match Checkpointer.restore tn.ckpt ~pid:p.pid ~machine:p.machine with
      | restored -> Some restored
      | exception Ft_stablemem.Rio.Crash_point _ -> crashed ~injected:false
  in
  go 1

let finish_restore tn (p : proc) (kstate, cost) =
  Ft_os.Kernel.restore_kstate tn.kernel p.pid kstate;
  (* Logging styles: roll the dependency vector back to the restored
     commit and fence off in-flight messages the rollback un-sent (the
     barrier reads the just-restored send_seq, so order matters: after
     [restore_kstate], before the requeue's dead-message filter). *)
  if Ft_os.Kernel.dependency_tracking tn.kernel then begin
    Ft_os.Kernel.restore_dv tn.kernel p.pid tn.committed_dvs.(p.pid);
    Array.blit tn.committed_stables.(p.pid) 0 tn.stable_marks.(p.pid) 0
      (Array.length tn.stable_marks.(p.pid));
    Ft_os.Kernel.note_sender_rollback tn.kernel p.pid;
    (* Determinants recorded since the last commit belonged to the dead
       lineage (the optimistic volatile log dies with the process). *)
    Ft_os.Kernel.det_drop_uncommitted tn.kernel p.pid
  end;
  Ft_os.Kernel.requeue_uncommitted tn.kernel p.pid;
  (* [+ 1]: a commit-before checkpoint counts its (rewound, not yet
     serviced) Sys instruction in icount, so the replay re-reaches
     that same commit at exactly icount + 1.  Progress means
     committing beyond that. *)
  p.restore_base_icount <- Ft_vm.Machine.icount p.machine;
  p.recovered_at_icount <- Ft_vm.Machine.icount p.machine + 1;
  p.out_seq <- p.committed_out_seq;
  p.time <- p.time + cost;
  p.blocked <- false;
  p.halted <- false

(* Legacy generic recovery (ladder rung L0 only): the engine's
   historical path, untouched when [cfg.policy = None]. *)
let recover_generic tn (p : proc) =
  if p.recoveries >= tn.cfg.max_recovery_attempts then give_up tn p
  else begin
    p.recoveries <- p.recoveries + 1;
    tn.total_recoveries <- tn.total_recoveries + 1;
    pre_replay tn p;
    match restore_with_retry tn p with
    | None -> give_up tn p
    | Some restored ->
        finish_restore tn p restored;
        (match tn.on_replay with
        | Some f -> f p.pid ~salt:p.salt
        | None -> ())
  end

(* Policy-driven recovery: the escalation ladder.  The attempt index
   (consecutive crashes since the process last committed past its
   restore point) picks the rung; each rung restores *some* committed
   state — Consistency is never traded, only whose work is lost and
   what environment the replay sees. *)
let recover_policy tn pol (p : proc) =
  p.recoveries <- p.recoveries + 1;
  match Ft_recovery.Policy.decide pol ~attempt:p.recoveries with
  | Ft_recovery.Policy.Give_up -> give_up tn p
  | action ->
      tn.total_recoveries <- tn.total_recoveries + 1;
      pre_replay tn p;
      let rung = Ft_recovery.Policy.rung action in
      p.last_rung <- rung;
      if rung > p.ladder_peak then p.ladder_peak <- rung;
      let restored =
        match action with
        | Ft_recovery.Policy.Deep_rollback back -> (
            (* Nested-crash discipline: a crash during the rollback's
               own transaction recovers to the pre-rollback generation;
               fall back to a plain restore of it. *)
            match
              Checkpointer.rollback tn.ckpt ~pid:p.pid ~machine:p.machine
                ~back
            with
            | Some (kstate, cost, out_seq) ->
                tn.deep_rollbacks <- tn.deep_rollbacks + 1;
                p.committed_out_seq <- out_seq;
                Some (kstate, cost)
            | None ->
                (* Not enough archived generations yet: a plain replay
                   is the deepest rollback available. *)
                restore_with_retry tn p
            | exception Ft_stablemem.Rio.Crash_point _ -> (
                match note_recovery_crash tn p ~injected:false ~attempt:1 with
                | `Abandon -> None
                | `Retry -> restore_with_retry tn p))
        | _ -> restore_with_retry tn p
      in
      (match restored with
      | None -> give_up tn p
      | Some restored ->
          finish_restore tn p restored;
          (match action with
          | Ft_recovery.Policy.Perturbed_replay { salt } ->
              tn.perturbed_replays <- tn.perturbed_replays + 1;
              p.salt <- salt;
              Ft_os.Kernel.perturb tn.kernel ~salt
          | _ -> ());
          (match tn.on_replay with
          | Some f -> f p.pid ~salt:p.salt
          | None -> ()))

let recover tn (p : proc) =
  match tn.cfg.policy with
  | None -> recover_generic tn p
  | Some pol -> recover_policy tn pol p

(* Orphan detection and re-rollback (message-logging protocols).  After
   a victim is restored to its last commit, a survivor [s] is an orphan
   iff its dependency vector records more of the victim's
   non-determinism than the restored state retains —
   [dv_s(v) > dv_v(v)]: [s]'s state depends on ND the rollback lost
   (and, under optimistic logging, on determinants that died with the
   volatile log).  Orphans are rolled back to their own last commits,
   and the check cascades from each newly rolled-back process.  It
   terminates after at most one rollback per process: every commit
   co-commits (closure over the vectors) the processes it depends on,
   so no committed state depends on another process's uncommitted ND. *)
(* The cascade's progress is persisted tenant-side ([cascade_progress]:
   the pids whose orphan fallout is not yet propagated), so a victim
   re-crashed mid-cascade RESUMES the cascade rather than restarting it
   — orphans discovered through already-rolled-back intermediates are
   never lost.  Re-entrancy invariant: a pid leaves the persisted
   worklist only after every orphan its rollback exposed has itself been
   rolled back and enqueued, so at any crash point the worklist still
   covers all unpropagated rollbacks. *)
let rec orphan_cascade tn (victim : proc) =
  let worklist = Queue.create () in
  (match tn.cascade_progress with
  | Some (v0, pids) when v0 = victim.pid ->
      tn.cascade_resumes <- tn.cascade_resumes + 1;
      List.iter (fun pid -> Queue.add pid worklist) pids
  | _ -> Queue.add victim.pid worklist);
  let persist () =
    tn.cascade_progress <-
      Some (victim.pid, List.of_seq (Queue.to_seq worklist))
  in
  persist ();
  let superseded = ref false in
  while (not !superseded) && not (Queue.is_empty worklist) do
    let v = tn.procs.(Queue.peek worklist) in
    let v_own = Ft_core.Vclock.get (Ft_os.Kernel.dv tn.kernel v.pid) v.pid in
    Array.iter
      (fun s ->
        if s.pid <> v.pid && not s.failed then
          let s_dv = Ft_os.Kernel.dv tn.kernel s.pid in
          if Ft_core.Vclock.get s_dv v.pid > v_own then begin
            tn.orphan_rollbacks <- tn.orphan_rollbacks + 1;
            (match restore_with_retry tn s with
            | None -> give_up tn s
            | Some restored -> finish_restore tn s restored);
            if not s.failed then Queue.add s.pid worklist
          end)
      tn.procs;
    ignore (Queue.pop worklist : int);
    persist ();
    (* Injected nested failure: the victim dies again between cascade
       steps.  It goes through the ordinary crash path, whose recovery
       re-enters this cascade and resumes from the persisted worklist —
       this call is superseded by the re-entrant one. *)
    if recovery_crash_due tn Mid_cascade && not victim.failed then begin
      tn.nested_crashes <- tn.nested_crashes + 1;
      Ft_vm.Machine.kill victim.machine;
      crash_proc tn victim;
      superseded := true
    end
  done;
  if not !superseded then tn.cascade_progress <- None

and recover_and_cascade tn (p : proc) =
  recover tn p;
  if (not p.failed) && Ft_os.Kernel.dependency_tracking tn.kernel then
    orphan_cascade tn p

and crash_proc tn (p : proc) =
  record_crash tn p;
  if tn.cfg.policy <> None then
    p.crash_bar <- max p.crash_bar (Ft_vm.Machine.icount p.machine);
  (* Classification is pure observation: it never feeds back into the
     simulation, so the legacy path stays byte-identical. *)
  Ft_recovery.Classifier.note_crash p.classifier ~salt:p.salt
    ~icount:(Ft_vm.Machine.icount p.machine - p.restore_base_icount);
  let verdict =
    match tn.breaker with
    | None -> `Ok
    | Some b ->
        ignore (Ft_recovery.Quarantine.probe b ~now_ns:p.time : bool);
        Ft_recovery.Quarantine.note_crash b ~now_ns:p.time
  in
  match verdict with
  | `Latched ->
      tn.quarantine_trips <- tn.quarantine_trips + 1;
      give_up tn p
  | `Park_until until_ns ->
      tn.quarantine_trips <- tn.quarantine_trips + 1;
      if tn.cfg.auto_recover then begin
        (* The breaker took over pacing: restart the ladder so the
           half-open probe gets a fresh budget, recover, then park the
           whole tenant until the probe deadline — it stops burning
           scheduler steps and co-tenants' tail latency survives. *)
        p.recoveries <- 0;
        recover_and_cascade tn p;
        if not p.failed then
          Array.iter
            (fun q ->
              if (not q.halted) && not q.failed then
                q.time <- max q.time until_ns)
            tn.procs
      end
      else p.failed <- true
  | `Ok ->
      if tn.cfg.auto_recover then recover_and_cascade tn p
      else p.failed <- true

(* --- commits ------------------------------------------------------------ *)

(* Determinant-log GC (logging styles): retire a process's committed
   determinants once every live process's dependence on it is itself
   committed, read off the piggybacked commit watermarks
   ([committed_dvs] — each process's vector as of its newest commit).
   The inputs are committed state only and the kernel watermark is
   monotone, so a pass re-run after any nested crash re-derives the same
   or a later watermark, never an earlier one: crash-safe by
   construction.  Halted and failed processes are past publishing
   uncommitted state and do not pin logs. *)
let det_gc tn =
  let nprocs = Array.length tn.procs in
  for q = 0 to nprocs - 1 do
    let blocked = ref false in
    for i = 0 to nprocs - 1 do
      let s = tn.procs.(i) in
      if
        i <> q
        && (not s.failed)
        && (not s.halted)
        && Ft_core.Vclock.get (Ft_os.Kernel.dv tn.kernel i) q
           > Ft_core.Vclock.get tn.committed_dvs.(i) q
      then blocked := true
    done;
    if not !blocked then Ft_os.Kernel.det_retire tn.kernel q
  done

(* Returns [false] when the process crashed partway through the commit
   (and was restored to its last checkpoint): the caller must abandon
   whatever the commit was protecting — the restored machine will replay
   it — rather than keep acting on the pre-crash control flow. *)
let do_local_commit ?round tn (p : proc) =
  match
    Checkpointer.commit ~out_seq:p.out_seq tn.ckpt ~pid:p.pid
      ~machine:p.machine
      ~kstate:(Ft_os.Kernel.snapshot_kstate tn.kernel p.pid)
  with
  | exception Ft_stablemem.Rio.Crash_point _ ->
      (* The process died partway through writing its checkpoint; the
         torn Vista transaction is rolled back by the restore. *)
      Ft_vm.Machine.kill p.machine;
      crash_proc tn p;
      false
  | cost ->
      p.time <- p.time + cost;
      p.commit_count <- p.commit_count + 1;
      p.committed_out_seq <- p.out_seq;
      (* Logging styles: the commit flushes the volatile determinant log
         and stabilizes the process's non-determinism up to here — the
         live vector becomes the new rollback/orphan baseline. *)
      if Ft_os.Kernel.dependency_tracking tn.kernel then begin
        tn.committed_dvs.(p.pid) <-
          Ft_core.Vclock.copy (Ft_os.Kernel.dv tn.kernel p.pid);
        Array.blit tn.stable_marks.(p.pid) 0 tn.committed_stables.(p.pid) 0
          (Array.length tn.stable_marks.(p.pid));
        Ft_os.Kernel.det_note_commit tn.kernel p.pid;
        det_gc tn
      end;
      (* A commit strictly past the last restore point is real progress:
         the failure was transient, so the next crash starts a fresh
         recovery budget.  (A commit AT the restore point is just the
         deterministic replay re-reaching the same state and must not
         refill the budget, or a crash loop would never give up.) *)
      (* Policy runs additionally require the commit to pass the crash
         high-water mark: a recurring fault keeps crashing at the same
         icount, so commits underneath it are replay, not escape. *)
      if p.recoveries > 0
         && Ft_vm.Machine.icount p.machine > p.recovered_at_icount
         && (tn.cfg.policy = None
             || Ft_vm.Machine.icount p.machine > p.crash_bar)
      then begin
        Ft_recovery.Classifier.note_progress p.classifier ~rung:p.last_rung;
        (match tn.breaker with
        | Some b ->
            ignore (Ft_recovery.Quarantine.probe b ~now_ns:p.time : bool);
            Ft_recovery.Quarantine.note_progress b
        | None -> ());
        p.recoveries <- 0
      end;
      let kind =
        match round with
        | Some r -> Ft_core.Event.Commit_round r
        | None -> Ft_core.Event.Commit
      in
      ignore (Ft_core.Trace.record tn.trace ~pid:p.pid kind);
      Ft_os.Kernel.note_commit tn.kernel p.pid;
      tn.protocol.Ft_core.Protocol.note_commit ~pid:p.pid;
      (match tn.activation with
      | Some (apid, _) when apid = p.pid && tn.first_crash = None ->
          tn.commit_after_activation <- true
      | _ -> ());
      true

(* Two-phase commit: the coordinator asks every live process to commit and
   waits for all acknowledgements.  Time: participants commit after one
   message latency; the coordinator finishes one latency after the last.
   The acknowledgements are recorded in the trace (as logged protocol
   messages) so the participants' commits happen-before whatever the
   coordinator does next — the edge Save-work-orphan relies on.

   With an unreliable transport attached, the round is guarded by a
   prepare/commit timeout with presumed-abort: if any participant is
   unreachable (partitioned in either direction, or behind a link whose
   retry budget ran out), nobody commits this round; the coordinator
   waits out the timeout — doubling per retry — and tries again, so a
   healing partition only delays the round.  A round that exhausts its
   retries degrades the run to [Net_unreachable] rather than committing
   unsafely or wedging. *)
let do_global_commit tn (coordinator : proc) =
  let latency =
    (Ft_os.Kernel.costs tn.kernel).Ft_os.Kernel.network_latency_ns
  in
  let live_participants () =
    Array.to_list tn.procs
    |> List.filter (fun q ->
           (not q.halted) && (not q.failed) && q.pid <> coordinator.pid)
  in
  let base = Ft_os.Kernel.net_base tn.kernel in
  let reachable (q : proc) =
    match Ft_os.Kernel.net tn.kernel with
    | None -> true
    | Some net ->
        let now = coordinator.time in
        Ft_net.Transport.reachable net ~src:(base + coordinator.pid)
          ~dst:(base + q.pid) ~now
        && Ft_net.Transport.reachable net ~src:(base + q.pid)
             ~dst:(base + coordinator.pid) ~now
  in
  let commit_round () =
    let start = coordinator.time in
    let finish = ref start in
    let round = tn.round in
    tn.round <- round + 1;
    (* participants first, each acknowledging to the coordinator *)
    List.iter
      (fun q ->
        q.time <- max q.time (start + latency);
        (* A participant whose commit crashed (and rolled back) never
           acknowledges; the coordinator still commits the others. *)
        if do_local_commit ~round tn q then begin
          let tag = tn.ack_tag in
          tn.ack_tag <- tag - 1;
          ignore
            (Ft_core.Trace.record tn.trace ~pid:q.pid
               (Ft_core.Event.Send { dest = coordinator.pid; tag }));
          ignore
            (Ft_core.Trace.record tn.trace ~pid:coordinator.pid ~logged:true
               (Ft_core.Event.Receive { src = q.pid; tag }));
          if q.time > !finish then finish := q.time
        end)
      (live_participants ());
    (* the coordinator commits last, once every ack is in *)
    coordinator.time <- max coordinator.time (!finish + latency);
    do_local_commit ~round tn coordinator
  in
  let rec attempt retries =
    if List.for_all reachable (live_participants ()) then commit_round ()
    else begin
      (* presumed abort: no participant prepared, so nothing to undo —
         the round simply never happened *)
      tn.aborted_rounds <- tn.aborted_rounds + 1;
      if retries >= tn.cfg.twopc_max_retries then begin
        (* the partition outlived the retry budget: end the run honestly
           instead of wedging or outputting without the commit *)
        coordinator.failed <- true;
        if tn.outcome = None then tn.outcome <- Some Net_unreachable;
        false
      end
      else begin
        coordinator.time <-
          coordinator.time + (tn.cfg.twopc_timeout_ns * (1 lsl retries));
        attempt (retries + 1)
      end
    end
  in
  attempt 0

(* Dependent commit: the asynchronous-logging alternative to a global
   2PC at output commit.  The coordinator is about to execute a visible
   event; instead of committing everybody, it commits exactly the
   processes the output causally depends on, read off the piggybacked
   dependency vectors:

     S0 = { q <> p | dv_p(q) > stable_p(q) }

   where stable_p(q) is p's own confirmed-stable mark — how much of q's
   non-determinism p has verified durable through an earlier
   acknowledged round.  The mark, not q's actual commit state, decides:
   an already-committed dependency is still contacted once, and that
   ack is the happens-before edge that puts its covering commit in the
   output's causal past (which is what the Save-work oracle checks).
   The set is closed transitively using each member's own marks — if
   q's vector shows taint of r beyond q's mark for r, r must co-commit
   too, else a participant's snapshot would capture a dependence on
   unconfirmed ND and a later crash of r would orphan *committed*
   state.  All of S commits under one shared
   round id (participant snapshots may depend on each other in ways no
   ack ordering can serialize; atomic-with covers them), each
   acknowledging to the coordinator; the coordinator commits the same
   round last, so every participant commit happens-before the visible.
   An untainted coordinator with no dependencies commits nothing at
   all — that asynchrony is the entire point of logging protocols.

   Unreachable dependencies are handled exactly like an unreachable 2PC
   participant: presumed abort, doubling timeout, degrade to
   [Net_unreachable] when the retry budget runs out. *)
exception Round_superseded

let do_dependent_commit tn (coordinator : proc) =
  let latency =
    (Ft_os.Kernel.costs tn.kernel).Ft_os.Kernel.network_latency_ns
  in
  let nprocs = Array.length tn.procs in
  let committed_own q = Ft_core.Vclock.get tn.committed_dvs.(q) q in
  let dependencies () =
    let in_set = Array.make nprocs false in
    let rec close pid =
      let dv = Ft_os.Kernel.dv tn.kernel pid in
      for q = 0 to nprocs - 1 do
        if
          q <> coordinator.pid
          && (not in_set.(q))
          && (not tn.procs.(q).halted)
          && (not tn.procs.(q).failed)
          && Ft_core.Vclock.get dv q > tn.stable_marks.(pid).(q)
        then begin
          in_set.(q) <- true;
          close q
        end
      done
    in
    close coordinator.pid;
    Array.to_list tn.procs |> List.filter (fun q -> in_set.(q.pid))
  in
  let self_tainted () =
    Ft_core.Vclock.get
      (Ft_os.Kernel.dv tn.kernel coordinator.pid)
      coordinator.pid
    > committed_own coordinator.pid
  in
  let base = Ft_os.Kernel.net_base tn.kernel in
  let reachable (q : proc) =
    match Ft_os.Kernel.net tn.kernel with
    | None -> true
    | Some net ->
        let now = coordinator.time in
        Ft_net.Transport.reachable net ~src:(base + coordinator.pid)
          ~dst:(base + q.pid) ~now
        && Ft_net.Transport.reachable net ~src:(base + q.pid)
             ~dst:(base + coordinator.pid) ~now
  in
  let commit_round deps =
    let start = coordinator.time in
    let finish = ref start in
    let round = tn.round in
    tn.round <- round + 1;
    List.iter
      (fun (q : proc) ->
        q.time <- max q.time (start + latency);
        if do_local_commit ~round tn q then begin
          let tag = tn.ack_tag in
          tn.ack_tag <- tag - 1;
          ignore
            (Ft_core.Trace.record tn.trace ~pid:q.pid
               (Ft_core.Event.Send { dest = coordinator.pid; tag }));
          ignore
            (Ft_core.Trace.record tn.trace ~pid:coordinator.pid ~logged:true
               (Ft_core.Event.Receive { src = q.pid; tag }));
          (* the ack confirms everything of q's own ND to date is now
             durable; the coordinator's next commit snapshots this
             knowledge, so q is not re-contacted for old taint *)
          tn.stable_marks.(coordinator.pid).(q.pid) <-
            Ft_core.Vclock.get (Ft_os.Kernel.dv tn.kernel q.pid) q.pid;
          if q.time > !finish then finish := q.time
        end;
        (* Injected nested failure: the coordinator dies between
           participants, mid-round. *)
        if recovery_crash_due tn Mid_round then raise Round_superseded)
      deps;
    coordinator.time <- max coordinator.time (!finish + latency);
    do_local_commit ~round tn coordinator
  in
  let commit_round deps =
    match commit_round deps with
    | committed -> committed
    | exception Round_superseded ->
        (* The coordinator crashed mid-round.  Participants' commits and
           the acks already recorded STAND — commits are never undone, so
           no participant is stranded waiting on an outcome.  The
           coordinator's own stable-mark updates for the dead round were
           not yet committed and revert with its restore; its replay
           re-derives a (smaller) dependency set and runs a fresh round
           that supersedes this one. *)
        tn.nested_crashes <- tn.nested_crashes + 1;
        Ft_vm.Machine.kill coordinator.machine;
        crash_proc tn coordinator;
        false
  in
  let rec attempt retries =
    match dependencies () with
    | [] ->
        (* No remote dependencies: a tainted coordinator makes a plain
           local commit; an untainted one owes nothing before output. *)
        if self_tainted () then do_local_commit tn coordinator else true
    | deps ->
        if List.for_all reachable deps then commit_round deps
        else begin
          tn.aborted_rounds <- tn.aborted_rounds + 1;
          if retries >= tn.cfg.twopc_max_retries then begin
            coordinator.failed <- true;
            if tn.outcome = None then tn.outcome <- Some Net_unreachable;
            false
          end
          else begin
            coordinator.time <-
              coordinator.time + (tn.cfg.twopc_timeout_ns * (1 lsl retries));
            attempt (retries + 1)
          end
        end
  in
  attempt 0

(* Like [do_local_commit], [false] means the committing process crashed
   mid-commit and was restored: abandon the surrounding control flow. *)
let do_commit tn p = function
  | Ft_core.Protocol.Local -> do_local_commit tn p
  | Ft_core.Protocol.Global -> do_global_commit tn p
  | Ft_core.Protocol.Dependent -> do_dependent_commit tn p

(* A kernel panic stops the whole (shared) machine — all of {e this
   tenant's} processes; co-tenants run their own kernels and survive.
   Every process sees a stop failure and is recovered after the reboot.
   The reboot clears the injected kernel fault. *)
let kernel_panic tn =
  Ft_os.Kernel.clear_os_fault tn.kernel;
  let reboot_done =
    Array.fold_left (fun acc p -> max acc p.time) 0 tn.procs
    + tn.cfg.reboot_delay_ns
  in
  Array.iter
    (fun p ->
      if (not p.halted) && not p.failed then begin
        Ft_vm.Machine.kill p.machine;
        record_crash tn p;
        p.time <- reboot_done;
        if tn.cfg.auto_recover then recover tn p else p.failed <- true
      end)
    tn.procs

(* --- event handling ------------------------------------------------------ *)

let classify_pre ~(sys : Ft_vm.Syscall.t) ~a0 : Ft_core.Protocol.event_info option =
  let open Ft_core in
  match sys with
  | Gettimeofday | Random | Poll_input ->
      Some { Protocol.kind = Event.Nd Event.Transient; loggable = false }
  | Read_input ->
      Some { Protocol.kind = Event.Nd Event.Fixed; loggable = true }
  | Write_output ->
      Some { Protocol.kind = Event.Visible a0; loggable = false }
  | Send ->
      Some { Protocol.kind = Event.Send { dest = a0; tag = -1 };
             loggable = false }
  | Recv | Try_recv ->
      Some { Protocol.kind = Event.Receive { src = -1; tag = -1 };
             loggable = true }
  | Open_file | Write_file ->
      (* ND only on resource-exhaustion failure, which is known post-
         service; the engine re-consults the protocol then. *)
      None
  | Read_file | Close_file | Sigaction | Sleep | Yield -> None

let event_kind_of_served (served : Ft_os.Kernel.served) :
    Ft_core.Event.kind option =
  match served.Ft_os.Kernel.ev with
  | Ft_os.Kernel.Ev_none -> None
  | Ft_os.Kernel.Ev_nd (c, _) -> Some (Ft_core.Event.Nd c)
  | Ft_os.Kernel.Ev_visible v -> Some (Ft_core.Event.Visible v)
  | Ft_os.Kernel.Ev_send { dest; tag } ->
      Some (Ft_core.Event.Send { dest; tag })
  | Ft_os.Kernel.Ev_receive { src; tag } ->
      Some (Ft_core.Event.Receive { src; tag })

(* Deliver a due timer signal: a transient, unloggable ND event. *)
let maybe_deliver_signal tn (p : proc) =
  if Ft_os.Kernel.poll_signal tn.kernel p.pid ~now:p.time then begin
    let info =
      { Ft_core.Protocol.kind = Ft_core.Event.Nd Ft_core.Event.Transient;
        loggable = false }
    in
    let reaction = tn.protocol.Ft_core.Protocol.react ~pid:p.pid info in
    let survived =
      match reaction.Ft_core.Protocol.commit_before with
      | Some scope -> do_commit tn p scope
      | None -> true
    in
    (* A commit crash restored the machine to its checkpoint: the signal
       delivery belongs to the replay, not to this (dead) control flow. *)
    if survived && Ft_vm.Machine.deliver_signal p.machine then begin
      p.nd_count <- p.nd_count + 1;
      (* An unlogged transient ND event: taints under both logging
         styles, and records a determinant. *)
      if Ft_os.Kernel.dependency_tracking tn.kernel then begin
        ignore (Ft_os.Kernel.det_append tn.kernel p.pid : bool);
        Ft_os.Kernel.dv_tick tn.kernel p.pid
      end;
      ignore
        (Ft_core.Trace.record tn.trace ~pid:p.pid
           (Ft_core.Event.Nd Ft_core.Event.Transient));
      match reaction.Ft_core.Protocol.commit_after with
      | Some scope -> ignore (do_commit tn p scope : bool)
      | None -> ()
    end
  end

let handle_syscall tn (p : proc) (sys : Ft_vm.Syscall.t) =
  let m = p.machine in
  Ft_vm.Machine.rewind_syscall m;
  let a0 = m.Ft_vm.Machine.regs.(0) and a1 = m.Ft_vm.Machine.regs.(1) in
  (* Special cases the kernel does not see. *)
  match sys with
  | Ft_vm.Syscall.Sigaction ->
      m.Ft_vm.Machine.signal_handler <- a0;
      p.time <- p.time + (Ft_os.Kernel.costs tn.kernel).Ft_os.Kernel.syscall_ns;
      Ft_vm.Machine.advance_past_syscall m
  | _ -> (
      let pre = classify_pre ~sys ~a0 in
      let reaction =
        match pre with
        | Some info -> tn.protocol.Ft_core.Protocol.react ~pid:p.pid info
        | None -> Ft_core.Protocol.no_reaction
      in
      let survived =
        match reaction.Ft_core.Protocol.commit_before with
        | Some scope -> do_commit tn p scope
        | None -> true
      in
      (* A crash inside the pre-event commit restored the machine to its
         last checkpoint: the syscall must not be serviced on the restored
         state — the replay will re-issue it from the rewound pc. *)
      if not survived then ()
      else
      match Ft_os.Kernel.service tn.kernel ~pid:p.pid ~now:p.time ~a0 ~a1 sys with
      | Ft_os.Kernel.Panic -> kernel_panic tn
      | Ft_os.Kernel.Block_recv ->
          (* Leave the machine pointing at the Sys instruction; retry when
             a message shows up. *)
          p.blocked <- true
      | Ft_os.Kernel.Served served ->
          p.blocked <- false;
          (match served.Ft_os.Kernel.r0 with
          | Some v -> Ft_vm.Machine.set_reg m 0 v
          | None -> ());
          (match served.Ft_os.Kernel.r1 with
          | Some v -> Ft_vm.Machine.set_reg m 1 v
          | None -> ());
          p.time <- p.time + served.Ft_os.Kernel.cost_ns;
          (match served.Ft_os.Kernel.new_time with
          | Some nt -> p.time <- max p.time nt
          | None -> ());
          (* Events whose ND-ness depends on the result (e.g. disk-full
             write failures) are classified only after servicing; give
             the protocol its chance to react to those now. *)
          let reaction =
            match (pre, served.Ft_os.Kernel.ev) with
            | None, Ft_os.Kernel.Ev_nd (c, loggable) ->
                tn.protocol.Ft_core.Protocol.react ~pid:p.pid
                  { Ft_core.Protocol.kind = Ft_core.Event.Nd c; loggable }
            | _ -> reaction
          in
          let logged =
            reaction.Ft_core.Protocol.log
            &&
            match served.Ft_os.Kernel.ev with
            | Ft_os.Kernel.Ev_nd (_, loggable) -> loggable
            | Ft_os.Kernel.Ev_receive _ -> true
            | _ -> false
          in
          (* A faulty kernel may corrupt process memory through a syscall
             (a bad copyout): flip a bit of a live word, biased towards
             the metadata-rich low heap. *)
          (match served.Ft_os.Kernel.poke with
          | Some seed ->
              let heap = Ft_vm.Machine.heap m in
              let size = Ft_vm.Memory.size heap in
              let rng = Random.State.make [| seed |] in
              let region =
                if Random.State.bool rng then min size 4096 else size
              in
              let rec hunt tries best =
                if tries = 0 then best
                else
                  let a = Random.State.int rng region in
                  if Ft_vm.Memory.read heap a <> 0 then a
                  else hunt (tries - 1) best
              in
              let a = hunt 64 (Random.State.int rng region) in
              let bit = Random.State.int rng 24 in
              Ft_vm.Memory.write heap a
                (Ft_vm.Memory.read heap a lxor (1 lsl bit));
              tn.memory_pokes <- tn.memory_pokes + 1
          | None -> ());
          (* Logged user input must be stable before its effects propagate
             (a synchronous write on DC-disk); logged receives live in the
             kernel's recovery buffer — committed senders regenerate them
             — and cost nothing extra. *)
          (match served.Ft_os.Kernel.ev with
          | Ft_os.Kernel.Ev_nd _ when logged ->
              p.time <- p.time + Checkpointer.log_cost tn.ckpt ~words:4
          | _ -> ());
          let force_flush = ref false in
          (match event_kind_of_served served with
          | Some kind ->
              ignore (Ft_core.Trace.record tn.trace ~pid:p.pid ~logged kind);
              (match kind with
              | Ft_core.Event.Nd _ | Ft_core.Event.Receive _ ->
                  p.nd_count <- p.nd_count + 1;
                  if logged then p.logged_count <- p.logged_count + 1;
                  (* Logging styles: every ND event records a determinant
                     (bounded store, GC'd at commits); tainting ND
                     additionally advances the process's own
                     dependency-vector component (causal logging exempts
                     logged determinants — they are causally replicated;
                     optimistic logging taints regardless — the volatile
                     log dies with the process). *)
                  if Ft_os.Kernel.dependency_tracking tn.kernel then begin
                    if Ft_os.Kernel.det_append tn.kernel p.pid then
                      force_flush := true;
                    if
                      Ft_core.Protocol.taints
                        tn.cfg.protocol.Ft_core.Protocol.style ~logged kind
                    then Ft_os.Kernel.dv_tick tn.kernel p.pid
                  end
              | Ft_core.Event.Visible v ->
                  (* Sequenced egress (policy runs): a replayed output
                     below the released cursor is absorbed by the
                     channel — the outside world already has it — but it
                     must agree with the value that was released, or the
                     recovery machinery broke exactly-once output. *)
                  let release =
                    match tn.cfg.policy with
                    | None -> true
                    | Some _ ->
                        if p.out_seq < p.emitted_n then begin
                          let prior =
                            List.nth p.emitted_rev
                              (p.emitted_n - 1 - p.out_seq)
                          in
                          if prior <> v then
                            tn.replay_mismatches <-
                              tn.replay_mismatches + 1;
                          false
                        end
                        else true
                  in
                  p.out_seq <- p.out_seq + 1;
                  if release then begin
                    p.visible_count <- p.visible_count + 1;
                    if p.first_visible_at < 0 then
                      p.first_visible_at <- p.time;
                    p.last_visible_at <- p.time;
                    tn.visible_rev <- (p.pid, v, p.time) :: tn.visible_rev;
                    p.emitted_rev <- v :: p.emitted_rev;
                    p.emitted_n <- p.emitted_n + 1
                  end
              | _ -> ())
          | None -> ());
          Ft_vm.Machine.advance_past_syscall m;
          (* The machine is already past the syscall: a crash in the
             post-event commit just restores and replays from there. *)
          (match reaction.Ft_core.Protocol.commit_after with
          | Some scope -> ignore (do_commit tn p scope : bool)
          | None -> ());
          (* Determinant-log hard cap: degrade gracefully by forcing a
             flush-to-checkpoint of the appending process — its commit
             retires its own uncommitted log and unblocks the GC for
             logs its taint was pinning — instead of growing unbounded.
             The machine is past the syscall, so a crash inside the
             forced commit replays from there. *)
          if !force_flush && (not p.halted) && not p.failed then begin
            Ft_os.Kernel.note_forced_flush tn.kernel;
            ignore (do_local_commit tn p : bool)
          end)

(* --- scheduling ---------------------------------------------------------- *)

let runnable tn (p : proc) =
  (not p.halted) && (not p.failed)
  && ((not p.blocked) || Ft_os.Kernel.mailbox_nonempty tn.kernel p.pid)

let pick tn =
  (* deterministic stop failures keyed by scheduling-decision index:
     applied before the pick, so the kill changes this decision's
     runnable set *)
  let due, later =
    List.partition (fun (d, _) -> d <= tn.decisions) tn.decision_kills
  in
  tn.decision_kills <- later;
  List.iter
    (fun (_, pid) ->
      let p = tn.procs.(pid) in
      if (not p.halted) && not p.failed then begin
        Ft_vm.Machine.kill p.machine;
        crash_proc tn p
      end)
    due;
  let best = ref None in
  Array.iter
    (fun p ->
      if runnable tn p then
        match !best with
        | Some q when q.time <= p.time -> ()
        | _ -> best := Some p)
    tn.procs;
  match !best with
  | None -> None
  | Some _ as default ->
      tn.decisions <- tn.decisions + 1;
      (match tn.cfg.pick_override with
      | None -> default
      | Some f -> (
          let candidates =
            Array.to_list tn.procs |> List.filter (runnable tn)
            |> List.map (fun p -> p.pid)
          in
          match f candidates with
          | Some pid when List.mem pid candidates -> Some tn.procs.(pid)
          | _ -> default))

let apply_due_kills tn =
  let due, later =
    List.partition
      (fun (at, pid) ->
        let p = tn.procs.(pid) in
        p.time >= at && not p.halted)
      tn.kills_pending
  in
  tn.kills_pending <- later;
  List.iter
    (fun (_, pid) ->
      let p = tn.procs.(pid) in
      if (not p.halted) && not p.failed then begin
        Ft_vm.Machine.kill p.machine;
        crash_proc tn p
      end)
    due

let past_deadline tn (p : proc) =
  match tn.cfg.deadline_ns with Some d -> p.time >= d | None -> false

(* Run one scheduling slice of process [p]. *)
let slice tn (p : proc) =
  maybe_deliver_signal tn p;
  let m = p.machine in
  let executed = Ft_vm.Machine.step_n m tn.cfg.batch in
  tn.instructions <- tn.instructions + executed;
  p.time <- p.time + (executed * instr_ns tn);
  match Ft_vm.Machine.status m with
  | Ft_vm.Machine.Running -> ()
  | Ft_vm.Machine.Halted ->
      (* Completion is progress too.  A fault planted after the last
         commit leaves no commit past the crash bar to witness the
         escape, yet reaching Halt means the rescue was real — record
         it, or the classifier mistakes a perturbed-replay
         squeak-through for a Bohrbug.  No crash-bar check here: the
         bar exists so replay commits underneath a recurring crash
         cannot refill the recovery budget, but a Halt is terminal —
         there is no budget left to refill, and even a Halt below the
         bar (the replay took a different exit) is an escape. *)
      if p.recoveries > 0 && Ft_vm.Machine.icount m > p.recovered_at_icount
      then
        Ft_recovery.Classifier.note_progress p.classifier ~rung:p.last_rung;
      p.halted <- true
  | Ft_vm.Machine.Crashed _ -> crash_proc tn p
  | Ft_vm.Machine.Need_syscall sys -> handle_syscall tn p sys

let finished tn =
  Array.for_all (fun p -> p.halted || p.failed) tn.procs

let result_of tn outcome =
  let arr f = Array.map f tn.procs in
  let visible_times = List.rev tn.visible_rev in
  {
    outcome;
    trace = tn.trace;
    visible = List.map (fun (_, v, _) -> v) visible_times;
    sim_time_ns = Array.fold_left (fun acc p -> max acc p.time) 0 tn.procs;
    wall_instructions = tn.instructions;
    commit_counts = arr (fun p -> p.commit_count);
    nd_counts = arr (fun p -> p.nd_count);
    logged_counts = arr (fun p -> p.logged_count);
    visible_counts = arr (fun p -> p.visible_count);
    recoveries = tn.total_recoveries;
    crashes = tn.total_crashes;
    recovery_crashes = tn.recovery_crashes;
    activation = tn.activation;
    first_crash = tn.first_crash;
    commit_after_activation = tn.commit_after_activation;
    memory_pokes = tn.memory_pokes;
    aborted_rounds = tn.aborted_rounds;
    orphan_rollbacks = tn.orphan_rollbacks;
    visible_times;
    crash_times = List.rev tn.crash_rev;
    deep_rollbacks = tn.deep_rollbacks;
    perturbed_replays = tn.perturbed_replays;
    ladder_peaks = arr (fun p -> p.ladder_peak);
    fault_classes = arr (fun p -> Ft_recovery.Classifier.classify p.classifier);
    quarantine_trips = tn.quarantine_trips;
    replay_mismatches = tn.replay_mismatches;
    nested_crashes = tn.nested_crashes;
    cascade_resumes = tn.cascade_resumes;
    det_high_water = Ft_os.Kernel.det_high_water tn.kernel;
    det_forced_flushes = Ft_os.Kernel.det_forced_flushes tn.kernel;
  }

(* Fire transport events up to this tenant's most advanced live local
   clock.  On a shared transport this may fire a co-tenant's events a
   little "early" in wall order; arrivals are stamped with their own
   delivery time and receivers advance on consume, so nothing observable
   moves (the same argument that lets a slow receiver's frames land
   early on a private transport). *)
let pump_net tn =
  match Ft_os.Kernel.net tn.kernel with
  | None -> ()
  | Some net ->
      let now =
        Array.fold_left
          (fun acc p -> if p.halted || p.failed then acc else max acc p.time)
          0 tn.procs
      in
      Ft_net.Transport.pump net ~now

(* --- the scheduler loop -------------------------------------------------- *)

let finish t tn outcome =
  tn.result <- Some (result_of tn outcome);
  t.live <- t.live - 1

(* One iteration of the legacy engine loop for tenant [tn]: exactly the
   operations (and order) `Engine.run`'s `loop ()` body performed, so a
   1-tenant scheduler is step-identical to the old engine. *)
let step t tn =
  t.steps <- t.steps + 1;
  apply_due_kills tn;
  pump_net tn;
  if tn.instructions > tn.cfg.max_instructions then
    finish t tn Instruction_budget
  else if finished tn then
    finish t tn
      (match tn.outcome with
      | Some o -> o
      | None ->
          if Array.exists (fun p -> p.failed) tn.procs then Recovery_failed
          else Completed)
  else
    match pick tn with
    | None -> (
        (* Nobody is runnable.  If the network still holds events of
           ours — frames in flight, pending retries — the world can
           move: advance simulated time to the next event and pump.
           Only a quiet network is a verdict: a link that exhausted its
           retry budget while a receiver blocks is [Net_unreachable]
           (graceful degradation, §2.6 spirit); otherwise the processes
           deadlocked all by themselves. *)
        let lo, hi = net_range tn in
        match Ft_os.Kernel.net tn.kernel with
        | Some net when Ft_net.Transport.pending_in net ~lo ~hi -> (
            match Ft_net.Transport.next_event_in net ~lo ~hi with
            | Some at
              when (match tn.cfg.deadline_ns with
                   | Some d -> at >= d
                   | None -> false) ->
                finish t tn Deadline
            | Some at -> Ft_net.Transport.pump net ~now:at
            | None -> finish t tn Deadlocked)
        | Some net
          when Ft_net.Transport.any_failed_in net ~lo ~hi
               && Array.exists
                    (fun p -> p.blocked && (not p.halted) && not p.failed)
                    tn.procs ->
            finish t tn Net_unreachable
        | _ ->
            (* A 2PC round that exhausted its presumed-abort retries
               marked the outcome before the rest of the system drained;
               that verdict, not Deadlocked, is the honest one. *)
            finish t tn
              (match tn.outcome with
              | Some Net_unreachable -> Net_unreachable
              | _ -> Deadlocked))
    | Some p ->
        if past_deadline tn p then finish t tn Deadline
        else slice tn p

(* The tenant's position on the shared virtual clock: the smallest local
   clock among its runnable processes, or the earliest network event
   that could unblock it.  A tenant with neither can only conclude —
   schedule it immediately so its verdict is not delayed. *)
let tenant_next_time tn =
  let best = ref max_int in
  Array.iter
    (fun p -> if runnable tn p && p.time < !best then best := p.time)
    tn.procs;
  if !best < max_int then !best
  else
    match Ft_os.Kernel.net tn.kernel with
    | Some net ->
        let lo, hi = net_range tn in
        (match Ft_net.Transport.next_event_in net ~lo ~hi with
        | Some at -> at
        | None -> min_int)
    | None -> min_int

(* Pick the live tenant furthest behind on the virtual clock (ties break
   to the lowest tenant id — the strict [<] keeps the first minimum). *)
let pick_tenant t =
  let best = ref None in
  let best_time = ref max_int in
  Array.iter
    (fun tn ->
      if tn.result = None then begin
        let at = tenant_next_time tn in
        if at < !best_time || !best = None then begin
          best := Some tn;
          best_time := at
        end
      end)
    t.tenants;
  !best

let run t =
  let rec drive () =
    if t.live = 0 then Array.map (fun tn -> Option.get tn.result) t.tenants
    else begin
      (match pick_tenant t with
      | Some tn -> step t tn
      | None -> assert false);
      drive ()
    end
  in
  drive ()
