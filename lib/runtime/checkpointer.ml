(** Discount Checking: transparent full-process checkpoints (paper §3).

    Each process's address space lives (logically) in a Vista segment
    backed by Rio reliable memory.  Vista traps updates copy-on-write and
    keeps before-images in a persistent undo log; taking a checkpoint
    amounts to copying the register file, atomically discarding the undo
    log, and resetting page protections.  We charge exactly those costs:
    a per-checkpoint base, a trap-plus-copy cost per page dirtied since
    the last checkpoint, and a per-word copy cost for the register file,
    live stack and kernel state.

    Everything a restore needs — committed heap image, stack, machine
    metadata AND the serialized kernel state — lives in the Rio region,
    so {!restore} is a pure function of the persisted words: a crash at
    any word write during {!commit} leaves a region from which recovery
    reconstructs exactly the previous checkpoint.  The crash-point
    torture harness ({!Ft_harness.Torture}) checks this exhaustively.

    DC-disk is the same mechanism with the committed image written as a
    redo log synchronously to disk; its per-checkpoint cost is dominated
    by the disk access time ({!Ft_stablemem.Disk}). *)

type medium =
  | Reliable_memory            (* Rio: memory-speed commits *)
  | Disk of Ft_stablemem.Disk.t  (* DC-disk: synchronous redo log *)

type cost_model = {
  base_ns : int;        (* fixed per checkpoint: register copy, log reset *)
  page_trap_ns : int;   (* COW page-protection trap, per dirty page *)
  word_copy_ns : int;   (* memory copy, per word *)
  kstate_words : int;   (* accounted size of saved kernel state *)
}

let default_cost = {
  base_ns = 25_000;
  page_trap_ns = 4_000;
  word_copy_ns = 2;
  kstate_words = 64;
}

(* Per-process persistent area.  Region layout (all offsets fixed at
   creation):

     [0, heap_words)                 committed heap image
     [stack_base, meta_base)         committed stack
     [meta_base, kstate_base)        machine metadata (regs, pc, sp, ...)
     [kstate_base, data_words)       kernel state: [len; word_0 ...]
     [data_words, size)              Vista's persisted undo log

   Everything mutable about a slot is region words — the OCaml record is
   pure layout, so a slot rebuilt over an old region (simulating a
   process that lost its heap in a crash) restores identically. *)
(* One archived committed generation, for deep rollback.  The kernel
   state is held serialized (the same pure word form the region uses) so
   the archive shares no mutable structure with the live kernel. *)
type gen = {
  g_snap : Ft_vm.Machine.snapshot;
  g_kwords : int array;
  g_out_seq : int;
      (* visible outputs released as of this generation: restored with it
         so the sequenced egress channel can deduplicate replays *)
}

type slot = {
  vista : Ft_stablemem.Vista.t;
  heap_words : int;
  stack_base : int;
  meta_base : int;
  kstate_base : int;
  kstate_cap : int;          (* payload words available after the length *)
  (* Per-slot scratch buffers: [commit] stages one page / the metadata /
     the serialized kernel state here instead of allocating fresh arrays
     every checkpoint. *)
  page_buf : int array;
  meta_buf : int array;
  kstate_buf : int array;
  mutable archive : gen list;  (* newest first, length <= history *)
}

type t = {
  medium : medium;
  cost : cost_model;
  slots : slot array;
  history : int;
      (* committed generations kept for {!rollback}; 0 = off (default),
         and the hot path stays allocation-free *)
  excluded : int -> bool;
      (* §2.6: pages of recomputable state the application chose not to
         checkpoint; their contents are lost at recovery *)
}

let meta_words = Ft_vm.Instr.num_regs + 6

(* The undo log must hold the worst-case transaction: every heap page
   dirty, the full stack, the metadata, the kernel state and the commit
   record, each with its [off; len] record header. *)
let log_area_words ~heap_words ~stack_words ~page_size ~kstate_cap =
  let npages = (heap_words + page_size - 1) / page_size in
  Ft_stablemem.Vista.log_overhead_words
  + Ft_stablemem.Vista.record_words ~len:(npages * page_size)
  + ((npages - 1) * 2)     (* page records vs one big record: extra headers *)
  + Ft_stablemem.Vista.record_words ~len:stack_words
  + Ft_stablemem.Vista.record_words ~len:meta_words
  + Ft_stablemem.Vista.record_words ~len:(1 + kstate_cap)
  + Ft_stablemem.Vista.record_words ~len:1  (* commits-counter record *)

let create ?(cost = default_cost) ?(excluded = fun _ -> false)
    ?(page_size = 64) ?(history = 0) ~medium ~nprocs ~heap_words
    ~stack_words () =
  if page_size <= 0 then invalid_arg "Checkpointer.create: bad page_size";
  (* Kernel state payload: a handful of scalars, one pair per peer
     process, one triple per open file (the limit starts at 16 and grows
     a little at each resource expansion — 128 is comfortably past any
     run's reach). *)
  let kstate_cap = 9 + (2 * nprocs) + (3 * 128) in
  let make_slot _ =
    let stack_base = heap_words in
    let meta_base = stack_base + stack_words in
    let kstate_base = meta_base + meta_words in
    let data_words = kstate_base + 1 + kstate_cap in
    let size =
      data_words + log_area_words ~heap_words ~stack_words ~page_size ~kstate_cap
    in
    let region = Ft_stablemem.Rio.create ~size in
    {
      vista = Ft_stablemem.Vista.create ~data_words region;
      heap_words;
      stack_base;
      meta_base;
      kstate_base;
      kstate_cap;
      page_buf = Array.make page_size 0;
      meta_buf = Array.make meta_words 0;
      kstate_buf = Array.make (1 + kstate_cap) 0;
      archive = [];
    }
  in
  { medium; cost; slots = Array.init nprocs make_slot; history; excluded }

let vista t ~pid = t.slots.(pid).vista

let checkpoints t ~pid = Ft_stablemem.Vista.commits t.slots.(pid).vista

let has_checkpoint t ~pid = checkpoints t ~pid > 0

(* Take a checkpoint of [machine] (incremental in its dirty pages) and the
   kernel state; returns the simulated cost in nanoseconds.

   The persisted transaction is word-granular: every range goes through
   Vista's diff mode, so only the words that actually changed since the
   last checkpoint are logged and stored (a page dirtied by one store
   costs one small run, not a whole page of log traffic).  The CHARGED
   cost is untouched: the ns model still charges a COW trap per dirty
   page and a copy per page word, exactly as Vista's page-granular COW
   on a real address space would — this function is the OCaml process's
   hot path, not the paper's cost model. *)
let commit ?(out_seq = 0) t ~pid ~(machine : Ft_vm.Machine.t) ~kstate =
  let s = t.slots.(pid) in
  let heap = Ft_vm.Machine.heap machine in
  let page_size = Ft_vm.Memory.page_size heap in
  let dirty =
    List.filter (fun p -> not (t.excluded p)) (Ft_vm.Memory.dirty_pages heap)
  in
  let v = s.vista in
  Ft_stablemem.Vista.begin_tx v;
  (* Heap: only pages dirtied since the last checkpoint, staged through
     the per-slot scratch page. *)
  List.iter
    (fun p ->
      Ft_vm.Memory.blit_page_into heap p s.page_buf;
      Ft_stablemem.Vista.write_sub ~diff:true v ~off:(p * page_size)
        ~src:s.page_buf ~spos:0 ~len:page_size)
    dirty;
  (* Live stack prefix, straight from the machine's stack array. *)
  let sp = machine.Ft_vm.Machine.sp in
  if sp > 0 then
    Ft_stablemem.Vista.write_sub ~diff:true v ~off:s.stack_base
      ~src:machine.Ft_vm.Machine.stack ~spos:0 ~len:sp;
  (* Machine metadata, staged in the slot's scratch buffer. *)
  let nregs = Ft_vm.Instr.num_regs in
  Array.blit machine.Ft_vm.Machine.regs 0 s.meta_buf 0 nregs;
  s.meta_buf.(nregs) <- Ft_vm.Machine.pc machine;
  s.meta_buf.(nregs + 1) <- sp;
  s.meta_buf.(nregs + 2) <- machine.Ft_vm.Machine.fp;
  s.meta_buf.(nregs + 3) <- Ft_vm.Machine.icount machine;
  s.meta_buf.(nregs + 4) <- machine.Ft_vm.Machine.signal_handler;
  s.meta_buf.(nregs + 5) <- (if machine.Ft_vm.Machine.in_signal then 1 else 0);
  Ft_stablemem.Vista.write_sub ~diff:true v ~off:s.meta_base ~src:s.meta_buf
    ~spos:0 ~len:meta_words;
  (* Kernel state, serialized to words so restore needs nothing but the
     region. *)
  let kw = Ft_os.Kernel.kstate_to_words kstate in
  let klen = Array.length kw in
  if klen > s.kstate_cap then
    invalid_arg "Checkpointer.commit: kernel state exceeds its region area";
  s.kstate_buf.(0) <- klen;
  Array.blit kw 0 s.kstate_buf 1 klen;
  Ft_stablemem.Vista.write_sub ~diff:true v ~off:s.kstate_base
    ~src:s.kstate_buf ~spos:0 ~len:(1 + klen);
  Ft_stablemem.Vista.commit v;
  Ft_vm.Memory.clear_dirty heap;
  if t.history > 0 then begin
    let g =
      { g_snap = Ft_vm.Machine.snapshot machine; g_kwords = kw;
        g_out_seq = out_seq }
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    s.archive <- take t.history (g :: s.archive)
  end;
  let words =
    (List.length dirty * page_size) + sp + meta_words + t.cost.kstate_words
  in
  match t.medium with
  | Reliable_memory ->
      t.cost.base_ns
      + (List.length dirty * t.cost.page_trap_ns)
      + (words * t.cost.word_copy_ns)
  | Disk d ->
      (* COW traps still happen; the synchronous log write dominates. *)
      t.cost.base_ns
      + (List.length dirty * t.cost.page_trap_ns)
      + Ft_stablemem.Disk.commit_cost d ~words

(* Pessimistic logging of an ND event's result: the record must be stable
   before the event's effects can propagate, so on DC-disk each log write
   is a synchronous disk access (the reason the -LOG protocols still pay
   double-digit overheads on DC-disk in Figure 8). *)
let log_cost t ~words =
  match t.medium with
  | Reliable_memory -> 1_000 + (words * t.cost.word_copy_ns)
  | Disk d -> Ft_stablemem.Disk.write_cost d ~words

(* Restore [machine] (and return the kernel state) from the last
   checkpoint, purely from region words.  Returns the simulated recovery
   cost. *)
let restore t ~pid ~(machine : Ft_vm.Machine.t) =
  let s = t.slots.(pid) in
  if not (has_checkpoint t ~pid) then
    invalid_arg "Checkpointer.restore: no checkpoint";
  (* A crash mid-commit leaves a published undo log; Vista recovery rolls
     it back to the previous checkpoint. *)
  Ft_stablemem.Vista.recover s.vista;
  let region = Ft_stablemem.Vista.region s.vista in
  let heap = Ft_stablemem.Rio.sub region ~off:0 ~len:s.heap_words in
  let meta = Ft_stablemem.Rio.sub region ~off:s.meta_base ~len:meta_words in
  let nregs = Ft_vm.Instr.num_regs in
  let sp = meta.(nregs + 1) in
  let stack = Ft_stablemem.Rio.sub region ~off:s.stack_base ~len:sp in
  let snap =
    {
      Ft_vm.Machine.s_code_len = 0;
      s_pc = meta.(nregs);
      s_regs = Array.sub meta 0 nregs;
      s_stack = stack;
      s_sp = sp;
      s_fp = meta.(nregs + 2);
      s_heap = heap;
      s_icount = meta.(nregs + 3);
      s_signal_handler = meta.(nregs + 4);
      s_in_signal = meta.(nregs + 5) = 1;
    }
  in
  Ft_vm.Machine.restore machine snap;
  let klen = Ft_stablemem.Rio.read region s.kstate_base in
  if klen < 0 || klen > s.kstate_cap then
    invalid_arg "Checkpointer.restore: corrupt kernel state";
  let kstate =
    Ft_os.Kernel.kstate_of_words
      (Ft_stablemem.Rio.sub region ~off:(s.kstate_base + 1) ~len:klen)
  in
  let words = s.heap_words + sp + meta_words + t.cost.kstate_words in
  let cost =
    match t.medium with
    | Reliable_memory -> t.cost.base_ns + (words * t.cost.word_copy_ns)
    | Disk d -> Ft_stablemem.Disk.write_cost d ~words
  in
  (kstate, cost)

let history_depth t ~pid = List.length t.slots.(pid).archive

(* Deep rollback (escalation rung L1): deliberately abandon the last
   [back] committed generations and reinstate an earlier one.  The
   archived machine image is restored and then re-committed IN FULL into
   the Vista region — every heap page, the stack, the metadata and the
   kernel state — as one transaction, so subsequent incremental commits
   and restores see a region indistinguishable from one that had simply
   committed that generation last.  The full transaction is exactly the
   worst case [log_area_words] is sized for, and a crash at any word of
   it recovers to the pre-rollback generation: Consistency is never at
   risk, only whose work is lost. *)
let rollback t ~pid ~(machine : Ft_vm.Machine.t) ~back =
  let s = t.slots.(pid) in
  if back < 1 then invalid_arg "Checkpointer.rollback: back < 1";
  match List.nth_opt s.archive back with
  | None -> None
  | Some g ->
      (* A crash may have interrupted a commit: roll its partial
         transaction back first, as restore does. *)
      Ft_stablemem.Vista.recover s.vista;
      Ft_vm.Machine.restore machine g.g_snap;
      let heap = Ft_vm.Machine.heap machine in
      let page_size = Ft_vm.Memory.page_size heap in
      let npages = (s.heap_words + page_size - 1) / page_size in
      let v = s.vista in
      Ft_stablemem.Vista.begin_tx v;
      for p = 0 to npages - 1 do
        if not (t.excluded p) then begin
          Ft_vm.Memory.blit_page_into heap p s.page_buf;
          Ft_stablemem.Vista.write_sub ~diff:true v ~off:(p * page_size)
            ~src:s.page_buf ~spos:0 ~len:page_size
        end
      done;
      let sp = machine.Ft_vm.Machine.sp in
      if sp > 0 then
        Ft_stablemem.Vista.write_sub ~diff:true v ~off:s.stack_base
          ~src:machine.Ft_vm.Machine.stack ~spos:0 ~len:sp;
      let nregs = Ft_vm.Instr.num_regs in
      Array.blit machine.Ft_vm.Machine.regs 0 s.meta_buf 0 nregs;
      s.meta_buf.(nregs) <- Ft_vm.Machine.pc machine;
      s.meta_buf.(nregs + 1) <- sp;
      s.meta_buf.(nregs + 2) <- machine.Ft_vm.Machine.fp;
      s.meta_buf.(nregs + 3) <- Ft_vm.Machine.icount machine;
      s.meta_buf.(nregs + 4) <- machine.Ft_vm.Machine.signal_handler;
      s.meta_buf.(nregs + 5) <-
        (if machine.Ft_vm.Machine.in_signal then 1 else 0);
      Ft_stablemem.Vista.write_sub ~diff:true v ~off:s.meta_base
        ~src:s.meta_buf ~spos:0 ~len:meta_words;
      let klen = Array.length g.g_kwords in
      s.kstate_buf.(0) <- klen;
      Array.blit g.g_kwords 0 s.kstate_buf 1 klen;
      Ft_stablemem.Vista.write_sub ~diff:true v ~off:s.kstate_base
        ~src:s.kstate_buf ~spos:0 ~len:(1 + klen);
      Ft_stablemem.Vista.commit v;
      Ft_vm.Memory.clear_dirty heap;
      (* Drop the sacrificed generations; the reinstated one stays
         newest (it matches the region again). *)
      let rec drop n l = if n = 0 then l else
        match l with [] -> [] | _ :: rest -> drop (n - 1) rest
      in
      s.archive <- drop back s.archive;
      let kstate = Ft_os.Kernel.kstate_of_words g.g_kwords in
      (* Charged cost: one full restore plus one worst-case commit —
         rung L1 is deliberately expensive. *)
      let words = s.heap_words + sp + meta_words + t.cost.kstate_words in
      let cost =
        match t.medium with
        | Reliable_memory ->
            (2 * t.cost.base_ns)
            + (npages * t.cost.page_trap_ns)
            + (2 * words * t.cost.word_copy_ns)
        | Disk d ->
            t.cost.base_ns
            + (npages * t.cost.page_trap_ns)
            + (2 * Ft_stablemem.Disk.write_cost d ~words)
      in
      Some (kstate, cost, g.g_out_seq)
