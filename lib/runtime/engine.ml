(** The execution engine — now a thin facade over a 1-tenant
    {!Scheduler}.  The scheduler's [step] is one iteration of the loop
    that used to live here, so this facade performs the byte-identical
    sequence of machine, kernel, checkpointer and RNG operations the
    monolithic engine did; the golden tests pin that.

    Fault injectors ({!Ft_faults}) plug in through the [on_execute]
    machine hook, the activation/crash bookkeeping, and the
    [on_recover] callback (used to suppress a fault during recovery,
    mirroring the paper's end-to-end check in §4.1). *)

type config = Scheduler.config = {
  protocol : Ft_core.Protocol.spec;
  medium : Checkpointer.medium;
  cost : Checkpointer.cost_model;
  batch : int;
  deadline_ns : int option;
  max_instructions : int;
  auto_recover : bool;
  suppress_faults_on_recovery : bool;
  max_recovery_attempts : int;
  reboot_delay_ns : int;
  recovery_retry_delay_ns : int;
  kills : (int * int) list;
  kill_at_decision : (int * int) list;
  pick_override : (int list -> int option) option;
  twopc_timeout_ns : int;
  twopc_max_retries : int;
  heap_words : int;
  stack_words : int;
  page_size : int;
  expand_resources_on_recovery : bool;
  excluded_pages : int -> bool;
  policy : Ft_recovery.Policy.t option;
  quarantine : Ft_recovery.Quarantine.params option;
  recovery_kills : (Scheduler.recovery_stage * int) list;
  det_cap : int;
}

let default_config = Scheduler.default_config

type outcome = Scheduler.outcome =
  | Completed
  | Deadline
  | Recovery_failed
  | Deadlocked
  | Instruction_budget
  | Net_unreachable

type result = Scheduler.result = {
  outcome : outcome;
  trace : Ft_core.Trace.t;
  visible : int list;
  sim_time_ns : int;
  wall_instructions : int;
  commit_counts : int array;
  nd_counts : int array;
  logged_counts : int array;
  visible_counts : int array;
  recoveries : int;
  crashes : int;
  recovery_crashes : int;
  activation : (int * int) option;
  first_crash : (int * int) option;
  commit_after_activation : bool;
  memory_pokes : int;
  aborted_rounds : int;
  orphan_rollbacks : int;
  visible_times : (int * int * int) list;
  crash_times : (int * int) list;
  deep_rollbacks : int;
  perturbed_replays : int;
  ladder_peaks : int array;
  fault_classes : Ft_recovery.Classifier.verdict array;
  quarantine_trips : int;
  replay_mismatches : int;
  nested_crashes : int;
  cascade_resumes : int;
  det_high_water : int;
  det_forced_flushes : int;
}

type t = Scheduler.t

let create ?(cfg = default_config) ~kernel ~programs () =
  Scheduler.create ~tenants:[| (cfg, kernel, programs) |] ()

let machine t pid = Scheduler.machine t ~tid:0 ~pid
let kernel t = Scheduler.kernel t ~tid:0
let checkpointer t = Scheduler.checkpointer t ~tid:0
let set_on_recover t f = Scheduler.set_on_recover t ~tid:0 f
let set_on_replay t f = Scheduler.set_on_replay t ~tid:0 f
let record_activation t pid = Scheduler.record_activation t ~tid:0 pid
let activation_recorded t = Scheduler.activation_recorded t ~tid:0
let run t = (Scheduler.run t).(0)

(* Convenience: build, run, return. *)
let execute ?(cfg = default_config) ~kernel ~programs () =
  let t = create ~cfg ~kernel ~programs () in
  (t, run t)
