(** Line-oriented JSON-ish values: the wire format of the results store.

    One value per line, no pretty-printing, hand-rolled emitter and
    recursive-descent parser (no external JSON dependency).  The grammar
    is JSON plus three bare tokens — [nan], [inf], [-inf] — so that any
    float a job produces round-trips. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

(* --- emitter -------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that still round-trips; integral floats keep a
   trailing ".0" so the parser can tell them from ints. *)
let float_repr f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else
    let shortest = Printf.sprintf "%.12g" f in
    let s =
      if float_of_string shortest = f then shortest
      else Printf.sprintf "%.17g" f
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* --- parser --------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected %c" ch)

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else error c ("expected " ^ word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> error c "bad hex digit"

(* Decode a \uXXXX codepoint to UTF-8 (our emitter only produces these
   for control characters, but accept the full range). *)
let add_codepoint buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1
        | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1
        | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1
        | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1
        | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1
        | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1
        | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1
        | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1
        | Some 'u' ->
            if c.pos + 4 >= String.length c.src then error c "short \\u escape";
            let h i = hex_digit c c.src.[c.pos + 1 + i] in
            let cp = (h 0 lsl 12) lor (h 1 lsl 8) lor (h 2 lsl 4) lor h 3 in
            add_codepoint buf cp;
            c.pos <- c.pos + 5
        | _ -> error c "bad escape");
        loop ()
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error c ("bad number " ^ s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* integer overflow: fall back to float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> error c ("bad number " ^ s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' ->
      if
        c.pos + 3 <= String.length c.src
        && String.sub c.src c.pos 3 = "nan"
      then literal c "nan" (Float Float.nan)
      else literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'i' -> literal c "inf" (Float Float.infinity)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> error c "expected , or ]"
        in
        List (items [])
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> error c "expected , or }"
        in
        Obj (fields [])
  | Some '-' ->
      if
        c.pos + 4 <= String.length c.src
        && String.sub c.src c.pos 4 = "-inf"
      then literal c "-inf" (Float Float.neg_infinity)
      else parse_number c
  | Some ('0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected character %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ------------------------------------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None

let get_int ?(default = 0) k v =
  match Option.bind (member k v) to_int with Some i -> i | None -> default

let get_float ?(default = 0.) k v =
  match Option.bind (member k v) to_float with Some f -> f | None -> default

let get_str ?(default = "") k v =
  match Option.bind (member k v) to_str with Some s -> s | None -> default
