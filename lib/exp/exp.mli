(** The experiment runner: named, resumable, parallel sweeps over
    {!Job} lists, with results cached in a per-sweep {!Store}. *)

type sweep_result = {
  records : Store.record list;  (** one per job, in job order *)
  ran : int;  (** executed this invocation *)
  skipped : int;  (** already present in the warm store *)
  failed : int;  (** [Failed] rows among [records] *)
}

val default_out_dir : string
(** ["results"]. *)

val run_sweep :
  ?workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?fresh:bool ->
  ?out_dir:string ->
  ?quiet:bool ->
  name:string ->
  Job.t list ->
  sweep_result
(** Runs the jobs not already present in [out_dir/name.jsonl] on the
    pool, appending rows as they finish, and returns one record per job
    in job order.  [fresh] ignores and truncates the warm store.
    Progress lines and the skipped-job count go to stderr unless
    [quiet], keeping stdout byte-identical across [-j] settings. *)

val lookup : sweep_result -> string -> Jstore.value option
(** Key-indexed view of a sweep's completed values (failed rows are
    absent). *)

val eval : ?workers:int -> Job.t list -> (string * Jstore.value) list
(** Runs jobs with no store and no progress output; returns completed
    [key, value] pairs in job order. *)

val eval_lookup : ?workers:int -> Job.t list -> string -> Jstore.value option
(** [eval] packaged as a lookup function. *)
