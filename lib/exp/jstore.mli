(** Line-oriented JSON-ish values: the wire format of the results store.

    One value per line; hand-rolled emitter and parser, no external JSON
    dependency.  The grammar is JSON plus the bare tokens [nan], [inf]
    and [-inf] so every float round-trips. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Obj of (string * value) list

val to_string : value -> string
(** Single-line rendering; [to_string v |> of_string = Ok v] for every
    value (floats round-trip bit-exactly, NaN excepted by [=]). *)

val of_string : string -> (value, string) result

val member : string -> value -> value option
val to_int : value -> int option
val to_float : value -> float option

val to_str : value -> string option
val to_list : value -> value list option

val get_int : ?default:int -> string -> value -> int
(** [get_int k obj] is field [k] of [obj] as an int, or [default]. *)

val get_float : ?default:float -> string -> value -> float
val get_str : ?default:string -> string -> value -> string
