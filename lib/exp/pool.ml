(** Parallel job pool on OCaml 5 domains.

    A shared index into the job array stands in for a work queue (jobs
    are known up front, so "dequeue" is bumping a cursor under a mutex);
    [Condition] lets the coordinating thread sleep until workers finish.
    Results land in a slot per job, so the returned list is in input
    order no matter which domain finished first — the property the
    byte-identical-tables guarantee rests on.

    Failure containment mirrors the engine's own
    [max_recovery_attempts]: a raising job is retried a bounded number
    of times and then recorded as [Failed] instead of killing the sweep;
    a job that overruns the wall-clock timeout is recorded as [Failed]
    too.  (Domains cannot be cancelled, so the timeout is enforced when
    the job returns: an overrunning job wastes its worker but cannot
    corrupt the sweep.  Engine runs are bounded by [max_instructions],
    so true hangs do not arise from the harness workloads.) *)

type outcome =
  | Done of Jstore.value
  | Failed of { error : string; attempts : int }

type progress = {
  total : int;
  finished : int;
  failed : int;
  workers : int;
  elapsed_s : float;
  eta_s : float;  (** from mean job latency; infinite until one finishes *)
  utilization : float;  (** busy worker-time / (workers * elapsed) *)
}

let default_workers () = Domain.recommended_domain_count ()

type 'a shared = {
  mutex : Mutex.t;
  done_cond : Condition.t;
  mutable next : int;  (** cursor into the job array: the "queue" *)
  mutable finished : int;
  mutable failed : int;
  mutable busy_s : float;
  mutable live : int;
      (** worker domains still running: the coordinator must stop
          waiting when every worker has died, or a sweep whose workers
          were all killed by asynchronous exceptions would hang *)
}

let run ?workers ?(timeout_s = Float.infinity) ?(retries = 1) ?on_progress
    (jobs : Job.t list) =
  let arr = Array.of_list jobs in
  let n = Array.length arr in
  let workers =
    max 1 (min (match workers with Some w -> w | None -> default_workers ())
             (max 1 n))
  in
  let results = Array.make n None in
  let sh =
    {
      mutex = Mutex.create ();
      done_cond = Condition.create ();
      next = 0;
      finished = 0;
      failed = 0;
      busy_s = 0.;
      live = 0;
    }
  in
  let t0 = Unix.gettimeofday () in
  let snapshot () =
    (* call with [sh.mutex] held *)
    let elapsed = Unix.gettimeofday () -. t0 in
    {
      total = n;
      finished = sh.finished;
      failed = sh.failed;
      workers;
      elapsed_s = elapsed;
      eta_s =
        (if sh.finished = 0 then Float.infinity
         else
           elapsed /. float_of_int sh.finished
           *. float_of_int (n - sh.finished));
      utilization =
        (if elapsed <= 0. then 0.
         else sh.busy_s /. (float_of_int workers *. elapsed));
    }
  in
  (* One job, with bounded retry and post-hoc timeout check.  The
     timeout bounds each attempt on its own — a retry starts a fresh
     clock, so a slow-but-within-limit attempt after a failed one is
     not misreported as a timeout.  The returned duration still covers
     all attempts (it feeds the utilization accounting). *)
  let attempt_job (j : Job.t) =
    let t_first = Unix.gettimeofday () in
    let rec go attempts =
      let started = Unix.gettimeofday () in
      match j.Job.run () with
      | v ->
          let dur = Unix.gettimeofday () -. started in
          if dur > timeout_s then
            ( Failed
                {
                  error =
                    Printf.sprintf "timeout: ran %.1f s (limit %.1f s)" dur
                      timeout_s;
                  attempts;
                },
              Unix.gettimeofday () -. t_first )
          else (Done v, Unix.gettimeofday () -. t_first)
      | exception e ->
          if attempts <= retries then go (attempts + 1)
          else
            (Failed { error = Printexc.to_string e; attempts },
             Unix.gettimeofday () -. t_first)
    in
    go 1
  in
  let worker () =
    let rec loop () =
      Mutex.lock sh.mutex;
      let idx = sh.next in
      if idx < n then sh.next <- idx + 1;
      Mutex.unlock sh.mutex;
      if idx < n then begin
        let outcome, dur =
          (* [attempt_job] already confines exceptions raised by the job
             itself; this layer confines what it cannot — asynchronous
             exceptions (Out_of_memory, Stack_overflow) landing in the
             retry bookkeeping — so a worker domain survives anything a
             job can throw at it and the sweep continues. *)
          try attempt_job arr.(idx)
          with e ->
            ( Failed
                {
                  error = "worker exception: " ^ Printexc.to_string e;
                  attempts = 0;
                },
              0. )
        in
        Mutex.lock sh.mutex;
        results.(idx) <- Some (outcome, dur);
        sh.finished <- sh.finished + 1;
        (match outcome with
        | Failed _ -> sh.failed <- sh.failed + 1
        | Done _ -> ());
        sh.busy_s <- sh.busy_s +. dur;
        (match on_progress with
        | Some f -> ( try f (snapshot ()) with _ -> ())
        | None -> ());
        Condition.signal sh.done_cond;
        Mutex.unlock sh.mutex;
        loop ()
      end
    in
    loop ()
  in
  if workers = 1 then
    (* serial path: run in the calling domain, no spawn overhead *)
    worker ()
  else begin
    sh.live <- workers;
    let guarded_worker () =
      (* Last line of defence: whatever kills a worker, its death is
         recorded and the coordinator is woken, so the sweep ends with
         every unrun job reported as [Failed] instead of hanging. *)
      (try worker () with _ -> ());
      Mutex.lock sh.mutex;
      sh.live <- sh.live - 1;
      Condition.signal sh.done_cond;
      Mutex.unlock sh.mutex
    in
    let domains =
      Array.init workers (fun _ -> Domain.spawn guarded_worker)
    in
    (* Sleep until every slot is filled — or every worker is gone. *)
    Mutex.lock sh.mutex;
    while sh.finished < n && sh.live > 0 do
      Condition.wait sh.done_cond sh.mutex
    done;
    Mutex.unlock sh.mutex;
    Array.iter Domain.join domains
  end;
  Array.to_list
    (Array.mapi
       (fun i j ->
         match results.(i) with
         | Some (outcome, dur) -> (j, outcome, dur)
         | None -> (j, Failed { error = "job never ran"; attempts = 0 }, 0.))
       arr)
