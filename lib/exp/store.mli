(** Append-only results store: one JSONL file per sweep, flushed row by
    row, reloaded on startup so interrupted sweeps resume instead of
    redoing completed work. *)

type status = Completed | Failed of string

type record = {
  key : string;
  seed : int;
  status : status;
  value : Jstore.value;  (** [Null] for failed jobs *)
  duration_s : float;
}

type t

val load : ?fresh:bool -> dir:string -> sweep:string -> unit -> t
(** Opens (creating [dir] if needed) [dir/sweep.jsonl] and indexes its
    rows by key+seed.  [fresh] ignores existing contents and truncates
    the file on first append.  Torn or malformed lines are skipped. *)

val path : t -> string
val mem : t -> key:string -> seed:int -> bool
val find : t -> key:string -> seed:int -> record option
val size : t -> int
val records : t -> record list
(** All records, unordered. *)

val add : t -> record -> unit
(** Indexes the record and appends-and-flushes its row.  Thread-safe. *)

val close : t -> unit

val record_to_json : record -> Jstore.value
val record_of_json : Jstore.value -> record option
