(** One experiment job: a stable key, an explicit seed, and a thunk
    producing a serializable result.

    The key identifies the measurement (sweep-unique and stable across
    runs: it is the resume handle in the results store), the seed pins
    every random choice the thunk makes, and the thunk must be a pure
    function of (key, seed) — that is what makes parallel and serial
    sweeps byte-identical and warm re-runs sound. *)

type t = {
  key : string;  (** stable, sweep-unique identifier *)
  seed : int;  (** pins the job's RNG; part of the store identity *)
  run : unit -> Jstore.value;  (** deterministic given [seed] *)
}

let make ~key ~seed run = { key; seed; run }
