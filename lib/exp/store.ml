(** Append-only results store: one JSONL file per sweep.

    Completed job rows are appended (and flushed) as they finish, so a
    crashed or interrupted sweep resumes where it left off: on re-run,
    any job whose key+seed is already present is skipped — the same
    recover-don't-redo discipline the engine applies to its processes.
    A torn final line (crash mid-append) is ignored on load. *)

type status = Completed | Failed of string

type record = {
  key : string;
  seed : int;
  status : status;
  value : Jstore.value;  (** [Null] for failed jobs *)
  duration_s : float;
}

type t = {
  path : string;
  tbl : (string * int, record) Hashtbl.t;
  mutable oc : out_channel option;  (** opened on first append *)
  fresh : bool;  (** truncate rather than append on first write *)
  mutex : Mutex.t;
}

let record_to_json r =
  Jstore.Obj
    [
      ("key", Jstore.String r.key);
      ("seed", Jstore.Int r.seed);
      ( "status",
        Jstore.String (match r.status with Completed -> "ok" | Failed _ -> "failed")
      );
      ( "error",
        match r.status with
        | Failed e -> Jstore.String e
        | Completed -> Jstore.Null );
      ("s", Jstore.Float r.duration_s);
      ("value", r.value);
    ]

let record_of_json v =
  match Jstore.member "key" v with
  | Some (Jstore.String key) ->
      let status =
        match Jstore.get_str ~default:"ok" "status" v with
        | "ok" -> Completed
        | _ -> Failed (Jstore.get_str ~default:"unknown error" "error" v)
      in
      Some
        {
          key;
          seed = Jstore.get_int "seed" v;
          status;
          value = Option.value ~default:Jstore.Null (Jstore.member "value" v);
          duration_s = Jstore.get_float "s" v;
        }
  | _ -> None

let path t = t.path

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let load ?(fresh = false) ~dir ~sweep () =
  mkdir_p dir;
  let path = Filename.concat dir (sweep ^ ".jsonl") in
  let tbl = Hashtbl.create 64 in
  if (not fresh) && Sys.file_exists path then begin
    let ic = open_in path in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Jstore.of_string line with
           | Ok v -> (
               match record_of_json v with
               | Some r -> Hashtbl.replace tbl (r.key, r.seed) r
               | None -> ())
           | Error _ -> ()  (* torn or foreign line: skip *)
       done
     with End_of_file -> ());
    close_in ic
  end;
  { path; tbl; oc = None; fresh; mutex = Mutex.create () }

let mem t ~key ~seed = Hashtbl.mem t.tbl (key, seed)
let find t ~key ~seed = Hashtbl.find_opt t.tbl (key, seed)
let size t = Hashtbl.length t.tbl

let records t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.tbl []

let channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
      let flags =
        if t.fresh then [ Open_wronly; Open_creat; Open_trunc ]
        else [ Open_wronly; Open_creat; Open_append ]
      in
      let oc = open_out_gen flags 0o644 t.path in
      t.oc <- Some oc;
      oc

let add t r =
  Mutex.lock t.mutex;
  Hashtbl.replace t.tbl (r.key, r.seed) r;
  let oc = channel t in
  output_string oc (Jstore.to_string (record_to_json r));
  output_char oc '\n';
  (* flush per row: a ^C loses at most the in-flight record *)
  flush oc;
  Mutex.unlock t.mutex

let close t =
  match t.oc with
  | Some oc ->
      close_out oc;
      t.oc <- None
  | None -> ()
