(** Per-job counters lifted from {!Ft_runtime.Engine.result}, plus the
    arithmetic the sweep observability surface needs (aggregation, rates,
    one-line summaries). *)

type t = {
  commits : int;  (** protocol-triggered commits, all processes *)
  max_commits : int;  (** largest per-process count (xpilot's rate metric) *)
  nd_events : int;
  logged_events : int;
  recoveries : int;
  crashes : int;
  sim_time_ns : int;
}

let zero =
  {
    commits = 0;
    max_commits = 0;
    nd_events = 0;
    logged_events = 0;
    recoveries = 0;
    crashes = 0;
    sim_time_ns = 0;
  }

let of_result (r : Ft_runtime.Engine.result) =
  let sum = Array.fold_left ( + ) 0 in
  {
    commits = sum r.Ft_runtime.Engine.commit_counts;
    max_commits = Array.fold_left max 0 r.Ft_runtime.Engine.commit_counts;
    nd_events = sum r.Ft_runtime.Engine.nd_counts;
    logged_events = sum r.Ft_runtime.Engine.logged_counts;
    recoveries = r.Ft_runtime.Engine.recoveries;
    crashes = r.Ft_runtime.Engine.crashes;
    sim_time_ns = r.Ft_runtime.Engine.sim_time_ns;
  }

let add a b =
  {
    commits = a.commits + b.commits;
    max_commits = max a.max_commits b.max_commits;
    nd_events = a.nd_events + b.nd_events;
    logged_events = a.logged_events + b.logged_events;
    recoveries = a.recoveries + b.recoveries;
    crashes = a.crashes + b.crashes;
    sim_time_ns = a.sim_time_ns + b.sim_time_ns;
  }

let sim_seconds m = float_of_int m.sim_time_ns /. 1e9

let commit_rate m =
  let s = sim_seconds m in
  if s <= 0. then 0. else float_of_int m.max_commits /. s

let to_json m =
  Jstore.Obj
    [
      ("commits", Jstore.Int m.commits);
      ("max_commits", Jstore.Int m.max_commits);
      ("nd", Jstore.Int m.nd_events);
      ("logged", Jstore.Int m.logged_events);
      ("recoveries", Jstore.Int m.recoveries);
      ("crashes", Jstore.Int m.crashes);
      ("sim_ns", Jstore.Int m.sim_time_ns);
    ]

let of_json v =
  {
    commits = Jstore.get_int "commits" v;
    max_commits = Jstore.get_int "max_commits" v;
    nd_events = Jstore.get_int "nd" v;
    logged_events = Jstore.get_int "logged" v;
    recoveries = Jstore.get_int "recoveries" v;
    crashes = Jstore.get_int "crashes" v;
    sim_time_ns = Jstore.get_int "sim_ns" v;
  }

(* --- exact quantiles ----------------------------------------------------- *)

(* Nearest-rank: the smallest sample value with at least ceil(q*n) of
   the sorted sample at or below it.  Exact on tiny samples (n=1 returns
   the sample; n=2 puts p50 on the first element) and under ties —
   no interpolation, every answer is a value that actually occurred. *)

let nearest_rank ~n q =
  if n <= 0 then invalid_arg "Metrics.percentile: empty sample";
  if not (q > 0. && q <= 1.) then
    invalid_arg "Metrics.percentile: q outside (0, 1]";
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  max 1 (min n rank)

let percentile sample q =
  let a = Array.copy sample in
  Array.sort compare a;
  a.(nearest_rank ~n:(Array.length a) q - 1)

let p50 sample = percentile sample 0.50
let p99 sample = percentile sample 0.99
let p999 sample = percentile sample 0.999

let percentile_counts cells q =
  let cells = Array.copy cells in
  Array.sort compare cells;
  let n = Array.fold_left (fun acc (_, c) -> acc + c) 0 cells in
  let rank = nearest_rank ~n q in
  let rec scan i seen =
    let v, c = cells.(i) in
    let seen = seen + c in
    if seen >= rank then v else scan (i + 1) seen
  in
  scan 0 0

let summary m =
  Printf.sprintf
    "commits=%d nd=%d (logged %d) recoveries=%d crashes=%d sim=%.3fs"
    m.commits m.nd_events m.logged_events m.recoveries m.crashes
    (sim_seconds m)
