(** Parallel job pool on OCaml 5 domains: a shared queue guarded by
    [Mutex]/[Condition], bounded retry, and a per-job wall-clock
    timeout.  Results come back in input order regardless of completion
    order, so parallel and serial sweeps render identically. *)

type outcome =
  | Done of Jstore.value
  | Failed of { error : string; attempts : int }
      (** the job raised on every attempt, overran the timeout, or never
          ran; the sweep continues without it *)

type progress = {
  total : int;
  finished : int;
  failed : int;
  workers : int;
  elapsed_s : float;
  eta_s : float;  (** from mean job latency; infinite until one finishes *)
  utilization : float;  (** busy worker-time / (workers * elapsed) *)
}

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?on_progress:(progress -> unit) ->
  Job.t list ->
  (Job.t * outcome * float) list
(** Runs the jobs on [workers] domains (default
    {!default_workers}; [1] runs in the calling domain with no spawn).
    Each returned triple carries the job, its outcome and its wall-clock
    duration in seconds, in input order.  A job raising is retried up to
    [retries] more times (default 1) before it becomes [Failed]; a job
    exceeding [timeout_s] (default none) is recorded as [Failed] when it
    returns — domains cannot be cancelled, so an overrunning job wastes
    its worker but cannot corrupt the sweep.  [on_progress] is invoked
    under the pool lock after every job completion. *)
