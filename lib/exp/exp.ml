(** The experiment runner: ties jobs, pool and store into resumable
    sweeps.

    A sweep is a named list of jobs.  [run_sweep] skips every job whose
    key+seed is already in the sweep's results store, runs the rest on
    the pool, appends their rows as they finish, and returns one record
    per job in job-list order — so the harness render functions see the
    same rows whether the results were computed serially, in parallel,
    or in an earlier process entirely. *)

type sweep_result = {
  records : Store.record list;  (** one per job, in job order *)
  ran : int;
  skipped : int;  (** already present in the warm store *)
  failed : int;
}

let default_out_dir = "results"

let progress_printer ~name =
  fun (p : Pool.progress) ->
    let eta =
      if Float.is_finite p.Pool.eta_s then
        Printf.sprintf "%.0fs" p.Pool.eta_s
      else "?"
    in
    Printf.eprintf
      "\r[%s] %d/%d jobs done%s  elapsed %.0fs  eta %s  util %.0f%%  (-j %d)  %!"
      name p.Pool.finished p.Pool.total
      (if p.Pool.failed > 0 then Printf.sprintf " (%d failed)" p.Pool.failed
       else "")
      p.Pool.elapsed_s eta
      (100. *. p.Pool.utilization)
      p.Pool.workers

let record_of_pool_result (j : Job.t) outcome dur =
  match outcome with
  | Pool.Done v ->
      {
        Store.key = j.Job.key;
        seed = j.Job.seed;
        status = Store.Completed;
        value = v;
        duration_s = dur;
      }
  | Pool.Failed { error; attempts } ->
      {
        Store.key = j.Job.key;
        seed = j.Job.seed;
        status = Store.Failed (Printf.sprintf "%s (after %d attempts)" error attempts);
        value = Jstore.Null;
        duration_s = dur;
      }

let run_sweep ?workers ?timeout_s ?retries ?(fresh = false)
    ?(out_dir = default_out_dir) ?(quiet = false) ~name jobs =
  let store = Store.load ~fresh ~dir:out_dir ~sweep:name () in
  let todo =
    List.filter
      (fun j -> not (Store.mem store ~key:j.Job.key ~seed:j.Job.seed))
      jobs
  in
  let total = List.length jobs in
  let skipped = total - List.length todo in
  if (not quiet) && skipped > 0 then
    Printf.eprintf "[%s] warm store %s: skipped %d/%d completed jobs\n%!" name
      (Store.path store) skipped total;
  let on_progress = if quiet then None else Some (progress_printer ~name) in
  let results = Pool.run ?workers ?timeout_s ?retries ?on_progress todo in
  if (not quiet) && todo <> [] then prerr_newline ();
  List.iter
    (fun (j, outcome, dur) ->
      Store.add store (record_of_pool_result j outcome dur))
    results;
  Store.close store;
  let records =
    List.map
      (fun j ->
        match Store.find store ~key:j.Job.key ~seed:j.Job.seed with
        | Some r -> r
        | None ->
            (* unreachable: every todo job was just added *)
            {
              Store.key = j.Job.key;
              seed = j.Job.seed;
              status = Store.Failed "missing from store";
              value = Jstore.Null;
              duration_s = 0.;
            })
      jobs
  in
  let failed =
    List.fold_left
      (fun n (r : Store.record) ->
        match r.Store.status with Store.Failed _ -> n + 1 | _ -> n)
      0 records
  in
  { records; ran = List.length todo; skipped; failed }

let lookup sr =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Store.record) ->
      match r.Store.status with
      | Store.Completed -> Hashtbl.replace tbl r.Store.key r.Store.value
      | Store.Failed _ -> ())
    sr.records;
  fun key -> Hashtbl.find_opt tbl key

let eval ?workers jobs =
  let results = Pool.run ?workers jobs in
  List.filter_map
    (fun ((j : Job.t), outcome, _) ->
      match outcome with
      | Pool.Done v -> Some (j.Job.key, v)
      | Pool.Failed _ -> None)
    results

let eval_lookup ?workers jobs =
  let assoc = eval ?workers jobs in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) assoc;
  fun key -> Hashtbl.find_opt tbl key
