(** One experiment job: a stable key, an explicit seed, and a thunk
    producing a serializable result.  The thunk must be a deterministic
    function of (key, seed); that is what makes parallel and serial
    sweeps byte-identical and warm re-runs sound. *)

type t = {
  key : string;  (** stable, sweep-unique identifier *)
  seed : int;  (** pins the job's RNG; part of the store identity *)
  run : unit -> Jstore.value;  (** deterministic given [seed] *)
}

val make : key:string -> seed:int -> (unit -> Jstore.value) -> t
