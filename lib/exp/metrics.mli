(** Per-job counters lifted from {!Ft_runtime.Engine.result} — the
    observability surface each sweep records alongside its results. *)

type t = {
  commits : int;  (** protocol-triggered commits, all processes *)
  max_commits : int;  (** largest per-process count (xpilot's rate metric) *)
  nd_events : int;
  logged_events : int;
  recoveries : int;
  crashes : int;
  sim_time_ns : int;
}

val zero : t
val of_result : Ft_runtime.Engine.result -> t

val add : t -> t -> t
(** Componentwise totals ([max_commits] takes the max). *)

val sim_seconds : t -> float

val commit_rate : t -> float
(** Largest per-process commits per simulated second. *)

val to_json : t -> Jstore.value
val of_json : Jstore.value -> t
val summary : t -> string

val percentile : int array -> float -> int
(** [percentile sample q] — exact nearest-rank quantile, [0 < q <= 1]:
    the smallest sample value with at least [ceil (q * n)] of the sorted
    sample at or below it.  No interpolation, so every answer is a value
    that actually occurred; exact on tiny samples ([n = 1] returns the
    sample, [n = 2] puts p50 on the first element) and under ties.  The
    input is not modified.  Raises [Invalid_argument] on an empty sample
    or [q] outside [(0, 1]]. *)

val p50 : int array -> int
val p99 : int array -> int
val p999 : int array -> int

val percentile_counts : (int * int) array -> float -> int
(** Nearest-rank quantile over a [(value, count)] histogram — the shape
    sharded campaigns merge without shipping every sample.  Cells need
    not be sorted or distinct; counts must be non-negative and sum to a
    positive total.  Equivalent to expanding each cell [count] times and
    calling {!percentile}. *)
