(** Per-job counters lifted from {!Ft_runtime.Engine.result} — the
    observability surface each sweep records alongside its results. *)

type t = {
  commits : int;  (** protocol-triggered commits, all processes *)
  max_commits : int;  (** largest per-process count (xpilot's rate metric) *)
  nd_events : int;
  logged_events : int;
  recoveries : int;
  crashes : int;
  sim_time_ns : int;
}

val zero : t
val of_result : Ft_runtime.Engine.result -> t

val add : t -> t -> t
(** Componentwise totals ([max_commits] takes the max). *)

val sim_seconds : t -> float

val commit_rate : t -> float
(** Largest per-process commits per simulated second. *)

val to_json : t -> Jstore.value
val of_json : Jstore.value -> t
val summary : t -> string
