(** Serve: the fleet-scale serving campaign — hundreds to thousands of
    postgres tenants sharded over {!Ft_runtime.Scheduler} instances
    under continuous seeded fault injection (Poisson kills, optional
    netstorm weather on a shard-shared transport), reporting the
    operator's view: exact p50/p99/p999 request latency against an
    open-loop arrival schedule, goodput, useful work per unit cost
    (Dwork–Halpern–Waarts), and MTTR after each crash.  Oracle-checked:
    per-tenant Consistency against a fault-free reference and the
    visible half of Save-work.  Shards are pure {!Ft_exp.Exp} jobs, so
    serial and [-j N] campaigns are byte-identical. *)

type params = {
  procs : int;  (** tenant instances in the fleet *)
  requests : int;  (** total queries, fleet-wide *)
  crash_rate : float;
      (** expected kills per tenant per simulated second *)
  storm : Netstorm.point option;
      (** weather on the shard-shared transport (loss/dup/reorder) *)
  seed : int;
  shard_size : int;  (** tenants per scheduler/job *)
  interval_ns : int;  (** open-loop arrival interval per tenant *)
  keyspace : int;
  check_every : int;  (** postgres sanity-check cadence *)
  poison : int;
      (** crash-looping tenants: the first [poison] tenants carry a
          deterministic Bohrbug (a wild jump on the hot path) that every
          generic replay re-executes, and the per-tenant quarantine
          circuit breaker is armed fleet-wide — the breaker parks the
          loopers while healthy tenants' tail latency stays bounded *)
  recovery_crash_rate : float;
      (** expected nested failures per tenant per campaign: crashes
          injected into the recovery path itself (mid-restore,
          mid-cascade, mid-commit-round) via {!Ft_faults.Recovery_plan} *)
  det_cap : int;
      (** hard cap on live determinants per tenant (0 = uncapped);
          past it the kernel forces a flush instead of growing the log *)
}

val default_params : params

val smoke_params : params
(** Small, fast, still multi-shard: the CI gate. *)

val queries_per_tenant : params -> int

val fleet :
  ?protocol:Ft_core.Protocol.spec ->
  ?crash_rate:float ->
  tenants:int ->
  queries_per_tenant:int ->
  seed:int ->
  unit ->
  Ft_runtime.Scheduler.t
(** A ready-to-run in-process multi-tenant scheduler over the serve
    workload — the bench micros time {!Ft_runtime.Scheduler.run} on
    it. *)

val jobs :
  ?protocols:Ft_core.Protocol.spec list -> params -> Ft_exp.Job.t list
(** One job per (protocol, shard); each steps its tenants in one
    scheduler and runs the per-tenant fault-free references. *)

type proto_summary = {
  s_protocol : string;
  s_tenants : int;
  s_requests : int;
  s_acked : int;  (** distinct requests acknowledged *)
  s_crashes : int;
  s_recoveries : int;
  s_failed : int;  (** tenants that did not complete *)
  s_sim_ns : int;  (** fleet wall: max tenant sim time *)
  s_instr : int;
  s_ref_instr : int;
  s_p50_ns : int;
  s_p99_ns : int;
  s_p999_ns : int;  (** exact nearest-rank latency percentiles *)
  s_mttr_count : int;
  s_mttr_mean_ns : int;
  s_mttr_max_ns : int;
  s_goodput : float;  (** acked requests per simulated second *)
  s_work_per_minstr : float;
      (** acked requests per million instructions executed — replay is
          waste, so this is the work-per-unit-cost ranking metric *)
  s_overhead : float;  (** instructions vs the fault-free reference *)
  s_quarantined : int;  (** tenants the circuit breaker parked *)
  s_crash_loop_events : int;  (** breaker trips across the fleet *)
  s_nested_crashes : int;  (** crashes that landed inside recovery *)
  s_cascade_resumes : int;
      (** rollback cascades resumed from persisted progress rather than
          restarted after a nested crash *)
  s_det_high_water : int;  (** peak live determinants, any tenant *)
  s_det_forced_flushes : int;  (** cap-triggered flushes, fleet-wide *)
  s_mttr_nested_count : int;
  s_mttr_nested_mean_ns : int;
      (** repair time of tenants whose recovery path itself crashed *)
  s_bad : string list;  (** oracle violations *)
}

type report = {
  params : params;
  summaries : proto_summary list;
  missing : string list;
}

val clean : report -> bool
(** No oracle violations and no missing shards. *)

val of_records :
  ?protocols:Ft_core.Protocol.spec list ->
  params ->
  (string -> Ft_exp.Jstore.value option) ->
  report

val run :
  ?workers:int ->
  ?out_dir:string ->
  ?fresh:bool ->
  ?quiet:bool ->
  ?protocols:Ft_core.Protocol.spec list ->
  params ->
  report
(** The campaign.  With [out_dir], runs as a named resumable store
    sweep ([serve.jsonl]); without, evaluates in memory. *)

val render : report -> string

val bench_kv : report -> (string * Ft_exp.Jstore.value) list
(** [serve_<protocol>_{p50_ns,p99_ns,p999_ns,goodput,mttr_ns,
    work_per_minstr,quarantined_tenants,crash_loop_events,
    nested_crashes,det_high_water,det_forced_flushes}] pairs, plus the
    fleet-level [serve_mttr_nested_ns] (mean repair time pooled over
    tenants whose recovery path itself crashed). *)

val merge_bench : path:string -> report -> unit
(** Merge {!bench_kv} into a flat BENCH_RESULTS.json, preserving every
    other key (the CI schema gate requires the key set only to grow). *)
