(** Rescue campaign: what fraction of the "unrecoverable" app-fault mass
    each escalation rung reclaims (tentpole of the escalating-recovery
    work; complements {!Table1}'s negative result).

    Each cell (app x fault type x protocol x ladder) injects recurring
    faults via {!Ft_faults.App_injector.arm_recurring} with suppression
    off, runs under the named {!Ft_recovery.Policy} ladder, and keeps
    only crashed runs.  A run is {e rescued} when it completes with
    output consistent with the fault-free reference; its rung is the
    highest ladder rung the scheduler used.  Consistency must be clean
    at every rung — violations fail the campaign. *)

type app = Nvi | Postgres

val app_name : app -> string
val app_of_string : string -> app option

val ladders : string list
(** ["generic"; "deep"; "full"] — {!Ft_recovery.Policy.by_name} names. *)

type row = {
  app : app;
  fault_type : Ft_faults.Fault_type.t;
  protocol_name : string;
  ladder : string;
  trials : int;
  crashes : int;
  rescued_by_rung : int array;  (** length 3: rescues peaking at L0/L1/L2 *)
  unrescued : int;
  violations : int;
      (** output corruption or replay divergence on a run whose fault
          never activated — attributable only to the recovery machinery:
          must be 0 at every rung *)
  tainted : int;
      (** the injected fault escaped to the released output — the
          paper's wrong-output mass, unrescuable by any recovery *)
  absorbed : int;
      (** fault-induced replay divergences the sequenced egress absorbed
          (a replayed value disagreed with one already released; the
          released value stood and the user never saw the divergence) *)
  wrong_output : int;
  benign : int;
  deep_rollbacks : int;
  perturbed_replays : int;
  transient : int;
  heisenbug : int;
  bohrbug : int;
  sticky : int;
  work : int;
  instr : int;
  ref_work : int;
  ref_instr : int;
}

val rescued : row -> int
val rescued_frac : row -> float

val work_per_minstr : row -> float
(** Acked visible outputs per million instructions over crashed runs —
    the Dwork–Halpern–Waarts work-per-unit-cost with replay counted as
    pure cost. *)

val ref_work_per_minstr : row -> float

type spec = {
  apps : app list;
  protocols : Ft_core.Protocol.spec list;
  ladder_names : string list;
  fault_types : Ft_faults.Fault_type.t list;
  target_crashes : int;
  max_attempts : int;
  seed0 : int;
}

val default_spec : spec
(** Both apps, cpvs + cbndvs, all three ladders, all seven fault types,
    40 crashes per cell. *)

val smoke_spec : spec
(** CI gate: nvi only, generic vs full, 4 crashes per cell. *)

val jobs : spec -> Ft_exp.Job.t list
(** One resumable job per cell; trial seeds derive from cell identity,
    so sharded and serial sweeps agree byte for byte. *)

type report = { spec : spec; rows : row list; missing : string list }

val of_records : spec -> (string -> Ft_exp.Jstore.value option) -> report
val run :
  ?workers:int ->
  ?out_dir:string ->
  ?fresh:bool ->
  ?quiet:bool ->
  spec ->
  report

val clean : report -> bool
(** No missing cells and zero Consistency violations at every rung. *)

type ladder_summary = {
  l_name : string;
  l_crashes : int;
  l_rescued_by_rung : int array;
  l_unrescued : int;
  l_violations : int;
  l_work_per_minstr : float;
  l_ref_work_per_minstr : float;
}

val summaries : report -> ladder_summary list
val ladder_rescued_frac : ladder_summary -> float
val render : report -> string

val bench_kv : report -> (string * Ft_exp.Jstore.value) list
(** [rescue_rescued_frac], [rescue_generic_frac], [rescue_l2_rescues],
    [rescue_violations], [rescue_work_per_minstr]. *)

val merge_bench : path:string -> report -> unit
(** Merge {!bench_kv} into a BENCH_RESULTS.json, preserving every key it
    does not own. *)
