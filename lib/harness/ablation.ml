(** Ablations of the design choices DESIGN.md calls out, each one a
    measured version of a §2.6 claim:

    - {e crash early}: checking consistency more often shortens dangerous
      paths and lowers the Lose-work violation rate;
    - {e commit less state}: excluding recomputable pages from
      checkpoints shrinks commits (at the price of recomputation after
      recovery);
    - {e page size}: smaller COW pages shrink checkpoint payloads but pay
      more protection traps;
    - {e disk model}: how much of DC-disk's overhead is the synchronous
      access latency.

    Each study lists {!Ft_exp.Job.t}s and assembles its rows from stored
    job values, so the ablations run on the same parallel, resumable
    sweep machinery as the paper's tables. *)

(* --- crash early ---------------------------------------------------------- *)

type crash_early_row = {
  check_every : int;
  crashes : int;
  violations : int;
  violation_pct : float;
}

(* One campaign: violation rate of heap bit flips in nvi at one
   consistency-check cadence.  [seed] pins every trial
   (trial i uses seed + i), independent of the cadence's position in
   the sweep. *)
let crash_early_campaign ~check_every ~target_crashes ~max_attempts ~seed =
  let mk_workload () =
    Ft_apps.Nvi.workload
      ~params:{ Ft_apps.Nvi.small_params with Ft_apps.Nvi.check_every }
      ()
  in
  (* run a Table-1-style campaign against this variant *)
  let w = mk_workload () in
  let cfg = Table1.base_cfg w in
  let kernel = Ft_apps.Workload.kernel w in
  let _, ref_run =
    Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
  in
  let horizon = ref_run.Ft_runtime.Engine.wall_instructions in
  let crashes = ref 0 and violations = ref 0 and attempt = ref 0 in
  while !crashes < target_crashes && !attempt < max_attempts do
    let w = mk_workload () in
    let cfg =
      { (Table1.base_cfg w) with
        Ft_runtime.Engine.max_instructions = (40 * horizon) + 200_000 }
    in
    let kernel = Ft_apps.Workload.kernel w in
    let engine =
      Ft_runtime.Engine.create ~cfg ~kernel ~programs:w.programs ()
    in
    let rng = Random.State.make [| seed + !attempt |] in
    (match
       Ft_faults.App_injector.plan rng Ft_faults.Fault_type.Heap_bit_flip
         ~code:w.programs.(0) ~horizon
     with
    | Some plan ->
        Ft_faults.App_injector.arm engine ~pid:0 plan;
        let r = Ft_runtime.Engine.run engine in
        if
          r.Ft_runtime.Engine.first_crash <> None
          && r.Ft_runtime.Engine.outcome
             <> Ft_runtime.Engine.Instruction_budget
        then begin
          incr crashes;
          if r.Ft_runtime.Engine.commit_after_activation then incr violations
        end
    | None -> ());
    incr attempt
  done;
  {
    check_every;
    crashes = !crashes;
    violations = !violations;
    violation_pct =
      (if !crashes = 0 then 0.
       else 100. *. float_of_int !violations /. float_of_int !crashes);
  }

let crash_early_seed0 = 31_000

(* the cadence is the campaign's identity; fold it into the seed *)
let crash_early_seed ~check_every = crash_early_seed0 + (7 * check_every)

let crash_early_key ~target_crashes ~max_attempts ~check_every ~seed =
  Printf.sprintf "ablation/crash_early/every=%d/crashes=%d/attempts=%d/seed=%d"
    check_every target_crashes max_attempts seed

let crash_early_jobs ?(cadences = [ 1; 16; 1_000_000 ]) ?(target_crashes = 25)
    ?(max_attempts = 700) () =
  List.map
    (fun check_every ->
      let seed = crash_early_seed ~check_every in
      Ft_exp.Job.make
        ~key:(crash_early_key ~target_crashes ~max_attempts ~check_every ~seed)
        ~seed
        (fun () ->
          let r =
            crash_early_campaign ~check_every ~target_crashes ~max_attempts
              ~seed
          in
          Ft_exp.Jstore.Obj
            [
              ("check_every", Ft_exp.Jstore.Int r.check_every);
              ("crashes", Ft_exp.Jstore.Int r.crashes);
              ("violations", Ft_exp.Jstore.Int r.violations);
            ]))
    cadences

let crash_early_of_records ?(cadences = [ 1; 16; 1_000_000 ])
    ?(target_crashes = 25) ?(max_attempts = 700) lookup =
  List.map
    (fun check_every ->
      let seed = crash_early_seed ~check_every in
      match
        lookup (crash_early_key ~target_crashes ~max_attempts ~check_every ~seed)
      with
      | Some v ->
          let crashes = Ft_exp.Jstore.get_int "crashes" v in
          let violations = Ft_exp.Jstore.get_int "violations" v in
          {
            check_every;
            crashes;
            violations;
            violation_pct =
              (if crashes = 0 then 0.
               else 100. *. float_of_int violations /. float_of_int crashes);
          }
      | None ->
          { check_every; crashes = 0; violations = 0; violation_pct = 0. })
    cadences

let crash_early ?(cadences = [ 1; 16; 1_000_000 ]) ?(target_crashes = 25)
    ?(max_attempts = 700) () =
  crash_early_of_records ~cadences ~target_crashes ~max_attempts
    (Ft_exp.Exp.eval_lookup ~workers:1
       (crash_early_jobs ~cadences ~target_crashes ~max_attempts ()))

let render_crash_early rows =
  Report.section
    "Ablation: crash-early consistency checks vs Lose-work (2.6)"
  ^ Report.table
      ~headers:[ "check cadence"; "crashes"; "violations"; "%" ]
      ~rows:
        (List.map
           (fun r ->
             [
               (if r.check_every >= 1_000_000 then "never"
                else Printf.sprintf "every %d keystrokes" r.check_every);
               string_of_int r.crashes;
               string_of_int r.violations;
               Report.pct r.violation_pct;
             ])
           rows)
  ^ "Checking more often crashes the editor sooner after corruption,\n\
     leaving fewer commits on the dangerous path.\n"

(* --- commit less state ----------------------------------------------------- *)

type exclusion_row = {
  label : string;
  sim_time_ns : int;
  overhead_pct : float;
}

(* magic's framebuffer (pages >= fb_base/page) is fully re-rendered every
   command: excluding it from checkpoints loses nothing. *)
let exclusion_run ~commands ~excluded ~protocol =
  let params = { Ft_apps.Magic.small_params with Ft_apps.Magic.commands } in
  let fb_first_page = Ft_apps.Magic.fb_base / 64 in
  let w = Ft_apps.Magic.workload ~params () in
  let cfg =
    Ft_apps.Workload.engine_config w
      { Ft_runtime.Engine.default_config with
        protocol;
        medium = Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default;
        excluded_pages =
          (if excluded then fun p -> p >= fb_first_page else fun _ -> false) }
  in
  let kernel = Ft_apps.Workload.kernel w in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs () in
  r.Ft_runtime.Engine.sim_time_ns

let exclusion_key ~commands =
  Printf.sprintf "ablation/exclusion/commands=%d" commands

let exclusion_jobs ?(commands = 40) () =
  [
    Ft_exp.Job.make ~key:(exclusion_key ~commands) ~seed:0 (fun () ->
        let base =
          exclusion_run ~commands ~excluded:false
            ~protocol:Ft_core.Protocols.no_commit
        in
        let full =
          exclusion_run ~commands ~excluded:false
            ~protocol:Ft_core.Protocols.cpvs
        in
        let slim =
          exclusion_run ~commands ~excluded:true
            ~protocol:Ft_core.Protocols.cpvs
        in
        Ft_exp.Jstore.Obj
          [
            ("base_ns", Ft_exp.Jstore.Int base);
            ("full_ns", Ft_exp.Jstore.Int full);
            ("slim_ns", Ft_exp.Jstore.Int slim);
          ]);
  ]

let exclusion_of_records ?(commands = 40) lookup =
  match lookup (exclusion_key ~commands) with
  | None -> []
  | Some v ->
      let base = Ft_exp.Jstore.get_int "base_ns" v in
      let full = Ft_exp.Jstore.get_int "full_ns" v in
      let slim = Ft_exp.Jstore.get_int "slim_ns" v in
      let pct t =
        if base = 0 then 0.
        else 100. *. (float_of_int t -. float_of_int base) /. float_of_int base
      in
      [
        { label = "full checkpoints"; sim_time_ns = full;
          overhead_pct = pct full };
        { label = "framebuffer excluded"; sim_time_ns = slim;
          overhead_pct = pct slim };
      ]

let exclusion ?(commands = 40) () =
  exclusion_of_records ~commands
    (Ft_exp.Exp.eval_lookup ~workers:1 (exclusion_jobs ~commands ()))

let render_exclusion rows =
  Report.section "Ablation: excluding recomputable state from commits (2.6)"
  ^ Report.table
      ~headers:[ "configuration"; "sim time (ms)"; "DC-disk overhead" ]
      ~rows:
        (List.map
           (fun r ->
             [
               r.label;
               string_of_int (r.sim_time_ns / 1_000_000);
               Report.pct1 r.overhead_pct;
             ])
           rows)

(* --- page size -------------------------------------------------------------- *)

type page_row = { page_size : int; sim_time_ns : int }

let page_size_key ~size = Printf.sprintf "ablation/page_size/words=%d" size

let page_size_jobs ?(sizes = [ 16; 64; 256 ]) () =
  List.map
    (fun size ->
      Ft_exp.Job.make ~key:(page_size_key ~size) ~seed:0 (fun () ->
          let w =
            Ft_apps.Magic.workload
              ~params:
                { Ft_apps.Magic.small_params with Ft_apps.Magic.commands = 25 }
              ()
          in
          let cfg =
            Ft_apps.Workload.engine_config w
              { Ft_runtime.Engine.default_config with
                page_size = size;
                medium = Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default
              }
          in
          let kernel = Ft_apps.Workload.kernel w in
          let _, r =
            Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
          in
          Ft_exp.Jstore.Obj
            [ ("sim_ns", Ft_exp.Jstore.Int r.Ft_runtime.Engine.sim_time_ns) ]))
    sizes

let page_size_of_records ?(sizes = [ 16; 64; 256 ]) lookup =
  List.map
    (fun size ->
      match lookup (page_size_key ~size) with
      | Some v ->
          { page_size = size; sim_time_ns = Ft_exp.Jstore.get_int "sim_ns" v }
      | None -> { page_size = size; sim_time_ns = 0 })
    sizes

let page_size ?(sizes = [ 16; 64; 256 ]) () =
  page_size_of_records ~sizes
    (Ft_exp.Exp.eval_lookup ~workers:1 (page_size_jobs ~sizes ()))

let render_page_size rows =
  Report.section "Ablation: COW page size (checkpoint payload vs traps)"
  ^ Report.table
      ~headers:[ "page (words)"; "sim time (ms)" ]
      ~rows:
        (List.map
           (fun r ->
             [ string_of_int r.page_size;
               string_of_int (r.sim_time_ns / 1_000_000) ])
           rows)

(* --- disk model --------------------------------------------------------------- *)

let disk_model_media =
  [
    ("reliable memory (Rio)", None);
    ("1998 SCSI disk", Some Ft_stablemem.Disk.default);
    ("fast disk", Some Ft_stablemem.Disk.fast);
  ]

let disk_model_key ~label =
  Printf.sprintf "ablation/disk_model/%s" label

let disk_model_jobs () =
  List.map
    (fun (label, disk) ->
      Ft_exp.Job.make ~key:(disk_model_key ~label) ~seed:0 (fun () ->
          let w =
            Ft_apps.Nvi.workload
              ~params:
                { Ft_apps.Nvi.small_params with
                  Ft_apps.Nvi.keystrokes = 150; interval_ns = 20_000_000 }
              ()
          in
          let cfg =
            Ft_apps.Workload.engine_config w
              { Ft_runtime.Engine.default_config with
                medium =
                  (match disk with
                  | None -> Ft_runtime.Checkpointer.Reliable_memory
                  | Some d -> Ft_runtime.Checkpointer.Disk d) }
          in
          let kernel = Ft_apps.Workload.kernel w in
          let _, r =
            Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
          in
          Ft_exp.Jstore.Obj
            [ ("sim_ns", Ft_exp.Jstore.Int r.Ft_runtime.Engine.sim_time_ns) ]))
    disk_model_media

let disk_model_of_records lookup =
  List.map
    (fun (label, _) ->
      match lookup (disk_model_key ~label) with
      | Some v -> (label, Ft_exp.Jstore.get_int "sim_ns" v)
      | None -> (label, 0))
    disk_model_media

let disk_model () =
  disk_model_of_records
    (Ft_exp.Exp.eval_lookup ~workers:1 (disk_model_jobs ()))

let render_disk_model rows =
  Report.section "Ablation: commit medium (why Rio matters)"
  ^ Report.table
      ~headers:[ "medium"; "sim time (ms)" ]
      ~rows:
        (List.map
           (fun (label, t) -> [ label; string_of_int (t / 1_000_000) ])
           rows)

(* --- the whole suite --------------------------------------------------------- *)

let jobs () =
  crash_early_jobs () @ exclusion_jobs () @ page_size_jobs ()
  @ disk_model_jobs ()

let render_records lookup =
  render_crash_early (crash_early_of_records lookup)
  ^ render_exclusion (exclusion_of_records lookup)
  ^ render_page_size (page_size_of_records lookup)
  ^ render_disk_model (disk_model_of_records lookup)

let run_all () =
  render_records (Ft_exp.Exp.eval_lookup ~workers:1 (jobs ()))
