(** Table 1: fraction of application faults that violate Lose-work by
    committing between fault activation and the crash (paper §4.1),
    measured by injection campaigns over nvi and postgres under
    Discount Checking with CPVS, with the paper's end-to-end
    recovery-suppression check. *)

type app = Nvi | Postgres

val app_name : app -> string
val workload : app -> Ft_apps.Workload.t

val base_cfg : Ft_apps.Workload.t -> Ft_runtime.Engine.config

type run_class =
  | No_effect
  | Wrong_output
  | Hung  (** endless loop or out-of-patience run: indeterminate *)
  | Crashed of { violation : bool; recovered : bool }

type row = {
  fault_type : Ft_faults.Fault_type.t;
  crashes : int;
  violations : int;
  wrong_output : int;
  no_effect : int;
  end_to_end_mismatches : int;
      (** crashes where recovery success did not equal no-violation; the
          residue is commits that captured no corrupted state *)
}

val campaign :
  ?target_crashes:int ->
  ?max_attempts:int ->
  ?seed0:int ->
  app:app ->
  Ft_faults.Fault_type.t ->
  row

val campaign_seed : seed0:int -> app:app -> Ft_faults.Fault_type.t -> int
(** The per-campaign trial seed, derived from the campaign's identity
    (app, fault type) rather than its position in the sweep, so
    enumeration order and worker scheduling cannot change any trial's
    RNG. *)

val row_to_json : row -> Ft_exp.Jstore.value
val row_of_json : Ft_faults.Fault_type.t -> Ft_exp.Jstore.value -> row

val jobs :
  ?target_crashes:int -> ?max_attempts:int -> ?seed0:int -> app:app ->
  unit -> Ft_exp.Job.t list
(** One job per fault type, each a full campaign. *)

val of_records :
  ?target_crashes:int -> ?max_attempts:int -> ?seed0:int -> app:app ->
  (string -> Ft_exp.Jstore.value option) -> row list
(** Rows assembled from stored job values, in {!Ft_faults.Fault_type.all}
    order (missing jobs render as zero rows). *)

val run :
  ?target_crashes:int -> ?max_attempts:int -> ?seed0:int -> app:app ->
  unit -> row list
(** One campaign per fault type: [jobs] evaluated inline and
    assembled. *)

val violation_pct : row -> float
val average : row list -> float
val render : app:app -> row list -> string
