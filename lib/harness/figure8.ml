(** Figure 8: performance of the seven protocols for the four
    applications, on Discount Checking (reliable memory) and DC-disk.

    For each protocol we report the number of checkpoints in the complete
    run and the runtime overhead relative to an unrecoverable version of
    the application (the NO-COMMIT baseline costs nothing).  For xpilot,
    following the paper, we report checkpoints per second and sustainable
    frame rate instead. *)

type app = Nvi | Magic | Xpilot | Treadmarks

let app_name = function
  | Nvi -> "nvi"
  | Magic -> "magic"
  | Xpilot -> "xpilot"
  | Treadmarks -> "treadmarks"

let app_of_name s =
  match String.lowercase_ascii s with
  | "nvi" -> Some Nvi
  | "magic" -> Some Magic
  | "xpilot" -> Some Xpilot
  | "treadmarks" | "barnes-hut" -> Some Treadmarks
  | _ -> None

let all_apps = [ Nvi; Magic; Xpilot; Treadmarks ]

(* Scale in (0, 1]: shrinks the workloads for quick runs and benches. *)
let workload ?(scale = 1.0) app =
  let s x = max 1 (int_of_float (float_of_int x *. scale)) in
  match app with
  | Nvi ->
      Ft_apps.Nvi.workload
        ~params:
          { Ft_apps.Nvi.default_params with
            Ft_apps.Nvi.keystrokes = s Ft_apps.Nvi.default_params.keystrokes }
        ()
  | Magic ->
      Ft_apps.Magic.workload
        ~params:
          { Ft_apps.Magic.default_params with
            Ft_apps.Magic.commands = s Ft_apps.Magic.default_params.commands }
        ()
  | Xpilot ->
      Ft_apps.Xpilot.workload
        ~params:
          { Ft_apps.Xpilot.default_params with
            Ft_apps.Xpilot.frames = s Ft_apps.Xpilot.default_params.frames }
        ()
  | Treadmarks ->
      Ft_apps.Treadmarks.workload
        ~params:
          { Ft_apps.Treadmarks.default_params with
            Ft_apps.Treadmarks.iters =
              s Ft_apps.Treadmarks.default_params.iters }
        ()

(* The protocols each application's protocol space shows in Figure 8:
   2PC variants only make sense for the distributed applications, and
   the message-logging pair (CAUSAL-LOG, OPTIMISTIC) joins them there
   too.  [classic:true] restores the paper's original seven-protocol
   panel — the goldens pin both renderings. *)
let protocols_for ?(classic = false) = function
  | Nvi | Magic ->
      Ft_core.Protocols.
        [ cand; cand_log; cpvs; cbndvs; cbndvs_log ]
  | Xpilot | Treadmarks ->
      if classic then Ft_core.Protocols.figure8
      else Ft_core.Protocols.figure8_extended

type cell = {
  protocol : string;
  checkpoints : int;          (* total over the run, all processes *)
  ckps_per_sec : float;       (* largest per-process rate (xpilot metric) *)
  dc_overhead : float;        (* percent *)
  dcdisk_overhead : float;    (* percent *)
  dc_fps : float;
  dcdisk_fps : float;
  nd_events : int;
  logged_events : int;
}

type app_result = {
  app : app;
  baseline_ns : int;
  cells : cell list;
}

let run_once ~(w : Ft_apps.Workload.t) ~protocol ~medium ~seed =
  let cfg =
    Ft_apps.Workload.engine_config w
      { Ft_runtime.Engine.default_config with protocol; medium }
  in
  let kernel = Ft_apps.Workload.kernel ~seed w in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs () in
  r

let overhead ~baseline t =
  if baseline <= 0 then 0.
  else 100. *. (float_of_int t -. float_of_int baseline) /. float_of_int baseline

(* --- jobs ------------------------------------------------------------------ *)

(* Each Figure-8 measurement is one engine run: (app x protocol x
   medium) plus one unrecoverable NO-COMMIT baseline per app.  A job's
   value records the engine counters plus the xpilot frame rate; the
   cells are assembled from those records, so serial, parallel and warm
   store runs render identically. *)

let medium_name = function
  | Ft_runtime.Checkpointer.Reliable_memory -> "mem"
  | Ft_runtime.Checkpointer.Disk _ -> "disk"

let job_key ~scale ~seed ~app ~label ~medium =
  Printf.sprintf "fig8/%s/%s/%s/scale=%g" (app_name app) label
    (medium_name medium) scale
  |> fun k -> Printf.sprintf "%s/seed=%d" k seed

let probe_value ~app r =
  Ft_exp.Jstore.Obj
    [
      ("m", Ft_exp.Metrics.to_json (Ft_exp.Metrics.of_result r));
      ( "fps",
        Ft_exp.Jstore.Float (if app = Xpilot then Ft_apps.Xpilot.fps r else 0.)
      );
    ]

let job ~scale ~seed ~app ~label ~protocol ~medium =
  Ft_exp.Job.make
    ~key:(job_key ~scale ~seed ~app ~label ~medium)
    ~seed
    (fun () ->
      (* build the workload inside the thunk: nothing is shared across
         worker domains *)
      let w = workload ~scale app in
      probe_value ~app (run_once ~w ~protocol ~medium ~seed))

let jobs ?(classic = false) ?(scale = 1.0) ?(seed = 42) app =
  let mem = Ft_runtime.Checkpointer.Reliable_memory in
  let disk = Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default in
  job ~scale ~seed ~app ~label:"baseline"
    ~protocol:Ft_core.Protocols.no_commit ~medium:mem
  :: List.concat_map
       (fun proto ->
         let label = proto.Ft_core.Protocol.spec_name in
         [
           job ~scale ~seed ~app ~label ~protocol:proto ~medium:mem;
           job ~scale ~seed ~app ~label ~protocol:proto ~medium:disk;
         ])
       (protocols_for ~classic app)

let of_records ?(classic = false) ?(scale = 1.0) ?(seed = 42) app lookup =
  let probe label medium =
    match lookup (job_key ~scale ~seed ~app ~label ~medium) with
    | Some v ->
        ( Ft_exp.Metrics.of_json
            (Option.value ~default:Ft_exp.Jstore.Null
               (Ft_exp.Jstore.member "m" v)),
          Ft_exp.Jstore.get_float "fps" v )
    | None -> (Ft_exp.Metrics.zero, 0.)
  in
  let mem = Ft_runtime.Checkpointer.Reliable_memory in
  let disk = Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default in
  let base, _ = probe "baseline" mem in
  let baseline_ns = base.Ft_exp.Metrics.sim_time_ns in
  let cells =
    List.map
      (fun proto ->
        let label = proto.Ft_core.Protocol.spec_name in
        let dc, dc_fps = probe label mem in
        let dk, dcdisk_fps = probe label disk in
        {
          protocol = label;
          checkpoints = dc.Ft_exp.Metrics.commits;
          ckps_per_sec = Ft_exp.Metrics.commit_rate dc;
          dc_overhead =
            overhead ~baseline:baseline_ns dc.Ft_exp.Metrics.sim_time_ns;
          dcdisk_overhead =
            overhead ~baseline:baseline_ns dk.Ft_exp.Metrics.sim_time_ns;
          dc_fps;
          dcdisk_fps;
          nd_events = dc.Ft_exp.Metrics.nd_events;
          logged_events = dc.Ft_exp.Metrics.logged_events;
        })
      (protocols_for ~classic app)
  in
  { app; baseline_ns; cells }

let measure ?(classic = false) ?(scale = 1.0) ?(seed = 42) app =
  of_records ~classic ~scale ~seed app
    (Ft_exp.Exp.eval_lookup ~workers:1 (jobs ~classic ~scale ~seed app))

let render (r : app_result) =
  let headers, rows =
    if r.app = Xpilot then
      ( [ "protocol"; "ckps"; "DC fps"; "DC-disk fps"; "nd"; "logged" ],
        List.map
          (fun c ->
            [
              c.protocol;
              Printf.sprintf "%.0f/s" c.ckps_per_sec;
              Printf.sprintf "%.1f" c.dc_fps;
              Printf.sprintf "%.1f" c.dcdisk_fps;
              string_of_int c.nd_events;
              string_of_int c.logged_events;
            ])
          r.cells )
    else
      ( [ "protocol"; "checkpoints"; "DC ovh"; "DC-disk ovh"; "nd"; "logged" ],
        List.map
          (fun c ->
            [
              c.protocol;
              string_of_int c.checkpoints;
              Report.pct c.dc_overhead;
              Report.pct c.dcdisk_overhead;
              string_of_int c.nd_events;
              string_of_int c.logged_events;
            ])
          r.cells )
  in
  Report.section
    (Printf.sprintf "Figure 8%s: %s protocol space"
       (match r.app with
       | Nvi -> "a" | Magic -> "b" | Xpilot -> "c" | Treadmarks -> "d")
       (app_name r.app))
  ^ Report.table ~headers ~rows
