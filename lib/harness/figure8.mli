(** Figure 8: protocol-space performance of the four applications on
    Discount Checking and DC-disk. *)

type app = Nvi | Magic | Xpilot | Treadmarks

val app_name : app -> string
val app_of_name : string -> app option
val all_apps : app list

val workload : ?scale:float -> app -> Ft_apps.Workload.t
(** [scale] in (0, 1] shrinks the workload for quick runs. *)

val protocols_for : ?classic:bool -> app -> Ft_core.Protocol.spec list
(** The 2PC variants only appear for the distributed applications,
    joined there by the message-logging pair (CAUSAL-LOG, OPTIMISTIC).
    [classic:true] restores the paper's original seven-protocol panel. *)

type cell = {
  protocol : string;
  checkpoints : int;  (** total over the run, all processes *)
  ckps_per_sec : float;  (** largest per-process rate (xpilot metric) *)
  dc_overhead : float;  (** percent over the unrecoverable baseline *)
  dcdisk_overhead : float;
  dc_fps : float;
  dcdisk_fps : float;
  nd_events : int;
  logged_events : int;
}

type app_result = { app : app; baseline_ns : int; cells : cell list }

val run_once :
  w:Ft_apps.Workload.t ->
  protocol:Ft_core.Protocol.spec ->
  medium:Ft_runtime.Checkpointer.medium ->
  seed:int ->
  Ft_runtime.Engine.result

val overhead : baseline:int -> int -> float

val jobs : ?classic:bool -> ?scale:float -> ?seed:int -> app -> Ft_exp.Job.t list
(** One job per engine run: the NO-COMMIT baseline plus (protocol x
    medium) for the app's protocol space. *)

val of_records :
  ?classic:bool ->
  ?scale:float ->
  ?seed:int ->
  app ->
  (string -> Ft_exp.Jstore.value option) ->
  app_result
(** Assembles the figure from stored job values (missing or failed jobs
    render as zero cells). *)

val measure : ?classic:bool -> ?scale:float -> ?seed:int -> app -> app_result
(** [jobs] evaluated inline (serially, no store) and assembled. *)

val render : app_result -> string
