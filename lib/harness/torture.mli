(** Crash-point torture: re-execute one checkpoint commit with an
    injected crash after the [k]-th persisted word write, for every
    [k] in [0 .. W] (or a seeded sample), recover from the region words
    alone, and demand the recovered image equal the pre-commit or
    post-commit checkpoint — never a hybrid.  Sweeps fan out over
    {!Ft_exp.Exp} jobs (parallel, resumable). *)

type scenario = {
  heap_words : int;
  stack_words : int;
  page_size : int;
  dirty_pages : int;  (** pages rewritten between the two commits *)
  stack_depth : int;  (** live stack words at the instrumented commit *)
  seed : int;
}

val default_scenario : scenario
(** A multi-page commit: 16 dirty pages of 64 words plus stack,
    metadata and kernel state — a couple of thousand crash points. *)

type points = All | Sample of int
(** Exhaustive, or a seeded sample always containing both endpoints. *)

type verdict =
  | Rolled_back  (** recovered image = pre-commit checkpoint *)
  | Committed  (** recovered image = post-commit checkpoint *)
  | Violation of string  (** hybrid image, or recovery itself failed *)

val measure :
  ?defect:Ft_stablemem.Vista.defect -> scenario -> int * (int array * int)
(** Run the instrumented commit uninterrupted: the number of word
    writes [W] it performs (crash points are [0..W]) and the committed
    (data image, commits counter) capture. *)

val torture_point :
  ?defect:Ft_stablemem.Vista.defect ->
  scenario ->
  post:int array * int ->
  point:int ->
  verdict
(** One crash point, end to end, on an entirely fresh rig.  [defect]
    arms a deliberate write-ordering bug ({!Ft_stablemem.Vista.defect})
    so tests can prove the checker has teeth. *)

type report = {
  scenario : scenario;
  total_writes : int;
  requested : int;
      (** crash points asked for; [explored < requested] means some
          sweep jobs failed outright *)
  explored : int;
  rolled_back : int;
  committed : int;
  violations : (int * string) list;  (** crash point, diagnosis *)
}

val run :
  ?defect:Ft_stablemem.Vista.defect ->
  ?workers:int ->
  ?out_dir:string ->
  ?fresh:bool ->
  ?quiet:bool ->
  points:points ->
  scenario ->
  report
(** The full sweep.  With [out_dir], runs as a named resumable store
    sweep ([torture.jsonl]); without, evaluates in memory. *)

val render : report -> string
