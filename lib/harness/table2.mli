(** Table 2: fraction of operating-system faults after which the
    application fails to come back up (paper §4.2). *)

type row = {
  fault_type : Ft_faults.Fault_type.t;
  crashes : int;  (** runs where the system or the application crashed *)
  failed_recoveries : int;
  propagated : int;  (** corruption reached the application *)
  no_effect : int;
}

val base_cfg : Ft_apps.Workload.t -> Ft_runtime.Engine.config

val workload : Table1.app -> Ft_apps.Workload.t
(** Table-2 sessions: comparable durations, with nvi at ~10x postgres's
    syscall rate (the paper's non-interactive nvi). *)

val campaign_seed :
  seed0:int -> app:Table1.app -> Ft_faults.Fault_type.t -> int
(** Identity-derived per-campaign trial seed (see
    {!Table1.campaign_seed}), offset so Tables 1 and 2 never share
    per-trial seeds. *)

val row_to_json : row -> Ft_exp.Jstore.value
val row_of_json : Ft_faults.Fault_type.t -> Ft_exp.Jstore.value -> row

val jobs :
  ?target_crashes:int -> ?max_attempts:int -> ?seed0:int -> app:Table1.app ->
  unit -> Ft_exp.Job.t list
(** One job per fault type, each a self-contained campaign. *)

val of_records :
  ?target_crashes:int -> ?max_attempts:int -> ?seed0:int -> app:Table1.app ->
  (string -> Ft_exp.Jstore.value option) -> row list

val run :
  ?target_crashes:int ->
  ?max_attempts:int ->
  ?seed0:int ->
  app:Table1.app ->
  unit ->
  row list

val failure_pct : row -> float
val average : row list -> float

val propagation_fraction : row list -> float
(** Fraction of crashed runs in which kernel corruption reached the
    application (the §4.2 propagation-failure share). *)

val render : app:Table1.app -> row list -> string
