(** Measured ablations of the design choices DESIGN.md calls out — each
    a quantified version of a §2.6 mitigation or cost-model choice. *)

type crash_early_row = {
  check_every : int;
  crashes : int;
  violations : int;
  violation_pct : float;
}

val crash_early :
  ?cadences:int list -> ?target_crashes:int -> ?max_attempts:int -> unit ->
  crash_early_row list
(** Lose-work violation rate of nvi heap bit flips as a function of the
    consistency-check cadence: checking more often crashes sooner and
    leaves fewer commits on the dangerous path. *)

val render_crash_early : crash_early_row list -> string

type exclusion_row = {
  label : string;
  sim_time_ns : int;
  overhead_pct : float;
}

val exclusion : ?commands:int -> unit -> exclusion_row list
(** DC-disk overhead of magic with and without its recomputable
    framebuffer excluded from checkpoints. *)

val render_exclusion : exclusion_row list -> string

type page_row = { page_size : int; sim_time_ns : int }

val page_size : ?sizes:int list -> unit -> page_row list
val render_page_size : page_row list -> string

val disk_model : unit -> (string * int) list
val render_disk_model : (string * int) list -> string

val jobs : unit -> Ft_exp.Job.t list
(** Every ablation study's jobs (default parameters), for sweeping. *)

val render_records : (string -> Ft_exp.Jstore.value option) -> string
(** All four studies rendered from stored job values. *)

val run_all : unit -> string
(** [jobs] evaluated inline and rendered. *)
