(** Netstorm: sweep the recovery protocols across an unreliable network
    — loss, duplication, reordering and a mid-run healed partition — and
    check that retransmission keeps the runs complete, the visible
    output consistent (value-based for nvi/TreadMarks, frame-count based
    for xpilot) and Save-work no worse than the reliable reference.
    Fans out over {!Ft_exp.Exp} jobs (parallel, resumable). *)

type point = {
  label : string;
  loss : float;  (** per-frame drop probability *)
  dup : float;  (** per-frame duplication probability *)
  reorder : float;  (** per-frame extra-delay (reorder) probability *)
  partition : bool;  (** one mid-run 0<->1 partition, healed *)
}

val custom_point :
  ?loss:float -> ?dup:float -> ?reorder:float -> ?partition:bool -> unit ->
  point
(** A single point labelled by its parameters — the CLI's
    [--loss/--dup/--reorder/--partition] escape hatch. *)

val default_points : point list
(** calm, breeze, gale, and the acceptance storm (20% loss, 5% dup,
    10% reorder, plus a healed mid-run partition). *)

val default_apps : Figure8.app list
(** nvi (no-traffic path), xpilot and TreadMarks. *)

val partition_window : baseline_ns:int -> int * int
(** Where the storm points place the healed partition: starting at 40%
    of the reference run's simulated time, lasting a fifth of the run
    but capped under the retransmission budget. *)

type cell = {
  c_app : Figure8.app;
  c_protocol : string;
  c_point : point;
  c_outcome : string;
  c_wedged : bool;
  c_consistent : bool;
  c_cons_msg : string;
  c_save_work_broken : bool;
      (** the reference run upheld Save-work-visible but the stressed
          run did not (orphan violations are inert without a crash) *)
  c_aborted_rounds : int;
  c_goodput : float;  (** delivered payload messages per simulated second *)
  c_sends : int;
  c_transmissions : int;
  c_retransmits : int;
  c_gave_up : int;
  c_slowdown : float;  (** stressed sim time / reference sim time *)
}

type report = {
  cells : cell list;
  missing : string list;  (** job keys that died without a verdict *)
}

val violations : report -> cell list
(** Cells that wedged, diverged, or broke Save-work. *)

val clean : report -> bool
(** No violations and no missing jobs. *)

val jobs :
  ?scale:float -> ?seed:int -> ?points:point list -> ?apps:Figure8.app list ->
  unit -> Ft_exp.Job.t list
(** One job per (app, protocol, point); each runs the reliable
    reference and the stressed run inside the thunk. *)

val of_records :
  ?scale:float -> ?seed:int -> ?points:point list -> ?apps:Figure8.app list ->
  (string -> Ft_exp.Jstore.value option) -> report

val run :
  ?workers:int -> ?out_dir:string -> ?fresh:bool -> ?quiet:bool ->
  ?scale:float -> ?seed:int -> ?points:point list -> ?apps:Figure8.app list ->
  unit -> report
(** The full campaign.  With [out_dir], runs as a named resumable store
    sweep ([netstorm.jsonl]); without, evaluates in memory. *)

val render : ?points:point list -> ?apps:Figure8.app list -> report -> string
