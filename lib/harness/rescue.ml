(** Rescue: how much of the paper's "unrecoverable" application-fault
    mass each escalation rung reclaims.

    The paper's headline negative result is that generic recovery fails
    for propagating faults: replay from the last commit re-executes the
    bug.  This campaign injects every §4.1 app-fault type with
    {e recurrence} (code mutations persist in the code; bit flips are
    re-armed on every replay, redrawn only when the environment salt
    changes) and runs each crashed execution under escalating recovery
    ladders — L0 generic replay, L1 deep rollback, L2 perturbed
    replay — measuring, per rung: the fraction of crashed runs rescued,
    the work completed per unit cost (Dwork–Halpern–Waarts: acked
    visible outputs per instruction, replay instructions being pure
    waste), and Consistency violations, which must be zero at every
    rung — escalation trades whose work is lost and what environment
    the replay sees, never correctness.

    Cells (app x fault type x protocol x ladder) are independent
    {!Ft_exp} jobs: sharded, resumable, byte-identical at any [-j]. *)

module Engine = Ft_runtime.Engine
module Jstore = Ft_exp.Jstore
module Policy = Ft_recovery.Policy
module Classifier = Ft_recovery.Classifier

type app = Nvi | Postgres

let app_name = function Nvi -> "nvi" | Postgres -> "postgres"

let app_of_string = function
  | "nvi" -> Some Nvi
  | "postgres" -> Some Postgres
  | _ -> None

let workload = function
  | Nvi -> Ft_apps.Nvi.workload ~params:Ft_apps.Nvi.small_params ()
  | Postgres ->
      Ft_apps.Postgres.workload ~params:Ft_apps.Postgres.small_params ()

(* The ladders under comparison.  [generic] is the paper's baseline —
   the rung everything above it is measured against. *)
let ladders = [ "generic"; "deep"; "full" ]

let base_cfg ~protocol ~ladder w =
  Ft_apps.Workload.engine_config w
    {
      Engine.default_config with
      protocol;
      (* No fault suppression: the whole point is to meet the recurring
         fault head-on and see which rung gets past it. *)
      suppress_faults_on_recovery = false;
      policy = Some ladder;
    }

let reference ~protocol app =
  let w = workload app in
  let cfg = base_cfg ~protocol ~ladder:Policy.generic w in
  let kernel = Ft_apps.Workload.kernel w in
  let _, r = Engine.execute ~cfg ~kernel ~programs:w.programs () in
  ( r.Engine.visible,
    List.length r.Engine.visible,
    r.Engine.wall_instructions )

type trial =
  | Benign  (* completed, correct, never crashed: discarded *)
  | Wrong_output  (* silent corruption without a crash: discarded *)
  | Hung  (* instruction budget without a crash: discarded *)
  | Crashed of {
      rescued : bool;  (* completed with consistent output *)
      rung : int;  (* highest ladder rung used (0..2) *)
      violation : bool;
          (* the recovery machinery corrupted or diverged the output
             stream with no fault having activated — the only party left
             to blame is the ladder itself *)
      tainted : bool;
          (* the fault itself escaped to the released output (a value
             that is neither the expected next output nor a repeat) —
             unrescuable by any recovery scheme, and not the ladder's
             doing *)
      absorbed : int;
          (* replayed outputs that disagreed with a released value and
             were absorbed by the sequenced egress: fault-induced replay
             divergence the user never saw *)
      verdict : Classifier.verdict;
      work : int;  (* distinct visible outputs released *)
      instr : int;
      deep_rollbacks : int;
      perturbed_replays : int;
    }

(* Half the bit flips are cosmic-ray one-shots (fired once, never
   re-armed: the transient mass L0 and — when the corruption was
   committed before the crash — L1 exist for); the other half are
   state-dependent recurrences that re-bite every replay until an L2
   redraw dodges them.  Code mutations always recur: they live in the
   code array. *)
let run_one ~app ~fault_type ~protocol ~ladder ~reference_visible ~horizon
    ~seed =
  let w = workload app in
  let cfg = base_cfg ~protocol ~ladder w in
  let cfg =
    { cfg with Engine.max_instructions = (40 * horizon) + 200_000 }
  in
  let kernel = Ft_apps.Workload.kernel w in
  let engine = Engine.create ~cfg ~kernel ~programs:w.programs () in
  let one_shot =
    (match fault_type with
    | Ft_faults.Fault_type.Stack_bit_flip | Ft_faults.Fault_type.Heap_bit_flip
      ->
        true
    | _ -> false)
    && seed land 1 = 1
  in
  let armed =
    if one_shot then begin
      let rng = Random.State.make [| seed; 0; 0xf11b |] in
      match
        Ft_faults.App_injector.plan rng fault_type ~code:w.programs.(0)
          ~horizon
      with
      | None -> None
      | Some p ->
          Ft_faults.App_injector.arm engine ~pid:0 p;
          Some p
    end
    else
      Ft_faults.App_injector.arm_recurring engine ~pid:0 ~seed fault_type
        ~code:w.programs.(0) ~horizon
  in
  match armed with
  | None -> Benign
  | Some _ -> (
      let r = Engine.run engine in
      let consistent =
        Ft_core.Consistency.is_consistent ~reference:reference_visible
          ~observed:r.Engine.visible
      in
      match r.Engine.first_crash with
      | None ->
          if r.Engine.outcome = Engine.Instruction_budget then Hung
          else if consistent then Benign
          else Wrong_output
      | Some _ ->
          (* Attribution: once the injected fault has ACTIVATED, anything
             wrong with the stream is the fault's doing — a corrupt value
             released before any crash (the paper's wrong-output bucket,
             [tainted]) or a replay diverging from a released value (the
             sequenced egress absorbs it; the user never sees it,
             [absorbed]).  Only inconsistency or divergence on a run
             whose fault NEVER activated can be pinned on the recovery
             machinery itself — that is the per-rung zero-violation
             claim. *)
          let activated = r.Engine.activation <> None in
          let extra =
            match
              Ft_core.Consistency.check ~reference:reference_visible
                ~observed:r.Engine.visible
            with
            | Ft_core.Consistency.Extra _ -> true
            | Ft_core.Consistency.Consistent
            | Ft_core.Consistency.Truncated _ ->
                false
          in
          let violation =
            (not activated) && (r.Engine.replay_mismatches > 0 || extra)
          in
          let tainted = activated && extra in
          let rescued = r.Engine.outcome = Engine.Completed && consistent in
          Crashed
            {
              rescued;
              rung = min 2 (Array.fold_left max 0 r.Engine.ladder_peaks);
              violation;
              tainted;
              absorbed = r.Engine.replay_mismatches;
              verdict = r.Engine.fault_classes.(0);
              work = List.length r.Engine.visible;
              instr = r.Engine.wall_instructions;
              deep_rollbacks = r.Engine.deep_rollbacks;
              perturbed_replays = r.Engine.perturbed_replays;
            })

type row = {
  app : app;
  fault_type : Ft_faults.Fault_type.t;
  protocol_name : string;
  ladder : string;
  trials : int;
  crashes : int;  (* the denominator: runs in which the fault crashed *)
  rescued_by_rung : int array;  (* length 3: rescues whose peak was L0/L1/L2 *)
  unrescued : int;
  violations : int;  (* machinery violations (no fault active): must be 0 *)
  tainted : int;  (* fault escaped to the output before recovery *)
  absorbed : int;  (* fault-induced replay divergences the egress absorbed *)
  wrong_output : int;
  benign : int;
  deep_rollbacks : int;
  perturbed_replays : int;
  transient : int;
  heisenbug : int;
  bohrbug : int;
  sticky : int;
  work : int;  (* visible outputs across crashed runs *)
  instr : int;  (* instructions across crashed runs *)
  ref_work : int;  (* fault-free outputs x crashed runs: the DHW baseline *)
  ref_instr : int;
}

let rescued row = Array.fold_left ( + ) 0 row.rescued_by_rung

let rescued_frac row =
  if row.crashes = 0 then 0.
  else float_of_int (rescued row) /. float_of_int row.crashes

(* Useful work per million instructions, and the fault-free baseline. *)
let work_per_minstr row =
  if row.instr = 0 then 0.
  else float_of_int row.work *. 1e6 /. float_of_int row.instr

let ref_work_per_minstr row =
  if row.ref_instr = 0 then 0.
  else float_of_int row.ref_work *. 1e6 /. float_of_int row.ref_instr

let campaign ?(target_crashes = 40) ?(max_attempts = 600) ~seed ~app
    ~protocol ~ladder_name () =
  let ladder = Option.get (Policy.by_name ladder_name) in
  let reference_visible, ref_w, ref_i = reference ~protocol app in
  let horizon = ref_i in
  let row =
    ref
      {
        app;
        fault_type = Ft_faults.Fault_type.Destination_reg;
        protocol_name = protocol.Ft_core.Protocol.spec_name;
        ladder = ladder_name;
        trials = 0;
        crashes = 0;
        rescued_by_rung = [| 0; 0; 0 |];
        unrescued = 0;
        violations = 0;
        tainted = 0;
        absorbed = 0;
        wrong_output = 0;
        benign = 0;
        deep_rollbacks = 0;
        perturbed_replays = 0;
        transient = 0;
        heisenbug = 0;
        bohrbug = 0;
        sticky = 0;
        work = 0;
        instr = 0;
        ref_work = 0;
        ref_instr = 0;
      }
  in
  fun fault_type ->
    let r =
      ref { !row with fault_type; rescued_by_rung = [| 0; 0; 0 |] }
    in
    let attempt = ref 0 in
    while !r.crashes < target_crashes && !attempt < max_attempts do
      (match
         run_one ~app ~fault_type ~protocol ~ladder ~reference_visible
           ~horizon ~seed:(seed + !attempt)
       with
      | Benign | Hung -> r := { !r with benign = !r.benign + 1 }
      | Wrong_output -> r := { !r with wrong_output = !r.wrong_output + 1 }
      | Crashed c ->
          let rr = !r in
          let rbr = Array.copy rr.rescued_by_rung in
          if c.rescued then rbr.(c.rung) <- rbr.(c.rung) + 1;
          r :=
            {
              rr with
              crashes = rr.crashes + 1;
              rescued_by_rung = rbr;
              unrescued = (rr.unrescued + if c.rescued then 0 else 1);
              violations = (rr.violations + if c.violation then 1 else 0);
              tainted = (rr.tainted + if c.tainted then 1 else 0);
              absorbed = rr.absorbed + c.absorbed;
              deep_rollbacks = rr.deep_rollbacks + c.deep_rollbacks;
              perturbed_replays = rr.perturbed_replays + c.perturbed_replays;
              transient =
                (rr.transient
                + if c.verdict = Classifier.Transient then 1 else 0);
              heisenbug =
                (rr.heisenbug
                + if c.verdict = Classifier.Heisenbug then 1 else 0);
              bohrbug =
                (rr.bohrbug + if c.verdict = Classifier.Bohrbug then 1 else 0);
              sticky =
                (rr.sticky + if c.verdict = Classifier.Sticky then 1 else 0);
              work = rr.work + c.work;
              instr = rr.instr + c.instr;
              ref_work = rr.ref_work + ref_w;
              ref_instr = rr.ref_instr + ref_i;
            });
      incr attempt
    done;
    { !r with trials = !attempt }

(* --- resumable jobs -------------------------------------------------------- *)

(* Trial seeds derive from the cell's identity, never from sweep
   position: parallel sweeps reproduce serial ones byte for byte.  The
   ladder is deliberately NOT part of the seed — every ladder meets the
   identical fault sample, so a rescue delta between ladders is a paired
   comparison on the same bugs, not sampling noise. *)
let cell_seed ~seed0 ~app ~protocol_name ft =
  let fault_index =
    let rec go i = function
      | [] -> 0
      | f :: _ when f = ft -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 Ft_faults.Fault_type.all
  in
  seed0
  + (match app with Nvi -> 0 | Postgres -> 1_000_000)
  + (100_000 * (Hashtbl.hash protocol_name mod 10))
  + (1_000 * fault_index)

let job_key ~target_crashes ~max_attempts ~seed ~app ~protocol_name
    ~ladder_name ft =
  Printf.sprintf "rescue/%s/%s/%s/%s/crashes=%d/attempts=%d/seed=%d"
    (app_name app) protocol_name ladder_name
    (Ft_faults.Fault_type.to_string ft)
    target_crashes max_attempts seed

let row_to_json r =
  Jstore.Obj
    [
      ("trials", Jstore.Int r.trials);
      ("crashes", Jstore.Int r.crashes);
      ("rescued_l0", Jstore.Int r.rescued_by_rung.(0));
      ("rescued_l1", Jstore.Int r.rescued_by_rung.(1));
      ("rescued_l2", Jstore.Int r.rescued_by_rung.(2));
      ("unrescued", Jstore.Int r.unrescued);
      ("violations", Jstore.Int r.violations);
      ("tainted", Jstore.Int r.tainted);
      ("absorbed", Jstore.Int r.absorbed);
      ("wrong_output", Jstore.Int r.wrong_output);
      ("benign", Jstore.Int r.benign);
      ("deep_rollbacks", Jstore.Int r.deep_rollbacks);
      ("perturbed_replays", Jstore.Int r.perturbed_replays);
      ("transient", Jstore.Int r.transient);
      ("heisenbug", Jstore.Int r.heisenbug);
      ("bohrbug", Jstore.Int r.bohrbug);
      ("sticky", Jstore.Int r.sticky);
      ("work", Jstore.Int r.work);
      ("instr", Jstore.Int r.instr);
      ("ref_work", Jstore.Int r.ref_work);
      ("ref_instr", Jstore.Int r.ref_instr);
    ]

let row_of_json ~app ~fault_type ~protocol_name ~ladder v =
  let g k = Jstore.get_int k v in
  {
    app;
    fault_type;
    protocol_name;
    ladder;
    trials = g "trials";
    crashes = g "crashes";
    rescued_by_rung = [| g "rescued_l0"; g "rescued_l1"; g "rescued_l2" |];
    unrescued = g "unrescued";
    violations = g "violations";
    tainted = g "tainted";
    absorbed = g "absorbed";
    wrong_output = g "wrong_output";
    benign = g "benign";
    deep_rollbacks = g "deep_rollbacks";
    perturbed_replays = g "perturbed_replays";
    transient = g "transient";
    heisenbug = g "heisenbug";
    bohrbug = g "bohrbug";
    sticky = g "sticky";
    work = g "work";
    instr = g "instr";
    ref_work = g "ref_work";
    ref_instr = g "ref_instr";
  }

type spec = {
  apps : app list;
  protocols : Ft_core.Protocol.spec list;
  ladder_names : string list;
  fault_types : Ft_faults.Fault_type.t list;
  target_crashes : int;
  max_attempts : int;
  seed0 : int;
}

let default_spec =
  {
    apps = [ Nvi; Postgres ];
    protocols = [ Ft_core.Protocols.cpvs; Ft_core.Protocols.cbndvs ];
    ladder_names = ladders;
    fault_types = Ft_faults.Fault_type.all;
    target_crashes = 40;
    max_attempts = 600;
    seed0 = 7_000;
  }

(* Small and fast, still covering every fault type, both protocols and
   the baseline-vs-full comparison: the CI gate. *)
let smoke_spec =
  {
    default_spec with
    apps = [ Nvi ];
    ladder_names = [ "generic"; "full" ];
    target_crashes = 4;
    max_attempts = 40;
  }

let cells spec =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun protocol ->
          List.concat_map
            (fun ladder_name ->
              List.map
                (fun ft -> (app, protocol, ladder_name, ft))
                spec.fault_types)
            spec.ladder_names)
        spec.protocols)
    spec.apps

let jobs spec =
  List.map
    (fun (app, protocol, ladder_name, ft) ->
      let protocol_name = protocol.Ft_core.Protocol.spec_name in
      let seed = cell_seed ~seed0:spec.seed0 ~app ~protocol_name ft in
      Ft_exp.Job.make
        ~key:
          (job_key ~target_crashes:spec.target_crashes
             ~max_attempts:spec.max_attempts ~seed ~app ~protocol_name
             ~ladder_name ft)
        ~seed
        (fun () ->
          row_to_json
            (campaign ~target_crashes:spec.target_crashes
               ~max_attempts:spec.max_attempts ~seed ~app ~protocol
               ~ladder_name () ft)))
    (cells spec)

type report = { spec : spec; rows : row list; missing : string list }

let of_records spec lookup =
  let missing = ref [] in
  let rows =
    List.filter_map
      (fun (app, protocol, ladder_name, ft) ->
        let protocol_name = protocol.Ft_core.Protocol.spec_name in
        let seed = cell_seed ~seed0:spec.seed0 ~app ~protocol_name ft in
        let key =
          job_key ~target_crashes:spec.target_crashes
            ~max_attempts:spec.max_attempts ~seed ~app ~protocol_name
            ~ladder_name ft
        in
        match lookup key with
        | Some v ->
            Some (row_of_json ~app ~fault_type:ft ~protocol_name ~ladder:ladder_name v)
        | None ->
            missing := key :: !missing;
            None)
      (cells spec)
  in
  { spec; rows; missing = List.rev !missing }

let run ?workers ?out_dir ?(fresh = false) ?(quiet = false) spec =
  let js = jobs spec in
  let lookup =
    match out_dir with
    | None -> Ft_exp.Exp.eval_lookup ?workers js
    | Some out_dir ->
        Ft_exp.Exp.lookup
          (Ft_exp.Exp.run_sweep ?workers ~fresh ~out_dir ~quiet ~name:"rescue"
             js)
  in
  of_records spec lookup

let clean r =
  r.missing = [] && List.for_all (fun row -> row.violations = 0) r.rows

(* --- report ---------------------------------------------------------------- *)

(* Aggregate over one ladder: total crashed-run mass and where the
   rescues came from. *)
type ladder_summary = {
  l_name : string;
  l_crashes : int;
  l_rescued_by_rung : int array;
  l_unrescued : int;
  l_violations : int;
  l_work_per_minstr : float;
  l_ref_work_per_minstr : float;
}

let summarize_ladder rows name =
  let rows = List.filter (fun r -> r.ladder = name) rows in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  let by_rung =
    Array.init 3 (fun i -> sum (fun r -> r.rescued_by_rung.(i)))
  in
  let instr = sum (fun r -> r.instr) and work = sum (fun r -> r.work) in
  let ref_instr = sum (fun r -> r.ref_instr)
  and ref_work = sum (fun r -> r.ref_work) in
  {
    l_name = name;
    l_crashes = sum (fun r -> r.crashes);
    l_rescued_by_rung = by_rung;
    l_unrescued = sum (fun r -> r.unrescued);
    l_violations = sum (fun r -> r.violations);
    l_work_per_minstr =
      (if instr = 0 then 0. else float_of_int work *. 1e6 /. float_of_int instr);
    l_ref_work_per_minstr =
      (if ref_instr = 0 then 0.
       else float_of_int ref_work *. 1e6 /. float_of_int ref_instr);
  }

let ladder_rescued_frac s =
  if s.l_crashes = 0 then 0.
  else
    float_of_int (Array.fold_left ( + ) 0 s.l_rescued_by_rung)
    /. float_of_int s.l_crashes

let summaries r =
  List.map (summarize_ladder r.rows) r.spec.ladder_names

let render r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Report.section
       (Printf.sprintf
          "Rescue: escalation rungs vs the faults generic recovery can't \
           (%d crashes/cell target)"
          r.spec.target_crashes));
  let pct x = Printf.sprintf "%.0f%%" (100. *. x) in
  Buffer.add_string b
    (Report.table
       ~headers:
         [ "app"; "fault"; "proto"; "ladder"; "crashes"; "L0"; "L1"; "L2";
           "stuck"; "resc%"; "work/Mi"; "taint"; "absorb"; "viol" ]
       ~rows:
         (List.map
            (fun row ->
              [
                app_name row.app;
                Ft_faults.Fault_type.to_string row.fault_type;
                row.protocol_name;
                row.ladder;
                string_of_int row.crashes;
                string_of_int row.rescued_by_rung.(0);
                string_of_int row.rescued_by_rung.(1);
                string_of_int row.rescued_by_rung.(2);
                string_of_int row.unrescued;
                pct (rescued_frac row);
                Printf.sprintf "%.1f" (work_per_minstr row);
                string_of_int row.tainted;
                string_of_int row.absorbed;
                string_of_int row.violations;
              ])
            r.rows));
  Buffer.add_string b "\nPer-ladder totals (fraction of crashed runs rescued):\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "  %-8s crashes %4d  rescued %s (L0 %d, L1 %d, L2 %d)  stuck %d  \
            work/Mi %.1f (fault-free %.1f)  violations %d\n"
           s.l_name s.l_crashes
           (pct (ladder_rescued_frac s))
           s.l_rescued_by_rung.(0) s.l_rescued_by_rung.(1)
           s.l_rescued_by_rung.(2) s.l_unrescued s.l_work_per_minstr
           s.l_ref_work_per_minstr s.l_violations))
    (summaries r);
  let sum f = List.fold_left (fun a row -> a + f row) 0 r.rows in
  Buffer.add_string b
    (Printf.sprintf
       "\nClassifier: %d transient, %d heisenbug, %d bohrbug, %d sticky \
        (over crashed runs, all ladders)\n"
       (sum (fun x -> x.transient))
       (sum (fun x -> x.heisenbug))
       (sum (fun x -> x.bohrbug))
       (sum (fun x -> x.sticky)));
  (if List.for_all (fun row -> row.violations = 0) r.rows then
     Buffer.add_string b
       "\nConsistency clean at every rung: deep rollback and perturbed \
        replay traded work, never correctness.\n"
   else
     Buffer.add_string b "\nCONSISTENCY VIOLATIONS — see the table above.\n");
  if r.missing <> [] then begin
    Buffer.add_string b "\nCells without a verdict:\n";
    List.iter
      (fun k -> Buffer.add_string b (Printf.sprintf "  %s\n" k))
      r.missing
  end;
  Buffer.contents b

(* --- BENCH_RESULTS.json ----------------------------------------------------- *)

let bench_kv r =
  let s name =
    match List.find_opt (fun s -> s.l_name = name) (summaries r) with
    | Some s -> s
    | None -> summarize_ladder [] name
  in
  let generic = s "generic" and full = s "full" in
  [
    ("rescue_rescued_frac", Jstore.Float (ladder_rescued_frac full));
    ("rescue_generic_frac", Jstore.Float (ladder_rescued_frac generic));
    ( "rescue_l2_rescues",
      Jstore.Int full.l_rescued_by_rung.(2) );
    ("rescue_violations", Jstore.Int (full.l_violations + generic.l_violations));
    ("rescue_work_per_minstr", Jstore.Float full.l_work_per_minstr);
  ]

let merge_bench ~path r =
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Jstore.of_string (String.trim s) with
      | Ok (Jstore.Obj kvs) -> kvs
      | _ -> []
    end
    else [ ("schema", Jstore.String "ft-bench/1") ]
  in
  let fresh = bench_kv r in
  let kept =
    List.filter (fun (k, _) -> not (List.mem_assoc k fresh)) existing
  in
  let oc = open_out path in
  output_string oc (Jstore.to_string (Jstore.Obj (kept @ fresh)));
  output_char oc '\n';
  close_out oc
