(** Table 2: fraction of operating-system faults after which the
    application fails to recover (paper §4.2).

    Each run injects one planned kernel fault.  Non-corrupting faults
    panic the kernel after a delay — a pure stop failure, from which
    recovery always works.  Corrupting faults serve bit-flipped results
    from one syscall subsystem until the panic; if the corruption reaches
    application state and gets committed before the eventual crash, the
    application keeps failing after recovery (a Lose-work violation with
    the propagation failure originating in the OS). *)

type row = {
  fault_type : Ft_faults.Fault_type.t;
  crashes : int;                 (* runs where system or app crashed *)
  failed_recoveries : int;
  propagated : int;              (* corruption reached the application *)
  no_effect : int;
}

let base_cfg (w : Ft_apps.Workload.t) =
  Ft_apps.Workload.engine_config w
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cpvs;
      suppress_faults_on_recovery = true;
      max_recovery_attempts = 2 }

let run_one ~(mk_workload : unit -> Ft_apps.Workload.t) ~reference_visible
    ~horizon ~weights ~fault_type ~seed =
  let w = mk_workload () in
  let cfg = base_cfg w in
  let cfg =
    { cfg with Ft_runtime.Engine.max_instructions = (40 * horizon) + 200_000 }
  in
  let kernel = Ft_apps.Workload.kernel w in
  let rng = Random.State.make [| seed |] in
  let plan = Ft_faults.Os_injector.plan ~weights rng fault_type in
  let fault = Ft_faults.Os_injector.arm kernel plan in
  let engine = Ft_runtime.Engine.create ~cfg ~kernel ~programs:w.programs () in
  let r = Ft_runtime.Engine.run engine in
  ignore reference_visible;
  let crashed =
    r.Ft_runtime.Engine.crashes > 0
    && r.Ft_runtime.Engine.outcome <> Ft_runtime.Engine.Instruction_budget
  in
  (* "Failed to recover" is the paper's criterion: the application does
     not come back up and run to completion (typically a crash loop from
     committed corrupted state).  A run whose output the kernel fault had
     already garbled before the crash still counts as recovered — the
     recovery system itself did its job. *)
  let recovered =
    r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed
  in
  ( crashed,
    recovered,
    Ft_faults.Os_injector.propagated fault )

let campaign ?(target_crashes = 50) ?(max_attempts = 900) ?(seed0 = 5000)
    ~mk_workload ~reference_visible ~horizon ~weights fault_type =
  let crashes = ref 0 and failed = ref 0 and propagated = ref 0
  and benign = ref 0 in
  let attempt = ref 0 in
  while !crashes < target_crashes && !attempt < max_attempts do
    let crashed, recovered, prop =
      run_one ~mk_workload ~reference_visible ~horizon ~weights ~fault_type
        ~seed:(seed0 + !attempt)
    in
    if crashed then begin
      incr crashes;
      if not recovered then incr failed;
      if prop then incr propagated
    end
    else incr benign;
    incr attempt
  done;
  {
    fault_type;
    crashes = !crashes;
    failed_recoveries = !failed;
    propagated = !propagated;
    no_effect = !benign;
  }

(* Table-2 sessions: comparable duration for both applications, with
   nvi making ~10x the syscalls per second (the paper's non-interactive
   nvi), so a kernel corruption window of a given length exposes nvi to
   proportionally more corrupted results. *)
let workload = function
  | Table1.Nvi ->
      Ft_apps.Nvi.workload
        ~params:
          { Ft_apps.Nvi.small_params with
            Ft_apps.Nvi.keystrokes = 1_000; interval_ns = 100_000 }
        ()
  | Table1.Postgres ->
      Ft_apps.Postgres.workload
        ~params:
          { Ft_apps.Postgres.small_params with
            Ft_apps.Postgres.queries = 120; interval_ns = 1_000_000 }
        ()

(* One full campaign for one fault type, self-contained (computes its
   own fault-free reference run): the unit of work a sweep job wraps. *)
let standalone_campaign ~target_crashes ~max_attempts ~seed0
    ~(app : Table1.app) ft =
  let mk_workload () = workload app in
  let w = mk_workload () in
  let cfg = base_cfg w in
  let kernel = Ft_apps.Workload.kernel w in
  let _, ref_run =
    Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
  in
  let reference_visible = ref_run.Ft_runtime.Engine.visible in
  let horizon = ref_run.Ft_runtime.Engine.wall_instructions in
  (* the injected fault lands in kernel paths the app exercises *)
  let weights = Ft_faults.Os_injector.usage_weights kernel in
  campaign ~target_crashes ~max_attempts ~seed0 ~mk_workload
    ~reference_visible ~horizon ~weights ft

(* Same identity-derived trial seeding as Table 1 (see
   {!Table1.campaign_seed}), offset so the two tables never share
   per-trial seeds even under a common [seed0]. *)
let campaign_seed ~seed0 ~app fault_type =
  Table1.campaign_seed ~seed0:(seed0 + 1_000_000) ~app fault_type

let row_to_json r =
  Ft_exp.Jstore.Obj
    [
      ("fault", Ft_exp.Jstore.String (Ft_faults.Fault_type.to_string r.fault_type));
      ("crashes", Ft_exp.Jstore.Int r.crashes);
      ("failed_recoveries", Ft_exp.Jstore.Int r.failed_recoveries);
      ("propagated", Ft_exp.Jstore.Int r.propagated);
      ("no_effect", Ft_exp.Jstore.Int r.no_effect);
    ]

let row_of_json fault_type v =
  {
    fault_type;
    crashes = Ft_exp.Jstore.get_int "crashes" v;
    failed_recoveries = Ft_exp.Jstore.get_int "failed_recoveries" v;
    propagated = Ft_exp.Jstore.get_int "propagated" v;
    no_effect = Ft_exp.Jstore.get_int "no_effect" v;
  }

let job_key ~target_crashes ~max_attempts ~seed ~app ft =
  Printf.sprintf "table2/%s/%s/crashes=%d/attempts=%d/seed=%d"
    (Table1.app_name app)
    (Ft_faults.Fault_type.to_string ft)
    target_crashes max_attempts seed

let jobs ?(target_crashes = 50) ?(max_attempts = 900) ?(seed0 = 5000)
    ~(app : Table1.app) () =
  List.map
    (fun ft ->
      let seed = campaign_seed ~seed0 ~app ft in
      Ft_exp.Job.make
        ~key:(job_key ~target_crashes ~max_attempts ~seed ~app ft)
        ~seed
        (fun () ->
          row_to_json
            (standalone_campaign ~target_crashes ~max_attempts ~seed0:seed
               ~app ft)))
    Ft_faults.Fault_type.all

let of_records ?(target_crashes = 50) ?(max_attempts = 900) ?(seed0 = 5000)
    ~app lookup =
  List.map
    (fun ft ->
      let seed = campaign_seed ~seed0 ~app ft in
      match lookup (job_key ~target_crashes ~max_attempts ~seed ~app ft) with
      | Some v -> row_of_json ft v
      | None ->
          {
            fault_type = ft;
            crashes = 0;
            failed_recoveries = 0;
            propagated = 0;
            no_effect = 0;
          })
    Ft_faults.Fault_type.all

let run ?(target_crashes = 50) ?(max_attempts = 900) ?(seed0 = 5000)
    ~(app : Table1.app) () =
  of_records ~target_crashes ~max_attempts ~seed0 ~app
    (Ft_exp.Exp.eval_lookup ~workers:1
       (jobs ~target_crashes ~max_attempts ~seed0 ~app ()))

let failure_pct row =
  if row.crashes = 0 then 0.
  else 100. *. float_of_int row.failed_recoveries /. float_of_int row.crashes

let average rows =
  let crashed = List.filter (fun r -> r.crashes > 0) rows in
  if crashed = [] then 0.
  else
    List.fold_left (fun a r -> a +. failure_pct r) 0. crashed
    /. float_of_int (List.length crashed)

(* Inferred fraction of OS failures that manifested as propagation
   failures (§4.2's closing inference). *)
let propagation_fraction rows =
  let crashes = List.fold_left (fun a r -> a + r.crashes) 0 rows in
  let prop = List.fold_left (fun a r -> a + r.propagated) 0 rows in
  if crashes = 0 then 0.
  else 100. *. float_of_int prop /. float_of_int crashes

let render ~app rows =
  Report.section
    (Printf.sprintf "Table 2 (%s): OS faults with failed recovery"
       (Table1.app_name app))
  ^ Report.table
      ~headers:
        [ "Fault type"; "crashes"; "failed rec."; "%"; "propagated" ]
      ~rows:
        (List.map
           (fun r ->
             [
               Ft_faults.Fault_type.to_string r.fault_type;
               string_of_int r.crashes;
               string_of_int r.failed_recoveries;
               Report.pct (failure_pct r);
               string_of_int r.propagated;
             ])
           rows
        @ [ [ "Average"; ""; ""; Report.pct (average rows); "" ] ])
