(** Table 1: fraction of application faults that violate Lose-work by
    committing after the fault is activated (paper §4.1).

    For each fault type we inject a planned fault into nvi or postgres
    running under Discount Checking with CPVS (the best uniprocess
    protocol for not violating Lose-work), keep only runs that crash,
    and measure whether a commit landed between fault activation and the
    crash.  The end-to-end check mirrors the paper's: recovery suppresses
    the fault activation; the run must then complete with consistent
    output iff no commit followed activation. *)

type app = Nvi | Postgres

let app_name = function Nvi -> "nvi" | Postgres -> "postgres"

let workload = function
  | Nvi -> Ft_apps.Nvi.workload ~params:Ft_apps.Nvi.small_params ()
  | Postgres -> Ft_apps.Postgres.workload ~params:Ft_apps.Postgres.small_params ()

type run_class =
  | No_effect           (* completed with correct output: discarded *)
  | Wrong_output        (* completed but output diverged: discarded *)
  | Hung                (* fault caused an endless loop: discarded *)
  | Crashed of {
      violation : bool;         (* commit between activation and crash *)
      recovered : bool;         (* end-to-end: consistent completion *)
    }

type row = {
  fault_type : Ft_faults.Fault_type.t;
  crashes : int;
  violations : int;
  wrong_output : int;
  no_effect : int;
  end_to_end_mismatches : int;
      (* runs where recovery success did not equal no-violation: the
         paper observed zero of these *)
}

let base_cfg w =
  Ft_apps.Workload.engine_config w
    { Ft_runtime.Engine.default_config with
      protocol = Ft_core.Protocols.cpvs;
      suppress_faults_on_recovery = true;
      max_recovery_attempts = 2 }

let reference app =
  let w = workload app in
  let cfg = base_cfg w in
  let kernel = Ft_apps.Workload.kernel w in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs () in
  (r.Ft_runtime.Engine.visible, r.Ft_runtime.Engine.wall_instructions)

(* One injected run.  Returns its classification.  Runs are bounded by a
   multiple of the fault-free instruction count: an injected fault that
   loops forever is a hang, not a crash, and is discarded like the
   paper's non-crashing runs. *)
let run_one ~app ~fault_type ~reference_visible ~horizon ~seed =
  let w = workload app in
  let cfg = base_cfg w in
  let cfg =
    { cfg with Ft_runtime.Engine.max_instructions = (40 * horizon) + 200_000 }
  in
  let kernel = Ft_apps.Workload.kernel w in
  let engine = Ft_runtime.Engine.create ~cfg ~kernel ~programs:w.programs () in
  let rng = Random.State.make [| seed |] in
  match
    Ft_faults.App_injector.plan rng fault_type ~code:w.programs.(0) ~horizon
  with
  | None -> No_effect
  | Some plan ->
      Ft_faults.App_injector.arm engine ~pid:0 plan;
      let r = Ft_runtime.Engine.run engine in
      let consistent =
        Ft_core.Consistency.is_consistent ~reference:reference_visible
          ~observed:r.Ft_runtime.Engine.visible
      in
      if r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Instruction_budget
      then
        (* Either an endless loop, or a slow-burn crash whose recovery ran
           out of patience: indeterminate, so discarded. *)
        Hung
      else if r.Ft_runtime.Engine.first_crash = None then
        if consistent then No_effect else Wrong_output
      else
        Crashed
          {
            violation = r.Ft_runtime.Engine.commit_after_activation;
            recovered =
              r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed
              && consistent;
          }

let campaign ?(target_crashes = 50) ?(max_attempts = 900) ?(seed0 = 1000)
    ~app fault_type =
  let reference_visible, horizon = reference app in
  let crashes = ref 0 and violations = ref 0 and wrong = ref 0
  and benign = ref 0 and mismatches = ref 0 in
  let attempt = ref 0 in
  while !crashes < target_crashes && !attempt < max_attempts do
    (match
       run_one ~app ~fault_type ~reference_visible ~horizon
         ~seed:(seed0 + !attempt)
     with
    | No_effect | Hung -> incr benign
    | Wrong_output -> incr wrong
    | Crashed { violation; recovered } ->
        incr crashes;
        if violation then incr violations;
        (* The paper found runs recovered iff they did not commit after
           activation; any mismatch indicates a checkpointing bug. *)
        if recovered = violation then incr mismatches);
    incr attempt
  done;
  {
    fault_type;
    crashes = !crashes;
    violations = !violations;
    wrong_output = !wrong;
    no_effect = !benign;
    end_to_end_mismatches = !mismatches;
  }

(* Each campaign's per-trial RNG is seeded from the campaign's identity
   (app and fault type), not from its position in the sweep or any
   shared counter: enumeration order and worker scheduling cannot change
   a trial's seed, which is what makes parallel sweeps reproduce serial
   ones byte for byte. *)
let campaign_seed ~seed0 ~app fault_type =
  let fault_index =
    let rec go i = function
      | [] -> 0
      | f :: _ when f = fault_type -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 Ft_faults.Fault_type.all
  in
  seed0
  + (match app with Nvi -> 0 | Postgres -> 100_000)
  + (10_000 * fault_index)

let row_to_json r =
  Ft_exp.Jstore.Obj
    [
      ("fault", Ft_exp.Jstore.String (Ft_faults.Fault_type.to_string r.fault_type));
      ("crashes", Ft_exp.Jstore.Int r.crashes);
      ("violations", Ft_exp.Jstore.Int r.violations);
      ("wrong_output", Ft_exp.Jstore.Int r.wrong_output);
      ("no_effect", Ft_exp.Jstore.Int r.no_effect);
      ("e2e_mismatches", Ft_exp.Jstore.Int r.end_to_end_mismatches);
    ]

let row_of_json fault_type v =
  {
    fault_type;
    crashes = Ft_exp.Jstore.get_int "crashes" v;
    violations = Ft_exp.Jstore.get_int "violations" v;
    wrong_output = Ft_exp.Jstore.get_int "wrong_output" v;
    no_effect = Ft_exp.Jstore.get_int "no_effect" v;
    end_to_end_mismatches = Ft_exp.Jstore.get_int "e2e_mismatches" v;
  }

let job_key ~target_crashes ~max_attempts ~seed ~app ft =
  Printf.sprintf "table1/%s/%s/crashes=%d/attempts=%d/seed=%d" (app_name app)
    (Ft_faults.Fault_type.to_string ft)
    target_crashes max_attempts seed

let jobs ?(target_crashes = 50) ?(max_attempts = 900) ?(seed0 = 1000) ~app ()
    =
  List.map
    (fun ft ->
      let seed = campaign_seed ~seed0 ~app ft in
      Ft_exp.Job.make
        ~key:(job_key ~target_crashes ~max_attempts ~seed ~app ft)
        ~seed
        (fun () ->
          row_to_json
            (campaign ~target_crashes ~max_attempts ~seed0:seed ~app ft)))
    Ft_faults.Fault_type.all

let of_records ?(target_crashes = 50) ?(max_attempts = 900) ?(seed0 = 1000)
    ~app lookup =
  List.map
    (fun ft ->
      let seed = campaign_seed ~seed0 ~app ft in
      match lookup (job_key ~target_crashes ~max_attempts ~seed ~app ft) with
      | Some v -> row_of_json ft v
      | None ->
          {
            fault_type = ft;
            crashes = 0;
            violations = 0;
            wrong_output = 0;
            no_effect = 0;
            end_to_end_mismatches = 0;
          })
    Ft_faults.Fault_type.all

let run ?(target_crashes = 50) ?(max_attempts = 900) ?(seed0 = 1000) ~app () =
  of_records ~target_crashes ~max_attempts ~seed0 ~app
    (Ft_exp.Exp.eval_lookup ~workers:1
       (jobs ~target_crashes ~max_attempts ~seed0 ~app ()))

let violation_pct row =
  if row.crashes = 0 then 0.
  else 100. *. float_of_int row.violations /. float_of_int row.crashes

let average rows =
  let crashed = List.filter (fun r -> r.crashes > 0) rows in
  if crashed = [] then 0.
  else
    List.fold_left (fun a r -> a +. violation_pct r) 0. crashed
    /. float_of_int (List.length crashed)

let render ~app rows =
  Report.section
    (Printf.sprintf
       "Table 1 (%s): application faults violating Lose-work" (app_name app))
  ^ Report.table
      ~headers:
        [ "Fault type"; "crashes"; "violations"; "%"; "wrong-out"; "benign";
          "e2e-mism" ]
      ~rows:
        (List.map
           (fun r ->
             [
               Ft_faults.Fault_type.to_string r.fault_type;
               string_of_int r.crashes;
               string_of_int r.violations;
               Report.pct (violation_pct r);
               string_of_int r.wrong_output;
               string_of_int r.no_effect;
               string_of_int r.end_to_end_mismatches;
             ])
           rows
        @ [ [ "Average"; ""; ""; Report.pct (average rows); ""; ""; "" ] ])
