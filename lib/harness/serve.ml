(** Serve: the fleet-scale serving campaign — hundreds to thousands of
    postgres instances under continuous fault injection, measured the
    way an operator would measure them: request-latency percentiles,
    goodput, useful work per unit cost, and time-to-recover after each
    crash.

    The load is open-loop: each tenant's query stream arrives at fixed
    absolute times ({!Ft_os.Kernel.set_input_absolute}), so a crash
    shows up as latency on the backlog instead of politely shifting the
    schedule — the regime where generic recovery's stall is visible to
    users.  Every query is acknowledged with a sequence-numbered visible
    output ({!Ft_apps.Postgres} driver mode); latency is the ack's
    engine timestamp minus the query's scheduled arrival, and MTTR is
    the gap from each crash to the first subsequent ack.

    Tenants are sharded into {!Ft_runtime.Scheduler} instances — many
    tenants stepped by one scheduler against a shared virtual clock,
    optionally sharing one storm-torn {!Ft_net.Transport} — and the
    shards fan out over {!Ft_exp.Exp} jobs, so [-j 1] and [-j N] produce
    byte-identical campaigns (each shard is a pure function of its key
    and seed).

    Oracles ride along: per-tenant Consistency against a fault-free
    reference run (duplicates tolerated; a tenant that ran out of
    recovery budget may be a prefix, but never {e wrong}), and the
    visible half of Save-work, as in {!Netstorm}.  Cost accounting
    follows Dwork–Halpern–Waarts: useful work is acked requests, cost is
    instructions executed — replay instructions are pure waste, so the
    work-per-cost ratio is exactly what the recovery protocol is
    spending to stay transparent. *)

module Engine = Ft_runtime.Engine
module Scheduler = Ft_runtime.Scheduler
module Consistency = Ft_core.Consistency
module Save_work = Ft_core.Save_work
module Jstore = Ft_exp.Jstore

type params = {
  procs : int;           (* tenant instances in the fleet *)
  requests : int;        (* total queries, fleet-wide *)
  crash_rate : float;    (* expected kills per tenant per simulated second *)
  storm : Netstorm.point option;
      (* weather on the shard-shared transport (loss/dup/reorder tiers) *)
  seed : int;
  shard_size : int;      (* tenants per scheduler/job *)
  interval_ns : int;     (* open-loop arrival interval per tenant *)
  keyspace : int;
  check_every : int;     (* postgres sanity-check cadence *)
  poison : int;
      (* crash-looping tenants: the first [poison] tenants of the fleet
         carry a deterministic Bohrbug (a wild jump on the program's hot
         path) that every generic replay re-executes — the crash loop
         generic recovery cannot escape.  Arms the per-tenant quarantine
         breaker fleet-wide; the demo is that the breaker parks the
         loopers while healthy tenants' tail latency stays bounded *)
  recovery_crash_rate : float;
      (* expected nested failures per tenant per campaign: crashes
         injected into the recovery path itself (mid-restore,
         mid-cascade, mid-commit-round), occurrence-indexed via
         {!Ft_faults.Recovery_plan} — recovery must be idempotent to
         survive them *)
  det_cap : int;
      (* hard cap on live determinants per tenant (0 = uncapped): past
         it the kernel forces a commit-equivalent flush instead of
         growing the log — the graceful-degradation bound *)
}

let default_params =
  {
    procs = 100;
    requests = 100_000;
    crash_rate = 0.5;
    storm = None;
    seed = 42;
    shard_size = 64;
    interval_ns = 1_000_000;
    keyspace = 120;
    check_every = 16;
    poison = 0;
    recovery_crash_rate = 0.;
    det_cap = 256;
  }

(* Small, fast, still multi-shard: the CI gate. *)
let smoke_params =
  {
    procs = 8;
    requests = 1_600;
    crash_rate = 4.0;
    storm = None;
    seed = 42;
    shard_size = 4;
    interval_ns = 1_000_000;
    keyspace = 60;
    check_every = 16;
    poison = 0;
    recovery_crash_rate = 0.;
    det_cap = 64;
  }

let queries_per_tenant p = max 1 (p.requests / max 1 p.procs)

(* Per-tenant derived seed: decorrelates query streams and kill clocks
   across the fleet while staying a pure function of (seed, tenant). *)
let tenant_seed ~seed tid =
  let rng = Random.State.make [| seed; tid; 0x5e7e |] in
  Random.State.bits rng

(* Seeded Poisson kill process for one tenant: exponential gaps at
   [crash_rate] per simulated second, out to a horizon generously past
   the open-loop schedule (recovery stalls push completion right).
   The sampling itself lives in {!Ft_faults.Kill_plan} (shared with the
   rescue campaign); the draw order is unchanged, so schedules are
   byte-identical to what this module always produced. *)
let tenant_kills ~crash_rate ~horizon_ns ~seed tid =
  Ft_faults.Kill_plan.tenant ~crash_rate ~horizon_ns ~seed tid

let tenant_workload p ~seed tid =
  let pg =
    {
      Ft_apps.Postgres.queries = queries_per_tenant p;
      keyspace = p.keyspace;
      interval_ns = p.interval_ns;
      check_every = p.check_every;
      seed = tenant_seed ~seed tid;
    }
  in
  Ft_apps.Postgres.workload ~params:pg ~ack:true ~open_loop:true ()

(* A deterministic Bohrbug: the program's first syscall becomes a wild
   jump, so every execution crashes ([Bad_jump]) before the first ack and
   every generic replay re-executes the crash — zero progress, forever.
   This is the recurrence the rescue campaign measures, loose in a
   fleet. *)
let poison_program code =
  let rec find i =
    if i >= Array.length code then None
    else
      match code.(i) with Ft_vm.Instr.Sys _ -> Some i | _ -> find (i + 1)
  in
  match find 0 with
  | Some i -> code.(i) <- Ft_vm.Instr.Jmp (-1)
  | None -> ()

(* Breaker tuning for poisoned fleets: a crash-looping tenant racks up
   crashes separated only by replay time, so [threshold] of them land
   well inside the window within milliseconds of simulated time; healthy
   tenants under Poisson kills never accumulate that density. *)
let quarantine_params =
  {
    Ft_recovery.Quarantine.window_ns = 50_000_000;
    threshold = 6;
    backoff_ns = 20_000_000;
    backoff_mult = 2.0;
    max_trips = 4;
  }

let tenant_config ?quarantine ?(recovery_kills = []) ?(det_cap = 0) ~protocol
    ~kills (w : Ft_apps.Workload.t) =
  Ft_apps.Workload.engine_config w
    {
      Engine.default_config with
      protocol;
      kills;
      recovery_kills;
      det_cap;
      (* Random kills can land during replay before any new commit;
         give the budget room so only a genuinely wedged tenant fails. *)
      max_recovery_attempts = 10;
      quarantine;
    }

(* Build one shard's scheduler: tenants [lo, hi) of the fleet, each with
   its own kernel, plus (under a storm) one shared transport carved into
   per-kernel pid ranges. *)
let shard_scheduler p ~protocol ~crash_rate ~lo ~hi () =
  let n = hi - lo in
  let horizon_ns = (queries_per_tenant p * p.interval_ns * 2) + 2_000_000_000 in
  let ws = Array.init n (fun i -> tenant_workload p ~seed:p.seed (lo + i)) in
  let kernels =
    Array.mapi
      (fun i w -> Ft_apps.Workload.kernel ~seed:(tenant_seed ~seed:p.seed (lo + i) lxor 0x6b) w)
      ws
  in
  (match p.storm with
  | None -> ()
  | Some point ->
      let wnprocs = ws.(0).Ft_apps.Workload.nprocs in
      let policy =
        Ft_net.Policy.make ~drop:point.Netstorm.loss
          ~duplicate:point.Netstorm.dup ~reorder:point.Netstorm.reorder ()
      in
      let costs = Ft_os.Kernel.costs kernels.(0) in
      let tr =
        Ft_net.Transport.create
          ~policy:(fun _ _ -> policy)
          ~seed:(tenant_seed ~seed:p.seed (lo lxor 0x517))
          ~nprocs:(n * wnprocs)
          ~latency_ns:costs.Ft_os.Kernel.network_latency_ns
          ~jitter_ns:costs.Ft_os.Kernel.network_jitter_ns
          ~deliver:(fun ~at ~src:_ ~dst m ->
            Ft_os.Kernel.deliver_net kernels.(dst / wnprocs) ~at
              ~dst:(dst mod wnprocs) m)
          ()
      in
      Array.iteri
        (fun i k -> Ft_os.Kernel.set_net k ~base:(i * wnprocs) tr)
        kernels);
  let tenants =
    Array.init n (fun i ->
        let tid = lo + i in
        if tid < p.poison then
          poison_program ws.(i).Ft_apps.Workload.programs.(0);
        let kills =
          tenant_kills ~crash_rate ~horizon_ns ~seed:p.seed tid
        in
        let recovery_kills =
          Ft_faults.Recovery_plan.tenant ~rate:p.recovery_crash_rate
            ~seed:p.seed tid
        in
        let quarantine =
          if p.poison > 0 then Some quarantine_params else None
        in
        ( tenant_config ?quarantine ~recovery_kills ~det_cap:p.det_cap
            ~protocol ~kills ws.(i),
          kernels.(i),
          ws.(i).Ft_apps.Workload.programs ))
  in
  Scheduler.create ~tenants ()

(* A tiny in-process fleet for the bench micros. *)
let fleet ?(protocol = Ft_core.Protocols.cpvs) ?(crash_rate = 0.) ~tenants
    ~queries_per_tenant:q ~seed () =
  let p =
    { default_params with
      procs = tenants; requests = tenants * q; seed; shard_size = tenants }
  in
  shard_scheduler p ~protocol ~crash_rate ~lo:0 ~hi:tenants ()

(* --- per-tenant measurement ---------------------------------------------- *)

(* First-occurrence ack times, indexed by 1-based query number.  The
   first occurrence is what the user saw; a rollback may re-emit the ack
   later, but visible output cannot be retracted. *)
let ack_times p (r : Scheduler.result) =
  let q = queries_per_tenant p in
  let times = Array.make (q + 1) (-1) in
  List.iter
    (fun (_, v, t) ->
      let n = v - Ft_apps.Postgres.ack_base in
      if n >= 1 && n <= q && times.(n) < 0 then times.(n) <- t)
    r.Scheduler.visible_times;
  times

(* (acked, latencies) — latency in ns against the open-loop schedule. *)
let latencies p times =
  let lats = ref [] and acked = ref 0 in
  Array.iteri
    (fun n t ->
      if n >= 1 && t >= 0 then begin
        incr acked;
        let arrival = (n - 1) * p.interval_ns in
        lats := max 0 (t - arrival) :: !lats
      end)
    times;
  (!acked, !lats)

(* MTTR: each crash to the first ack strictly after it — how long the
   tenant's users stared at a stalled service. *)
let mttrs (r : Scheduler.result) times =
  let acks =
    Array.to_list times |> List.filter (fun t -> t >= 0) |> List.sort compare
  in
  List.filter_map
    (fun (_, ct) ->
      List.find_opt (fun t -> t > ct) acks |> Option.map (fun t -> t - ct))
    r.Scheduler.crash_times

let outcome_name = function
  | Scheduler.Completed -> "completed"
  | Scheduler.Deadline -> "deadline"
  | Scheduler.Recovery_failed -> "recovery-failed"
  | Scheduler.Deadlocked -> "deadlocked"
  | Scheduler.Instruction_budget -> "instruction-budget"
  | Scheduler.Net_unreachable -> "net-unreachable"

(* --- shard jobs ------------------------------------------------------------ *)

let storm_tag p =
  match p.storm with None -> "calm0" | Some pt -> pt.Netstorm.label

let job_key p ~label ~shard =
  Printf.sprintf
    "serve/%s/%s/procs=%d/req=%d/crash=%g/rcrash=%g/dcap=%d/poison=%d/shard=%d/size=%d/seed=%d"
    label (storm_tag p) p.procs p.requests p.crash_rate
    p.recovery_crash_rate p.det_cap p.poison shard p.shard_size p.seed

let shard_bounds p shard =
  let lo = shard * p.shard_size in
  (lo, min p.procs (lo + p.shard_size))

let nshards p = (p.procs + p.shard_size - 1) / p.shard_size

let job p ~protocol shard =
  let label = protocol.Ft_core.Protocol.spec_name in
  Ft_exp.Job.make
    ~key:(job_key p ~label ~shard)
    ~seed:p.seed
    (fun () ->
      let lo, hi = shard_bounds p shard in
      let sched =
        shard_scheduler p ~protocol ~crash_rate:p.crash_rate ~lo ~hi ()
      in
      let results = Scheduler.run sched in
      (* Fault-free reference per tenant: the Consistency oracle's
         ground truth and the cost baseline. *)
      let refs =
        Array.init (hi - lo) (fun i ->
            let w = tenant_workload p ~seed:p.seed (lo + i) in
            let cfg = tenant_config ~protocol ~kills:[] w in
            let kernel =
              Ft_apps.Workload.kernel
                ~seed:(tenant_seed ~seed:p.seed (lo + i) lxor 0x6b)
                w
            in
            snd
              (Engine.execute ~cfg ~kernel
                 ~programs:w.Ft_apps.Workload.programs ()))
      in
      let lat_hist = Hashtbl.create 256 in
      let mttr_all = ref [] and mttr_nested = ref [] in
      let acked = ref 0 and crashes = ref 0 and recoveries = ref 0 in
      let failed = ref 0 and instr = ref 0 and ref_instr = ref 0 in
      let sim_ns = ref 0 in
      let quarantined = ref 0 and crash_loops = ref 0 in
      let nested = ref 0 and resumes = ref 0 in
      let det_hw = ref 0 and det_flushes = ref 0 in
      let bad = ref [] in
      Array.iteri
        (fun i (r : Scheduler.result) ->
          let times = ack_times p r in
          let a, lats = latencies p times in
          acked := !acked + a;
          List.iter
            (fun l ->
              let cell = l / 1000 in
              Hashtbl.replace lat_hist cell
                (1 + Option.value ~default:0 (Hashtbl.find_opt lat_hist cell)))
            lats;
          let tenant_mttrs = mttrs r times in
          mttr_all := List.rev_append tenant_mttrs !mttr_all;
          (* MTTR through a crashed recovery: the repair interval of a
             tenant whose recovery path itself died at least once *)
          if r.Scheduler.nested_crashes > 0 then
            mttr_nested := List.rev_append tenant_mttrs !mttr_nested;
          nested := !nested + r.Scheduler.nested_crashes;
          resumes := !resumes + r.Scheduler.cascade_resumes;
          det_hw := max !det_hw r.Scheduler.det_high_water;
          det_flushes := !det_flushes + r.Scheduler.det_forced_flushes;
          crashes := !crashes + r.Scheduler.crashes;
          recoveries := !recoveries + r.Scheduler.recoveries;
          instr := !instr + r.Scheduler.wall_instructions;
          sim_ns := max !sim_ns r.Scheduler.sim_time_ns;
          let reference = refs.(i) in
          ref_instr := !ref_instr + reference.Scheduler.wall_instructions;
          let tname = Printf.sprintf "tenant %d" (lo + i) in
          let poisoned = lo + i < p.poison in
          if r.Scheduler.quarantine_trips > 0 then begin
            incr quarantined;
            crash_loops := !crash_loops + r.Scheduler.quarantine_trips
          end;
          (* A poisoned tenant's job is to crash-loop: not completing
             (parked, latched, budget-exhausted) is its expected fate,
             not an oracle violation.  Its output must still never be
             WRONG — the consistency check below applies to everyone. *)
          (match r.Scheduler.outcome with
          | Scheduler.Completed -> ()
          | _ when poisoned -> incr failed
          | o ->
              incr failed;
              bad :=
                Printf.sprintf "%s: outcome %s" tname (outcome_name o) :: !bad);
          (match
             Consistency.check ~reference:reference.Scheduler.visible
               ~observed:r.Scheduler.visible
           with
          | Consistency.Consistent -> ()
          | Consistency.Truncated _ when r.Scheduler.outcome <> Scheduler.Completed ->
              (* ran out of recovery budget mid-schedule: a prefix is
                 honest — only wrong output is a violation *)
              ()
          | v ->
              bad :=
                Printf.sprintf "%s: %s" tname
                  (Format.asprintf "%a" Consistency.pp_verdict v)
                :: !bad);
          if
            (not poisoned)
            && Save_work.visible_violations reference.Scheduler.trace = []
            && Save_work.visible_violations r.Scheduler.trace <> []
          then bad := Printf.sprintf "%s: save-work broken" tname :: !bad)
        results;
      let lat_cells =
        Hashtbl.fold (fun us n acc -> (us, n) :: acc) lat_hist []
        |> List.sort compare
      in
      Jstore.Obj
        [
          ("tenants", Jstore.Int (hi - lo));
          ("requests", Jstore.Int ((hi - lo) * queries_per_tenant p));
          ("acked", Jstore.Int !acked);
          ("crashes", Jstore.Int !crashes);
          ("recoveries", Jstore.Int !recoveries);
          ("failed", Jstore.Int !failed);
          ("sim_ns", Jstore.Int !sim_ns);
          ("instr", Jstore.Int !instr);
          ("ref_instr", Jstore.Int !ref_instr);
          ("sched_steps", Jstore.Int (Scheduler.steps sched));
          ("quarantined_tenants", Jstore.Int !quarantined);
          ("crash_loop_events", Jstore.Int !crash_loops);
          ("nested_crashes", Jstore.Int !nested);
          ("cascade_resumes", Jstore.Int !resumes);
          ("det_high_water", Jstore.Int !det_hw);
          ("det_forced_flushes", Jstore.Int !det_flushes);
          ( "mttr_nested_ns",
            Jstore.List (List.rev_map (fun t -> Jstore.Int t) !mttr_nested) );
          ("bad", Jstore.List (List.rev_map (fun s -> Jstore.String s) !bad));
          ( "lat_us",
            Jstore.List
              (List.map
                 (fun (us, n) -> Jstore.List [ Jstore.Int us; Jstore.Int n ])
                 lat_cells) );
          ("mttr_ns", Jstore.List (List.rev_map (fun t -> Jstore.Int t) !mttr_all));
        ])

let jobs ?(protocols = [ Ft_core.Protocols.cpvs ]) p =
  List.concat_map
    (fun protocol ->
      List.init (nshards p) (fun shard -> job p ~protocol shard))
    protocols

(* --- report ---------------------------------------------------------------- *)

type proto_summary = {
  s_protocol : string;
  s_tenants : int;
  s_requests : int;
  s_acked : int;
  s_crashes : int;
  s_recoveries : int;
  s_failed : int;            (* tenants that did not complete *)
  s_sim_ns : int;            (* fleet wall: max tenant sim time *)
  s_instr : int;
  s_ref_instr : int;
  s_p50_ns : int;
  s_p99_ns : int;
  s_p999_ns : int;
  s_mttr_count : int;
  s_mttr_mean_ns : int;
  s_mttr_max_ns : int;
  s_goodput : float;         (* acked requests per simulated second *)
  s_work_per_minstr : float; (* acked requests per million instructions *)
  s_overhead : float;        (* instructions vs the fault-free reference *)
  s_quarantined : int;       (* tenants the circuit breaker parked *)
  s_crash_loop_events : int; (* breaker trips across the fleet *)
  s_nested_crashes : int;    (* crashes that landed inside recovery *)
  s_cascade_resumes : int;   (* rollback cascades resumed, not restarted *)
  s_det_high_water : int;    (* peak live determinants, any tenant *)
  s_det_forced_flushes : int; (* cap-triggered flushes across the fleet *)
  s_mttr_nested_count : int;
  s_mttr_nested_mean_ns : int;
      (* repair time of tenants whose recovery path itself crashed *)
  s_bad : string list;
}

type report = {
  params : params;
  summaries : proto_summary list;
  missing : string list;
}

let clean r =
  r.missing = [] && List.for_all (fun s -> s.s_bad = []) r.summaries

let summarize ~label shard_values =
  let sum f = List.fold_left (fun a v -> a + f v) 0 shard_values in
  let geti k v = Jstore.get_int k v in
  let tenants = sum (geti "tenants") in
  let requests = sum (geti "requests") in
  let acked = sum (geti "acked") in
  let sim_ns = List.fold_left (fun a v -> max a (geti "sim_ns" v)) 0 shard_values in
  let instr = sum (geti "instr") in
  let ref_instr = sum (geti "ref_instr") in
  let cells =
    List.concat_map
      (fun v ->
        match Jstore.member "lat_us" v with
        | Some (Jstore.List l) ->
            List.filter_map
              (function
                | Jstore.List [ Jstore.Int us; Jstore.Int n ] -> Some (us, n)
                | _ -> None)
              l
        | _ -> [])
      shard_values
    |> Array.of_list
  in
  let pct q =
    if Array.length cells = 0 then 0
    else Ft_exp.Metrics.percentile_counts cells q * 1000
  in
  let int_list field =
    List.concat_map
      (fun v ->
        match Jstore.member field v with
        | Some (Jstore.List l) -> List.filter_map Jstore.to_int l
        | _ -> [])
      shard_values
  in
  let mttrs = int_list "mttr_ns" in
  let mttrs_nested = int_list "mttr_nested_ns" in
  let bad =
    List.concat_map
      (fun v ->
        match Jstore.member "bad" v with
        | Some (Jstore.List l) -> List.filter_map Jstore.to_str l
        | _ -> [])
      shard_values
  in
  let nm = List.length mttrs in
  let nmn = List.length mttrs_nested in
  {
    s_protocol = label;
    s_tenants = tenants;
    s_requests = requests;
    s_acked = acked;
    s_crashes = sum (geti "crashes");
    s_recoveries = sum (geti "recoveries");
    s_failed = sum (geti "failed");
    s_sim_ns = sim_ns;
    s_instr = instr;
    s_ref_instr = ref_instr;
    s_p50_ns = pct 0.50;
    s_p99_ns = pct 0.99;
    s_p999_ns = pct 0.999;
    s_mttr_count = nm;
    s_mttr_mean_ns =
      (if nm = 0 then 0 else List.fold_left ( + ) 0 mttrs / nm);
    s_mttr_max_ns = List.fold_left max 0 mttrs;
    s_goodput =
      (if sim_ns <= 0 then 0.
       else float_of_int acked /. (float_of_int sim_ns /. 1e9));
    s_work_per_minstr =
      (if instr <= 0 then 0.
       else float_of_int acked *. 1e6 /. float_of_int instr);
    s_overhead =
      (if ref_instr <= 0 then 0.
       else float_of_int instr /. float_of_int ref_instr);
    s_quarantined = sum (fun v -> Jstore.get_int ~default:0 "quarantined_tenants" v);
    s_crash_loop_events =
      sum (fun v -> Jstore.get_int ~default:0 "crash_loop_events" v);
    s_nested_crashes =
      sum (fun v -> Jstore.get_int ~default:0 "nested_crashes" v);
    s_cascade_resumes =
      sum (fun v -> Jstore.get_int ~default:0 "cascade_resumes" v);
    s_det_high_water =
      List.fold_left
        (fun a v -> max a (Jstore.get_int ~default:0 "det_high_water" v))
        0 shard_values;
    s_det_forced_flushes =
      sum (fun v -> Jstore.get_int ~default:0 "det_forced_flushes" v);
    s_mttr_nested_count = nmn;
    s_mttr_nested_mean_ns =
      (if nmn = 0 then 0 else List.fold_left ( + ) 0 mttrs_nested / nmn);
    s_bad = bad;
  }

let of_records ?(protocols = [ Ft_core.Protocols.cpvs ]) p lookup =
  let missing = ref [] in
  let summaries =
    List.map
      (fun protocol ->
        let label = protocol.Ft_core.Protocol.spec_name in
        let values =
          List.filter_map
            (fun shard ->
              let key = job_key p ~label ~shard in
              match lookup key with
              | Some v -> Some v
              | None ->
                  missing := key :: !missing;
                  None)
            (List.init (nshards p) Fun.id)
        in
        summarize ~label values)
      protocols
  in
  { params = p; summaries; missing = List.rev !missing }

let run ?workers ?out_dir ?(fresh = false) ?(quiet = false)
    ?(protocols = [ Ft_core.Protocols.cpvs ]) p =
  let js = jobs ~protocols p in
  let lookup =
    match out_dir with
    | None -> Ft_exp.Exp.eval_lookup ?workers js
    | Some out_dir ->
        Ft_exp.Exp.lookup
          (Ft_exp.Exp.run_sweep ?workers ~fresh ~out_dir ~quiet ~name:"serve"
             js)
  in
  of_records ~protocols p lookup

let ms ns = Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)

let render r =
  let b = Buffer.create 1024 in
  let p = r.params in
  Buffer.add_string b
    (Report.section
       (Printf.sprintf
          "Serve: %d tenants, %d requests, crash-rate %g/s, \
           recovery-crash %g, det-cap %d, storm %s"
          p.procs p.requests p.crash_rate p.recovery_crash_rate p.det_cap
          (storm_tag p)));
  Buffer.add_string b
    (Report.table
       ~headers:
         [ "protocol"; "acked"; "goodput"; "p50"; "p99"; "p999"; "mttr";
           "crashes"; "nested"; "det"; "quar"; "work/Mi"; "overhead" ]
       ~rows:
         (List.map
            (fun s ->
              [
                s.s_protocol;
                Printf.sprintf "%d/%d" s.s_acked s.s_requests;
                Printf.sprintf "%.0f/s" s.s_goodput;
                ms s.s_p50_ns;
                ms s.s_p99_ns;
                ms s.s_p999_ns;
                (if s.s_mttr_count = 0 then "-"
                 else
                   Printf.sprintf "%s (max %s, n=%d)" (ms s.s_mttr_mean_ns)
                     (ms s.s_mttr_max_ns) s.s_mttr_count);
                string_of_int s.s_crashes;
                (* crashes that landed inside recovery, and how many
                   rollback cascades were resumed rather than restarted *)
                (if s.s_nested_crashes = 0 then "-"
                 else
                   Printf.sprintf "%d (%d res)" s.s_nested_crashes
                     s.s_cascade_resumes);
                (* determinant-log high-water / cap-forced flushes *)
                (if s.s_det_high_water = 0 then "-"
                 else
                   Printf.sprintf "hw %d/%d fl" s.s_det_high_water
                     s.s_det_forced_flushes);
                (if s.s_quarantined = 0 then "-"
                 else
                   Printf.sprintf "%d (%d trips)" s.s_quarantined
                     s.s_crash_loop_events);
                Printf.sprintf "%.1f" s.s_work_per_minstr;
                Printf.sprintf "%.2fx" s.s_overhead;
              ])
            r.summaries));
  let bad = List.concat_map (fun s -> s.s_bad) r.summaries in
  if bad = [] && r.missing = [] then
    Buffer.add_string b
      "\nNo oracle violations: every ack consistent with the fault-free \
       reference, Save-work intact.\n"
  else begin
    if bad <> [] then begin
      Buffer.add_string b "\nViolations:\n";
      List.iter
        (fun s ->
          List.iter
            (fun m ->
              Buffer.add_string b
                (Printf.sprintf "  [%s] %s\n" s.s_protocol m))
            s.s_bad)
        r.summaries
    end;
    if r.missing <> [] then begin
      Buffer.add_string b "\nShards without a verdict:\n";
      List.iter
        (fun k -> Buffer.add_string b (Printf.sprintf "  %s\n" k))
        r.missing
    end
  end;
  Buffer.contents b

(* --- BENCH_RESULTS.json ----------------------------------------------------- *)

let bench_kv r =
  let per_proto =
    List.concat_map
      (fun s ->
        let k suffix = Printf.sprintf "serve_%s_%s" s.s_protocol suffix in
        [
          (k "p50_ns", Jstore.Int s.s_p50_ns);
          (k "p99_ns", Jstore.Int s.s_p99_ns);
          (k "p999_ns", Jstore.Int s.s_p999_ns);
          (k "goodput", Jstore.Float s.s_goodput);
          (k "mttr_ns", Jstore.Int s.s_mttr_mean_ns);
          (k "work_per_minstr", Jstore.Float s.s_work_per_minstr);
          (k "quarantined_tenants", Jstore.Int s.s_quarantined);
          (k "crash_loop_events", Jstore.Int s.s_crash_loop_events);
          (k "nested_crashes", Jstore.Int s.s_nested_crashes);
          (k "det_high_water", Jstore.Int s.s_det_high_water);
          (k "det_forced_flushes", Jstore.Int s.s_det_forced_flushes);
        ])
      r.summaries
  in
  (* Fleet-level nested-recovery MTTR: repair time pooled over every
     tenant (any protocol) whose recovery path itself crashed. *)
  let n = List.fold_left (fun a s -> a + s.s_mttr_nested_count) 0 r.summaries in
  let tot =
    List.fold_left
      (fun a s -> a + (s.s_mttr_nested_count * s.s_mttr_nested_mean_ns))
      0 r.summaries
  in
  ("serve_mttr_nested_ns", Jstore.Int (if n = 0 then 0 else tot / n))
  :: per_proto

(* Merge the serve keys into an existing flat BENCH_RESULTS.json (or
   start one) without disturbing the bench harness's keys: the CI schema
   gate requires the key set only ever to grow. *)
let merge_bench ~path r =
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Jstore.of_string (String.trim s) with
      | Ok (Jstore.Obj kvs) -> kvs
      | _ -> []
    end
    else [ ("schema", Jstore.String "ft-bench/1") ]
  in
  let fresh = bench_kv r in
  let kept =
    List.filter (fun (k, _) -> not (List.mem_assoc k fresh)) existing
  in
  let oc = open_out path in
  output_string oc (Jstore.to_string (Jstore.Obj (kept @ fresh)));
  output_char oc '\n';
  close_out oc
