(** Crash-point torture: verify recovery at every word write of a
    commit.

    The failure-transparency argument leans entirely on one mechanism:
    a checkpoint commit interrupted between ANY two persisted word
    writes must recover to exactly the previous committed image or the
    new one — never a hybrid.  The paper asserts this of Vista's
    undo-log discipline (§3); this harness checks it.

    One torture point [k] is a full experiment: build a fresh kernel,
    machine and checkpointer, take checkpoint zero, dirty a multi-page
    working set, then re-execute the second commit with a
    {!Ft_faults.Mem_injector} armed to crash after exactly [k]
    persisted words.  Recovery then runs over a {e freshly created}
    Vista segment on the old region — the persisted words are its sole
    input — and the recovered data image plus commits counter must
    equal the pre-commit or post-commit capture, bit for bit.

    The sweep over [k = 0 .. W] (or a seeded sample) fans out over
    {!Ft_exp.Exp} jobs, so it parallelizes with [-j] and resumes from a
    warm results store like every other experiment in the repo. *)

module Rio = Ft_stablemem.Rio
module Vista = Ft_stablemem.Vista
module Checkpointer = Ft_runtime.Checkpointer

type scenario = {
  heap_words : int;
  stack_words : int;
  page_size : int;
  dirty_pages : int;   (* pages rewritten between the two commits *)
  stack_depth : int;   (* live stack words at the instrumented commit *)
  seed : int;
}

(* A properly multi-page commit: 16 dirty pages of 64 words, plus stack,
   metadata and kernel state — a couple of thousand crash points. *)
let default_scenario =
  {
    heap_words = 2048;
    stack_words = 64;
    page_size = 64;
    dirty_pages = 16;
    stack_depth = 24;
    seed = 1;
  }

type points = All | Sample of int

type verdict =
  | Rolled_back          (* recovered image = pre-commit checkpoint *)
  | Committed            (* recovered image = post-commit checkpoint *)
  | Violation of string  (* hybrid image, or recovery itself failed *)

(* The rig for one experiment: everything fresh, everything derived
   from the scenario seed, so any two builds are word-identical. *)
type rig = {
  machine : Ft_vm.Machine.t;
  kernel : Ft_os.Kernel.t;
  ckpt : Checkpointer.t;
}

let fill_initial sc (m : Ft_vm.Machine.t) rng =
  let heap = Ft_vm.Machine.heap m in
  (* Non-zero words on every page, so stale log bodies never happen to
     replay back to a valid image. *)
  for p = 0 to (sc.heap_words / sc.page_size) - 1 do
    for i = 0 to 3 do
      Ft_vm.Memory.write heap
        ((p * sc.page_size) + i)
        (1 + Random.State.int rng 1_000_000)
    done
  done

let mutate sc (m : Ft_vm.Machine.t) rng =
  let heap = Ft_vm.Machine.heap m in
  let npages = sc.heap_words / sc.page_size in
  for d = 0 to sc.dirty_pages - 1 do
    let p = d * npages / sc.dirty_pages in
    for i = 0 to sc.page_size - 1 do
      Ft_vm.Memory.write heap
        ((p * sc.page_size) + i)
        (1 + Random.State.int rng 1_000_000)
    done
  done;
  for i = 0 to sc.stack_depth - 1 do
    m.Ft_vm.Machine.stack.(i) <- 1 + Random.State.int rng 1_000_000
  done;
  m.Ft_vm.Machine.sp <- sc.stack_depth;
  for r = 0 to Ft_vm.Instr.num_regs - 1 do
    Ft_vm.Machine.set_reg m r (Random.State.int rng 1_000_000)
  done;
  m.Ft_vm.Machine.icount <- 1 + Random.State.int rng 10_000

let commit_once rig =
  Checkpointer.commit rig.ckpt ~pid:0 ~machine:rig.machine
    ~kstate:(Ft_os.Kernel.snapshot_kstate rig.kernel 0)

(* Build the rig, take checkpoint zero and dirty the working set: the
   next {!commit_once} is the instrumented commit. *)
let prepare ?defect sc =
  let rng = Random.State.make [| sc.seed; 0x70_72 |] in
  let kernel = Ft_os.Kernel.create ~seed:sc.seed ~nprocs:1 () in
  let machine =
    Ft_vm.Machine.create ~stack_size:sc.stack_words ~heap_size:sc.heap_words
      ~page_size:sc.page_size [| Ft_vm.Instr.Halt |]
  in
  let ckpt =
    Checkpointer.create ~page_size:sc.page_size ~medium:Checkpointer.Reliable_memory
      ~nprocs:1 ~heap_words:sc.heap_words ~stack_words:sc.stack_words ()
  in
  let rig = { machine; kernel; ckpt } in
  fill_initial sc machine rng;
  ignore (commit_once rig);
  mutate sc machine rng;
  Vista.inject_defect (Checkpointer.vista ckpt ~pid:0) defect;
  rig

let region_of rig = Vista.region (Checkpointer.vista rig.ckpt ~pid:0)

(* The atomicity criterion compares the transactional data area (heap,
   stack, metadata, kernel state) plus the persisted commits counter. *)
let capture rig =
  let v = Checkpointer.vista rig.ckpt ~pid:0 in
  (Rio.sub (Vista.region v) ~off:0 ~len:(Vista.data_words v), Vista.commits v)

(* Run the instrumented commit uninterrupted: its word-write count [W]
   (crash points are [0..W]) and the committed image. *)
let measure ?defect sc =
  let rig = prepare ?defect sc in
  let inj = Ft_faults.Mem_injector.attach (region_of rig) in
  ignore (commit_once rig);
  let w = Ft_faults.Mem_injector.writes inj in
  Ft_faults.Mem_injector.detach inj;
  (w, capture rig)

(* One torture point: crash the commit after exactly [point] persisted
   words, recover through a fresh Vista over the old region, and demand
   the pre- or post-commit image. *)
let torture_point ?defect sc ~post ~point =
  let rig = prepare ?defect sc in
  let region = region_of rig in
  let data_words = Vista.data_words (Checkpointer.vista rig.ckpt ~pid:0) in
  let pre = capture rig in
  let inj = Ft_faults.Mem_injector.attach region in
  Ft_faults.Mem_injector.arm_crash inj ~after:point;
  let crashed =
    match commit_once rig with
    | _ -> false
    | exception Rio.Crash_point _ -> true
  in
  Ft_faults.Mem_injector.detach inj;
  match
    let fresh = Vista.create ~data_words region in
    Vista.recover fresh;
    (Rio.sub region ~off:0 ~len:data_words, Vista.commits fresh)
  with
  | state ->
      if state = pre then Rolled_back
      else if state = post then Committed
      else
        Violation
          (Printf.sprintf "hybrid image after %s commit"
             (if crashed then "crashed" else "completed"))
  | exception e -> Violation ("recovery raised: " ^ Printexc.to_string e)

(* The swept crash points: exhaustive, or a seeded sample that always
   includes both endpoints. *)
let points_list ~total_writes ~points ~seed =
  match points with
  | All -> List.init (total_writes + 1) Fun.id
  | Sample n ->
      let rng = Random.State.make [| seed; 0x73_6d |] in
      let tbl = Hashtbl.create n in
      Hashtbl.replace tbl 0 ();
      Hashtbl.replace tbl total_writes ();
      let budget = ref (n * 4) in
      while Hashtbl.length tbl < min n (total_writes + 1) && !budget > 0 do
        decr budget;
        Hashtbl.replace tbl (Random.State.int rng (total_writes + 1)) ()
      done;
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

(* --- the sweep, on the experiment runner -------------------------------- *)

let chunk_size = 64

let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | rest -> (List.rev acc, rest)
      in
      let c, rest = take n [] l in
      c :: chunks n rest

let scenario_tag sc =
  Printf.sprintf "h%d-s%d-p%d-d%d-k%d" sc.heap_words sc.stack_words
    sc.page_size sc.dirty_pages sc.stack_depth

let job_key sc ~defective ~total_writes ~idx =
  Printf.sprintf "torture/%s/seed=%d%s/w=%d/chunk=%d" (scenario_tag sc)
    sc.seed
    (if defective then "/defect" else "")
    total_writes idx

let jobs ?defect sc ~total_writes ~post pts =
  List.mapi
    (fun idx chunk ->
      Ft_exp.Job.make
        ~key:(job_key sc ~defective:(defect <> None) ~total_writes ~idx)
        ~seed:sc.seed
        (fun () ->
          let rolled = ref 0 and committed = ref 0 and bad = ref [] in
          List.iter
            (fun point ->
              match torture_point ?defect sc ~post ~point with
              | Rolled_back -> incr rolled
              | Committed -> incr committed
              | Violation msg -> bad := (point, msg) :: !bad)
            chunk;
          Ft_exp.Jstore.Obj
            [
              ("explored", Ft_exp.Jstore.Int (List.length chunk));
              ("rolled_back", Ft_exp.Jstore.Int !rolled);
              ("committed", Ft_exp.Jstore.Int !committed);
              ( "violations",
                Ft_exp.Jstore.List
                  (List.rev_map
                     (fun (p, m) ->
                       Ft_exp.Jstore.Obj
                         [
                           ("point", Ft_exp.Jstore.Int p);
                           ("msg", Ft_exp.Jstore.String m);
                         ])
                     !bad) );
            ]))
    (chunks chunk_size pts)

type report = {
  scenario : scenario;
  total_writes : int;  (* word writes in the instrumented commit *)
  requested : int;     (* crash points asked for; explored < requested
                          means some sweep jobs failed outright *)
  explored : int;
  rolled_back : int;
  committed : int;
  violations : (int * string) list;  (* crash point, diagnosis *)
}

let run ?defect ?workers ?out_dir ?(fresh = false) ?(quiet = false)
    ~points sc =
  let total_writes, post = measure ?defect sc in
  let pts = points_list ~total_writes ~points ~seed:sc.seed in
  let js = jobs ?defect sc ~total_writes ~post pts in
  let lookup =
    match out_dir with
    | None -> Ft_exp.Exp.eval_lookup ?workers js
    | Some out_dir ->
        Ft_exp.Exp.lookup
          (Ft_exp.Exp.run_sweep ?workers ~fresh ~out_dir ~quiet
             ~name:"torture" js)
  in
  let explored = ref 0
  and rolled = ref 0
  and committed = ref 0
  and bad = ref [] in
  List.iter
    (fun (j : Ft_exp.Job.t) ->
      match lookup j.Ft_exp.Job.key with
      | None -> ()
      | Some v ->
          explored := !explored + Ft_exp.Jstore.get_int "explored" v;
          rolled := !rolled + Ft_exp.Jstore.get_int "rolled_back" v;
          committed := !committed + Ft_exp.Jstore.get_int "committed" v;
          Option.iter
            (List.iter (fun o ->
                 bad :=
                   ( Ft_exp.Jstore.get_int "point" o,
                     Ft_exp.Jstore.get_str "msg" o )
                   :: !bad))
            (Option.bind (Ft_exp.Jstore.member "violations" v)
               Ft_exp.Jstore.to_list))
    js;
  {
    scenario = sc;
    total_writes;
    requested = List.length pts;
    explored = !explored;
    rolled_back = !rolled;
    committed = !committed;
    violations = List.sort compare !bad;
  }

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b (Report.section "Crash-point torture");
  Buffer.add_string b
    (Printf.sprintf
       "Commit under test: %d dirty pages of %d words, %d stack words \
        (scenario %s, seed %d)\n\
        Word writes in the commit: %d  (crash points 0..%d)\n\n"
       r.scenario.dirty_pages r.scenario.page_size r.scenario.stack_depth
       (scenario_tag r.scenario) r.scenario.seed r.total_writes
       r.total_writes);
  Buffer.add_string b
    (Report.table
       ~headers:[ "crash points"; "rolled back"; "committed"; "violations" ]
       ~rows:
         [
           [
             string_of_int r.explored;
             string_of_int r.rolled_back;
             string_of_int r.committed;
             string_of_int (List.length r.violations);
           ];
         ]);
  if r.violations <> [] then begin
    Buffer.add_string b "\nViolations (crash point: diagnosis):\n";
    List.iteri
      (fun i (p, m) ->
        if i < 20 then
          Buffer.add_string b (Printf.sprintf "  %6d: %s\n" p m))
      r.violations;
    if List.length r.violations > 20 then
      Buffer.add_string b
        (Printf.sprintf "  ... and %d more\n"
           (List.length r.violations - 20))
  end
  else
    Buffer.add_string b
      "\nEvery crash point recovered to a committed image; no hybrids.\n";
  Buffer.contents b
