(** Netstorm: the failure-transparency claims under an unreliable
    network.

    The paper's protocols assume messages arrive; {!Ft_net} withdraws
    that assumption.  Each netstorm job runs one (application, protocol,
    storm point) cell twice inside the thunk: once on the reliable
    in-kernel path (the reference) and once with an {!Ft_net.Transport}
    interposed — losing, duplicating, reordering and optionally
    partitioning the wire mid-run.  The transport's retransmission is
    supposed to make the storm invisible; the oracles check that it
    actually was:

    - {b wedged}: the stressed run must still complete — never hang in
      [Block_recv] or degrade to [Net_unreachable].
    - {b consistency}: for value-deterministic applications (nvi,
      TreadMarks) the stressed visible output must be consistent with
      the reference run's, modulo duplicates (paper §2.3).  xpilot's
      visible values are timing-dependent (its physics reads the frame
      clock), so its oracle is count-based: every client renders exactly
      the reference number of frames, with the same frame indices.
    - {b Save-work}: failure-free runs of some (app, protocol) cells
      violate Save-work even on the reliable path (e.g. xpilot under
      CPV-2PC: the server's message-order ND outruns the global rounds).
      The storm oracle is therefore relative — where the reference run
      upholds the visible constraint, the stressed run must too — and
      checks the visible half only: orphan violations are inert without
      a crash, and their commit-event targets make the full check
      quadratic in the trace.

    The sweep fans out over {!Ft_exp.Exp} jobs — parallel under [-j],
    resumable from a warm store — and the CLI exits non-zero on any
    violation, wedged run or missing job, like [ft torture]. *)

module Engine = Ft_runtime.Engine
module Consistency = Ft_core.Consistency
module Save_work = Ft_core.Save_work

type point = {
  label : string;
  loss : float;       (* per-frame drop probability *)
  dup : float;        (* per-frame duplication probability *)
  reorder : float;    (* per-frame extra-delay (reorder) probability *)
  partition : bool;   (* one mid-run 0<->1 partition, healed *)
}

let point_tag p =
  Printf.sprintf "l%g-d%g-r%g%s" p.loss p.dup p.reorder
    (if p.partition then "-part" else "")

let custom_point ?(loss = 0.) ?(dup = 0.) ?(reorder = 0.)
    ?(partition = false) () =
  let p = { label = ""; loss; dup; reorder; partition } in
  { p with label = point_tag p }

(* The default campaign ladder: a sanity point (transport attached but
   perfect), two intermediate weather bands, and the acceptance storm —
   20% loss, 5% duplication, 10% reorder, plus a mid-run partition that
   heals. *)
let default_points =
  [
    { label = "calm"; loss = 0.; dup = 0.; reorder = 0.; partition = false };
    { label = "breeze"; loss = 0.05; dup = 0.01; reorder = 0.02;
      partition = false };
    { label = "gale"; loss = 0.10; dup = 0.02; reorder = 0.05;
      partition = false };
    { label = "storm"; loss = 0.20; dup = 0.05; reorder = 0.10;
      partition = true };
  ]

(* nvi exercises the no-traffic path; xpilot and TreadMarks are the
   distributed applications (magic's cell would duplicate nvi's). *)
let default_apps = [ Figure8.Nvi; Figure8.Xpilot; Figure8.Treadmarks ]

(* The partition is placed mid-run as a fraction of the reference run's
   simulated time, and capped so a frame transmitted just before the
   cut can still ride it out on the retransmission budget (~590 ms of
   cumulative backoff at the default RTO ladder). *)
let partition_cap_ns = 300_000_000

let partition_window ~baseline_ns =
  let from_ns = baseline_ns * 2 / 5 in
  let dur = min (baseline_ns / 5) partition_cap_ns in
  (from_ns, from_ns + max 1 dur)

let run_once ~(w : Ft_apps.Workload.t) ~protocol ~seed ~policy =
  let cfg =
    Ft_apps.Workload.engine_config w
      { Engine.default_config with protocol }
  in
  let kernel = Ft_apps.Workload.kernel ~seed w in
  let tr =
    Option.map (fun policy -> Ft_os.Kernel.attach_net ~policy ~seed kernel)
      policy
  in
  let t, r =
    Engine.execute ~cfg ~kernel ~programs:w.Ft_apps.Workload.programs ()
  in
  ignore t;
  (r, tr)

let outcome_name = function
  | Engine.Completed -> "completed"
  | Engine.Deadline -> "deadline"
  | Engine.Recovery_failed -> "recovery-failed"
  | Engine.Deadlocked -> "deadlocked"
  | Engine.Instruction_budget -> "instruction-budget"
  | Engine.Net_unreachable -> "net-unreachable"

(* xpilot's count-based oracle: same per-process visible counts as the
   reference, and the same multiset of frame indices (the visible value
   is [frame * 100_000 + state]). *)
let frame_histogram visibles =
  List.sort compare (List.rev_map (fun v -> v / 100_000) visibles)

let check_visible ~app ~(reference : Engine.result) (r : Engine.result) =
  match (app : Figure8.app) with
  | Figure8.Xpilot ->
      if r.Engine.visible_counts <> reference.Engine.visible_counts then
        Error
          (Printf.sprintf "frame counts [%s] != reference [%s]"
             (String.concat ";"
                (Array.to_list (Array.map string_of_int r.Engine.visible_counts)))
             (String.concat ";"
                (Array.to_list
                   (Array.map string_of_int reference.Engine.visible_counts))))
      else if
        frame_histogram r.Engine.visible
        <> frame_histogram reference.Engine.visible
      then Error "frame-index multiset differs from reference"
      else Ok ()
  | _ -> (
      match
        Consistency.check ~reference:reference.Engine.visible
          ~observed:r.Engine.visible
      with
      | Consistency.Consistent -> Ok ()
      | v -> Error (Format.asprintf "%a" Consistency.pp_verdict v))

(* --- jobs ------------------------------------------------------------------ *)

let job_key ~scale ~seed ~app ~label point =
  Printf.sprintf "netstorm/%s/%s/%s/scale=%g/seed=%d" (Figure8.app_name app)
    label (point_tag point) scale seed

let stats_json (s : Ft_net.Transport.stats) ~sim_time_ns =
  let secs = float_of_int sim_time_ns /. 1e9 in
  Ft_exp.Jstore.Obj
    [
      ("sends", Ft_exp.Jstore.Int s.Ft_net.Transport.sends);
      ("transmissions", Ft_exp.Jstore.Int s.Ft_net.Transport.transmissions);
      ("retransmits", Ft_exp.Jstore.Int s.Ft_net.Transport.retransmits);
      ("deliveries", Ft_exp.Jstore.Int s.Ft_net.Transport.deliveries);
      ("dup_frames", Ft_exp.Jstore.Int s.Ft_net.Transport.dup_frames);
      ("dropped", Ft_exp.Jstore.Int s.Ft_net.Transport.dropped);
      ("cut", Ft_exp.Jstore.Int s.Ft_net.Transport.cut);
      ("gave_up", Ft_exp.Jstore.Int s.Ft_net.Transport.gave_up);
      ( "goodput",
        Ft_exp.Jstore.Float
          (if secs <= 0. then 0.
           else float_of_int s.Ft_net.Transport.deliveries /. secs) );
    ]

let job ~scale ~seed ~app ~protocol point =
  let label = protocol.Ft_core.Protocol.spec_name in
  Ft_exp.Job.make
    ~key:(job_key ~scale ~seed ~app ~label point)
    ~seed
    (fun () ->
      let w = Figure8.workload ~scale app in
      (* reference: same protocol, reliable in-kernel delivery *)
      let reference, _ = run_once ~w ~protocol ~seed ~policy:None in
      let baseline_ns = reference.Engine.sim_time_ns in
      let partitions =
        if point.partition then begin
          let from_ns, until_ns = partition_window ~baseline_ns in
          [ Ft_net.Policy.partition ~src:0 ~dst:1 ~from_ns ~until_ns () ]
        end
        else []
      in
      let policy =
        Ft_net.Policy.make ~drop:point.loss ~duplicate:point.dup
          ~reorder:point.reorder ~partitions ()
      in
      let r, tr = run_once ~w ~protocol ~seed ~policy:(Some policy) in
      let wedged = r.Engine.outcome <> Engine.Completed in
      let consistent, cons_msg =
        match check_visible ~app ~reference r with
        | Ok () -> (true, "")
        | Error msg -> (false, msg)
      in
      (* The visible half of Save-work only: orphan violations need a
         crash to matter (netstorm injects none), and their commit
         targets make the full check quadratic in the trace — tens of
         seconds per treadmarks cell against a 0.1 s engine run. *)
      let save_work_broken =
        Save_work.visible_violations reference.Engine.trace = []
        && Save_work.visible_violations r.Engine.trace <> []
      in
      let stats =
        match tr with
        | Some tr ->
            stats_json (Ft_net.Transport.stats tr)
              ~sim_time_ns:r.Engine.sim_time_ns
        | None -> Ft_exp.Jstore.Null
      in
      Ft_exp.Jstore.Obj
        [
          ("outcome", Ft_exp.Jstore.String (outcome_name r.Engine.outcome));
          ("wedged", Ft_exp.Jstore.Bool wedged);
          ("consistent", Ft_exp.Jstore.Bool consistent);
          ("cons_msg", Ft_exp.Jstore.String cons_msg);
          ("save_work_broken", Ft_exp.Jstore.Bool save_work_broken);
          ("aborted_rounds", Ft_exp.Jstore.Int r.Engine.aborted_rounds);
          ("baseline_ns", Ft_exp.Jstore.Int baseline_ns);
          ("sim_time_ns", Ft_exp.Jstore.Int r.Engine.sim_time_ns);
          ("net", stats);
        ])

let jobs ?(scale = 0.25) ?(seed = 42) ?(points = default_points)
    ?(apps = default_apps) () =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun protocol ->
          List.map (fun point -> job ~scale ~seed ~app ~protocol point) points)
        (Figure8.protocols_for app))
    apps

(* --- report ---------------------------------------------------------------- *)

type cell = {
  c_app : Figure8.app;
  c_protocol : string;
  c_point : point;
  c_outcome : string;
  c_wedged : bool;
  c_consistent : bool;
  c_cons_msg : string;
  c_save_work_broken : bool;
  c_aborted_rounds : int;
  c_goodput : float;       (* delivered payload messages per simulated second *)
  c_sends : int;
  c_transmissions : int;
  c_retransmits : int;
  c_gave_up : int;
  c_slowdown : float;      (* stressed sim time / reference sim time *)
}

type report = {
  cells : cell list;
  missing : string list;   (* job keys that died without a verdict *)
}

let violations r =
  List.filter
    (fun c -> c.c_wedged || not c.c_consistent || c.c_save_work_broken)
    r.cells

let clean r = violations r = [] && r.missing = []

let of_records ?(scale = 0.25) ?(seed = 42) ?(points = default_points)
    ?(apps = default_apps) lookup =
  let cells = ref [] and missing = ref [] in
  List.iter
    (fun app ->
      List.iter
        (fun protocol ->
          let label = protocol.Ft_core.Protocol.spec_name in
          List.iter
            (fun point ->
              let key = job_key ~scale ~seed ~app ~label point in
              match lookup key with
              | None -> missing := key :: !missing
              | Some v ->
                  let get_bool k =
                    match Ft_exp.Jstore.member k v with
                    | Some (Ft_exp.Jstore.Bool b) -> b
                    | _ -> false
                  in
                  let net k =
                    match Ft_exp.Jstore.member "net" v with
                    | Some (Ft_exp.Jstore.Obj _ as o) ->
                        Ft_exp.Jstore.get_int k o
                    | _ -> 0
                  in
                  let goodput =
                    match Ft_exp.Jstore.member "net" v with
                    | Some (Ft_exp.Jstore.Obj _ as o) ->
                        Ft_exp.Jstore.get_float "goodput" o
                    | _ -> 0.
                  in
                  let baseline = Ft_exp.Jstore.get_int "baseline_ns" v in
                  let sim = Ft_exp.Jstore.get_int "sim_time_ns" v in
                  cells :=
                    {
                      c_app = app;
                      c_protocol = label;
                      c_point = point;
                      c_outcome = Ft_exp.Jstore.get_str "outcome" v;
                      c_wedged = get_bool "wedged";
                      c_consistent = get_bool "consistent";
                      c_cons_msg = Ft_exp.Jstore.get_str "cons_msg" v;
                      c_save_work_broken = get_bool "save_work_broken";
                      c_aborted_rounds =
                        Ft_exp.Jstore.get_int "aborted_rounds" v;
                      c_goodput = goodput;
                      c_sends = net "sends";
                      c_transmissions = net "transmissions";
                      c_retransmits = net "retransmits";
                      c_gave_up = net "gave_up";
                      c_slowdown =
                        (if baseline <= 0 then 0.
                         else float_of_int sim /. float_of_int baseline);
                    }
                    :: !cells)
            points)
        (Figure8.protocols_for app))
    apps;
  { cells = List.rev !cells; missing = List.rev !missing }

let run ?workers ?out_dir ?(fresh = false) ?(quiet = false) ?(scale = 0.25)
    ?(seed = 42) ?(points = default_points) ?(apps = default_apps) () =
  let js = jobs ~scale ~seed ~points ~apps () in
  let lookup =
    match out_dir with
    | None -> Ft_exp.Exp.eval_lookup ?workers js
    | Some out_dir ->
        Ft_exp.Exp.lookup
          (Ft_exp.Exp.run_sweep ?workers ~fresh ~out_dir ~quiet
             ~name:"netstorm" js)
  in
  of_records ~scale ~seed ~points ~apps lookup

(* One table per application: a row per storm point, protocols
   aggregated — the campaign is a pass/fail gate, so the interesting
   number is how many protocol cells survived, and the wire-level cost
   of surviving. *)
let render ?(points = default_points) ?(apps = default_apps) r =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Report.section "Netstorm: protocols on a lossy wire");
  List.iter
    (fun app ->
      let rows =
        List.map
          (fun point ->
            let cs =
              List.filter
                (fun c -> c.c_app = app && c.c_point.label = point.label)
                r.cells
            in
            let n = List.length cs in
            let ok =
              List.length
                (List.filter
                   (fun c ->
                     (not c.c_wedged) && c.c_consistent
                     && not c.c_save_work_broken)
                   cs)
            in
            let sum f = List.fold_left (fun a c -> a + f c) 0 cs in
            let tx = sum (fun c -> c.c_transmissions) in
            let rtx = sum (fun c -> c.c_retransmits) in
            let aborted = sum (fun c -> c.c_aborted_rounds) in
            let mean f =
              if n = 0 then 0.
              else List.fold_left (fun a c -> a +. f c) 0. cs /. float_of_int n
            in
            [
              point.label;
              Printf.sprintf "%g/%g/%g%s" point.loss point.dup point.reorder
                (if point.partition then "+part" else "");
              Printf.sprintf "%d/%d" ok n;
              (if tx = 0 then "-"
               else
                 Printf.sprintf "%.0f%%"
                   (100. *. float_of_int rtx /. float_of_int tx));
              (let g = mean (fun c -> c.c_goodput) in
               if g <= 0. then "-" else Printf.sprintf "%.0f/s" g);
              Printf.sprintf "%.2fx" (mean (fun c -> c.c_slowdown));
              string_of_int aborted;
            ])
          points
      in
      Buffer.add_string b
        (Printf.sprintf "\n%s (%d protocols)\n" (Figure8.app_name app)
           (List.length (Figure8.protocols_for app)));
      Buffer.add_string b
        (Report.table
           ~headers:
             [ "point"; "loss/dup/reord"; "clean"; "rtx"; "goodput";
               "slowdown"; "2pc-aborts" ]
           ~rows))
    apps;
  let bad = violations r in
  if bad = [] && r.missing = [] then
    Buffer.add_string b
      "\nEvery cell completed with consistent output; no run wedged, no \
       Save-work regressions.\n"
  else begin
    if bad <> [] then begin
      Buffer.add_string b "\nViolations:\n";
      List.iter
        (fun c ->
          Buffer.add_string b
            (Printf.sprintf "  %s/%s @ %s: %s%s%s%s\n" (Figure8.app_name c.c_app)
               c.c_protocol c.c_point.label c.c_outcome
               (if c.c_wedged then " WEDGED" else "")
               (if not c.c_consistent then
                  " INCONSISTENT(" ^ c.c_cons_msg ^ ")"
                else "")
               (if c.c_save_work_broken then " SAVE-WORK-BROKEN" else "")))
        bad
    end;
    if r.missing <> [] then begin
      Buffer.add_string b "\nJobs without a verdict:\n";
      List.iter
        (fun k -> Buffer.add_string b (Printf.sprintf "  %s\n" k))
        r.missing
    end
  end;
  Buffer.contents b
