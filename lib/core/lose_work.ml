(** The Lose-work invariant (paper §2.5, §4).

    Lose-work Theorem: application-generic recovery from propagation
    failures is guaranteed possible iff the application executes no commit
    event on a dangerous path.

    Two checkers are provided.  The graph-based one (via
    {!Dangerous_paths}) is exact given a state machine with known crash
    events.  The trace-based one mirrors the paper's fault-injection
    methodology (§4.1): given an execution that crashed, the dangerous
    path extends backwards from the crash to (just after) the last
    transient non-deterministic event; a commit inside that window, and in
    particular a commit after fault activation, violates Lose-work.  If
    there is no transient ND event at all before the crash, the bug is a
    Bohrbug: the dangerous path extends to the initial state, which is
    always committed, so Lose-work is inherently violated. *)

type analysis = {
  crash : Event.t;
  bohrbug : bool;              (* dangerous path reaches the initial state *)
  dangerous_from : int;        (* first event index on the dangerous path *)
  commits_on_path : Event.t list;
  violated : bool;
}

(* Analyze the crashed process's linear history.  The dangerous suffix
   starts just after the last transient ND event strictly before the
   crash (that event itself may safely be preceded by a commit, Figure 6B;
   a commit *after* it pins the execution onto the path). *)
let analyze trace ~(crash : Event.t) =
  if not (Event.is_crash crash) then
    invalid_arg "Lose_work.analyze: event is not a crash";
  (* Stream the crashed process's pre-crash history in place. *)
  let last_transient = ref None in
  Trace.iter_of trace crash.pid (fun (e : Event.t) ->
      if e.index < crash.index && Event.is_transient_nd e then
        last_transient := Some e.index);
  let bohrbug, dangerous_from =
    match !last_transient with
    | None -> (true, 0)
    | Some i -> (false, i + 1)
  in
  let commits_on_path =
    let acc = ref [] in
    Trace.iter_of trace crash.pid (fun (e : Event.t) ->
        if e.index < crash.index && Event.is_commit e
           && e.index >= dangerous_from
        then acc := e :: !acc);
    List.rev !acc
  in
  (* The initial state of any application is always committed (§4), so a
     Bohrbug violates Lose-work even with no explicit commit. *)
  let violated = bohrbug || commits_on_path <> [] in
  { crash; bohrbug; dangerous_from; commits_on_path; violated }

(* The Table-1 criterion: did the process commit after the fault was
   activated (and before the crash)?  Such a commit necessarily lies on
   the dangerous path, and the paper verifies end-to-end that recovery
   fails iff such a commit exists. *)
let committed_after_activation trace ~(activation : Event.t)
    ~(crash : Event.t) =
  activation.pid = crash.pid
  &&
  let found = ref false in
  Trace.iter_of trace crash.pid (fun (e : Event.t) ->
      if Event.is_commit e && e.index > activation.index
         && e.index < crash.index
      then found := true);
  !found

(* Graph-level check: any state at which the application commits must not
   be doomed. *)
let safe_to_commit ?receive_class g ~state =
  not (Dangerous_paths.doomed_states ?receive_class g).(state)

(* Save-work and Lose-work conflict for an application (§4, Figure 9) when
   a transient ND event causally precedes a visible event along a path
   whose suffix is dangerous: Save-work demands a commit between the ND
   event and the visible event, Lose-work forbids it.  Over a crashing
   trace we detect the conflict directly: is there a visible event on the
   dangerous suffix?  (Upholding Save-work would force a commit before it.) *)
let conflict trace ~(crash : Event.t) =
  let a = analyze trace ~crash in
  let visible_on_path = ref false in
  Trace.iter_of trace crash.pid (fun (e : Event.t) ->
      if Event.is_visible e && e.index >= a.dangerous_from
         && e.index < crash.index
      then visible_on_path := true);
  a.bohrbug || !visible_on_path
