(** The dangerous-paths coloring algorithms (paper §2.5).

    Single-Process Dangerous Paths Algorithm:
    - color all crash events;
    - color an event [e] if all events out of [e]'s end state are colored;
    - color an event [e] if at least one event out of [e]'s end state is
      colored and is a fixed non-deterministic event.

    Committing anywhere along a colored (dangerous) path can prevent
    recovery from the eventual propagation failure (Lose-work Theorem).

    The Multi-Process algorithm reclassifies each receive edge from a
    snapshot of the other processes' commits (see {!receive_class}) and
    then runs the single-process algorithm. *)

(* Effective class of an edge once receives have been resolved. *)
type eff = Eff_det | Eff_transient | Eff_fixed

let effective ?(receive_class = fun (_ : State_graph.edge) -> Event.Transient)
    (e : State_graph.edge) =
  match e.kind with
  | State_graph.Det -> Eff_det
  | State_graph.Transient_nd -> Eff_transient
  | State_graph.Fixed_nd -> Eff_fixed
  | State_graph.Receive_nd _ -> (
      match receive_class e with
      | Event.Transient -> Eff_transient
      | Event.Fixed -> Eff_fixed)

(* Fixpoint of the three coloring rules.  Returns a bool array indexed by
   edge id; [true] means the edge lies on a dangerous path. *)
let dangerous_edges ?receive_class (g : State_graph.t) =
  let n = State_graph.nedges g in
  let colored = Array.make n false in
  for i = 0 to n - 1 do
    if State_graph.is_crash_edge g (State_graph.edge g i) then
      colored.(i) <- true
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if not colored.(i) then begin
        let e = State_graph.edge g i in
        let out = State_graph.out_edges g e.dst in
        let all_colored =
          out <> [] && List.for_all (fun o -> colored.(o.State_graph.id)) out
        in
        let fixed_colored =
          List.exists
            (fun o ->
              colored.(o.State_graph.id)
              && effective ?receive_class o = Eff_fixed)
            out
        in
        if all_colored || fixed_colored then begin
          colored.(i) <- true;
          changed := true
        end
      end
    done
  done;
  colored

(* A state is doomed when committing at it can prevent recovery: either
   every way out is colored, or some colored way out is a fixed ND event
   (we cannot rely on fixed ND events taking the safe result; Figure 6C).
   Crash states themselves are trivially doomed. *)
let doomed_states ?receive_class (g : State_graph.t) =
  let colored = dangerous_edges ?receive_class g in
  Array.init g.State_graph.nstates (fun s ->
      State_graph.is_crash_state g s
      ||
      let out = State_graph.out_edges g s in
      (out <> [] && List.for_all (fun o -> colored.(o.State_graph.id)) out)
      || List.exists
           (fun o ->
             colored.(o.State_graph.id)
             && effective ?receive_class o = Eff_fixed)
           out)

(* Multi-Process Dangerous Paths Algorithm (§2.5): a receive executed by P
   is treated as transient iff, in the snapshot, the sender's last commit
   occurred before the send and the sender executed a transient ND event
   between its last commit and the send.  Otherwise the receive is fixed:
   during recovery the sender will deterministically regenerate the same
   message. *)
let receive_class_of_trace trace (recv : Event.t) =
  match Trace.matching_send trace recv with
  | None -> Event.Fixed (* no recorded sender: nothing can change it *)
  | Some send ->
      let before_send (e : Event.t) = e.index < send.Event.index in
      (* One streaming pass over the sender's events for both the last
         pre-send commit and a transient ND event after it. *)
      let commit_floor = ref (-1) in
      Trace.iter_of trace send.Event.pid (fun (e : Event.t) ->
          if Event.is_commit e && before_send e then commit_floor := e.index);
      let transient_between = ref false in
      Trace.iter_of trace send.Event.pid (fun (e : Event.t) ->
          if Event.is_transient_nd e && e.index > !commit_floor
             && before_send e
          then transient_between := true);
      if !transient_between then Event.Transient else Event.Fixed

(* Convenience wrapper: dangerous edges of process [pid]'s state graph
   where receive edges are classified from the recorded trace.  The graph
   must label each receive edge's [Receive_nd] with the event index of the
   receive in the trace, via [recv_event_of_edge]. *)
let multi_process_dangerous_edges g ~trace ~recv_event_of_edge =
  let receive_class (e : State_graph.edge) =
    match e.State_graph.kind with
    | State_graph.Receive_nd _ -> (
        match recv_event_of_edge e with
        | Some recv -> receive_class_of_trace trace recv
        | None -> Event.Transient)
    | _ -> Event.Transient
  in
  dangerous_edges ~receive_class g
