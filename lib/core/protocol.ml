(** Recovery-protocol decision interface (paper §2.4).

    A protocol upholds Save-work by deciding, at each event a process is
    about to execute, whether to log the event's result (rendering it
    deterministic) and whether to commit — locally or via a coordinated
    two-phase commit.  The execution engine ({!Ft_runtime.Engine})
    interprets the decisions, charges their cost, and records the
    resulting commit events in the trace.

    Protocols are instantiated per run ({!spec.instantiate}) so they can
    keep per-process state such as "has executed an unlogged ND event
    since its last commit". *)

type commit_scope =
  | Local   (* commit just this process *)
  | Global  (* two-phase commit: all processes commit *)
  | Dependent
      (* commit this process plus exactly the processes its state
         causally depends on (per the dependency vectors a logging
         protocol piggybacks on messages) — the asynchronous-logging
         alternative to a global 2PC at output commit *)

(* How a protocol treats non-determinism between commits: coordinated
   protocols commit it away synchronously; the logging styles track it
   with piggybacked dependency vectors and settle up only at output
   commit (causal logging replicates determinants causally; optimistic
   logging lets them sit in a volatile log and rolls orphans back). *)
type style = Coordinated | Causal_log | Optimistic_log

(* What the engine tells the protocol about the event about to execute. *)
type event_info = {
  kind : Event.kind;
  loggable : bool;
      (* true when the recovery system is able to log this ND event's
         result and replay it (Discount Checking logs user input and
         message receives; scheduling, signals and time remain ND) *)
}

type reaction = {
  log : bool;                           (* log the ND result *)
  commit_before : commit_scope option;  (* commit before executing *)
  commit_after : commit_scope option;   (* commit right after executing *)
}

let no_reaction = { log = false; commit_before = None; commit_after = None }

type t = {
  name : string;
  react : pid:int -> event_info -> reaction;
  note_commit : pid:int -> unit;
      (* the engine performed a commit of [pid] (for any reason,
         including as a 2PC participant); protocols clear their
         nd-since-commit bookkeeping here *)
}

type spec = {
  spec_name : string;
  nd_effort : float;       (* protocol-space x coordinate, 0..1 (Fig. 3) *)
  visible_effort : float;  (* protocol-space y coordinate, 0..1 (Fig. 3) *)
  uses_2pc : bool;
  style : style;
  instantiate : nprocs:int -> t;
}

let instantiate spec ~nprocs = spec.instantiate ~nprocs

(* Does executing an event of [kind] taint the process — advance its own
   dependency-vector component — under [style]?  Coordinated protocols
   carry no vectors.  Under causal logging a logged determinant is
   causally replicated and survives any single crash, so only unlogged
   non-determinism taints.  Under optimistic logging the determinant sits
   in a volatile log that dies with the process, so every ND event taints
   whether logged or not — commits are the flush points. *)
let taints style ~logged kind =
  match style with
  | Coordinated -> false
  | Causal_log -> (
      (not logged)
      && match kind with Event.Nd _ | Event.Receive _ -> true | _ -> false)
  | Optimistic_log -> (
      match kind with Event.Nd _ | Event.Receive _ -> true | _ -> false)

(* An event is treated as non-deterministic by protocols unless the
   protocol itself decides to log it. *)
let info_is_nd (i : event_info) =
  match i.kind with
  | Event.Nd _ | Event.Receive _ -> true
  | Event.Internal | Event.Visible _ | Event.Send _ | Event.Commit
  | Event.Commit_round _ | Event.Crash ->
      false

let info_is_visible (i : event_info) =
  match i.kind with Event.Visible _ -> true | _ -> false

let info_is_send (i : event_info) =
  match i.kind with Event.Send _ -> true | _ -> false
