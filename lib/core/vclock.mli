(** Vector clocks, the implementation of Lamport's happens-before
    relation used to approximate causality (paper §2.2). *)

type t

val create : int -> t
(** [create n] is the zero clock for an [n]-process computation. *)

val copy : t -> t

val size : t -> int
val get : t -> int -> int

val tick : t -> int -> unit
(** [tick t pid] advances process [pid]'s own component. *)

exception Size_mismatch of { expected : int; got : int }
(** Raised by {!merge_into} when the two clocks track different numbers
    of processes: a width mismatch silently truncated would drop
    dependency components, the exact failure the causal-logging
    protocols guard against. *)

val merge_into : into:t -> t -> unit
(** Pointwise maximum; a receive merges the sender's clock.
    @raise Size_mismatch if [size src <> size into]. *)

val leq : t -> t -> bool
(** Pointwise less-or-equal. *)

val equal : t -> t -> bool

val lt : t -> t -> bool
(** Strict happens-before between per-event snapshots: [leq] and not
    [equal]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
