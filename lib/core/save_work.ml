(** The Save-work invariant (paper §2.3).

    Save-work Theorem: a computation is guaranteed consistent recovery from
    stop failures iff for each executed non-deterministic event [e_p^i]
    that causally precedes a visible or commit event [e], process [p]
    executes a commit [e_p^j] such that [e_p^j] happens-before (or is
    atomic with) [e], and [i < j].

    The invariant splits in two: {e Save-work-visible} (targets are visible
    events; enforces the visible constraint) and {e Save-work-orphan}
    (targets are commit events; enforces the no-orphan constraint).  This
    module checks both over a recorded {!Trace.t}. *)

type violation = {
  nd : Event.t;      (* the uncommitted non-deterministic event *)
  target : Event.t;  (* the visible or commit event it causally precedes *)
}

let pp_violation fmt v =
  Format.fprintf fmt "nd %a causally precedes %a without an intervening commit"
    Event.pp v.nd Event.pp v.target

(* Does some commit on [nd.pid], later than [nd], happen-before — or sit
   atomic with — [target]?  "Atomic with" (the theorem's parenthetical)
   covers the commit being the target itself, the two events belonging
   to the same coordinated (2PC) round, and — since every commit of a
   round is atomic with every other — a round-mate commit that
   happens-before the target.

   Whether a commit reaches a target is independent of the ND event
   under test, so the check factors: precompute, per (process, target),
   the largest index of a reaching commit, and "covered" collapses to
   one integer comparison per (nd, target) pair.  The naive form —
   rescanning the process's commits for every pair — is quadratic in
   the trace and takes tens of seconds on an xpilot run. *)
let violations_against trace ~targets =
  let nds = Trace.filter trace Event.is_nd in
  let all_commits = Trace.filter trace Event.is_commit in
  let nprocs = Trace.nprocs trace in
  let commits_by_pid = Array.make nprocs [] in
  List.iter
    (fun (c : Event.t) ->
      commits_by_pid.(c.pid) <- c :: commits_by_pid.(c.pid))
    all_commits;
  let reaches (c : Event.t) (target : Event.t) =
    Event.equal c target
    || Event.atomic_with c target
    || Trace.happens_before c target
    ||
    match Event.commit_round c with
    | None -> false
    | Some _ ->
        List.exists
          (fun (c' : Event.t) ->
            Event.atomic_with c c'
            && (Event.equal c' target || Trace.happens_before c' target))
          all_commits
  in
  (* largest commit index per process reaching [target]; -1 if none *)
  let mr_cache = Hashtbl.create 64 in
  let max_reach (target : Event.t) =
    let key = (target.Event.pid, target.Event.index) in
    match Hashtbl.find_opt mr_cache key with
    | Some a -> a
    | None ->
        let a =
          Array.init nprocs (fun pid ->
              List.fold_left
                (fun acc (c : Event.t) ->
                  if c.index > acc && reaches c target then c.index else acc)
                (-1) commits_by_pid.(pid))
        in
        Hashtbl.replace mr_cache key a;
        a
  in
  List.concat_map
    (fun nd ->
      List.filter_map
        (fun target ->
          let precedes =
            Trace.causally_precedes nd target && not (Event.equal nd target)
          in
          if precedes && (max_reach target).(nd.Event.pid) <= nd.Event.index
          then Some { nd; target }
          else None)
        targets)
    nds

(* Violations of Save-work-visible: uncommitted ND events that causally
   precede a visible event. *)
let visible_violations trace =
  violations_against trace ~targets:(Trace.filter trace Event.is_visible)

(* Violations of Save-work-orphan: uncommitted ND events that causally
   precede a commit on another process (an orphan-creating dependence).
   Same-process commits can never be orphan-creating: a later commit on
   the same process commits the ND event itself. *)
let orphan_violations trace =
  let targets = Trace.filter trace Event.is_commit in
  List.filter
    (fun v -> v.nd.Event.pid <> v.target.Event.pid)
    (violations_against trace ~targets)

let violations trace = visible_violations trace @ orphan_violations trace

let holds trace = violations trace = []

(* A process is an orphan (§2.3, Figure 2) if it has committed a dependence
   on another process's non-deterministic event that has been lost: here,
   the ND event is "lost" when its process crashed without committing it. *)
let orphans trace =
  let nprocs = Trace.nprocs trace in
  (* One streaming pass for crashed processes and per-process last
     commit index, instead of rescanning the history per ND event. *)
  let crashed = Array.make nprocs false in
  let last_commit = Array.make nprocs (-1) in
  Trace.iter trace (fun (e : Event.t) ->
      if Event.is_crash e then crashed.(e.pid) <- true
      else if Event.is_commit e && e.index > last_commit.(e.pid) then
        last_commit.(e.pid) <- e.index);
  let lost_nd =
    Trace.filter trace (fun (e : Event.t) ->
        Event.is_nd e && crashed.(e.pid) && last_commit.(e.pid) <= e.index)
  in
  let commits = Trace.filter trace Event.is_commit in
  List.sort_uniq compare
    (List.filter_map
       (fun (c : Event.t) ->
         if
           List.exists
             (fun nd ->
               nd.Event.pid <> c.pid && Trace.causally_precedes nd c)
             lost_nd
         then Some c.pid
         else None)
       commits)
