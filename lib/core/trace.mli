(** Recorded event traces with automatic vector-clock maintenance.

    Message sends and receives are matched by [tag], so happens-before
    (and the causally-precedes approximation of §2.2) can be queried over
    the whole multi-process history. *)

type t

val create : nprocs:int -> t

val nprocs : t -> int

val length : t -> int
(** Total number of recorded events. *)

val next_index : t -> int -> int
(** The index the next event of the given process will receive. *)

val record : t -> pid:int -> ?logged:bool -> Event.kind -> Event.t
(** Append an event.  A [Receive] merges the clock captured by the [Send]
    with the same tag, if one was recorded. *)

val events : t -> Event.t list
(** All events, in global recording order. *)

val events_of : t -> int -> Event.t list
(** One process's events, in execution order (touches only that
    process's events, via the per-process index vector). *)

val get : t -> int -> Event.t
(** The [i]-th event in global recording order, O(1). *)

val iter : t -> (Event.t -> unit) -> unit
(** Apply to every event in global recording order, no allocation. *)

val iter_of : t -> int -> (Event.t -> unit) -> unit
(** Apply to one process's events in execution order, no allocation. *)

val fold : t -> init:'a -> ('a -> Event.t -> 'a) -> 'a

val filter : t -> (Event.t -> bool) -> Event.t list
(** Matching events in global recording order, in one pass (no
    intermediate full-history list). *)

val happens_before : Event.t -> Event.t -> bool
(** Lamport's happens-before over recorded events. *)

val causally_precedes : Event.t -> Event.t -> bool
(** The paper uses happens-before as an approximation of causality; this
    is the same relation under the name used at theory call sites. *)

val find : t -> pid:int -> index:int -> Event.t option
val commits_of : t -> int -> Event.t list

val visible_values : t -> int list
(** The values of all visible events, in order. *)

val crashes : t -> Event.t list

val matching_send : t -> Event.t -> Event.t option
(** The send whose tag matches the given receive, if recorded. *)

val pp : Format.formatter -> t -> unit
