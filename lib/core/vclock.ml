(** Vector clocks, used to approximate Lamport's happens-before relation
    (paper §2.2) over the events of a multi-process computation. *)

type t = int array

let create n = Array.make n 0

let copy = Array.copy

let size = Array.length

let get t i = t.(i)

(* Advance process [pid]'s own component. *)
let tick t pid = t.(pid) <- t.(pid) + 1

exception Size_mismatch of { expected : int; got : int }

(* Pointwise maximum, used when a receive merges the sender's clock.
   Merging clocks of different widths would silently drop (or invent)
   components — exactly the dependency-tracking bug the causal-logging
   protocols exist to prevent — so it is a typed error instead. *)
let merge_into ~into src =
  let n = Array.length into in
  if Array.length src <> n then
    raise (Size_mismatch { expected = n; got = Array.length src });
  for i = 0 to n - 1 do
    if src.(i) > into.(i) then into.(i) <- src.(i)
  done

let leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b = a = b

(* Strict happens-before between event snapshots: a < b pointwise-leq and
   not equal. *)
let lt a b = leq a b && not (equal a b)

let to_string t =
  "<" ^ String.concat "," (Array.to_list (Array.map string_of_int t)) ^ ">"

let pp fmt t = Format.pp_print_string fmt (to_string t)
