(** Recovery-protocol decision interface (paper §2.4).

    A protocol upholds Save-work by reacting to each event a process is
    about to execute: log the result (rendering the event deterministic)
    and/or commit, locally or through a coordinated two-phase commit.
    The execution engine interprets reactions and charges their cost. *)

type commit_scope =
  | Local  (** commit just this process *)
  | Global  (** two-phase commit: every process commits *)
  | Dependent
      (** commit this process plus the processes its state causally
          depends on, per piggybacked dependency vectors — asynchronous
          logging's alternative to a global 2PC at output commit *)

(** How a protocol treats non-determinism between commits: coordinated
    protocols commit it away synchronously; the logging styles track it
    with dependency vectors and settle up at output commit. *)
type style = Coordinated | Causal_log | Optimistic_log

type event_info = {
  kind : Event.kind;
  loggable : bool;
      (** the recovery system can log this ND event's result and replay
          it (Discount Checking logs user input and message receives) *)
}

type reaction = {
  log : bool;
  commit_before : commit_scope option;
  commit_after : commit_scope option;
}

val no_reaction : reaction

(** A per-run protocol instance. *)
type t = {
  name : string;
  react : pid:int -> event_info -> reaction;
  note_commit : pid:int -> unit;
      (** called whenever the engine commits [pid], including as a 2PC
          participant: protocols clear nd-since-commit bookkeeping *)
}

(** A protocol definition with its protocol-space coordinates. *)
type spec = {
  spec_name : string;
  nd_effort : float;  (** Figure-3 x coordinate, 0..1 *)
  visible_effort : float;  (** Figure-3 y coordinate, 0..1 *)
  uses_2pc : bool;
  style : style;
  instantiate : nprocs:int -> t;
}

val instantiate : spec -> nprocs:int -> t

val taints : style -> logged:bool -> Event.kind -> bool
(** Does executing an event of this kind advance the process's own
    dependency-vector component?  [Coordinated] never tracks; under
    [Causal_log] only {e unlogged} ND taints (a logged determinant is
    causally replicated and survives crashes); under [Optimistic_log]
    every ND event taints — the volatile log dies with the process. *)

val info_is_nd : event_info -> bool
val info_is_visible : event_info -> bool
val info_is_send : event_info -> bool
