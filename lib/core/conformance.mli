(** Generic Save-work conformance checking: drive a protocol with an
    abstract multi-process event stream, materialize the commits and
    logs it dictates into a {!Trace}, and verify the Save-work invariant
    held.  Used by the property-test suite to prove every executable
    protocol correct over random streams. *)

type step = { pid : int; info : Protocol.event_info }

val step : pid:int -> Protocol.event_info -> step

val run : Protocol.spec -> nprocs:int -> step list -> Trace.t
(** Replay the script; a [Receive] with nothing pending is skipped, so
    arbitrary scripts are safe. *)

val upholds_save_work : Protocol.spec -> nprocs:int -> step list -> bool
val violations : Protocol.spec -> nprocs:int -> step list ->
  Save_work.violation list

(** {2 Replayable scripts}

    A stable one-step-per-line text form, so counterexamples found by
    the model checker ({!Ft_mc}) can be printed, stored, and replayed
    through {!run} later.  [steps_of_string (steps_to_string s) = Ok s]
    for every script. *)

val step_to_string : step -> string
(** e.g. ["p0 nd transient"], ["p1 send 0"], ["p0 visible 7"],
    ["p1 recv"], ["p0 nd fixed loggable"]. *)

val steps_to_string : step list -> string

val steps_of_string : string -> (step list, string) result
(** Parses the {!steps_to_string} form; blank lines and [#] comment
    lines are ignored. *)
