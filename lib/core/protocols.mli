(** The concrete Save-work protocols of the paper (§2.4, §3). *)

val commit_all : Protocol.spec
(** Commit after every event: the origin of the protocol space. *)

val no_commit : Protocol.spec
(** Never commit: trivially upholds Lose-work, forfeits Save-work
    (§2.6). *)

val cand : Protocol.spec
(** Commit After Non-Deterministic. *)

val cand_log : Protocol.spec
(** CAND with user input and receives logged: commits only for the
    remaining (unloggable) non-determinism. *)

val cpvs : Protocol.spec
(** Commit Prior to Visible or Send: needs no knowledge of
    non-determinism. *)

val cbndvs : Protocol.spec
(** Commit Between Non-Deterministic and Visible or Send. *)

val cbndvs_log : Protocol.spec
(** CBNDVS with logging. *)

val cpv_2pc : Protocol.spec
(** All processes commit (two-phase) whenever any process executes a
    visible event; no commits before sends. *)

val cbndv_2pc : Protocol.spec
(** CPV-2PC gated on some process having executed unlogged ND since the
    last commit. *)

val coordinated_checkpointing : Protocol.spec
(** Koo-Toueg-style coordinated checkpointing, for the space map. *)

val sender_based_logging : Protocol.spec
(** SBL: receives logged at the sender; other ND events commit.  On the
    horizontal axis — it prevents surviving propagation failures. *)

val manetho : Protocol.spec
(** Manetho-style: log all capturable ND; coordinated output commit at
    visible events only. *)

val causal_log : Protocol.spec
(** CAUSAL-LOG: executable Manetho-style causal message logging —
    determinants piggybacked causally, dependent commit at visibles;
    only unlogged ND taints. *)

val optimistic : Protocol.spec
(** OPTIMISTIC: executable optimistic logging — volatile determinant
    log, every ND event taints until a commit flushes it, orphans rolled
    back at recovery. *)

val figure8 : Protocol.spec list
(** The seven protocols measured in Figure 8. *)

val message_logging : Protocol.spec list
(** [[causal_log; optimistic]] — the executable message-logging pair. *)

val figure8_extended : Protocol.spec list
(** Figure 8 plus {!message_logging} (9 columns). *)

val all : Protocol.spec list

val by_name : string -> Protocol.spec option
(** Case-insensitive lookup. *)
