(** The concrete Save-work protocols evaluated in the paper (§2.4, §3).

    Core protocols:
    - CAND: commit immediately after every non-deterministic event.
    - CPVS: commit just before every visible or send event.
    - CBNDVS: commit before a visible or send event if the process has
      executed a non-deterministic event since its last commit.

    Adding logging of user input and message receives yields CAND-LOG and
    CBNDVS-LOG; replacing commit-before-send with a coordinated two-phase
    commit on visible events yields CPV-2PC and CBNDV-2PC.

    Two degenerate protocols are included: COMMIT-ALL (the origin of the
    protocol space: commit after every event, no knowledge needed) and
    NO-COMMIT (never commit: trivially upholds Lose-work, §2.6, while
    forfeiting Save-work). *)

open Protocol

let commit_after_local = { no_reaction with commit_after = Some Local }
let commit_before_local = { no_reaction with commit_before = Some Local }

(* Commit after every event: maximal simplicity, maximal commits. *)
let commit_all =
  {
    spec_name = "COMMIT-ALL";
    nd_effort = 0.0;
    visible_effort = 0.0;
    uses_2pc = false;
    style = Coordinated;
    instantiate =
      (fun ~nprocs:_ ->
        {
          name = "COMMIT-ALL";
          react =
            (fun ~pid:_ info ->
              match info.kind with
              | Event.Crash -> no_reaction
              | _ -> commit_after_local);
          note_commit = (fun ~pid:_ -> ());
        });
  }

(* Never commit: the simplest way to uphold Lose-work (§2.6). *)
let no_commit =
  {
    spec_name = "NO-COMMIT";
    nd_effort = 0.0;
    visible_effort = 0.0;
    uses_2pc = false;
    style = Coordinated;
    instantiate =
      (fun ~nprocs:_ ->
        {
          name = "NO-COMMIT";
          react = (fun ~pid:_ _ -> no_reaction);
          note_commit = (fun ~pid:_ -> ());
        });
  }

(* CAND: Commit After Non-Deterministic. *)
let cand =
  {
    spec_name = "CAND";
    nd_effort = 0.35;
    visible_effort = 0.0;
    uses_2pc = false;
    style = Coordinated;
    instantiate =
      (fun ~nprocs:_ ->
        {
          name = "CAND";
          react =
            (fun ~pid:_ info ->
              if info_is_nd info then commit_after_local else no_reaction);
          note_commit = (fun ~pid:_ -> ());
        });
  }

(* CAND-LOG: log the loggable ND events (user input, receives); commit
   after the rest. *)
let cand_log =
  {
    spec_name = "CAND-LOG";
    nd_effort = 0.6;
    visible_effort = 0.0;
    uses_2pc = false;
    style = Coordinated;
    instantiate =
      (fun ~nprocs:_ ->
        {
          name = "CAND-LOG";
          react =
            (fun ~pid:_ info ->
              if info_is_nd info then
                if info.loggable then { no_reaction with log = true }
                else commit_after_local
              else no_reaction);
          note_commit = (fun ~pid:_ -> ());
        });
  }

(* CPVS: Commit Prior to Visible or Send.  Needs no knowledge of
   non-determinism; committing before sends pessimistically avoids
   passing uncommitted dependences to other processes. *)
let cpvs =
  {
    spec_name = "CPVS";
    nd_effort = 0.0;
    visible_effort = 0.5;
    uses_2pc = false;
    style = Coordinated;
    instantiate =
      (fun ~nprocs:_ ->
        {
          name = "CPVS";
          react =
            (fun ~pid:_ info ->
              if info_is_visible info || info_is_send info then
                commit_before_local
              else no_reaction);
          note_commit = (fun ~pid:_ -> ());
        });
  }

(* CBNDVS: commit before a visible or send only if an unlogged ND event
   was executed since the last commit. *)
let make_cbndvs ~name ~nd_effort ~log_loggable =
  {
    spec_name = name;
    nd_effort;
    visible_effort = 0.5;
    uses_2pc = false;
    style = Coordinated;
    instantiate =
      (fun ~nprocs ->
        let nd_since = Array.make nprocs false in
        {
          name;
          react =
            (fun ~pid info ->
              if info_is_nd info then
                if log_loggable && info.loggable then
                  { no_reaction with log = true }
                else begin
                  nd_since.(pid) <- true;
                  no_reaction
                end
              else if
                (info_is_visible info || info_is_send info)
                && nd_since.(pid)
              then commit_before_local
              else no_reaction);
          note_commit = (fun ~pid -> nd_since.(pid) <- false);
        });
  }

let cbndvs = make_cbndvs ~name:"CBNDVS" ~nd_effort:0.35 ~log_loggable:false
let cbndvs_log =
  make_cbndvs ~name:"CBNDVS-LOG" ~nd_effort:0.6 ~log_loggable:true

(* CPV-2PC: all processes commit (two-phase commit) whenever any process
   executes a visible event; no commits before sends. *)
let cpv_2pc =
  {
    spec_name = "CPV-2PC";
    nd_effort = 0.0;
    visible_effort = 0.85;
    uses_2pc = true;
    style = Coordinated;
    instantiate =
      (fun ~nprocs:_ ->
        {
          name = "CPV-2PC";
          react =
            (fun ~pid:_ info ->
              if info_is_visible info then
                { no_reaction with commit_before = Some Global }
              else no_reaction);
          note_commit = (fun ~pid:_ -> ());
        });
  }

(* CBNDV-2PC: a global commit before a visible event, but only when some
   process has executed an unlogged ND event since the last commit. *)
let cbndv_2pc =
  {
    spec_name = "CBNDV-2PC";
    nd_effort = 0.35;
    visible_effort = 0.85;
    uses_2pc = true;
    style = Coordinated;
    instantiate =
      (fun ~nprocs ->
        let nd_since = Array.make nprocs false in
        {
          name = "CBNDV-2PC";
          react =
            (fun ~pid info ->
              if info_is_nd info then begin
                nd_since.(pid) <- true;
                no_reaction
              end
              else if
                info_is_visible info && Array.exists (fun b -> b) nd_since
              then { no_reaction with commit_before = Some Global }
              else no_reaction);
          note_commit = (fun ~pid -> nd_since.(pid) <- false);
        });
  }

(* Coordinated checkpointing (§2.4): processes executing a visible event
   force all recently-communicating processes to commit.  Without
   causality tracking this behaves like CPV-2PC; we keep it as a separate
   name for the protocol-space map and ablations. *)
let coordinated_checkpointing =
  { cpv_2pc with spec_name = "COORD-CKPT"; visible_effort = 0.95 }

(* Sender-based logging (§2.4): message receives are rendered
   deterministic by logging at the sender, so an application whose only
   non-determinism is receives never commits; other ND events still
   force a commit (SBL makes no effort towards visible events). *)
let sender_based_logging =
  {
    spec_name = "SBL";
    nd_effort = 0.55;
    visible_effort = 0.0;
    uses_2pc = false;
    style = Coordinated;
    instantiate =
      (fun ~nprocs:_ ->
        {
          name = "SBL";
          react =
            (fun ~pid:_ info ->
              match info.kind with
              | Event.Receive _ -> { no_reaction with log = true }
              | _ ->
                  if info_is_nd info then commit_after_local
                  else no_reaction);
          note_commit = (fun ~pid:_ -> ());
        });
  }

(* A Manetho-style protocol (§2.4): log all the non-determinism the
   recovery system can capture (receives and user input, here) and force
   output commits — coordinated — only at visible events. *)
let manetho =
  {
    spec_name = "MANETHO";
    nd_effort = 0.75;
    visible_effort = 0.95;
    uses_2pc = true;
    style = Coordinated;
    instantiate =
      (fun ~nprocs ->
        let nd_since = Array.make nprocs false in
        {
          name = "MANETHO";
          react =
            (fun ~pid info ->
              if info_is_nd info then
                if info.loggable then { no_reaction with log = true }
                else begin
                  nd_since.(pid) <- true;
                  no_reaction
                end
              else if
                info_is_visible info && Array.exists (fun b -> b) nd_since
              then { no_reaction with commit_before = Some Global }
              else no_reaction);
          note_commit = (fun ~pid -> nd_since.(pid) <- false);
        });
  }

(* A message-logging protocol's react is style-independent: log every
   loggable determinant asynchronously, never commit for ND, and at a
   visible event request a {e dependent} commit — the engine (or model)
   resolves the request against the piggybacked dependency vectors and
   commits exactly the processes the output causally depends on (nothing
   at all when the output is untainted). *)
let make_logging ~name ~nd_effort ~visible_effort ~style =
  {
    spec_name = name;
    nd_effort;
    visible_effort;
    uses_2pc = false;
    style;
    instantiate =
      (fun ~nprocs:_ ->
        {
          name;
          react =
            (fun ~pid:_ info ->
              if info_is_nd info then
                if info.loggable then { no_reaction with log = true }
                else no_reaction
              else if info_is_visible info then
                { no_reaction with commit_before = Some Dependent }
              else no_reaction);
          note_commit = (fun ~pid:_ -> ());
        });
  }

(* CAUSAL-LOG: Manetho-style causal message logging (§2.4).  Determinants
   of logged events ride the dependency vectors to every causally
   downstream process, so they survive any single crash; only unlogged
   non-determinism taints, and a visible event commits exactly the tainted
   processes it depends on.  Efforts match the literature Manetho point on
   the Figure-3 map. *)
let causal_log =
  make_logging ~name:"CAUSAL-LOG" ~nd_effort:0.75 ~visible_effort:0.95
    ~style:Causal_log

(* OPTIMISTIC: optimistic message logging (§2.4).  Determinants go to a
   volatile log that dies with the process, so every ND event taints until
   a commit flushes it; recovery rolls back orphans — survivors whose
   state depends on the victim's lost non-determinism.  Efforts match the
   literature Optimistic point. *)
let optimistic =
  make_logging ~name:"OPTIMISTIC" ~nd_effort:0.6 ~visible_effort:0.8
    ~style:Optimistic_log

(* The seven protocols measured in Figure 8. *)
let figure8 =
  [ cand; cand_log; cpvs; cbndvs; cbndvs_log; cpv_2pc; cbndv_2pc ]

(* The executable message-logging protocols added on top of Figure 8. *)
let message_logging = [ causal_log; optimistic ]

(* Figure 8 extended with the message-logging column pair (9 columns). *)
let figure8_extended = figure8 @ message_logging

let all =
  commit_all :: no_commit :: coordinated_checkpointing
  :: sender_based_logging :: manetho :: figure8_extended

let by_name name =
  List.find_opt
    (fun s -> String.lowercase_ascii s.spec_name = String.lowercase_ascii name)
    all
