(** Recorded event traces.

    A trace accumulates the events executed by every process of a
    computation, maintaining vector clocks so that happens-before (and
    thus the causally-precedes approximation of §2.2) can be queried
    afterwards.  Message sends and receives are matched by [tag].

    Events live in an amortized-O(1) append array with a per-process
    index vector, so checker queries iterate in place instead of
    re-reversing a cons list: {!events_of} and {!commits_of} touch only
    that process's events, {!find} and {!matching_send} are O(1), and
    the Save-work / Consistency / Lose-work oracles stream over
    {!iter}/{!filter} without materializing the whole history. *)

type t = {
  nprocs : int;
  mutable arr : Event.t array;              (* events.(0 .. count-1) *)
  mutable count : int;
  mutable by_pid : int array array;         (* positions in [arr], per pid *)
  by_pid_count : int array;
  clocks : Vclock.t array;                  (* live clock per process *)
  send_clocks : (int, Vclock.t) Hashtbl.t;  (* tag -> clock at send *)
  first_sends : (int, Event.t) Hashtbl.t;   (* tag -> earliest send event *)
}

let create ~nprocs =
  {
    nprocs;
    arr = [||];
    count = 0;
    by_pid = Array.make nprocs [||];
    by_pid_count = Array.make nprocs 0;
    clocks = Array.init nprocs (fun _ -> Vclock.create nprocs);
    send_clocks = Hashtbl.create 64;
    first_sends = Hashtbl.create 64;
  }

let nprocs t = t.nprocs
let length t = t.count

let next_index t pid =
  (* Own component counts this process's events; index is 0-based. *)
  Vclock.get t.clocks.(pid) pid

(* Doubling append; the freshly recorded event doubles as the fill
   element, so no dummy [Event.t] is ever needed. *)
let push t (e : Event.t) =
  if t.count = Array.length t.arr then begin
    let grown = Array.make (max 16 (2 * t.count)) e in
    Array.blit t.arr 0 grown 0 t.count;
    t.arr <- grown
  end;
  t.arr.(t.count) <- e;
  t.count <- t.count + 1;
  let pid = e.Event.pid in
  let n = t.by_pid_count.(pid) in
  if n = Array.length t.by_pid.(pid) then begin
    let grown = Array.make (max 16 (2 * n)) 0 in
    Array.blit t.by_pid.(pid) 0 grown 0 n;
    t.by_pid.(pid) <- grown
  end;
  t.by_pid.(pid).(n) <- t.count - 1;
  t.by_pid_count.(pid) <- n + 1

let record t ~pid ?(logged = false) kind =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "Trace.record: bad pid %d" pid);
  let index = next_index t pid in
  (match kind with
  | Event.Receive { tag; _ } -> (
      match Hashtbl.find_opt t.send_clocks tag with
      | Some sc -> Vclock.merge_into ~into:t.clocks.(pid) sc
      | None -> ())
  | _ -> ());
  Vclock.tick t.clocks.(pid) pid;
  let vc = Vclock.copy t.clocks.(pid) in
  (match kind with
  | Event.Send { tag; _ } -> Hashtbl.replace t.send_clocks tag vc
  | _ -> ());
  let e = { Event.pid; index; kind; logged; vc } in
  (match kind with
  | Event.Send { tag; _ } ->
      if not (Hashtbl.mem t.first_sends tag) then
        Hashtbl.replace t.first_sends tag e
  | _ -> ());
  push t e;
  e

(* --- iteration ----------------------------------------------------------- *)

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Trace.get: out of range";
  t.arr.(i)

let iter t f =
  for i = 0 to t.count - 1 do
    f t.arr.(i)
  done

let iter_of t pid f =
  if pid < 0 || pid >= t.nprocs then invalid_arg "Trace.iter_of: bad pid";
  let row = t.by_pid.(pid) in
  for i = 0 to t.by_pid_count.(pid) - 1 do
    f t.arr.(row.(i))
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

(* All events satisfying [p], in global recording order, in one pass. *)
let filter t p =
  List.rev (fold t ~init:[] (fun acc e -> if p e then e :: acc else acc))

let events t = filter t (fun _ -> true)

let events_of t pid =
  List.rev
    (let acc = ref [] in
     iter_of t pid (fun e -> acc := e :: !acc);
     !acc)

(* e1 happens-before e2.  With per-event clock snapshots taken just after
   the tick, strict pointwise comparison is exactly Lamport's relation. *)
let happens_before (e1 : Event.t) (e2 : Event.t) = Vclock.lt e1.vc e2.vc

(* The paper uses happens-before as an approximation of causality; we keep
   a distinct name for readability at call sites. *)
let causally_precedes = happens_before

(* A process's events are indexed consecutively from 0, so lookup is one
   array read. *)
let find t ~pid ~index =
  if pid < 0 || pid >= t.nprocs || index < 0
     || index >= t.by_pid_count.(pid)
  then None
  else Some t.arr.(t.by_pid.(pid).(index))

let commits_of t pid =
  List.rev
    (let acc = ref [] in
     iter_of t pid (fun e -> if Event.is_commit e then acc := e :: !acc);
     !acc)

let visible_values t =
  List.rev
    (fold t ~init:[] (fun acc e ->
         match e.Event.kind with Event.Visible v -> v :: acc | _ -> acc))

let crashes t = filter t Event.is_crash

(* The matching send of a receive event, if it was recorded: the
   earliest send with the receive's tag, as the list scan used to
   return. *)
let matching_send t (recv : Event.t) =
  match recv.Event.kind with
  | Event.Receive { tag; _ } -> Hashtbl.find_opt t.first_sends tag
  | _ -> None

let pp fmt t = iter t (fun e -> Format.fprintf fmt "%a@." Event.pp e)
