(** The two-dimensional protocol space (paper §2.4, Figures 3 and 4).

    One axis measures the effort a protocol makes to identify and convert
    application non-determinism; the other measures the effort made to
    identify visible events and commit as few non-visible events as
    possible.  All consistent-recovery protocols fall somewhere in the
    space; position predicts commit frequency, performance, recovery
    complexity — and, crucially for §2.6, the chance of violating
    Lose-work: protocols on the horizontal axis (zero visible-events
    effort) commit or convert all non-determinism and thereby guarantee
    that applications cannot survive propagation failures. *)

type point = {
  name : string;
  nd_effort : float;       (* 0..1 along the horizontal axis *)
  visible_effort : float;  (* 0..1 along the vertical axis *)
  from_literature : bool;  (* protocols placed but not executed here *)
  executable : string option;
      (* literature points realized by an executable spec in
         {!Protocols}: the spec's name, at the same coordinates *)
}

let of_spec (s : Protocol.spec) =
  {
    name = s.Protocol.spec_name;
    nd_effort = s.Protocol.nd_effort;
    visible_effort = s.Protocol.visible_effort;
    from_literature = false;
    executable = None;
  }

(* Placements of the recovery-literature protocols discussed in §2.4.
   Two of them — Manetho and Optimistic logging — are no longer placed
   only from the literature: {!Protocols.causal_log} and
   {!Protocols.optimistic} execute them, so those points carry the
   executable spec's name (and must sit at its coordinates). *)
let literature =
  [
    { name = "SBL"; nd_effort = 0.55; visible_effort = 0.0;
      from_literature = true; executable = None };
    { name = "FBL"; nd_effort = 0.55; visible_effort = 0.12;
      from_literature = true; executable = None };
    { name = "Targon/32"; nd_effort = 0.75; visible_effort = 0.0;
      from_literature = true; executable = None };
    { name = "Hypervisor"; nd_effort = 1.0; visible_effort = 0.0;
      from_literature = true; executable = None };
    { name = "Optimistic"; nd_effort = 0.6; visible_effort = 0.8;
      from_literature = true; executable = Some "OPTIMISTIC" };
    { name = "Manetho"; nd_effort = 0.75; visible_effort = 0.95;
      from_literature = true; executable = Some "CAUSAL-LOG" };
    { name = "Coord-ckpt"; nd_effort = 0.15; visible_effort = 0.9;
      from_literature = true; executable = None };
  ]

let executed = List.map of_spec Protocols.figure8_extended

let all = executed @ literature

(* §2.6: any protocol on the horizontal axis of the space — one that
   commits or converts every ND event without regard to visible events —
   ensures a commit lands after the ND event that steers the process onto
   a dangerous path, violating Lose-work. *)
let prevents_propagation_recovery p = p.visible_effort = 0.0

(* Design-variable trends of Figure 4, as orderings on points. *)
let expected_commit_frequency_rank p =
  (* farther from the origin -> fewer commits *)
  -.sqrt ((p.nd_effort ** 2.) +. (p.visible_effort ** 2.))

let simplicity_rank p =
  (* closer to the origin -> simpler, more likely implemented correctly *)
  sqrt ((p.nd_effort ** 2.) +. (p.visible_effort ** 2.))

let constrained_reexecution p =
  (* protocols off the vertical axis log/convert ND events, so recovery
     must constrain reexecution to the pre-failure path for a time *)
  p.nd_effort > 0.0

let nd_left_in_application p =
  (* farther from the horizontal axis -> more ND left uncommitted ->
     better chance of surviving propagation failures *)
  p.visible_effort

(* ASCII rendering of Figure 3. *)
let render ?(width = 64) ?(height = 18) points =
  let buf = Buffer.create 2048 in
  let grid = Array.make_matrix height width ' ' in
  (* A literature point realized by an executable spec sits at exactly
     its twin's coordinates: plot one combined label instead of letting
     the two overwrite each other on the grid. *)
  let claimed = List.filter_map (fun p -> p.executable) points in
  let points = List.filter (fun p -> not (List.mem p.name claimed)) points in
  let place p =
    let x = int_of_float (p.nd_effort *. float_of_int (width - 12)) in
    let y = height - 2 - int_of_float (p.visible_effort
                                       *. float_of_int (height - 3)) in
    let x = max 0 (min (width - 1) x) and y = max 0 (min (height - 1) y) in
    let label =
      match p.executable with
      | Some e -> p.name ^ "=" ^ e
      | None -> p.name
    in
    String.iteri
      (fun i c -> if x + i < width then grid.(y).(x + i) <- c)
      label
  in
  List.iter place points;
  Buffer.add_string buf
    "effort to commit only visible events\n^\n";
  Array.iter
    (fun row ->
      Buffer.add_char buf '|';
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf "+";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_string buf
    "> effort to identify/convert non-deterministic events\n";
  Buffer.contents buf
