(** Generic Save-work conformance checking.

    Drives a protocol instance with an abstract stream of events — no
    virtual machine, no kernel — records the commits and logs the
    protocol dictates into a {!Trace}, and asks {!Save_work} whether the
    invariant held.  This is how the repository proves, by property
    testing over random multi-process streams, that every protocol in
    {!Protocols.figure8} upholds the Save-work Theorem: any of them can
    be handed to the engine and guarantee consistent recovery from stop
    failures. *)

(* One scripted step: process [pid] is about to execute an event with
   the given classification. *)
type step = { pid : int; info : Protocol.event_info }

let step ~pid info = { pid; info }

(* Fresh message tags for scripted sends; receives consume the oldest
   pending (dest, tag, src, sender-dv) for their destination, mirroring
   FIFO delivery with dependency-vector piggybacking. *)
type mailbox = {
  mutable pending : (int * int * int * Vclock.t) list;
  mutable next_tag : int;
}

(* Replay the script through the protocol, materializing commits into
   the trace exactly where the protocol asks for them. *)
let run spec ~nprocs script =
  let proto = Protocol.instantiate spec ~nprocs in
  let style = spec.Protocol.style in
  let trace = Trace.create ~nprocs in
  let mail = { pending = []; next_tag = 0 } in
  (* Synthetic tags for 2PC acknowledgement messages: negative so they
     never collide with application message tags. *)
  let ack_tag = ref (-1) in
  let round = ref 0 in
  (* Dependency tracking (logging styles): live vectors, each process's
     own component as of its last commit (the self-taint baseline), and
     per-process confirmed-stable marks — [stable.(p).(q)] is how much
     of q's own non-determinism p has confirmed durable through an
     acknowledged round.  The marks are local knowledge: a dependency
     may have committed already, but until an ack says so it must be
     contacted, which is what puts its covering commit in the output's
     causal past. *)
  let dvs = Array.init nprocs (fun _ -> Vclock.create nprocs) in
  let committed_own = Array.make nprocs 0 in
  let stable = Array.make_matrix nprocs nprocs 0 in
  let do_commit_one ~pid kind =
    ignore (Trace.record trace ~pid kind);
    committed_own.(pid) <- Vclock.get dvs.(pid) pid;
    proto.Protocol.note_commit ~pid
  in
  let ack ~participant ~coordinator =
    let tag = !ack_tag in
    decr ack_tag;
    ignore
      (Trace.record trace ~pid:participant
         (Event.Send { dest = coordinator; tag }));
    ignore
      (Trace.record trace ~pid:coordinator ~logged:true
         (Event.Receive { src = participant; tag }))
  in
  let commit_scope ~pid = function
    | None -> ()
    | Some Protocol.Local -> do_commit_one ~pid Event.Commit
    | Some Protocol.Global ->
        (* Two-phase commit: the participants commit and acknowledge
           first; the coordinator commits last, after all acks.  Every
           commit of the round carries the same round id — they are
           atomic with each other, the Save-work Theorem's "(or atomic
           with)" case. *)
        let r = !round in
        incr round;
        for q = 0 to nprocs - 1 do
          if q <> pid then begin
            do_commit_one ~pid:q (Event.Commit_round r);
            ack ~participant:q ~coordinator:pid
          end
        done;
        do_commit_one ~pid (Event.Commit_round r)
    | Some Protocol.Dependent -> (
        (* Commit exactly the processes the coordinator's state causally
           depends on beyond its confirmed-stable marks (transitive
           closure over the dependency vectors, each hop judged by the
           depending process's own marks: a participant's snapshot may
           carry taint the coordinator never saw directly, and its
           sources must co-commit).  One shared round id covers
           participant-to-participant dependencies; the coordinator
           commits the round last, so every participant's commit
           happens-before the output.  An untainted coordinator with no
           unconfirmed dependencies commits nothing. *)
        let in_set = Array.make nprocs false in
        let rec close p =
          for q = 0 to nprocs - 1 do
            if
              q <> pid && (not in_set.(q))
              && Vclock.get dvs.(p) q > stable.(p).(q)
            then begin
              in_set.(q) <- true;
              close q
            end
          done
        in
        close pid;
        let deps = Array.exists (fun b -> b) in_set in
        let self_tainted = Vclock.get dvs.(pid) pid > committed_own.(pid) in
        if deps then begin
          let r = !round in
          incr round;
          for q = 0 to nprocs - 1 do
            if in_set.(q) then begin
              do_commit_one ~pid:q (Event.Commit_round r);
              ack ~participant:q ~coordinator:pid;
              stable.(pid).(q) <- Vclock.get dvs.(q) q
            end
          done;
          do_commit_one ~pid (Event.Commit_round r)
        end
        else if self_tainted then do_commit_one ~pid Event.Commit)
  in
  List.iter
    (fun { pid; info } ->
      (* resolve the concrete kind: sends mint a tag, receives consume
         the oldest message addressed to this process *)
      let kind =
        match info.Protocol.kind with
        | Event.Send { dest; _ } ->
            let tag = mail.next_tag in
            mail.next_tag <- tag + 1;
            mail.pending <-
              mail.pending @ [ (dest, tag, pid, Vclock.copy dvs.(pid)) ];
            Event.Send { dest; tag }
        | Event.Receive _ -> (
            match
              List.find_opt (fun (dest, _, _, _) -> dest = pid) mail.pending
            with
            | Some ((_, tag, src, _) as m) ->
                mail.pending <- List.filter (fun m' -> m' <> m) mail.pending;
                let _, _, _, dv = m in
                (* the receiver's state now depends on everything the
                   sender's did at send time *)
                Vclock.merge_into ~into:dvs.(pid) dv;
                Event.Receive { src; tag }
            | None -> Event.Internal (* nothing to receive: skip *))
        | k -> k
      in
      match kind with
      | Event.Internal when Protocol.info_is_nd info ->
          () (* dropped receive *)
      | _ ->
          let reaction = proto.Protocol.react ~pid info in
          commit_scope ~pid reaction.Protocol.commit_before;
          let logged = reaction.Protocol.log && info.Protocol.loggable in
          if Protocol.taints style ~logged kind then Vclock.tick dvs.(pid) pid;
          ignore (Trace.record trace ~pid ~logged kind);
          commit_scope ~pid reaction.Protocol.commit_after)
    script;
  trace

(* Does the protocol uphold Save-work on this script? *)
let upholds_save_work spec ~nprocs script =
  Save_work.holds (run spec ~nprocs script)

let violations spec ~nprocs script =
  Save_work.violations (run spec ~nprocs script)

(* --- replayable scripts -------------------------------------------------- *)

(* One step per line: "p<pid> <op>".  The format is the interchange
   language between the model checker's shrunk counterexamples and this
   module's [run]: anything the checker prints can be replayed. *)
let step_to_string { pid; info } =
  let op =
    match info.Protocol.kind with
    | Event.Internal -> "internal"
    | Event.Nd c ->
        Printf.sprintf "nd %s%s"
          (match c with Event.Transient -> "transient" | Event.Fixed -> "fixed")
          (if info.Protocol.loggable then " loggable" else "")
    | Event.Visible v -> Printf.sprintf "visible %d" v
    | Event.Send { dest; _ } -> Printf.sprintf "send %d" dest
    | Event.Receive _ -> "recv"
    | Event.Commit -> "commit"
    | Event.Commit_round r -> Printf.sprintf "commit-round %d" r
    | Event.Crash -> "crash"
  in
  Printf.sprintf "p%d %s" pid op

let steps_to_string steps =
  String.concat "" (List.map (fun s -> step_to_string s ^ "\n") steps)

let step_of_tokens = function
  | [ "internal" ] -> Ok { Protocol.kind = Event.Internal; loggable = false }
  | "nd" :: cls :: rest -> (
      let loggable =
        match rest with
        | [] -> Ok false
        | [ "loggable" ] -> Ok true
        | _ -> Error "trailing tokens after nd class"
      in
      match (cls, loggable) with
      | _, Error e -> Error e
      | "transient", Ok l ->
          Ok { Protocol.kind = Event.Nd Event.Transient; loggable = l }
      | "fixed", Ok l ->
          Ok { Protocol.kind = Event.Nd Event.Fixed; loggable = l }
      | c, _ -> Error (Printf.sprintf "unknown nd class %S" c))
  | [ "visible"; v ] -> (
      match int_of_string_opt v with
      | Some v -> Ok { Protocol.kind = Event.Visible v; loggable = false }
      | None -> Error ("bad visible value " ^ v))
  | [ "send"; d ] -> (
      match int_of_string_opt d with
      | Some dest ->
          Ok { Protocol.kind = Event.Send { dest; tag = -1 }; loggable = false }
      | None -> Error ("bad send destination " ^ d))
  | [ "recv" ] ->
      Ok { Protocol.kind = Event.Receive { src = -1; tag = -1 }; loggable = true }
  | toks -> Error ("unknown step: p? " ^ String.concat " " toks)

let steps_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
        else
          match String.split_on_char ' ' line with
          | proc :: toks
            when String.length proc >= 2 && proc.[0] = 'p'
                 && int_of_string_opt
                      (String.sub proc 1 (String.length proc - 1))
                    <> None -> (
              let pid =
                int_of_string (String.sub proc 1 (String.length proc - 1))
              in
              match step_of_tokens (List.filter (( <> ) "") toks) with
              | Ok info -> go (step ~pid info :: acc) (lineno + 1) rest
              | Error e ->
                  Error (Printf.sprintf "line %d: %s" lineno e))
          | _ -> Error (Printf.sprintf "line %d: expected \"p<pid> <op>\"" lineno))
  in
  go [] 1 lines
