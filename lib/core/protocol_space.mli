(** The two-dimensional protocol space (paper §2.4, Figures 3 and 4). *)

type point = {
  name : string;
  nd_effort : float;  (** effort to identify/convert non-determinism *)
  visible_effort : float;  (** effort to commit only visible events *)
  from_literature : bool;  (** placed but not executed in this repo *)
  executable : string option;
      (** for literature points realized by an executable spec in
          {!Protocols} (Manetho, Optimistic logging): its name *)
}

val of_spec : Protocol.spec -> point

val literature : point list
(** Placements of SBL, FBL, Targon/32, Hypervisor, Optimistic logging,
    Manetho and Coordinated checkpointing. *)

val executed : point list
(** The protocols implemented by this repository: the Figure-8 seven
    plus the executable message-logging pair. *)

val all : point list

val prevents_propagation_recovery : point -> bool
(** §2.6: protocols on the horizontal axis commit or convert every ND
    event, guaranteeing a commit lands on any dangerous path. *)

val expected_commit_frequency_rank : point -> float
(** Figure 4: farther from the origin, fewer commits (more negative is
    fewer). *)

val simplicity_rank : point -> float
(** Figure 4: closer to the origin, simpler implementation. *)

val constrained_reexecution : point -> bool
(** Figure 4: protocols off the vertical axis must constrain recovery
    re-execution to the pre-failure path. *)

val nd_left_in_application : point -> float
(** Figure 4: distance from the horizontal axis, the non-determinism
    left uncommitted — the chance of surviving propagation failures. *)

val render : ?width:int -> ?height:int -> point list -> string
(** ASCII rendering of Figure 3. *)
