(** Vista-style lightweight transactions over a {!Rio} region.

    Vista provides atomic, persistent transactions without redo logging
    or system calls: updates to the mapped region are trapped and their
    before-images appended to a persistent undo log; commit atomically
    discards the undo log; recovery (or abort) applies it backwards
    (paper §3; Lowell & Chen, SOSP'97).

    The undo log lives IN the region, laid out in words, so the
    persisted words are the sole input to recovery: {!recover} rebuilds
    the record list from region contents and replays it, and works just
    as well on a freshly created [t] over an old region (a process that
    lost all its heap state in a crash).  A crash between any two word
    writes leaves the region recoverable to its state at the last
    commit — the property Discount Checking's checkpoints rely on, and
    one the torture harness ({!Ft_harness.Torture}) checks exhaustively.

    Region layout (data area first, log area after it):

    {v
      [0, data_words)                the transactional data area
      [data_words, size)             the log area:
        log+0   record-area words in use   (the atomic commit point)
        log+1   commits counter
        log+2   aborts counter
        log+3.. records, each  [off; len; before_0 .. before_{len-1}]
    v}

    Crash-safety rests on write ordering, checked by the torture
    harness:
    - a record's body is written BEFORE the header word publishes it, so
      a crash mid-append leaves an unpublished (ignored) record;
    - the data words are only updated after their record is published,
      so a torn data write is always covered by a complete before-image;
    - commit transactionally bumps the commits counter (its before-image
      is logged) and then discards the log with the single word write
      [count := 0] — the atomic commit point;
    - recovery is idempotent: replaying before-images rewrites the same
      words, the aborts counter is derived from post-replay contents,
      and the log is only discarded last, so a crash during recovery
      just makes the next recovery start over. *)

type t = {
  region : Rio.t;
  data_words : int;  (* log area starts here *)
  mutable in_tx : bool;
  mutable defect : defect option;
}

and defect = Publish_header_first

(* Header word offsets within the log area. *)
let hdr_count = 0
let hdr_commits = 1
let hdr_aborts = 2
let hdr_words = 3

let log_overhead_words = hdr_words

(* Words of log a transactional write of [len] words consumes. *)
let record_words ~len = len + 2

let create ?(data_words = -1) region =
  let size = Rio.size region in
  let data_words = if data_words < 0 then size / 2 else data_words in
  if data_words < 0 || data_words + hdr_words > size then
    invalid_arg "Vista.create: no room for the log area";
  { region; data_words; in_tx = false; defect = None }

let region t = t.region
let data_words t = t.data_words
let inject_defect t d = t.defect <- d

let log_base t = t.data_words
let rec_base t = t.data_words + hdr_words

let commits t = Rio.read t.region (log_base t + hdr_commits)
let aborts t = Rio.read t.region (log_base t + hdr_aborts)
let log_words t = Rio.read t.region (log_base t + hdr_count)

let begin_tx t =
  if t.in_tx then invalid_arg "Vista.begin_tx: transaction already open";
  t.in_tx <- true

let require_tx t name =
  if not t.in_tx then invalid_arg (name ^ ": no open transaction")

(* Append one undo record for the [len] region words at [off]: body
   first (the before-image is copied region-to-region, no intermediate
   array), then the single header write that publishes it.  (The
   [Publish_header_first] defect deliberately inverts that order so
   tests can prove the torture harness catches the resulting
   unrecoverable crash points.) *)
let append_record t ~off ~len =
  let count = log_words t in
  let base = rec_base t + count in
  if base + record_words ~len > Rio.size t.region then
    invalid_arg "Vista: undo log overflow";
  let publish () =
    Rio.write t.region (log_base t + hdr_count) (count + record_words ~len)
  in
  if t.defect = Some Publish_header_first then publish ();
  Rio.write t.region base off;
  Rio.write t.region (base + 1) len;
  Rio.copy_within t.region ~src_off:off ~dst_off:(base + 2) ~len;
  if t.defect <> Some Publish_header_first then publish ()

(* Log one run of a transactional write, then update its data words:
   the record is always published before the data words change, so a
   torn data write is covered by a complete before-image. *)
let write_run t ~off src ~spos ~len =
  append_record t ~off ~len;
  Rio.blit_sub_in t.region ~off src ~spos ~len

(* Diff mode: changed words only, coalesced into runs.  Two changed
   words whose gap of unchanged words is <= [diff_gap] share one run:
   a run merge trades the gap's extra logged-and-rewritten words
   against a saved 2-word record header, so small gaps amortize. *)
let diff_gap = 2

(* Compute the coalesced changed runs of [src] against the region, as
   (start, len) pairs relative to [spos], newest last; [] when the
   range is unchanged. *)
let changed_runs t ~off src ~spos ~len =
  let runs = ref [] in
  let run_start = ref (-1) and run_end = ref (-1) in
  let flush () =
    if !run_start >= 0 then
      runs := (!run_start, !run_end - !run_start + 1) :: !runs
  in
  for i = 0 to len - 1 do
    if Array.unsafe_get src (spos + i) <> Rio.unsafe_read t.region (off + i)
    then begin
      if !run_start < 0 then run_start := i
      else if i - !run_end > diff_gap + 1 then begin
        flush ();
        run_start := i
      end;
      run_end := i
    end
  done;
  flush ();
  List.rev !runs

(* Transactional write of a sub-range: log the before-image(s), then
   update.  In diff mode the incoming words are compared against the
   region and only the changed runs are logged and stored — unless the
   per-run record headers would cost more log words than one
   whole-range record, in which case the whole-range path is taken, so
   a diff-mode write NEVER consumes more log than [record_words ~len]
   (the {!Ft_runtime.Checkpointer.log_area_words} capacity bound holds
   by construction). *)
let write_sub ?(diff = false) t ~off ~src ~spos ~len =
  require_tx t "Vista.write_range";
  if off < 0 || len < 0 || off + len > t.data_words then
    invalid_arg "Vista.write_range: outside the data area";
  if spos < 0 || spos + len > Array.length src then
    invalid_arg "Vista.write_range: bad source range";
  if not diff then write_run t ~off src ~spos ~len
  else
    let runs = changed_runs t ~off src ~spos ~len in
    let diff_log_words =
      List.fold_left (fun acc (_, rlen) -> acc + rlen + 2) 0 runs
    in
    if runs = [] then ()  (* nothing changed: no record, no data write *)
    else if diff_log_words >= len + 2 then write_run t ~off src ~spos ~len
    else
      List.iter
        (fun (start, rlen) ->
          write_run t ~off:(off + start) src ~spos:(spos + start) ~len:rlen)
        runs

let write_range ?diff t ~off src =
  write_sub ?diff t ~off ~src ~spos:0 ~len:(Array.length src)

let write_word t ~off v = write_range t ~off [| v |]

(* Atomic commit: bump the commits counter under the protection of the
   undo log, then discard the log.  The single [count := 0] word write
   is the commit point: crash before it and recovery rolls everything
   (counter included) back; crash after it and the transaction — counter
   included — is durable. *)
let commit t =
  require_tx t "Vista.commit";
  let c = commits t in
  append_record t ~off:(log_base t + hdr_commits) ~len:1;
  Rio.write t.region (log_base t + hdr_commits) (c + 1);
  Rio.write t.region (log_base t + hdr_count) 0;
  t.in_tx <- false

(* Rebuild the record list from the published log words, newest first.
   Only the words below the header count exist; a record partially
   appended at crash time was never published and is invisible here. *)
let records_newest_first t =
  let count = log_words t in
  let base = rec_base t in
  let rec scan pos acc =
    if pos = count then acc
    else begin
      let off = Rio.read t.region (base + pos) in
      let len = Rio.read t.region (base + pos + 1) in
      if len < 0 || pos + record_words ~len > count then
        invalid_arg "Vista: corrupt undo log";
      scan (pos + record_words ~len) ((off, base + pos + 2, len) :: acc)
    end
  in
  scan 0 []

(* Replay the published log backwards and then discard it.  Idempotent
   until the final [count := 0]: before-image writes are absolute, and
   the aborts counter is set from its post-replay value rather than
   read-modify-written, so a crash anywhere inside recovery leaves a
   state from which recovery simply runs again. *)
let rollback t =
  if log_words t > 0 then begin
    List.iter
      (fun (off, body, len) ->
        Rio.copy_within t.region ~src_off:body ~dst_off:off ~len)
      (records_newest_first t);
    Rio.write t.region (log_base t + hdr_aborts) (aborts t + 1);
    Rio.write t.region (log_base t + hdr_count) 0
  end

(* Abort: apply before-images newest-first.  An empty transaction still
   counts as an abort. *)
let abort t =
  require_tx t "Vista.abort";
  if log_words t > 0 then rollback t
  else Rio.write t.region (log_base t + hdr_aborts) (aborts t + 1);
  t.in_tx <- false

(* Crash recovery: a pure function of region contents.  A published log
   means a transaction (possibly a commit) was torn; replay it.  An
   empty log means the last commit — or nothing at all — completed. *)
let recover t =
  rollback t;
  t.in_tx <- false

let in_tx t = t.in_tx
let undo_records t = List.length (records_newest_first t)
