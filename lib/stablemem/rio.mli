(** A Rio-style reliable memory region (paper §3): word-addressable
    memory that survives simulated process and OS crashes, with write
    accounting for the commit cost model and a word-granular write hook
    for crash-point fault injection. *)

exception Crash_point of int
(** Raised by a write hook to model a crash after the carried number of
    word writes have persisted; the intercepted write is NOT performed. *)

type t

val create : size:int -> t
val size : t -> int

val set_on_write : t -> (int -> int -> unit) option -> unit
(** Install (or clear) the write hook.  The hook sees (offset, value)
    before each word is persisted — including every word of a
    {!blit_in} — and may raise (e.g. {!Crash_point}) to abort that word
    and everything after it: a mid-blit raise leaves a torn blit, which
    is exactly the failure the torture harness explores. *)

val read : t -> int -> int

val unsafe_read : t -> int -> int
(** [read] without the bounds check, for hot scans that validated their
    whole range up front. *)

val write : t -> int -> int -> unit

val blit_in : t -> off:int -> int array -> unit
(** Bulk copy into the region (e.g. one checkpoint page).  With a hook
    installed the copy is word by word through the hook path; with no
    hook it is a single [Array.blit] with identical persisted words and
    identical {!words_written} accounting. *)

val blit_sub_in : t -> off:int -> int array -> spos:int -> len:int -> unit
(** [blit_sub_in t ~off src ~spos ~len] copies
    [src.(spos .. spos+len-1)] into the region at [off] — {!blit_in}
    without materializing the sub-array. *)

val copy_within : t -> src_off:int -> dst_off:int -> len:int -> unit
(** Region-to-region copy (before-images into the undo log, log replay
    back into the data area) through the same fast-path/hooked-path
    split as {!blit_sub_in}.  The ranges must be disjoint. *)

val blit_out : t -> off:int -> int array -> unit
val sub : t -> off:int -> len:int -> int array

val poke : t -> int -> int -> unit
(** Out-of-band mutation for fault injectors (cold-region bit flips):
    bypasses the hook and the write accounting, because it models
    corruption rather than a write the program performed. *)

val words_written : t -> int
(** Lifetime count of words written, for cost accounting. *)
