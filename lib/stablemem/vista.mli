(** Vista-style lightweight transactions over a {!Rio} region (paper §3):
    updates are trapped with before-images appended to an undo log that
    is itself persisted in the region (word-count header, word-laid-out
    records), commit atomically discards the log, and abort — or crash
    recovery — rebuilds the records from region words and applies them
    backwards.  Recovery is a pure function of region contents: it works
    on a freshly created [t] over an old region. *)

type t

type defect = Publish_header_first
    (** Deliberately publish a record in the log header before its body
        is written — the write-ordering bug the torture harness must
        catch.  Test-only. *)

val create : ?data_words:int -> Rio.t -> t
(** [create ~data_words region] manages [region] with transactional data
    in [\[0, data_words)] and the undo-log area (header + records) in
    [\[data_words, size)].  Default [data_words]: half the region.  The
    log area needs {!log_overhead_words} words of header plus, worst
    case, [len + 2] words per transactional write of [len] words.
    Raises [Invalid_argument] if the header does not fit. *)

val region : t -> Rio.t
val data_words : t -> int

val inject_defect : t -> defect option -> unit
(** Arm (or clear) a deliberate crash-safety defect; see {!defect}. *)

val log_overhead_words : int
(** Words of log-area header (count, commits, aborts). *)

val record_words : len:int -> int
(** Log words consumed by one transactional write of [len] words. *)

val begin_tx : t -> unit
(** Raises [Invalid_argument] if a transaction is already open. *)

val write_range : ?diff:bool -> t -> off:int -> int array -> unit
(** Transactional write: appends the before-image record to the
    persisted log (body first, then the publishing header write), then
    updates the data words.  Raises [Invalid_argument] outside the data
    area or on log overflow.

    With [~diff:true] the incoming words are first compared against the
    region: only the changed words, coalesced into runs (two changed
    words whose gap of unchanged words is at most {!diff_gap} share a
    run), are logged and stored.  An unchanged range appends no record
    and writes no data word.  Whenever the per-run record headers would
    cost more log words than one whole-range record, the whole-range
    path is taken instead — so a diff-mode write never consumes more
    than [record_words ~len] log words, and restore-equivalence with
    the whole-range path holds at every crash point (checked by the
    torture-style qcheck properties in [test_stablemem]). *)

val write_sub :
  ?diff:bool -> t -> off:int -> src:int array -> spos:int -> len:int -> unit
(** {!write_range} over [src.(spos .. spos+len-1)] without materializing
    the sub-array (the checkpointer's allocation-free commit path). *)

val diff_gap : int
(** Maximum run of unchanged words coalesced into a diff run: merging
    across a gap of [g <= diff_gap] words trades [g] extra
    logged-and-rewritten words against a saved 2-word record header. *)

val write_word : t -> off:int -> int -> unit

val commit : t -> unit
(** Transactionally bump the commits counter, then atomically discard
    the undo log (the single header word write is the commit point). *)

val abort : t -> unit
(** Apply before-images newest-first and discard the log. *)

val recover : t -> unit
(** Crash recovery, a pure function of region contents: rebuild the
    published records from the log words, replay them backwards, bump
    the persisted aborts counter and discard the log; a no-op when the
    log is empty.  Idempotent under crashes during recovery itself. *)

val in_tx : t -> bool

val undo_records : t -> int
(** Number of published records currently in the log. *)

val log_words : t -> int
(** Record-area words currently published (the header count word). *)

val commits : t -> int
(** The persisted commits counter. *)

val aborts : t -> int
(** The persisted aborts counter. *)
