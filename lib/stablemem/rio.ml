(** A Rio-style reliable memory region.

    The Rio file cache makes ordinary DRAM survive operating-system
    crashes, so that committing to it costs memory-copy time instead of a
    synchronous disk write (paper §3).  We model a region as a
    word-addressable persistent array: simulated process and OS crashes
    never clear it (the recovery engine only ever resets machines), and
    every write is accounted so commit costs can be charged.

    Every mutation goes through a single word-granular path guarded by an
    optional write hook, so fault injectors ({!Ft_faults.Mem_injector})
    can observe the exact persisted-write sequence, crash the simulation
    between any two word writes ({!Crash_point}), and tear a {!blit_in}
    partway through — the substrate the crash-point torture harness
    drives. *)

exception Crash_point of int
(** Raised by a write hook to model a crash after the carried number of
    word writes have persisted; the write the hook intercepted is NOT
    performed. *)

type t = {
  words : int array;
  mutable words_written : int;  (* lifetime accounting for cost models *)
  mutable on_write : (int -> int -> unit) option;
      (* called with (offset, value) BEFORE each word is persisted; a
         raising hook (e.g. [Crash_point]) aborts that word and all
         later ones *)
}

let create ~size = { words = Array.make size 0; words_written = 0;
                     on_write = None }

let size t = Array.length t.words

let set_on_write t hook = t.on_write <- hook

let read t off =
  if off < 0 || off >= Array.length t.words then
    invalid_arg "Rio.read: out of range";
  t.words.(off)

(* The single persisted-write path: hook, then store, then account. *)
let write_word t off v =
  (match t.on_write with Some f -> f off v | None -> ());
  t.words.(off) <- v;
  t.words_written <- t.words_written + 1

let write t off v =
  if off < 0 || off >= Array.length t.words then
    invalid_arg "Rio.write: out of range";
  write_word t off v

(* Bulk copy into the region (one page of a checkpoint), word by word so
   a crash point can land between any two words and leave a torn blit. *)
let blit_in t ~off src =
  if off < 0 || off + Array.length src > Array.length t.words then
    invalid_arg "Rio.blit_in: out of range";
  for i = 0 to Array.length src - 1 do
    write_word t (off + i) src.(i)
  done

(* Bulk copy out of the region (restoring a checkpoint). *)
let blit_out t ~off dst =
  if off < 0 || off + Array.length dst > Array.length t.words then
    invalid_arg "Rio.blit_out: out of range";
  Array.blit t.words off dst 0 (Array.length dst)

let sub t ~off ~len =
  let dst = Array.make len 0 in
  blit_out t ~off dst;
  dst

(* Out-of-band mutation for fault injectors (e.g. cold-region bit
   flips): bypasses the hook and the write accounting, because it models
   corruption, not a write the program performed. *)
let poke t off v =
  if off < 0 || off >= Array.length t.words then
    invalid_arg "Rio.poke: out of range";
  t.words.(off) <- v

let words_written t = t.words_written
