(** A Rio-style reliable memory region.

    The Rio file cache makes ordinary DRAM survive operating-system
    crashes, so that committing to it costs memory-copy time instead of a
    synchronous disk write (paper §3).  We model a region as a
    word-addressable persistent array: simulated process and OS crashes
    never clear it (the recovery engine only ever resets machines), and
    every write is accounted so commit costs can be charged.

    Every mutation goes through a word-granular path guarded by an
    optional write hook, so fault injectors ({!Ft_faults.Mem_injector})
    can observe the exact persisted-write sequence, crash the simulation
    between any two word writes ({!Crash_point}), and tear a {!blit_in}
    partway through — the substrate the crash-point torture harness
    drives.  When NO hook is installed (every failure-free run), the bulk
    operations take a fast path: one [Array.blit] plus one accounting
    update, with the exact same persisted words and the exact same
    {!words_written} count as the hooked word-by-word path. *)

exception Crash_point of int
(** Raised by a write hook to model a crash after the carried number of
    word writes have persisted; the write the hook intercepted is NOT
    performed. *)

type t = {
  words : int array;
  mutable words_written : int;  (* lifetime accounting for cost models *)
  mutable on_write : (int -> int -> unit) option;
      (* called with (offset, value) BEFORE each word is persisted; a
         raising hook (e.g. [Crash_point]) aborts that word and all
         later ones *)
}

let create ~size = { words = Array.make size 0; words_written = 0;
                     on_write = None }

let size t = Array.length t.words

let set_on_write t hook = t.on_write <- hook

let read t off =
  if off < 0 || off >= Array.length t.words then
    invalid_arg "Rio.read: out of range";
  t.words.(off)

(* Bounds-unchecked read for hot scans whose range was validated once up
   front (e.g. Vista's diff comparison). *)
let unsafe_read t off = Array.unsafe_get t.words off

(* The single persisted-write path: hook, then store, then account. *)
let write_word t off v =
  (match t.on_write with Some f -> f off v | None -> ());
  t.words.(off) <- v;
  t.words_written <- t.words_written + 1

let write t off v =
  if off < 0 || off >= Array.length t.words then
    invalid_arg "Rio.write: out of range";
  write_word t off v

(* Bulk copy of [src.(spos .. spos+len-1)] into the region.  Hooked:
   word by word, so a crash point can land between any two words and
   leave a torn blit.  Unhooked: one [Array.blit] — bit-identical result
   and identical [words_written] accounting, without the per-word
   closure check. *)
let blit_sub_in t ~off src ~spos ~len =
  if off < 0 || len < 0 || off + len > Array.length t.words then
    invalid_arg "Rio.blit_in: out of range";
  if spos < 0 || spos + len > Array.length src then
    invalid_arg "Rio.blit_in: bad source range";
  match t.on_write with
  | None ->
      Array.blit src spos t.words off len;
      t.words_written <- t.words_written + len
  | Some _ ->
      for i = 0 to len - 1 do
        write_word t (off + i) src.(spos + i)
      done

let blit_in t ~off src = blit_sub_in t ~off src ~spos:0 ~len:(Array.length src)

(* Region-to-region copy (undo-log before-images, log replay): the
   source words are region words, so no intermediate array is needed.
   Same fast-path/hooked-path split as {!blit_sub_in}.  The two ranges
   must be disjoint for the paths to agree (the hooked path copies word
   by word, ascending); every caller satisfies this, since the log and
   data areas never overlap. *)
let copy_within t ~src_off ~dst_off ~len =
  let n = Array.length t.words in
  if len < 0 || src_off < 0 || dst_off < 0
     || src_off + len > n || dst_off + len > n
  then invalid_arg "Rio.copy_within: out of range";
  match t.on_write with
  | None ->
      Array.blit t.words src_off t.words dst_off len;
      t.words_written <- t.words_written + len
  | Some _ ->
      for i = 0 to len - 1 do
        write_word t (dst_off + i) t.words.(src_off + i)
      done

(* Bulk copy out of the region (restoring a checkpoint). *)
let blit_out t ~off dst =
  if off < 0 || off + Array.length dst > Array.length t.words then
    invalid_arg "Rio.blit_out: out of range";
  Array.blit t.words off dst 0 (Array.length dst)

let sub t ~off ~len =
  let dst = Array.make len 0 in
  blit_out t ~off dst;
  dst

(* Out-of-band mutation for fault injectors (e.g. cold-region bit
   flips): bypasses the hook and the write accounting, because it models
   corruption, not a write the program performed. *)
let poke t off v =
  if off < 0 || off >= Array.length t.words then
    invalid_arg "Rio.poke: out of range";
  t.words.(off) <- v

let words_written t = t.words_written
