(** Paged heap memory with dirty-page tracking: the substrate for
    Discount Checking's copy-on-write incremental checkpoints (paper §3). *)

type t

exception Out_of_bounds of int

val create : ?page_size:int -> size:int -> unit -> t
(** [page_size] must be a power of two (default 64 words). *)

val size : t -> int
val page_size : t -> int
val npages : t -> int

val read : t -> int -> int
(** Raises {!Out_of_bounds}: the crash event of a wild load. *)

val write : t -> int -> int -> unit
(** Marks the containing page dirty.  Raises {!Out_of_bounds}. *)

val dirty_pages : t -> int list
(** Pages written since the last {!clear_dirty}, ascending. *)

val dirty_count : t -> int
val clear_dirty : t -> unit

val snapshot_page : t -> int -> int array
val restore_page : t -> int -> int array -> unit

val blit_page_into : t -> int -> int array -> unit
(** [blit_page_into t p dst] copies page [p] into [dst] (which must hold
    at least [page_size] words) without allocating. *)

val iter_page : t -> int -> (int -> int -> unit) -> unit
(** [iter_page t p f] calls [f addr word] for every word of page [p],
    in address order, without copying the page. *)

val snapshot : t -> int array
val restore : t -> int array -> unit
(** Also clears dirty tracking. *)
