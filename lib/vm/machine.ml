(** The virtual machine interpreter.

    A machine executes instructions until it halts, crashes, or reaches a
    system call; syscalls are serviced by the caller (the execution
    engine, which owns the kernel model), keeping this module free of OS
    policy.  Crash conditions — out-of-bounds memory access, division by
    zero, wild jumps, failed consistency checks — are the {e crash
    events} of the paper's model: transitions into a state from which the
    process cannot continue (§2.5). *)

type crash_reason =
  | Heap_out_of_bounds of int
  | Stack_overflow
  | Stack_underflow
  | Division_by_zero
  | Bad_jump of int
  | Bad_register of int
  | Check_failed of int        (* pc of the failed consistency check *)
  | Killed                     (* external stop failure *)

let crash_reason_to_string = function
  | Heap_out_of_bounds a -> Printf.sprintf "heap access out of bounds (%d)" a
  | Stack_overflow -> "stack overflow"
  | Stack_underflow -> "stack underflow"
  | Division_by_zero -> "division by zero"
  | Bad_jump a -> Printf.sprintf "jump out of code (%d)" a
  | Bad_register r -> Printf.sprintf "bad register %d" r
  | Check_failed pc -> Printf.sprintf "consistency check failed at %d" pc
  | Killed -> "killed (stop failure)"

type status =
  | Running
  | Need_syscall of Syscall.t  (* stopped just before servicing [Sys] *)
  | Halted
  | Crashed of crash_reason

type t = {
  mutable code : Instr.t array;
  mutable pc : int;
  regs : int array;
  mutable stack : int array;
  mutable sp : int;
  mutable fp : int;
  heap : Memory.t;
  mutable status : status;
  mutable icount : int;              (* dynamic instructions executed *)
  mutable signal_handler : int;      (* code address, -1 if none *)
  mutable in_signal : bool;
  (* Observation hook for fault injectors: called with the static pc of
     every instruction executed. *)
  mutable on_execute : (int -> unit) option;
}

let create ?(stack_size = 4096) ?(heap_size = 65536) ?(page_size = 64) code =
  {
    code;
    pc = 0;
    regs = Array.make Instr.num_regs 0;
    stack = Array.make stack_size 0;
    sp = 0;
    fp = 0;
    heap = Memory.create ~page_size ~size:heap_size ();
    status = Running;
    icount = 0;
    signal_handler = -1;
    in_signal = false;
    on_execute = None;
  }

let status t = t.status
let heap t = t.heap
let icount t = t.icount
let pc t = t.pc

let crash t reason = t.status <- Crashed reason

let kill t = crash t Killed

(* Constant-time status test.  [t.status = Running] would go through
   polymorphic equality (a C call: [status] has non-constant
   constructors), which the interpreter loop pays several times per
   instruction. *)
let[@inline] is_running t =
  match t.status with Running -> true | _ -> false

(* The explicit range checks below subsume the bounds check the safe
   array operations would repeat, so the hot accesses are unsafe_. *)
let reg t r =
  if r < 0 || r >= Instr.num_regs then (crash t (Bad_register r); 0)
  else Array.unsafe_get t.regs r

let set_reg t r v =
  if r < 0 || r >= Instr.num_regs then crash t (Bad_register r)
  else Array.unsafe_set t.regs r v

let stack_slot t i =
  if i < 0 || i >= t.sp then None else Some t.stack.(i)

let set_stack_slot t i v =
  if i >= 0 && i < t.sp then t.stack.(i) <- v

let live_stack_size t = t.sp

let push t v =
  if t.sp >= Array.length t.stack then crash t Stack_overflow
  else begin
    Array.unsafe_set t.stack t.sp v;
    t.sp <- t.sp + 1
  end

let pop t =
  if t.sp <= 0 then (crash t Stack_underflow; 0)
  else begin
    t.sp <- t.sp - 1;
    Array.unsafe_get t.stack t.sp
  end

let jump t a =
  if a < 0 || a > Array.length t.code then crash t (Bad_jump a)
  else t.pc <- a

let cmp op a b =
  let r =
    match op with
    | Instr.Lt -> a < b
    | Instr.Le -> a <= b
    | Instr.Gt -> a > b
    | Instr.Ge -> a >= b
    | Instr.Eq -> a = b
    | Instr.Ne -> a <> b
  in
  if r then 1 else 0

(* Execute exactly one instruction.  On [Sys s], sets status to
   [Need_syscall s] and leaves pc pointing *past* the Sys instruction:
   the engine services the call, writes result registers, and calls
   [resume]. *)
let step t =
  match t.status with
  | Halted | Crashed _ | Need_syscall _ -> ()
  | Running ->
      if t.pc < 0 || t.pc >= Array.length t.code then crash t (Bad_jump t.pc)
      else begin
        let at = t.pc in
        (match t.on_execute with Some f -> f at | None -> ());
        t.icount <- t.icount + 1;
        t.pc <- t.pc + 1;
        match Array.unsafe_get t.code at with
        | Instr.Nop -> ()
        | Instr.Halt -> t.status <- Halted
        | Instr.Const (d, n) -> set_reg t d n
        | Instr.Mov (d, s) -> set_reg t d (reg t s)
        | Instr.Bin (op, d, a, b) ->
            (* Operand order mirrors the former [binop op (reg t a)
               (reg t b)] call (right-to-left); the dispatch is inlined
               so arithmetic never allocates an option. *)
            let y = reg t b in
            let x = reg t a in
            (match op with
            | Instr.Add -> set_reg t d (x + y)
            | Instr.Sub -> set_reg t d (x - y)
            | Instr.Mul -> set_reg t d (x * y)
            | Instr.Div ->
                if y = 0 then crash t Division_by_zero
                else set_reg t d (x / y)
            | Instr.Mod ->
                if y = 0 then crash t Division_by_zero
                else set_reg t d (x mod y)
            | Instr.And -> set_reg t d (x land y)
            | Instr.Or -> set_reg t d (x lor y)
            | Instr.Xor -> set_reg t d (x lxor y)
            | Instr.Shl -> set_reg t d (x lsl (y land 62))
            | Instr.Shr -> set_reg t d (x asr (y land 62)))
        | Instr.Cmp (op, d, a, b) -> set_reg t d (cmp op (reg t a) (reg t b))
        | Instr.Load (d, a) -> (
            match Memory.read t.heap (reg t a) with
            | v -> set_reg t d v
            | exception Memory.Out_of_bounds addr ->
                crash t (Heap_out_of_bounds addr))
        | Instr.Store (a, s) -> (
            match Memory.write t.heap (reg t a) (reg t s) with
            | () -> ()
            | exception Memory.Out_of_bounds addr ->
                crash t (Heap_out_of_bounds addr))
        | Instr.Push r -> push t (reg t r)
        | Instr.Pop r ->
            let v = pop t in
            if is_running t then set_reg t r v
        | Instr.Sload (d, off) ->
            let i = t.fp + off in
            if i < 0 || i >= Array.length t.stack then crash t Stack_overflow
            else set_reg t d (Array.unsafe_get t.stack i)
        | Instr.Sstore (off, s) ->
            let i = t.fp + off in
            if i < 0 || i >= Array.length t.stack then crash t Stack_overflow
            else Array.unsafe_set t.stack i (reg t s)
        | Instr.Jmp a -> jump t a
        | Instr.Jz (r, a) -> if reg t r = 0 then jump t a
        | Instr.Jnz (r, a) -> if reg t r <> 0 then jump t a
        | Instr.Call a ->
            push t t.pc;
            if is_running t then jump t a
        | Instr.Ret ->
            let a = pop t in
            if is_running t then jump t a
        | Instr.Enter n ->
            push t t.fp;
            if is_running t then begin
              t.fp <- t.sp;
              if t.sp + n > Array.length t.stack then crash t Stack_overflow
              else
                (* Locals are NOT cleared: like a real stack, a frame
                   starts with stale garbage from earlier calls, so a
                   lost-initialization fault reads junk immediately. *)
                t.sp <- t.sp + n
            end
        | Instr.Leave ->
            if t.fp > t.sp || t.fp < 1 then crash t Stack_underflow
            else begin
              t.sp <- t.fp;
              let old_fp = pop t in
              if is_running t then t.fp <- old_fp
            end
        | Instr.Sys s -> t.status <- Need_syscall s
        | Instr.Check r ->
            if reg t r = 0 then crash t (Check_failed at)
        | Instr.Sigret ->
            (* Restore the register file pushed by [deliver_signal], then
               return to the interrupted pc. *)
            for r = Instr.num_regs - 1 downto 0 do
              let v = pop t in
              if is_running t then t.regs.(r) <- v
            done;
            if is_running t then begin
              let a = pop t in
              if is_running t then begin
                t.in_signal <- false;
                jump t a
              end
            end
      end

(* Execute up to [budget] instructions, stopping early at the first
   status change.  Behaviourally identical to calling {!step} in a loop,
   but the scheduler pays one call per slice instead of three
   cross-module calls (two of them polymorphic compares) per
   instruction.  Returns the number of instructions actually executed
   (a crash on a wild pc consumes no instruction, exactly as in
   {!step}). *)
let step_n t budget =
  let start = t.icount in
  while t.icount - start < budget && is_running t do
    step t
  done;
  t.icount - start

(* Resume after the engine serviced a pending syscall. *)
let resume t =
  match t.status with
  | Need_syscall _ -> t.status <- Running
  | _ -> invalid_arg "Machine.resume: no pending syscall"

(* Rewind to the [Sys] instruction itself.  The engine does this as soon
   as it sees [Need_syscall]: the machine is then at a clean boundary, so
   a checkpoint taken before the event re-executes the syscall on
   recovery (commit-before semantics), and one taken after it resumes
   past it (commit-after semantics). *)
let rewind_syscall t =
  match t.status with
  | Need_syscall _ ->
      t.pc <- t.pc - 1;
      t.status <- Running
  | _ -> invalid_arg "Machine.rewind_syscall: no pending syscall"

(* Step over the [Sys] instruction once the engine has serviced it. *)
let advance_past_syscall t = t.pc <- t.pc + 1

(* Deliver a signal: push the interrupted pc and the whole register file,
   then transfer to the installed handler (whose epilogue is [Sigret]).
   Delivery timing is a transient ND event. *)
let deliver_signal t =
  if t.signal_handler >= 0 && is_running t && not t.in_signal then begin
    push t t.pc;
    for r = 0 to Instr.num_regs - 1 do
      if is_running t then push t t.regs.(r)
    done;
    if is_running t then begin
      t.in_signal <- true;
      jump t t.signal_handler
    end;
    is_running t
  end
  else false

(* --- checkpoint support ------------------------------------------------ *)

type snapshot = {
  s_code_len : int;          (* sanity: snapshots are per-program *)
  s_pc : int;
  s_regs : int array;
  s_stack : int array;       (* live prefix only *)
  s_sp : int;
  s_fp : int;
  s_heap : int array;
  s_icount : int;
  s_signal_handler : int;
  s_in_signal : bool;
}

let snapshot t =
  {
    s_code_len = Array.length t.code;
    s_pc = t.pc;
    s_regs = Array.copy t.regs;
    s_stack = Array.sub t.stack 0 t.sp;
    s_sp = t.sp;
    s_fp = t.fp;
    s_heap = Memory.snapshot t.heap;
    s_icount = t.icount;
    s_signal_handler = t.signal_handler;
    s_in_signal = t.in_signal;
  }

let restore t (s : snapshot) =
  t.pc <- s.s_pc;
  Array.blit s.s_regs 0 t.regs 0 Instr.num_regs;
  Array.blit s.s_stack 0 t.stack 0 s.s_sp;
  t.sp <- s.s_sp;
  t.fp <- s.s_fp;
  Memory.restore t.heap s.s_heap;
  t.icount <- s.s_icount;
  t.signal_handler <- s.s_signal_handler;
  t.in_signal <- s.s_in_signal;
  t.status <- Running

(* Size in words a full-process checkpoint of this machine would occupy:
   registers + live stack + heap. *)
let state_words t = Instr.num_regs + t.sp + Memory.size t.heap
