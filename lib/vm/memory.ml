(** Paged heap memory with dirty-page tracking.

    Discount Checking traps updates with copy-on-write and logs
    before-images of updated regions (paper §3).  We track the set of
    pages written since the last checkpoint; the checkpointer copies
    exactly those pages and charges a per-page trap-and-copy cost, just
    as Vista's COW on the process address space would. *)

type t = {
  mutable data : int array;
  page_size : int;              (* words per page; power of two *)
  page_shift : int;             (* log2 page_size: page = addr lsr shift *)
  mutable dirty : bool array;   (* per page, since last clear *)
  mutable dirty_count : int;
}

exception Out_of_bounds of int

let create ?(page_size = 64) ~size () =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Memory.create: page_size must be a power of two";
  let npages = (size + page_size - 1) / page_size in
  let page_shift =
    let s = ref 0 in
    while 1 lsl !s < page_size do incr s done;
    !s
  in
  {
    data = Array.make (npages * page_size) 0;
    page_size;
    page_shift;
    dirty = Array.make (max 1 npages) false;
    dirty_count = 0;
  }

let size t = Array.length t.data
let page_size t = t.page_size
let npages t = Array.length t.dirty

(* The explicit range check subsumes the bounds check the safe array
   operations would repeat, so the accesses below are unsafe_. *)
let read t addr =
  if addr < 0 || addr >= Array.length t.data then raise (Out_of_bounds addr);
  Array.unsafe_get t.data addr

let write t addr v =
  if addr < 0 || addr >= Array.length t.data then raise (Out_of_bounds addr);
  let page = addr lsr t.page_shift in
  if not (Array.unsafe_get t.dirty page) then begin
    Array.unsafe_set t.dirty page true;
    t.dirty_count <- t.dirty_count + 1
  end;
  Array.unsafe_set t.data addr v

(* Raw poke that bypasses bounds/accounting policy decisions is not
   offered: fault injectors flip bits through [write] so the corruption
   is captured by checkpoints exactly as a real stray store would be. *)

let dirty_pages t =
  let acc = ref [] in
  for p = Array.length t.dirty - 1 downto 0 do
    if t.dirty.(p) then acc := p :: !acc
  done;
  !acc

let dirty_count t = t.dirty_count

let clear_dirty t =
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.dirty_count <- 0

(* Copy out one page (for incremental checkpoints). *)
let snapshot_page t p =
  Array.sub t.data (p * t.page_size) t.page_size

(* Copy-free page access: the checkpointer's commit path reuses one
   scratch buffer per slot instead of allocating a page array per dirty
   page per checkpoint. *)
let blit_page_into t p dst =
  if Array.length dst < t.page_size then
    invalid_arg "Memory.blit_page_into: buffer smaller than a page";
  Array.blit t.data (p * t.page_size) dst 0 t.page_size

let iter_page t p f =
  let base = p * t.page_size in
  for i = 0 to t.page_size - 1 do
    f (base + i) (Array.unsafe_get t.data (base + i))
  done

let restore_page t p words =
  Array.blit words 0 t.data (p * t.page_size) t.page_size

let snapshot t = Array.copy t.data

let restore t words =
  if Array.length words <> Array.length t.data then begin
    t.data <- Array.copy words;
    let npages = (Array.length words + t.page_size - 1) / t.page_size in
    t.dirty <- Array.make (max 1 npages) false;
    t.dirty_count <- 0
  end
  else Array.blit words 0 t.data 0 (Array.length words);
  clear_dirty t
