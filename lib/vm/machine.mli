(** The virtual machine interpreter.  Syscalls pause the machine for the
    engine to service; crash conditions (wild loads and stores, division
    by zero, bad jumps, failed consistency checks) are the crash events
    of the paper's model (§2.5).

    The state record is exposed: the execution engine and the fault
    injectors manipulate code, registers and hooks directly. *)

type crash_reason =
  | Heap_out_of_bounds of int
  | Stack_overflow
  | Stack_underflow
  | Division_by_zero
  | Bad_jump of int
  | Bad_register of int
  | Check_failed of int  (** pc of the failed consistency check *)
  | Killed  (** external stop failure *)

val crash_reason_to_string : crash_reason -> string

type status =
  | Running
  | Need_syscall of Syscall.t  (** paused just past a [Sys] instruction *)
  | Halted
  | Crashed of crash_reason

type t = {
  mutable code : Instr.t array;
  mutable pc : int;
  regs : int array;
  mutable stack : int array;
  mutable sp : int;
  mutable fp : int;
  heap : Memory.t;
  mutable status : status;
  mutable icount : int;  (** dynamic instructions executed *)
  mutable signal_handler : int;  (** code address, -1 when none *)
  mutable in_signal : bool;
  mutable on_execute : (int -> unit) option;
      (** observation hook: called with the static pc of every
          instruction executed (used by fault injectors) *)
}

val create :
  ?stack_size:int -> ?heap_size:int -> ?page_size:int -> Instr.t array -> t

val status : t -> status
val heap : t -> Memory.t
val icount : t -> int
val pc : t -> int

val crash : t -> crash_reason -> unit
val kill : t -> unit
(** An external stop failure. *)

val set_reg : t -> Instr.reg -> int -> unit
val stack_slot : t -> int -> int option
val set_stack_slot : t -> int -> int -> unit
val live_stack_size : t -> int

val step : t -> unit
(** Execute one instruction; no-op unless [Running]. *)

val step_n : t -> int -> int
(** [step_n t budget] executes up to [budget] instructions, stopping
    early at the first status change; returns the number executed.
    Equivalent to calling {!step} in a loop, minus the per-instruction
    call overhead. *)

val is_running : t -> bool
(** [status t = Running], without the polymorphic compare. *)

val resume : t -> unit
(** Clear a [Need_syscall] status. *)

val rewind_syscall : t -> unit
(** Point the machine back at the pending [Sys] instruction so a
    checkpoint taken now replays the event (commit-before semantics). *)

val advance_past_syscall : t -> unit
(** Step over the [Sys] instruction after servicing it. *)

val deliver_signal : t -> bool
(** Push the continuation and the register file, jump to the installed
    handler.  Returns [false] when no handler is installed, a handler is
    already running, or the machine is not [Running]. *)

type snapshot = {
  s_code_len : int;
  s_pc : int;
  s_regs : int array;
  s_stack : int array;  (** live prefix *)
  s_sp : int;
  s_fp : int;
  s_heap : int array;
  s_icount : int;
  s_signal_handler : int;
  s_in_signal : bool;
}

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val state_words : t -> int
(** Words a full-process checkpoint would occupy. *)
