(** Application fault injection (paper §4.1): plan a fault from a seeded
    RNG, arm it on a process inside the engine.  Code mutations change
    the program before the run; bit flips fire at a planned dynamic
    instruction count.  Activation — the first moment the mutation
    changes the execution — is recorded with the engine so the Lose-work
    analyses can ask whether a commit followed it. *)

type plan =
  | Code_mutation of { at : int; replacement : Ft_vm.Instr.t }
  | Bit_flip of {
      at_icount : int;  (** dynamic instruction at which to flip *)
      target : [ `Stack | `Heap ];
      bit : int;
      loc_seed : int;  (** picks the word at flip time among live state *)
    }

val pp_plan : Format.formatter -> plan -> unit

val candidates : Fault_type.t -> Ft_vm.Instr.t array -> int list
(** Instruction indices eligible for a code-mutation fault of the given
    type. *)

val plan :
  Random.State.t ->
  Fault_type.t ->
  code:Ft_vm.Instr.t array ->
  horizon:int ->
  plan option
(** [horizon] is the expected dynamic instruction count of a fault-free
    run, used to place bit flips uniformly in time.  [None] when the
    program offers no suitable site. *)

val arm : Ft_runtime.Engine.t -> pid:int -> plan -> unit
(** Install the fault.  Activation is semantic: an off-by-one comparison
    activates only on operands where the operators disagree, a deleted
    branch only when it would have been taken. *)

val arm_recurring :
  Ft_runtime.Engine.t ->
  pid:int ->
  seed:int ->
  Fault_type.t ->
  code:Ft_vm.Instr.t array ->
  horizon:int ->
  plan option
(** Arm a fault that recurs on replay.  Code mutations recur for free
    (the mutation lives in the code array); bit flips are re-armed
    after every restore, redrawn from [(seed, salt)] where [salt] is
    the environment perturbation the scheduler passes to its replay
    hook — identical under generic replay and deep rollback, fresh
    under a perturbed (L2) replay, so only perturbation can dodge the
    recurrence.  Claims the engine's [set_on_replay] slot.  Returns
    the initially armed plan, [None] if the program offers no site. *)
