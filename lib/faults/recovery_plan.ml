(* Nested-failure plans: which entries into which recovery stages get an
   injected crash.  Occurrence-indexed rather than time-indexed (unlike
   {!Kill_plan}) because recovery stages are rare, short and bursty — a
   wall-clock schedule would almost always miss them.  Deterministic
   given (seed, tid), like every other injector, so campaigns replay. *)

type stage = Ft_runtime.Scheduler.recovery_stage =
  | Mid_restore
  | Mid_cascade
  | Mid_round

let stages = [| Mid_restore; Mid_cascade; Mid_round |]

(* Draw a Poisson(rate) count by inversion: the number of unit-rate
   exponential gaps fitting in [rate] (same draw idiom as
   {!Kill_plan.poisson}, on an abstract horizon). *)
let poisson_count ~rate rng =
  if rate <= 0. then 0
  else begin
    let rec go at n =
      let u = Random.State.float rng 1.0 in
      let at = at +. (-.log (1. -. u)) in
      if at > rate then n else go at (n + 1)
    in
    go 0. 0
  end

let tenant ?(max_occurrence = 4) ~rate ~seed tid =
  let rng = Random.State.make [| seed; tid; 0x7ec2 |] in
  let n = poisson_count ~rate rng in
  List.init n (fun _ ->
      let stage = stages.(Random.State.int rng (Array.length stages)) in
      let occ = 1 + Random.State.int rng max_occurrence in
      (stage, occ))
