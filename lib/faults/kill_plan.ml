(* Exponential inter-arrival sampling via inversion.  This is the exact
   algorithm (and draw order) the serve harness always used, so factoring
   it here leaves every existing campaign's schedules byte-identical. *)
let poisson ~rate ~horizon_ns ~min_gap_ns rng =
  if rate <= 0. then []
  else begin
    let rec go at acc =
      let u = Random.State.float rng 1.0 in
      let gap_ns = int_of_float (-.log (1. -. u) /. rate *. 1e9) in
      let at = at + max min_gap_ns gap_ns in
      if at > horizon_ns then List.rev acc else go at (at :: acc)
    in
    go 0 []
  end

let tenant ?(pid = 0) ~crash_rate ~horizon_ns ~seed tid =
  let rng = Random.State.make [| seed; tid; 0x6b1 |] in
  poisson ~rate:crash_rate ~horizon_ns ~min_gap_ns:1_000_000 rng
  |> List.map (fun at -> (at, pid))
