(** Reliable-memory fault injection: the write-hook client that turns a
    {!Ft_stablemem.Rio} region into a crash-point torture surface.

    An injector observes every word the region persists (including each
    word of a [blit_in]), so it can crash the simulation between any two
    word writes of a commit — the exhaustive sweep the torture harness
    ({!Ft_harness.Torture}) drives — tear a bulk copy partway through,
    and flip bits in {e cold} words (those no write has touched since
    the observation window opened), modelling latent corruption that
    recovery must not depend on.

    Everything is deterministic: crashes fire at an exact write count
    and bit flips come from a seeded RNG, so any run is replayable from
    [(seed, crash point)]. *)

type t = {
  region : Ft_stablemem.Rio.t;
  mutable writes : int;        (* words observed since attach/reset *)
  mutable crash_after : int option;
  mutable sticky : bool;
  touched : (int, unit) Hashtbl.t;  (* offsets written in the window *)
}

let hook t off _v =
  (match t.crash_after with
  | Some after when t.writes >= after ->
      if not t.sticky then t.crash_after <- None;
      raise (Ft_stablemem.Rio.Crash_point t.writes)
  | _ -> ());
  t.writes <- t.writes + 1;
  Hashtbl.replace t.touched off ()

let attach region =
  let t =
    {
      region;
      writes = 0;
      crash_after = None;
      sticky = false;
      touched = Hashtbl.create 64;
    }
  in
  Ft_stablemem.Rio.set_on_write region (Some (hook t));
  t

let detach t = Ft_stablemem.Rio.set_on_write t.region None

let writes t = t.writes

let reset t =
  t.writes <- 0;
  Hashtbl.reset t.touched

let arm_crash ?(sticky = false) t ~after =
  if after < 0 then invalid_arg "Mem_injector.arm_crash: negative count";
  t.crash_after <- Some after;
  t.sticky <- sticky

let disarm t = t.crash_after <- None

let armed t = t.crash_after <> None

(* Corrupt [flips] cold words — never one the observation window saw a
   write to, so the damage models bit rot in quiescent state rather than
   a torn write.  Uses {!Ft_stablemem.Rio.poke}: corruption is not a
   write the program performed, so it must not advance the write count
   or trip an armed crash.  Returns the offsets flipped. *)
let flip_cold_bits t ~seed ~flips =
  let rng = Random.State.make [| seed |] in
  let size = Ft_stablemem.Rio.size t.region in
  let flipped = ref [] in
  let attempts = ref (flips * 16) in
  while List.length !flipped < flips && !attempts > 0 do
    decr attempts;
    let off = Random.State.int rng size in
    if (not (Hashtbl.mem t.touched off)) && not (List.mem off !flipped)
    then begin
      let bit = Random.State.int rng 30 in
      Ft_stablemem.Rio.poke t.region off
        (Ft_stablemem.Rio.read t.region off lxor (1 lsl bit));
      flipped := off :: !flipped
    end
  done;
  List.rev !flipped
