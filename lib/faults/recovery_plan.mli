(** Nested-failure plans: deterministic per-tenant schedules of crashes
    injected {e during} recovery, feeding
    {!Ft_runtime.Scheduler.config.recovery_kills}.

    Occurrence-indexed, not time-indexed: a plan entry [(stage, n)]
    crashes the recovering (or coordinating) process at the tenant's
    [n]th entry into that recovery stage, because the stages are rare
    and short — a wall-clock schedule would almost always miss them. *)

type stage = Ft_runtime.Scheduler.recovery_stage =
  | Mid_restore
  | Mid_cascade
  | Mid_round

val tenant :
  ?max_occurrence:int ->
  rate:float ->
  seed:int ->
  int ->
  (stage * int) list
(** [tenant ~rate ~seed tid] — an expected [rate] nested crashes for
    this tenant (Poisson-distributed count), each at a uniform stage and
    a uniform occurrence in [1..max_occurrence] (default 4).
    Deterministic given [(seed, tid)]; empty when [rate <= 0]. *)
