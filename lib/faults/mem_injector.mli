(** Reliable-memory fault injection through the {!Ft_stablemem.Rio}
    write hook: crash the simulation after an exact number of persisted
    word writes (tearing whatever bulk copy was in flight), or flip bits
    in cold words.  Deterministic and replayable from [(seed, point)].
    One injector per region: {!attach} claims the region's hook. *)

type t

val attach : Ft_stablemem.Rio.t -> t
(** Install the injector as the region's write hook and open an
    observation window (write count zero, no offsets touched). *)

val detach : t -> unit
(** Remove the hook; the region persists writes unobserved again. *)

val writes : t -> int
(** Word writes observed since {!attach} or the last {!reset}. *)

val reset : t -> unit
(** Restart the observation window: zero the count, forget touched
    offsets, leave any armed crash armed. *)

val arm_crash : ?sticky:bool -> t -> after:int -> unit
(** Crash ({!Ft_stablemem.Rio.Crash_point}) the next write once [after]
    words have been observed in the window: [after = 0] refuses the very
    first write, [after = k] lets exactly [k] words persist.  One-shot
    by default (the injector disarms as it fires); [sticky] keeps it
    armed, so retried recoveries keep crashing. *)

val disarm : t -> unit
val armed : t -> bool

val flip_cold_bits : t -> seed:int -> flips:int -> int list
(** Flip one random bit in up to [flips] distinct {e cold} words —
    offsets the window has seen no write to — via {!Ft_stablemem.Rio.poke}
    (no hook, no write accounting: corruption is not a program write).
    Returns the offsets flipped, fewer if cold words are scarce. *)
