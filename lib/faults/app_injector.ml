(** Application fault injection (paper §4.1).

    A fault is planned from a seeded RNG, then armed on a process running
    inside the engine.  Code mutations (destination register, deleted
    branch/instruction, lost initialization, off-by-one) change the
    program before the run; their {e activation} is the first dynamic
    execution of the mutated instruction.  Bit flips (stack, heap) are
    applied at a random dynamic instruction count; activation is the flip
    itself.  The engine records activation so {!Ft_core.Lose_work} can
    later decide whether a commit landed between activation and the
    crash, and so recovery can suppress the fault (the paper's end-to-end
    check). *)

type plan =
  | Code_mutation of { at : int; replacement : Ft_vm.Instr.t }
  | Bit_flip of {
      at_icount : int;
      target : [ `Stack | `Heap ];
      bit : int;
      loc_seed : int;  (* picks the word at flip time, among live state *)
    }

let pp_plan fmt = function
  | Code_mutation { at; replacement } ->
      Format.fprintf fmt "code[%d] := %s" at
        (Ft_vm.Instr.to_string replacement)
  | Bit_flip { at_icount; target; bit; _ } ->
      Format.fprintf fmt "flip bit %d of a %s word at icount %d" bit
        (match target with `Stack -> "stack" | `Heap -> "heap")
        at_icount

(* Candidate instruction indices for each code-mutation fault type.
   [Enter]/[Leave] are calling-convention artifacts with no source-line
   counterpart, so the "delete a random line of source" fault skips
   them. *)
let candidates (ft : Fault_type.t) code =
  let idx = ref [] in
  Array.iteri
    (fun i (ins : Ft_vm.Instr.t) ->
      let ok =
        match ft with
        | Fault_type.Destination_reg -> Ft_vm.Instr.dest_reg ins <> None
        | Fault_type.Delete_branch -> Ft_vm.Instr.is_branch ins
        | Fault_type.Off_by_one -> Ft_vm.Instr.is_cmp ins
        | Fault_type.Initialization -> (
            match ins with
            | Ft_vm.Instr.Sstore _ | Ft_vm.Instr.Store _ -> true
            | _ -> false)
        | Fault_type.Delete_instruction -> (
            match ins with
            | Ft_vm.Instr.Enter _ | Ft_vm.Instr.Leave | Ft_vm.Instr.Halt
            | Ft_vm.Instr.Ret | Ft_vm.Instr.Sigret ->
                false
            | _ -> true)
        | Fault_type.Stack_bit_flip | Fault_type.Heap_bit_flip -> false
      in
      if ok then idx := i :: !idx)
    code;
  !idx

(* Plan a fault of type [ft] against [code].  [horizon] is the expected
   dynamic instruction count of a fault-free run, used to place bit
   flips uniformly in time.  Returns [None] when the program has no
   suitable injection site. *)
let plan rng (ft : Fault_type.t) ~code ~horizon =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  match ft with
  | Fault_type.Stack_bit_flip | Fault_type.Heap_bit_flip ->
      Some
        (Bit_flip
           {
             at_icount = 1 + Random.State.int rng (max 1 horizon);
             target =
               (if ft = Fault_type.Stack_bit_flip then `Stack else `Heap);
             bit = Random.State.int rng 24;
             loc_seed = Random.State.bits rng;
           })
  | Fault_type.Destination_reg -> (
      match candidates ft code with
      | [] -> None
      | cs ->
          let at = pick cs in
          let ins = code.(at) in
          let old = Option.get (Ft_vm.Instr.dest_reg ins) in
          let rec fresh () =
            let r = Random.State.int rng Ft_vm.Instr.num_regs in
            if r = old then fresh () else r
          in
          Some
            (Code_mutation
               { at; replacement = Ft_vm.Instr.with_dest_reg ins (fresh ()) }))
  | Fault_type.Delete_branch | Fault_type.Delete_instruction
  | Fault_type.Initialization -> (
      match candidates ft code with
      | [] -> None
      | cs -> Some (Code_mutation { at = pick cs; replacement = Ft_vm.Instr.Nop }))
  | Fault_type.Off_by_one -> (
      match candidates ft code with
      | [] -> None
      | cs ->
          let at = pick cs in
          let replacement =
            match code.(at) with
            | Ft_vm.Instr.Cmp (op, d, a, b) ->
                Ft_vm.Instr.Cmp (Ft_vm.Instr.off_by_one_cmp op, d, a, b)
            | _ -> assert false
          in
          Some (Code_mutation { at; replacement }))

(* Arm a planned fault on process [pid] of a created (but not yet run)
   engine.  Uses the machine's [on_execute] hook for activation detection
   and flip scheduling; the engine's fault-suppression path clears the
   hook and restores pristine code on recovery. *)
let eval_cmp op a b =
  let r =
    match op with
    | Ft_vm.Instr.Lt -> a < b
    | Ft_vm.Instr.Le -> a <= b
    | Ft_vm.Instr.Gt -> a > b
    | Ft_vm.Instr.Ge -> a >= b
    | Ft_vm.Instr.Eq -> a = b
    | Ft_vm.Instr.Ne -> a <> b
  in
  if r then 1 else 0

let arm engine ~pid p =
  let m = Ft_runtime.Engine.machine engine pid in
  match p with
  | Code_mutation { at; replacement } ->
      let original = m.Ft_vm.Machine.code.(at) in
      m.Ft_vm.Machine.code.(at) <- replacement;
      let fired = ref false in
      (* Activation is the first execution whose outcome differs from the
         pristine instruction's: an off-by-one comparison activates only
         on inputs where the operators disagree, a deleted branch only
         when the branch would have been taken. *)
      let differs () =
        match (original, replacement) with
        | Ft_vm.Instr.Cmp (op, _, a, b), Ft_vm.Instr.Cmp (op', _, a', b')
          when a = a' && b = b' ->
            let va = m.Ft_vm.Machine.regs.(a)
            and vb = m.Ft_vm.Machine.regs.(b) in
            eval_cmp op va vb <> eval_cmp op' va vb
        | Ft_vm.Instr.Jz (r, _), Ft_vm.Instr.Nop ->
            m.Ft_vm.Machine.regs.(r) = 0
        | Ft_vm.Instr.Jnz (r, _), Ft_vm.Instr.Nop ->
            m.Ft_vm.Machine.regs.(r) <> 0
        | _ -> true
      in
      m.Ft_vm.Machine.on_execute <-
        Some
          (fun pc ->
            if pc = at && (not !fired) && differs () then begin
              fired := true;
              Ft_runtime.Engine.record_activation engine pid
            end)
  | Bit_flip { at_icount; target; bit; loc_seed } ->
      let count = ref 0 in
      m.Ft_vm.Machine.on_execute <-
        Some
          (fun _pc ->
            incr count;
            if !count = at_icount then begin
              let rng = Random.State.make [| loc_seed |] in
              (match target with
              | `Stack ->
                  let live = Ft_vm.Machine.live_stack_size m in
                  if live > 0 then begin
                    let i = Random.State.int rng live in
                    match Ft_vm.Machine.stack_slot m i with
                    | Some v ->
                        Ft_vm.Machine.set_stack_slot m i (v lxor (1 lsl bit))
                    | None -> ()
                  end
              | `Heap ->
                  let heap = Ft_vm.Machine.heap m in
                  let size = Ft_vm.Memory.size heap in
                  (* Bias towards live data — and half the time towards
                     the low region, where programs keep their metadata
                     (headers, tables, allocators): corrupting a pointer
                     or a count is what makes heap flips dangerous. *)
                  let region =
                    if Random.State.bool rng then min size 4096 else size
                  in
                  let rec hunt tries best =
                    if tries = 0 then best
                    else
                      let a = Random.State.int rng region in
                      if Ft_vm.Memory.read heap a <> 0 then a
                      else hunt (tries - 1) best
                  in
                  let a = hunt 64 (Random.State.int rng region) in
                  Ft_vm.Memory.write heap a
                    (Ft_vm.Memory.read heap a lxor (1 lsl bit)));
              Ft_runtime.Engine.record_activation engine pid
            end)

(* Arm a fault that RECURS on replay.  Code mutations already recur for
   free — the mutation lives in the code array, which recovery does not
   touch (without suppression), so every replay re-executes the bug: the
   paper's propagating / Bohrbug case.  Bit flips are one-shot as
   planned by [arm]; here they are re-armed after every restore with
   parameters drawn from (seed, salt) — the environment salt the
   scheduler passes to its replay hook.

   The plan's firing instant is ABSOLUTE in the lineage's icount
   timeline (the plan is drawn at icount 0, where [arm]'s relative
   counter coincides with absolute icount); each re-arm converts it to
   the machine's current position.  Identical salt (generic replay,
   deep rollback) therefore recurs at the same absolute point of the
   replay — the state there is identical, so the corruption and the
   crash are too: a deterministic recurrence that defeats rungs L0 and
   L1.  If the restore point is already past the firing instant, the
   recurrence bites immediately — a state-dependent bug that the
   restored state still triggers.  A perturbed (L2) replay carries a
   fresh salt: the flip is redrawn — new instant, new word, new bit —
   and when the redrawn instant already lies in the past the fault is
   dodged outright, never to fire again on this lineage: the Heisenbug
   escape.  Everything is deterministic given (seed, salt): identical
   replays stay replayable. *)
let arm_recurring engine ~pid ~seed ft ~code ~horizon =
  let plan_for salt =
    let rng = Random.State.make [| seed; salt; 0xf11b |] in
    plan rng ft ~code ~horizon
  in
  match plan_for 0 with
  | None -> None
  | Some (Code_mutation _ as p) ->
      arm engine ~pid p;
      Some p
  | Some (Bit_flip _ as p) ->
      arm engine ~pid p;
      let m = Ft_runtime.Engine.machine engine pid in
      Ft_runtime.Engine.set_on_replay engine (fun rpid ~salt ->
          if rpid = pid then
            let now = Ft_vm.Machine.icount m in
            match plan_for salt with
            | Some (Bit_flip { at_icount; target; bit; loc_seed }) ->
                if salt = 0 || at_icount > now then
                  (* Same environment: recur at the same absolute point
                     (immediately, if the restore already sits past it).
                     New environment: fire at the redrawn instant. *)
                  arm engine ~pid
                    (Bit_flip
                       {
                         at_icount = max 1 (at_icount - now);
                         target;
                         bit;
                         loc_seed;
                       })
                (* else: the redrawn instant is already behind this
                   replay — the perturbed environment dodged the fault
                   for good.  Leave the old hook; it has fired. *)
            | Some (Code_mutation _) | None -> ());
      Some p
