(** Seeded Poisson stop-failure schedules.

    One helper owns the exponential-gap sampling that the serving and
    rescue campaigns feed into [Scheduler.config.kills], so every
    harness draws kill clocks the same way: a pure function of
    (seed, tenant id), byte-stable across sharding and worker counts. *)

val poisson :
  rate:float -> horizon_ns:int -> min_gap_ns:int -> Random.State.t ->
  int list
(** Kill times (ns) with exponential gaps at [rate] events per simulated
    second, each gap floored at [min_gap_ns], out to [horizon_ns].
    Empty when [rate <= 0]. *)

val tenant :
  ?pid:int -> crash_rate:float -> horizon_ns:int -> seed:int -> int ->
  (int * int) list
(** [tenant ~crash_rate ~horizon_ns ~seed tid] is tenant [tid]'s kill
    schedule in [Scheduler.config.kills] form — [(time_ns, pid)] pairs,
    [pid] defaulting to 0 — drawn from a per-tenant stream derived from
    [(seed, tid)].  Gaps are floored at 1ms so a kill cannot land inside
    the previous recovery's reboot.  Deterministic: the identical list
    for identical arguments, whatever else has been sampled. *)
