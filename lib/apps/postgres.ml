(** postgres: a relational-database stand-in (paper §4).

    A key-value storage engine with the memory behaviour the paper's
    fault study needs from postgres: a large heap footprint (hash
    directory, chained nodes from a bump-plus-free-list allocator),
    pointer-linked structures whose corruption surfaces far from the
    corrupting store, a write-ahead log appended on every mutation (fixed
    ND file writes), and query results as visible output.

    Queries arrive on the input stream encoded as
    [op * 1_000_000 + key * 1_000 + value]:
    op 1 = INSERT, 2 = SELECT (visible result), 3 = UPDATE, 4 = DELETE,
    5 = SCAN a bucket (visible checksum).

    Chain walks are bounded and checked (§2.6 fail-fast): a corrupted
    next-pointer crashes the walk instead of looping or answering
    wrongly. *)

open Ft_vm.Asm

(* Heap layout. *)
let h_alloc = 1      (* bump allocator cursor *)
let h_free = 2       (* free-list head (0 = nil) *)
let h_nqueries = 3
let h_wal_fd = 4
let h_size = 5       (* live tuples *)
let nbuckets = 256
let buckets_base = 32
let nodes_base = buckets_base + nbuckets
let heap_words = 32_768
let wal_file = 11
let node_words = 3   (* key, value, next *)
let max_chain = 4_096

type params = {
  queries : int;
  keyspace : int;
  interval_ns : int;
  check_every : int;  (* consistency-check cadence, in queries *)
  seed : int;
}

(* Driver mode: every query additionally outputs [ack_base + n] where
   [n] is the 1-based query sequence number — a per-request response the
   serve harness timestamps for latency.  The base keeps acks disjoint
   from every organic output (SELECT results top out near 10^6, SCAN
   checksums below 1_000_003, the final size report is small). *)
let ack_base = 10_000_000

let default_params =
  { queries = 1_200; keyspace = 400; interval_ns = 1_000_000;
    check_every = 1; seed = 11 }

let small_params =
  { queries = 250; keyspace = 120; interval_ns = 1_000_000;
    check_every = 1; seed = 11 }

let program ?(check_every = 16) ?(ack = false) () =
  let fns =
    [
      func "hash" [ "k" ]
        [ Return (((Var "k" *: Int 2654435761) %: Int 1_000_000_007)
                  %: Int nbuckets) ];
      (* Allocate a node: free list first, else bump.  Crashes (Check) if
         the arena is exhausted or corrupted. *)
      func "alloc_node" []
        [
          Let ("n", Deref (Int h_free));
          If
            ( Var "n" <>: Int 0,
              [
                Set_heap (Int h_free, Deref (Var "n" +: Int 2));
                Return (Var "n");
              ],
              [] );
          Let ("a", Deref (Int h_alloc));
          Check (Var "a" >=: Int nodes_base);
          Check (Var "a" <: Int (heap_words - node_words));
          Set_heap (Int h_alloc, Var "a" +: Int node_words);
          Return (Var "a");
        ];
      (* Find node with [k] in its bucket; 0 if absent.  Bounded walk. *)
      func "find" [ "k" ]
        [
          Let ("b", Int buckets_base +: Call ("hash", [ Var "k" ]));
          Let ("n", Deref (Var "b"));
          Let ("steps", Int 0);
          Let ("res", Int 0);
          While
            ( Var "n" <>: Int 0,
              [
                Check (Var "steps" <: Int max_chain);
                If
                  ( Deref (Var "n") =: Var "k",
                    [ Set ("res", Var "n"); Break ],
                    [] );
                Set ("n", Deref (Var "n" +: Int 2));
                Set ("steps", Var "steps" +: Int 1);
              ] );
          Return (Var "res");
        ];
      func "wal" [ "tok" ]
        [ Expr (Write_file (Deref (Int h_wal_fd), Var "tok")) ];
      func "insert" [ "k"; "v"; "tok" ]
        [
          Let ("n", Call ("find", [ Var "k" ]));
          If
            ( Var "n" <>: Int 0,
              [ Set_heap (Var "n" +: Int 1, Var "v") ],
              [
                Let ("m", Call ("alloc_node", []));
                Let ("b", Int buckets_base +: Call ("hash", [ Var "k" ]));
                Set_heap (Var "m", Var "k");
                Set_heap (Var "m" +: Int 1, Var "v");
                Set_heap (Var "m" +: Int 2, Deref (Var "b"));
                Set_heap (Var "b", Var "m");
                Set_heap (Int h_size, Deref (Int h_size) +: Int 1);
              ] );
          Expr (Call ("wal", [ Var "tok" ]));
        ];
      func "select" [ "k" ]
        [
          Let ("n", Call ("find", [ Var "k" ]));
          If
            ( Var "n" <>: Int 0,
              [ Output (Var "k" *: Int 1000 +: Deref (Var "n" +: Int 1)) ],
              [ Output (Int 0 -: Var "k") ] );
        ];
      func "update" [ "k"; "v"; "tok" ]
        [
          Let ("n", Call ("find", [ Var "k" ]));
          If (Var "n" <>: Int 0,
              [ Set_heap (Var "n" +: Int 1, Var "v");
                Expr (Call ("wal", [ Var "tok" ])) ],
              []);
        ];
      func "delete" [ "k"; "tok" ]
        [
          Let ("b", Int buckets_base +: Call ("hash", [ Var "k" ]));
          Let ("n", Deref (Var "b"));
          Let ("prev", Int 0);
          Let ("steps", Int 0);
          While
            ( Var "n" <>: Int 0,
              [
                Check (Var "steps" <: Int max_chain);
                If
                  ( Deref (Var "n") =: Var "k",
                    [
                      If
                        ( Var "prev" =: Int 0,
                          [ Set_heap (Var "b", Deref (Var "n" +: Int 2)) ],
                          [ Set_heap (Var "prev" +: Int 2,
                                      Deref (Var "n" +: Int 2)) ] );
                      (* push onto the free list *)
                      Set_heap (Var "n" +: Int 2, Deref (Int h_free));
                      Set_heap (Int h_free, Var "n");
                      Set_heap (Int h_size, Deref (Int h_size) -: Int 1);
                      Expr (Call ("wal", [ Var "tok" ]));
                      Break;
                    ],
                    [] );
                Set ("prev", Var "n");
                Set ("n", Deref (Var "n" +: Int 2));
                Set ("steps", Var "steps" +: Int 1);
              ] );
        ];
      (* SCAN: checksum one bucket's chain — touches a lot of data. *)
      func "scan" [ "k" ]
        [
          Let ("b", Int buckets_base +: Call ("hash", [ Var "k" ]));
          Let ("n", Deref (Var "b"));
          Let ("sum", Int 0);
          Let ("steps", Int 0);
          While
            ( Var "n" <>: Int 0,
              [
                Check (Var "steps" <: Int max_chain);
                Set ("sum",
                     ((Var "sum" *: Int 131) +: Deref (Var "n")
                      +: Deref (Var "n" +: Int 1))
                     %: Int 1_000_003);
                Set ("n", Deref (Var "n" +: Int 2));
                Set ("steps", Var "steps" +: Int 1);
              ] );
          Output (Var "sum");
        ];
      func "sanity" []
        [
          Check (Deref (Int h_size) >=: Int 0);
          Check (Deref (Int h_alloc) >=: Int nodes_base);
          Check (Deref (Int h_alloc) <=: Int heap_words);
        ];
      func "main" []
        [
          Set_heap (Int h_alloc, Int nodes_base);
          Set_heap (Int h_wal_fd, Open_file (Int wal_file));
          Check (Deref (Int h_wal_fd) >=: Int 0);
          Let ("tok", Int 0);
          Let ("quit", Int 0);
          While
            ( Not (Var "quit"),
              [
                Set ("tok", Input);
                If
                  ( Var "tok" <: Int 0,
                    [ Set ("quit", Int 1) ],
                    [
                      Set_heap (Int h_nqueries,
                                Deref (Int h_nqueries) +: Int 1);
                      Let ("op", Var "tok" /: Int 1_000_000);
                      Let ("k", (Var "tok" /: Int 1000) %: Int 1000);
                      Let ("v", Var "tok" %: Int 1000);
                      If (Var "op" =: Int 1,
                          [ Expr (Call ("insert",
                                        [ Var "k"; Var "v"; Var "tok" ])) ],
                          []);
                      If (Var "op" =: Int 2,
                          [ Expr (Call ("select", [ Var "k" ])) ], []);
                      If (Var "op" =: Int 3,
                          [ Expr (Call ("update",
                                        [ Var "k"; Var "v"; Var "tok" ])) ],
                          []);
                      If (Var "op" =: Int 4,
                          [ Expr (Call ("delete", [ Var "k"; Var "tok" ])) ],
                          []);
                      If (Var "op" =: Int 5,
                          [ Expr (Call ("scan", [ Var "k" ])) ], []);
                      If ((Deref (Int h_nqueries) %: Int check_every)
                          =: Int 0,
                          [ Expr (Call ("sanity", [])) ], []);
                    ]
                    @ (if ack then
                         [ Output (Int ack_base +: Deref (Int h_nqueries)) ]
                       else []) );
              ] );
          Close_file (Deref (Int h_wal_fd));
          Output (Deref (Int h_size));  (* final table size report *)
        ];
    ]
  in
  Ft_vm.Asm.program fns

(* Seeded query stream: a write-heavy OLTP mix with occasional reads. *)
let input_script p =
  let rng = Random.State.make [| p.seed |] in
  List.init p.queries (fun _ ->
      let op =
        Workload.weighted rng
          [ (40, 1); (20, 2); (20, 3); (10, 4); (10, 5) ]
      in
      let k = Random.State.int rng p.keyspace in
      let v = Random.State.int rng 1000 in
      (op * 1_000_000) + (k * 1000) + v)

let workload ?(params = default_params) ?(ack = false) ?(open_loop = false) ()
    =
  let code =
    Ft_vm.Asm.compile (program ~check_every:params.check_every ~ack ())
  in
  (* Open-loop: queries arrive at fixed absolute times regardless of how
     far the server has fallen behind, so a crash shows up as latency on
     the backlog rather than shifting the whole schedule (the serving
     regime); closed-loop scripted input is the paper's interactive
     think-time model. *)
  Workload.make ~name:"postgres" ~nprocs:1 ~programs:[| code |]
    ~heap_words
    ~configure:(fun k ->
      if open_loop then
        Ft_os.Kernel.set_input_absolute k 0
          (Ft_os.Kernel.open_loop_input ~start:0
             ~interval_ns:params.interval_ns (input_script params))
      else
        Ft_os.Kernel.set_input k 0
          (Ft_os.Kernel.scripted_input ~start:0
             ~interval_ns:params.interval_ns (input_script params)))
    ()
