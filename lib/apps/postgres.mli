(** postgres: a relational-database stand-in (paper §4) — a hash-table
    storage engine with chained nodes, a free-list allocator, a
    write-ahead log, and query results as visible output. *)

type params = {
  queries : int;
  keyspace : int;
  interval_ns : int;
  check_every : int;  (** consistency-check cadence, in queries *)
  seed : int;
}

val default_params : params
val small_params : params

val heap_words : int
val wal_file : int
val nbuckets : int

val ack_base : int
(** Driver-mode ack outputs are [ack_base + n] for the 1-based query
    sequence number [n]; disjoint from every organic output value. *)

val program : ?check_every:int -> ?ack:bool -> unit -> Ft_vm.Asm.program
(** [ack] turns on driver mode: every query additionally outputs its
    sequence-numbered acknowledgement — the per-request response the
    serve harness timestamps for latency. *)

val input_script : params -> int list
(** Query tokens: [op * 1_000_000 + key * 1_000 + value]; op 1 INSERT,
    2 SELECT, 3 UPDATE, 4 DELETE, 5 SCAN. *)

val workload :
  ?params:params -> ?ack:bool -> ?open_loop:bool -> unit -> Workload.t
(** [open_loop] switches the query stream from think-time scripted input
    to fixed absolute arrival times ({!Ft_os.Kernel.set_input_absolute}),
    so backlog after a crash appears as request latency instead of
    shifting the schedule. *)
