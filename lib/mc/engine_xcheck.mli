(** Model-checker cross-validation against the real runtime.

    The abstract checker ({!Checker}) explores the protocol space over
    an abstract executor; this module closes the loop by driving the
    {e real} engine — VM machines, kernel, checkpointer, rollback and
    replay — through an enumerated space of schedules (via the engine's
    [pick_override] hook) and crash points (via [kill_at_decision]),
    checking the same three end-to-end properties on every run: the run
    completes, the Save-work invariant holds on its trace, and its
    visible output is consistent with the kill-free reference.

    The driver program is a value-deterministic two-process ping-pong
    (all non-determinism is in message receives, which the protocols
    log or commit), so the kill-free run is the unique failure-free
    lineage and output consistency is exact. *)

type stats = {
  x_runs : int;  (** engine executions performed *)
  x_kills : int;  (** executions that actually injected a stop failure *)
  x_failures : string list;  (** one line per failed check *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val ping_pong : rounds:int -> Ft_vm.Instr.t array array
(** The driver: p0 mixes an accumulator, sends it to p1, adds p1's
    reply and prints; p1 doubles-and-offsets each request.  Only p0
    emits visible output, so the visible order is schedule-independent. *)

val check :
  ?rounds:int ->
  ?sched_depth:int ->
  ?kill_decisions:int ->
  spec:Ft_core.Protocol.spec ->
  unit ->
  stats
(** Every schedule-override string of length [sched_depth] (default 4)
    over both pids, each run kill-free and with one stop failure at
    every scheduling decision [0, kill_decisions) (default 10) for each
    victim. *)

val jobs :
  ?rounds:int ->
  ?sched_depth:int ->
  ?kill_decisions:int ->
  specs:Ft_core.Protocol.spec list ->
  unit ->
  Ft_exp.Job.t list
(** One resumable job per protocol. *)

val stats_of_value : Ft_exp.Jstore.value -> stats option
