(* Greedy counterexample minimization: repeatedly apply the cheapest
   simplification that keeps a violation of the same oracle alive, until
   none applies.  Everything is re-checked through the real executor
   ([Checker.check_one]), so the result is a true repro by construction. *)

open Ft_core

type result = {
  s_prefix : int list;
  s_crash : Model.crash;
  s_program : Model.program;
  s_oracle : Checker.oracle;
  s_detail : string;
  s_attempts : int;
}

let copy_program p = Array.map Array.copy p

(* Drop element [i] of a list. *)
let drop_nth i l = List.filteri (fun j _ -> j <> i) l

let take n l = List.filteri (fun j _ -> j < n) l

let minimize ?(lose_work = true) ~spec ~defect ~program
    (v : Checker.violation) =
  let target = v.Checker.v_oracle in
  let attempts = ref 0 in
  let refails prefix crash prog =
    incr attempts;
    List.exists
      (fun (x : Checker.violation) -> x.Checker.v_oracle = target)
      (Checker.check_one ~lose_work ~spec ~defect ~program:prog ~prefix ~crash
         ())
  in
  if not (refails v.Checker.v_prefix v.Checker.v_crash program) then
    (* does not reproduce under this configuration: return unshrunk *)
    {
      s_prefix = v.Checker.v_prefix;
      s_crash = v.Checker.v_crash;
      s_program = program;
      s_oracle = target;
      s_detail = v.Checker.v_detail;
      s_attempts = !attempts;
    }
  else begin
    let prefix = ref v.Checker.v_prefix in
    let crash = ref v.Checker.v_crash in
    let prog = ref (copy_program program) in
    let improved = ref true in
    while !improved do
      improved := false;
      (* 1. simplify the crash: no crash at all beats a stop, a stop
         beats a mid-commit, and smaller victim pids are simpler *)
      let crash_candidates =
        match !crash with
        | Model.No_crash -> []
        | Model.Stop v -> Model.No_crash :: List.init v (fun i -> Model.Stop i)
        | Model.Mid_commit _ ->
            Model.No_crash
            :: List.init (Array.length !prog) (fun i -> Model.Stop i)
        | Model.Lose _ -> [ Model.No_crash ]
        | Model.Nested { victim = v; _ } ->
            (* a plain stop of the same victim beats a nested crash *)
            Model.No_crash :: Model.Stop v
            :: List.init v (fun i -> Model.Stop i)
      in
      (match
         List.find_opt (fun c -> refails !prefix c !prog) crash_candidates
       with
      | Some c ->
          crash := c;
          improved := true
      | None -> ());
      (* 2. truncate the schedule: shortest failing prefix of the
         current one (a single check per length, shortest first) *)
      let n = List.length !prefix in
      (let len = ref 0 in
       let found = ref false in
       while (not !found) && !len < n do
         let cand = take !len !prefix in
         if refails cand !crash !prog then begin
           prefix := cand;
           found := true;
           improved := true
         end
         else incr len
       done);
      (* 3. drop any single interior step *)
      (let i = ref 0 in
       while !i < List.length !prefix do
         let cand = drop_nth !i !prefix in
         if refails cand !crash !prog then begin
           prefix := cand;
           improved := true
           (* same index now names the next step; do not advance *)
         end
         else incr i
       done);
      (* 4. weaken program operations to [Internal] *)
      Array.iteri
        (fun p ops ->
          Array.iteri
            (fun pc op ->
              if op <> Model.Internal then begin
                let cand = copy_program !prog in
                cand.(p).(pc) <- Model.Internal;
                if refails !prefix !crash cand then begin
                  prog := cand;
                  improved := true
                end
              end)
            ops)
        !prog
    done;
    let detail =
      match
        List.find_opt
          (fun (x : Checker.violation) -> x.Checker.v_oracle = target)
          (Checker.check_one ~lose_work ~spec ~defect ~program:!prog
             ~prefix:!prefix ~crash:!crash ())
      with
      | Some x -> x.Checker.v_detail
      | None -> v.Checker.v_detail (* unreachable: the loop invariant *)
    in
    {
      s_prefix = !prefix;
      s_crash = !crash;
      s_program = !prog;
      s_oracle = target;
      s_detail = detail;
      s_attempts = !attempts;
    }
  end

let to_script ~spec (r : result) =
  (* In a locally-minimal prefix every step makes progress (a blocked
     no-op step would have been dropped by pass 3), so the unconditional
     pc advance of [prefix_to_steps] matches the executor's. *)
  let steps = Model.prefix_to_steps r.s_program r.s_prefix in
  let crash_line =
    match r.s_crash with
    | Model.No_crash -> "# crash: none (violation on the crash-free prefix)"
    | Model.Stop v -> Printf.sprintf "# crash: stop p%d after the last step" v
    | Model.Mid_commit { landed } ->
        Printf.sprintf "# crash: mid-commit in the last step (commit %s)"
          (if landed then "landed" else "lost")
    | Model.Lose { src; dst; seq } ->
        Printf.sprintf
          "# fault: network drops message %d->%d seq %d after the last step"
          src dst seq
    | Model.Nested { victim; stage } ->
        Printf.sprintf
          "# crash: stop p%d after the last step, then again %s" victim
          (match stage with
          | Model.NRestore -> "mid-restore"
          | Model.NCascade -> "mid-cascade")
  in
  String.concat "\n"
    [
      Printf.sprintf "# protocol: %s" spec.Protocol.spec_name;
      Printf.sprintf "# oracle: %s" (Checker.oracle_to_string r.s_oracle);
      crash_line;
      Printf.sprintf "# detail: %s" r.s_detail;
      Conformance.steps_to_string steps;
    ]
