(** Counterexample minimization.

    Given a violation found by the checker, greedily shrinks the
    (schedule, crash, program) triple to a locally-minimal failing
    repro: no single step can be dropped from the schedule, the crash
    cannot be simplified further, and no remaining program operation can
    be weakened to [Internal] — all while a violation of the {e same
    oracle} persists.  The result pretty-prints as a replayable
    {!Ft_core.Conformance} script. *)

type result = {
  s_prefix : int list;  (** minimized schedule *)
  s_crash : Model.crash;  (** minimized crash *)
  s_program : Model.program;  (** minimized program (ops weakened) *)
  s_oracle : Checker.oracle;
  s_detail : string;  (** the surviving violation's detail line *)
  s_attempts : int;  (** candidate executions evaluated while shrinking *)
}

val minimize :
  ?lose_work:bool ->
  spec:Ft_core.Protocol.spec ->
  defect:Model.defect ->
  program:Model.program ->
  Checker.violation ->
  result
(** Shrink to a local minimum.  The violation must actually reproduce
    under [check_one] with the given configuration (every violation
    reported by {!Checker.check} does); otherwise the original is
    returned unshrunk. *)

val to_script : spec:Ft_core.Protocol.spec -> result -> string
(** The minimized counterexample as a replayable conformance script:
    comment lines identifying protocol, oracle, crash and detail,
    followed by one {!Ft_core.Conformance.step} per line (parseable by
    [Conformance.steps_of_string]). *)
