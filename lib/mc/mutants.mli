(** Deliberately broken protocol/runtime variants the checker must kill.
    A mutant that survives the default bound means the checker has a
    blind spot — the test suite treats a surviving mutant as a failing
    build. *)

type t = {
  mutant_name : string;
  spec : Ft_core.Protocol.spec;  (** possibly a spec-level mutation *)
  defect : Model.defect;  (** possibly a runtime-level defect *)
  based_on : string;  (** the honest protocol this mutates *)
  expected : string;  (** one line: why and how it should die *)
  program : Model.program option;
      (** a hand-built program when the kill needs a shape the default
          menus cannot express (e.g. the 3-process causal chain of
          resume-cascade-from-scratch); [None] = the default program at
          the caller's bound *)
}

val all : t list
(** At least six: skip-orphan-commit, commit-after-visible,
    drop-log-entry, publish-before-log, budget-never-reset,
    never-retransmit — plus the nested-failure pair
    resume-cascade-from-scratch and gc-live-determinant. *)

val by_name : string -> t option
