(* Cross-validate the abstract checker's verdicts against the real
   runtime: same properties, real machinery (VM, kernel, checkpointer,
   rollback, replay), over an enumerated schedule × crash-point space
   reached through the engine's deterministic scheduling hooks. *)

open Ft_core
open Ft_vm.Instr

type stats = {
  x_runs : int;
  x_kills : int;
  x_failures : string list;
}

let zero_stats = { x_runs = 0; x_kills = 0; x_failures = [] }

let add_stats a b =
  {
    x_runs = a.x_runs + b.x_runs;
    x_kills = a.x_kills + b.x_kills;
    x_failures = a.x_failures @ b.x_failures;
  }

(* p0, per round i:  v <- v*3 + i; send v to p1; v <- v + reply;
   print v.  p1, per round: x <- recv; reply 2x + 5.  Unrolled: no
   loops to go wrong, every syscall a scheduling decision. *)
let ping_pong ~rounds =
  let p0 =
    [ Const (2, 7) ]
    @ List.concat
        (List.init rounds (fun i ->
             [
               Const (4, 3);
               Bin (Mul, 2, 2, 4);
               Const (4, i + 1);
               Bin (Add, 2, 2, 4);
               Const (0, 1);
               Mov (1, 2);
               Sys Ft_vm.Syscall.Send;
               Sys Ft_vm.Syscall.Recv;
               Bin (Add, 2, 2, 0);
               Mov (0, 2);
               Sys Ft_vm.Syscall.Write_output;
             ]))
    (* a final "done" message keeps p1 alive (blocked receiving) until
       after p0's last visible: a halted process is correctly left out
       of 2PC commit rounds, which would orphan its last receive *)
    @ [ Const (0, 1); Const (1, 999); Sys Ft_vm.Syscall.Send; Halt ]
  in
  let p1 =
    List.concat
      (List.init rounds (fun _ ->
           [
             Sys Ft_vm.Syscall.Recv;
             Const (4, 2);
             Bin (Mul, 2, 0, 4);
             Const (4, 5);
             Bin (Add, 2, 2, 4);
             Const (0, 0);
             Mov (1, 2);
             Sys Ft_vm.Syscall.Send;
           ]))
    @ [ Sys Ft_vm.Syscall.Recv; Halt ]
  in
  [| Array.of_list p0; Array.of_list p1 |]

let schedules ~nprocs ~depth =
  let rec go d =
    if d = 0 then [ [] ]
    else
      List.concat_map
        (fun s -> List.init nprocs (fun p -> s @ [ p ]))
        (go (d - 1))
  in
  go depth

let run_one ?(recovery_kills = []) ~spec ~programs ~sched ~kill () =
  let kernel = Ft_os.Kernel.create ~seed:42 ~nprocs:2 () in
  let sched = Array.of_list sched in
  let decision = ref 0 in
  let cfg =
    {
      Ft_runtime.Engine.default_config with
      protocol = spec;
      heap_words = 1_024;
      stack_words = 256;
      kill_at_decision = (match kill with None -> [] | Some k -> [ k ]);
      recovery_kills;
      pick_override =
        Some
          (fun candidates ->
            let d = !decision in
            incr decision;
            if d < Array.length sched && List.mem sched.(d) candidates then
              Some sched.(d)
            else None);
    }
  in
  snd (Ft_runtime.Engine.execute ~cfg ~kernel ~programs ())

let check ?(rounds = 2) ?(sched_depth = 4) ?(kill_decisions = 10) ~spec () =
  let programs = ping_pong ~rounds in
  let runs = ref 0 and kills = ref 0 and failures = ref [] in
  let fail sched kill what =
    let k =
      match kill with
      | None -> "none"
      | Some (d, pid) -> Printf.sprintf "d%d:p%d" d pid
    in
    failures :=
      Printf.sprintf "%s sched=%s kill=%s: %s" spec.Protocol.spec_name
        (String.concat "" (List.map string_of_int sched))
        k what
      :: !failures
  in
  let stages =
    [|
      Ft_runtime.Scheduler.Mid_restore; Ft_runtime.Scheduler.Mid_cascade;
      Ft_runtime.Scheduler.Mid_round;
    |]
  in
  List.iter
    (fun sched ->
      let reference = run_one ~spec ~programs ~sched ~kill:None () in
      incr runs;
      if reference.Ft_runtime.Engine.outcome <> Ft_runtime.Engine.Completed
      then fail sched None "kill-free run did not complete"
      else begin
        if not (Save_work.holds reference.Ft_runtime.Engine.trace) then
          fail sched None "save-work violated on the kill-free trace";
        let ref_visible = reference.Ft_runtime.Engine.visible in
        for d = 0 to kill_decisions - 1 do
          for victim = 0 to 1 do
            let kill = Some (d, victim) in
            let judge tag (r : Ft_runtime.Engine.result) =
              incr runs;
              if r.Ft_runtime.Engine.crashes > 0 then incr kills;
              if r.Ft_runtime.Engine.outcome <> Ft_runtime.Engine.Completed
              then fail sched kill (tag ^ "did not complete after recovery")
              else begin
                if not (Save_work.holds r.Ft_runtime.Engine.trace) then
                  fail sched kill (tag ^ "save-work violated");
                if
                  not
                    (Consistency.is_consistent ~reference:ref_visible
                       ~observed:r.Ft_runtime.Engine.visible)
                then
                  fail sched kill
                    (tag ^ "visible output inconsistent with reference")
              end
            in
            judge "" (run_one ~spec ~programs ~sched ~kill ());
            (* nested failure on the real engine: the same kill, plus a
               crash injected into the first entry of a recovery stage
               (cycled so the space covers all three stages).  Recovery
               must still converge to the same visible output. *)
            let stage = stages.((d + victim) mod Array.length stages) in
            judge "nested: "
              (run_one ~recovery_kills:[ (stage, 1) ] ~spec ~programs ~sched
                 ~kill ())
          done
        done
      end)
    (schedules ~nprocs:2 ~depth:sched_depth);
  { x_runs = !runs; x_kills = !kills; x_failures = List.rev !failures }

(* ---- Exp fan-out -------------------------------------------------------- *)

open Ft_exp

let stats_to_value s =
  Jstore.Obj
    [
      ("runs", Jstore.Int s.x_runs);
      ("kills", Jstore.Int s.x_kills);
      ( "failures",
        Jstore.List (List.map (fun f -> Jstore.String f) s.x_failures) );
    ]

let stats_of_value v =
  match Jstore.member "runs" v with
  | None -> None
  | Some _ ->
      let failures =
        match Jstore.member "failures" v with
        | Some (Jstore.List l) ->
            List.filter_map
              (function Jstore.String s -> Some s | _ -> None)
              l
        | _ -> []
      in
      Some
        {
          x_runs = Jstore.get_int "runs" v;
          x_kills = Jstore.get_int "kills" v;
          x_failures = failures;
        }

let jobs ?(rounds = 2) ?(sched_depth = 4) ?(kill_decisions = 10) ~specs () =
  List.map
    (fun spec ->
      let key =
        (* mcx2: the nested-injection variants doubled the run set *)
        Printf.sprintf "mcx2/%s/r%ds%dk%d" spec.Protocol.spec_name rounds
          sched_depth kill_decisions
      in
      Job.make ~key ~seed:0 (fun () ->
          stats_to_value
            (check ~rounds ~sched_depth ~kill_decisions ~spec ())))
    specs
