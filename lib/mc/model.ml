(* The bounded model checker's execution model: a small multi-process
   program over the abstract event alphabet, executed one schedule at a
   time under a protocol, with a single injected crash (between steps or
   inside a commit), honest rollback recovery, and a canonical
   completion.

   Non-deterministic results are modeled as {e lineage hashes}: every
   draw mixes into a per-process accumulator, message payloads carry the
   sender's accumulator, and visible values digest the emitter's
   accumulator — so a lost-and-redrawn result that reaches output after
   recovery produces a value no failure-free execution can produce, and
   {!Ft_core.Consistency.check} detects it. *)

open Ft_core

type op =
  | Internal
  | Nd of Event.nd_class * bool
  | Visible
  | Send of int
  | Receive

type program = op array array

let op_to_string = function
  | Internal -> "internal"
  | Nd (Event.Transient, l) -> if l then "nd-t-log" else "nd-t"
  | Nd (Event.Fixed, l) -> if l then "nd-f-log" else "nd-f"
  | Visible -> "visible"
  | Send d -> Printf.sprintf "send->%d" d
  | Receive -> "recv"

(* Menus chosen so that ND events sit just ahead of visibles and sends
   (the Save-work danger patterns), with traffic in both directions.
   Deliberate patterns: an unlogged transient ND directly before a
   visible (forces the commit-before-visible protocols to actually
   commit there), and a loggable transient ND before a visible (whose
   replay is only safe if the log entry survives — the drop-log mutant's
   kill site). *)
let menu_even =
  [|
    Nd (Event.Transient, false); Send 0; Visible; Receive;
    Nd (Event.Transient, true); Visible; Nd (Event.Fixed, false); Send 0;
    Receive; Visible; Internal; Send 0;
  |]

let menu_odd =
  [|
    Receive; Nd (Event.Transient, false); Visible; Send 0;
    Nd (Event.Transient, true); Visible; Receive; Nd (Event.Fixed, false);
    Send 0; Visible; Internal; Send 0;
  |]

let default_program ~nprocs ~depth =
  Array.init nprocs (fun p ->
      let menu = if p mod 2 = 0 then menu_even else menu_odd in
      Array.init depth (fun i ->
          match menu.(i mod Array.length menu) with
          | Send _ -> Send ((p + 1) mod nprocs)
          | o -> o))

let program_digest prog =
  Digest.to_hex (Digest.string (Marshal.to_string prog []))

type defect =
  | Honest
  | Skip_orphan
  | Drop_log
  | Publish_first
  | No_retransmit
  | Drop_dv
  | No_orphan_kill
  | Resume_from_scratch
  | Gc_live_determinant

type nstage = NRestore | NCascade

type crash =
  | No_crash
  | Stop of int
  | Mid_commit of { landed : bool }
  | Lose of { src : int; dst : int; seq : int }
  | Nested of { victim : int; stage : nstage }

type run = {
  trace : Trace.t;
  prefix_trace : Trace.t;
  observed : int list;
  reference : int list;
  commit_pcs : (int * int) list;
  crash_pc : (int * int) option;
  last_step_committed : bool;
  bindings : ((int * int) * (int * int) option) list;
  prefix_bindings : ((int * int) * (int * int) option) list;
  pending : (int * int * int) list;
  logged_pcs : (int * int) list;
  next_pids : int list;
  steps : int;
  state_key : string;
}

(* ---- deterministic value model ----------------------------------------- *)

let mix a b = ((a * 1000003) lxor b) land 0x3FFFFFFF
let seed0 = 0x2545f
let h3 tag a b = mix (mix (mix seed0 tag) a) b
let h4 tag a b c = mix (h3 tag a b) c
let acc0 pid = mix seed0 (pid + 1)
let draw_transient ~pid ~pc ~gen = h4 1 pid pc gen
let draw_fixed ~pid ~pc = h3 2 pid pc
let payload_of ~pid ~pc ~acc = h4 3 pid pc acc
let visible_of ~pid ~pc ~acc = h4 5 pid pc acc

(* ---- machine state ------------------------------------------------------ *)

(* What the recovery system replays from its log: an ND result, or a
   receive binding (message identity and content). *)
type log_entry =
  | Lnd of int
  | Lrecv of { src : int; seq : int; payload : int; tag : int }

type snapshot = {
  s_pc : int;  (* resume point *)
  s_acc : int;
  s_cursor : int array;  (* per source *)
  s_sent : int array;  (* per destination *)
  s_dv : int array;  (* dependency vector at the commit *)
  s_stable : int array;  (* confirmed-stable marks at the commit *)
}

type st = {
  prog : program;
  nprocs : int;
  mutable style : Protocol.style;
  pcs : int array;
  accs : int array;
  gens : int array array;  (* executions of (pid, pc), for redraws *)
  cursor : int array array;  (* cursor.(dst).(src): consumed count *)
  sent : int array array;  (* sent.(src).(dst): sent count *)
  dvs : int array array;  (* dvs.(pid): live dependency vector *)
  stable : int array array;
      (* stable.(pid).(q): how much of q's own non-determinism pid has
         CONFIRMED stable, via a dependent-commit round's ack — local
         knowledge, never an omniscient read of q's commit state.  Rolls
         back with pid (the confirming ack may be un-received). *)
  mail : (int * int * int, int * int * int list * int list) Hashtbl.t;
      (* (src, dst, seq) -> payload, tag, send vclock, sender dv *)
  snaps : snapshot array;
  since : string list array;  (* event descriptors since last commit *)
  draws : (int * int, int) Hashtbl.t;  (* surviving ND result at (pid, pc) *)
  log : (int * int, log_entry) Hashtbl.t;
  recv_bind : (int * int, (int * int * int) option) Hashtbl.t;
      (* surviving receive binding: (src, seq, payload), None = skipped *)
  first_stamp : (int * int, int) Hashtbl.t;
  mutable now : int;
  mutable next_tag : int;
  mutable ack_tag : int;
  mutable round : int;
  mutable observed_rev : int list;
  mutable commit_pcs_rev : (int * int) list;
  mutable steps : int;
  mutable committed_this_step : bool;
  trace : Trace.t;
  mutable mirror : Trace.t option;  (* prefix trace, dropped at the crash *)
}

let record st ~pid ?(logged = false) kind =
  let e = Trace.record st.trace ~pid ~logged kind in
  (match st.mirror with
  | Some m -> ignore (Trace.record m ~pid ~logged kind)
  | None -> ());
  e

let snapshot st pid =
  st.snaps.(pid) <-
    {
      s_pc = st.pcs.(pid);
      s_acc = st.accs.(pid);
      s_cursor = Array.copy st.cursor.(pid);
      s_sent = Array.copy st.sent.(pid);
      s_dv = Array.copy st.dvs.(pid);
      s_stable = Array.copy st.stable.(pid);
    };
  st.since.(pid) <- []

(* The process's own dependency-vector component as of its last commit —
   the taint baseline: dv entries above this record non-determinism that
   no durable state covers. *)
let committed_own st q =
  let s = st.snaps.(q) in
  if Array.length s.s_dv > 0 then s.s_dv.(q) else 0

(* ---- commits ------------------------------------------------------------ *)

exception Crashed_mid_commit

type commit_trap = { landed : bool; mutable fired : bool }

let commit_one st proto ~pid kind =
  ignore (record st ~pid kind);
  st.commit_pcs_rev <- (pid, st.pcs.(pid)) :: st.commit_pcs_rev;
  snapshot st pid;
  proto.Protocol.note_commit ~pid

(* The processes a dependent commit at [pid] must pull in: everyone
   whose non-determinism the coordinator's state (or a participant's)
   transitively depends on beyond what the depending process has
   CONFIRMED stable.  Each hop uses the depending process's own
   [stable] marks — never an omniscient read of the dependency's commit
   state: a dependency may well have committed already, but until an
   acknowledged round tells this process so, it must be contacted, and
   that exchange is what puts the covering commit in the output's
   causal past.  The closure matters — a participant's snapshot carries
   taint the coordinator never saw directly, and its sources must
   commit atomically with it or the commit manufactures an orphan. *)
let dependent_set st ~pid =
  let in_set = Array.make st.nprocs false in
  let rec close p =
    for q = 0 to st.nprocs - 1 do
      if q <> pid && (not in_set.(q)) && st.dvs.(p).(q) > st.stable.(p).(q)
      then begin
        in_set.(q) <- true;
        close q
      end
    done
  in
  close pid;
  in_set

(* A dependent commit with no remote dependencies and no local taint is
   a no-op: the logging protocols commit nothing at an output whose
   lineage is already covered. *)
let dependent_noop st ~pid =
  (not (Array.exists (fun b -> b) (dependent_set st ~pid)))
  && st.dvs.(pid).(pid) <= committed_own st pid

(* Two-phase commit, mirroring Conformance: participants commit and
   acknowledge first, the coordinator commits last, all commits of the
   round atomic with each other.  [Skip_orphan] drops the participant
   side entirely — only the coordinator's commit happens.  [Dependent]
   is the logging protocols' demand-driven variant: only the dependency
   closure commits (one shared round), or just the coordinator when the
   taint is purely local. *)
(* [Gc_live_determinant]: the broken determinant GC treats "executed"
   as "retired" — any commit anywhere drops every log entry below its
   owner's *current* pc, including entries the owner's committed
   snapshot does not cover yet.  The honest engine retires an entry only
   once the owner's commit watermark has passed it (and its dependents
   have committed), so a replay can never miss one. *)
let gc_live st =
  let doomed =
    Hashtbl.fold
      (fun (q, pc) _ acc -> if pc < st.pcs.(q) then (q, pc) :: acc else acc)
      st.log []
  in
  List.iter (Hashtbl.remove st.log) doomed

let commit_scope st proto ~defect ~pid scope =
  (match scope with
  | Protocol.Local -> commit_one st proto ~pid Event.Commit
  | Protocol.Global ->
      let r = st.round in
      st.round <- r + 1;
      for q = 0 to st.nprocs - 1 do
        if q <> pid && defect <> Skip_orphan then begin
          commit_one st proto ~pid:q (Event.Commit_round r);
          let tag = st.ack_tag in
          st.ack_tag <- tag - 1;
          ignore (record st ~pid:q (Event.Send { dest = pid; tag }));
          ignore
            (record st ~pid ~logged:true (Event.Receive { src = q; tag }))
        end
      done;
      commit_one st proto ~pid (Event.Commit_round r)
  | Protocol.Dependent ->
      let in_set = dependent_set st ~pid in
      if Array.exists (fun b -> b) in_set then begin
        let r = st.round in
        st.round <- r + 1;
        for q = 0 to st.nprocs - 1 do
          if in_set.(q) then begin
            commit_one st proto ~pid:q (Event.Commit_round r);
            let tag = st.ack_tag in
            st.ack_tag <- tag - 1;
            ignore (record st ~pid:q (Event.Send { dest = pid; tag }));
            ignore
              (record st ~pid ~logged:true (Event.Receive { src = q; tag }));
            (* the ack confirms everything of q's own ND to date is now
               durable; the coordinator's next commit snapshots this
               knowledge, so q is not re-contacted for old taint *)
            st.stable.(pid).(q) <- st.dvs.(q).(q)
          end
        done;
        (* the coordinator always closes the round, tainted or not: its
           commit is what makes the round reach the output *)
        commit_one st proto ~pid (Event.Commit_round r)
      end
      else if st.dvs.(pid).(pid) > committed_own st pid then
        commit_one st proto ~pid Event.Commit);
  if defect = Gc_live_determinant then gc_live st

let do_commit st proto ~defect ~trap ~pid = function
  | None -> ()
  | Some Protocol.Dependent when dependent_noop st ~pid ->
      (* nothing would land: no commit happened this step, and there is
         no commit for a mid-commit crash to interrupt *)
      ()
  | Some scope -> (
      st.committed_this_step <- true;
      match trap with
      | Some t when not t.fired ->
          t.fired <- true;
          (* Vista atomicity: the whole commit (the whole coordinated
             round) lands, or none of it does; either way the process
             crashes before anything else in this step. *)
          if t.landed then commit_scope st proto ~defect ~pid scope;
          raise Crashed_mid_commit
      | _ -> commit_scope st proto ~defect ~pid scope)

(* ---- one step ----------------------------------------------------------- *)

let desc_since st pid d = st.since.(pid) <- d :: st.since.(pid)

(* Record the position of (pid, pc) in the reference order the first
   time its effect actually happens — not when a step merely starts, or
   a mid-commit crash would give a never-executed event a position. *)
let stamp st pid pc =
  let s = st.now in
  st.now <- s + 1;
  if not (Hashtbl.mem st.first_stamp (pid, pc)) then
    Hashtbl.replace st.first_stamp (pid, pc) s

let receive_binding st pid pc =
  match Hashtbl.find_opt st.log (pid, pc) with
  | Some (Lrecv { src; seq; payload; tag }) -> Some (src, seq, payload, tag)
  | _ ->
      let rec scan src =
        if src >= st.nprocs then None
        else if st.sent.(src).(pid) > st.cursor.(pid).(src) then
          let seq = st.cursor.(pid).(src) in
          match Hashtbl.find_opt st.mail (src, pid, seq) with
          | Some (payload, tag, _, _) -> Some (src, seq, payload, tag)
          | None -> scan (src + 1)
        else scan (src + 1)
      in
      scan 0

(* A process is blocked when its next operation is a receive with no
   undelivered message and no log entry to replay: receives wait, they
   do not silently happen.  They resolve to a skip only at quiescence,
   when no message can ever arrive — which makes the skip/bind choice a
   deterministic function of the message counts, not of the schedule. *)
let blocked st pid =
  let pc = st.pcs.(pid) in
  pc < Array.length st.prog.(pid)
  && st.prog.(pid).(pc) = Receive
  && receive_binding st pid pc = None

(* Returns [true] when the process made progress.  [force_skip] resolves
   a blocked receive as "nothing will ever arrive": pc advances with no
   message consumed. *)
let exec_step st proto ~defect ~trap ?(force_skip = false) pid =
  let pc = st.pcs.(pid) in
  if pc >= Array.length st.prog.(pid) then false
  else begin
    match st.prog.(pid).(pc) with
    | Receive -> (
        match receive_binding st pid pc with
        | None when not force_skip -> false (* blocked: wait *)
        | None ->
            st.steps <- st.steps + 1;
            stamp st pid pc;
            Hashtbl.replace st.recv_bind (pid, pc) None;
            st.pcs.(pid) <- pc + 1;
            true
        | Some (src, seq, payload, tag) ->
            st.steps <- st.steps + 1;
            let info =
              { Protocol.kind = Event.Receive { src; tag }; loggable = true }
            in
            let reaction = proto.Protocol.react ~pid info in
            do_commit st proto ~defect ~trap ~pid
              reaction.Protocol.commit_before;
            stamp st pid pc;
            let logged = reaction.Protocol.log in
            ignore (record st ~pid ~logged (Event.Receive { src; tag }));
            st.cursor.(pid).(src) <- max st.cursor.(pid).(src) (seq + 1);
            st.accs.(pid) <- mix st.accs.(pid) payload;
            (* piggybacked dependency vector: the receiver's state now
               depends on everything the sender's did at send time *)
            (match Hashtbl.find_opt st.mail (src, pid, seq) with
            | Some (_, _, _, dv) when defect <> Drop_dv ->
                List.iteri
                  (fun q x ->
                    if x > st.dvs.(pid).(q) then st.dvs.(pid).(q) <- x)
                  dv
            | _ -> ());
            if Protocol.taints st.style ~logged (Event.Receive { src; tag })
            then st.dvs.(pid).(pid) <- st.dvs.(pid).(pid) + 1;
            Hashtbl.replace st.recv_bind (pid, pc) (Some (src, seq, payload));
            if logged && defect <> Drop_log
               && not (Hashtbl.mem st.log (pid, pc))
            then Hashtbl.replace st.log (pid, pc) (Lrecv { src; seq; payload; tag });
            desc_since st pid (Printf.sprintf "r%d<%d.%d:%b" pc src seq logged);
            st.pcs.(pid) <- pc + 1;
            do_commit st proto ~defect ~trap ~pid reaction.Protocol.commit_after;
            true)
    | op ->
        let info, value =
          match op with
          | Internal -> ({ Protocol.kind = Event.Internal; loggable = false }, 0)
          | Nd (c, lg) ->
              let v =
                match Hashtbl.find_opt st.log (pid, pc) with
                | Some (Lnd v) -> v
                | _ -> (
                    match c with
                    | Event.Transient ->
                        draw_transient ~pid ~pc ~gen:st.gens.(pid).(pc)
                    | Event.Fixed -> draw_fixed ~pid ~pc)
              in
              ({ Protocol.kind = Event.Nd c; loggable = lg }, v)
          | Visible ->
              let v = visible_of ~pid ~pc ~acc:st.accs.(pid) in
              ({ Protocol.kind = Event.Visible v; loggable = false }, v)
          | Send d ->
              let p = payload_of ~pid ~pc ~acc:st.accs.(pid) in
              ({ Protocol.kind = Event.Send { dest = d; tag = -1 };
                 loggable = false },
               p)
          | Receive -> assert false
        in
        st.steps <- st.steps + 1;
        let reaction = proto.Protocol.react ~pid info in
        let do_event () =
          stamp st pid pc;
          match op with
          | Internal -> ()
          | Nd (c, lg) ->
              st.gens.(pid).(pc) <- st.gens.(pid).(pc) + 1;
              Hashtbl.replace st.draws (pid, pc) value;
              st.accs.(pid) <- mix st.accs.(pid) value;
              let logged = reaction.Protocol.log && lg in
              if Protocol.taints st.style ~logged (Event.Nd c) then
                st.dvs.(pid).(pid) <- st.dvs.(pid).(pid) + 1;
              ignore (record st ~pid ~logged (Event.Nd c));
              if logged && defect <> Drop_log
                 && not (Hashtbl.mem st.log (pid, pc))
              then Hashtbl.replace st.log (pid, pc) (Lnd value);
              desc_since st pid (Printf.sprintf "n%d:%b" pc logged)
          | Visible ->
              ignore (record st ~pid (Event.Visible value));
              st.observed_rev <- value :: st.observed_rev;
              desc_since st pid (Printf.sprintf "v%d" pc)
          | Send d ->
              let seq = st.sent.(pid).(d) in
              let tag = st.next_tag in
              st.next_tag <- tag + 1;
              let e = record st ~pid (Event.Send { dest = d; tag }) in
              let vc = List.init st.nprocs (Vclock.get e.Event.vc) in
              let dv = Array.to_list st.dvs.(pid) in
              Hashtbl.replace st.mail (pid, d, seq) (value, tag, vc, dv);
              st.sent.(pid).(d) <- seq + 1;
              desc_since st pid (Printf.sprintf "s%d>%d" pc d)
          | Receive -> ()
        in
        let publish_early =
          match op with Visible -> defect = Publish_first | _ -> false
        in
        if publish_early then begin
          (* the broken runtime hands the value to the user before the
             protocol's pre-visible commit has landed *)
          do_event ();
          st.pcs.(pid) <- pc + 1;
          do_commit st proto ~defect ~trap ~pid reaction.Protocol.commit_before;
          do_commit st proto ~defect ~trap ~pid reaction.Protocol.commit_after
        end
        else begin
          do_commit st proto ~defect ~trap ~pid reaction.Protocol.commit_before;
          do_event ();
          st.pcs.(pid) <- pc + 1;
          do_commit st proto ~defect ~trap ~pid reaction.Protocol.commit_after
        end;
        true
  end

(* ---- recovery ----------------------------------------------------------- *)

let restore st proto pid =
  let s = st.snaps.(pid) in
  st.pcs.(pid) <- s.s_pc;
  st.accs.(pid) <- s.s_acc;
  Array.blit s.s_cursor 0 st.cursor.(pid) 0 st.nprocs;
  Array.blit s.s_sent 0 st.sent.(pid) 0 st.nprocs;
  if Array.length s.s_dv = st.nprocs then
    Array.blit s.s_dv 0 st.dvs.(pid) 0 st.nprocs;
  if Array.length s.s_stable = st.nprocs then
    Array.blit s.s_stable 0 st.stable.(pid) 0 st.nprocs;
  st.since.(pid) <- [];
  (* Protocol-state restore: every protocol's per-process state is
     nd-since-commit bookkeeping, which is exactly what note_commit
     clears — so the state right after the snapshot's commit is
     recoverable through the public interface. *)
  proto.Protocol.note_commit ~pid

(* Roll the victim back to its last commit, then cascade.

   Coordinated protocols: any process whose consumed-message cursor now
   points past what a rolled-back sender has sent holds an orphaned
   dependence; if its own last commit does not cover that dependence,
   rolling it back resolves the orphan honestly.  If its commit does
   cover it, recovery must leave it alone — a protocol that allowed that
   state is caught by the oracles.

   Logging styles: recovery is orphan detection over dependency vectors
   instead — a survivor whose vector records more of the victim's
   non-determinism than the victim's restored state regenerates is an
   orphan, and rolls back too (cascading).  Message content alone does
   not orphan anyone: a logged receive replays from the log without the
   sender re-sending.  Under [Optimistic_log] the determinant log is
   volatile memory, so every rolled-back process additionally loses its
   log entries past the restore point — that lost suffix is what makes
   unkilled orphans inconsistent, and the [No_orphan_kill] defect
   (skipping the cascade) is how the checker proves the kill is
   load-bearing.  Either way, a surviving determinant that describes a
   message the sender's own rollback un-sent is dead — the redone send
   may carry a redrawn payload, and replaying the stale binding would
   smuggle the dead lineage back in — so those entries are purged after
   the cascade settles. *)
let rollback ?nested st proto ~defect victim =
  let wipe_volatile_log p =
    if st.style = Protocol.Optimistic_log then begin
      let s_pc = st.snaps.(p).s_pc in
      let doomed =
        Hashtbl.fold
          (fun (q, pc) _ acc -> if q = p && pc >= s_pc then (q, pc) :: acc else acc)
          st.log []
      in
      List.iter (Hashtbl.remove st.log) doomed
    end
  in
  let rerestore p =
    restore st proto p;
    wipe_volatile_log p
  in
  restore st proto victim;
  wipe_volatile_log victim;
  (match nested with
  | Some NRestore ->
      (* nested failure mid-restore: the victim dies again while its own
         restore replays.  Restore is idempotent — recovery just redoes
         it from the same snapshot. *)
      rerestore victim
  | _ -> ());
  (* The cascade as an explicit worklist with persisted progress,
     mirroring the engine's re-enterable orphan cascade.  A nested
     mid-cascade crash fires after the first worklist entry has been
     fully processed: the victim is re-restored (idempotent) and honest
     recovery RESUMES from the persisted worklist and rolled set, while
     the [Resume_from_scratch] defect re-enters from the victim alone —
     losing orphans reachable only through intermediates already rolled
     back, whose restored state no longer advertises the taint. *)
  let cascade restore_orphans_of =
    let rolled = Array.make st.nprocs false in
    rolled.(victim) <- true;
    let work = Queue.create () in
    Queue.add victim work;
    let until_recrash =
      ref (match nested with Some NCascade -> 1 | _ -> -1)
    in
    while not (Queue.is_empty work) do
      let v = Queue.pop work in
      restore_orphans_of rolled work v;
      if !until_recrash > 0 then begin
        decr until_recrash;
        if !until_recrash = 0 then begin
          rerestore victim;
          if defect = Resume_from_scratch then begin
            Queue.clear work;
            Queue.add victim work;
            Array.fill rolled 0 st.nprocs false;
            rolled.(victim) <- true
          end
        end
      end
    done;
    rolled
  in
  match st.style with
  | Protocol.Coordinated ->
      ignore
        (cascade (fun rolled work p ->
             for q = 0 to st.nprocs - 1 do
               if (not rolled.(q)) && st.cursor.(q).(p) > st.sent.(p).(q)
               then begin
                 restore st proto q;
                 rolled.(q) <- true;
                 Queue.add q work
               end
             done)
          : bool array)
  | Protocol.Causal_log | Protocol.Optimistic_log ->
      let rolled =
        if defect <> No_orphan_kill then
          cascade (fun rolled work v ->
              let v_own = st.dvs.(v).(v) in
              for q = 0 to st.nprocs - 1 do
                if (not rolled.(q)) && st.dvs.(q).(v) > v_own then begin
                  restore st proto q;
                  wipe_volatile_log q;
                  rolled.(q) <- true;
                  Queue.add q work
                end
              done)
        else begin
          let rolled = Array.make st.nprocs false in
          rolled.(victim) <- true;
          rolled
        end
      in
      (* purge determinants of un-sent messages: an Lrecv past a
         rolled-back receiver's restore point whose sender also rolled
         back past the send (seq at or beyond the restored send count)
         names a message that no longer exists *)
      let dead =
        Hashtbl.fold
          (fun (p, pc) entry acc ->
            if rolled.(p) && pc >= st.snaps.(p).s_pc then
              match entry with
              | Lrecv { src; seq; _ }
                when rolled.(src) && seq >= st.sent.(src).(p) ->
                  (p, pc) :: acc
              | _ -> acc
            else acc)
          st.log []
      in
      List.iter (Hashtbl.remove st.log) dead

(* ---- state key ---------------------------------------------------------- *)

(* Everything the future of an execution can depend on, as pure data:
   pcs, lineage accumulators, channel state (with send clocks), commit
   snapshots, per-process ND/commit summaries with their vector clocks
   (what Save-work verdicts on extensions are computed from), and the
   events since each last commit (the protocols' internal state).
   Deliberately rich — a missed merge costs time, a false merge costs
   soundness; `--no-prune` cross-checks the choice. *)
let state_key st =
  let vcl vc = List.init st.nprocs (Vclock.get vc) in
  let per_proc p =
    let evs = Trace.events_of st.trace p in
    let nds =
      List.filter_map
        (fun e ->
          if Event.is_nd e || Event.is_receive e then
            Some (e.Event.index, Event.kind_to_string e.Event.kind,
                  e.Event.logged, vcl e.Event.vc)
          else None)
        evs
    in
    let commits =
      List.map (fun e -> (e.Event.index, vcl e.Event.vc)) (Trace.commits_of st.trace p)
    in
    let cur_vc =
      match List.rev evs with [] -> [] | e :: _ -> vcl e.Event.vc
    in
    (nds, commits, cur_vc)
  in
  let pending = ref [] in
  for src = 0 to st.nprocs - 1 do
    for dst = 0 to st.nprocs - 1 do
      for seq = st.cursor.(dst).(src) to st.sent.(src).(dst) - 1 do
        match Hashtbl.find_opt st.mail (src, dst, seq) with
        | Some (payload, _, vc, dv) ->
            pending := (src, dst, seq, payload, vc, dv) :: !pending
        | None -> ()
      done
    done
  done;
  let snaps =
    Array.map
      (fun s ->
        ( s.s_pc,
          s.s_acc,
          Array.to_list s.s_cursor,
          Array.to_list s.s_sent,
          Array.to_list s.s_dv,
          Array.to_list s.s_stable ))
      st.snaps
  in
  let repr =
    ( ( Array.to_list st.pcs,
        Array.to_list st.accs,
        Array.to_list (Array.map (fun a -> Array.to_list a) st.cursor),
        Array.to_list (Array.map (fun a -> Array.to_list a) st.sent),
        Array.to_list (Array.map (fun a -> Array.to_list a) st.dvs),
        Array.to_list (Array.map (fun a -> Array.to_list a) st.stable) ),
      List.sort compare !pending,
      Array.to_list snaps,
      Array.to_list st.since,
      List.init st.nprocs per_proc,
      st.round,
      List.rev st.observed_rev )
  in
  Digest.to_hex (Digest.string (Marshal.to_string repr []))

(* ---- reference construction --------------------------------------------- *)

(* The failure-free execution the observed output must be equivalent to:
   replay every (pid, pc) in order of its first execution, with the
   surviving values — the last result of each ND draw (redraws replace
   the dead lineage) and the surviving binding of each receive.  On a
   crash-free run this reproduces the observed output exactly; after a
   recovery it is the run the surviving lineage belongs to.  A rebound
   receive can name a send first-executed later in the order; its
   surviving payload is used directly — for honest protocols the sender
   regenerates that payload identically, and for broken ones the
   divergence this hides is visible in the lineages downstream. *)
let build_reference st =
  let pairs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.first_stamp []
    |> List.sort (fun ((_ : int * int), a) (_, b) -> compare a b)
  in
  let accs = Array.init st.nprocs acc0 in
  let rsent = Array.make_matrix st.nprocs st.nprocs 0 in
  let rmail = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun ((pid, pc), _) ->
      match st.prog.(pid).(pc) with
      | Internal -> ()
      | Nd _ ->
          let v = try Hashtbl.find st.draws (pid, pc) with Not_found -> 0 in
          accs.(pid) <- mix accs.(pid) v
      | Visible -> out := visible_of ~pid ~pc ~acc:accs.(pid) :: !out
      | Send d ->
          let seq = rsent.(pid).(d) in
          Hashtbl.replace rmail (pid, d, seq)
            (payload_of ~pid ~pc ~acc:accs.(pid));
          rsent.(pid).(d) <- seq + 1
      | Receive -> (
          match Hashtbl.find_opt st.recv_bind (pid, pc) with
          | None | Some None -> ()
          | Some (Some (src, seq, raw)) ->
              let payload =
                match Hashtbl.find_opt rmail (src, pid, seq) with
                | Some p -> p
                | None -> raw
              in
              accs.(pid) <- mix accs.(pid) payload))
    pairs;
  List.rev !out

(* ---- whole runs --------------------------------------------------------- *)

let runnable prog ~pcs =
  let r = ref [] in
  for p = Array.length prog - 1 downto 0 do
    if pcs.(p) < Array.length prog.(p) then r := p :: !r
  done;
  !r

let init ~program =
  let nprocs = Array.length program in
  {
    prog = program;
    nprocs;
    style = Protocol.Coordinated;
    pcs = Array.make nprocs 0;
    accs = Array.init nprocs acc0;
    gens = Array.init nprocs (fun p -> Array.make (Array.length program.(p)) 0);
    cursor = Array.make_matrix nprocs nprocs 0;
    sent = Array.make_matrix nprocs nprocs 0;
    dvs = Array.make_matrix nprocs nprocs 0;
    stable = Array.make_matrix nprocs nprocs 0;
    mail = Hashtbl.create 64;
    snaps =
      Array.make nprocs
        {
          s_pc = 0;
          s_acc = 0;
          s_cursor = [||];
          s_sent = [||];
          s_dv = [||];
          s_stable = [||];
        };
    since = Array.make nprocs [];
    draws = Hashtbl.create 64;
    log = Hashtbl.create 64;
    recv_bind = Hashtbl.create 64;
    first_stamp = Hashtbl.create 64;
    now = 0;
    next_tag = 0;
    ack_tag = -1;
    round = 0;
    observed_rev = [];
    commit_pcs_rev = [];
    steps = 0;
    committed_this_step = false;
    trace = Trace.create ~nprocs;
    mirror = Some (Trace.create ~nprocs);
  }

let run ~spec ~defect ~program ~prefix ~crash =
  let nprocs = Array.length program in
  let proto = Protocol.instantiate spec ~nprocs in
  let st = init ~program in
  st.style <- spec.Protocol.style;
  (* the initial state of every process is committed (paper §2.3) *)
  for p = 0 to nprocs - 1 do
    snapshot st p
  done;
  let quiescent () =
    let stuck = ref true in
    for p = 0 to nprocs - 1 do
      if st.pcs.(p) < Array.length program.(p) && not (blocked st p) then
        stuck := false
    done;
    !stuck
  in
  let n = List.length prefix in
  let mid_victim = ref None in
  List.iteri
    (fun i pid ->
      if !mid_victim = None then begin
        st.committed_this_step <- false;
        let trap =
          match crash with
          | Mid_commit { landed } when i = n - 1 ->
              Some { landed; fired = false }
          | _ -> None
        in
        (* scheduling a blocked process is a no-op — unless the whole
           system is quiescent, in which case no message can ever arrive
           and the blocked receive deterministically resolves to a skip *)
        let force_skip = blocked st pid && quiescent () in
        try ignore (exec_step st proto ~defect ~trap ~force_skip pid)
        with Crashed_mid_commit -> mid_victim := Some pid
      end)
    prefix;
  let last_step_committed = st.committed_this_step in
  let state_key = state_key st in
  (* the schedule choices available after this prefix: processes that
     can make progress, or — at quiescence — the blocked ones, whose
     next step is the deterministic skip *)
  let next_pids =
    let can =
      List.filter (fun p -> not (blocked st p)) (runnable program ~pcs:st.pcs)
    in
    if can <> [] then can else runnable program ~pcs:st.pcs
  in
  let prefix_trace =
    match st.mirror with Some m -> m | None -> st.trace
  in
  st.mirror <- None;
  let bindings_now () =
    Hashtbl.fold
      (fun k b acc ->
        (k, Option.map (fun (src, seq, _) -> (src, seq)) b) :: acc)
      st.recv_bind []
    |> List.sort compare
  in
  let prefix_bindings = bindings_now () in
  let pending =
    let acc = ref [] in
    for src = nprocs - 1 downto 0 do
      for dst = nprocs - 1 downto 0 do
        for seq = st.sent.(src).(dst) - 1 downto st.cursor.(dst).(src) do
          if Hashtbl.mem st.mail (src, dst, seq) then
            acc := (src, dst, seq) :: !acc
        done
      done
    done;
    !acc
  in
  (* A lost frame: under an honest runtime the sender's retransmission
     layer repairs a single loss before anyone can observe it, so the
     drop is a no-op on the model state.  Under [No_retransmit] the
     payload really disappears — the receiver's cursor can never pass
     the hole (FIFO links), so the whole link falls silent and the
     blocked receives resolve to skips at quiescence. *)
  (match crash with
  | Lose { src; dst; seq } when defect = No_retransmit ->
      Hashtbl.remove st.mail (src, dst, seq)
  | _ -> ());
  let victim =
    match (crash, !mid_victim) with
    | No_crash, _ | Lose _, _ -> None
    | _, Some v -> Some v
    | Stop v, None -> Some v
    | Nested { victim = v; _ }, None -> Some v
    | Mid_commit _, None -> (
        (* the step had no commit to crash inside: degenerate to a stop
           failure of the last scheduled process *)
        match List.rev prefix with [] -> None | pid :: _ -> Some pid)
  in
  let crash_pc =
    match victim with
    | None -> None
    | Some v ->
        let at = (v, st.pcs.(v)) in
        ignore (record st ~pid:v Event.Crash);
        let nested =
          match crash with Nested { stage; _ } -> Some stage | _ -> None
        in
        rollback ?nested st proto ~defect v;
        Some at
  in
  (* canonical completion: round-robin to the end of every script (the
     single-failure model means no further crashes); at quiescence the
     lowest blocked process resolves its receive as a skip *)
  let unfinished () = runnable program ~pcs:st.pcs <> [] in
  while unfinished () do
    let progressed = ref false in
    for p = 0 to nprocs - 1 do
      if exec_step st proto ~defect ~trap:None p then progressed := true
    done;
    if not !progressed then
      match runnable program ~pcs:st.pcs with
      | p :: _ ->
          ignore (exec_step st proto ~defect ~trap:None ~force_skip:true p)
      | [] -> ()
  done;
  {
    trace = st.trace;
    prefix_trace;
    observed = List.rev st.observed_rev;
    reference = build_reference st;
    commit_pcs = List.rev st.commit_pcs_rev;
    crash_pc;
    last_step_committed;
    bindings = bindings_now ();
    prefix_bindings;
    pending;
    next_pids;
    logged_pcs =
      Hashtbl.fold (fun k _ acc -> k :: acc) st.log [] |> List.sort compare;
    steps = st.steps;
    state_key;
  }

let prefix_to_steps program prefix =
  let nprocs = Array.length program in
  let pcs = Array.make nprocs 0 in
  List.filter_map
    (fun pid ->
      if pid < 0 || pid >= nprocs then None
      else
        let pc = pcs.(pid) in
        if pc >= Array.length program.(pid) then None
        else begin
          pcs.(pid) <- pc + 1;
          let info =
            match program.(pid).(pc) with
            | Internal -> { Protocol.kind = Event.Internal; loggable = false }
            | Nd (c, l) -> { Protocol.kind = Event.Nd c; loggable = l }
            | Visible -> { Protocol.kind = Event.Visible 0; loggable = false }
            | Send d ->
                { Protocol.kind = Event.Send { dest = d; tag = -1 };
                  loggable = false }
            | Receive ->
                { Protocol.kind = Event.Receive { src = -1; tag = -1 };
                  loggable = true }
          in
          Some (Conformance.step ~pid info)
        end)
    prefix
