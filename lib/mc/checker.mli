(** The bounded checker: DFS over every schedule prefix of a program,
    every stop-crash victim, every mid-commit crash and every
    drop-one-message fault at each prefix, three oracles per execution,
    with memoized state hashing and {!Ft_exp}-fanned sharding. *)

type oracle = Invariant | Consistency | Lose_work

val oracle_to_string : oracle -> string

type violation = {
  v_oracle : oracle;
  v_prefix : int list;  (** the schedule: one pid per step *)
  v_crash : Model.crash;
  v_detail : string;  (** one line: what the oracle saw *)
}

type stats = {
  nodes : int;  (** DFS nodes (schedule prefixes) visited *)
  runs : int;  (** complete executions (crash variants included) *)
  memo_hits : int;  (** nodes pruned by the state hash *)
  steps : int;  (** model steps executed, replays included *)
  violations : violation list;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val check_one :
  ?lose_work:bool ->
  spec:Ft_core.Protocol.spec ->
  defect:Model.defect ->
  program:Model.program ->
  prefix:int list ->
  crash:Model.crash ->
  unit ->
  violation list
(** Run one (schedule, crash) execution and evaluate every oracle on it:
    Save-work on the crash-free prefix (for [No_crash]), output
    consistency, and — when [lose_work] — the dangerous-path oracle.
    The shrinker's fitness function. *)

val check :
  ?no_prune:bool ->
  ?lose_work:bool ->
  ?root:int list ->
  ?stop_depth:int ->
  spec:Ft_core.Protocol.spec ->
  defect:Model.defect ->
  program:Model.program ->
  unit ->
  stats
(** Explores every schedule prefix extending [root] (default: the empty
    prefix).  [stop_depth] checks only prefixes strictly shorter than it
    (used for the shallow shard).  At each node: the Save-work invariant
    on the crash-free prefix trace; for each victim a stop crash, plus
    both mid-commit crash outcomes when the last step committed, each
    checked for output consistency against the surviving lineage's
    reference; for each in-flight message a {!Model.Lose} fault, checked
    for loss transparency (the completed run must reproduce the no-loss
    execution of the same schedule); and, when [lose_work] (default true
    — turn off for mutants), the dangerous-path oracle on every crashed
    execution.  [no_prune] disables the state-hash memo. *)

val crash_to_string : Model.crash -> string
val crash_of_string : string -> (Model.crash, string) result
val prefix_to_string : int list -> string
val prefix_of_string : string -> (int list, string) result

(** {2 Exp fan-out} *)

val shards : nprocs:int -> shard_depth:int -> int list list
(** Every forced-first-choices string of the given length. *)

val jobs :
  ?no_prune:bool ->
  ?lose_work:bool ->
  ?shard_depth:int ->
  specs:(Ft_core.Protocol.spec * Model.defect) list ->
  program:Model.program ->
  unit ->
  Ft_exp.Job.t list
(** One job per (protocol, shard) plus one shallow job per protocol
    covering the prefixes above the shard boundary.  Job keys encode the
    program digest and bound, so a warm {!Ft_exp.Exp} store resumes an
    interrupted sweep without re-exploring completed shards. *)

val stats_of_value : Ft_exp.Jstore.value -> stats option
(** Decode one job's result row back into {!stats}. *)
