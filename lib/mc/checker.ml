(* The checker proper: exhaustive DFS over schedule prefixes, crash
   variants at every node, three oracles, state-hash memoization, and
   sharding over the experiment runner. *)

open Ft_core

type oracle = Invariant | Consistency | Lose_work

let oracle_to_string = function
  | Invariant -> "save-work"
  | Consistency -> "consistency"
  | Lose_work -> "lose-work"

type violation = {
  v_oracle : oracle;
  v_prefix : int list;
  v_crash : Model.crash;
  v_detail : string;
}

type stats = {
  nodes : int;
  runs : int;
  memo_hits : int;
  steps : int;
  violations : violation list;
}

let zero_stats =
  { nodes = 0; runs = 0; memo_hits = 0; steps = 0; violations = [] }

let add_stats a b =
  {
    nodes = a.nodes + b.nodes;
    runs = a.runs + b.runs;
    memo_hits = a.memo_hits + b.memo_hits;
    steps = a.steps + b.steps;
    violations = a.violations @ b.violations;
  }

(* ---- serialization helpers --------------------------------------------- *)

let crash_to_string = function
  | Model.No_crash -> "none"
  | Model.Stop v -> Printf.sprintf "stop:%d" v
  | Model.Mid_commit { landed = true } -> "mid:landed"
  | Model.Mid_commit { landed = false } -> "mid:lost"
  | Model.Lose { src; dst; seq } -> Printf.sprintf "lose:%d.%d.%d" src dst seq
  | Model.Nested { victim; stage = Model.NRestore } ->
      Printf.sprintf "nested:%d:restore" victim
  | Model.Nested { victim; stage = Model.NCascade } ->
      Printf.sprintf "nested:%d:cascade" victim

let crash_of_string = function
  | "none" -> Ok Model.No_crash
  | "mid:landed" -> Ok (Model.Mid_commit { landed = true })
  | "mid:lost" -> Ok (Model.Mid_commit { landed = false })
  | s -> (
      match String.split_on_char ':' s with
      | [ "stop"; v ] -> (
          match int_of_string_opt v with
          | Some v -> Ok (Model.Stop v)
          | None -> Error ("bad stop victim: " ^ s))
      | [ "lose"; m ] -> (
          match
            List.map int_of_string_opt (String.split_on_char '.' m)
          with
          | [ Some src; Some dst; Some seq ] ->
              Ok (Model.Lose { src; dst; seq })
          | _ -> Error ("bad lost message: " ^ s))
      | [ "nested"; v; stage ] -> (
          match (int_of_string_opt v, stage) with
          | Some victim, "restore" ->
              Ok (Model.Nested { victim; stage = Model.NRestore })
          | Some victim, "cascade" ->
              Ok (Model.Nested { victim; stage = Model.NCascade })
          | _ -> Error ("bad nested crash: " ^ s))
      | _ -> Error ("bad crash: " ^ s))

let prefix_to_string prefix =
  String.concat "" (List.map string_of_int prefix)

let prefix_of_string s =
  let rec go acc i =
    if i >= String.length s then Ok (List.rev acc)
    else
      match s.[i] with
      | '0' .. '9' -> go ((Char.code s.[i] - Char.code '0') :: acc) (i + 1)
      | c -> Error (Printf.sprintf "bad schedule char %C" c)
  in
  go [] 0

(* ---- the Lose-work oracle ----------------------------------------------- *)

(* Build the victim's linear state graph (state [i] = "about to execute
   pc i", one extra crash state) with the crash edge at the crashed pc,
   classify its receive edges with the Multi-Process Dangerous Paths
   Algorithm over the crash-free prefix trace, and require that no
   commit of the victim landed on a doomed state.  A stop failure is
   transient — re-execution gets past it — so the only doomed state a
   linear program can have is the terminal one with no continuation
   left, a modeling artifact we exclude.  We additionally cross-check
   the library's fixpoint coloring against an independent backward
   recursion, and require the transient-crash doomed set to be included
   in the fixed-crash one. *)

(* Independent re-implementation of the three coloring rules, memoized
   recursion instead of the library's iterate-to-fixpoint loop. *)
let dangerous_edges_recursive ~receive_class (g : State_graph.t) =
  let n = State_graph.nedges g in
  let color = Array.make n false in
  (* seed: crash edges *)
  for i = 0 to n - 1 do
    if State_graph.is_crash_edge g (State_graph.edge g i) then
      color.(i) <- true
  done;
  let is_fixed (e : State_graph.edge) =
    match e.State_graph.kind with
    | State_graph.Fixed_nd -> true
    | State_graph.Receive_nd _ -> receive_class e = Event.Fixed
    | _ -> false
  in
  (* on a DAG one backward pass in reverse topological order suffices;
     our graphs are linear so dst > src orders them *)
  let edges = Array.init n (State_graph.edge g) in
  Array.sort
    (fun a b -> compare b.State_graph.dst a.State_graph.dst)
    edges;
  Array.iter
    (fun (e : State_graph.edge) ->
      if not color.(e.id) then begin
        let out = State_graph.out_edges g e.dst in
        let all =
          out <> [] && List.for_all (fun o -> color.(o.State_graph.id)) out
        in
        let fixed =
          List.exists
            (fun o -> color.(o.State_graph.id) && is_fixed o)
            out
        in
        if all || fixed then color.(e.id) <- true
      end)
    edges;
  color

let victim_graph ~program ~logged_pcs ~bindings ~victim ~crash_pc ~crash_kind =
  let ops = program.(victim) in
  let depth = Array.length ops in
  let kind_of pc =
    match ops.(pc) with
    | Model.Internal | Model.Visible | Model.Send _ -> State_graph.Det
    | Model.Nd (c, _) ->
        if List.mem (victim, pc) logged_pcs then State_graph.Det
        else if c = Event.Fixed then State_graph.Fixed_nd
        else State_graph.Transient_nd
    | Model.Receive -> (
        match List.assoc_opt (victim, pc) bindings with
        | Some (Some (src, _)) ->
            if List.mem (victim, pc) logged_pcs then State_graph.Det
            else State_graph.Receive_nd src
        | Some None -> State_graph.Det (* skipped: no message consumed *)
        | None -> State_graph.Receive_nd 0 (* never executed: unknown *))
  in
  (* state [depth] gets a deterministic exit to an absorbing "done"
     state: a finished process recovers by doing nothing, so a crash
     edge out of the terminal state must not make it look like the only
     way forward (that would back-propagate "all exits colored" through
     the whole linear graph) *)
  let edges =
    List.init depth (fun i -> (i, i + 1, kind_of i))
    @ [ (depth, depth + 2, State_graph.Det); (crash_pc, depth + 1, crash_kind) ]
  in
  State_graph.make ~nstates:(depth + 3) ~edges ~crash_states:[ depth + 1 ] ()

(* Map a receive edge back to its trace event: the victim's bound
   receives in pc order line up with its non-ack receive events in
   trace order (the prefix is crash-free, so each pc executed once). *)
let receive_class_fn ~prefix_trace ~bindings ~victim =
  let recvs =
    List.filter
      (fun (e : Event.t) ->
        Event.is_receive e
        && (match e.Event.kind with
           | Event.Receive { tag; _ } -> tag >= 0
           | _ -> false))
      (Trace.events_of prefix_trace victim)
  in
  let bound_pcs =
    List.filter_map
      (fun ((p, pc), b) ->
        if p = victim && b <> None then Some pc else None)
      bindings
    |> List.sort compare
  in
  (* the victim's bound receive pcs in pc order line up one-to-one with
     its non-ack receive events in trace order: the prefix is crash-free,
     so pc order is execution order *)
  let by_pc =
    List.map2 (fun pc e -> (pc, e)) bound_pcs recvs
  in
  fun (e : State_graph.edge) ->
    match List.assoc_opt e.State_graph.src by_pc with
    | Some recv -> Dangerous_paths.receive_class_of_trace prefix_trace recv
    | None -> Event.Transient

let check_lose_work ~program ~(run : Model.run) ~victim ~crash_pc =
  let bindings =
    (* only the bindings visible at the crash instant matter for the
       dangerous-path classification of the pre-crash graph *)
    run.Model.prefix_bindings
  in
  let logged_pcs = run.Model.logged_pcs in
  let depth = Array.length program.(victim) in
  let mk kind =
    victim_graph ~program ~logged_pcs ~bindings ~victim ~crash_pc
      ~crash_kind:kind
  in
  let g_transient = mk State_graph.Transient_nd in
  let g_fixed = mk State_graph.Fixed_nd in
  let receive_class =
    receive_class_fn ~prefix_trace:run.Model.prefix_trace ~bindings ~victim
  in
  let doomed_t = Dangerous_paths.doomed_states ~receive_class g_transient in
  let doomed_f = Dangerous_paths.doomed_states ~receive_class g_fixed in
  let errors = ref [] in
  (* the library coloring must agree with the independent recursion *)
  let lib = Dangerous_paths.dangerous_edges ~receive_class g_transient in
  let ind = dangerous_edges_recursive ~receive_class g_transient in
  if lib <> ind then
    errors := "dangerous_edges disagrees with backward recursion" :: !errors;
  (* transient-crash doom must be included in fixed-crash doom *)
  Array.iteri
    (fun s d ->
      if d && not doomed_f.(s) then
        errors :=
          Printf.sprintf "state %d doomed under transient crash only" s
          :: !errors)
    doomed_t;
  (* Lose-work: under a transient stop failure no commit of the victim
     before the crash point may sit on a doomed state (the terminal
     no-continuation state excepted) *)
  List.iter
    (fun (p, pc) ->
      if p = victim && pc <= crash_pc && pc < depth && doomed_t.(pc) then
        errors :=
          Printf.sprintf "commit at doomed state %d (crash at %d)" pc crash_pc
          :: !errors)
    run.Model.commit_pcs;
  !errors

(* ---- single-execution checking (shrinker entry point) ------------------- *)

let check_one ?(lose_work = true) ~spec ~defect ~program ~prefix ~crash () =
  let r = Model.run ~spec ~defect ~program ~prefix ~crash in
  let vs = ref [] in
  let report v_oracle v_detail =
    vs := { v_oracle; v_prefix = prefix; v_crash = crash; v_detail } :: !vs
  in
  (match crash with
  | Model.No_crash -> (
      match Save_work.violations r.Model.prefix_trace with
      | [] -> ()
      | v :: _ ->
          report Invariant (Format.asprintf "%a" Save_work.pp_violation v))
  | _ -> ());
  (* For a lost message the surviving-lineage reference is the wrong
     yardstick: a silently skipped receive drops out of the reference
     too, absolving the very divergence we are after.  Loss must be
     *transparent* — the completed run must reproduce the no-loss
     execution of the same schedule. *)
  let reference =
    match crash with
    | Model.Lose _ ->
        (Model.run ~spec ~defect ~program ~prefix ~crash:Model.No_crash)
          .Model.observed
    | _ -> r.Model.reference
  in
  (match Consistency.check ~reference ~observed:r.Model.observed with
  | Consistency.Consistent -> ()
  | v -> report Consistency (Format.asprintf "%a" Consistency.pp_verdict v));
  (if lose_work then
     match r.Model.crash_pc with
     | None -> ()
     | Some (victim, crash_pc) ->
         List.iter
           (fun d -> report Lose_work d)
           (check_lose_work ~program ~run:r ~victim ~crash_pc));
  List.rev !vs

(* ---- the DFS ------------------------------------------------------------ *)

let check ?(no_prune = false) ?(lose_work = true) ?(root = []) ?stop_depth
    ~spec ~defect ~program () =
  let nprocs = Array.length program in
  let seen = Hashtbl.create 1024 in
  let nodes = ref 0
  and runs = ref 0
  and memo = ref 0
  and steps = ref 0
  and violations = ref [] in
  let report v_oracle v_prefix v_crash v_detail =
    violations := { v_oracle; v_prefix; v_crash; v_detail } :: !violations
  in
  let exec prefix crash =
    incr runs;
    let r = Model.run ~spec ~defect ~program ~prefix ~crash in
    steps := !steps + r.Model.steps;
    r
  in
  let check_consistency prefix crash (r : Model.run) =
    match
      Consistency.check ~reference:r.Model.reference ~observed:r.Model.observed
    with
    | Consistency.Consistent -> ()
    | v ->
        report Consistency prefix crash
          (Format.asprintf "%a" Consistency.pp_verdict v)
  in
  let crash_variant prefix crash =
    let r = exec prefix crash in
    check_consistency prefix crash r;
    if lose_work then
      match r.Model.crash_pc with
      | None -> ()
      | Some (victim, crash_pc) ->
          List.iter
            (fun d -> report Lose_work prefix crash d)
            (check_lose_work ~program ~run:r ~victim ~crash_pc)
  in
  (* Loss transparency: retransmission must make a single dropped frame
     unobservable, so the completed run reproduces the no-loss execution
     of the same schedule.  The surviving-lineage reference is useless
     here — a silently skipped receive drops out of it too. *)
  let lose_variant prefix (nc : Model.run) (src, dst, seq) =
    let crash = Model.Lose { src; dst; seq } in
    let r = exec prefix crash in
    match
      Consistency.check ~reference:nc.Model.observed
        ~observed:r.Model.observed
    with
    | Consistency.Consistent -> ()
    | v ->
        report Consistency prefix crash
          (Format.asprintf "%a" Consistency.pp_verdict v)
  in
  let rec dfs prefix =
    incr nodes;
    let nc = exec prefix Model.No_crash in
    if (not no_prune) && Hashtbl.mem seen nc.Model.state_key then incr memo
    else begin
      Hashtbl.add seen nc.Model.state_key ();
      (* oracle: Save-work on the crash-free prefix — the state of the
         world at any crash instant must satisfy the invariant *)
      (match Save_work.violations nc.Model.prefix_trace with
      | [] -> ()
      | v :: _ ->
          report Invariant prefix Model.No_crash
            (Format.asprintf "%a" Save_work.pp_violation v));
      if prefix <> [] then begin
        for v = 0 to nprocs - 1 do
          crash_variant prefix (Model.Stop v)
        done;
        (* nested failures: the recovery path itself crashes — the
           victim dies again mid-restore or mid-cascade.  (The third
           stage, a crash while coordinating the commit round, is the
           [Mid_commit] enumeration below: the round is Vista-atomic.) *)
        for v = 0 to nprocs - 1 do
          crash_variant prefix
            (Model.Nested { victim = v; stage = Model.NRestore });
          crash_variant prefix
            (Model.Nested { victim = v; stage = Model.NCascade })
        done;
        if nc.Model.last_step_committed then begin
          crash_variant prefix (Model.Mid_commit { landed = true });
          crash_variant prefix (Model.Mid_commit { landed = false })
        end;
        List.iter (lose_variant prefix nc) nc.Model.pending
      end;
      match nc.Model.next_pids with
      | [] ->
          (* leaf sanity: a complete failure-free run must reproduce its
             own reference exactly *)
          check_consistency prefix Model.No_crash nc
      | next ->
          let expand =
            match stop_depth with
            | Some d -> List.length prefix + 1 < d
            | None -> true
          in
          if expand then List.iter (fun p -> dfs (prefix @ [ p ])) next
    end
  in
  (match stop_depth with
  | Some d when List.length root >= d -> ()
  | _ -> dfs root);
  {
    nodes = !nodes;
    runs = !runs;
    memo_hits = !memo;
    steps = !steps;
    violations = List.rev !violations;
  }

(* ---- Exp fan-out -------------------------------------------------------- *)

let shards ~nprocs ~shard_depth =
  let rec go d =
    if d = 0 then [ [] ]
    else
      let rest = go (d - 1) in
      List.concat_map (fun s -> List.init nprocs (fun p -> s @ [ p ])) rest
  in
  go shard_depth

open Ft_exp

let violation_to_value v =
  Jstore.Obj
    [
      ("oracle", Jstore.String (oracle_to_string v.v_oracle));
      ("prefix", Jstore.String (prefix_to_string v.v_prefix));
      ("crash", Jstore.String (crash_to_string v.v_crash));
      ("detail", Jstore.String v.v_detail);
    ]

let violation_of_value v =
  let oracle =
    match Jstore.get_str "oracle" v with
    | "save-work" -> Invariant
    | "lose-work" -> Lose_work
    | _ -> Consistency
  in
  match
    ( prefix_of_string (Jstore.get_str "prefix" v),
      crash_of_string (Jstore.get_str ~default:"none" "crash" v) )
  with
  | Ok p, Ok c ->
      Some
        {
          v_oracle = oracle;
          v_prefix = p;
          v_crash = c;
          v_detail = Jstore.get_str "detail" v;
        }
  | _ -> None

let stats_to_value s =
  Jstore.Obj
    [
      ("nodes", Jstore.Int s.nodes);
      ("runs", Jstore.Int s.runs);
      ("memo_hits", Jstore.Int s.memo_hits);
      ("steps", Jstore.Int s.steps);
      ("violations", Jstore.List (List.map violation_to_value s.violations));
    ]

let stats_of_value v =
  match Jstore.member "nodes" v with
  | None -> None
  | Some _ ->
      let vs =
        match Jstore.member "violations" v with
        | Some (Jstore.List l) -> List.filter_map violation_of_value l
        | _ -> []
      in
      Some
        {
          nodes = Jstore.get_int "nodes" v;
          runs = Jstore.get_int "runs" v;
          memo_hits = Jstore.get_int "memo_hits" v;
          steps = Jstore.get_int "steps" v;
          violations = vs;
        }

let defect_to_string = function
  | Model.Honest -> "honest"
  | Model.Skip_orphan -> "skip-orphan"
  | Model.Drop_log -> "drop-log"
  | Model.Publish_first -> "publish-first"
  | Model.No_retransmit -> "no-retransmit"
  | Model.Drop_dv -> "drop-dependency-vector"
  | Model.No_orphan_kill -> "no-orphan-kill"
  | Model.Resume_from_scratch -> "resume-from-scratch"
  | Model.Gc_live_determinant -> "gc-live-determinant"

let jobs ?(no_prune = false) ?(lose_work = true) ?(shard_depth = 2) ~specs
    ~program () =
  let nprocs = Array.length program in
  let digest = String.sub (Model.program_digest program) 0 12 in
  let job_of ~spec ~defect ~tag ~root ~stop_depth =
    (* the defect and the oracle set are part of the result's identity:
       a mutant may reuse an honest protocol's spec name verbatim *)
    let key =
      Printf.sprintf "mc/%s/%s%s/p%dx%d/%s/%s%s" spec.Protocol.spec_name
        (defect_to_string defect)
        (if lose_work then "" else "-nolw")
        nprocs
        (Array.length program.(0))
        digest tag
        (if no_prune then "/noprune" else "")
    in
    Job.make ~key ~seed:0 (fun () ->
        stats_to_value
          (check ~no_prune ~lose_work ~root ?stop_depth ~spec ~defect ~program
             ()))
  in
  List.concat_map
    (fun (spec, defect) ->
      job_of ~spec ~defect ~tag:"shallow" ~root:[]
        ~stop_depth:(Some shard_depth)
      :: List.map
           (fun s ->
             job_of ~spec ~defect
               ~tag:("shard-" ^ prefix_to_string s)
               ~root:s ~stop_depth:None)
           (shards ~nprocs ~shard_depth))
    specs
