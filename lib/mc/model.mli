(** The model checker's small-scope execution model.

    A {e program} is a per-process array of abstract operations (the
    same event alphabet as {!Ft_core.Conformance}).  The executor runs
    one interleaving (a {e schedule prefix}) under a protocol, optionally
    injects a single stop failure — between steps or in the middle of a
    commit, with Vista's all-or-nothing semantics — performs recovery
    (rollback of the victim to its last commit, cascading to processes
    holding messages the rollback un-sends), and completes the run with
    a canonical round-robin schedule.

    Values are {e lineages}: every non-deterministic draw feeds an
    accumulator hash per process, message payloads carry the sender's
    accumulator, and visible values mix the emitter's accumulator — so
    any lost-and-redrawn non-determinism that leaks into output is
    detectable by {!Ft_core.Consistency.check} against the surviving
    lineage's reference run. *)

type op =
  | Internal
  | Nd of Ft_core.Event.nd_class * bool  (** class, loggable *)
  | Visible
  | Send of int  (** destination pid *)
  | Receive

type program = op array array  (** [program.(pid).(pc)] *)

val default_program : nprocs:int -> depth:int -> program
(** A deterministic mix covering every operation class, with message
    traffic in both directions and ND events ahead of visibles and
    sends (the Save-work danger patterns). *)

val op_to_string : op -> string
val program_digest : program -> string

(** Defects of the {e runtime} layers (commit machinery, logger,
    publisher) under which a protocol executes; the protocol itself can
    additionally be mutated via its {!Ft_core.Protocol.spec}. *)
type defect =
  | Honest
  | Skip_orphan  (** 2PC participants never commit; only the coordinator *)
  | Drop_log  (** log writes are lost: replay of a logged event redraws *)
  | Publish_first
      (** visible output is published before the protocol's pre-visible
          commit instead of after it *)
  | No_retransmit
      (** the network stack never retransmits: a {!Lose} fault is never
          repaired, the link falls permanently silent past the hole *)
  | Drop_dv
      (** piggybacked dependency vectors are never merged at receives:
          the logging protocols' commit and orphan machinery runs blind
          to cross-process causality *)
  | No_orphan_kill
      (** recovery restores only the crashed process and never rolls
          back orphans — survivors whose state depends on the victim's
          lost non-determinism keep running on a dead lineage *)
  | Resume_from_scratch
      (** a recovery re-entered after a nested mid-cascade crash
          restarts the orphan scan from the victim alone instead of
          resuming the persisted worklist — orphans reachable only
          through intermediates already rolled back (whose restored
          state no longer advertises the taint) survive *)
  | Gc_live_determinant
      (** the determinant GC retires any log entry its owner has
          {e executed} past instead of any its owner has {e committed}
          past: a bystander's commit drops an entry a future replay
          still needs, and the replay redraws *)

(** The stage of the recovery path a nested failure lands in.  (The
    third stage, a crash while coordinating a dependent-commit round,
    is the existing {!Mid_commit} enumeration: the round is Vista-atomic
    and either all lands or none does.) *)
type nstage =
  | NRestore  (** during the victim's own restore/replay *)
  | NCascade  (** after the first orphan-cascade step has been processed *)

(** The single injected fault. *)
type crash =
  | No_crash
  | Stop of int  (** victim pid; crashes after the prefix completes *)
  | Mid_commit of { landed : bool }
      (** the process scheduled by the last prefix step crashes inside
          that step's commit: [landed] selects the Vista-atomic outcome
          (the whole commit is durable, or none of it) *)
  | Lose of { src : int; dst : int; seq : int }
      (** the network drops one in-flight message after the prefix.  An
          honest runtime's retransmission repairs it (the run is
          identical to [No_crash]); under {!No_retransmit} the payload
          is gone for good and the receiver eventually skips *)
  | Nested of { victim : int; stage : nstage }
      (** the victim crashes after the prefix and then crashes {e
          again} while its own recovery is mid-flight.  Honest recovery
          is idempotent and re-enterable: a re-crashed restore redoes
          itself from the same snapshot, and a re-crashed cascade
          resumes from its persisted worklist — never restarts *)

type run = {
  trace : Ft_core.Trace.t;  (** everything executed, crash included *)
  prefix_trace : Ft_core.Trace.t;
      (** the crash-free prefix alone: the Save-work invariant must hold
          on it — this is the state of the world at the crash instant *)
  observed : int list;  (** visible values, in order, across the crash *)
  reference : int list;
      (** visible values of the surviving lineage's failure-free run *)
  commit_pcs : (int * int) list;  (** (pid, pc at commit), run order *)
  crash_pc : (int * int) option;  (** (victim, pc when it crashed) *)
  last_step_committed : bool;
      (** the final prefix step performed at least one commit: tells the
          checker whether [Mid_commit] variants exist at this node *)
  bindings : ((int * int) * (int * int) option) list;
      (** surviving receive bindings: (pid, pc) -> (src, seq), [None]
          for a receive that found nothing pending *)
  prefix_bindings : ((int * int) * (int * int) option) list;
      (** the bindings as of the crash instant, aligned with
          [prefix_trace] — what the dangerous-path classification of the
          pre-crash world must be computed from *)
  pending : (int * int * int) list;
      (** in-flight messages at the end of the prefix — (src, dst, seq)
          sent but not yet consumed: the {!Lose} candidates the checker
          enumerates at this node *)
  logged_pcs : (int * int) list;
      (** (pid, pc) whose result the recovery system actually logged *)
  next_pids : int list;
      (** schedule choices after the prefix: processes that can make
          progress, or, at quiescence, the blocked ones (whose next step
          is the deterministic skip of their receive) *)
  steps : int;  (** total step executions, replay included *)
  state_key : string;  (** digest of the post-prefix machine state *)
}

val run :
  spec:Ft_core.Protocol.spec ->
  defect:defect ->
  program:program ->
  prefix:int list ->
  crash:crash ->
  run
(** Executes [prefix] (a pid per step; scheduling a finished process is
    ignored, scheduling a blocked one is a no-op except at quiescence,
    where its receive deterministically resolves to a skip), injects
    [crash], recovers, and completes every process's script round-robin.
    Deterministic. *)

val runnable : program -> pcs:int array -> int list
(** Processes with script left, ascending. *)

val prefix_to_steps : program -> int list -> Ft_core.Conformance.step list
(** The prefix as a replayable {!Ft_core.Conformance} script (resolving
    each scheduled pid to the op at its pc). *)
