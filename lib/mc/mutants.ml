(* The mutant suite: each entry breaks one protocol (or the runtime
   under it) in one specific way, and names the oracle that should
   convict it.  The checker is only trusted while it kills every one of
   these. *)

open Ft_core

type t = {
  mutant_name : string;
  spec : Protocol.spec;
  defect : Model.defect;
  based_on : string;
  expected : string;
  program : Model.program option;
}

let base name =
  match Protocols.by_name name with
  | Some s -> s
  | None -> invalid_arg ("Mutants: unknown base protocol " ^ name)

(* CPVS that commits just *after* each visible or send instead of just
   before: the visible escapes with its non-determinism uncommitted, a
   straight Save-work-visible violation on crash-free traces. *)
let commit_after_visible =
  let cpvs = base "CPVS" in
  {
    mutant_name = "commit-after-visible";
    program = None;
    based_on = "CPVS";
    defect = Model.Honest;
    expected = "Save-work violation on the crash-free prefix";
    spec =
      {
        cpvs with
        spec_name = "CPVS!after";
        instantiate =
          (fun ~nprocs ->
            let inner = cpvs.Protocol.instantiate ~nprocs in
            {
              inner with
              Protocol.react =
                (fun ~pid info ->
                  let r = inner.Protocol.react ~pid info in
                  match r.Protocol.commit_before with
                  | Some scope ->
                      { r with commit_before = None; commit_after = Some scope }
                  | None -> r);
            });
      };
  }

(* CAND whose commit machinery has a budget of two commits and never
   replenishes it: once exhausted, ND events run uncommitted and the
   next visible anywhere convicts it. *)
let budget_never_reset =
  let cand = base "CAND" in
  {
    mutant_name = "budget-never-reset";
    program = None;
    based_on = "CAND";
    defect = Model.Honest;
    expected = "commits stop after the budget; later visibles violate Save-work";
    spec =
      {
        cand with
        spec_name = "CAND!budget";
        instantiate =
          (fun ~nprocs ->
            let inner = cand.Protocol.instantiate ~nprocs in
            let budget = ref 2 in
            {
              inner with
              Protocol.react =
                (fun ~pid info ->
                  let r = inner.Protocol.react ~pid info in
                  if r.Protocol.commit_before <> None
                     || r.Protocol.commit_after <> None
                  then
                    if !budget > 0 then begin
                      decr budget;
                      r
                    end
                    else { r with commit_before = None; commit_after = None }
                  else r);
            });
      };
  }

(* CPV-2PC whose participants never actually commit their half of the
   round: the coordinator publishes on the strength of commits that did
   not happen, and a participant crash loses non-determinism the output
   already depends on. *)
let skip_orphan_commit =
  {
    mutant_name = "skip-orphan-commit";
    program = None;
    based_on = "CPV-2PC";
    defect = Model.Skip_orphan;
    expected = "participant crash redraws ND the published output used";
    spec = base "CPV-2PC";
  }

(* CAND-LOG over a logger that loses entries: the trace claims the ND
   result was logged, but replay after a crash redraws it.  Only the
   end-to-end consistency oracle can see this — the trace looks clean. *)
let drop_log_entry =
  {
    mutant_name = "drop-log-entry";
    program = None;
    based_on = "CAND-LOG";
    defect = Model.Drop_log;
    expected = "replay redraws a 'logged' result; outputs diverge across the crash";
    spec = base "CAND-LOG";
  }

(* CBNDVS-LOG over a runtime that hands output to the user before the
   protocol's pre-visible commit lands: a crash inside that commit
   leaves published output depending on rolled-back non-determinism. *)
let publish_before_log =
  {
    mutant_name = "publish-before-log";
    program = None;
    based_on = "CBNDVS-LOG";
    defect = Model.Publish_first;
    expected = "mid-commit crash republishes a different value for shown output";
    spec = base "CBNDVS-LOG";
  }

(* CAND over a network stack that never retransmits: a single dropped
   frame is never repaired, the FIFO link falls silent past the hole,
   and the receiver's skipped binding bends its lineage — the loss
   stops being transparent.  Only the drop-one-message fault variants
   can see this; every process-crash oracle stays green. *)
let never_retransmit =
  {
    mutant_name = "never-retransmit";
    program = None;
    based_on = "CAND";
    defect = Model.No_retransmit;
    expected = "a lost frame is never repaired; output diverges from the no-loss run";
    spec = base "CAND";
  }

(* CAUSAL-LOG over a runtime that never merges the piggybacked
   dependency vectors: dependent commits see no remote taint, so a
   visible is published over another process's uncommitted, unlogged
   non-determinism — the Save-work oracle convicts it on the crash-free
   prefix. *)
let drop_dependency_vector =
  {
    mutant_name = "drop-dependency-vector";
    program = None;
    based_on = "CAUSAL-LOG";
    defect = Model.Drop_dv;
    expected = "blind dependent commits leave remote ND uncovered at a visible";
    spec = base "CAUSAL-LOG";
  }

(* OPTIMISTIC whose recovery restores only the crashed process: a
   survivor whose state depends on the victim's wiped volatile log keeps
   running on the dead lineage, and its next published value diverges
   from the surviving lineage's reference run. *)
let commit_without_orphan_kill =
  {
    mutant_name = "commit-without-orphan-kill";
    program = None;
    based_on = "OPTIMISTIC";
    defect = Model.No_orphan_kill;
    expected = "unkilled orphan publishes a value from the rolled-back lineage";
    spec = base "OPTIMISTIC";
  }

(* OPTIMISTIC whose re-entered recovery restarts the orphan cascade from
   the victim alone instead of resuming the persisted worklist.  Needs
   three processes and a hand-built chain: A's crash orphans B (B
   received A's uncommitted taint), while C depends only on B's earlier
   non-determinism — so once B has been rolled back, a from-scratch
   rescan from A finds nothing (B's restored vector no longer advertises
   the taint) and C survives as an orphan on B's dead lineage.  The
   default program cannot express this: its receive-first menus give C a
   direct dependence on A, which even the buggy rescan catches. *)
let resume_cascade_from_scratch =
  let chain3 : Model.program =
    [|
      [| Model.Nd (Event.Transient, false); Model.Send 1; Model.Visible |];
      [| Model.Nd (Event.Transient, false); Model.Send 2; Model.Receive |];
      [| Model.Receive; Model.Visible |];
    |]
  in
  {
    mutant_name = "resume-cascade-from-scratch";
    program = Some chain3;
    based_on = "OPTIMISTIC";
    defect = Model.Resume_from_scratch;
    expected =
      "a victim re-crashed mid-cascade restarts the scan from scratch; the \
       transitive orphan survives and publishes a dead lineage";
    spec = base "OPTIMISTIC";
  }

(* CAUSAL-LOG under a determinant GC that retires any entry its owner
   has *executed* past instead of any its owner has *committed* past: a
   bystander's commit drops the logged transient draw backing an
   already-published visible, and the owner's replay after a crash
   redraws it — the published output belongs to no failure-free run. *)
let gc_live_determinant =
  let prog : Model.program =
    [|
      [|
        Model.Nd (Event.Transient, false); Model.Visible;
        Model.Nd (Event.Transient, true); Model.Visible;
      |];
      [| Model.Nd (Event.Transient, false); Model.Visible |];
    |]
  in
  {
    mutant_name = "gc-live-determinant";
    program = Some prog;
    based_on = "CAUSAL-LOG";
    defect = Model.Gc_live_determinant;
    expected =
      "a bystander's commit retires a live determinant; the owner's replay \
       redraws it and diverges from the published output";
    spec = base "CAUSAL-LOG";
  }

let all =
  [
    commit_after_visible;
    budget_never_reset;
    skip_orphan_commit;
    drop_log_entry;
    publish_before_log;
    never_retransmit;
    drop_dependency_vector;
    commit_without_orphan_kill;
    resume_cascade_from_scratch;
    gc_live_determinant;
  ]

let by_name n = List.find_opt (fun m -> m.mutant_name = n) all
