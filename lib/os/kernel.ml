(** The kernel model.

    Services the machine's system calls and classifies each one by the
    paper's event taxonomy: [gettimeofday], [random], signal delivery and
    message receives are {e transient} ND events; user input and the
    fullness-dependent [open]/[write] results are {e fixed} ND events
    (§2.5); [write_output] is visible; sends and receives move messages
    through a network with delivery jitter (message order is the
    transient non-determinism of distributed runs).

    Per-process kernel state — input position, open-file table, private
    file system, send sequence numbers and the duplicate filter — is
    snapshottable: Discount Checking preserves kernel state at commit and
    reconstructs it during recovery (paper §3).

    The kernel also hosts the OS-fault machinery for the Table-2
    experiment: an injected fault either panics the kernel after a delay
    (a stop failure) or corrupts the results of syscalls touching the
    broken subsystem until the panic (a propagation failure). *)

type costs = {
  instr_ns : int;            (* cost of one VM instruction *)
  syscall_ns : int;          (* base cost of a syscall *)
  network_latency_ns : int;  (* one-way message latency *)
  network_jitter_ns : int;   (* max extra random delay (message order ND) *)
}

let default_costs =
  {
    instr_ns = 2;               (* ~400 MIPS, the paper's Pentium II *)
    syscall_ns = 2_000;
    network_latency_ns = 120_000;  (* 100 Mb/s switched Ethernet *)
    network_jitter_ns = 60_000;
  }

(* What servicing a syscall produced.  [ev] drives protocol reaction and
   trace recording; [new_time] lets blocking input advance the process's
   local clock (think time). *)
type ev =
  | Ev_none
  | Ev_nd of Ft_core.Event.nd_class * bool  (* class, loggable *)
  | Ev_visible of int
  | Ev_send of { dest : int; tag : int }
  | Ev_receive of { src : int; tag : int }

type served = {
  r0 : int option;
  r1 : int option;
  cost_ns : int;
  new_time : int option;
  ev : ev;
  poke : int option;
      (* when an injected kernel fault corrupts process memory through
         this syscall, a random seed the engine uses to pick the word *)
}

type result =
  | Served of served
  | Block_recv   (* no message available; retry when one arrives *)
  | Panic        (* injected kernel fault reached its crash point *)

type message = {
  msg_src : int;
  msg_dest : int;
  msg_payload : int;
  msg_seq : int;          (* per-sender sequence, for duplicate filtering *)
  msg_tag : int;          (* stable trace tag: src * tag_stride + seq *)
  msg_deliver_at : int;
  msg_dv : Ft_core.Vclock.t;
      (* the sender's dependency vector, piggybacked at send time when
         a message-logging protocol enabled tracking; the width-0 clock
         otherwise (one shared value, so the legacy path allocates
         nothing).  Rides inside the payload record, so it survives
         transport loss/dup/reorder/retransmission unchanged. *)
  msg_inc : int;
      (* the sender's incarnation number at send time: bumped on each
         sender rollback under a logging protocol, so stale messages
         from a rolled-back past can be told apart from their redone
         replacements *)
}

let tag_stride = 1_000_000
let tag ~src ~seq = (src * tag_stride) + seq

(* Shared by every message sent while dependency tracking is off: the
   legacy protocols stay allocation- and byte-identical. *)
let no_dv = Ft_core.Vclock.create 0

type file = { mutable contents : int array; mutable len : int }

type proc_kstate = {
  mutable input_pos : int;
  mutable last_input_at : int;  (* completion time of the previous read *)
  mutable send_seq : int;
  mutable last_seen : (int * int) list;  (* per-sender highest seq consumed *)
  mutable open_files : (int * (int * int)) list;  (* fd -> (name, offset) *)
  mutable next_fd : int;
  mutable fs_used : int;          (* words written, against capacity *)
  mutable sig_period : int;       (* ns; 0 = no timer signal *)
  mutable next_signal : int;
}

type kstate_snapshot = proc_kstate

(* Injected OS fault (configured by Ft_faults.Os_injector). *)
type os_fault = {
  mutable panic_at : int;        (* absolute time of the kernel panic;
                                    the corruption window scales with the
                                    application's syscall *rate* (§4.2) *)
  touches : Ft_vm.Syscall.t -> bool;   (* syscalls reading the broken subsystem *)
  corrupt_bit : int;             (* which result bit the corruption flips *)
  poke_probability : float;      (* chance a touched syscall also corrupts
                                    process memory (a bad copyout) *)
  mutable propagated : bool;     (* corruption reached the application *)
}

type t = {
  nprocs : int;
  costs : costs;
  seed : int;  (* base seed, kept so {!perturb} can derive fresh streams *)
  mutable rng : Random.State.t;
  inputs : (int * int) array array;        (* per pid: (ready_ns, token) *)
  kstates : proc_kstate array;
  mailboxes : message Queue.t array;
  (* messages consumed since the receiver's last commit, oldest first *)
  uncommitted_recv : message list ref array;
  files : (int, file) Hashtbl.t array;     (* private FS per process *)
  mutable fs_capacity : int;
  mutable max_open_files : int;
  mutable os_fault : os_fault option;
  mutable panicked : bool;
  syscall_tally : (Ft_vm.Syscall.t, int) Hashtbl.t;
      (* how often each syscall was serviced: OS fault injection targets
         the kernel paths the workload actually exercises *)
  mutable net : message Ft_net.Transport.t option;
      (* when set, sends travel the unreliable transport instead of
         being enqueued directly; [None] is byte-identical to the
         original reliable path (including its RNG draws) *)
  mutable net_base : int;
      (* this kernel's offset into a shared transport's pid space: a
         multi-tenant scheduler gives every tenant a disjoint global pid
         range [net_base, net_base + nprocs) on one transport.  0 for a
         privately attached transport. *)
  input_abs : bool array;
      (* per pid: input script entries are absolute arrival times
         (open-loop load) rather than think-time gaps (closed loop) *)
  (* --- dependency tracking (message-logging protocols) ---------------
     None of this belongs to [proc_kstate]: vectors are restored by the
     engine from its committed snapshots, and incarnations/barriers must
     SURVIVE restores — they describe which in-flight messages are stale,
     which is precisely the knowledge a rollback must not lose. *)
  mutable dv_enabled : bool;
  dvs : Ft_core.Vclock.t array;            (* per pid, live vector *)
  incarnations : int array;                (* per pid, bumped on rollback *)
  mutable barriers : (int * int) list array;
      (* per src: (incarnation after a rollback, restored send_seq).
         A message from [src] is dead iff some barrier [(b_inc, b_seq)]
         has [msg_inc < b_inc && msg_seq >= b_seq]: it was sent before
         the rollback, covering sends the rollback undid. *)
  (* --- bounded determinant log ---------------------------------------
     Pure accounting of the logging protocols' determinant store, kept
     as three per-owner counters (determinants are retired in stamp
     order, so each process's live log is an interval):

       det_mark <= det_committed <= det_hi

     [det_hi] advances as determinants are recorded; [det_committed]
     snapshots it at the owner's commit (the checkpoint now covers the
     owner's replay of those events); [det_mark] is the GC watermark —
     determinants at or below it have been retired.  Like incarnations,
     none of this is snapshottable kstate: the watermark is derived from
     committed state only and must SURVIVE restores (monotonicity is
     the crash-safety invariant — re-running the GC after any nested
     crash re-derives the same or a later watermark, never an earlier
     one). *)
  det_hi : int array;
  det_committed : int array;
  det_mark : int array;
  mutable det_live : int;            (* cached: sum of hi - mark *)
  mutable det_high_water : int;      (* running max of det_live *)
  mutable det_cap : int;             (* hard cap on det_live; 0 = none *)
  mutable det_forced_flushes : int;  (* cap hits that forced a commit *)
}

let create ?(costs = default_costs) ?(seed = 42) ?(fs_capacity = 1 lsl 20)
    ?(max_open_files = 16) ~nprocs () =
  {
    nprocs;
    costs;
    seed;
    rng = Random.State.make [| seed |];
    inputs = Array.make nprocs [||];
    kstates =
      Array.init nprocs (fun _ ->
          {
            input_pos = 0;
            last_input_at = 0;
            send_seq = 0;
            last_seen = [];
            open_files = [];
            next_fd = 3;
            fs_used = 0;
            sig_period = 0;
            next_signal = max_int;
          });
    mailboxes = Array.init nprocs (fun _ -> Queue.create ());
    uncommitted_recv = Array.init nprocs (fun _ -> ref []);
    files = Array.init nprocs (fun _ -> Hashtbl.create 8);
    fs_capacity;
    max_open_files;
    os_fault = None;
    panicked = false;
    syscall_tally = Hashtbl.create 16;
    net = None;
    net_base = 0;
    input_abs = Array.make nprocs false;
    dv_enabled = false;
    dvs = Array.init nprocs (fun _ -> Ft_core.Vclock.create nprocs);
    incarnations = Array.make nprocs 0;
    barriers = Array.make nprocs [];
    det_hi = Array.make nprocs 0;
    det_committed = Array.make nprocs 0;
    det_mark = Array.make nprocs 0;
    det_live = 0;
    det_high_water = 0;
    det_cap = 0;
    det_forced_flushes = 0;
  }

let costs t = t.costs
let nprocs t = t.nprocs

(* --- the unreliable transport ------------------------------------------- *)

let net t = t.net

(* Attach an {!Ft_net.Transport} between send and receive.  The
   transport owns delivery timing (latency, jitter, and whatever the
   policy adds), sequencing, retransmission and in-order reassembly; the
   kernel keeps its per-sender [msg_seq] duplicate filter on top, which
   continues to absorb sender-rollback replays exactly as on the
   reliable path.  Frames complete delivery during {!Ft_net.Transport.pump}
   (driven by the engine), landing in the destination mailbox with
   [msg_deliver_at] set to the arrival time. *)
let attach_net ?(policy = Ft_net.Policy.reliable) ?link_policy ?rto_ns
    ?rto_max_ns ?backoff ?max_retries ~seed t =
  let deliver ~at ~src:_ ~dst (m : message) =
    Queue.add { m with msg_deliver_at = at } t.mailboxes.(dst)
  in
  let policy =
    match link_policy with Some f -> f | None -> fun _ _ -> policy
  in
  let tr =
    Ft_net.Transport.create ~policy ?rto_ns ?rto_max_ns ?backoff ?max_retries
      ~seed ~nprocs:t.nprocs ~latency_ns:t.costs.network_latency_ns
      ~jitter_ns:t.costs.network_jitter_ns ~deliver ()
  in
  t.net <- Some tr;
  tr

(* A multi-tenant scheduler shares one transport across N kernels, each
   owning the global pid range [base, base + nprocs).  The scheduler
   supplies the transport's [deliver] callback and routes each arrival
   back to the owning kernel through {!deliver_net}. *)
let set_net t ?(base = 0) tr =
  t.net <- Some tr;
  t.net_base <- base

let net_base t = t.net_base

(* Complete a shared-transport delivery: [dst] is this kernel's local
   pid; [at] is the arrival time stamped by the transport. *)
let deliver_net t ~at ~dst (m : message) =
  Queue.add { m with msg_deliver_at = at } t.mailboxes.(dst)

(* Scripted user input.  Each entry is (gap, token): the token becomes
   available [gap] after the previous read completed — the paper's
   interactive cadence (100 ms between keystrokes in nvi, 1 s between
   commands in magic), where the user types the next key after seeing
   the response, so commit latency shows up in elapsed time. *)
let set_input t pid pairs =
  t.inputs.(pid) <- pairs;
  t.input_abs.(pid) <- false

let scripted_input ~start ~interval_ns tokens =
  Array.of_list
    (List.mapi
       (fun i tok -> ((if i = 0 then start else interval_ns), tok))
       tokens)

(* Open-loop load: each entry is (absolute_ready_ns, token).  Arrival
   times are fixed in advance and do not wait for the previous response,
   so queueing delay — and thus recovery time — shows up as request
   latency instead of shifting the whole schedule. *)
let set_input_absolute t pid pairs =
  t.inputs.(pid) <- pairs;
  t.input_abs.(pid) <- true

let open_loop_input ~start ~interval_ns tokens =
  Array.of_list
    (List.mapi (fun i tok -> (start + (i * interval_ns), tok)) tokens)

let set_timer_signal t pid ~period_ns ~first_at =
  let k = t.kstates.(pid) in
  k.sig_period <- period_ns;
  k.next_signal <- first_at

(* A timer signal due?  Consumes the occurrence. *)
let poll_signal t pid ~now =
  let k = t.kstates.(pid) in
  if k.sig_period > 0 && now >= k.next_signal then begin
    k.next_signal <- k.next_signal + k.sig_period;
    true
  end
  else false

let set_os_fault t f = t.os_fault <- Some f
let os_fault t = t.os_fault
let panicked t = t.panicked

(* Reboot: the injected fault is gone; panic state cleared. *)
let clear_os_fault t =
  t.os_fault <- None;
  t.panicked <- false

(* §2.6: the operating system can turn some fixed non-deterministic
   events into transient ones by increasing resource limits after a
   failure — a disk-full or table-full result need not repeat during
   recovery if the reboot grows the resource. *)
let expand_resources t =
  t.fs_capacity <- 2 * t.fs_capacity;
  t.max_open_files <- t.max_open_files + 8

(* --- per-process kernel state snapshot/restore ------------------------- *)

let snapshot_kstate t pid =
  let k = t.kstates.(pid) in
  { k with input_pos = k.input_pos }  (* all-immutable-field copy *)

let restore_kstate t pid (s : kstate_snapshot) =
  let k = t.kstates.(pid) in
  k.input_pos <- s.input_pos;
  k.last_input_at <- s.last_input_at;
  k.send_seq <- s.send_seq;
  k.last_seen <- s.last_seen;
  k.open_files <- s.open_files;
  k.next_fd <- s.next_fd;
  k.fs_used <- s.fs_used;
  k.sig_period <- s.sig_period;
  k.next_signal <- s.next_signal

(* Word layout of a kstate snapshot, so Discount Checking can persist
   the saved kernel state inside the checkpoint region itself and
   recovery can rebuild it from region words alone:
   [ 7 scalars;
     |last_seen|;  (sender, seq) pairs;
     |open_files|; (fd, name, offset) triples ] *)
let kstate_to_words (s : kstate_snapshot) =
  let out = ref [] in
  let push v = out := v :: !out in
  push s.input_pos;
  push s.last_input_at;
  push s.send_seq;
  push s.next_fd;
  push s.fs_used;
  push s.sig_period;
  push s.next_signal;
  push (List.length s.last_seen);
  List.iter (fun (sender, seq) -> push sender; push seq) s.last_seen;
  push (List.length s.open_files);
  List.iter
    (fun (fd, (name, offset)) -> push fd; push name; push offset)
    s.open_files;
  Array.of_list (List.rev !out)

let kstate_of_words w =
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length w then
      invalid_arg "Kernel.kstate_of_words: truncated snapshot";
    let v = w.(!pos) in
    incr pos;
    v
  in
  let input_pos = next () in
  let last_input_at = next () in
  let send_seq = next () in
  let next_fd = next () in
  let fs_used = next () in
  let sig_period = next () in
  let next_signal = next () in
  let rec read_items n f acc =
    if n = 0 then List.rev acc else read_items (n - 1) f (f () :: acc)
  in
  let last_seen =
    read_items (next ()) (fun () ->
        let sender = next () in
        (sender, next ())) []
  in
  let open_files =
    read_items (next ()) (fun () ->
        let fd = next () in
        let name = next () in
        (fd, (name, next ()))) []
  in
  { input_pos; last_input_at; send_seq; last_seen; open_files; next_fd;
    fs_used; sig_period; next_signal }

(* File contents are kept simple: they are not rolled back (the paper's
   workloads treat file writes as redo-logged output; our applications
   only append).  Offsets and the open-file table are rolled back. *)

(* The receiver committed: its consumed messages need never be redelivered. *)
let note_commit t pid = t.uncommitted_recv.(pid) := []

(* --- dependency tracking (message-logging protocols) -------------------- *)

let enable_dependency_tracking t = t.dv_enabled <- true
let dependency_tracking t = t.dv_enabled

(* The live vector: callers may read it and [Vclock.copy] it into
   snapshots, but must mutate it only through {!dv_tick}/{!restore_dv}. *)
let dv t pid = t.dvs.(pid)
let dv_tick t pid = Ft_core.Vclock.tick t.dvs.(pid) pid
let restore_dv t pid c = t.dvs.(pid) <- Ft_core.Vclock.copy c
let incarnation t pid = t.incarnations.(pid)

(* A message is stale iff some rollback of its sender undid the send. *)
let message_dead t (m : message) =
  match t.barriers.(m.msg_src) with
  | [] -> false
  | bs ->
      List.exists
        (fun (b_inc, b_seq) -> m.msg_inc < b_inc && m.msg_seq >= b_seq)
        bs

(* The engine rolled [pid] back past some of its sends (logging styles
   only).  Called after [restore_kstate], so [send_seq] is the restored
   value: in-flight messages from the previous incarnation at or above
   it will be redone — possibly with different redrawn payloads — and
   the originals must never be consumed. *)
let note_sender_rollback t pid =
  t.incarnations.(pid) <- t.incarnations.(pid) + 1;
  t.barriers.(pid) <-
    (t.incarnations.(pid), t.kstates.(pid).send_seq) :: t.barriers.(pid)

(* The receiver rolled back: requeue the messages it consumed since its
   last commit, in original order, ahead of anything else pending —
   minus any that a sender rollback killed in the meantime. *)
let requeue_uncommitted t pid =
  let pending = Queue.create () in
  Queue.transfer t.mailboxes.(pid) pending;
  List.iter
    (fun m -> if not (message_dead t m) then Queue.add m t.mailboxes.(pid))
    !(t.uncommitted_recv.(pid));
  Queue.transfer pending t.mailboxes.(pid);
  t.uncommitted_recv.(pid) := []

let mailbox_nonempty t pid = not (Queue.is_empty t.mailboxes.(pid))

(* --- bounded determinant log -------------------------------------------- *)

let set_det_cap t cap = t.det_cap <- cap
let det_cap t = t.det_cap
let det_live t = t.det_live
let det_live_of t pid = t.det_hi.(pid) - t.det_mark.(pid)
let det_high_water t = t.det_high_water
let det_forced_flushes t = t.det_forced_flushes
let note_forced_flush t = t.det_forced_flushes <- t.det_forced_flushes + 1

(* A determinant was recorded for [pid]'s latest nondeterministic event.
   Returns [true] when the store is over its hard cap — the caller must
   degrade gracefully (force a flush-to-checkpoint of some process)
   rather than let the log grow without bound. *)
let det_append t pid =
  t.det_hi.(pid) <- t.det_hi.(pid) + 1;
  t.det_live <- t.det_live + 1;
  if t.det_live > t.det_high_water then t.det_high_water <- t.det_live;
  t.det_cap > 0 && t.det_live > t.det_cap

(* [pid] committed: its checkpoint now covers the replay of every
   determinant recorded so far, making them retirable (once no live
   process still depends on them — the scheduler's GC decides that). *)
let det_note_commit t pid = t.det_committed.(pid) <- t.det_hi.(pid)

(* [pid] rolled back: determinants recorded since its last commit
   belonged to the dead lineage (the optimistic volatile log dies with
   the process) and replay will record fresh ones. *)
let det_drop_uncommitted t pid =
  let dropped = t.det_hi.(pid) - t.det_committed.(pid) in
  if dropped > 0 then begin
    t.det_live <- t.det_live - dropped;
    t.det_hi.(pid) <- t.det_committed.(pid)
  end

(* Retire [pid]'s committed determinants.  The watermark only ever
   advances ([det_mark] is monotone and survives restores): that is the
   crash-safety invariant — a GC pass re-entered after a nested crash
   re-derives the same or a later watermark, never an earlier one. *)
let det_retire t pid =
  let w = t.det_committed.(pid) in
  if w > t.det_mark.(pid) then begin
    t.det_live <- t.det_live - (w - t.det_mark.(pid));
    t.det_mark.(pid) <- w
  end

(* --- environment perturbation (escalation rung L2) ---------------------- *)

(* Re-randomize the environment's non-deterministic decisions for a
   perturbed replay: reseed the kernel RNG stream (Random syscall
   results, network jitter draws) from the base seed and [salt], and
   re-interleave each pending mailbox ACROSS senders.  Per-sender order
   is strictly preserved — the [msg_seq <= seen] duplicate filter would
   silently drop an older sequence number delivered after a newer one —
   so only the cross-sender interleaving (which a real network never
   guaranteed anyway) is shuffled.  Deterministic given (seed, salt):
   identical perturbed replays stay replayable. *)
let perturb t ~salt =
  t.rng <- Random.State.make [| t.seed; salt; 0x9e57 |];
  for pid = 0 to t.nprocs - 1 do
    let q = t.mailboxes.(pid) in
    if Queue.length q > 1 then begin
      let by_src = Hashtbl.create 4 in
      let srcs = ref [] in
      Queue.iter
        (fun m ->
          match Hashtbl.find_opt by_src m.msg_src with
          | Some sq -> Queue.add m sq
          | None ->
              let sq = Queue.create () in
              Queue.add m sq;
              Hashtbl.add by_src m.msg_src sq;
              srcs := m.msg_src :: !srcs)
        q;
      Queue.clear q;
      let srcs = Array.of_list (List.rev !srcs) in
      let rng = Random.State.make [| t.seed; salt; pid; 0x51ab |] in
      let remaining = ref (Array.length srcs) in
      while !remaining > 0 do
        (* Draw a sender with a pending message, append its oldest. *)
        let live = Array.of_list
            (Array.to_list srcs
            |> List.filter (fun s ->
                   not (Queue.is_empty (Hashtbl.find by_src s))))
        in
        let s = live.(Random.State.int rng (Array.length live)) in
        let sq = Hashtbl.find by_src s in
        Queue.add (Queue.pop sq) q;
        if Queue.is_empty sq then decr remaining
      done
    end
  done

(* --- syscall servicing -------------------------------------------------- *)

let apply_os_fault t ~now s (served : served) =
  match t.os_fault with
  | None -> served
  | Some f ->
      if now >= f.panic_at then served (* caller checks panic *)
      else if f.touches s then begin
        f.propagated <- true;
        let flip v = v lxor (1 lsl f.corrupt_bit) in
        let poke =
          if Random.State.float t.rng 1.0 < f.poke_probability then
            Some (Random.State.bits t.rng)
          else None
        in
        { served with r0 = Option.map flip served.r0; poke }
      end
      else served

let check_panic t ~now =
  match t.os_fault with
  | Some f when now >= f.panic_at ->
      t.panicked <- true;
      true
  | _ -> false

let fresh_fd k = let fd = k.next_fd in k.next_fd <- fd + 1; fd

let find_file t pid name =
  match Hashtbl.find_opt t.files.(pid) name with
  | Some f -> f
  | None ->
      let f = { contents = Array.make 64 0; len = 0 } in
      Hashtbl.add t.files.(pid) name f;
      f

let file_append f v =
  if f.len >= Array.length f.contents then begin
    let bigger = Array.make (2 * Array.length f.contents) 0 in
    Array.blit f.contents 0 bigger 0 f.len;
    f.contents <- bigger
  end;
  f.contents.(f.len) <- v;
  f.len <- f.len + 1

(* Service one syscall for [pid] at local time [now] with argument
   registers [a0], [a1]. *)
let service t ~pid ~now ~a0 ~a1 s =
  let k = t.kstates.(pid) in
  Hashtbl.replace t.syscall_tally s
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.syscall_tally s));
  let base = t.costs.syscall_ns in
  let done_ ?r0 ?r1 ?(cost = base) ?new_time ev =
    let served = { r0; r1; cost_ns = cost; new_time; ev; poke = None } in
    let served = apply_os_fault t ~now s served in
    if check_panic t ~now then Panic else Served served
  in
  match s with
  | Ft_vm.Syscall.Gettimeofday ->
      (* Microseconds; depends on scheduling, hence transient ND. *)
      done_ ~r0:(now / 1_000) (Ev_nd (Ft_core.Event.Transient, false))
  | Ft_vm.Syscall.Random ->
      done_ ~r0:(Random.State.int t.rng 1_000_000)
        (Ev_nd (Ft_core.Event.Transient, false))
  | Ft_vm.Syscall.Read_input ->
      let script = t.inputs.(pid) in
      if k.input_pos >= Array.length script then
        (* End of input: a fixed ND result (the user went home). *)
        done_ ~r0:(-1) (Ev_nd (Ft_core.Event.Fixed, true))
      else begin
        (* Closed loop: the user reads the response, then types the next
           key [gap] later — processing and commit latency serialize with
           think time, as in the paper's interactive runs.  Open loop:
           the token was due at an absolute time; a process that arrives
           late pays the backlog as latency, not as schedule slip. *)
        let gap, tok = script.(k.input_pos) in
        let ready =
          if t.input_abs.(pid) then max now gap else now + gap
        in
        k.input_pos <- k.input_pos + 1;
        k.last_input_at <- ready;
        done_ ~r0:tok ~new_time:ready (Ev_nd (Ft_core.Event.Fixed, true))
      end
  | Ft_vm.Syscall.Poll_input ->
      let script = t.inputs.(pid) in
      let ready =
        k.input_pos < Array.length script
        && (if t.input_abs.(pid) then fst script.(k.input_pos) <= now
            else k.last_input_at + fst script.(k.input_pos) <= now)
      in
      done_ ~r0:(if ready then 1 else 0)
        (Ev_nd (Ft_core.Event.Transient, false))
  | Ft_vm.Syscall.Write_output -> done_ ~cost:(base * 2) (Ev_visible a0)
  | Ft_vm.Syscall.Send -> (
      let dest = a0 land max_int mod max 1 t.nprocs in
      let seq = k.send_seq in
      k.send_seq <- seq + 1;
      (* Piggyback the sender's current dependency vector (a snapshot:
         later ticks must not retroactively taint this message). *)
      let msg_dv =
        if t.dv_enabled then Ft_core.Vclock.copy t.dvs.(pid) else no_dv
      in
      let msg_inc = t.incarnations.(pid) in
      match t.net with
      | None ->
          let jitter =
            if t.costs.network_jitter_ns = 0 then 0
            else Random.State.int t.rng t.costs.network_jitter_ns
          in
          let m =
            {
              msg_src = pid;
              msg_dest = dest;
              msg_payload = a1;
              msg_seq = seq;
              msg_tag = tag ~src:pid ~seq;
              msg_deliver_at = now + t.costs.network_latency_ns + jitter;
              msg_dv;
              msg_inc;
            }
          in
          Queue.add m t.mailboxes.(dest);
          done_ ~cost:(base * 3) (Ev_send { dest; tag = m.msg_tag })
      | Some net ->
          (* The transport owns timing: [msg_deliver_at] is stamped with
             the arrival time when the frame completes delivery.  A
             sender-rollback replay of this send gets a fresh transport
             sequence number but the same [msg_seq], so the receiver's
             duplicate filter still absorbs it at consume time. *)
          let m =
            {
              msg_src = pid;
              msg_dest = dest;
              msg_payload = a1;
              msg_seq = seq;
              msg_tag = tag ~src:pid ~seq;
              msg_deliver_at = now;
              msg_dv;
              msg_inc;
            }
          in
          Ft_net.Transport.send net ~now ~src:(t.net_base + pid)
            ~dst:(t.net_base + dest) m;
          done_ ~cost:(base * 3) (Ev_send { dest; tag = m.msg_tag }))
  | Ft_vm.Syscall.Recv | Ft_vm.Syscall.Try_recv -> (
      (* Pop the next message, skipping duplicates already consumed
         before the sender was rolled back (§2.1: receivers must filter
         duplicate messages for sends to be redoable). *)
      let rec next () =
        if Queue.is_empty t.mailboxes.(pid) then None
        else
          let m = Queue.pop t.mailboxes.(pid) in
          (* A message a sender rollback killed must neither be consumed
             nor advance the duplicate filter: its redone replacement —
             same [msg_seq], new incarnation — is the live one. *)
          if message_dead t m then next ()
          else
            let seen =
              match List.assoc_opt m.msg_src k.last_seen with
              | Some s -> s
              | None -> -1
            in
            if m.msg_seq <= seen then next () else Some m
      in
      match next () with
      | None ->
          if s = Ft_vm.Syscall.Try_recv then
            done_ ~r0:(-1) ~r1:(-1) (Ev_nd (Ft_core.Event.Transient, false))
          else Block_recv
      | Some m ->
          k.last_seen <-
            (m.msg_src, m.msg_seq)
            :: List.remove_assoc m.msg_src k.last_seen;
          t.uncommitted_recv.(pid) :=
            !(t.uncommitted_recv.(pid)) @ [ m ];
          (* Merge the piggybacked dependency vector: the receiver's
             state now causally depends on everything the sender's state
             depended on at send time. *)
          if t.dv_enabled && Ft_core.Vclock.size m.msg_dv > 0 then
            Ft_core.Vclock.merge_into ~into:t.dvs.(pid) m.msg_dv;
          let new_time =
            if m.msg_deliver_at > now then Some m.msg_deliver_at else None
          in
          done_ ~r0:m.msg_payload ~r1:m.msg_src ~cost:(base * 3) ?new_time
            (Ev_receive { src = m.msg_src; tag = m.msg_tag }))
  | Ft_vm.Syscall.Open_file ->
      (* Success depends on the fullness of the open-file table (§2.5).
         Given the kernel state a checkpoint preserves, a successful open
         replays deterministically; only the table-full failure is a
         fixed ND event the recovery system cannot rely on changing. *)
      if List.length k.open_files >= t.max_open_files then
        done_ ~r0:(-1) (Ev_nd (Ft_core.Event.Fixed, false))
      else begin
        let file = find_file t pid a0 in
        let fd = fresh_fd k in
        k.open_files <- (fd, (a0, file.len)) :: k.open_files;
        done_ ~r0:fd Ev_none
      end
  | Ft_vm.Syscall.Write_file -> (
      match List.assoc_opt a0 k.open_files with
      | None -> done_ ~r0:(-1) Ev_none
      | Some (name, _) ->
          (* Disk-full failures are fixed ND (§2.5); successful appends
             replay deterministically from checkpointed kernel state. *)
          if k.fs_used >= t.fs_capacity then
            done_ ~r0:(-1) (Ev_nd (Ft_core.Event.Fixed, false))
          else begin
            file_append (find_file t pid name) a1;
            k.fs_used <- k.fs_used + 1;
            done_ ~r0:1 ~cost:(base * 4) Ev_none
          end)
  | Ft_vm.Syscall.Read_file -> (
      match List.assoc_opt a0 k.open_files with
      | None -> done_ ~r0:(-1) Ev_none
      | Some (name, _) ->
          let f = find_file t pid name in
          let v = if a1 >= 0 && a1 < f.len then f.contents.(a1) else -1 in
          done_ ~r0:v Ev_none)
  | Ft_vm.Syscall.Close_file ->
      k.open_files <- List.remove_assoc a0 k.open_files;
      done_ Ev_none
  | Ft_vm.Syscall.Sigaction -> done_ Ev_none (* handler address kept by machine *)
  | Ft_vm.Syscall.Sleep ->
      done_ ~new_time:(now + max 0 (a0 * 1_000)) ~cost:0 Ev_none
  | Ft_vm.Syscall.Yield -> done_ ~cost:0 Ev_none

let syscall_count t s =
  Option.value ~default:0 (Hashtbl.find_opt t.syscall_tally s)

(* File observation, for tests and app assertions. *)
let file_length t pid name =
  match Hashtbl.find_opt t.files.(pid) name with
  | Some f -> f.len
  | None -> 0

let file_word t pid name i =
  match Hashtbl.find_opt t.files.(pid) name with
  | Some f when i >= 0 && i < f.len -> Some f.contents.(i)
  | _ -> None
