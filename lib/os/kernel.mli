(** The kernel model: services syscalls, classifies each as an event of
    the paper's taxonomy, and owns the clock, scripted input sources,
    timer signals, per-process file systems, the network (with delivery
    jitter, duplicate filtering and the receive recovery buffer), and
    the OS-fault machinery of the Table-2 experiment. *)

type costs = {
  instr_ns : int;  (** cost of one VM instruction *)
  syscall_ns : int;  (** base cost of a syscall *)
  network_latency_ns : int;  (** one-way message latency *)
  network_jitter_ns : int;  (** max extra random delay (message-order ND) *)
}

val default_costs : costs
(** Approximately the paper's testbed: 400 MHz Pentium II on 100 Mb/s
    switched Ethernet. *)

(** Event classification of a serviced syscall. *)
type ev =
  | Ev_none  (** deterministic *)
  | Ev_nd of Ft_core.Event.nd_class * bool  (** class, loggable *)
  | Ev_visible of int
  | Ev_send of { dest : int; tag : int }
  | Ev_receive of { src : int; tag : int }

type served = {
  r0 : int option;  (** result register 0 *)
  r1 : int option;
  cost_ns : int;
  new_time : int option;  (** blocking advanced the local clock here *)
  ev : ev;
  poke : int option;
      (** an injected kernel fault corrupted process memory through this
          syscall: a seed the engine uses to pick the word *)
}

type result =
  | Served of served
  | Block_recv  (** no message available; retry when one arrives *)
  | Panic  (** the injected kernel fault reached its crash point *)

(** A message in flight.  [msg_seq] is the per-sender sequence number
    the receive-side duplicate filter keys on; [msg_tag] is the stable
    trace tag; [msg_deliver_at] the arrival time (stamped by the
    transport when one is attached).  [msg_dv] is the sender's
    dependency vector piggybacked at send time under a message-logging
    protocol (the width-0 clock otherwise) and [msg_inc] its incarnation
    number, which tells stale pre-rollback messages apart from their
    redone replacements. *)
type message = {
  msg_src : int;
  msg_dest : int;
  msg_payload : int;
  msg_seq : int;
  msg_tag : int;
  msg_deliver_at : int;
  msg_dv : Ft_core.Vclock.t;
  msg_inc : int;
}

(** An injected OS fault (configured by {!Ft_faults.Os_injector}). *)
type os_fault = {
  mutable panic_at : int;
      (** absolute panic time: the corruption window is a time interval,
          so exposure scales with the application's syscall rate (§4.2) *)
  touches : Ft_vm.Syscall.t -> bool;
      (** syscalls served from the broken subsystem *)
  corrupt_bit : int;  (** result bit flipped by the corruption *)
  poke_probability : float;
      (** chance a touched syscall also corrupts process memory *)
  mutable propagated : bool;  (** corruption reached the application *)
}

type t
type kstate_snapshot

val create :
  ?costs:costs ->
  ?seed:int ->
  ?fs_capacity:int ->
  ?max_open_files:int ->
  nprocs:int ->
  unit ->
  t

val costs : t -> costs
val nprocs : t -> int

val set_input : t -> int -> (int * int) array -> unit
(** Scripted user input: [(gap_ns, token)] pairs; each token becomes
    available [gap] after the previous read's response (think time
    serializes with processing, as in the paper's interactive runs). *)

val scripted_input :
  start:int -> interval_ns:int -> int list -> (int * int) array

val set_input_absolute : t -> int -> (int * int) array -> unit
(** Open-loop scripted input: [(absolute_ready_ns, token)] pairs.  Each
    token is available at its fixed arrival time regardless of when the
    previous response completed, so backlog after a crash shows up as
    request latency rather than shifting the whole schedule. *)

val open_loop_input :
  start:int -> interval_ns:int -> int list -> (int * int) array
(** Fixed-rate arrival schedule for {!set_input_absolute}: token [i]
    becomes ready at [start + i * interval_ns]. *)

val set_timer_signal : t -> int -> period_ns:int -> first_at:int -> unit

val poll_signal : t -> int -> now:int -> bool
(** Is a timer signal due?  Consumes the occurrence. *)

val set_os_fault : t -> os_fault -> unit
val os_fault : t -> os_fault option
val panicked : t -> bool

val clear_os_fault : t -> unit
(** Reboot: the injected fault is gone. *)

val expand_resources : t -> unit
(** §2.6: grow the disk and the open-file table, turning the fixed ND
    resource-exhaustion results into transient ones for recovery. *)

val snapshot_kstate : t -> int -> kstate_snapshot
(** Per-process kernel state (input position, open files, send sequence,
    duplicate filter, signal timers): Discount Checking preserves it at
    commit time and reconstructs it during recovery (§3). *)

val restore_kstate : t -> int -> kstate_snapshot -> unit

val kstate_to_words : kstate_snapshot -> int array
(** Serialize a snapshot to words so the checkpointer can persist it in
    reliable memory alongside the process image. *)

val kstate_of_words : int array -> kstate_snapshot
(** Inverse of {!kstate_to_words}.  Raises [Invalid_argument] on a
    truncated snapshot. *)

val note_commit : t -> int -> unit
(** The process committed: consumed messages need never be redelivered. *)

val requeue_uncommitted : t -> int -> unit
(** The process rolled back: redeliver the messages it consumed since
    its last commit, in order (the §2.1 recovery buffer). *)

val mailbox_nonempty : t -> int -> bool

(** {2 Dependency tracking (message-logging protocols)}

    Enabled by the engine when the protocol's style is [Causal_log] or
    [Optimistic_log]: sends piggyback the sender's dependency vector,
    receives merge it into the receiver's.  Vectors, incarnations and
    rollback barriers live {e outside} the snapshottable kernel state —
    the engine restores vectors from its own committed snapshots, and
    barriers must survive restores to keep filtering stale messages. *)

val enable_dependency_tracking : t -> unit
val dependency_tracking : t -> bool

val dv : t -> int -> Ft_core.Vclock.t
(** [dv t pid] — the live dependency vector.  Read and [Vclock.copy]
    freely; mutate only through {!dv_tick} and {!restore_dv}. *)

val dv_tick : t -> int -> unit
(** The process executed a tainting ND event: advance its own
    component. *)

val restore_dv : t -> int -> Ft_core.Vclock.t -> unit
(** Roll the vector back to a committed snapshot (copied in). *)

val incarnation : t -> int -> int

val note_sender_rollback : t -> int -> unit
(** The engine rolled [pid] back past some of its sends.  Call {e after}
    [restore_kstate]: bumps the incarnation and installs a barrier at the
    restored send sequence, so in-flight messages from the previous
    incarnation at or above it are dead — their redone replacements
    (possibly carrying different redrawn payloads) are the live ones. *)

val message_dead : t -> message -> bool
(** Did a sender rollback kill this message?  The receive path drops
    dead messages without advancing the duplicate filter. *)

(** {2 Bounded determinant log}

    Accounting for the logging protocols' determinant store, kept as
    per-owner counters [det_mark <= det_committed <= det_hi]
    (determinants retire in stamp order, so each live log is an
    interval).  Like incarnations, the counters live outside
    snapshottable kstate; the retirement watermark is derived from
    committed state only and survives restores — its monotonicity is
    the GC's crash-safety (re-entrancy) invariant. *)

val det_append : t -> int -> bool
(** A determinant was recorded for [pid]'s latest ND event.  Returns
    [true] when the store exceeds its hard cap — the caller must force
    a flush-to-checkpoint rather than let the log grow unbounded. *)

val det_note_commit : t -> int -> unit
(** [pid] committed: its determinants so far become retirable (pending
    the scheduler's dependents-committed check). *)

val det_drop_uncommitted : t -> int -> unit
(** [pid] rolled back: determinants since its last commit belonged to
    the dead lineage and are discarded (replay records fresh ones). *)

val det_retire : t -> int -> unit
(** Retire [pid]'s committed determinants, advancing the (monotone)
    watermark.  Call only once every live process's dependence on [pid]
    is itself committed. *)

val set_det_cap : t -> int -> unit
(** Hard cap on the total live determinant count; [0] disables. *)

val det_cap : t -> int
val det_live : t -> int
val det_live_of : t -> int -> int
val det_high_water : t -> int
val det_forced_flushes : t -> int

val note_forced_flush : t -> unit
(** Record that a cap hit forced a flush (reported by the engine). *)

val perturb : t -> salt:int -> unit
(** Environment perturbation for an escalated (rung L2) replay:
    reseed the kernel RNG stream (Random syscall results, jitter
    draws) from the base seed and [salt], and re-interleave each
    pending mailbox across senders — per-sender order is preserved, so
    the duplicate filter keeps absorbing rollback replays.
    Deterministic given (seed, salt). *)

val attach_net :
  ?policy:Ft_net.Policy.t ->
  ?link_policy:(int -> int -> Ft_net.Policy.t) ->
  ?rto_ns:int ->
  ?rto_max_ns:int ->
  ?backoff:float ->
  ?max_retries:int ->
  seed:int ->
  t ->
  message Ft_net.Transport.t
(** Interpose an {!Ft_net.Transport} between send and receive: sends
    travel a seeded, policy-driven unreliable channel (loss, duplication,
    reordering, delay, partitions) with retransmission, acks and
    in-order reassembly underneath the kernel's own [msg_seq] duplicate
    filter.  [policy] applies to every link; [link_policy src dst]
    overrides per direction.  Frames land in mailboxes when the engine
    pumps the transport.  Without this call the kernel's reliable path
    is untouched, byte for byte. *)

val net : t -> message Ft_net.Transport.t option
(** The attached transport, if any — the engine pumps it and consults
    reachability for 2PC timeouts. *)

val set_net : t -> ?base:int -> message Ft_net.Transport.t -> unit
(** Install a transport owned by someone else — the multi-tenant
    scheduler's shared transport.  This kernel's processes occupy the
    global pid range [base, base + nprocs) on it; the transport's
    [deliver] callback must route arrivals back through
    {!deliver_net}. *)

val net_base : t -> int
(** This kernel's offset into the (shared) transport pid space; 0 for a
    privately attached transport. *)

val deliver_net : t -> at:int -> dst:int -> message -> unit
(** Complete a transport delivery into local pid [dst]'s mailbox,
    stamping the arrival time.  Used by the shared-transport routing
    callback; {!attach_net} installs an equivalent private one. *)

val service :
  t -> pid:int -> now:int -> a0:int -> a1:int -> Ft_vm.Syscall.t -> result
(** Service one syscall at local time [now] with argument registers. *)

val syscall_count : t -> Ft_vm.Syscall.t -> int
(** How often a syscall was serviced; OS fault injection targets the
    kernel paths the workload exercises. *)

val file_length : t -> int -> int -> int
(** [file_length t pid name] — words written to the named file. *)

val file_word : t -> int -> int -> int -> int option
