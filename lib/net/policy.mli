(** Per-link fault policy for the unreliable channel: loss, duplication,
    reordering, extra delay, and (possibly asymmetric, possibly healing)
    partitions.  Pure data — the transport draws all randomness from its
    own seeded stream, so a sweep point reproduces from (policy, seed). *)

type partition = {
  part_from : int;  (** ns, inclusive *)
  part_until : int;  (** ns, exclusive; [max_int] never heals *)
  part_src : int;  (** -1 matches any source *)
  part_dst : int;  (** -1 matches any destination *)
  part_sym : bool;  (** also cuts the reverse direction *)
}

type t = {
  drop : float;  (** P(frame lost), per transmission attempt *)
  duplicate : float;  (** P(frame delivered twice) *)
  reorder : float;  (** P(frame delayed past its successors) *)
  reorder_ns : int;  (** extra delay a reordered frame suffers *)
  delay_ns : int;  (** fixed extra one-way delay *)
  jitter_ns : int;  (** max random extra delay *)
  partitions : partition list;
}

val reliable : t
(** No faults: the transport still sequences and acks, but every frame
    arrives exactly once, in order, after base latency. *)

val make :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?reorder_ns:int ->
  ?delay_ns:int ->
  ?jitter_ns:int ->
  ?partitions:partition list ->
  unit ->
  t

val partition :
  ?src:int ->
  ?dst:int ->
  ?symmetric:bool ->
  from_ns:int ->
  until_ns:int ->
  unit ->
  partition
(** [src]/[dst] default to -1 (any). *)

val partitioned : t -> src:int -> dst:int -> now:int -> bool
(** Is the [src]->[dst] direction cut at time [now]? *)

val faulty : t -> bool
(** Does the policy ever deviate from the reliable channel? *)
