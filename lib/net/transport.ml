(** The unreliable channel, and the machinery that survives it.

    The transport sits between kernel send and kernel receive.  Each
    ordered pair of processes is a {e link} with its own sequence-number
    space.  A send assigns the next link sequence number and transmits a
    frame; the link's {!Policy} decides whether the wire loses it, delays
    it, delivers it twice, or — during a partition window — swallows it
    outright.

    Reliability is layered back on top exactly the way a real stack does
    it:

    - the receiver side of a link delivers payloads {e in order} through
      a reassembly buffer keyed by sequence number, dropping frames it
      has already delivered (so wire-level duplicates and retransmission
      duplicates never reach the kernel twice);
    - every data arrival is answered with a {e cumulative ack}, itself
      sent over the unreliable reverse direction;
    - the sender retransmits unacknowledged frames on a per-frame timer
      with exponential backoff (jittered, capped), and after
      [max_retries] attempts declares the link {e failed} — the signal
      the engine turns into a [Net_unreachable] outcome instead of
      blocking forever.

    Everything is simulated time: events (arrivals, acks, retries) live
    in a priority queue keyed by (time, insertion id) and fire when the
    engine {!pump}s the transport past their timestamps.  All
    randomness comes from the transport's own seeded stream, never the
    kernel's, so attaching a reliable transport leaves existing runs
    byte-identical.  The payload type is abstract: the kernel hands us
    its message record and gets it back at delivery time. *)

type stats = {
  sends : int;          (* distinct payloads accepted from the kernel *)
  transmissions : int;  (* frames put on the wire, retransmits included *)
  retransmits : int;
  deliveries : int;     (* payloads handed up, in order, exactly once *)
  dup_frames : int;     (* frames discarded as already-delivered *)
  dropped : int;        (* frames lost to the loss rate *)
  cut : int;            (* frames swallowed by a partition *)
  acks : int;           (* acks sent (some of which the wire loses) *)
  gave_up : int;        (* frames abandoned after the retry budget *)
  payload_bytes : int;  (* measured size of distinct payloads accepted *)
  wire_bytes : int;     (* measured size crossing the wire, retransmits
                           included — the piggyback-overhead numerator *)
}

let zero_stats =
  {
    sends = 0;
    transmissions = 0;
    retransmits = 0;
    deliveries = 0;
    dup_frames = 0;
    dropped = 0;
    cut = 0;
    acks = 0;
    gave_up = 0;
    payload_bytes = 0;
    wire_bytes = 0;
  }

type 'a frame = { payload : 'a; mutable attempts : int }

(* One direction of one link.  Sender-side state: [next_seq], [acked],
   [outstanding].  Receiver-side state: [delivered], the [ooo]
   reassembly buffer.  [l_failed] latches when any frame exhausts its
   retry budget. *)
type 'a link = {
  l_src : int;
  l_dst : int;
  mutable next_seq : int;
  mutable acked : int;       (* highest cumulatively acked sequence *)
  outstanding : (int, 'a frame) Hashtbl.t;
  mutable delivered : int;   (* highest sequence delivered in order *)
  ooo : (int, 'a) Hashtbl.t; (* arrived out of order, awaiting the gap *)
  mutable l_failed : bool;
}

type 'a event =
  | Data of { e_src : int; e_dst : int; seq : int; payload : 'a }
  | Ack of { e_src : int; e_dst : int; upto : int }
      (* cumulative ack for link (e_src, e_dst), arriving back at e_src *)
  | Retry of { e_src : int; e_dst : int; seq : int }

module Q = Map.Make (struct
  type t = int * int (* time, insertion id: deterministic tie-break *)

  let compare = compare
end)

type 'a t = {
  nprocs : int;
  rng : Random.State.t;
  policy : int -> int -> Policy.t;  (* src dst *)
  latency_ns : int;
  jitter_ns : int;
  rto_ns : int;
  rto_max_ns : int;
  backoff : float;
  max_retries : int;
  deliver : at:int -> src:int -> dst:int -> 'a -> unit;
  measure : 'a -> int;  (* payload size in bytes, for overhead stats *)
  links : (int * int, 'a link) Hashtbl.t;
  mutable queue : 'a event Q.t;
  mutable next_id : int;
  mutable watermark : int;  (* pump has processed everything <= this *)
  mutable s_sends : int;
  mutable s_transmissions : int;
  mutable s_retransmits : int;
  mutable s_deliveries : int;
  mutable s_dup_frames : int;
  mutable s_dropped : int;
  mutable s_cut : int;
  mutable s_acks : int;
  mutable s_gave_up : int;
  mutable s_payload_bytes : int;
  mutable s_wire_bytes : int;
}

let create ?(policy = fun _ _ -> Policy.reliable) ?rto_ns
    ?(rto_max_ns = 50_000_000) ?(backoff = 2.0) ?(max_retries = 16)
    ?(measure = fun _ -> 0) ~seed ~nprocs ~latency_ns ~jitter_ns ~deliver () =
  let rto_ns =
    match rto_ns with
    | Some r -> max 1 r
    | None -> max 1_000 (4 * (latency_ns + jitter_ns))
  in
  {
    nprocs;
    rng = Random.State.make [| seed; 0x6e_65_74 |];
    policy;
    latency_ns;
    jitter_ns;
    rto_ns;
    rto_max_ns = max rto_ns rto_max_ns;
    backoff = (if backoff < 1.0 then 1.0 else backoff);
    max_retries = max 0 max_retries;
    deliver;
    measure;
    links = Hashtbl.create 16;
    queue = Q.empty;
    next_id = 0;
    watermark = 0;
    s_sends = 0;
    s_transmissions = 0;
    s_retransmits = 0;
    s_deliveries = 0;
    s_dup_frames = 0;
    s_dropped = 0;
    s_cut = 0;
    s_acks = 0;
    s_gave_up = 0;
    s_payload_bytes = 0;
    s_wire_bytes = 0;
  }

let stats t =
  {
    sends = t.s_sends;
    transmissions = t.s_transmissions;
    retransmits = t.s_retransmits;
    deliveries = t.s_deliveries;
    dup_frames = t.s_dup_frames;
    dropped = t.s_dropped;
    cut = t.s_cut;
    acks = t.s_acks;
    gave_up = t.s_gave_up;
    payload_bytes = t.s_payload_bytes;
    wire_bytes = t.s_wire_bytes;
  }

let link t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some l -> l
  | None ->
      let l =
        {
          l_src = src;
          l_dst = dst;
          next_seq = 0;
          acked = -1;
          outstanding = Hashtbl.create 8;
          delivered = -1;
          ooo = Hashtbl.create 8;
          l_failed = false;
        }
      in
      Hashtbl.add t.links (src, dst) l;
      l

let schedule t ~at ev =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.queue <- Q.add (at, id) ev t.queue

let flip t p = p > 0. && Random.State.float t.rng 1.0 < p
let jitter_draw t j = if j <= 0 then 0 else Random.State.int t.rng j

(* Exponential backoff with a cap and 25% jitter: the classic shape —
   quick first retry, then spread out, never past [rto_max_ns]. *)
let rto_after t attempts =
  let base =
    let scaled = float_of_int t.rto_ns *. (t.backoff ** float_of_int attempts) in
    if scaled >= float_of_int t.rto_max_ns then t.rto_max_ns
    else int_of_float scaled
  in
  base + jitter_draw t (max 1 (base / 4))

(* One wire attempt for frame [seq] of link [l].  The policy may cut,
   drop, delay, reorder (an extra delay past the frame's successors) or
   duplicate it; survivors become [Data] arrival events. *)
let transmit t ~now ~(l : _ link) ~seq payload =
  t.s_transmissions <- t.s_transmissions + 1;
  t.s_wire_bytes <- t.s_wire_bytes + t.measure payload;
  let pol = t.policy l.l_src l.l_dst in
  if Policy.partitioned pol ~src:l.l_src ~dst:l.l_dst ~now then
    t.s_cut <- t.s_cut + 1
  else if flip t pol.Policy.drop then t.s_dropped <- t.s_dropped + 1
  else begin
    let delay =
      t.latency_ns + jitter_draw t t.jitter_ns + pol.Policy.delay_ns
      + jitter_draw t pol.Policy.jitter_ns
    in
    let delay =
      if flip t pol.Policy.reorder then
        delay + max 1 pol.Policy.reorder_ns
        + jitter_draw t (max 1 pol.Policy.reorder_ns)
      else delay
    in
    let arrival = now + delay in
    schedule t ~at:arrival
      (Data { e_src = l.l_src; e_dst = l.l_dst; seq; payload });
    if flip t pol.Policy.duplicate then
      schedule t
        ~at:(arrival + 1 + jitter_draw t (max 1 t.latency_ns))
        (Data { e_src = l.l_src; e_dst = l.l_dst; seq; payload })
  end

let send t ~now ~src ~dst payload =
  if src < 0 || src >= t.nprocs || dst < 0 || dst >= t.nprocs then
    invalid_arg "Transport.send: pid out of range";
  let l = link t ~src ~dst in
  let seq = l.next_seq in
  l.next_seq <- seq + 1;
  t.s_sends <- t.s_sends + 1;
  t.s_payload_bytes <- t.s_payload_bytes + t.measure payload;
  Hashtbl.replace l.outstanding seq { payload; attempts = 0 };
  transmit t ~now ~l ~seq payload;
  schedule t ~at:(now + rto_after t 0) (Retry { e_src = src; e_dst = dst; seq })

(* The cumulative ack rides the reverse direction of the link and is
   just as mortal as data: partitions and the loss rate apply.  It is
   not retransmitted — the next data arrival re-acks, and sender-side
   retries cover the gap. *)
let send_ack t ~now ~(l : _ link) =
  t.s_acks <- t.s_acks + 1;
  let pol = t.policy l.l_dst l.l_src in
  if Policy.partitioned pol ~src:l.l_dst ~dst:l.l_src ~now then ()
  else if flip t pol.Policy.drop then ()
  else
    let arrival =
      now + t.latency_ns + jitter_draw t t.jitter_ns + pol.Policy.delay_ns
      + jitter_draw t pol.Policy.jitter_ns
    in
    schedule t ~at:arrival
      (Ack { e_src = l.l_src; e_dst = l.l_dst; upto = l.delivered })

let handle t ~at = function
  | Data { e_src; e_dst; seq; payload } ->
      let l = link t ~src:e_src ~dst:e_dst in
      if seq <= l.delivered || Hashtbl.mem l.ooo seq then
        (* wire-level duplicate or retransmission of a delivered frame:
           discard, but re-ack so the sender stops retrying *)
        t.s_dup_frames <- t.s_dup_frames + 1
      else begin
        Hashtbl.replace l.ooo seq payload;
        (* in-order delivery through the reassembly buffer: the kernel's
           per-sender msg_seq filter assumes FIFO arrival per sender, so
           the transport must never release frame n+1 before frame n *)
        let continue = ref true in
        while !continue do
          match Hashtbl.find_opt l.ooo (l.delivered + 1) with
          | None -> continue := false
          | Some p ->
              Hashtbl.remove l.ooo (l.delivered + 1);
              l.delivered <- l.delivered + 1;
              t.s_deliveries <- t.s_deliveries + 1;
              t.deliver ~at ~src:e_src ~dst:e_dst p
        done
      end;
      send_ack t ~now:at ~l
  | Ack { e_src; e_dst; upto } ->
      let l = link t ~src:e_src ~dst:e_dst in
      if upto > l.acked then begin
        for s = l.acked + 1 to upto do
          Hashtbl.remove l.outstanding s
        done;
        l.acked <- upto
      end
  | Retry { e_src; e_dst; seq } -> (
      let l = link t ~src:e_src ~dst:e_dst in
      match Hashtbl.find_opt l.outstanding seq with
      | None -> () (* acked in the meantime; the timer is a no-op *)
      | Some fr ->
          if fr.attempts >= t.max_retries then begin
            (* budget exhausted: abandon the frame and latch the link
               failed — graceful degradation, not an infinite retry *)
            Hashtbl.remove l.outstanding seq;
            t.s_gave_up <- t.s_gave_up + 1;
            l.l_failed <- true
          end
          else begin
            fr.attempts <- fr.attempts + 1;
            t.s_retransmits <- t.s_retransmits + 1;
            transmit t ~now:at ~l ~seq fr.payload;
            schedule t
              ~at:(at + rto_after t fr.attempts)
              (Retry { e_src; e_dst; seq })
          end)

let pump t ~now =
  if now > t.watermark then t.watermark <- now;
  let continue = ref true in
  while !continue do
    match Q.min_binding_opt t.queue with
    | Some ((at, _id), ev) when at <= t.watermark ->
        t.queue <- Q.remove (at, _id) t.queue;
        handle t ~at ev
    | _ -> continue := false
  done

let next_event t =
  match Q.min_binding_opt t.queue with
  | Some ((at, _), _) -> Some at
  | None -> None

let pending t = not (Q.is_empty t.queue)

(* Range-restricted views for a multi-tenant scheduler sharing one
   transport: a tenant owning global pids [lo, hi) must judge deadlock
   and degradation from its own links only, not from frames another
   tenant still has in flight.  Links never cross tenants, so an event's
   sending endpoint identifies its owner. *)
let event_src = function
  | Data { e_src; _ } | Ack { e_src; _ } | Retry { e_src; _ } -> e_src

let pending_in t ~lo ~hi =
  Q.exists (fun _ ev -> let s = event_src ev in lo <= s && s < hi) t.queue

let next_event_in t ~lo ~hi =
  Seq.fold_left
    (fun acc ((at, _), ev) ->
      match acc with
      | Some _ -> acc
      | None ->
          let s = event_src ev in
          if lo <= s && s < hi then Some at else None)
    None (Q.to_seq t.queue)

let any_failed_in t ~lo ~hi =
  Hashtbl.fold
    (fun (src, _) l acc -> acc || (l.l_failed && lo <= src && src < hi))
    t.links false

let reachable t ~src ~dst ~now =
  let pol = t.policy src dst in
  (not (Policy.partitioned pol ~src ~dst ~now))
  &&
  match Hashtbl.find_opt t.links (src, dst) with
  | Some l -> not l.l_failed
  | None -> true

let link_failed t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some l -> l.l_failed
  | None -> false

let any_failed t =
  Hashtbl.fold (fun _ l acc -> acc || l.l_failed) t.links false

(* Frames accepted but neither delivered nor abandoned yet — in flight,
   buffered out of order, or awaiting (re)transmission. *)
let in_flight t =
  Hashtbl.fold
    (fun _ l acc -> acc + Hashtbl.length l.outstanding + Hashtbl.length l.ooo)
    t.links 0
