(** Per-link fault policy for the unreliable channel.

    A policy describes what one direction of a link may do to frames in
    flight: lose them, deliver them twice, delay them past their
    successors, add fixed or random latency, or cut the link entirely
    for a window of simulated time (a partition — possibly asymmetric,
    possibly healing).  All randomness is drawn by the transport from
    its own seeded stream; the policy itself is pure data, so a sweep
    point is reproducible from (policy, seed) alone. *)

type partition = {
  part_from : int;   (* ns, inclusive *)
  part_until : int;  (* ns, exclusive; [max_int] never heals *)
  part_src : int;    (* -1 matches any source *)
  part_dst : int;    (* -1 matches any destination *)
  part_sym : bool;   (* also cuts the reverse direction *)
}

type t = {
  drop : float;       (* P(frame lost), per transmission attempt *)
  duplicate : float;  (* P(frame delivered twice) *)
  reorder : float;    (* P(frame delayed past its successors) *)
  reorder_ns : int;   (* extra delay a reordered frame suffers *)
  delay_ns : int;     (* fixed extra one-way delay *)
  jitter_ns : int;    (* max random extra delay *)
  partitions : partition list;
}

let reliable =
  {
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    reorder_ns = 0;
    delay_ns = 0;
    jitter_ns = 0;
    partitions = [];
  }

let make ?(drop = 0.) ?(duplicate = 0.) ?(reorder = 0.)
    ?(reorder_ns = 300_000) ?(delay_ns = 0) ?(jitter_ns = 0)
    ?(partitions = []) () =
  { drop; duplicate; reorder; reorder_ns; delay_ns; jitter_ns; partitions }

let partition ?(src = -1) ?(dst = -1) ?(symmetric = true) ~from_ns ~until_ns
    () =
  {
    part_from = from_ns;
    part_until = until_ns;
    part_src = src;
    part_dst = dst;
    part_sym = symmetric;
  }

let cuts p ~src ~dst ~now =
  let matches s d =
    (p.part_src = -1 || p.part_src = s) && (p.part_dst = -1 || p.part_dst = d)
  in
  now >= p.part_from && now < p.part_until
  && (matches src dst || (p.part_sym && matches dst src))

(* Is the [src]->[dst] direction cut at time [now]? *)
let partitioned t ~src ~dst ~now =
  List.exists (fun p -> cuts p ~src ~dst ~now) t.partitions

let faulty t =
  t.drop > 0. || t.duplicate > 0. || t.reorder > 0. || t.delay_ns > 0
  || t.jitter_ns > 0 || t.partitions <> []
