(** A seeded, policy-driven unreliable channel with the reliability
    machinery layered back on top: per-link sequence numbers, in-order
    delivery through a reassembly buffer, cumulative acks over the
    (equally unreliable) reverse path, and per-frame retransmission with
    jittered exponential backoff and a bounded retry budget.  A frame
    that exhausts its budget latches the link {e failed}; the engine
    surfaces that as [Net_unreachable] instead of blocking forever.

    Payloads are abstract ['a]: the kernel hands its message record in
    at {!send} and receives it back, exactly once and in per-link order,
    through the [deliver] callback during {!pump}.  All randomness comes
    from the transport's own stream seeded at {!create}, so attaching a
    transport never perturbs the kernel's RNG. *)

type stats = {
  sends : int;  (** distinct payloads accepted from the kernel *)
  transmissions : int;  (** frames put on the wire, retransmits included *)
  retransmits : int;
  deliveries : int;  (** payloads handed up, in order, exactly once *)
  dup_frames : int;  (** frames discarded as already-delivered *)
  dropped : int;  (** frames lost to the loss rate *)
  cut : int;  (** frames swallowed by a partition *)
  acks : int;  (** acks sent (some of which the wire loses) *)
  gave_up : int;  (** frames abandoned after the retry budget *)
  payload_bytes : int;
      (** measured size of distinct payloads accepted (see [measure]) *)
  wire_bytes : int;
      (** measured size crossing the wire, retransmits included — the
          numerator for piggyback-overhead accounting *)
}

val zero_stats : stats

type 'a t

val create :
  ?policy:(int -> int -> Policy.t) ->
  ?rto_ns:int ->
  ?rto_max_ns:int ->
  ?backoff:float ->
  ?max_retries:int ->
  ?measure:('a -> int) ->
  seed:int ->
  nprocs:int ->
  latency_ns:int ->
  jitter_ns:int ->
  deliver:(at:int -> src:int -> dst:int -> 'a -> unit) ->
  unit ->
  'a t
(** [policy src dst] is the fault policy of the [src]->[dst] direction
    (default: every link reliable).  [rto_ns] is the initial
    retransmission timeout (default [4 * (latency_ns + jitter_ns)],
    floor 1µs); successive retries back off by [backoff] (default 2.0)
    up to [rto_max_ns] (default 50ms), with 25% jitter.  After
    [max_retries] (default 16) attempts a frame is abandoned and its
    link latched failed.  [measure] sizes a payload in bytes for the
    [payload_bytes]/[wire_bytes] stats (default: everything is 0 bytes),
    letting callers quantify what dependency-vector piggybacking adds to
    each frame. *)

val send : 'a t -> now:int -> src:int -> dst:int -> 'a -> unit
(** Accept a payload for transmission at simulated time [now]. *)

val pump : 'a t -> now:int -> unit
(** Fire every queued event (arrival, ack, retry) with timestamp
    [<= max now watermark], in (time, insertion) order, invoking
    [deliver] for payloads that complete in-order.  Monotone: pumping
    never rewinds the watermark. *)

val next_event : 'a t -> int option
(** Timestamp of the earliest queued event — how far the engine must
    advance simulated time for the network to make progress when every
    process is blocked. *)

val pending : 'a t -> bool

val pending_in : 'a t -> lo:int -> hi:int -> bool
(** Like {!pending}, restricted to events whose sending endpoint lies in
    [lo, hi) — one tenant's slice of a shared transport.  Links never
    cross tenants, so this is exactly the tenant's own traffic. *)

val next_event_in : 'a t -> lo:int -> hi:int -> int option
(** Like {!next_event}, restricted to the [lo, hi) pid range. *)

val any_failed_in : 'a t -> lo:int -> hi:int -> bool
(** Like {!any_failed}, restricted to links whose source lies in
    [lo, hi). *)

val reachable : 'a t -> src:int -> dst:int -> now:int -> bool
(** No active partition cuts [src]->[dst] at [now] and the link has not
    exhausted a retry budget.  The 2PC coordinator's prepare check. *)

val link_failed : 'a t -> src:int -> dst:int -> bool
val any_failed : 'a t -> bool

val in_flight : 'a t -> int
(** Frames accepted but neither delivered nor abandoned yet. *)

val stats : 'a t -> stats
