type params = {
  window_ns : int;
  threshold : int;
  backoff_ns : int;
  backoff_mult : float;
  max_trips : int;
}

let default_params =
  {
    window_ns = 50_000_000;
    threshold = 3;
    backoff_ns = 20_000_000;
    backoff_mult = 2.0;
    max_trips = 3;
  }

type state = Closed | Open of { until_ns : int } | Half_open

type t = {
  p : params;
  mutable st : state;
  mutable recent : int list;  (* crash times, newest first *)
  mutable trips : int;
}

let create p = { p; st = Closed; recent = []; trips = 0 }
let state t = t.st
let trips t = t.trips

let park_duration t =
  let d =
    float_of_int t.p.backoff_ns
    *. (t.p.backoff_mult ** float_of_int (max 0 (t.trips - 1)))
  in
  int_of_float d

let trip t ~now_ns =
  t.trips <- t.trips + 1;
  if t.trips > t.p.max_trips then begin
    t.st <- Open { until_ns = max_int };
    `Latched
  end
  else begin
    let until_ns = now_ns + park_duration t in
    t.st <- Open { until_ns };
    t.recent <- [];
    `Park_until until_ns
  end

let note_crash t ~now_ns =
  match t.st with
  | Half_open ->
      (* The probe itself crashed: straight back to Open, longer park. *)
      trip t ~now_ns
  | Open { until_ns } when until_ns = max_int -> `Latched
  | Open _ | Closed ->
      t.recent <-
        now_ns :: List.filter (fun c -> now_ns - c <= t.p.window_ns) t.recent;
      if List.length t.recent >= t.p.threshold then trip t ~now_ns else `Ok

let note_progress t =
  t.st <- Closed;
  t.recent <- [];
  t.trips <- 0

let probe t ~now_ns =
  match t.st with
  | Closed | Half_open -> true
  | Open { until_ns } ->
      if until_ns <> max_int && now_ns >= until_ns then begin
        t.st <- Half_open;
        true
      end
      else false
