(** Per-tenant crash-loop circuit breaker (ladder rung L3).

    When a tenant crashes [threshold] times within a sliding
    [window_ns] of virtual time, the breaker trips [Open] and the
    tenant is parked until a probe deadline (exponential backoff per
    trip).  At the deadline the breaker goes [Half_open]: the tenant
    runs one probe; progress closes the breaker and clears its
    history, another crash re-trips it with a longer park.  After
    [max_trips] trips the breaker latches open for good and the tenant
    is handed back as unrecoverable — parked forever beats wrecking
    healthy tenants' tail latency.

    All times are virtual (simulated) nanoseconds; the breaker itself
    never reads a clock, callers pass [now_ns]. *)

type params = {
  window_ns : int;  (** sliding window for the crash-loop detector *)
  threshold : int;  (** crashes within the window that trip the breaker *)
  backoff_ns : int;  (** first park duration *)
  backoff_mult : float;  (** park growth per successive trip *)
  max_trips : int;  (** trips before latching open permanently *)
}

val default_params : params

type state = Closed | Open of { until_ns : int } | Half_open

type t

val create : params -> t
val state : t -> state
val trips : t -> int

val note_crash : t -> now_ns:int -> [ `Ok | `Park_until of int | `Latched ]
(** Record a crash at virtual time [now_ns].  [`Ok]: below threshold,
    keep recovering in place.  [`Park_until t]: the breaker tripped
    (or a half-open probe failed); park the tenant until [t].
    [`Latched]: [max_trips] exhausted, give the tenant up. *)

val note_progress : t -> unit
(** The tenant made progress: close the breaker and clear crash
    history and trip count. *)

val probe : t -> now_ns:int -> bool
(** [probe t ~now_ns] transitions [Open] to [Half_open] once [now_ns]
    reaches the park deadline; returns [true] if the tenant may run
    (Closed, Half_open, or deadline reached), [false] while parked. *)
