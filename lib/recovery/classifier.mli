(** Fault classification from observed replay behavior.

    The scheduler feeds every crash (with the machine icount at the
    fault and the environment salt in effect) and every
    progress-after-crash event into an accumulator; [classify] then
    labels the fault by how it responded to the escalation ladder:

    - [Bohrbug]: two consecutive identical-environment replays crashed
      at the same icount — the fault is deterministic; replay alone can
      never dodge it.
    - [Heisenbug]: the fault's manifestation depends on the
      environment — either a perturbed (L2) replay rescued it, or
      identical-environment replays crashed at different icounts before
      the process squeaked through.
    - [Transient]: one crash, then generic replay succeeded — the
      paper's recoverable case.
    - [Sticky]: crashed and never progressed again, with no
      determinism evidence (e.g. the ladder was too short to tell).
    - [Benign]: never crashed. *)

type verdict = Benign | Transient | Heisenbug | Bohrbug | Sticky

val verdict_to_string : verdict -> string
val verdict_of_string : string -> verdict option

type t
(** Mutable per-process observation accumulator. *)

val create : unit -> t

val note_crash : t -> salt:int -> icount:int -> unit
(** A crash at machine instruction [icount] while the environment was
    perturbed by [salt] ([salt = 0] means unperturbed). *)

val note_progress : t -> rung:int -> unit
(** The process made progress (committed past the fault) after one or
    more crashes; [rung] is the ladder rung of the last recovery action
    taken (0 = generic replay, 1 = deep rollback, 2 = perturbed
    replay). *)

val crashes : t -> int
val rescued : t -> bool

val same_icount_pair : t -> bool
(** Two consecutive crashes under the same salt at the same icount were
    observed (the Bohrbug signature). *)

val classify : t -> verdict
