(** Escalation ladder for recovery: what to try after each crash.

    Generic recovery (the paper's baseline) is rung L0: roll back to the
    last committed checkpoint and replay.  It fails for propagating
    faults — the replay deterministically re-executes the bug.  The
    ladder escalates through progressively more expensive remedies:

    - L0 replay: restore the last commit and re-execute (existing
      retry/backoff machinery).
    - L1 deep rollback: deliberately discard the last [l1_depth]
      committed checkpoints and replay from an earlier commit.  A
      controlled Save-work sacrifice — committed-but-corrupt state is
      abandoned, Consistency is never traded.
    - L2 perturbed replay: re-randomize the environment's
      non-deterministic decisions (kernel RNG stream, cross-sender
      message interleaving) so a Heisenbug's trigger conditions shift.
    - Give up: hand the process to the caller as [Recovery_failed]
      (in a fleet, the quarantine breaker takes over from here). *)

type action =
  | Replay  (** L0: generic rollback to last commit + replay *)
  | Deep_rollback of int
      (** L1: discard that many committed generations, then replay *)
  | Perturbed_replay of { salt : int }
      (** L2: replay with environment re-randomized by [salt] *)
  | Give_up  (** ladder exhausted *)

type t = {
  l0_attempts : int;  (** generic replays before escalating *)
  l1_attempts : int;  (** deep rollbacks before escalating *)
  l1_depth : int;  (** committed generations discarded per L1 attempt *)
  l2_attempts : int;  (** perturbed replays before giving up *)
}

val generic : t
(** L0 only: [l1_attempts = l2_attempts = 0].  Matches the engine's
    historical recovery budget of two replays. *)

val deep : t
(** L0 + L1, no perturbation. *)

val full : t
(** The whole ladder: L0, L1, then L2. *)

val by_name : string -> t option
(** ["generic"], ["deep"], ["full"]. *)

val name : t -> string
(** Inverse of {!by_name} for the stock ladders; a compact spec
    otherwise. *)

val decide : t -> attempt:int -> action
(** [decide t ~attempt] is the action for the [attempt]-th consecutive
    crash since the process last made progress (1-based). *)

val rung : action -> int
(** 0 for [Replay], 1 for [Deep_rollback], 2 for [Perturbed_replay],
    3 for [Give_up]. *)

val max_attempts : t -> int
(** Total crashes tolerated before {!decide} returns [Give_up]. *)
