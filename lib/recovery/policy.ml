type action =
  | Replay
  | Deep_rollback of int
  | Perturbed_replay of { salt : int }
  | Give_up

type t = {
  l0_attempts : int;
  l1_attempts : int;
  l1_depth : int;
  l2_attempts : int;
}

(* [generic] mirrors the engine's historical budget: two generic
   replays, then Recovery_failed. *)
let generic = { l0_attempts = 2; l1_attempts = 0; l1_depth = 1; l2_attempts = 0 }
let deep = { generic with l1_attempts = 2; l1_depth = 2 }
let full = { deep with l2_attempts = 3 }

let by_name = function
  | "generic" -> Some generic
  | "deep" -> Some deep
  | "full" -> Some full
  | _ -> None

let name t =
  if t = generic then "generic"
  else if t = deep then "deep"
  else if t = full then "full"
  else
    Printf.sprintf "l0:%d,l1:%dx%d,l2:%d" t.l0_attempts t.l1_attempts
      t.l1_depth t.l2_attempts

let decide t ~attempt =
  if attempt <= t.l0_attempts then Replay
  else if attempt <= t.l0_attempts + t.l1_attempts then Deep_rollback t.l1_depth
  else if attempt <= t.l0_attempts + t.l1_attempts + t.l2_attempts then
    (* A fresh salt per attempt: each perturbed replay explores a
       different environment, not the same dodge twice. *)
    Perturbed_replay { salt = attempt - t.l0_attempts - t.l1_attempts }
  else Give_up

let rung = function
  | Replay -> 0
  | Deep_rollback _ -> 1
  | Perturbed_replay _ -> 2
  | Give_up -> 3

let max_attempts t = t.l0_attempts + t.l1_attempts + t.l2_attempts
