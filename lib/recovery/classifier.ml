type verdict = Benign | Transient | Heisenbug | Bohrbug | Sticky

let verdict_to_string = function
  | Benign -> "benign"
  | Transient -> "transient"
  | Heisenbug -> "heisenbug"
  | Bohrbug -> "bohrbug"
  | Sticky -> "sticky"

let verdict_of_string = function
  | "benign" -> Some Benign
  | "transient" -> Some Transient
  | "heisenbug" -> Some Heisenbug
  | "bohrbug" -> Some Bohrbug
  | "sticky" -> Some Sticky
  | _ -> None

type t = {
  mutable crashes : int;
  mutable last : (int * int) option;  (* salt, icount of previous crash *)
  mutable pair : bool;  (* consecutive same-salt same-icount crashes seen *)
  mutable rescued : bool;
  mutable rescue_rung : int;
}

let create () =
  { crashes = 0; last = None; pair = false; rescued = false; rescue_rung = -1 }

let note_crash t ~salt ~icount =
  t.crashes <- t.crashes + 1;
  (match t.last with
  | Some (s, i) when s = salt && i = icount -> t.pair <- true
  | _ -> ());
  t.last <- Some (salt, icount)

(* [rescue_rung] is the HIGHEST rung whose replay went on to make
   progress, not the first: a run that limps through L0 once but only
   completes after a perturbed L2 replay was rescued by the
   perturbation, and the verdict must say so. *)
let note_progress t ~rung =
  if t.crashes > 0 then begin
    t.rescued <- true;
    if rung > t.rescue_rung then t.rescue_rung <- rung
  end

let crashes t = t.crashes
let rescued t = t.rescued
let same_icount_pair t = t.pair

let classify t =
  if t.crashes = 0 then Benign
  else if t.rescued && t.rescue_rung >= 2 then
    (* Only a perturbed environment let it through: the manifestation
       was environment-dependent even if identical-seed replays looked
       deterministic. *)
    Heisenbug
  else if t.pair then Bohrbug
  else if t.rescued then if t.crashes = 1 then Transient else Heisenbug
  else Sticky
