(* Benchmark harness.

   Running this executable does two things:

   1. Regenerates every table and figure of the paper's evaluation at a
      reduced scale and prints the same rows the paper reports (use
      `bin/main.exe all` for full-scale runs).

   2. Runs Bechamel micro/meso benchmarks: one Test.make per table and
      figure (timing the machinery that regenerates it), plus the
      ablations called out in DESIGN.md and micro-benchmarks of the core
      primitives (Save-work checking, dangerous-path coloring, VM
      interpretation, checkpoint commit/restore). *)

open Bechamel
open Toolkit

(* --- part 1: regenerate the evaluation ---------------------------------- *)

(* The bench regenerates through the same job lists the CLI sweeps use
   (no store: a bench run should always measure, never resume), on every
   available core. *)
let regenerate () =
  print_string
    (Ft_harness.Report.section "Figure 3: the protocol space");
  print_string (Ft_core.Protocol_space.render Ft_core.Protocol_space.all);
  let fig8_lookup =
    Ft_exp.Exp.eval_lookup
      (List.concat_map
         (Ft_harness.Figure8.jobs ~scale:0.25)
         Ft_harness.Figure8.all_apps)
  in
  List.iter
    (fun app ->
      print_string
        (Ft_harness.Figure8.render
           (Ft_harness.Figure8.of_records ~scale:0.25 app fig8_lookup)))
    Ft_harness.Figure8.all_apps;
  let both = [ Ft_harness.Table1.Nvi; Ft_harness.Table1.Postgres ] in
  let t1_lookup =
    Ft_exp.Exp.eval_lookup
      (List.concat_map
         (fun app -> Ft_harness.Table1.jobs ~target_crashes:15 ~app ())
         both)
  in
  List.iter
    (fun app ->
      let rows =
        Ft_harness.Table1.of_records ~target_crashes:15 ~app t1_lookup
      in
      print_string (Ft_harness.Table1.render ~app rows);
      if app = Ft_harness.Table1.Nvi then begin
        let v = Ft_harness.Table1.average rows /. 100. in
        print_string
          (Ft_harness.Analysis.render_conflict
             (Ft_harness.Analysis.conflict ~violation_rate:v ()))
      end)
    both;
  let t2_lookup =
    Ft_exp.Exp.eval_lookup
      (List.concat_map
         (fun app -> Ft_harness.Table2.jobs ~target_crashes:15 ~app ())
         both)
  in
  List.iter
    (fun app ->
      print_string
        (Ft_harness.Table2.render ~app
           (Ft_harness.Table2.of_records ~target_crashes:15 ~app t2_lookup)))
    both

(* --- part 1b: pool speedup meso-benchmark -------------------------------- *)

(* Wall-clock for one full Figure-8 regeneration (scale 0.25) at -j 1
   vs -j N: the headline number for the parallel runner.  On a
   single-core box the speedup hovers around 1x; report it rather than
   assert it. *)
let pool_speedup () =
  let jobs () =
    List.concat_map
      (Ft_harness.Figure8.jobs ~scale:0.25)
      Ft_harness.Figure8.all_apps
  in
  let time workers =
    let t0 = Unix.gettimeofday () in
    ignore (Ft_exp.Exp.eval ~workers (jobs ()));
    Unix.gettimeofday () -. t0
  in
  let n = Ft_exp.Pool.default_workers () in
  let serial = time 1 in
  let parallel = if n = 1 then serial else time n in
  print_string
    (Ft_harness.Report.section "Exp.Pool speedup (Figure 8 @ scale 0.25)");
  Printf.printf "-j 1 : %6.2f s\n" serial;
  Printf.printf "-j %-2d: %6.2f s\n" n parallel;
  (* A sub-microsecond parallel wall-clock (clock granularity, or a
     fully warm store) would print [inf]; report n/a instead. *)
  let speedup =
    if parallel < 1e-6 then None else Some (serial /. parallel)
  in
  Printf.printf "speedup: %s on %d core%s\n"
    (match speedup with Some s -> Printf.sprintf "%.2fx" s | None -> "n/a")
    n
    (if n = 1 then "" else "s");
  (serial, parallel, n, speedup)

(* --- part 2: bechamel tests ---------------------------------------------- *)

(* Tiny workload runs so each benchmark sample stays in the millisecond
   range. *)
let tiny_nvi () =
  Ft_apps.Nvi.workload
    ~params:{ Ft_apps.Nvi.small_params with Ft_apps.Nvi.keystrokes = 40 } ()

let tiny_magic () =
  Ft_apps.Magic.workload
    ~params:{ Ft_apps.Magic.small_params with Ft_apps.Magic.commands = 10 } ()

let tiny_xpilot () =
  Ft_apps.Xpilot.workload
    ~params:{ Ft_apps.Xpilot.small_params with Ft_apps.Xpilot.frames = 10 } ()

let tiny_treadmarks () =
  Ft_apps.Treadmarks.workload
    ~params:
      { Ft_apps.Treadmarks.small_params with
        Ft_apps.Treadmarks.bodies = 8; iters = 2 }
    ()

let run_workload ?(protocol = Ft_core.Protocols.cpvs)
    ?(medium = Ft_runtime.Checkpointer.Reliable_memory)
    ?(cost = Ft_runtime.Checkpointer.default_cost)
    ?(page_size = 64) (w : Ft_apps.Workload.t) =
  let cfg =
    Ft_apps.Workload.engine_config w
      { Ft_runtime.Engine.default_config with protocol; medium; cost;
        page_size }
  in
  let kernel = Ft_apps.Workload.kernel w in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs () in
  assert (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed);
  r

(* One Test.make per figure. *)
let fig3 =
  Test.make ~name:"fig3_protocol_space"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Ft_core.Protocol_space.render Ft_core.Protocol_space.all)))

let fig8 name mk =
  Test.make ~name
    (Staged.stage (fun () -> Sys.opaque_identity (run_workload (mk ()))))

let fig8a = fig8 "fig8a_nvi" tiny_nvi
let fig8b = fig8 "fig8b_magic" tiny_magic
let fig8c = fig8 "fig8c_xpilot" tiny_xpilot
let fig8d = fig8 "fig8d_treadmarks" tiny_treadmarks

let tiny_barnes_hut () =
  Ft_apps.Treadmarks.workload
    ~params:
      { Ft_apps.Treadmarks.tree_params with
        Ft_apps.Treadmarks.bodies = 8; iters = 2 }
    ()

let fig8d_tree = fig8 "fig8d_barnes_hut_tree" tiny_barnes_hut

(* One Test.make per table: a single-fault-type mini campaign. *)
let table1_bench =
  Test.make ~name:"table1_app_faults"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Ft_harness.Table1.campaign ~target_crashes:2 ~max_attempts:10
              ~app:Ft_harness.Table1.Postgres
              Ft_faults.Fault_type.Destination_reg)))

let table2_bench =
  Test.make ~name:"table2_os_faults"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Ft_harness.Table2.run ~target_crashes:2 ~max_attempts:6
              ~app:Ft_harness.Table1.Postgres ())))

(* Ablations (DESIGN.md §5). *)
let ablation_medium =
  Test.make ~name:"ablation_disk_commit"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (run_workload
              ~medium:(Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default)
              (tiny_nvi ()))))

let ablation_page_size page_size =
  Test.make ~name:(Printf.sprintf "ablation_page_%d" page_size)
    (Staged.stage (fun () ->
         Sys.opaque_identity (run_workload ~page_size (tiny_magic ()))))

let ablation_crash_early check_every =
  Test.make ~name:(Printf.sprintf "ablation_checks_every_%d" check_every)
    (Staged.stage (fun () ->
         let w =
           Ft_apps.Nvi.workload
             ~params:
               { Ft_apps.Nvi.small_params with
                 Ft_apps.Nvi.keystrokes = 40; check_every }
             ()
         in
         Sys.opaque_identity (run_workload w)))

(* Dispatch overhead of the experiment pool itself: a batch of no-op
   jobs, serial vs spawned domains.  The per-job cost is what a sweep
   pays on top of the engine work. *)
let micro_pool_dispatch workers =
  let jobs =
    List.init 64 (fun i ->
        Ft_exp.Job.make ~key:(Printf.sprintf "noop/%d" i) ~seed:i (fun () ->
            Ft_exp.Jstore.Int i))
  in
  Test.make ~name:(Printf.sprintf "micro_pool_dispatch_j%d" workers)
    (Staged.stage (fun () ->
         Sys.opaque_identity (Ft_exp.Pool.run ~workers jobs)))

let micro_jstore_roundtrip =
  let row =
    Ft_exp.Store.record_to_json
      {
        Ft_exp.Store.key = "bench/jstore/row";
        seed = 42;
        status = Ft_exp.Store.Completed;
        value =
          Ft_exp.Jstore.Obj
            [
              ("m", Ft_exp.Metrics.to_json Ft_exp.Metrics.zero);
              ("fps", Ft_exp.Jstore.Float 30.5);
            ];
        duration_s = 1.25;
      }
  in
  Test.make ~name:"micro_jstore_roundtrip"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Ft_exp.Jstore.of_string (Ft_exp.Jstore.to_string row))))

(* Micro-benchmarks of the core primitives. *)
let micro_save_work =
  let trace =
    let t = Ft_core.Trace.create ~nprocs:2 in
    for i = 0 to 99 do
      ignore
        (Ft_core.Trace.record t ~pid:(i mod 2)
           (if i mod 3 = 0 then Ft_core.Event.Nd Ft_core.Event.Transient
            else if i mod 3 = 1 then Ft_core.Event.Commit
            else Ft_core.Event.Visible i))
    done;
    t
  in
  Test.make ~name:"micro_save_work_check"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Ft_core.Save_work.violations trace)))

let micro_dangerous =
  let g =
    let edges = ref [] in
    for i = 0 to 199 do
      edges :=
        ( i,
          (i + 1) mod 200,
          if i mod 7 = 0 then Ft_core.State_graph.Transient_nd
          else if i mod 11 = 0 then Ft_core.State_graph.Fixed_nd
          else Ft_core.State_graph.Det )
        :: !edges
    done;
    Ft_core.State_graph.make ~nstates:200 ~edges:!edges ~crash_states:[ 77 ]
      ()
  in
  Test.make ~name:"micro_dangerous_paths"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Ft_core.Dangerous_paths.dangerous_edges g)))

let micro_vm =
  let code =
    Ft_vm.Asm.(
      compile
        (program
           [
             func "main" []
               [
                 Let ("i", Int 0);
                 While
                   ( Var "i" <: Int 1000,
                     [ Set_heap (Var "i" %: Int 256, Var "i" *: Var "i");
                       Set ("i", Var "i" +: Int 1) ] );
               ];
           ]))
  in
  Test.make ~name:"micro_vm_interpreter"
    (Staged.stage (fun () ->
         let m = Ft_vm.Machine.create ~heap_size:1024 code in
         (* drive through the engine's batched stepper *)
         while Ft_vm.Machine.is_running m do
           ignore (Ft_vm.Machine.step_n m 4096)
         done;
         Sys.opaque_identity (Ft_vm.Machine.icount m)))

(* Persisted-log commit vs the pre-torture heap-list design: the same
   transactional write pattern against a Vista whose undo log lives in
   region words (current) and against a minimal reimplementation of the
   old OCaml-list undo log.  Guards that persisting the log does not
   regress the failure-free commit cost Figure 8 rests on. *)
module Heap_list_log = struct
  type t = {
    region : Ft_stablemem.Rio.t;
    mutable undo : (int * int array) list;
    mutable commits : int;
  }

  let create region = { region; undo = []; commits = 0 }

  let write_range t ~off values =
    t.undo <- (off, Ft_stablemem.Rio.sub t.region ~off ~len:(Array.length values)) :: t.undo;
    Ft_stablemem.Rio.blit_in t.region ~off values

  let commit t =
    t.undo <- [];
    t.commits <- t.commits + 1
end

let commit_pattern ~write_range =
  (* 8 records of 64 words: the shape of a small page checkpoint *)
  let page = Array.make 64 7 in
  for i = 0 to 7 do
    write_range ~off:(i * 64) page
  done

(* Setup (region, checkpointer, machine, kernel) is hoisted OUT of the
   staged closures below: the timed body is one transaction/commit, not
   the construction of the rig around it. *)
let micro_vista_persisted_log =
  let v =
    Ft_stablemem.Vista.create ~data_words:1024
      (Ft_stablemem.Rio.create ~size:2048)
  in
  Test.make ~name:"micro_commit_persisted_log"
    (Staged.stage (fun () ->
         Ft_stablemem.Vista.begin_tx v;
         commit_pattern ~write_range:(fun ~off values ->
             Ft_stablemem.Vista.write_range v ~off values);
         Ft_stablemem.Vista.commit v;
         Sys.opaque_identity (Ft_stablemem.Vista.commits v)))

let micro_vista_heap_list =
  let v = Heap_list_log.create (Ft_stablemem.Rio.create ~size:2048) in
  Test.make ~name:"micro_commit_heap_list"
    (Staged.stage (fun () ->
         commit_pattern ~write_range:(fun ~off values ->
             Heap_list_log.write_range v ~off values);
         Heap_list_log.commit v;
         Sys.opaque_identity v.Heap_list_log.commits))

let micro_checkpoint =
  let ck =
    Ft_runtime.Checkpointer.create
      ~medium:Ft_runtime.Checkpointer.Reliable_memory ~nprocs:1
      ~heap_words:4096 ~stack_words:256 ()
  in
  let m = Ft_vm.Machine.create ~heap_size:4096 [| Ft_vm.Instr.Halt |] in
  let heap = Ft_vm.Machine.heap m in
  for i = 0 to 511 do
    Ft_vm.Memory.write heap i i
  done;
  let kernel = Ft_os.Kernel.create ~nprocs:1 () in
  let kstate = Ft_os.Kernel.snapshot_kstate kernel 0 in
  (* Flush the initial dirtying into checkpoint zero so each timed run
     commits the same 8-page delta. *)
  ignore (Ft_runtime.Checkpointer.commit ck ~pid:0 ~machine:m ~kstate);
  let tick = ref 0 in
  Test.make ~name:"micro_checkpoint_commit"
    (Staged.stage (fun () ->
         incr tick;
         (* Re-dirty 8 pages with fresh values: every run commits a real
            8-dirty-page checkpoint. *)
         for p = 0 to 7 do
           Ft_vm.Memory.write heap (p * 64) ((p * 64) + !tick)
         done;
         Sys.opaque_identity
           (Ft_runtime.Checkpointer.commit ck ~pid:0 ~machine:m ~kstate)))

(* The model checker's DFS over a small bound: one complete exhaustive
   exploration (schedules x crash points, memoized) per run. *)
let micro_mc_dfs =
  let program = Ft_mc.Model.default_program ~nprocs:2 ~depth:5 in
  Test.make ~name:"micro_mc_dfs_2x5"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Ft_mc.Checker.check ~spec:Ft_core.Protocols.cpvs
              ~defect:Ft_mc.Model.Honest ~program ())))

(* Channel goodput: payload messages per simulated second through the
   raw transport at increasing loss rates — what retransmission costs
   before any engine machinery is involved (DESIGN.md §3e).  Each point
   pushes a paced stream of messages down one link and drains the
   queues to completion. *)
let net_burst ~loss ~n =
  let delivered = ref 0 and last_ns = ref 1 in
  let policy _ _ = Ft_net.Policy.make ~drop:loss () in
  let t =
    Ft_net.Transport.create ~policy ~seed:7 ~nprocs:2 ~latency_ns:20_000
      ~jitter_ns:5_000
      ~deliver:(fun ~at ~src:_ ~dst:_ () ->
        incr delivered;
        if at > !last_ns then last_ns := at)
      ()
  in
  let gap = 5_000 (* one send per 5µs *) in
  for i = 0 to n - 1 do
    Ft_net.Transport.send t ~now:(i * gap) ~src:0 ~dst:1 ();
    Ft_net.Transport.pump t ~now:(i * gap)
  done;
  let now = ref (n * gap) in
  while Ft_net.Transport.pending t do
    (match Ft_net.Transport.next_event t with
    | Some ts -> now := max (!now + 1) ts
    | None -> incr now);
    Ft_net.Transport.pump t ~now:!now
  done;
  (!delivered, !last_ns, Ft_net.Transport.stats t)

let net_goodput ?(n = 10_000) () =
  print_string
    (Ft_harness.Report.section
       (Printf.sprintf "Channel goodput (Ft_net.Transport, %dk msgs, one link)"
          (n / 1000)));
  List.map
    (fun loss ->
      let delivered, last_ns, s = net_burst ~loss ~n in
      let goodput = float_of_int delivered /. (float_of_int last_ns /. 1e9) in
      Printf.printf
        "loss %3.0f%%: %5d/%d delivered, %6d transmissions (%4.1f%% rtx), goodput %8.0f msgs/s\n"
        (100. *. loss) delivered n s.Ft_net.Transport.transmissions
        (100.
        *. float_of_int s.Ft_net.Transport.retransmits
        /. float_of_int (max 1 s.Ft_net.Transport.transmissions))
        goodput;
      (loss, delivered, goodput))
    [ 0.0; 0.05; 0.20 ]

let micro_net_transport loss =
  Test.make
    ~name:(Printf.sprintf "micro_net_loss_%d" (int_of_float (100. *. loss)))
    (Staged.stage (fun () ->
         Sys.opaque_identity (net_burst ~loss ~n:256)))

(* The bounded determinant store's full lifecycle at fleet width:
   append round-robin across owners, then commit and retire every
   owner's log — the per-commit GC work the logging protocols add on
   top of the checkpoint itself.  Live count returns to zero each run,
   so samples are independent. *)
let micro_determinant_gc_bench =
  let nprocs = 8 in
  let kernel = Ft_os.Kernel.create ~nprocs () in
  Test.make ~name:"micro_determinant_gc"
    (Staged.stage (fun () ->
         for i = 0 to 255 do
           ignore (Ft_os.Kernel.det_append kernel (i mod nprocs) : bool)
         done;
         for pid = 0 to nprocs - 1 do
           Ft_os.Kernel.det_note_commit kernel pid;
           Ft_os.Kernel.det_retire kernel pid
         done;
         Sys.opaque_identity (Ft_os.Kernel.det_live kernel)))

(* The per-message data path dependency-vector piggybacking adds to a
   send/receive pair under CAUSAL-LOG/OPTIMISTIC: the sender ticks and
   snapshots its vector, the receiver merges it — 256 messages around a
   ring at an 8-process fleet width. *)
let micro_vclock_piggyback =
  let nprocs = 8 in
  let dvs = Array.init nprocs (fun _ -> Ft_core.Vclock.create nprocs) in
  Test.make ~name:"micro_vclock_piggyback"
    (Staged.stage (fun () ->
         for i = 0 to 255 do
           let src = i mod nprocs and dst = (i + 1) mod nprocs in
           Ft_core.Vclock.tick dvs.(src) src;
           let piggyback = Ft_core.Vclock.copy dvs.(src) in
           Ft_core.Vclock.merge_into ~into:dvs.(dst) piggyback
         done;
         Sys.opaque_identity dvs))

(* The escalation ladder end to end: a deterministic wild jump planted
   in place of the echo loop's Halt crashes every replay at the same
   point, so the full ladder burns its whole budget — two generic
   replays, two deep rollbacks, three perturbed replays — classifying
   the fault Bohrbug and giving up.  Times the recovery machinery
   itself: restore, deep rollback re-commit, kernel perturbation,
   sequenced-egress absorption. *)
let micro_classifier_replay =
  let code =
    let c =
      Ft_vm.Asm.(
        compile
          (program
             [
               func "main" []
                 [
                   Let ("c", Int 0);
                   Let ("quit", Int 0);
                   While
                     ( Not (Var "quit"),
                       [
                         Set ("c", Input);
                         If
                           ( Var "c" <: Int 0,
                             [ Set ("quit", Int 1) ],
                             [ Output (Var "c" *: Int 2) ] );
                       ] );
                 ];
             ]))
    in
    Array.iteri
      (fun i ins -> if ins = Ft_vm.Instr.Halt then c.(i) <- Ft_vm.Instr.Jmp (-1))
      c;
    c
  in
  Test.make ~name:"micro_classifier_replay"
    (Staged.stage (fun () ->
         let kernel = Ft_os.Kernel.create ~nprocs:1 () in
         Ft_os.Kernel.set_input kernel 0
           (Ft_os.Kernel.scripted_input ~start:0 ~interval_ns:1_000_000
              [ 3; 1; 4; 1 ]);
         let cfg =
           {
             Ft_runtime.Engine.default_config with
             policy = Some Ft_recovery.Policy.full;
           }
         in
         Sys.opaque_identity
           (Ft_runtime.Engine.execute ~cfg ~kernel ~programs:[| code |] ())))

(* The multi-tenant scheduler end to end on a small fleet: build the
   postgres tenants, drive every one to its verdict. *)
let micro_serve_fleet =
  Test.make ~name:"micro_serve_fleet_8x20"
    (Staged.stage (fun () ->
         let s =
           Ft_harness.Serve.fleet ~tenants:8 ~queries_per_tenant:20 ~seed:5 ()
         in
         Sys.opaque_identity (Ft_runtime.Scheduler.run s)))

(* Fleet scheduler throughput (scheduling steps per wall second) and the
   tail latency of a tiny oracle-checked campaign — the units `ft serve`
   reports, tracked across PRs in BENCH_RESULTS.json. *)
let serve_stats ~quick () =
  print_string
    (Ft_harness.Report.section "Fleet scheduler (ft serve units)");
  let tenants = if quick then 8 else 32 in
  let sched =
    Ft_harness.Serve.fleet ~tenants ~queries_per_tenant:50 ~seed:11 ()
  in
  let t0 = Unix.gettimeofday () in
  ignore (Ft_runtime.Scheduler.run sched);
  let dt = Unix.gettimeofday () -. t0 in
  let steps = Ft_runtime.Scheduler.steps sched in
  let rate = if dt < 1e-6 then 0. else float_of_int steps /. dt in
  Printf.printf
    "scheduler: %d tenants, %d steps in %6.3f s = %9.0f steps/s\n" tenants
    steps dt rate;
  let report =
    Ft_harness.Serve.run ~quiet:true
      { Ft_harness.Serve.smoke_params with seed = 11 }
  in
  let p999 =
    match report.Ft_harness.Serve.summaries with
    | s :: _ -> s.Ft_harness.Serve.s_p999_ns
    | [] -> 0
  in
  Printf.printf "p999     : %d ns (smoke fleet, CPVS, kills on)\n" p999;
  (rate, p999)

(* Rescued fraction per escalation rung on the smoke campaign, plus the
   quarantine breaker on a one-looper fleet — the `ft rescue` / `ft
   serve --poison` units, tracked across PRs in BENCH_RESULTS.json. *)
let rescue_stats () =
  print_string
    (Ft_harness.Report.section "Escalating recovery (ft rescue smoke units)");
  let r = Ft_harness.Rescue.run ~quiet:true Ft_harness.Rescue.smoke_spec in
  List.iter
    (fun s ->
      Printf.printf "%-8s rescued %3.0f%% of %d crashed runs (L0 %d, L1 %d, L2 %d)\n"
        s.Ft_harness.Rescue.l_name
        (100. *. Ft_harness.Rescue.ladder_rescued_frac s)
        s.Ft_harness.Rescue.l_crashes s.Ft_harness.Rescue.l_rescued_by_rung.(0)
        s.Ft_harness.Rescue.l_rescued_by_rung.(1)
        s.Ft_harness.Rescue.l_rescued_by_rung.(2))
    (Ft_harness.Rescue.summaries r);
  Ft_harness.Rescue.bench_kv r

let quarantine_stats () =
  let report =
    Ft_harness.Serve.run ~quiet:true
      { Ft_harness.Serve.smoke_params with seed = 11; poison = 1 }
  in
  let kv =
    List.filter
      (fun (k, _) ->
        let suffix s = String.length k >= String.length s
                       && String.sub k (String.length k - String.length s)
                            (String.length s) = s in
        suffix "quarantined_tenants" || suffix "crash_loop_events")
      (Ft_harness.Serve.bench_kv report)
  in
  List.iter
    (fun (k, v) ->
      Printf.printf "%-36s %s\n" k (Ft_exp.Jstore.to_string v))
    kv;
  kv

(* MTTR when the recovery path itself crashes: the smoke fleet with
   Poisson nested-failure injection and the determinant cap armed — the
   `ft serve --recovery-crash-rate` units, tracked across PRs in
   BENCH_RESULTS.json. *)
let nested_stats () =
  print_string
    (Ft_harness.Report.section
       "Nested failures (ft serve recovery-crash units)");
  let report =
    Ft_harness.Serve.run ~quiet:true
      ~protocols:(Ft_core.Protocols.cpvs :: Ft_core.Protocols.message_logging)
      { Ft_harness.Serve.smoke_params with
        seed = 11; recovery_crash_rate = 2.0 }
  in
  let kv =
    List.filter
      (fun (k, _) ->
        let suffix s =
          String.length k >= String.length s
          && String.sub k (String.length k - String.length s)
               (String.length s) = s
        in
        k = "serve_mttr_nested_ns" || suffix "nested_crashes"
        || suffix "det_high_water" || suffix "det_forced_flushes")
      (Ft_harness.Serve.bench_kv report)
  in
  List.iter
    (fun (k, v) -> Printf.printf "%-36s %s\n" k (Ft_exp.Jstore.to_string v))
    kv;
  kv

(* Asynchronous dependent commits vs 2PC: the same distributed workload
   under the global-round protocol (CPVS commits every process at every
   visible) and the message-logging pair (piggybacked dependency
   vectors, commits covering only the causally tainted set).  NO-COMMIT
   is the sim-time baseline. *)
let async_commit_stats () =
  print_string
    (Ft_harness.Report.section
       "Async dependent commit vs 2PC (treadmarks, scale 0.2)");
  let w () =
    Ft_harness.Figure8.workload ~scale:0.2 Ft_harness.Figure8.Treadmarks
  in
  let mem = Ft_runtime.Checkpointer.Reliable_memory in
  let base =
    Ft_exp.Metrics.of_result
      (Ft_harness.Figure8.run_once ~w:(w ())
         ~protocol:Ft_core.Protocols.no_commit ~medium:mem ~seed:42)
  in
  List.map
    (fun proto ->
      let m =
        Ft_exp.Metrics.of_result
          (Ft_harness.Figure8.run_once ~w:(w ()) ~protocol:proto ~medium:mem
             ~seed:42)
      in
      let ovh =
        Ft_harness.Figure8.overhead ~baseline:base.Ft_exp.Metrics.sim_time_ns
          m.Ft_exp.Metrics.sim_time_ns
      in
      Printf.printf "%-12s %5d commits  %6d logged  overhead %5.1f%%\n"
        proto.Ft_core.Protocol.spec_name m.Ft_exp.Metrics.commits
        m.Ft_exp.Metrics.logged_events ovh;
      (proto.Ft_core.Protocol.spec_name, m.Ft_exp.Metrics.commits, ovh))
    Ft_core.Protocols.[ cpvs; cpv_2pc; causal_log; optimistic ]

(* Checker throughput in model states per second, the unit DESIGN.md
   quotes for exploration budgets. *)
let mc_throughput ?(depth = 6) () =
  print_string
    (Ft_harness.Report.section "Model checker throughput (states/sec)");
  let program = Ft_mc.Model.default_program ~nprocs:2 ~depth in
  List.map
    (fun spec ->
      let t0 = Unix.gettimeofday () in
      let s = Ft_mc.Checker.check ~spec ~defect:Ft_mc.Model.Honest ~program () in
      let dt = Unix.gettimeofday () -. t0 in
      let rate =
        if dt < 1e-6 then 0. else float_of_int s.Ft_mc.Checker.nodes /. dt
      in
      Printf.printf
        "%-12s %5d nodes %6d runs %8d steps in %6.3fs = %9.0f states/s\n"
        spec.Ft_core.Protocol.spec_name s.Ft_mc.Checker.nodes
        s.Ft_mc.Checker.runs s.Ft_mc.Checker.steps dt rate;
      (spec.Ft_core.Protocol.spec_name, rate))
    Ft_core.Protocols.figure8_extended

let tests =
  [
    fig3; fig8a; fig8b; fig8c; fig8d; fig8d_tree; table1_bench;
    table2_bench;
    ablation_medium; ablation_page_size 16; ablation_page_size 256;
    ablation_crash_early 1; ablation_crash_early 32; micro_save_work;
    micro_dangerous; micro_vm; micro_vista_persisted_log;
    micro_vista_heap_list; micro_checkpoint; micro_mc_dfs;
    micro_serve_fleet; micro_classifier_replay; micro_pool_dispatch 1;
  ]
  (* On a single-core box the default pool is 1 worker: running the
     dispatch bench twice under the same name would emit a duplicate
     JSON key. *)
  @ (let dw = Ft_exp.Pool.default_workers () in
     if dw > 1 then [ micro_pool_dispatch dw ] else [])
  @ [
      micro_jstore_roundtrip; micro_net_transport 0.0; micro_net_transport 0.2;
      micro_vclock_piggyback; micro_determinant_gc_bench;
    ]

let run_benchmarks ~quota_s () =
  print_string
    (Ft_harness.Report.section "Bechamel benchmarks (ns per run, OLS)");
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second quota_s) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let raw = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ x ] -> x
            | _ -> nan
          in
          Printf.printf "%-28s %14.0f ns/run  (%d samples)\n"
            (Test.Elt.name elt) ns raw.Benchmark.stats.Benchmark.samples;
          (Test.Elt.name elt, ns))
        (Test.elements test))
    tests

(* --- machine-readable trajectory (BENCH_RESULTS.json) -------------------- *)

(* One JSON object per bench invocation: ns/run per bechamel test, the
   Figure-8 regeneration wall-clock, channel goodput and model-checker
   throughput — the numbers EXPERIMENTS.md tracks across PRs.  Keys
   this invocation did not produce (a committed full run's
   [figure8_scale025] under [--quick], serve's merged metrics) are kept
   from the existing file: the CI schema gate requires the key set only
   ever to grow. *)
let write_json ~path ~quick ~fig8 ~mc ~goodput ~commit_panel ~serve ~rescue
    ~quarantine ~nested ~bechamel =
  let open Ft_exp.Jstore in
  let fresh =
    ([ ("schema", String "ft-bench/1"); ("quick", Bool quick) ]
      @ (match fig8 with
        | None -> []
        | Some (serial, parallel, workers, speedup) ->
            [
              ( "figure8_scale025",
                Obj
                  [
                    ("serial_s", Float serial);
                    ("parallel_s", Float parallel);
                    ("workers", Int workers);
                    ( "speedup",
                      match speedup with Some s -> Float s | None -> Null );
                  ] );
            ])
      @ (let steps_per_s, p999 = serve in
         [
           ("serve_sched_steps_per_s", Float steps_per_s);
           ("serve_p999_ns", Int p999);
         ])
      @ rescue @ quarantine @ nested
      @ [
          ( "mc_states_per_s",
            Obj (List.map (fun (name, r) -> (name, Float r)) mc) );
          ( "async_commit_vs_2pc",
            Obj
              (List.map
                 (fun (name, commits, ovh) ->
                   ( name,
                     Obj
                       [
                         ("commits", Int commits);
                         ("overhead_pct", Float ovh);
                       ] ))
                 commit_panel) );
          ( "net_goodput",
            List
              (List.map
                 (fun (loss, delivered, gp) ->
                   Obj
                     [
                       ("loss", Float loss);
                       ("delivered", Int delivered);
                       ("msgs_per_s", Float gp);
                     ])
                 goodput) );
          ( "bechamel_ns_per_run",
            Obj (List.map (fun (name, ns) -> (name, Float ns)) bechamel) );
        ])
  in
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match of_string (String.trim s) with
      | Ok (Obj kvs) -> kvs
      | _ -> []
    end
    else []
  in
  let kept =
    List.filter (fun (k, _) -> not (List.mem_assoc k fresh)) existing
  in
  let obj = Obj (fresh @ kept) in
  let oc = open_out path in
  output_string oc (to_string obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nbench: wrote %s\n" path

let () =
  let json_path = ref None and quick = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %s (usage: bench [--quick] [--json PATH])\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick in
  (* --quick: CI smoke mode.  Skips the full evaluation regeneration and
     the serial-vs-parallel Figure-8 timing, shrinks the mc bound and the
     goodput burst, and cuts the bechamel quota — same JSON shape, small
     enough to run on every push. *)
  let fig8 =
    if quick then None
    else begin
      regenerate ();
      Some (pool_speedup ())
    end
  in
  let mc = mc_throughput ~depth:(if quick then 5 else 6) () in
  let goodput = net_goodput ~n:(if quick then 2_000 else 10_000) () in
  let commit_panel = async_commit_stats () in
  let serve = serve_stats ~quick () in
  let rescue = rescue_stats () in
  let quarantine = quarantine_stats () in
  let nested = nested_stats () in
  let bechamel = run_benchmarks ~quota_s:(if quick then 0.05 else 0.5) () in
  (match !json_path with
  | Some path ->
      write_json ~path ~quick ~fig8 ~mc ~goodput ~commit_panel ~serve ~rescue
        ~quarantine ~nested ~bechamel
  | None -> ());
  print_endline "\nbench: done."
