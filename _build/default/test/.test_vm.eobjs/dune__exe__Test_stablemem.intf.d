test/test_stablemem.mli:
