test/test_apps.ml: Alcotest Array Ft_apps Ft_core Ft_os Ft_runtime Ft_stablemem List Printf
