test/test_props.ml: Alcotest Array Conformance Consistency Event Ft_core Ft_os Ft_runtime Ft_stablemem Ft_vm Lazy List Printf Protocol Protocols QCheck QCheck_alcotest Save_work String
