test/test_vm.ml: Alcotest Ft_vm
