test/test_faults.ml: Alcotest Array Ft_faults Ft_os Ft_runtime Ft_vm List QCheck QCheck_alcotest Random
