test/test_harness.ml: Alcotest Ft_core Ft_faults Ft_harness List String
