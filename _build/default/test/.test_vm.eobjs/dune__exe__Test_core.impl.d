test/test_core.ml: Alcotest Array Consistency Dangerous_paths Event Format Ft_core List Lose_work Printf Protocol_space Protocols QCheck QCheck_alcotest Save_work State_graph String Trace Vclock
