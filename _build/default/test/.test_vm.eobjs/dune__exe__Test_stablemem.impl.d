test/test_stablemem.ml: Alcotest Array Disk Ft_stablemem List QCheck QCheck_alcotest Rio Vista
