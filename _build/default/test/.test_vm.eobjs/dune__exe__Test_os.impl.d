test/test_os.ml: Alcotest Ft_core Ft_os Ft_vm Option
