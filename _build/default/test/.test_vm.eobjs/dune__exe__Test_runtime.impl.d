test/test_runtime.ml: Alcotest Array Ft_core Ft_os Ft_runtime Ft_stablemem Ft_vm List
