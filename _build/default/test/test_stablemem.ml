(* Tests for the Rio/Vista/Disk substrate: persistence accounting, undo-log
   atomicity (including crash-during-commit), and the disk cost model. *)

open Ft_stablemem

let test_rio_basics () =
  let r = Rio.create ~size:64 in
  Rio.write r 3 42;
  Alcotest.(check int) "read back" 42 (Rio.read r 3);
  Rio.blit_in r ~off:10 [| 1; 2; 3 |];
  Alcotest.(check (list int)) "blit out" [ 1; 2; 3 ]
    (Array.to_list (Rio.sub r ~off:10 ~len:3));
  Alcotest.(check int) "write accounting" 4 (Rio.words_written r)

let test_rio_bounds () =
  let r = Rio.create ~size:8 in
  Alcotest.check_raises "oob write" (Invalid_argument "Rio.write: out of range")
    (fun () -> Rio.write r 8 1);
  Alcotest.check_raises "oob blit"
    (Invalid_argument "Rio.blit_in: out of range") (fun () ->
      Rio.blit_in r ~off:6 [| 1; 2; 3 |])

let test_vista_commit () =
  let r = Rio.create ~size:32 in
  let v = Vista.create r in
  Vista.begin_tx v;
  Vista.write_range v ~off:0 [| 7; 8; 9 |];
  Vista.commit v;
  Alcotest.(check (list int)) "committed" [ 7; 8; 9 ]
    (Array.to_list (Rio.sub r ~off:0 ~len:3));
  Alcotest.(check int) "one commit" 1 (Vista.commits v)

let test_vista_abort_restores () =
  let r = Rio.create ~size:32 in
  let v = Vista.create r in
  Vista.begin_tx v;
  Vista.write_range v ~off:0 [| 1; 1; 1 |];
  Vista.commit v;
  Vista.begin_tx v;
  Vista.write_range v ~off:0 [| 2; 2; 2 |];
  Vista.write_word v ~off:1 99;
  Alcotest.(check int) "mid-tx visible" 99 (Rio.read r 1);
  Vista.abort v;
  Alcotest.(check (list int)) "before-images applied" [ 1; 1; 1 ]
    (Array.to_list (Rio.sub r ~off:0 ~len:3))

let test_vista_crash_mid_commit () =
  (* a crash with an open transaction recovers to the previous state *)
  let r = Rio.create ~size:32 in
  let v = Vista.create r in
  Vista.begin_tx v;
  Vista.write_range v ~off:4 [| 5; 5 |];
  Vista.commit v;
  Vista.begin_tx v;
  Vista.write_range v ~off:4 [| 6; 6 |];
  (* crash here: recovery runs the undo log *)
  Vista.recover v;
  Alcotest.(check (list int)) "rolled back to last commit" [ 5; 5 ]
    (Array.to_list (Rio.sub r ~off:4 ~len:2));
  Alcotest.(check bool) "no open tx" false (Vista.in_tx v)

let test_vista_nesting_rejected () =
  let v = Vista.create (Rio.create ~size:8) in
  Vista.begin_tx v;
  Alcotest.check_raises "no nesting"
    (Invalid_argument "Vista.begin_tx: transaction already open") (fun () ->
      Vista.begin_tx v)

let test_disk_costs () =
  let d = Disk.default in
  Alcotest.(check bool) "access dominates small writes" true
    (Disk.write_cost d ~words:1 < Disk.write_cost d ~words:100_000);
  Alcotest.(check int) "zero words still pays access" d.Disk.access_ns
    (Disk.write_cost d ~words:0);
  Alcotest.(check bool) "commit pays two accesses" true
    (Disk.commit_cost d ~words:0 = 2 * d.Disk.access_ns);
  Alcotest.(check bool) "fast disk is faster" true
    (Disk.write_cost Disk.fast ~words:100 < Disk.write_cost d ~words:100)

(* qcheck: any interleaving of committed and aborted transactions leaves
   the region equal to replaying only the committed ones. *)
let prop_vista_atomicity =
  QCheck.Test.make ~name:"aborted transactions leave no trace" ~count:200
    QCheck.(
      list_of_size (QCheck.Gen.int_bound 20)
        (triple (0 -- 27) (0 -- 100) bool))
    (fun ops ->
      let r = Rio.create ~size:32 in
      let v = Vista.create r in
      let model = Array.make 32 0 in
      List.iter
        (fun (off, value, commit) ->
          Vista.begin_tx v;
          Vista.write_range v ~off [| value; value + 1 |];
          if commit then begin
            Vista.commit v;
            model.(off) <- value;
            model.(off + 1) <- value + 1
          end
          else Vista.abort v)
        ops;
      Array.to_list (Rio.sub r ~off:0 ~len:32) = Array.to_list model)

let tests =
  [
    Alcotest.test_case "rio basics" `Quick test_rio_basics;
    Alcotest.test_case "rio bounds" `Quick test_rio_bounds;
    Alcotest.test_case "vista commit" `Quick test_vista_commit;
    Alcotest.test_case "vista abort" `Quick test_vista_abort_restores;
    Alcotest.test_case "vista crash mid-commit" `Quick
      test_vista_crash_mid_commit;
    Alcotest.test_case "vista nesting" `Quick test_vista_nesting_rejected;
    Alcotest.test_case "disk costs" `Quick test_disk_costs;
    QCheck_alcotest.to_alcotest prop_vista_atomicity;
  ]

let () = Alcotest.run "ft_stablemem" [ ("stablemem", tests) ]
