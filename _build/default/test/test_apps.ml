(* Tests for the five workload applications: each must run to completion,
   produce deterministic visible output given its input script, uphold
   Save-work under its protocol, and (for the uniprocess apps) recover
   consistently from injected stop failures. *)

let run ?(protocol = Ft_core.Protocols.cpvs) ?(kills = [])
    ?(medium = Ft_runtime.Checkpointer.Reliable_memory) ?(seed = 42)
    (w : Ft_apps.Workload.t) =
  let cfg =
    Ft_apps.Workload.engine_config w
      { Ft_runtime.Engine.default_config with protocol; kills; medium }
  in
  let kernel = Ft_apps.Workload.kernel ~seed w in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs () in
  r

let check_completed name (r : Ft_runtime.Engine.result) =
  Alcotest.(check bool)
    (name ^ " completes")
    true
    (r.Ft_runtime.Engine.outcome = Ft_runtime.Engine.Completed)

(* --- nvi ---------------------------------------------------------------- *)

let nvi () = Ft_apps.Nvi.workload ~params:Ft_apps.Nvi.small_params ()

let test_nvi_runs () =
  let r = run (nvi ()) in
  check_completed "nvi" r;
  Alcotest.(check int) "one visible per keystroke plus goodbye"
    (Ft_apps.Nvi.small_params.Ft_apps.Nvi.keystrokes + 1)
    (List.length r.Ft_runtime.Engine.visible)

let test_nvi_deterministic () =
  let a = run (nvi ()) and b = run (nvi ()) in
  Alcotest.(check (list int)) "same script, same screens"
    a.Ft_runtime.Engine.visible b.Ft_runtime.Engine.visible

let test_nvi_save_work () =
  let r = run (nvi ()) in
  Alcotest.(check bool) "save-work holds" true
    (Ft_core.Save_work.holds r.Ft_runtime.Engine.trace)

let test_nvi_stop_failure () =
  let reference = (run (nvi ())).Ft_runtime.Engine.visible in
  let r = run ~kills:[ (50_000_000, 0); (150_000_000, 0) ] (nvi ()) in
  check_completed "nvi with kills" r;
  Alcotest.(check bool) "consistent recovery" true
    (Ft_core.Consistency.is_consistent ~reference
       ~observed:r.Ft_runtime.Engine.visible)

let test_nvi_signals_unloggable () =
  (* CAND-LOG must still commit for nvi's timer signals, and only for
     them: the commit count equals the signal count. *)
  let r = run ~protocol:Ft_core.Protocols.cand_log (nvi ()) in
  check_completed "nvi cand-log" r;
  let commits = r.Ft_runtime.Engine.commit_counts.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "few but nonzero commits (got %d)" commits)
    true
    (commits > 0 && commits < 20)

let test_nvi_saves_file () =
  let r = run (nvi ()) in
  let kernel = Ft_apps.Workload.kernel (nvi ()) in
  ignore kernel;
  (* the :w command appears in the script, so the editor reports >= 0
     saves; the run's trace must contain fixed-ND file writes *)
  let has_fixed_nd =
    List.exists
      (fun e ->
        match e.Ft_core.Event.kind with
        | Ft_core.Event.Nd Ft_core.Event.Fixed -> true
        | _ -> false)
      (Ft_core.Trace.events r.Ft_runtime.Engine.trace)
  in
  Alcotest.(check bool) "fixed ND events from :w" true has_fixed_nd

(* --- postgres ----------------------------------------------------------- *)

let postgres () =
  Ft_apps.Postgres.workload ~params:Ft_apps.Postgres.small_params ()

let test_postgres_runs () =
  let r = run (postgres ()) in
  check_completed "postgres" r;
  Alcotest.(check bool) "selects produced output" true
    (List.length r.Ft_runtime.Engine.visible > 10)

let test_postgres_deterministic () =
  let a = run (postgres ()) and b = run (postgres ()) in
  Alcotest.(check (list int)) "same queries, same results"
    a.Ft_runtime.Engine.visible b.Ft_runtime.Engine.visible

let test_postgres_stop_failure () =
  let reference = (run (postgres ())).Ft_runtime.Engine.visible in
  let r = run ~kills:[ (20_000_000, 0) ] (postgres ()) in
  check_completed "postgres with kill" r;
  Alcotest.(check bool) "consistent recovery" true
    (Ft_core.Consistency.is_consistent ~reference
       ~observed:r.Ft_runtime.Engine.visible)

let test_postgres_wal_grows () =
  let w = postgres () in
  let cfg = Ft_apps.Workload.engine_config w Ft_runtime.Engine.default_config in
  let kernel = Ft_apps.Workload.kernel w in
  let _, r = Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs () in
  check_completed "postgres" r;
  Alcotest.(check bool) "WAL got appended" true
    (Ft_os.Kernel.file_length kernel 0 Ft_apps.Postgres.wal_file > 10)

(* --- magic -------------------------------------------------------------- *)

let magic () = Ft_apps.Magic.workload ~params:Ft_apps.Magic.small_params ()

let test_magic_runs () =
  let r = run (magic ()) in
  check_completed "magic" r;
  Alcotest.(check int) "a status line per command plus summary"
    (Ft_apps.Magic.small_params.Ft_apps.Magic.commands + 1)
    (List.length r.Ft_runtime.Engine.visible)

let test_magic_unloggable_nd_dominates () =
  (* magic brackets every command with gettimeofday: CAND-LOG must still
     commit at least twice per command. *)
  let r = run ~protocol:Ft_core.Protocols.cand_log (magic ()) in
  check_completed "magic cand-log" r;
  Alcotest.(check bool) "commits ~2 per command" true
    (r.Ft_runtime.Engine.commit_counts.(0)
     >= 2 * Ft_apps.Magic.small_params.Ft_apps.Magic.commands)

let test_magic_stop_failure () =
  let reference = (run (magic ())).Ft_runtime.Engine.visible in
  let r = run ~kills:[ (100_000_000, 0) ] (magic ()) in
  check_completed "magic with kill" r;
  Alcotest.(check bool) "consistent recovery" true
    (Ft_core.Consistency.is_consistent ~reference
       ~observed:r.Ft_runtime.Engine.visible)

(* --- xpilot ------------------------------------------------------------- *)

let xpilot () = Ft_apps.Xpilot.workload ~params:Ft_apps.Xpilot.small_params ()

let test_xpilot_runs () =
  let r = run (xpilot ()) in
  check_completed "xpilot" r;
  (* three clients render every frame *)
  Alcotest.(check int) "frames rendered"
    (3 * Ft_apps.Xpilot.small_params.Ft_apps.Xpilot.frames)
    (List.length r.Ft_runtime.Engine.visible)

let test_xpilot_full_speed_on_dc () =
  let r = run (xpilot ()) in
  let fps = Ft_apps.Xpilot.fps r in
  Alcotest.(check bool)
    (Printf.sprintf "near 15 fps on reliable memory (got %.1f)" fps)
    true (fps > 13.0)

let test_xpilot_degrades_on_disk () =
  (* Under CAND the server commits dozens of times per frame: reliable
     memory absorbs it, a synchronous disk cannot hold 15 fps. *)
  let dc = Ft_apps.Xpilot.fps (run ~protocol:Ft_core.Protocols.cand (xpilot ())) in
  let disk =
    Ft_apps.Xpilot.fps
      (run ~protocol:Ft_core.Protocols.cand
         ~medium:(Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default)
         (xpilot ()))
  in
  Alcotest.(check bool)
    (Printf.sprintf "disk much slower (dc %.1f, disk %.1f)" dc disk)
    true
    (disk < dc /. 2.)

(* --- treadmarks --------------------------------------------------------- *)

let treadmarks () =
  Ft_apps.Treadmarks.workload ~params:Ft_apps.Treadmarks.small_params ()

let test_treadmarks_runs () =
  let r = run (treadmarks ()) in
  check_completed "treadmarks" r;
  Alcotest.(check int) "progress line per iteration plus checksum"
    (Ft_apps.Treadmarks.small_params.Ft_apps.Treadmarks.iters + 1)
    (List.length r.Ft_runtime.Engine.visible)

let test_treadmarks_deterministic () =
  (* Lazy release consistency makes the computation independent of
     message timing: different kernel seeds, same answers. *)
  let a = run ~seed:1 (treadmarks ()) and b = run ~seed:99 (treadmarks ()) in
  Alcotest.(check (list int)) "timing-independent results"
    a.Ft_runtime.Engine.visible b.Ft_runtime.Engine.visible

let test_treadmarks_nd_profile () =
  (* Copious receive ND plus unloggable timer ND: CAND >> CPVS and
     CAND > CAND-LOG > CBNDVS-LOG. *)
  let commits p =
    let r = run ~protocol:p (treadmarks ()) in
    check_completed "treadmarks" r;
    Array.fold_left ( + ) 0 r.Ft_runtime.Engine.commit_counts
  in
  let cand = commits Ft_core.Protocols.cand in
  let cand_log = commits Ft_core.Protocols.cand_log in
  let cpvs = commits Ft_core.Protocols.cpvs in
  let c2pc = commits Ft_core.Protocols.cpv_2pc in
  Alcotest.(check bool)
    (Printf.sprintf "cand %d > cand_log %d" cand cand_log)
    true (cand > cand_log);
  Alcotest.(check bool)
    (Printf.sprintf "cand %d > cpvs %d" cand cpvs)
    true (cand > cpvs);
  Alcotest.(check bool)
    (Printf.sprintf "2pc %d tiny vs cpvs %d" c2pc cpvs)
    true (c2pc * 10 < cpvs)

let test_treadmarks_stop_failure () =
  let reference = (run (treadmarks ())).Ft_runtime.Engine.visible in
  let r = run ~kills:[ (10_000_000, 2) ] (treadmarks ()) in
  check_completed "treadmarks with worker kill" r;
  Alcotest.(check bool) "consistent recovery" true
    (Ft_core.Consistency.is_consistent ~reference
       ~observed:r.Ft_runtime.Engine.visible)

let tests =
  [
    Alcotest.test_case "nvi runs" `Quick test_nvi_runs;
    Alcotest.test_case "nvi deterministic" `Quick test_nvi_deterministic;
    Alcotest.test_case "nvi save-work" `Quick test_nvi_save_work;
    Alcotest.test_case "nvi stop failure" `Quick test_nvi_stop_failure;
    Alcotest.test_case "nvi signals unloggable" `Quick
      test_nvi_signals_unloggable;
    Alcotest.test_case "nvi saves file" `Quick test_nvi_saves_file;
    Alcotest.test_case "postgres runs" `Quick test_postgres_runs;
    Alcotest.test_case "postgres deterministic" `Quick
      test_postgres_deterministic;
    Alcotest.test_case "postgres stop failure" `Quick
      test_postgres_stop_failure;
    Alcotest.test_case "postgres wal grows" `Quick test_postgres_wal_grows;
    Alcotest.test_case "magic runs" `Quick test_magic_runs;
    Alcotest.test_case "magic unloggable nd" `Quick
      test_magic_unloggable_nd_dominates;
    Alcotest.test_case "magic stop failure" `Quick test_magic_stop_failure;
    Alcotest.test_case "xpilot runs" `Quick test_xpilot_runs;
    Alcotest.test_case "xpilot full speed on dc" `Quick
      test_xpilot_full_speed_on_dc;
    Alcotest.test_case "xpilot degrades on disk" `Quick
      test_xpilot_degrades_on_disk;
    Alcotest.test_case "treadmarks runs" `Quick test_treadmarks_runs;
    Alcotest.test_case "treadmarks deterministic" `Quick
      test_treadmarks_deterministic;
    Alcotest.test_case "treadmarks nd profile" `Quick
      test_treadmarks_nd_profile;
    Alcotest.test_case "treadmarks stop failure" `Quick
      test_treadmarks_stop_failure;
  ]

(* the runner is invoked once, at the end of the file, with all suites *)

(* --- treadmarks tree mode (real Barnes-Hut) ------------------------------ *)

let treadmarks_tree () =
  Ft_apps.Treadmarks.workload
    ~params:
      { Ft_apps.Treadmarks.tree_params with
        Ft_apps.Treadmarks.bodies = 16; iters = 3 }
    ()

let test_treadmarks_tree_runs () =
  let r = run (treadmarks_tree ()) in
  check_completed "treadmarks tree" r;
  Alcotest.(check int) "progress per iteration plus checksum" 4
    (List.length r.Ft_runtime.Engine.visible)

let test_treadmarks_tree_deterministic () =
  let a = run ~seed:3 (treadmarks_tree ())
  and b = run ~seed:77 (treadmarks_tree ()) in
  Alcotest.(check (list int)) "timing-independent results"
    a.Ft_runtime.Engine.visible b.Ft_runtime.Engine.visible

let test_treadmarks_tree_stop_failure () =
  let reference = (run (treadmarks_tree ())).Ft_runtime.Engine.visible in
  let r = run ~kills:[ (8_000_000, 3) ] (treadmarks_tree ()) in
  check_completed "treadmarks tree with worker kill" r;
  Alcotest.(check bool) "consistent recovery" true
    (Ft_core.Consistency.is_consistent ~reference
       ~observed:r.Ft_runtime.Engine.visible)

let test_treadmarks_tree_moves_bodies () =
  (* the checksum changes across iterations: gravity is doing something *)
  let r = run (treadmarks_tree ()) in
  let progress =
    List.filteri (fun i _ -> i < 3) r.Ft_runtime.Engine.visible
  in
  Alcotest.(check bool) "per-iteration checksums differ" true
    (List.length (List.sort_uniq compare progress) > 1)

let tree_tests =
  [
    Alcotest.test_case "treadmarks tree runs" `Quick test_treadmarks_tree_runs;
    Alcotest.test_case "treadmarks tree deterministic" `Quick
      test_treadmarks_tree_deterministic;
    Alcotest.test_case "treadmarks tree stop failure" `Quick
      test_treadmarks_tree_stop_failure;
    Alcotest.test_case "treadmarks tree moves bodies" `Quick
      test_treadmarks_tree_moves_bodies;
  ]

let () =
  Alcotest.run "ft_apps" [ ("apps", tests); ("barnes-hut", tree_tests) ]
