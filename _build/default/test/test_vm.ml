(* Unit tests for the VM: instruction semantics, the Asm compiler, memory
   dirty tracking, and machine snapshot/restore. *)

let run_program ?(steps = 1_000_000) prog =
  let code = Ft_vm.Asm.compile prog in
  let m = Ft_vm.Machine.create ~heap_size:4096 code in
  let rec go n =
    if n = 0 then failwith "program did not halt";
    match Ft_vm.Machine.status m with
    | Ft_vm.Machine.Running ->
        Ft_vm.Machine.step m;
        go (n - 1)
    | Ft_vm.Machine.Need_syscall _ ->
        failwith "unexpected syscall in pure program"
    | Ft_vm.Machine.Halted | Ft_vm.Machine.Crashed _ -> ()
  in
  go steps;
  m

open Ft_vm.Asm

let check_status = Alcotest.(check bool)

let test_arith () =
  (* main: heap[0] := (7 + 3) * 4 - 5 *)
  let prog =
    program
      [
        func "main" []
          [ Set_heap (Int 0, (Int 7 +: Int 3) *: Int 4 -: Int 5) ];
      ]
  in
  let m = run_program prog in
  Alcotest.(check int) "arith result" 35
    (Ft_vm.Memory.read (Ft_vm.Machine.heap m) 0)

let test_locals_and_loop () =
  (* sum of 1..10 via while loop *)
  let prog =
    program
      [
        func "main" []
          [
            Let ("i", Int 1);
            Let ("acc", Int 0);
            While
              ( Var "i" <=: Int 10,
                [ Set ("acc", Var "acc" +: Var "i");
                  Set ("i", Var "i" +: Int 1) ] );
            Set_heap (Int 1, Var "acc");
          ];
      ]
  in
  let m = run_program prog in
  Alcotest.(check int) "sum 1..10" 55
    (Ft_vm.Memory.read (Ft_vm.Machine.heap m) 1)

let test_functions () =
  (* recursive factorial through the calling convention *)
  let prog =
    program
      [
        func "fact" [ "n" ]
          [
            If
              ( Var "n" <=: Int 1,
                [ Return (Int 1) ],
                [ Return (Var "n" *: Call ("fact", [ Var "n" -: Int 1 ])) ] );
          ];
        func "main" [] [ Set_heap (Int 2, Call ("fact", [ Int 6 ])) ];
      ]
  in
  let m = run_program prog in
  Alcotest.(check int) "6!" 720 (Ft_vm.Memory.read (Ft_vm.Machine.heap m) 2)

let test_if_else_nested () =
  let prog =
    program
      [
        func "classify" [ "x" ]
          [
            If
              ( Var "x" <: Int 0,
                [ Return (Int (-1)) ],
                [ If (Var "x" =: Int 0, [ Return (Int 0) ],
                      [ Return (Int 1) ]) ] );
          ];
        func "main" []
          [
            Set_heap (Int 0, Call ("classify", [ Int (-5) ]));
            Set_heap (Int 1, Call ("classify", [ Int 0 ]));
            Set_heap (Int 2, Call ("classify", [ Int 17 ]));
          ];
      ]
  in
  let m = run_program prog in
  let h = Ft_vm.Machine.heap m in
  Alcotest.(check (list int)) "classify" [ -1; 0; 1 ]
    [ Ft_vm.Memory.read h 0; Ft_vm.Memory.read h 1; Ft_vm.Memory.read h 2 ]

let test_heap_oob_crashes () =
  let prog = program [ func "main" [] [ Set_heap (Int 100_000, Int 1) ] ] in
  let m = run_program prog in
  let crashed =
    match Ft_vm.Machine.status m with
    | Ft_vm.Machine.Crashed (Ft_vm.Machine.Heap_out_of_bounds _) -> true
    | _ -> false
  in
  check_status "oob store crashes" true crashed

let test_div_by_zero_crashes () =
  let prog =
    program [ func "main" [] [ Set_heap (Int 0, Int 5 /: Int 0) ] ]
  in
  let m = run_program prog in
  let crashed =
    match Ft_vm.Machine.status m with
    | Ft_vm.Machine.Crashed Ft_vm.Machine.Division_by_zero -> true
    | _ -> false
  in
  check_status "div by zero crashes" true crashed

let test_check_instruction () =
  let prog =
    program
      [ func "main" [] [ Check (Int 1); Check (Int 0); Set_heap (Int 0, Int 9) ] ]
  in
  let m = run_program prog in
  (match Ft_vm.Machine.status m with
  | Ft_vm.Machine.Crashed (Ft_vm.Machine.Check_failed _) -> ()
  | s ->
      Alcotest.failf "expected check failure, got %s"
        (match s with
        | Ft_vm.Machine.Halted -> "halted"
        | _ -> "other"));
  Alcotest.(check int) "store after failed check did not run" 0
    (Ft_vm.Memory.read (Ft_vm.Machine.heap m) 0)

let test_dirty_tracking () =
  let mem = Ft_vm.Memory.create ~page_size:16 ~size:256 () in
  Alcotest.(check int) "initially clean" 0 (Ft_vm.Memory.dirty_count mem);
  Ft_vm.Memory.write mem 0 1;
  Ft_vm.Memory.write mem 3 1;
  Ft_vm.Memory.write mem 17 1;
  Alcotest.(check int) "two dirty pages" 2 (Ft_vm.Memory.dirty_count mem);
  Alcotest.(check (list int)) "which pages" [ 0; 1 ]
    (Ft_vm.Memory.dirty_pages mem);
  Ft_vm.Memory.clear_dirty mem;
  Alcotest.(check int) "clean after clear" 0 (Ft_vm.Memory.dirty_count mem)

let test_snapshot_restore () =
  let prog =
    program
      [
        func "main" []
          [
            Let ("i", Int 0);
            While
              ( Var "i" <: Int 100,
                [ Set_heap (Var "i", Var "i" *: Var "i");
                  Set ("i", Var "i" +: Int 1) ] );
          ];
      ]
  in
  let code = Ft_vm.Asm.compile prog in
  let m = Ft_vm.Machine.create ~heap_size:4096 code in
  (* run ~500 instructions, snapshot, run to completion, restore, rerun *)
  for _ = 1 to 500 do Ft_vm.Machine.step m done;
  let snap = Ft_vm.Machine.snapshot m in
  let mid_heap = Ft_vm.Memory.snapshot (Ft_vm.Machine.heap m) in
  while Ft_vm.Machine.status m = Ft_vm.Machine.Running do
    Ft_vm.Machine.step m
  done;
  Alcotest.(check int) "99^2 written" (99 * 99)
    (Ft_vm.Memory.read (Ft_vm.Machine.heap m) 99);
  Ft_vm.Machine.restore m snap;
  Alcotest.(check bool) "heap restored" true
    (Ft_vm.Memory.snapshot (Ft_vm.Machine.heap m) = mid_heap);
  while Ft_vm.Machine.status m = Ft_vm.Machine.Running do
    Ft_vm.Machine.step m
  done;
  Alcotest.(check int) "re-execution completes identically" (99 * 99)
    (Ft_vm.Memory.read (Ft_vm.Machine.heap m) 99)

let test_dest_reg_mutation_helpers () =
  let i = Ft_vm.Instr.Bin (Ft_vm.Instr.Add, 3, 1, 2) in
  Alcotest.(check (option int)) "dest reg" (Some 3) (Ft_vm.Instr.dest_reg i);
  let i' = Ft_vm.Instr.with_dest_reg i 7 in
  Alcotest.(check (option int)) "changed dest" (Some 7)
    (Ft_vm.Instr.dest_reg i');
  Alcotest.(check bool) "off-by-one flips Lt to Le" true
    (Ft_vm.Instr.off_by_one_cmp Ft_vm.Instr.Lt = Ft_vm.Instr.Le)

let test_compile_error () =
  let prog = program [ func "main" [] [ Set ("nope", Int 1) ] ] in
  Alcotest.check_raises "unbound variable"
    (Ft_vm.Asm.Compile_error "function main: unbound variable nope")
    (fun () -> ignore (Ft_vm.Asm.compile prog))

let tests =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "locals and loop" `Quick test_locals_and_loop;
    Alcotest.test_case "recursive functions" `Quick test_functions;
    Alcotest.test_case "nested if/else" `Quick test_if_else_nested;
    Alcotest.test_case "heap oob crash" `Quick test_heap_oob_crashes;
    Alcotest.test_case "div by zero crash" `Quick test_div_by_zero_crashes;
    Alcotest.test_case "check instruction" `Quick test_check_instruction;
    Alcotest.test_case "dirty tracking" `Quick test_dirty_tracking;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "fault mutation helpers" `Quick
      test_dest_reg_mutation_helpers;
    Alcotest.test_case "compile error" `Quick test_compile_error;
  ]

let () = Alcotest.run "ft_vm" [ ("vm", tests) ]
