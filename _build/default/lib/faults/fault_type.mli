(** The seven fault types of the paper's software fault model (§4.1). *)

type t =
  | Stack_bit_flip
  | Heap_bit_flip
  | Destination_reg
  | Initialization
  | Delete_branch
  | Delete_instruction
  | Off_by_one

val all : t list
val to_string : t -> string
val of_string : string -> t option
