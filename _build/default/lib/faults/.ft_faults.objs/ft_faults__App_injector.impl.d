lib/faults/app_injector.ml: Array Fault_type Format Ft_runtime Ft_vm List Option Random
