lib/faults/app_injector.mli: Fault_type Format Ft_runtime Ft_vm Random
