lib/faults/os_injector.ml: Array Fault_type Ft_os Ft_vm List Random
