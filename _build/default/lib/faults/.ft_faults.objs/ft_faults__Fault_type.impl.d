lib/faults/fault_type.ml: List String
