lib/faults/fault_type.mli:
