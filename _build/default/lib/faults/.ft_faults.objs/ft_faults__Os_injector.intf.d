lib/faults/os_injector.mli: Fault_type Ft_os Ft_vm Random
