(** The application fault model (paper §4.1, after Chandra's fault study).

    Faults are injected by running a version of the application with
    changes that simulate programming errors: overwriting random data in
    the stack or heap, changing the destination register of an
    instruction, neglecting to initialize a variable, deleting a branch,
    deleting a random instruction, and off-by-one errors in conditions
    like [>=] and [<]. *)

type t =
  | Stack_bit_flip
  | Heap_bit_flip
  | Destination_reg
  | Initialization
  | Delete_branch
  | Delete_instruction
  | Off_by_one

let all =
  [ Stack_bit_flip; Heap_bit_flip; Destination_reg; Initialization;
    Delete_branch; Delete_instruction; Off_by_one ]

let to_string = function
  | Stack_bit_flip -> "stack bit flip"
  | Heap_bit_flip -> "heap bit flip"
  | Destination_reg -> "destination reg"
  | Initialization -> "initialization"
  | Delete_branch -> "delete branch"
  | Delete_instruction -> "delete instruction"
  | Off_by_one -> "off by one"

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun t -> to_string t = s) all
