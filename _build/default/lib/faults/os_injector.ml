(** Operating-system fault injection (paper §4.2).

    The paper injects the same seven fault types into the running kernel.
    Not all OS faults cause propagation failures: some crash the system
    before they affect application state (stop failures, from which
    commits at any time are safe); others corrupt the results the kernel
    hands to the application before the eventual panic.

    We model each injected kernel fault by (a) which syscall subsystem it
    breaks, (b) whether it corrupts results served from that subsystem or
    merely destabilizes the kernel, and (c) how many syscalls the kernel
    survives before panicking.  The per-fault-type profiles encode the
    empirical tendencies of the paper's fault model: control-flow faults
    (deleted branches/instructions) tend to corrupt data structures that
    syscalls read, while stack bit flips in the kernel usually panic
    quickly and cleanly. *)

type profile = {
  corrupt_probability : float;  (* chance the fault corrupts results *)
  panic_min_ms : int;           (* time until the kernel panics, uniform *)
  panic_max_ms : int;
  poke_probability : float;     (* per touched syscall: memory corruption *)
}

(* The corruption window is a *time* interval: an application that makes
   more syscalls per second (the paper's nvi runs ~10x postgres's rate)
   meets the broken kernel paths proportionally more often (§4.2). *)
let profile (ft : Fault_type.t) =
  match ft with
  | Fault_type.Stack_bit_flip ->
      (* Kernel stack corruption: quick, usually clean panic. *)
      { corrupt_probability = 0.25; panic_min_ms = 2; panic_max_ms = 80;
        poke_probability = 0.06 }
  | Fault_type.Heap_bit_flip ->
      (* Kernel heap corruption: data structures serve bad values for a
         while before the panic. *)
      { corrupt_probability = 0.5; panic_min_ms = 40; panic_max_ms = 800;
        poke_probability = 0.15 }
  | Fault_type.Destination_reg ->
      { corrupt_probability = 0.3; panic_min_ms = 4; panic_max_ms = 200;
        poke_probability = 0.06 }
  | Fault_type.Initialization ->
      { corrupt_probability = 0.25; panic_min_ms = 4; panic_max_ms = 240;
        poke_probability = 0.05 }
  | Fault_type.Delete_branch ->
      { corrupt_probability = 0.45; panic_min_ms = 20; panic_max_ms = 600;
        poke_probability = 0.11 }
  | Fault_type.Delete_instruction ->
      { corrupt_probability = 0.35; panic_min_ms = 10; panic_max_ms = 400;
        poke_probability = 0.08 }
  | Fault_type.Off_by_one ->
      { corrupt_probability = 0.3; panic_min_ms = 10; panic_max_ms = 400;
        poke_probability = 0.06 }

(* The kernel subsystem the fault lands in decides which syscalls serve
   corrupted results. *)
type subsystem = Input | Network | Clock | Filesystem

let subsystems = [| Input; Network; Clock; Filesystem |]

let touches subsystem (s : Ft_vm.Syscall.t) =
  match (subsystem, s) with
  | Input, (Ft_vm.Syscall.Read_input | Ft_vm.Syscall.Poll_input) -> true
  | Network, (Ft_vm.Syscall.Recv | Ft_vm.Syscall.Try_recv) -> true
  | Clock, (Ft_vm.Syscall.Gettimeofday | Ft_vm.Syscall.Random) -> true
  | Filesystem,
    ( Ft_vm.Syscall.Open_file | Ft_vm.Syscall.Write_file
    | Ft_vm.Syscall.Read_file ) ->
      true
  | _ -> false

(* Syscalls belonging to each subsystem, used to weight the choice of the
   broken subsystem by the workload's actual kernel usage: an injected
   fault lands in kernel code the application is executing. *)
let member_syscalls = function
  | Input -> [ Ft_vm.Syscall.Read_input; Ft_vm.Syscall.Poll_input ]
  | Network -> [ Ft_vm.Syscall.Recv; Ft_vm.Syscall.Try_recv ]
  | Clock -> [ Ft_vm.Syscall.Gettimeofday; Ft_vm.Syscall.Random ]
  | Filesystem ->
      [ Ft_vm.Syscall.Open_file; Ft_vm.Syscall.Write_file;
        Ft_vm.Syscall.Read_file ]

(* Subsystem weights from a profiled kernel (e.g. the reference run). *)
let usage_weights kernel =
  Array.map
    (fun sub ->
      ( sub,
        1
        + List.fold_left
            (fun acc s -> acc + Ft_os.Kernel.syscall_count kernel s)
            0 (member_syscalls sub) ))
    subsystems

type plan = {
  fault_type : Fault_type.t;
  subsystem : subsystem;
  corrupts : bool;
  panic_at_ns : int;
  corrupt_bit : int;
  poke_probability : float;
}

let pick_weighted rng weights =
  let total = Array.fold_left (fun a (_, w) -> a + w) 0 weights in
  let roll = Random.State.int rng (max 1 total) in
  let acc = ref 0 and chosen = ref (fst weights.(0)) in
  Array.iter
    (fun (sub, w) ->
      if roll >= !acc && roll < !acc + w then chosen := sub;
      acc := !acc + w)
    weights;
  !chosen

let plan ?weights rng ft =
  let p = profile ft in
  let subsystem =
    match weights with
    | Some w -> pick_weighted rng w
    | None -> subsystems.(Random.State.int rng (Array.length subsystems))
  in
  let delay_ms =
    p.panic_min_ms
    + Random.State.int rng (max 1 (p.panic_max_ms - p.panic_min_ms))
  in
  {
    fault_type = ft;
    subsystem;
    corrupts = Random.State.float rng 1.0 < p.corrupt_probability;
    panic_at_ns = delay_ms * 1_000_000;
    corrupt_bit = Random.State.int rng 16;
    poke_probability = p.poke_probability;
  }

(* Arm the planned kernel fault.  A non-corrupting fault still panics
   after its delay — a pure stop failure.  Returns the live fault record:
   its [propagated] flag remains readable after the reboot clears the
   fault from the kernel. *)
let arm kernel p =
  let touches_sys s = p.corrupts && touches p.subsystem s in
  let fault =
    {
      Ft_os.Kernel.panic_at = p.panic_at_ns;
      touches = touches_sys;
      corrupt_bit = p.corrupt_bit;
      poke_probability = (if p.corrupts then p.poke_probability else 0.);
      propagated = false;
    }
  in
  Ft_os.Kernel.set_os_fault kernel fault;
  fault

(* Did the corruption actually reach the application before the panic? *)
let propagated (fault : Ft_os.Kernel.os_fault) = fault.Ft_os.Kernel.propagated
