(** Operating-system fault injection (paper §4.2).

    Each injected kernel fault is modelled by the syscall subsystem it
    breaks, whether it corrupts results (and, via bad copyouts, process
    memory) served from that subsystem, and when the kernel finally
    panics.  Non-corrupting faults are pure stop failures.  The panic
    deadline is a {e time}, so an application making more syscalls per
    second meets the broken kernel paths proportionally more often —
    the paper's explanation for nvi's higher failure rate. *)

type profile = {
  corrupt_probability : float;
  panic_min_ms : int;
  panic_max_ms : int;
  poke_probability : float;  (** per touched syscall: memory corruption *)
}

val profile : Fault_type.t -> profile

type subsystem = Input | Network | Clock | Filesystem

val subsystems : subsystem array
val touches : subsystem -> Ft_vm.Syscall.t -> bool
val member_syscalls : subsystem -> Ft_vm.Syscall.t list

val usage_weights : Ft_os.Kernel.t -> (subsystem * int) array
(** Subsystem weights from a profiled kernel (e.g. the reference run):
    injected faults land in kernel code the workload executes. *)

type plan = {
  fault_type : Fault_type.t;
  subsystem : subsystem;
  corrupts : bool;
  panic_at_ns : int;
  corrupt_bit : int;
  poke_probability : float;
}

val plan : ?weights:(subsystem * int) array -> Random.State.t ->
  Fault_type.t -> plan

val arm : Ft_os.Kernel.t -> plan -> Ft_os.Kernel.os_fault
(** Arm the fault; the returned record's [propagated] flag stays
    readable after the reboot clears the fault from the kernel. *)

val propagated : Ft_os.Kernel.os_fault -> bool
