(** Vista-style lightweight transactions over a {!Rio} region (paper §3):
    updates are trapped with before-images in a persistent undo log;
    commit atomically discards the log; abort — or crash recovery —
    applies it backwards. *)

type t

val create : Rio.t -> t
val region : t -> Rio.t

val begin_tx : t -> unit
(** Raises [Invalid_argument] if a transaction is already open. *)

val write_range : t -> off:int -> int array -> unit
(** Transactional write: logs the before-image, then updates. *)

val write_word : t -> off:int -> int -> unit

val commit : t -> unit
(** The commit point: atomically discard the undo log. *)

val abort : t -> unit
(** Apply before-images newest-first. *)

val recover : t -> unit
(** Crash recovery: abort the open transaction, if any; otherwise a
    no-op. *)

val in_tx : t -> bool
val undo_log_length : t -> int
val commits : t -> int
val aborts : t -> int
