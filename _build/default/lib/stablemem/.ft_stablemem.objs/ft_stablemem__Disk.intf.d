lib/stablemem/disk.mli:
