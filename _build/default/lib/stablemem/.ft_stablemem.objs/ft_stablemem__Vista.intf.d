lib/stablemem/vista.mli: Rio
