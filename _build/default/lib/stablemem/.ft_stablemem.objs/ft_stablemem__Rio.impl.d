lib/stablemem/rio.ml: Array
