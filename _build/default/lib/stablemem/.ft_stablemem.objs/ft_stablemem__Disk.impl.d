lib/stablemem/disk.ml:
