lib/stablemem/vista.ml: Array List Rio
