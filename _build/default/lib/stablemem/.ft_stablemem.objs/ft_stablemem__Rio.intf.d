lib/stablemem/rio.mli:
