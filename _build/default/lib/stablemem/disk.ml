(** Synchronous-disk cost model for DC-disk (paper §3).

    DC-disk writes a redo log synchronously to disk at checkpoint time.
    The paper's machines had one IBM Ultrastar DCAS-34330W SCSI disk
    (~7200 rpm, late-90s): a synchronous small write pays seek plus
    rotational latency, large writes add transfer time. *)

type t = {
  access_ns : int;          (* seek + rotational latency *)
  ns_per_word : int;        (* transfer cost per 8-byte word *)
}

(* ~8 ms access, ~15 MB/s sustained transfer (8 bytes / 15 MB/s ≈ 530 ns). *)
let default = { access_ns = 8_000_000; ns_per_word = 530 }

(* An unrealistically fast disk, used by ablation benches. *)
let fast = { access_ns = 100_000; ns_per_word = 50 }

let write_cost t ~words = t.access_ns + (words * t.ns_per_word)

(* A synchronous checkpoint commit pays two ordered writes: the redo log
   body and the commit record that makes it durable. *)
let commit_cost t ~words = (2 * t.access_ns) + (words * t.ns_per_word)
