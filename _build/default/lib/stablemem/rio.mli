(** A Rio-style reliable memory region (paper §3): word-addressable
    memory that survives simulated process and OS crashes, with write
    accounting for the commit cost model. *)

type t

val create : size:int -> t
val size : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit

val blit_in : t -> off:int -> int array -> unit
(** Bulk copy into the region (e.g. one checkpoint page). *)

val blit_out : t -> off:int -> int array -> unit
val sub : t -> off:int -> len:int -> int array

val words_written : t -> int
(** Lifetime count of words written, for cost accounting. *)
