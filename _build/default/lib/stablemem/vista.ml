(** Vista-style lightweight transactions over a {!Rio} region.

    Vista provides atomic, persistent transactions without redo logging
    or system calls: updates to the mapped region are trapped and their
    before-images appended to a persistent undo log; commit atomically
    discards the undo log; recovery (or abort) applies it backwards
    (paper §3; Lowell & Chen, SOSP'97).  A crash in the middle of a
    transaction therefore leaves the region recoverable to its state at
    the last commit — the property Discount Checking's checkpoints rely
    on, and one our tests exercise directly. *)

type undo_record = { off : int; before : int array }

type t = {
  region : Rio.t;
  mutable undo_log : undo_record list;  (* newest first *)
  mutable in_tx : bool;
  mutable commits : int;
  mutable aborts : int;
}

let create region = { region; undo_log = []; in_tx = false;
                      commits = 0; aborts = 0 }

let region t = t.region

let begin_tx t =
  if t.in_tx then invalid_arg "Vista.begin_tx: transaction already open";
  t.in_tx <- true

let require_tx t name =
  if not t.in_tx then invalid_arg (name ^ ": no open transaction")

(* Transactional write of a range: log the before-image, then update. *)
let write_range t ~off src =
  require_tx t "Vista.write_range";
  let before = Rio.sub t.region ~off ~len:(Array.length src) in
  t.undo_log <- { off; before } :: t.undo_log;
  Rio.blit_in t.region ~off src

let write_word t ~off v = write_range t ~off [| v |]

(* Atomic commit: discarding the undo log is the commit point. *)
let commit t =
  require_tx t "Vista.commit";
  t.undo_log <- [];
  t.in_tx <- false;
  t.commits <- t.commits + 1

(* Abort (or crash recovery): apply before-images newest-first. *)
let abort t =
  require_tx t "Vista.abort";
  List.iter
    (fun { off; before } -> Rio.blit_in t.region ~off before)
    t.undo_log;
  t.undo_log <- [];
  t.in_tx <- false;
  t.aborts <- t.aborts + 1

(* A simulated crash mid-transaction: recovery runs the undo log just as
   abort does.  Exposed separately so tests and the engine can model
   failures during commit. *)
let recover t =
  if t.in_tx then abort t

let in_tx t = t.in_tx
let undo_log_length t = List.length t.undo_log
let commits t = t.commits
let aborts t = t.aborts
