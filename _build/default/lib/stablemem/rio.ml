(** A Rio-style reliable memory region.

    The Rio file cache makes ordinary DRAM survive operating-system
    crashes, so that committing to it costs memory-copy time instead of a
    synchronous disk write (paper §3).  We model a region as a
    word-addressable persistent array: simulated process and OS crashes
    never clear it (the recovery engine only ever resets machines), and
    every write is accounted so commit costs can be charged. *)

type t = {
  words : int array;
  mutable words_written : int;  (* lifetime accounting for cost models *)
}

let create ~size = { words = Array.make size 0; words_written = 0 }

let size t = Array.length t.words

let read t off =
  if off < 0 || off >= Array.length t.words then
    invalid_arg "Rio.read: out of range";
  t.words.(off)

let write t off v =
  if off < 0 || off >= Array.length t.words then
    invalid_arg "Rio.write: out of range";
  t.words.(off) <- v;
  t.words_written <- t.words_written + 1

(* Bulk copy into the region (one page of a checkpoint). *)
let blit_in t ~off src =
  if off < 0 || off + Array.length src > Array.length t.words then
    invalid_arg "Rio.blit_in: out of range";
  Array.blit src 0 t.words off (Array.length src);
  t.words_written <- t.words_written + Array.length src

(* Bulk copy out of the region (restoring a checkpoint). *)
let blit_out t ~off dst =
  if off < 0 || off + Array.length dst > Array.length t.words then
    invalid_arg "Rio.blit_out: out of range";
  Array.blit t.words off dst 0 (Array.length dst)

let sub t ~off ~len =
  let dst = Array.make len 0 in
  blit_out t ~off dst;
  dst

let words_written t = t.words_written
