(** Synchronous-disk cost model for DC-disk (paper §3). *)

type t = {
  access_ns : int;  (** seek plus rotational latency *)
  ns_per_word : int;  (** transfer cost per 8-byte word *)
}

val default : t
(** A late-90s SCSI disk: ~8 ms access, ~15 MB/s transfer. *)

val fast : t
(** An unrealistically fast disk, for ablation benches. *)

val write_cost : t -> words:int -> int
(** One synchronous write. *)

val commit_cost : t -> words:int -> int
(** A checkpoint commit: two ordered writes (redo log body, then the
    commit record) plus transfer. *)
