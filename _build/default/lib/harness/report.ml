(** ASCII table/figure rendering for experiment output. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let pad_left width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

(* Render a table with a header row; first column left-aligned, the rest
   right-aligned. *)
let table ~headers ~rows =
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let render_row row =
    List.iteri
      (fun i cell ->
        let s =
          if i = 0 then pad widths.(i) cell else pad_left widths.(i) cell
        in
        Buffer.add_string buf (if i = 0 then s else "  " ^ s))
      row;
    Buffer.add_char buf '\n'
  in
  render_row headers;
  let total =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let pct x = Printf.sprintf "%.0f%%" x
let pct1 x = Printf.sprintf "%.1f%%" x
let fps x = Printf.sprintf "%.1f fps" x

let section title =
  let bar = String.make (String.length title) '=' in
  Printf.sprintf "\n%s\n%s\n" title bar
