(** The composed analyses of §4: how often Save-work and Lose-work
    conflict, and how often OS failures manifest as propagation
    failures. *)

(* §4.1: the measured Lose-work violation rate applies only to
   Heisenbugs; Bohrbugs (the dangerous path reaches the initial state,
   which is always committed) violate Lose-work unconditionally.  Prior
   studies (Chandra & Chen on Apache, GNOME, MySQL) put Heisenbugs at
   5-15% of field bugs. *)
type conflict = {
  heisenbug_fraction : float;      (* e.g. 0.15 *)
  violation_rate : float;          (* Table 1 average, e.g. 0.35 *)
  upheld_fraction : float;         (* Lose-work upheld overall *)
  conflict_fraction : float;       (* failures with no transparent recovery *)
}

let conflict ?(heisenbug_fraction = 0.15) ~violation_rate () =
  let upheld = (1. -. violation_rate) *. heisenbug_fraction in
  {
    heisenbug_fraction;
    violation_rate;
    upheld_fraction = upheld;
    conflict_fraction = 1. -. upheld;
  }

let render_conflict c =
  Report.section "Section 4.1: Save-work / Lose-work conflict"
  ^ Printf.sprintf
      "Heisenbug fraction (prior studies)      : %.0f%%\n\
       Lose-work violations among Heisenbugs   : %.0f%% (Table 1)\n\
       Application faults with Lose-work upheld: %.1f%%\n\
       => Save-work and Lose-work conflict for : %.1f%% of application \
       faults\n"
      (100. *. c.heisenbug_fraction)
      (100. *. c.violation_rate)
      (100. *. c.upheld_fraction)
      (100. *. c.conflict_fraction)

(* §4.2: assuming propagation failures violate Lose-work at the Table-1
   rate regardless of where they began, the fraction of OS failures that
   were propagation failures is (failed recovery rate) / (violation
   rate). *)
let inferred_propagation ~os_failure_rate ~violation_rate =
  if violation_rate <= 0. then 0. else os_failure_rate /. violation_rate

let render_propagation ~app ~os_failure_rate ~violation_rate =
  Report.section
    (Printf.sprintf "Section 4.2: inferred propagation failures (%s)" app)
  ^ Printf.sprintf
      "OS faults with failed recovery : %.1f%% (Table 2)\n\
       Lose-work violation rate       : %.1f%% (Table 1)\n\
       => inferred propagation share  : %.1f%% of OS failures\n"
      (100. *. os_failure_rate)
      (100. *. violation_rate)
      (100. *. inferred_propagation ~os_failure_rate ~violation_rate)
