(** Ablations of the design choices DESIGN.md calls out, each one a
    measured version of a §2.6 claim:

    - {e crash early}: checking consistency more often shortens dangerous
      paths and lowers the Lose-work violation rate;
    - {e commit less state}: excluding recomputable pages from
      checkpoints shrinks commits (at the price of recomputation after
      recovery);
    - {e page size}: smaller COW pages shrink checkpoint payloads but pay
      more protection traps;
    - {e disk model}: how much of DC-disk's overhead is the synchronous
      access latency. *)

(* --- crash early ---------------------------------------------------------- *)

type crash_early_row = {
  check_every : int;
  crashes : int;
  violations : int;
  violation_pct : float;
}

(* Violation rate of heap bit flips in nvi as a function of the
   consistency-check cadence. *)
let crash_early ?(cadences = [ 1; 16; 1_000_000 ]) ?(target_crashes = 25)
    ?(max_attempts = 700) () =
  List.map
    (fun check_every ->
      let mk_workload () =
        Ft_apps.Nvi.workload
          ~params:{ Ft_apps.Nvi.small_params with Ft_apps.Nvi.check_every }
          ()
      in
      (* run a Table-1-style campaign against this variant *)
      let w = mk_workload () in
      let cfg = Table1.base_cfg w in
      let kernel = Ft_apps.Workload.kernel w in
      let _, ref_run =
        Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
      in
      let horizon = ref_run.Ft_runtime.Engine.wall_instructions in
      let crashes = ref 0 and violations = ref 0 and attempt = ref 0 in
      while !crashes < target_crashes && !attempt < max_attempts do
        let w = mk_workload () in
        let cfg =
          { (Table1.base_cfg w) with
            Ft_runtime.Engine.max_instructions = (40 * horizon) + 200_000 }
        in
        let kernel = Ft_apps.Workload.kernel w in
        let engine =
          Ft_runtime.Engine.create ~cfg ~kernel ~programs:w.programs ()
        in
        let rng = Random.State.make [| 31_000 + !attempt |] in
        (match
           Ft_faults.App_injector.plan rng Ft_faults.Fault_type.Heap_bit_flip
             ~code:w.programs.(0) ~horizon
         with
        | Some plan ->
            Ft_faults.App_injector.arm engine ~pid:0 plan;
            let r = Ft_runtime.Engine.run engine in
            if
              r.Ft_runtime.Engine.first_crash <> None
              && r.Ft_runtime.Engine.outcome
                 <> Ft_runtime.Engine.Instruction_budget
            then begin
              incr crashes;
              if r.Ft_runtime.Engine.commit_after_activation then
                incr violations
            end
        | None -> ());
        incr attempt
      done;
      {
        check_every;
        crashes = !crashes;
        violations = !violations;
        violation_pct =
          (if !crashes = 0 then 0.
           else 100. *. float_of_int !violations /. float_of_int !crashes);
      })
    cadences

let render_crash_early rows =
  Report.section
    "Ablation: crash-early consistency checks vs Lose-work (2.6)"
  ^ Report.table
      ~headers:[ "check cadence"; "crashes"; "violations"; "%" ]
      ~rows:
        (List.map
           (fun r ->
             [
               (if r.check_every >= 1_000_000 then "never"
                else Printf.sprintf "every %d keystrokes" r.check_every);
               string_of_int r.crashes;
               string_of_int r.violations;
               Report.pct r.violation_pct;
             ])
           rows)
  ^ "Checking more often crashes the editor sooner after corruption,\n\
     leaving fewer commits on the dangerous path.\n"

(* --- commit less state ----------------------------------------------------- *)

type exclusion_row = {
  label : string;
  sim_time_ns : int;
  overhead_pct : float;
}

(* magic's framebuffer (pages >= fb_base/page) is fully re-rendered every
   command: excluding it from checkpoints loses nothing. *)
let exclusion ?(commands = 40) () =
  let params =
    { Ft_apps.Magic.small_params with Ft_apps.Magic.commands }
  in
  let fb_first_page = Ft_apps.Magic.fb_base / 64 in
  let run ~excluded ~protocol =
    let w = Ft_apps.Magic.workload ~params () in
    let cfg =
      Ft_apps.Workload.engine_config w
        { Ft_runtime.Engine.default_config with
          protocol;
          medium = Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default;
          excluded_pages =
            (if excluded then fun p -> p >= fb_first_page
             else fun _ -> false) }
    in
    let kernel = Ft_apps.Workload.kernel w in
    let _, r =
      Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
    in
    r.Ft_runtime.Engine.sim_time_ns
  in
  let base = run ~excluded:false ~protocol:Ft_core.Protocols.no_commit in
  let full = run ~excluded:false ~protocol:Ft_core.Protocols.cpvs in
  let slim = run ~excluded:true ~protocol:Ft_core.Protocols.cpvs in
  let pct t =
    100. *. (float_of_int t -. float_of_int base) /. float_of_int base
  in
  [
    { label = "full checkpoints"; sim_time_ns = full; overhead_pct = pct full };
    { label = "framebuffer excluded"; sim_time_ns = slim;
      overhead_pct = pct slim };
  ]

let render_exclusion rows =
  Report.section "Ablation: excluding recomputable state from commits (2.6)"
  ^ Report.table
      ~headers:[ "configuration"; "sim time (ms)"; "DC-disk overhead" ]
      ~rows:
        (List.map
           (fun r ->
             [
               r.label;
               string_of_int (r.sim_time_ns / 1_000_000);
               Report.pct1 r.overhead_pct;
             ])
           rows)

(* --- page size -------------------------------------------------------------- *)

type page_row = { page_size : int; sim_time_ns : int }

let page_size ?(sizes = [ 16; 64; 256 ]) () =
  List.map
    (fun page_size ->
      let w =
        Ft_apps.Magic.workload
          ~params:{ Ft_apps.Magic.small_params with Ft_apps.Magic.commands = 25 }
          ()
      in
      let cfg =
        Ft_apps.Workload.engine_config w
          { Ft_runtime.Engine.default_config with
            page_size;
            medium = Ft_runtime.Checkpointer.Disk Ft_stablemem.Disk.default }
      in
      let kernel = Ft_apps.Workload.kernel w in
      let _, r =
        Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
      in
      { page_size; sim_time_ns = r.Ft_runtime.Engine.sim_time_ns })
    sizes

let render_page_size rows =
  Report.section "Ablation: COW page size (checkpoint payload vs traps)"
  ^ Report.table
      ~headers:[ "page (words)"; "sim time (ms)" ]
      ~rows:
        (List.map
           (fun r ->
             [ string_of_int r.page_size;
               string_of_int (r.sim_time_ns / 1_000_000) ])
           rows)

(* --- disk model --------------------------------------------------------------- *)

let disk_model () =
  let run disk =
    let w =
      Ft_apps.Nvi.workload
        ~params:
          { Ft_apps.Nvi.small_params with
            Ft_apps.Nvi.keystrokes = 150; interval_ns = 20_000_000 }
        ()
    in
    let cfg =
      Ft_apps.Workload.engine_config w
        { Ft_runtime.Engine.default_config with
          medium =
            (match disk with
            | None -> Ft_runtime.Checkpointer.Reliable_memory
            | Some d -> Ft_runtime.Checkpointer.Disk d) }
    in
    let kernel = Ft_apps.Workload.kernel w in
    let _, r =
      Ft_runtime.Engine.execute ~cfg ~kernel ~programs:w.programs ()
    in
    r.Ft_runtime.Engine.sim_time_ns
  in
  [
    ("reliable memory (Rio)", run None);
    ("1998 SCSI disk", run (Some Ft_stablemem.Disk.default));
    ("fast disk", run (Some Ft_stablemem.Disk.fast));
  ]

let render_disk_model rows =
  Report.section "Ablation: commit medium (why Rio matters)"
  ^ Report.table
      ~headers:[ "medium"; "sim time (ms)" ]
      ~rows:
        (List.map
           (fun (label, t) -> [ label; string_of_int (t / 1_000_000) ])
           rows)

let run_all () =
  render_crash_early (crash_early ())
  ^ render_exclusion (exclusion ())
  ^ render_page_size (page_size ())
  ^ render_disk_model (disk_model ())
