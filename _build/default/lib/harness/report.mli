(** ASCII table/figure rendering for experiment output. *)

val pad : int -> string -> string
val pad_left : int -> string -> string

val table : headers:string list -> rows:string list list -> string
(** First column left-aligned, the rest right-aligned. *)

val pct : float -> string
val pct1 : float -> string
val fps : float -> string
val section : string -> string
