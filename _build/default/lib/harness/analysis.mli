(** The composed analyses of paper §4. *)

type conflict = {
  heisenbug_fraction : float;
  violation_rate : float;
  upheld_fraction : float;
  conflict_fraction : float;
      (** application faults for which Save-work and Lose-work conflict:
          1 - (1 - violations) * heisenbugs; >90% at the paper's
          numbers *)
}

val conflict :
  ?heisenbug_fraction:float -> violation_rate:float -> unit -> conflict

val render_conflict : conflict -> string

val inferred_propagation :
  os_failure_rate:float -> violation_rate:float -> float
(** §4.2: failures / violation-rate = the inferred share of OS failures
    that manifested as propagation failures (41% nvi, 10% postgres in
    the paper). *)

val render_propagation :
  app:string -> os_failure_rate:float -> violation_rate:float -> string
