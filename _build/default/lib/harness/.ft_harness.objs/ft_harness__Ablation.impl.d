lib/harness/ablation.ml: Array Ft_apps Ft_core Ft_faults Ft_runtime Ft_stablemem List Printf Random Report Table1
