lib/harness/report.mli:
