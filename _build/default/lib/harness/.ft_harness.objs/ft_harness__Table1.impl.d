lib/harness/table1.ml: Array Ft_apps Ft_core Ft_faults Ft_runtime List Printf Random Report
