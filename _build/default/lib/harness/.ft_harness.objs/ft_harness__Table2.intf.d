lib/harness/table2.mli: Ft_apps Ft_faults Ft_runtime Table1
