lib/harness/analysis.ml: Printf Report
