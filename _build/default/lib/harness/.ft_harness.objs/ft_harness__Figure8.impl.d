lib/harness/figure8.ml: Array Ft_apps Ft_core Ft_runtime Ft_stablemem List Printf Report String
