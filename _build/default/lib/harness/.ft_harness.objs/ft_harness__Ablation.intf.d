lib/harness/ablation.mli:
