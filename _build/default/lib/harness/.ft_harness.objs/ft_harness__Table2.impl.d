lib/harness/table2.ml: Ft_apps Ft_core Ft_faults Ft_runtime List Printf Random Report Table1
