lib/harness/figure8.mli: Ft_apps Ft_core Ft_runtime
