lib/harness/analysis.mli:
