lib/harness/table1.mli: Ft_apps Ft_faults Ft_runtime
