(** Table 2: fraction of operating-system faults after which the
    application fails to come back up (paper §4.2). *)

type row = {
  fault_type : Ft_faults.Fault_type.t;
  crashes : int;  (** runs where the system or the application crashed *)
  failed_recoveries : int;
  propagated : int;  (** corruption reached the application *)
  no_effect : int;
}

val base_cfg : Ft_apps.Workload.t -> Ft_runtime.Engine.config

val workload : Table1.app -> Ft_apps.Workload.t
(** Table-2 sessions: comparable durations, with nvi at ~10x postgres's
    syscall rate (the paper's non-interactive nvi). *)

val run :
  ?target_crashes:int ->
  ?max_attempts:int ->
  ?seed0:int ->
  app:Table1.app ->
  unit ->
  row list

val failure_pct : row -> float
val average : row list -> float

val propagation_fraction : row list -> float
(** Fraction of crashed runs in which kernel corruption reached the
    application (the §4.2 propagation-failure share). *)

val render : app:Table1.app -> row list -> string
