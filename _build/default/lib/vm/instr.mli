(** Instruction set of the simulated word-addressed machine.  The
    application fault types of paper §4.1 are mutations at this level:
    changed destination registers, deleted branches and instructions,
    off-by-one comparison operators, lost initializations, and bit
    flips in machine state. *)

type reg = int
(** Register index, [0 .. num_regs-1]. *)

val num_regs : int

val scratch : reg
(** The compiler's scratch register (r13). *)

type cmp = Lt | Le | Gt | Ge | Eq | Ne
type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

type t =
  | Nop
  | Halt
  | Const of reg * int  (** dst <- imm *)
  | Mov of reg * reg
  | Bin of binop * reg * reg * reg  (** dst <- a op b *)
  | Cmp of cmp * reg * reg * reg  (** dst <- (a cmp b) ? 1 : 0 *)
  | Load of reg * reg  (** dst <- heap[addr] *)
  | Store of reg * reg  (** heap[addr] <- src *)
  | Push of reg
  | Pop of reg
  | Sload of reg * int  (** dst <- stack[fp + off] *)
  | Sstore of int * reg  (** stack[fp + off] <- src *)
  | Jmp of int
  | Jz of reg * int
  | Jnz of reg * int
  | Call of int
  | Ret
  | Enter of int  (** push fp; fp <- sp; reserve locals (left stale) *)
  | Leave
  | Sys of Syscall.t
  | Check of reg  (** consistency check: crash if the register is 0 *)
  | Sigret  (** return from a signal handler, restoring all registers *)

val cmp_to_string : cmp -> string
val binop_to_string : binop -> string
val to_string : t -> string

val dest_reg : t -> reg option
(** The destination register, if any: the target of the
    destination-register fault type. *)

val with_dest_reg : t -> reg -> t
val is_branch : t -> bool
val is_cmp : t -> bool

val off_by_one_cmp : cmp -> cmp
(** The §4.1 off-by-one mutation of a comparison operator. *)
