(** Paged heap memory with dirty-page tracking.

    Discount Checking traps updates with copy-on-write and logs
    before-images of updated regions (paper §3).  We track the set of
    pages written since the last checkpoint; the checkpointer copies
    exactly those pages and charges a per-page trap-and-copy cost, just
    as Vista's COW on the process address space would. *)

type t = {
  mutable data : int array;
  page_size : int;              (* words per page; power of two *)
  mutable dirty : bool array;   (* per page, since last clear *)
  mutable dirty_count : int;
}

exception Out_of_bounds of int

let create ?(page_size = 64) ~size () =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Memory.create: page_size must be a power of two";
  let npages = (size + page_size - 1) / page_size in
  {
    data = Array.make (npages * page_size) 0;
    page_size;
    dirty = Array.make (max 1 npages) false;
    dirty_count = 0;
  }

let size t = Array.length t.data
let page_size t = t.page_size
let npages t = Array.length t.dirty

let read t addr =
  if addr < 0 || addr >= Array.length t.data then raise (Out_of_bounds addr);
  t.data.(addr)

let write t addr v =
  if addr < 0 || addr >= Array.length t.data then raise (Out_of_bounds addr);
  let page = addr / t.page_size in
  if not t.dirty.(page) then begin
    t.dirty.(page) <- true;
    t.dirty_count <- t.dirty_count + 1
  end;
  t.data.(addr) <- v

(* Raw poke that bypasses bounds/accounting policy decisions is not
   offered: fault injectors flip bits through [write] so the corruption
   is captured by checkpoints exactly as a real stray store would be. *)

let dirty_pages t =
  let acc = ref [] in
  for p = Array.length t.dirty - 1 downto 0 do
    if t.dirty.(p) then acc := p :: !acc
  done;
  !acc

let dirty_count t = t.dirty_count

let clear_dirty t =
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.dirty_count <- 0

(* Copy out one page (for incremental checkpoints). *)
let snapshot_page t p =
  Array.sub t.data (p * t.page_size) t.page_size

let restore_page t p words =
  Array.blit words 0 t.data (p * t.page_size) t.page_size

let snapshot t = Array.copy t.data

let restore t words =
  if Array.length words <> Array.length t.data then begin
    t.data <- Array.copy words;
    let npages = (Array.length words + t.page_size - 1) / t.page_size in
    t.dirty <- Array.make (max 1 npages) false;
    t.dirty_count <- 0
  end
  else Array.blit words 0 t.data 0 (Array.length words);
  clear_dirty t
