(** System calls of the simulated machine.

    Each syscall is classified by the event taxonomy of the paper: the
    kernel model ({!Ft_os.Kernel}) services a call and reports the event
    kind (transient/fixed ND, visible, send, receive) to the execution
    engine, which consults the recovery protocol.  Argument and result
    registers follow a fixed convention: arguments in r0, r1; results in
    r0 (and r1 for [Recv]'s sender pid). *)

type t =
  | Gettimeofday  (* r0 <- current time; transient ND *)
  | Random        (* r0 <- pseudo-random value; transient ND *)
  | Read_input    (* r0 <- next input token (-1 at end); fixed ND; blocks *)
  | Poll_input    (* r0 <- 1 if input is ready, 0 otherwise; transient ND *)
  | Write_output  (* emit r0 to the user; visible *)
  | Send          (* send payload r1 to process r0 *)
  | Recv          (* r0 <- payload, r1 <- sender; transient ND; blocks *)
  | Try_recv      (* r0 <- payload or -1, r1 <- sender; transient ND *)
  | Open_file     (* r0 = name id -> r0 <- fd or -1; fixed ND *)
  | Write_file    (* fd r0, value r1 -> r0 <- 1 or -1 (disk full); fixed ND *)
  | Read_file     (* fd r0, offset r1 -> r0 <- value; deterministic *)
  | Close_file    (* fd r0; deterministic *)
  | Sigaction     (* install signal handler at code address r0 *)
  | Sleep         (* advance local time by r0 microseconds; deterministic *)
  | Yield         (* scheduling point; deterministic *)

let to_string = function
  | Gettimeofday -> "gettimeofday"
  | Random -> "random"
  | Read_input -> "read_input"
  | Poll_input -> "poll_input"
  | Write_output -> "write_output"
  | Send -> "send"
  | Recv -> "recv"
  | Try_recv -> "try_recv"
  | Open_file -> "open_file"
  | Write_file -> "write_file"
  | Read_file -> "read_file"
  | Close_file -> "close_file"
  | Sigaction -> "sigaction"
  | Sleep -> "sleep"
  | Yield -> "yield"

let all =
  [ Gettimeofday; Random; Read_input; Poll_input; Write_output; Send; Recv;
    Try_recv; Open_file; Write_file; Read_file; Close_file; Sigaction;
    Sleep; Yield ]
