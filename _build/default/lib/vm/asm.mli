(** A structured mini-language compiled to the {!Instr} machine.  The
    paper's workloads are real programs written in it: integer
    expressions, heap access, stack-allocated locals, functions, loops,
    and statement forms for every syscall. *)

exception Compile_error of string

type expr =
  | Int of int
  | Var of string
  | Bin of Instr.binop * expr * expr
  | Cmp of Instr.cmp * expr * expr
  | Not of expr  (** 1 if the operand is 0, else 0 *)
  | Deref of expr  (** heap[e] *)
  | Call of string * expr list
  | Time  (** gettimeofday: transient ND *)
  | Rand  (** random: transient ND *)
  | Input  (** read_input: fixed ND, waits for the user *)
  | Poll_input
  | Open_file of expr
  | Write_file of expr * expr  (** fd, value *)
  | Read_file of expr * expr  (** fd, offset *)

(** Infix sugar: arithmetic ([+:], [-:], [*:], [/:], [%:]), comparison
    ([<:], [<=:], [>:], [>=:], [=:], [<>:]) and bitwise logic on 0/1
    operands ([&&:], [||:]). *)

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr

type stmt =
  | Let of string * expr  (** declare and initialize a local *)
  | Set of string * expr
  | Set_heap of expr * expr  (** heap[addr] <- value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Break
  | Expr of expr  (** evaluate for effect *)
  | Return of expr
  | Output of expr  (** visible event *)
  | Send_msg of expr * expr  (** destination pid, payload *)
  | Recv_msg of string * string  (** payload var, sender var; blocks *)
  | Try_recv_msg of string * string
  | Close_file of expr
  | Sleep of expr  (** microseconds *)
  | Yield
  | Check of expr  (** consistency check: crash when 0 *)
  | Halt
  | Sigaction of string  (** install a function as the signal handler *)

type func = {
  name : string;
  params : string list;
  body : stmt list;
  is_handler : bool;  (** signal handlers return with [Sigret] *)
}

val func : ?is_handler:bool -> string -> string list -> stmt list -> func

type program = { funcs : func list; main : string }

val program : ?main:string -> func list -> program

val compile : program -> Instr.t array
(** Link all functions behind a two-instruction start stub.  Raises
    {!Compile_error} on unbound variables, unknown functions, too many
    arguments, or break outside a loop. *)

val disassemble : Instr.t array -> string
