(** A structured mini-language compiled to the {!Instr} machine.

    The paper's workloads are real Unix programs; ours are real programs
    for the simulated machine, written in this small imperative language:
    integer expressions, heap loads/stores, local variables on the stack,
    functions, loops, and statement forms for every syscall.  Compilation
    is deliberately simple — expression temporaries go through the
    machine stack — so that the generated code has the memory and control
    structure (frames, return addresses, heap data structures, branches)
    the application fault model of §4.1 needs to act on.

    Register convention: arguments in r0..r7, syscall results in r0/r1,
    statement compilation uses r10 as its working register and r13
    (= {!Instr.scratch}) for binary-operation temporaries. *)

exception Compile_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

type expr =
  | Int of int
  | Var of string
  | Bin of Instr.binop * expr * expr
  | Cmp of Instr.cmp * expr * expr
  | Not of expr                      (* 1 if e = 0, else 0 *)
  | Deref of expr                    (* heap[e] *)
  | Call of string * expr list
  | Time                             (* gettimeofday: transient ND *)
  | Rand                             (* random: transient ND *)
  | Input                            (* read_input: fixed ND, blocking *)
  | Poll_input                       (* transient ND *)
  | Open_file of expr                (* fixed ND *)
  | Write_file of expr * expr        (* fd, value; fixed ND *)
  | Read_file of expr * expr         (* fd, offset; deterministic *)

(* Common sugar. *)
let ( +: ) a b = Bin (Instr.Add, a, b)
let ( -: ) a b = Bin (Instr.Sub, a, b)
let ( *: ) a b = Bin (Instr.Mul, a, b)
let ( /: ) a b = Bin (Instr.Div, a, b)
let ( %: ) a b = Bin (Instr.Mod, a, b)
let ( <: ) a b = Cmp (Instr.Lt, a, b)
let ( <=: ) a b = Cmp (Instr.Le, a, b)
let ( >: ) a b = Cmp (Instr.Gt, a, b)
let ( >=: ) a b = Cmp (Instr.Ge, a, b)
let ( =: ) a b = Cmp (Instr.Eq, a, b)
let ( <>: ) a b = Cmp (Instr.Ne, a, b)
let ( &&: ) a b = Bin (Instr.And, a, b)   (* on 0/1 operands *)
let ( ||: ) a b = Bin (Instr.Or, a, b)

type stmt =
  | Let of string * expr             (* declare and initialize a local *)
  | Set of string * expr             (* assign an existing local *)
  | Set_heap of expr * expr          (* heap[addr] <- value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Break
  | Expr of expr                     (* evaluate for effect *)
  | Return of expr
  | Output of expr                   (* write_output: visible *)
  | Send_msg of expr * expr          (* dest pid, payload *)
  | Recv_msg of string * string      (* payload var, sender var; blocking *)
  | Try_recv_msg of string * string  (* payload -1 if none *)
  | Close_file of expr
  | Sleep of expr                    (* microseconds of think/idle time *)
  | Yield
  | Check of expr                    (* consistency check: crash if 0 *)
  | Halt
  | Sigaction of string              (* install function as signal handler *)

type func = {
  name : string;
  params : string list;
  body : stmt list;
  is_handler : bool;  (* signal handlers return with Sigret *)
}

let func ?(is_handler = false) name params body =
  { name; params; body; is_handler }

type program = { funcs : func list; main : string }

let program ?(main = "main") funcs = { funcs; main }

(* ---- compilation ------------------------------------------------------ *)

type item =
  | I of Instr.t
  | Label of int
  | Jmp_l of int
  | Jz_l of Instr.reg * int
  | Jnz_l of Instr.reg * int  (* kept for completeness of the item set *)
  | Call_f of string
  | Addr_of of Instr.reg * string  (* reg <- code address of function *)

(* The compiler only emits jz-style branches today; keep jnz usable for
   hand-written assembly without tripping the unused-constructor warning. *)
let _jnz_l r l = Jnz_l (r, l)

let work : Instr.reg = 10

(* Collect the local variables of a function: parameters first, then
   every Let / Recv target in order of first appearance. *)
let collect_vars f =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let add v =
    if not (Hashtbl.mem tbl v) then begin
      Hashtbl.add tbl v (Hashtbl.length tbl);
      order := v :: !order
    end
  in
  List.iter add f.params;
  let rec stmt s =
    match s with
    | Let (v, _) -> add v
    | Recv_msg (a, b) | Try_recv_msg (a, b) ->
        add a;
        add b
    | If (_, t, e) ->
        List.iter stmt t;
        List.iter stmt e
    | While (_, b) -> List.iter stmt b
    | Set _ | Set_heap _ | Break | Expr _ | Return _ | Output _
    | Send_msg _ | Close_file _ | Sleep _ | Yield | Check _ | Halt
    | Sigaction _ ->
        ()
  in
  List.iter stmt f.body;
  tbl

let compile_func ~fresh_label f =
  let slots = collect_vars f in
  let nlocals = Hashtbl.length slots in
  let slot v =
    match Hashtbl.find_opt slots v with
    | Some i -> i
    | None -> err "function %s: unbound variable %s" f.name v
  in
  let out = ref [] in
  let emit i = out := i :: !out in
  let ins i = emit (I i) in
  (* Compile [e] so its value ends up in [dst]; may clobber the scratch
     register and r0/r1 (syscalls, calls); temporaries live on the
     machine stack so they survive nested calls and signal delivery. *)
  let rec expr dst e =
    match e with
    | Int n -> ins (Instr.Const (dst, n))
    | Var v -> ins (Instr.Sload (dst, slot v))
    | Bin (op, a, b) ->
        expr dst a;
        ins (Instr.Push dst);
        expr dst b;
        ins (Instr.Pop Instr.scratch);
        ins (Instr.Bin (op, dst, Instr.scratch, dst))
    | Cmp (op, a, b) ->
        expr dst a;
        ins (Instr.Push dst);
        expr dst b;
        ins (Instr.Pop Instr.scratch);
        ins (Instr.Cmp (op, dst, Instr.scratch, dst))
    | Not a ->
        expr dst a;
        ins (Instr.Const (Instr.scratch, 0));
        ins (Instr.Cmp (Instr.Eq, dst, dst, Instr.scratch))
    | Deref a ->
        expr dst a;
        ins (Instr.Load (dst, dst))
    | Call (name, args) ->
        let n = List.length args in
        if n > 8 then err "call %s: too many arguments" name;
        List.iter
          (fun a ->
            expr dst a;
            ins (Instr.Push dst))
          args;
        for i = n - 1 downto 0 do
          ins (Instr.Pop i)
        done;
        emit (Call_f name);
        if dst <> 0 then ins (Instr.Mov (dst, 0))
    | Time -> sys0 dst Syscall.Gettimeofday
    | Rand -> sys0 dst Syscall.Random
    | Input -> sys0 dst Syscall.Read_input
    | Poll_input -> sys0 dst Syscall.Poll_input
    | Open_file a ->
        expr dst a;
        ins (Instr.Mov (0, dst));
        ins (Instr.Sys Syscall.Open_file);
        if dst <> 0 then ins (Instr.Mov (dst, 0))
    | Write_file (fd, v) -> sys2 dst fd v Syscall.Write_file
    | Read_file (fd, off) -> sys2 dst fd off Syscall.Read_file
  and sys0 dst s =
    ins (Instr.Sys s);
    if dst <> 0 then ins (Instr.Mov (dst, 0))
  and sys2 dst a b s =
    expr dst a;
    ins (Instr.Push dst);
    expr dst b;
    ins (Instr.Pop Instr.scratch);
    ins (Instr.Mov (0, Instr.scratch));
    ins (Instr.Mov (1, dst));
    ins (Instr.Sys s);
    if dst <> 0 then ins (Instr.Mov (dst, 0))
  in
  let epilogue () =
    ins Instr.Leave;
    ins (if f.is_handler then Instr.Sigret else Instr.Ret)
  in
  let rec stmt ~break_label s =
    match s with
    | Let (v, e) | Set (v, e) ->
        expr work e;
        ins (Instr.Sstore (slot v, work))
    | Set_heap (a, v) ->
        expr work a;
        ins (Instr.Push work);
        expr work v;
        ins (Instr.Pop Instr.scratch);
        ins (Instr.Store (Instr.scratch, work))
    | If (c, then_, else_) ->
        let l_else = fresh_label () and l_end = fresh_label () in
        expr work c;
        emit (Jz_l (work, l_else));
        List.iter (stmt ~break_label) then_;
        emit (Jmp_l l_end);
        emit (Label l_else);
        List.iter (stmt ~break_label) else_;
        emit (Label l_end)
    | While (c, body) ->
        let l_top = fresh_label () and l_end = fresh_label () in
        emit (Label l_top);
        expr work c;
        emit (Jz_l (work, l_end));
        List.iter (stmt ~break_label:(Some l_end)) body;
        emit (Jmp_l l_top);
        emit (Label l_end)
    | Break -> (
        match break_label with
        | Some l -> emit (Jmp_l l)
        | None -> err "function %s: break outside loop" f.name)
    | Expr e -> expr work e
    | Return e ->
        expr work e;
        ins (Instr.Mov (0, work));
        epilogue ()
    | Output e ->
        expr work e;
        ins (Instr.Mov (0, work));
        ins (Instr.Sys Syscall.Write_output)
    | Send_msg (dest, payload) ->
        expr work dest;
        ins (Instr.Push work);
        expr work payload;
        ins (Instr.Pop Instr.scratch);
        ins (Instr.Mov (0, Instr.scratch));
        ins (Instr.Mov (1, work));
        ins (Instr.Sys Syscall.Send)
    | Recv_msg (pv, sv) ->
        ins (Instr.Sys Syscall.Recv);
        ins (Instr.Sstore (slot pv, 0));
        ins (Instr.Sstore (slot sv, 1))
    | Try_recv_msg (pv, sv) ->
        ins (Instr.Sys Syscall.Try_recv);
        ins (Instr.Sstore (slot pv, 0));
        ins (Instr.Sstore (slot sv, 1))
    | Close_file e ->
        expr work e;
        ins (Instr.Mov (0, work));
        ins (Instr.Sys Syscall.Close_file)
    | Sleep e ->
        expr work e;
        ins (Instr.Mov (0, work));
        ins (Instr.Sys Syscall.Sleep)
    | Yield -> ins (Instr.Sys Syscall.Yield)
    | Check e ->
        expr work e;
        ins (Instr.Check work)
    | Halt -> ins Instr.Halt
    | Sigaction fname ->
        emit (Addr_of (0, fname));
        ins (Instr.Sys Syscall.Sigaction)
  in
  (* Prologue: set up the frame, spill arguments into their slots. *)
  ins (Instr.Enter nlocals);
  List.iteri (fun i _ -> ins (Instr.Sstore (i, i))) f.params;
  List.iter (stmt ~break_label:None) f.body;
  epilogue ();
  List.rev !out

(* Link all functions into one code array.  Layout: a two-instruction
   start stub (call main; halt) followed by each function's body. *)
let compile (p : program) =
  let label_counter = ref 0 in
  let fresh_label () =
    incr label_counter;
    !label_counter
  in
  let compiled =
    List.map (fun f -> (f.name, compile_func ~fresh_label f)) p.funcs
  in
  if not (List.mem_assoc p.main compiled) then
    err "no function named %s" p.main;
  (* First pass: lay out addresses. *)
  let func_addr = Hashtbl.create 16 in
  let label_addr = Hashtbl.create 64 in
  let addr = ref 2 (* start stub *) in
  List.iter
    (fun (name, items) ->
      if Hashtbl.mem func_addr name then err "duplicate function %s" name;
      Hashtbl.add func_addr name !addr;
      List.iter
        (function
          | Label l -> Hashtbl.replace label_addr l !addr
          | I _ | Jmp_l _ | Jz_l _ | Jnz_l _ | Call_f _ | Addr_of _ ->
              incr addr)
        items)
    compiled;
  let size = !addr in
  let code = Array.make size Instr.Nop in
  let faddr name =
    match Hashtbl.find_opt func_addr name with
    | Some a -> a
    | None -> err "call to undefined function %s" name
  in
  let laddr l =
    match Hashtbl.find_opt label_addr l with
    | Some a -> a
    | None -> err "internal: unresolved label %d" l
  in
  code.(0) <- Instr.Call (faddr p.main);
  code.(1) <- Instr.Halt;
  let pos = ref 2 in
  List.iter
    (fun (_, items) ->
      List.iter
        (fun item ->
          match item with
          | Label _ -> ()
          | I i ->
              code.(!pos) <- i;
              incr pos
          | Jmp_l l ->
              code.(!pos) <- Instr.Jmp (laddr l);
              incr pos
          | Jz_l (r, l) ->
              code.(!pos) <- Instr.Jz (r, laddr l);
              incr pos
          | Jnz_l (r, l) ->
              code.(!pos) <- Instr.Jnz (r, laddr l);
              incr pos
          | Call_f name ->
              code.(!pos) <- Instr.Call (faddr name);
              incr pos
          | Addr_of (r, name) ->
              code.(!pos) <- Instr.Const (r, faddr name);
              incr pos)
        items)
    compiled;
  code

(* Disassembly, for debugging and the quickstart example. *)
let disassemble code =
  String.concat "\n"
    (Array.to_list
       (Array.mapi (fun i ins -> Printf.sprintf "%4d  %s" i
                       (Instr.to_string ins)) code))
