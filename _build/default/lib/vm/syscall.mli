(** System calls of the simulated machine, classified by the paper's
    event taxonomy when serviced by {!Ft_os.Kernel}.  Arguments travel in
    r0/r1; results come back in r0 (and r1 for [Recv]'s sender). *)

type t =
  | Gettimeofday  (** r0 <- time in us; transient ND *)
  | Random  (** r0 <- pseudo-random; transient ND *)
  | Read_input  (** r0 <- next token, -1 at end; fixed ND; may wait *)
  | Poll_input  (** r0 <- readiness; transient ND *)
  | Write_output  (** emit r0; visible *)
  | Send  (** send payload r1 to process r0 *)
  | Recv  (** r0 <- payload, r1 <- sender; transient ND; blocks *)
  | Try_recv  (** like [Recv] but r0 <- -1 when empty *)
  | Open_file  (** r0 name id -> fd, or -1 when the table is full (fixed ND) *)
  | Write_file  (** fd r0, value r1 -> 1, or -1 when the disk is full (fixed ND) *)
  | Read_file  (** fd r0, offset r1 -> value; deterministic *)
  | Close_file
  | Sigaction  (** install the handler at code address r0 *)
  | Sleep  (** advance local time by r0 microseconds *)
  | Yield  (** scheduling point *)

val to_string : t -> string
val all : t list
