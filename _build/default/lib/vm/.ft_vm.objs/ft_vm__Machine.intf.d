lib/vm/machine.mli: Instr Memory Syscall
