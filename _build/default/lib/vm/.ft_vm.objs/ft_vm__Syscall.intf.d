lib/vm/syscall.mli:
