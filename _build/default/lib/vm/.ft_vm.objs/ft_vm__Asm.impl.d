lib/vm/asm.ml: Array Hashtbl Instr List Printf String Syscall
