lib/vm/machine.ml: Array Instr Memory Printf Syscall
