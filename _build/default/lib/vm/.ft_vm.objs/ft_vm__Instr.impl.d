lib/vm/instr.ml: Printf Syscall
