lib/vm/memory.mli:
