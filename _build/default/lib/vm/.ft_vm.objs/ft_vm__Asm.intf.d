lib/vm/asm.mli: Instr
