lib/vm/syscall.ml:
