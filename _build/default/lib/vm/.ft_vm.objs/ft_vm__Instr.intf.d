lib/vm/instr.mli: Syscall
