lib/vm/memory.ml: Array
