(** Instruction set of the simulated word-addressed machine.

    The machine has 16 integer registers, a stack (with stack and frame
    pointers) and a paged heap.  Programs for the fault-injection study
    are compiled to this instruction set by {!Asm}; the application fault
    types of the paper's model (§4.1) are program/state mutations at this
    level: changed destination registers, deleted branches or
    instructions, off-by-one comparison operators, lost initializations,
    and stack/heap bit flips. *)

type reg = int (* 0..15; r13 is the compiler's scratch register *)

let num_regs = 16
let scratch : reg = 13

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr

type t =
  | Nop
  | Halt
  | Const of reg * int         (* dst <- imm *)
  | Mov of reg * reg           (* dst <- src *)
  | Bin of binop * reg * reg * reg  (* dst <- a op b *)
  | Cmp of cmp * reg * reg * reg    (* dst <- (a cmp b) ? 1 : 0 *)
  | Load of reg * reg          (* dst <- heap[addr] *)
  | Store of reg * reg         (* heap[addr] <- src *)
  | Push of reg
  | Pop of reg
  | Sload of reg * int         (* dst <- stack[fp + off] *)
  | Sstore of int * reg        (* stack[fp + off] <- src *)
  | Jmp of int
  | Jz of reg * int            (* jump if reg = 0 *)
  | Jnz of reg * int
  | Call of int
  | Ret
  | Enter of int               (* push fp; fp <- sp; sp <- sp + nlocals *)
  | Leave                      (* sp <- fp; fp <- pop *)
  | Sys of Syscall.t
  | Check of reg               (* consistency check: crash if reg = 0 *)
  | Sigret                     (* return from a signal handler: restore
                                  the register file pushed at delivery *)

let cmp_to_string = function
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"

let to_string = function
  | Nop -> "nop"
  | Halt -> "halt"
  | Const (d, n) -> Printf.sprintf "r%d <- %d" d n
  | Mov (d, s) -> Printf.sprintf "r%d <- r%d" d s
  | Bin (op, d, a, b) ->
      Printf.sprintf "r%d <- r%d %s r%d" d a (binop_to_string op) b
  | Cmp (op, d, a, b) ->
      Printf.sprintf "r%d <- r%d %s r%d" d a (cmp_to_string op) b
  | Load (d, a) -> Printf.sprintf "r%d <- heap[r%d]" d a
  | Store (a, s) -> Printf.sprintf "heap[r%d] <- r%d" a s
  | Push r -> Printf.sprintf "push r%d" r
  | Pop r -> Printf.sprintf "pop r%d" r
  | Sload (d, off) -> Printf.sprintf "r%d <- local[%d]" d off
  | Sstore (off, s) -> Printf.sprintf "local[%d] <- r%d" off s
  | Jmp a -> Printf.sprintf "jmp %d" a
  | Jz (r, a) -> Printf.sprintf "jz r%d, %d" r a
  | Jnz (r, a) -> Printf.sprintf "jnz r%d, %d" r a
  | Call a -> Printf.sprintf "call %d" a
  | Ret -> "ret"
  | Enter n -> Printf.sprintf "enter %d" n
  | Leave -> "leave"
  | Sys s -> "sys " ^ Syscall.to_string s
  | Check r -> Printf.sprintf "check r%d" r
  | Sigret -> "sigret"

(* Destination register of an instruction, if any: the target of the
   "destination register" fault type. *)
let dest_reg = function
  | Const (d, _) | Mov (d, _) | Bin (_, d, _, _) | Cmp (_, d, _, _)
  | Load (d, _) | Pop d | Sload (d, _) ->
      Some d
  | Nop | Halt | Store _ | Push _ | Sstore _ | Jmp _ | Jz _ | Jnz _
  | Call _ | Ret | Enter _ | Leave | Sys _ | Check _ | Sigret ->
      None

let with_dest_reg i d =
  match i with
  | Const (_, n) -> Const (d, n)
  | Mov (_, s) -> Mov (d, s)
  | Bin (op, _, a, b) -> Bin (op, d, a, b)
  | Cmp (op, _, a, b) -> Cmp (op, d, a, b)
  | Load (_, a) -> Load (d, a)
  | Pop _ -> Pop d
  | Sload (_, off) -> Sload (d, off)
  | other -> other

let is_branch = function Jz _ | Jnz _ -> true | _ -> false

let is_cmp = function Cmp _ -> true | _ -> false

(* Off-by-one mutation of a comparison operator (§4.1: errors in
   conditions like >= and <). *)
let off_by_one_cmp = function
  | Lt -> Le | Le -> Lt | Gt -> Ge | Ge -> Gt | Eq -> Le | Ne -> Ge
