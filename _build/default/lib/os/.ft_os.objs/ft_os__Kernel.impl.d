lib/os/kernel.ml: Array Ft_core Ft_vm Hashtbl List Option Queue Random
