lib/os/kernel.mli: Ft_core Ft_vm
