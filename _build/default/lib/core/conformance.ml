(** Generic Save-work conformance checking.

    Drives a protocol instance with an abstract stream of events — no
    virtual machine, no kernel — records the commits and logs the
    protocol dictates into a {!Trace}, and asks {!Save_work} whether the
    invariant held.  This is how the repository proves, by property
    testing over random multi-process streams, that every protocol in
    {!Protocols.figure8} upholds the Save-work Theorem: any of them can
    be handed to the engine and guarantee consistent recovery from stop
    failures. *)

(* One scripted step: process [pid] is about to execute an event with
   the given classification. *)
type step = { pid : int; info : Protocol.event_info }

let step ~pid info = { pid; info }

(* Fresh message tags for scripted sends; receives consume the oldest
   pending (dest, tag, src) for their destination, mirroring FIFO
   delivery. *)
type mailbox = {
  mutable pending : (int * int * int) list;
  mutable next_tag : int;
}

(* Replay the script through the protocol, materializing commits into
   the trace exactly where the protocol asks for them. *)
let run spec ~nprocs script =
  let proto = Protocol.instantiate spec ~nprocs in
  let trace = Trace.create ~nprocs in
  let mail = { pending = []; next_tag = 0 } in
  (* Synthetic tags for 2PC acknowledgement messages: negative so they
     never collide with application message tags. *)
  let ack_tag = ref (-1) in
  let round = ref 0 in
  let commit_scope ~pid = function
    | None -> ()
    | Some Protocol.Local ->
        ignore (Trace.record trace ~pid Event.Commit);
        proto.Protocol.note_commit ~pid
    | Some Protocol.Global ->
        (* Two-phase commit: the participants commit and acknowledge
           first; the coordinator commits last, after all acks.  Every
           commit of the round carries the same round id — they are
           atomic with each other, the Save-work Theorem's "(or atomic
           with)" case. *)
        let r = !round in
        incr round;
        for q = 0 to nprocs - 1 do
          if q <> pid then begin
            ignore (Trace.record trace ~pid:q (Event.Commit_round r));
            proto.Protocol.note_commit ~pid:q;
            let tag = !ack_tag in
            decr ack_tag;
            ignore (Trace.record trace ~pid:q (Event.Send { dest = pid; tag }));
            ignore
              (Trace.record trace ~pid ~logged:true
                 (Event.Receive { src = q; tag }))
          end
        done;
        ignore (Trace.record trace ~pid (Event.Commit_round r));
        proto.Protocol.note_commit ~pid
  in
  List.iter
    (fun { pid; info } ->
      (* resolve the concrete kind: sends mint a tag, receives consume
         the oldest message addressed to this process *)
      let kind =
        match info.Protocol.kind with
        | Event.Send { dest; _ } ->
            let tag = mail.next_tag in
            mail.next_tag <- tag + 1;
            mail.pending <- mail.pending @ [ (dest, tag, pid) ];
            Event.Send { dest; tag }
        | Event.Receive _ -> (
            match
              List.find_opt (fun (dest, _, _) -> dest = pid) mail.pending
            with
            | Some ((_, tag, src) as m) ->
                mail.pending <- List.filter (fun m' -> m' <> m) mail.pending;
                Event.Receive { src; tag }
            | None -> Event.Internal (* nothing to receive: skip *))
        | k -> k
      in
      match kind with
      | Event.Internal when Protocol.info_is_nd info ->
          () (* dropped receive *)
      | _ ->
          let reaction = proto.Protocol.react ~pid info in
          commit_scope ~pid reaction.Protocol.commit_before;
          let logged = reaction.Protocol.log && info.Protocol.loggable in
          ignore (Trace.record trace ~pid ~logged kind);
          commit_scope ~pid reaction.Protocol.commit_after)
    script;
  trace

(* Does the protocol uphold Save-work on this script? *)
let upholds_save_work spec ~nprocs script =
  Save_work.holds (run spec ~nprocs script)

let violations spec ~nprocs script =
  Save_work.violations (run spec ~nprocs script)
