(** The dangerous-paths coloring algorithms (paper §2.5).

    Single-process rules: color all crash events; color [e] if all events
    out of [e]'s end state are colored; color [e] if at least one colored
    event out of [e]'s end state is a {e fixed} ND event.  Committing on
    a colored path can prevent recovery (Lose-work Theorem). *)

val dangerous_edges :
  ?receive_class:(State_graph.edge -> Event.nd_class) ->
  State_graph.t ->
  bool array
(** Per-edge-id coloring.  [receive_class] resolves [Receive_nd] edges
    (default: treat them as transient). *)

val doomed_states :
  ?receive_class:(State_graph.edge -> Event.nd_class) ->
  State_graph.t ->
  bool array
(** States at which a commit can prevent recovery: every exit colored, or
    some colored exit is fixed ND (Figure 6C), or the state is itself a
    crash state. *)

val receive_class_of_trace : Trace.t -> Event.t -> Event.nd_class
(** Multi-Process Dangerous Paths Algorithm (§2.5): a receive is
    transient iff the sender's last commit preceded the send and the
    sender executed a transient ND event in between; otherwise the
    sender deterministically regenerates the message, so the receive is
    fixed. *)

val multi_process_dangerous_edges :
  State_graph.t ->
  trace:Trace.t ->
  recv_event_of_edge:(State_graph.edge -> Event.t option) ->
  bool array
(** [dangerous_edges] with receive edges classified from the trace. *)
