(** The Lose-work invariant (paper §2.5, §4): application-generic
    recovery from propagation failures is possible iff no commit lands
    on a dangerous path. *)

type analysis = {
  crash : Event.t;
  bohrbug : bool;
      (** no transient ND event precedes the crash: the dangerous path
          reaches the initial (always committed) state *)
  dangerous_from : int;  (** first event index on the dangerous path *)
  commits_on_path : Event.t list;
  violated : bool;
}

val analyze : Trace.t -> crash:Event.t -> analysis
(** Analyze the crashed process's linear history: the dangerous suffix
    starts just after the last transient ND event before the crash
    (committing before that event is safe, Figure 6B). *)

val committed_after_activation :
  Trace.t -> activation:Event.t -> crash:Event.t -> bool
(** The Table-1 criterion: a commit between fault activation and the
    crash.  The paper verifies end-to-end that recovery fails iff such a
    commit exists. *)

val safe_to_commit :
  ?receive_class:(State_graph.edge -> Event.nd_class) ->
  State_graph.t ->
  state:int ->
  bool
(** Graph-level check: is the given state outside every dangerous path? *)

val conflict : Trace.t -> crash:Event.t -> bool
(** Save-work and Lose-work conflict for this failure (Figure 9): the
    dangerous path contains a visible event (so Save-work forces a
    commit on it), or the bug is a Bohrbug. *)
