(** Recovery-protocol decision interface (paper §2.4).

    A protocol upholds Save-work by reacting to each event a process is
    about to execute: log the result (rendering the event deterministic)
    and/or commit, locally or through a coordinated two-phase commit.
    The execution engine interprets reactions and charges their cost. *)

type commit_scope =
  | Local  (** commit just this process *)
  | Global  (** two-phase commit: every process commits *)

type event_info = {
  kind : Event.kind;
  loggable : bool;
      (** the recovery system can log this ND event's result and replay
          it (Discount Checking logs user input and message receives) *)
}

type reaction = {
  log : bool;
  commit_before : commit_scope option;
  commit_after : commit_scope option;
}

val no_reaction : reaction

(** A per-run protocol instance. *)
type t = {
  name : string;
  react : pid:int -> event_info -> reaction;
  note_commit : pid:int -> unit;
      (** called whenever the engine commits [pid], including as a 2PC
          participant: protocols clear nd-since-commit bookkeeping *)
}

(** A protocol definition with its protocol-space coordinates. *)
type spec = {
  spec_name : string;
  nd_effort : float;  (** Figure-3 x coordinate, 0..1 *)
  visible_effort : float;  (** Figure-3 y coordinate, 0..1 *)
  uses_2pc : bool;
  instantiate : nprocs:int -> t;
}

val instantiate : spec -> nprocs:int -> t

val info_is_nd : event_info -> bool
val info_is_visible : event_info -> bool
val info_is_send : event_info -> bool
